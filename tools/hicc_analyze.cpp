// hicc_analyze -- whole-program semantic analysis gate (layer 2 of the
// static-analysis stack, docs/STATIC_ANALYSIS.md).
//
//   hicc_analyze [options] PATH...
//
//   --root=DIR        repo root containing src/ (default: cwd)
//   --strict          also fail on stale baseline/suppressions (CI mode)
//   --baseline=FILE   override scripts/hicc_analyze_baseline.txt
//   --write-baseline  grandfather current findings and exit
//   --json=FILE       write the hicc.analysis.v1 report
//   --list-rules      print rule ids and exit
//   --dump-dag        print the layering DAG (module: dep dep ...)
//
// Exit codes mirror scripts/hicc_lint.py: 0 clean, 1 findings (or
// stale baseline/suppressions under --strict), 2 usage error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/report.h"

namespace {

int usage(const char* msg) {
  if (msg != nullptr) std::cerr << "hicc_analyze: " << msg << "\n";
  std::cerr << "usage: hicc_analyze [--root=DIR] [--strict] [--baseline=FILE]\n"
               "                    [--write-baseline] [--json=FILE] [--list-rules]\n"
               "                    [--dump-dag] PATH...\n";
  return 2;
}

bool take_value(const std::string& arg, const char* flag, std::string* out) {
  std::size_t n = std::strlen(flag);
  if (arg.compare(0, n, flag) != 0 || arg.size() <= n || arg[n] != '=') return false;
  *out = arg.substr(n + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  hicc::analyze::Options opts;
  bool write_baseline = false;
  bool list_rules = false;
  bool dag = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--strict") {
      opts.strict = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--dump-dag") {
      dag = true;
    } else if (take_value(arg, "--root", &value)) {
      opts.root = value;
    } else if (take_value(arg, "--baseline", &value)) {
      opts.baseline_path = value;
    } else if (take_value(arg, "--json", &value)) {
      json_path = value;
    } else if (arg.rfind("--", 0) == 0) {
      return usage(("unknown option: " + arg).c_str());
    } else {
      opts.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const std::string& r : hicc::analyze::rule_ids()) std::cout << r << "\n";
    return 0;
  }
  if (dag) {
    std::cout << hicc::analyze::dump_dag();
    return 0;
  }
  if (opts.paths.empty()) return usage("at least one path required");

  hicc::analyze::Result res = hicc::analyze::run(opts);
  if (res.io_error) {
    std::cerr << res.io_message << "\n";
    return 2;
  }

  if (write_baseline) {
    std::string path = opts.baseline_path.empty()
                           ? opts.root + (opts.root.empty() ? "" : "/") +
                                 "scripts/hicc_analyze_baseline.txt"
                           : opts.baseline_path;
    if (!hicc::analyze::write_baseline(path, res.all_error_keys)) {
      std::cerr << "hicc_analyze: cannot write " << path << "\n";
      return 2;
    }
    std::cout << "hicc_analyze: wrote " << path << "\n";
    return 0;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "hicc_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << hicc::analyze::to_json(res.findings, res.stats);
  }

  std::cout << hicc::analyze::format_text(res, opts.strict);
  return res.failed ? 1 : 0;
}
