// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#include "nic/nic.h"

#include <cassert>
#include <utility>

namespace hicc::nic {

Nic::Nic(sim::Simulator& sim, pcie::PcieBus& pcie, iommu::Iommu& iommu, NicParams params,
         int num_threads, Bytes data_region_size, iommu::PageSize data_page,
         sim::InlineCallback<int(std::int32_t)> thread_of_flow, Rng rng, trace::Tracer* tracer)
    : sim_(sim),
      pcie_(pcie),
      iommu_(iommu),
      params_(params),
      data_page_(data_page),
      thread_of_flow_(std::move(thread_of_flow)),
      rng_(rng),
      dev_tlb_(1, params.dev_tlb_entries > 0 ? params.dev_tlb_entries : 1) {
  queues_.resize(static_cast<std::size_t>(num_threads));
  const int control_pages = params_.ring_pages + params_.cq_pages + params_.ack_pages;
  for (auto& q : queues_) {
    // Loose-mode registration at startup: data buffers with the chosen
    // leaf size, control structures always on 4K pages (§3.1 setup).
    q.data_region = iommu_.map_region(data_region_size, data_page_);
    q.control_region =
        iommu_.map_region(Bytes(static_cast<std::int64_t>(control_pages) * 4096),
                          iommu::PageSize::k4K);
    q.posted = params_.descriptors_per_queue;
  }
  pcie_.on_credits_available([this] { pump(); });
  for (std::size_t t = 0; t < queues_.size(); ++t) {
    ensure_descriptor_fetch(static_cast<int>(t));
  }
  if (tracer != nullptr) {
    // All polled from state the NIC already keeps: tracing adds no work
    // to the arrival / DMA paths.
    tracer->gauge("nic.buffer_bytes", "bytes",
                  [this] { return static_cast<double>(buffer_used_.count()); });
    tracer->counter("nic.buffer_drops", "packets",
                    [this] { return static_cast<double>(stats_.buffer_drops); });
    tracer->counter("nic.delivered", "packets",
                    [this] { return static_cast<double>(stats_.delivered); });
    tracer->counter("nic.hol_descriptor_stalls", "stalls",
                    [this] { return static_cast<double>(stats_.hol_descriptor_stalls); });
  }
}

iommu::Iova Nic::control_page(const Queue& q, int first, int count,
                              std::int64_t cursor) const {
  const auto& region = iommu_.region(q.control_region);
  return region.page_iova(first + cursor % count);
}

iommu::Iova Nic::pick_data_page(Queue& q) {
  const auto& region = iommu_.region(q.data_region);
  // Concurrent flows fill buffers all over the registered region, so
  // consecutive packets land on unrelated pages (§3.1: "subsequent
  // packets do not necessarily lie in contiguous memory regions").
  const std::int64_t pages = region.num_pages();
  std::int64_t page = static_cast<std::int64_t>(rng_.below(static_cast<std::uint64_t>(pages)));
  if (data_page_ == iommu::PageSize::k4K && page + 1 >= pages) {
    page = pages >= 2 ? pages - 2 : 0;  // keep room for the spill page
  }
  return region.page_iova(page);
}

void Nic::on_arrival(net::Packet p) {
  ++stats_.arrivals;
  if (buffer_used_ + p.wire > buffer_limit()) {
    ++stats_.buffer_drops;
    return;
  }
  if (cbs_.buffer_pressure &&
      buffer_used_.count() >
          static_cast<std::int64_t>(params_.signal_threshold *
                                    static_cast<double>(params_.input_buffer.count()))) {
    cbs_.buffer_pressure();
  }
  buffer_used_ += p.wire;
  p.nic_arrival = sim_.now();

  // The payload destination is chosen on arrival (the descriptor the
  // packet will consume determines it); with ATS the device TLB is
  // prefetched here so the translation usually lands before the packet
  // reaches the head of the DMA pipeline.
  Buffered b;
  Queue& q = queues_[static_cast<std::size_t>(thread_of_flow_(p.flow))];
  b.first_page = pick_data_page(q);
  if (data_page_ == iommu::PageSize::k4K) {
    b.second_page = b.first_page + 4096;
  }
  b.pkt = std::move(p);
  if (params_.ats_enabled && iommu_.enabled()) {
    ats_prefetch(b.first_page);
    if (b.second_page != 0) ats_prefetch(b.second_page);
  }
  input_.push_back(std::move(b));
  pump();
}

void Nic::ats_prefetch(iommu::Iova page) {
  if (dev_tlb_.contains(page) || ats_pending_.contains(page)) return;
  ats_pending_.emplace(page, true);
  ++stats_.ats_prefetches;
  // The translation request costs a link round trip plus whatever the
  // IOMMU needs (IOTLB hit or a full walk) -- but it runs beside the
  // posted-write pipeline instead of stalling it.
  auto install = [this, page] {
    sim_.after(params_.ats_request_latency, [this, page] {
      ats_pending_.erase(page);
      dev_tlb_.insert(page);
      pump();
    });
  };
  if (iommu_.try_translate(page).has_value()) {
    install();
  } else {
    iommu_.translate_slow(page, install);
  }
}

bool Nic::ats_ready(const Buffered& b) {
  if (!dev_tlb_.lookup(b.first_page)) return false;
  return b.second_page == 0 || dev_tlb_.lookup(b.second_page);
}

void Nic::post_descriptors(int thread, int n) {
  queues_[static_cast<std::size_t>(thread)].posted += n;
  ensure_descriptor_fetch(thread);
}

void Nic::ensure_descriptor_fetch(int thread) {
  Queue& q = queues_[static_cast<std::size_t>(thread)];
  while (q.posted > 0 && q.fetched + q.fetch_in_flight < params_.descriptor_prefetch) {
    --q.posted;
    ++q.fetch_in_flight;
    ++stats_.descriptor_fetches;
    const iommu::Iova ring = control_page(q, 0, params_.ring_pages, q.ring_cursor++);
    pcie_.send_read(ring, params_.descriptor_bytes, [this, thread] {
      Queue& queue = queues_[static_cast<std::size_t>(thread)];
      --queue.fetch_in_flight;
      ++queue.fetched;
      ensure_descriptor_fetch(thread);
      pump();
    });
  }
}

void Nic::pump() {
  // Completion-queue writes have priority for credits: they unblock
  // host processing and are tiny.
  while (!cq_pending_.empty() && pcie_.can_send_write(params_.cq_entry_bytes)) {
    const std::int64_t job_id = cq_pending_.front();
    cq_pending_.pop_front();
    start_cq_write(job_id);
  }

  for (;;) {
    if (sending_job_ < 0) {
      if (input_.empty()) return;
      Buffered& head = input_.front();
      const int thread = thread_of_flow_(head.pkt.flow);
      Queue& q = queues_[static_cast<std::size_t>(thread)];
      if (q.fetched == 0) {
        // Head-of-line: no descriptor on the NIC for this queue. The
        // shared buffer keeps filling behind us.
        ++stats_.hol_descriptor_stalls;
        ensure_descriptor_fetch(thread);
        return;
      }
      const bool use_ats = params_.ats_enabled && iommu_.enabled();
      if (use_ats && !ats_ready(head)) {
        // Device translation not cached: either still in flight from
        // the arrival-time prefetch, or evicted from the device TLB
        // while the packet queued -- re-request and resume when it
        // installs.
        ++stats_.ats_hol_waits;
        ats_prefetch(head.first_page);
        if (head.second_page != 0) ats_prefetch(head.second_page);
        return;
      }
      --q.fetched;
      ensure_descriptor_fetch(thread);

      DmaJob job;
      job.first_page = head.first_page;
      job.second_page = head.second_page;
      job.pre_translated = use_ats;
      job.pkt = std::move(head.pkt);
      input_.pop_front();
      job.arrival = job.pkt.nic_arrival;
      job.thread = thread;
      const auto max_payload = pcie_.params().max_payload.count();
      job.tlps_total = static_cast<int>(
          (job.pkt.payload.count() + max_payload - 1) / max_payload);
      // The job enters the retirement table before its first TLP goes
      // out: with a credit pool smaller than one packet's TLP stream,
      // early TLPs retire while later ones still wait for credits.
      sending_job_ = next_job_id_++;
      awaiting_retire_.emplace(sending_job_, std::move(job));
    }

    DmaJob& job = awaiting_retire_.at(sending_job_);
    const auto max_payload = pcie_.params().max_payload;
    while (job.tlps_sent < job.tlps_total) {
      const Bytes remaining =
          job.pkt.payload - Bytes(static_cast<std::int64_t>(job.tlps_sent) * max_payload.count());
      const Bytes chunk = std::min(max_payload, remaining);
      if (!pcie_.can_send_write(chunk)) return;  // resume on credit release
      // First half of the TLPs go to the first page; for 4K leaves the
      // second half spills onto the next page.
      const bool second = job.second_page != 0 && job.tlps_sent >= job.tlps_total / 2;
      const iommu::Iova base = second ? job.second_page : job.first_page;
      const iommu::Iova iova =
          base + static_cast<iommu::Iova>(job.tlps_sent) * 256 % 4096;
      ++job.tlps_sent;
      const std::int64_t job_id = sending_job_;
      pcie_.send_write_tlp(iova, chunk, [this, job_id] {
        on_payload_tlp_retired(job_id);
      }, job.pre_translated);
    }

    // All TLPs are on the PCIe pipe: the packet has left the input
    // SRAM; admit the next packet.
    buffer_used_ -= job.pkt.wire;
    sending_job_ = -1;
  }
}

void Nic::on_payload_tlp_retired(std::int64_t job_id) {
  const auto it = awaiting_retire_.find(job_id);
  assert(it != awaiting_retire_.end());
  DmaJob& job = it->second;
  ++job.tlps_retired;
  // tlps_retired == total implies every TLP was sent (a TLP cannot
  // retire before it is emitted), so the job is complete.
  if (job.tlps_retired < job.tlps_total) return;
  // Payload fully in memory: write the completion entry (credits
  // permitting; otherwise queue it with priority).
  if (pcie_.can_send_write(params_.cq_entry_bytes)) {
    start_cq_write(job_id);
  } else {
    cq_pending_.push_back(job_id);
  }
}

void Nic::start_cq_write(std::int64_t job_id) {
  const auto it = awaiting_retire_.find(job_id);
  assert(it != awaiting_retire_.end());
  Queue& q = queues_[static_cast<std::size_t>(it->second.thread)];
  const iommu::Iova cq =
      control_page(q, params_.ring_pages, params_.cq_pages, q.cq_cursor++);
  ++stats_.cq_writes;
  pcie_.send_write_tlp(cq, params_.cq_entry_bytes, [this, job_id] {
    const auto jt = awaiting_retire_.find(job_id);
    assert(jt != awaiting_retire_.end());
    DmaJob job = std::move(jt->second);
    awaiting_retire_.erase(jt);
    ++stats_.delivered;
    stats_.bytes_delivered += job.pkt.payload.count();
    if (params_.strict_invalidation) {
      // Strict mode: revoke the buffer's mapping now that the packet
      // is delivered. The invalidation command occupies the IOMMU's
      // walker/command pipeline, delaying translations behind it --
      // the §3.1 "even worse" cost of dynamic unmapping.
      iommu_.invalidate_page_async(job.first_page);
      dev_tlb_.invalidate(job.first_page);
      if (job.second_page != 0) {
        iommu_.invalidate_page_async(job.second_page);
        dev_tlb_.invalidate(job.second_page);
      }
    }
    if (cbs_.deliver) cbs_.deliver(job.thread, std::move(job.pkt), job.arrival);
  });
}

void Nic::send_packet(net::Packet p, int thread) {
  Queue& q = queues_[static_cast<std::size_t>(thread)];
  const iommu::Iova ack = control_page(
      q, params_.ring_pages + params_.cq_pages, params_.ack_pages, q.ack_cursor++);
  ++stats_.tx_packets;
  const Bytes fetch = p.wire;
  // Park the packet in the stash; slots recycle, so steady-state Tx
  // never allocates and completions may finish in any order.
  std::int32_t slot;
  if (!tx_free_.empty()) {
    slot = tx_free_.back();
    tx_free_.pop_back();
    tx_stash_[static_cast<std::size_t>(slot)] = std::move(p);
  } else {
    slot = static_cast<std::int32_t>(tx_stash_.size());
    // hicc-lint: allow(hot-vector-growth) -- free-listed stash: grows to
    // the Tx high-water mark once, then recycles slots forever.
    tx_stash_.push_back(std::move(p));
  }
  pcie_.send_read(ack, fetch, [this, slot] {
    net::Packet pkt = std::move(tx_stash_[static_cast<std::size_t>(slot)]);
    tx_free_.push_back(slot);  // hicc-lint: allow(hot-vector-growth) -- capacity == stash high-water mark
    if (cbs_.transmit) cbs_.transmit(std::move(pkt));
  });
}

}  // namespace hicc::nic
