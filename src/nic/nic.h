// The receiver NIC (§2 steps 1-7).
//
// Arriving packets enter a small shared SRAM input buffer (~1MB on
// commodity NICs; all flows share it, so drops violate isolation --
// §3's drop-rate metric). The DMA engine drains the buffer in FIFO
// order: each packet consumes one prefetched Rx descriptor, its payload
// is cut into PCIe posted-write TLPs addressed at a page of the owning
// thread's registered data region ("lack of locality in IOMMU access
// patterns": concurrent flows land on random pages), and after all
// payload TLPs retire, a completion-queue entry is written; only then
// is the packet visible to the host thread.
//
// Per data packet the NIC touches, as in the paper's footnote 3:
//   - the payload page(s) (1 hugepage, or 2 4K pages for a 4K MTU),
//   - the descriptor ring page (prefetched read),
//   - the completion queue page (posted write),
//   - and, for its ACK, the ACK buffer page (Tx fetch read).
// All of these translate through the IOMMU when it is enabled.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "iommu/iommu.h"
#include "iommu/lru_cache.h"
#include "net/packet.h"
#include "pcie/pcie_bus.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hicc::nic {

/// NIC hardware + driver-layout configuration.
struct NicParams {
  /// Shared input SRAM (paper testbed: ~1MB).
  Bytes input_buffer = Bytes::mib(1);
  /// Rx descriptors the host keeps posted per thread queue.
  int descriptors_per_queue = 512;
  /// Descriptors the NIC prefetches ahead per queue.
  int descriptor_prefetch = 8;
  /// Control pages (4K mappings) per thread: descriptor ring,
  /// completion queue, ACK/Tx buffers. These are what make the
  /// working set ~16 IOTLB entries per thread with a 12MB data region.
  int ring_pages = 2;
  int cq_pages = 2;
  int ack_pages = 6;
  /// Bytes of a descriptor fetch and of a completion entry write.
  Bytes descriptor_bytes = Bytes(64);
  Bytes cq_entry_bytes = Bytes(32);
  /// Input-buffer occupancy (fraction) above which the out-of-band
  /// host congestion signal fires (kHostSignal experiments).
  double signal_threshold = 0.75;
  /// PCIe ATS (§4a): the NIC keeps a device TLB and translates DMA
  /// addresses itself, prefetching translations when packets arrive,
  /// so IOTLB misses never stall the root complex's ordered pipeline.
  bool ats_enabled = false;
  int dev_tlb_entries = 64;
  /// Extra round trip of an ATS translation request over the link.
  TimePs ats_request_latency = TimePs::from_ns(100);
  /// Strict IOMMU mode: the driver revokes each payload buffer's
  /// mapping as soon as its packet is delivered, shooting down the
  /// cached translation ("dynamically deleting IOMMU mappings at run
  /// time are known to cause even worse IOTLB misses", §3.1).
  bool strict_invalidation = false;
};

/// NIC-level counters.
struct NicStats {
  std::int64_t arrivals = 0;
  std::int64_t buffer_drops = 0;      // shared-SRAM tail drops
  std::int64_t delivered = 0;         // packets handed to host threads
  std::int64_t bytes_delivered = 0;   // payload bytes DMA-completed
  std::int64_t descriptor_fetches = 0;
  std::int64_t cq_writes = 0;
  std::int64_t tx_packets = 0;
  std::int64_t hol_descriptor_stalls = 0;
  std::int64_t ats_prefetches = 0;    // device-TLB fills requested
  std::int64_t ats_hol_waits = 0;     // DMA admissions stalled on ATS
};

/// The receiver-side NIC model.
class Nic {
 public:
  /// `deliver(thread, packet, nic_arrival)` hands a DMA-completed
  /// packet to a host thread; `transmit` puts a packet (ACK / read
  /// request) on the reverse fabric path; `buffer_pressure` fires on
  /// arrivals that find the buffer above the signal threshold.
  /// All three fire on per-packet paths, so they use inline-storage
  /// callables (the host side captures `[this]`).
  struct Callbacks {
    sim::InlineCallback<void(int, net::Packet, TimePs)> deliver;
    sim::InlineCallback<bool(net::Packet)> transmit;
    sim::InlineCallback<void()> buffer_pressure;
  };

  /// Registers per-thread data regions (`data_region_size` each, with
  /// `data_page` leaves -- 2M when hugepages are enabled, 4K when
  /// disabled) and 4K control regions with the IOMMU, as the SNAP
  /// stack does once at startup (loose mode). `tracer`, when non-null,
  /// registers the `nic.*` probes (all polled from NicStats / buffer
  /// occupancy -- the arrival and DMA paths are untouched).
  Nic(sim::Simulator& sim, pcie::PcieBus& pcie, iommu::Iommu& iommu, NicParams params,
      int num_threads, Bytes data_region_size, iommu::PageSize data_page,
      sim::InlineCallback<int(std::int32_t)> thread_of_flow, Rng rng,
      trace::Tracer* tracer = nullptr);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// A packet arrives from the fabric (access-link delivery).
  void on_arrival(net::Packet p);

  /// Host thread returns `n` descriptors to its Rx queue (done while
  /// processing completions).
  void post_descriptors(int thread, int n);

  /// Host thread transmits a packet (ACK or read request): the NIC
  /// fetches it from the thread's ACK buffer page over PCIe, then puts
  /// it on the wire.
  void send_packet(net::Packet p, int thread);

  /// Fault hook (nic.buffer_squeeze): caps the admissible input-buffer
  /// occupancy below the configured SRAM size. Bytes(0) restores the
  /// configured limit; packets already buffered are never evicted.
  void set_buffer_limit(Bytes limit) { buffer_limit_override_ = limit; }
  /// The currently effective admission limit.
  [[nodiscard]] Bytes buffer_limit() const {
    return buffer_limit_override_.count() > 0 ? buffer_limit_override_ : params_.input_buffer;
  }

  [[nodiscard]] Bytes buffer_used() const { return buffer_used_; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] int posted_descriptors(int thread) const {
    return queues_[static_cast<std::size_t>(thread)].posted;
  }

 private:
  struct Queue {
    iommu::RegionId data_region{};
    iommu::RegionId control_region{};
    int posted = 0;       // host-posted descriptors not yet fetched
    int fetched = 0;      // descriptors ready on the NIC
    int fetch_in_flight = 0;
    std::int64_t ring_cursor = 0;  // rotates ring pages
    std::int64_t cq_cursor = 0;    // rotates CQ pages
    std::int64_t ack_cursor = 0;   // rotates ACK pages
  };

  /// A buffered packet with its (pre-picked) payload target pages.
  struct Buffered {
    net::Packet pkt;
    iommu::Iova first_page = 0;
    iommu::Iova second_page = 0;
  };

  /// A packet whose DMA is in progress.
  struct DmaJob {
    net::Packet pkt;
    TimePs arrival{};
    int thread = 0;
    iommu::Iova first_page = 0;   // payload target page
    iommu::Iova second_page = 0;  // used when 4K pages split the MTU
    bool pre_translated = false;  // ATS: addresses translated on-device
    int tlps_total = 0;
    int tlps_sent = 0;
    int tlps_retired = 0;
  };

  /// Drives descriptor prefetch for one queue.
  void ensure_descriptor_fetch(int thread);
  /// Advances the DMA pipeline: CQ writes first, then payload TLPs,
  /// then admits the next buffered packet.
  void pump();
  void on_payload_tlp_retired(std::int64_t job_id);
  void start_cq_write(std::int64_t job_id);

  [[nodiscard]] iommu::Iova control_page(const Queue& q, int first, int count,
                                         std::int64_t cursor) const;
  [[nodiscard]] iommu::Iova pick_data_page(Queue& q);
  /// ATS: requests a device-TLB fill for `page` if none is cached or
  /// in flight.
  void ats_prefetch(iommu::Iova page);
  /// ATS: true when the device TLB covers every page of the entry.
  [[nodiscard]] bool ats_ready(const Buffered& b);

  sim::Simulator& sim_;
  pcie::PcieBus& pcie_;
  iommu::Iommu& iommu_;
  NicParams params_;
  iommu::PageSize data_page_;
  sim::InlineCallback<int(std::int32_t)> thread_of_flow_;
  Rng rng_;
  Callbacks cbs_;

  std::vector<Queue> queues_;
  std::deque<Buffered> input_;              // buffered, not yet DMA-started
  Bytes buffer_used_{};
  Bytes buffer_limit_override_{};           // fault hook; 0 = use params_

  iommu::LruCache<iommu::Iova> dev_tlb_;    // ATS device TLB
  std::unordered_map<iommu::Iova, bool> ats_pending_;
  /// Job whose payload TLPs are still being emitted (-1: none). The
  /// job itself lives in awaiting_retire_ from admission, because with
  /// small credit pools TLPs can retire before the last one is sent.
  std::int64_t sending_job_ = -1;
  std::unordered_map<std::int64_t, DmaJob> awaiting_retire_;
  /// Tx packets parked while their ACK-buffer fetch is on the PCIe bus.
  /// A free-list slab: the fetch completion captures only `[this,
  /// slot]`, which keeps the per-ACK closure inside the inline buffer
  /// (a by-value Packet capture would not fit a CompletionFn).
  std::vector<net::Packet> tx_stash_;
  std::vector<std::int32_t> tx_free_;
  std::deque<std::int64_t> cq_pending_;     // jobs whose CQ write awaits credits
  std::int64_t next_job_id_ = 0;
  NicStats stats_;
};

}  // namespace hicc::nic
