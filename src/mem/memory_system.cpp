#include "mem/memory_system.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace hicc::mem {

const char* to_string(MemClass cls) {
  switch (cls) {
    case MemClass::kNicDma: return "nic_dma";
    case MemClass::kIommuWalk: return "iommu_walk";
    case MemClass::kCpuCopy: return "cpu_copy";
    case MemClass::kAntagonist: return "antagonist";
    case MemClass::kOther: return "other";
  }
  return "?";
}

MemorySystem::MemorySystem(sim::Simulator& sim, DramParams params, Rng rng, TimePs epoch,
                           trace::Tracer* tracer)
    : sim_(sim),
      params_(params),
      rng_(rng),
      epoch_(epoch),
      latency_(params.idle_latency),
      epoch_task_(sim, epoch, [this] { on_epoch(); }) {
  class_throttle_bps_.fill(0.0);
  if (tracer != nullptr) {
    // All polled: the sampler reads the operating point the epoch
    // solver already maintains, so tracing adds nothing per request.
    tracer->gauge("mem.bandwidth_gbps", "GB/s", [this] {
      return (fluid_bw_at(latency_) + discrete_rate_.bps()) / 8e9;
    });
    tracer->gauge("mem.utilization", "fraction", [this] { return rho_; });
    tracer->gauge("mem.latency_ns", "ns", [this] { return latency_.ns(); });
  }
}

ClientId MemorySystem::add_closed_loop(MemClass cls, int cores, BitRate per_core_peak,
                                       Bytes per_core_outstanding, double read_fraction) {
  clients_.push_back(FluidClient{.cls = cls,
                                 .closed_loop = true,
                                 .cores = cores,
                                 .per_core_peak = per_core_peak,
                                 .per_core_outstanding = per_core_outstanding,
                                 .demand = BitRate(0),
                                 .read_fraction = read_fraction,
                                 .achieved = BitRate(0)});
  return ClientId{static_cast<int>(clients_.size()) - 1};
}

void MemorySystem::set_cores(ClientId id, int cores) {
  assert(id.valid() && static_cast<std::size_t>(id.index) < clients_.size());
  clients_[static_cast<std::size_t>(id.index)].cores = cores;
}

ClientId MemorySystem::add_open(MemClass cls, double read_fraction) {
  clients_.push_back(FluidClient{.cls = cls,
                                 .closed_loop = false,
                                 .cores = 0,
                                 .per_core_peak = BitRate(0),
                                 .per_core_outstanding = Bytes(0),
                                 .demand = BitRate(0),
                                 .read_fraction = read_fraction,
                                 .achieved = BitRate(0)});
  return ClientId{static_cast<int>(clients_.size()) - 1};
}

void MemorySystem::set_demand(ClientId id, BitRate demand) {
  assert(id.valid() && static_cast<std::size_t>(id.index) < clients_.size());
  clients_[static_cast<std::size_t>(id.index)].demand = demand;
}

void MemorySystem::set_class_throttle(MemClass cls, BitRate cap) {
  class_throttle_bps_[static_cast<std::size_t>(cls)] = cap.bps();
}

double MemorySystem::throttled_core_peak(const FluidClient& c) const {
  double peak = c.per_core_peak.bps();
  const double throttle = class_throttle_bps_[static_cast<std::size_t>(c.cls)];
  if (throttle > 0.0 && c.cores > 0) {
    peak = std::min(peak, throttle / static_cast<double>(c.cores));
  }
  return peak;
}

double MemorySystem::fluid_bw_at(TimePs latency) const {
  double total = 0.0;
  for (const auto& c : clients_) {
    if (c.closed_loop) {
      if (c.cores <= 0) continue;
      // Closed loop: each core sustains outstanding/latency, but never
      // more than its core-side peak (prefetcher/fill-buffer limit).
      const double by_latency = c.per_core_outstanding.bits() / latency.sec();
      total += static_cast<double>(c.cores) * std::min(throttled_core_peak(c), by_latency);
    } else {
      double d = c.demand.bps();
      const double throttle = class_throttle_bps_[static_cast<std::size_t>(c.cls)];
      if (throttle > 0.0) d = std::min(d, throttle);
      total += d;
    }
  }
  return total;
}

void MemorySystem::on_epoch() {
  const double cap = params_.achievable_bw().bps();

  // Measured discrete offered rate over the epoch that just ended.
  double discrete_bytes = 0.0;
  for (double b : discrete_bytes_epoch_) discrete_bytes += b;
  discrete_rate_ = BitRate(discrete_bytes * 8.0 / epoch_.sec());
  std::fill(std::begin(discrete_bytes_epoch_), std::end(discrete_bytes_epoch_), 0.0);

  // Find the operating point. Below saturation the latency follows the
  // load-latency curve; f(rho) = offered(rho)/cap is non-increasing in
  // rho, so bisection on g(rho) = f(rho) - rho (strictly decreasing)
  // finds the unique fixed point.
  constexpr double kRhoMax = 0.995;
  auto offered_at = [&](double rho) {
    return fluid_bw_at(params_.latency_at(rho)) + discrete_rate_.bps();
  };

  if (offered_at(kRhoMax) >= kRhoMax * cap) {
    // Saturated: latency rises above the curve until closed-loop
    // clients throttle themselves down to the achievable bandwidth.
    TimePs lo = params_.latency_at(kRhoMax);
    TimePs hi = params_.max_latency;
    if (fluid_bw_at(hi) + discrete_rate_.bps() > cap) {
      // Inelastic load alone exceeds capacity; pin at the cap.
      latency_ = hi;
    } else {
      for (int i = 0; i < 50; ++i) {
        const TimePs mid = lo + (hi - lo) / 2;
        if (fluid_bw_at(mid) + discrete_rate_.bps() > cap) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      latency_ = hi;
    }
    rho_ = std::min((fluid_bw_at(latency_) + discrete_rate_.bps()) / cap, 1.05);
  } else {
    double lo = 0.0, hi = kRhoMax;
    for (int i = 0; i < 50; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (offered_at(mid) > mid * cap) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    rho_ = hi;
    latency_ = params_.latency_at(rho_);
  }

  // Record each fluid client's achieved bandwidth at the new operating
  // point and integrate it into the measurement window.
  for (auto& c : clients_) {
    double bw = 0.0;
    if (c.closed_loop) {
      if (c.cores > 0) {
        const double by_latency = c.per_core_outstanding.bits() / latency_.sec();
        bw = static_cast<double>(c.cores) * std::min(throttled_core_peak(c), by_latency);
      }
    } else {
      bw = c.demand.bps();
      const double throttle = class_throttle_bps_[static_cast<std::size_t>(c.cls)];
      if (throttle > 0.0) bw = std::min(bw, throttle);
    }
    c.achieved = BitRate(bw);
    const double bytes = bw / 8.0 * epoch_.sec();
    window_bytes_by_class_[static_cast<std::size_t>(c.cls)] += bytes;
    window_read_bytes_ += bytes * c.read_fraction;
    window_write_bytes_ += bytes * (1.0 - c.read_fraction);
  }
}

TimePs MemorySystem::request(MemClass cls, Bytes n, bool is_read) {
  const double bytes = static_cast<double>(n.count());
  discrete_bytes_epoch_[static_cast<std::size_t>(cls)] += bytes;
  window_bytes_by_class_[static_cast<std::size_t>(cls)] += bytes;
  if (is_read) {
    window_read_bytes_ += bytes;
  } else {
    window_write_bytes_ += bytes;
  }
  // Completion = loaded access latency (with +-10% service jitter) plus
  // the burst's own serialization time on the bus.
  const double jitter = rng_.uniform(0.9, 1.1);
  const TimePs serialization = params_.achievable_bw().time_to_send(n);
  return TimePs::from_ns(latency_.ns() * jitter) + serialization;
}

void MemorySystem::begin_window() {
  window_start_ = sim_.now();
  std::fill(std::begin(window_bytes_by_class_), std::end(window_bytes_by_class_), 0.0);
  window_read_bytes_ = 0.0;
  window_write_bytes_ = 0.0;
}

BandwidthReport MemorySystem::window_report() const {
  BandwidthReport r;
  const double secs = (sim_.now() - window_start_).sec();
  if (secs <= 0.0) return r;
  for (int i = 0; i < kMemClassCount; ++i) {
    r.by_class_gbytes_per_sec[static_cast<std::size_t>(i)] =
        window_bytes_by_class_[i] / secs * 1e-9;
    r.total_gbytes_per_sec += r.by_class_gbytes_per_sec[static_cast<std::size_t>(i)];
  }
  r.read_gbytes_per_sec = window_read_bytes_ / secs * 1e-9;
  r.write_gbytes_per_sec = window_write_bytes_ / secs * 1e-9;
  return r;
}

}  // namespace hicc::mem
