// STREAM-like memory-bandwidth antagonist (§3.2's workload).
//
// The paper runs one STREAM instance per physical core, up to 15 cores,
// to contend the memory bus. STREAM is a streaming closed loop: each
// core keeps a bounded number of cache lines in flight (line-fill
// buffers plus hardware-prefetch depth) and is additionally limited by
// core-side fill bandwidth. We model exactly that via a closed-loop
// fluid client of the MemorySystem.
//
// Defaults are calibrated to the paper's testbed: ~8.5 GB/s per core,
// saturating the node at ~90 GB/s with 11+ cores, with a 2:1 read:write
// mix (STREAM triad reads two arrays and writes one, and the write
// allocates, so ~65 GB/s reads + ~25 GB/s writes at saturation).
#pragma once

#include "common/units.h"
#include "mem/memory_system.h"

namespace hicc::mem {

/// Calibration knobs for the antagonist.
struct AntagonistParams {
  /// Core-side streaming limit of one core.
  BitRate per_core_peak = BitRate::gigabytes_per_sec(8.5);
  /// Bytes one core keeps outstanding to DRAM (fill buffers + prefetch).
  Bytes per_core_outstanding = Bytes(32 * 64);
  /// Fraction of traffic that is reads (STREAM triad ~ 2/3).
  double read_fraction = 2.0 / 3.0;
};

/// Convenience wrapper owning the antagonist's fluid-client handle.
class StreamAntagonist {
 public:
  StreamAntagonist(MemorySystem& mem, const AntagonistParams& params, int cores)
      : mem_(mem),
        cores_(cores),
        id_(mem.add_closed_loop(MemClass::kAntagonist, cores, params.per_core_peak,
                                params.per_core_outstanding, params.read_fraction)) {}

  /// Number of cores currently running the antagonist.
  [[nodiscard]] int cores() const { return cores_; }

  /// Starts/stops antagonist cores.
  void set_cores(int cores) {
    cores_ = cores;
    mem_.set_cores(id_, cores);
  }

  /// Currently achieved aggregate bandwidth.
  [[nodiscard]] BitRate achieved() const { return mem_.achieved(id_); }

 private:
  MemorySystem& mem_;
  int cores_;
  ClientId id_;
};

}  // namespace hicc::mem
