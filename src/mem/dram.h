// DRAM channel parameters and the analytic load-latency curve.
//
// The testbed in the paper (§3) has 6 DDR4-2400 channels per NUMA node:
// 115.2 GB/s theoretical peak, ~90 GB/s achievable by STREAM. We model
// the memory bus of one NUMA node as a single shared server whose
// capacity is theoretical peak x an efficiency factor (bank conflicts,
// read/write turnaround), and whose latency follows a standard
// closed-system load-latency curve: flat near idle, growing sharply as
// offered load approaches the achievable bandwidth.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.h"

namespace hicc::mem {

/// Static description of one NUMA node's DRAM resources.
struct DramParams {
  /// Number of memory channels attached to this NUMA node.
  int channels = 6;
  /// Per-channel data rate in mega-transfers/second (DDR4-2400).
  double mega_transfers_per_sec = 2400.0;
  /// Bus width per channel in bytes (64-bit DDR bus).
  int bus_bytes = 8;
  /// Fraction of theoretical bandwidth achievable with a mixed
  /// read/write streaming pattern (bank conflicts, turnaround, refresh).
  double efficiency = 0.78;
  /// Unloaded (idle) access latency, CPU-to-DRAM-and-back.
  TimePs idle_latency = TimePs::from_ns(90);
  /// Hard cap on modeled latency under extreme overload.
  TimePs max_latency = TimePs::from_ns(2000);
  /// Linear and heavy-traffic coefficients of the load-latency curve.
  double lat_linear_coeff = 0.4;
  double lat_queueing_coeff = 0.2;

  /// Theoretical peak bandwidth (115.2 GB/s for the defaults).
  [[nodiscard]] constexpr BitRate theoretical_bw() const {
    return BitRate(static_cast<double>(channels) * mega_transfers_per_sec * 1e6 *
                   static_cast<double>(bus_bytes) * 8.0);
  }
  /// Achievable bandwidth = theoretical x efficiency (~89.9 GB/s).
  [[nodiscard]] constexpr BitRate achievable_bw() const {
    return theoretical_bw() * efficiency;
  }

  /// Load-latency curve: expected access latency at utilization
  /// `rho` = offered / achievable, clamped to [0, ~1). The shape is
  /// idle * (1 + a*rho + b*rho^2/(1-rho)) -- linear bank-pressure term
  /// plus an M/G/1-style heavy-traffic term -- capped at max_latency.
  [[nodiscard]] TimePs latency_at(double rho) const {
    rho = std::clamp(rho, 0.0, 0.995);
    const double factor =
        1.0 + lat_linear_coeff * rho + lat_queueing_coeff * rho * rho / (1.0 - rho);
    const double ns = std::min(idle_latency.ns() * factor, max_latency.ns());
    return TimePs::from_ns(ns);
  }
};

/// One DRAM cache-line transfer (the unit of memory requests).
inline constexpr Bytes kCacheLine{64};

}  // namespace hicc::mem
