// Direct cache access (Intel DDIO) model -- the paper's footnote 2:
// "If Direct Cache Access (e.g., DDIO) is enabled, data is first moved
// to the CPU cache; this may result in eviction of existing cache
// contents to the host memory over the same memory bus."
//
// DDIO limits inbound PCIe writes to a small number of LLC ways
// (2 of 11 on Skylake). When the IO working set (the registered Rx
// buffers the NIC scatters packets across) fits in that slice, DMA
// writes are absorbed by the LLC and never touch the memory bus; when
// it is much larger -- the BDP-scale buffer pools of §3's workload --
// almost every write misses, allocates, and evicts dirty lines, so the
// full stream leaks to DRAM (the ~11.8 GB/s of §3.2). The leak
// probability is modeled as an LRU-over-random-traffic residency:
// hit = min(1, ddio_capacity / io_working_set).
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"

namespace hicc::mem {

/// LLC/DDIO geometry (Skylake-SP defaults, scaled to 2 NUMA sockets'
/// worth of 28 cores x 1.375MB LLC slices).
struct DdioParams {
  bool enabled = true;
  Bytes llc_size = Bytes::mib(38.5);
  int llc_ways = 11;
  /// Ways inbound IO is allowed to allocate into.
  int ddio_ways = 2;
  /// Latency of a DMA write absorbed by the LLC.
  TimePs llc_write_latency = TimePs::from_ns(40);
  /// Fraction of the DDIO slice effectively usable by this device
  /// (other IO and code/data contend for the same ways).
  double occupancy_efficiency = 0.8;
};

/// Stateless-per-write DDIO hit model; the working set is owned by the
/// host (it knows what the NIC stack registered).
class DdioModel {
 public:
  DdioModel(DdioParams params, Rng rng) : params_(params), rng_(rng) {}

  [[nodiscard]] bool enabled() const { return params_.enabled; }

  /// Registered IO buffer bytes the NIC scatters DMA writes across.
  void set_io_working_set(Bytes ws) { working_set_ = ws; }
  [[nodiscard]] Bytes io_working_set() const { return working_set_; }

  /// LLC bytes available to inbound IO.
  [[nodiscard]] Bytes capacity() const {
    const double frac = static_cast<double>(params_.ddio_ways) /
                        static_cast<double>(params_.llc_ways);
    return Bytes(static_cast<std::int64_t>(static_cast<double>(params_.llc_size.count()) *
                                           frac * params_.occupancy_efficiency));
  }

  /// Probability that a DMA write lands on an LLC-resident line.
  [[nodiscard]] double hit_fraction() const {
    if (!params_.enabled || working_set_.count() <= 0) return 0.0;
    return std::min(1.0, capacity() / working_set_);
  }

  /// Samples one DMA write; true = absorbed by the LLC (no DRAM
  /// traffic, llc_write_latency applies).
  [[nodiscard]] bool write_hits() { return rng_.chance(hit_fraction()); }

  /// Fault hook (mem.ddio_squeeze): shrinks/restores the IO-way
  /// allotment mid-run, emulating CAT reconfiguration or a competing
  /// device claiming ways.
  void set_ddio_ways(int ways) { params_.ddio_ways = ways; }

  [[nodiscard]] const DdioParams& params() const { return params_; }

 private:
  DdioParams params_;
  Rng rng_;
  Bytes working_set_{};
};

}  // namespace hicc::mem
