// The shared memory bus of one NUMA node (§3.2 of the paper).
//
// Clients of the memory bus fall into two kinds:
//
//  * Fluid clients -- CPU-side streaming traffic whose per-request
//    events would be intractable to simulate (a STREAM antagonist at
//    90 GB/s is ~1.4e9 cache lines/s). Closed-loop fluid clients (the
//    antagonist) are described by (cores, per-core peak, per-core
//    outstanding bytes); open fluid clients (rx-thread copies) are
//    described by a demand rate. Their achieved bandwidth is computed
//    analytically once per epoch.
//
//  * Discrete clients -- the NIC-side datapath (PCIe posted writes,
//    IOMMU page-walk reads, descriptor fetches). These are individually
//    simulated: each request samples a completion latency from the
//    current load-latency operating point. Their measured rate feeds
//    back into the next epoch's utilization.
//
// The epoch solver finds the operating point (utilization rho and
// latency L): below saturation, rho = offered/achievable and
// L = curve(rho); at saturation the closed-loop clients self-limit --
// each keeps a bounded number of bytes outstanding, so its bandwidth is
// outstanding/L -- and L rises until total offered load equals
// achievable bandwidth. Because CPU cores collectively keep far more
// bytes outstanding than the NIC's bounded write buffer, CPUs win a
// larger share when the bus saturates; this is the paper's observed
// unfairness and needs no explicit scheduler bias.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "mem/dram.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hicc::mem {

/// Traffic classes, used for bandwidth attribution (Fig 6's bars) and
/// for MBA-style QoS throttles.
enum class MemClass : std::uint8_t {
  kNicDma,      // PCIe posted writes of packet payloads/descriptors
  kIommuWalk,   // page-table walk reads issued by the IOMMU
  kCpuCopy,     // rx-thread copies to application buffers
  kAntagonist,  // STREAM-like antagonist traffic
  kOther,
};
inline constexpr int kMemClassCount = 5;

/// Returns a short label for a traffic class (used in reports).
[[nodiscard]] const char* to_string(MemClass cls);

/// Handle to a registered fluid client.
struct ClientId {
  int index = -1;
  [[nodiscard]] constexpr bool valid() const { return index >= 0; }
};

/// Per-class achieved-bandwidth snapshot (averaged over a window).
struct BandwidthReport {
  double total_gbytes_per_sec = 0.0;
  double read_gbytes_per_sec = 0.0;
  double write_gbytes_per_sec = 0.0;
  std::array<double, kMemClassCount> by_class_gbytes_per_sec{};
};

/// The memory bus + controller of one NUMA node.
class MemorySystem {
 public:
  /// `epoch` is the fluid re-solve interval; 5us keeps the solver cost
  /// negligible while tracking workload shifts far faster than the
  /// congestion-control timescale (~20us RTT, 100us host target).
  /// `tracer`, when non-null, registers the `mem.*` probes (polled --
  /// no per-request tracing work). Attach it to at most one
  /// MemorySystem per Tracer: probe names are shared get-or-create
  /// series, so a second node would silently merge into the first.
  MemorySystem(sim::Simulator& sim, DramParams params, Rng rng,
               TimePs epoch = TimePs::from_us(5), trace::Tracer* tracer = nullptr);

  // ------------------------------------------------------- fluid side

  /// Registers a closed-loop streaming client (e.g. STREAM antagonist).
  /// `per_core_peak` is the core-side bandwidth limit of one core;
  /// `per_core_outstanding` is how many bytes one core keeps in flight
  /// (line-fill buffers + prefetch depth); `read_fraction` splits the
  /// achieved bandwidth for read/write reporting.
  ClientId add_closed_loop(MemClass cls, int cores, BitRate per_core_peak,
                           Bytes per_core_outstanding, double read_fraction);

  /// Changes the active core count of a closed-loop client.
  void set_cores(ClientId id, int cores);

  /// Registers an open-loop fluid client (demand set externally).
  ClientId add_open(MemClass cls, double read_fraction);

  /// Sets the offered rate of an open-loop client.
  void set_demand(ClientId id, BitRate demand);

  /// MBA-style QoS: caps the aggregate bandwidth of `cls` (§4 ablation).
  /// A zero/negative cap removes the throttle.
  void set_class_throttle(MemClass cls, BitRate cap);

  /// Achieved bandwidth of a fluid client at the current operating
  /// point (updated once per epoch).
  [[nodiscard]] BitRate achieved(ClientId id) const {
    return clients_[static_cast<std::size_t>(id.index)].achieved;
  }

  // ---------------------------------------------------- discrete side

  /// Issues a discrete request of `n` bytes and returns its completion
  /// latency at the current operating point (including a small random
  /// service jitter and the burst's own serialization time). The bytes
  /// are accounted toward next epoch's utilization under `cls`.
  [[nodiscard]] TimePs request(MemClass cls, Bytes n, bool is_read);

  /// Current modeled access latency (no accounting, no jitter).
  [[nodiscard]] TimePs current_latency() const { return latency_; }

  /// Current utilization (offered / achievable), possibly > 1 briefly.
  [[nodiscard]] double utilization() const { return rho_; }

  // ------------------------------------------------------------ stats

  /// Starts a measurement window (typically at warmup end).
  void begin_window();

  /// Average achieved bandwidth since begin_window().
  [[nodiscard]] BandwidthReport window_report() const;

  [[nodiscard]] const DramParams& params() const { return params_; }

 private:
  struct FluidClient {
    MemClass cls;
    bool closed_loop;
    int cores = 0;
    BitRate per_core_peak{};
    Bytes per_core_outstanding{};
    BitRate demand{};     // open-loop clients only
    double read_fraction = 1.0;
    BitRate achieved{};   // updated by the solver
  };

  /// Re-solves the fluid operating point and integrates fluid bytes.
  void on_epoch();

  /// Total fluid bandwidth given a candidate latency, honoring peaks,
  /// outstanding limits, and class throttles.
  [[nodiscard]] double fluid_bw_at(TimePs latency) const;

  /// Applies per-class QoS caps to a candidate rate of one client.
  [[nodiscard]] double throttled_core_peak(const FluidClient& c) const;

  sim::Simulator& sim_;
  DramParams params_;
  Rng rng_;
  TimePs epoch_;

  std::vector<FluidClient> clients_;
  std::array<double, kMemClassCount> class_throttle_bps_{};  // <=0: none

  // Operating point.
  double rho_ = 0.0;
  TimePs latency_;

  // Discrete-side accounting for the current epoch.
  double discrete_bytes_epoch_[kMemClassCount] = {};
  double discrete_read_bytes_epoch_ = 0.0;
  double discrete_write_bytes_epoch_ = 0.0;
  BitRate discrete_rate_{};  // measured over last epoch (all classes)

  // Window accumulation (fluid integrated per epoch; discrete per request).
  TimePs window_start_{};
  double window_bytes_by_class_[kMemClassCount] = {};
  double window_read_bytes_ = 0.0;
  double window_write_bytes_ = 0.0;

  sim::PeriodicTask epoch_task_;
};

}  // namespace hicc::mem
