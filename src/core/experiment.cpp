#include "core/experiment.h"

#include <cassert>

namespace hicc {

Experiment::Experiment(ExperimentConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  cfg_.iommu.enabled = cfg_.iommu_enabled;
  cfg_.fabric.num_senders = cfg_.num_senders;

  if (cfg_.trace.enabled) tracer_ = std::make_unique<trace::Tracer>(sim_, cfg_.trace);

  // The factory builds the full stack (memory pair, antagonist,
  // receiver) in the canonical fork order; ClusterExperiment runs the
  // identical path once per host, which is what makes the degenerate
  // one-leaf parity bitwise rather than coincidental.
  HostFactory factory(sim_);
  FullHost host = factory.make_full_host(cfg_, cfg_.num_senders, rng_, tracer_.get());
  mem_ = std::move(host.mem);
  remote_mem_ = std::move(host.remote_mem);
  antagonist_ = std::move(host.antagonist);
  receiver_ = std::move(host.receiver);

  fabric_ = std::make_unique<net::Fabric>(
      sim_, cfg_.fabric, [this](net::Packet p) { receiver_->on_arrival(std::move(p)); },
      [this](int i, net::Packet p) {
        senders_[static_cast<std::size_t>(i)]->on_packet(p);
      });

  senders_.reserve(static_cast<std::size_t>(cfg_.num_senders));
  for (int i = 0; i < cfg_.num_senders; ++i) {
    senders_.push_back(std::make_unique<transport::SenderHost>(
        sim_, i, cfg_.wire,
        [this, i](net::Packet p) { return fabric_->send_from_sender(i, std::move(p)); },
        rng_.fork()));
  }
  for (std::int32_t flow = 0; flow < receiver_->num_flows(); ++flow) {
    senders_[static_cast<std::size_t>(receiver_->sender_of_flow(flow))]->add_flow(flow,
                                                                                  make_cc());
  }

  receiver_->set_transmit(
      [this](net::Packet p) { return fabric_->send_from_receiver(std::move(p)); });

  if (tracer_ != nullptr) {
    tracer_->gauge("transport.cwnd_avg", "packets", [this] {
      double sum = 0.0;
      std::int64_t flows = 0;
      for (const auto& sender : senders_) {
        for (const auto& [id, flow] : sender->flows()) {
          sum += flow->cwnd();
          ++flows;
        }
      }
      return flows > 0 ? sum / static_cast<double>(flows) : 0.0;
    });
  }

  sim_.set_watchdog(cfg_.watchdog);

  // Last on purpose: the engine forks the experiment RNG after every
  // component has taken its stream, and scripts with no due events
  // schedule nothing that executes -- so an idle engine leaves the run
  // bitwise identical to one without it (tests/fault_test.cpp).
  if (!cfg_.faults.empty()) {
    fault_engine_ = std::make_unique<fault::FaultEngine>(
        sim_, cfg_.faults,
        fault::FaultTargets{.fabric = fabric_.get(),
                            .receiver = receiver_.get(),
                            .antagonist = antagonist_.get()},
        rng_.fork(), tracer_.get());
  }
}

Experiment::~Experiment() = default;

std::unique_ptr<transport::CongestionControl> Experiment::make_cc() {
  return make_congestion_control(sim_, cfg_, tracer_.get());
}

void Experiment::start() {
  if (started_) return;
  started_ = true;
  if (tracer_ != nullptr) tracer_->start();
  receiver_->start();
}

void Experiment::advance(TimePs dt) { sim_.run_until(sim_.now() + dt); }

HostHarvestSources Experiment::harvest_sources() const {
  HostHarvestSources src;
  src.sim = &sim_;
  src.receiver = receiver_.get();
  src.mem = mem_.get();
  src.remote_mem = remote_mem_.get();
  src.senders.reserve(senders_.size());
  for (const auto& sender : senders_) src.senders.push_back(sender.get());
  src.fault_engine = fault_engine_.get();
  src.wire = cfg_.wire;
  src.link_rate = cfg_.fabric.link_rate;
  return src;
}

void Experiment::begin_window() {
  window_start_ = snapshot_host_counters(harvest_sources(), fabric_->fabric_drops());
  window_start_time_ = sim_.now();
  mem_->begin_window();
  remote_mem_->begin_window();
  receiver_->begin_window();
}

Metrics Experiment::snapshot() const {
  return harvest_host_window(harvest_sources(), window_start_, window_start_time_,
                             fabric_->fabric_drops());
}

Metrics Experiment::run() {
  start();
  sim_.run_until(cfg_.warmup);
  begin_window();
  sim_.run_until(cfg_.warmup + cfg_.measure);
  return snapshot();
}

}  // namespace hicc
