#include "core/experiment.h"

#include <cassert>

#include "transport/swift.h"

namespace hicc {

Experiment::Experiment(ExperimentConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  cfg_.iommu.enabled = cfg_.iommu_enabled;
  cfg_.fabric.num_senders = cfg_.num_senders;

  if (cfg_.trace.enabled) tracer_ = std::make_unique<trace::Tracer>(sim_, cfg_.trace);

  // Probes cover the NIC-local NUMA node only; the remote node's
  // mem.* probes would collide by name and it is idle in most setups.
  mem_ = std::make_unique<mem::MemorySystem>(sim_, cfg_.dram, rng_.fork(), TimePs::from_us(5),
                                             tracer_.get());
  remote_mem_ = std::make_unique<mem::MemorySystem>(sim_, cfg_.dram, rng_.fork());
  // §4: scheduling the memory-hungry application on the NUMA node the
  // NIC is NOT attached to removes it from the contended bus entirely.
  mem::MemorySystem& antagonist_node = cfg_.antagonist_remote_numa ? *remote_mem_ : *mem_;
  antagonist_ = std::make_unique<mem::StreamAntagonist>(antagonist_node, cfg_.antagonist,
                                                        cfg_.antagonist_cores);
  if (cfg_.antagonist_throttle_gbps > 0.0) {
    antagonist_node.set_class_throttle(
        mem::MemClass::kAntagonist,
        BitRate::gigabytes_per_sec(cfg_.antagonist_throttle_gbps));
  }

  host::ReceiverParams rp;
  rp.threads = cfg_.rx_threads;
  rp.data_region = cfg_.data_region;
  rp.hugepages = cfg_.hugepages;
  rp.iommu = cfg_.iommu;
  rp.pcie = cfg_.pcie;
  rp.nic = cfg_.nic;
  rp.nic.ats_enabled = cfg_.ats_enabled;
  rp.nic.strict_invalidation = cfg_.strict_iommu;
  rp.thread = cfg_.thread;
  rp.ddio = cfg_.ddio;
  rp.copy_read_fraction = cfg_.copy_read_fraction;
  rp.read_size = cfg_.read_size;
  rp.read_pipeline = cfg_.read_pipeline;
  rp.victim_flows = cfg_.victim_flows;
  rp.victim_read_size = cfg_.victim_read_size;
  rp.send_host_signals = (cfg_.cc == transport::CcAlgorithm::kHostSignal);
  receiver_ = std::make_unique<host::ReceiverHost>(sim_, *mem_, rp, cfg_.num_senders,
                                                   cfg_.wire, rng_.fork(), tracer_.get());

  fabric_ = std::make_unique<net::Fabric>(
      sim_, cfg_.fabric, [this](net::Packet p) { receiver_->on_arrival(std::move(p)); },
      [this](int i, net::Packet p) {
        senders_[static_cast<std::size_t>(i)]->on_packet(p);
      });

  senders_.reserve(static_cast<std::size_t>(cfg_.num_senders));
  for (int i = 0; i < cfg_.num_senders; ++i) {
    senders_.push_back(std::make_unique<transport::SenderHost>(
        sim_, i, cfg_.wire,
        [this, i](net::Packet p) { return fabric_->send_from_sender(i, std::move(p)); },
        rng_.fork()));
  }
  for (std::int32_t flow = 0; flow < receiver_->num_flows(); ++flow) {
    senders_[static_cast<std::size_t>(receiver_->sender_of_flow(flow))]->add_flow(flow,
                                                                                  make_cc());
  }

  receiver_->set_transmit(
      [this](net::Packet p) { return fabric_->send_from_receiver(std::move(p)); });

  if (tracer_ != nullptr) {
    tracer_->gauge("transport.cwnd_avg", "packets", [this] {
      double sum = 0.0;
      std::int64_t flows = 0;
      for (const auto& sender : senders_) {
        for (const auto& [id, flow] : sender->flows()) {
          sum += flow->cwnd();
          ++flows;
        }
      }
      return flows > 0 ? sum / static_cast<double>(flows) : 0.0;
    });
  }

  sim_.set_watchdog(cfg_.watchdog);

  // Last on purpose: the engine forks the experiment RNG after every
  // component has taken its stream, and scripts with no due events
  // schedule nothing that executes -- so an idle engine leaves the run
  // bitwise identical to one without it (tests/fault_test.cpp).
  if (!cfg_.faults.empty()) {
    fault_engine_ = std::make_unique<fault::FaultEngine>(
        sim_, cfg_.faults,
        fault::FaultTargets{fabric_.get(), receiver_.get(), antagonist_.get()}, rng_.fork(),
        tracer_.get());
  }
}

Experiment::~Experiment() = default;

std::unique_ptr<transport::CongestionControl> Experiment::make_cc() {
  switch (cfg_.cc) {
    case transport::CcAlgorithm::kSwift:
      return std::make_unique<transport::SwiftCc>(sim_, cfg_.swift,
                                                  /*react_to_host_signal=*/false, tracer_.get());
    case transport::CcAlgorithm::kTcpLike:
      return std::make_unique<transport::TcpLikeCc>(sim_);
    case transport::CcAlgorithm::kHostSignal:
      return std::make_unique<transport::SwiftCc>(sim_, cfg_.swift,
                                                  /*react_to_host_signal=*/true, tracer_.get());
  }
  return nullptr;
}

void Experiment::start() {
  if (started_) return;
  started_ = true;
  if (tracer_ != nullptr) tracer_->start();
  receiver_->start();
}

void Experiment::advance(TimePs dt) { sim_.run_until(sim_.now() + dt); }

Experiment::CounterSnapshot Experiment::snapshot_counters() const {
  CounterSnapshot s;
  s.iotlb_misses = receiver_->iommu().stats().misses;
  s.iotlb_lookups = receiver_->iommu().stats().lookups;
  s.nic_arrivals = receiver_->nic().stats().arrivals;
  s.nic_drops = receiver_->nic().stats().buffer_drops;
  s.delivered = receiver_->nic().stats().delivered;
  s.fabric_drops = fabric_->fabric_drops();
  s.translation_stalls = receiver_->pcie().stats().translation_stalls;
  s.wb_stalls = receiver_->pcie().stats().write_buffer_stalls;
  s.hol_stalls = receiver_->nic().stats().hol_descriptor_stalls;
  for (const auto& sender : senders_) {
    for (const auto& [id, flow] : sender->flows()) {
      s.data_sent += flow->stats().data_packets_sent;
      s.retransmits += flow->stats().retransmits;
      s.rto_fires += flow->stats().rto_fires;
    }
  }
  return s;
}

void Experiment::begin_window() {
  window_start_ = snapshot_counters();
  window_start_time_ = sim_.now();
  mem_->begin_window();
  remote_mem_->begin_window();
  receiver_->begin_window();
}

Metrics Experiment::snapshot() const {
  const CounterSnapshot now = snapshot_counters();
  const double secs = (sim_.now() - window_start_time_).sec();
  Metrics m;
  m.simulated_seconds = secs;
  m.events_executed = sim_.executed();
  switch (sim_.abort_cause()) {
    case sim::AbortCause::kNone:
      m.run_status = RunStatus::kOk;
      break;
    case sim::AbortCause::kEventBudget:
      m.run_status = RunStatus::kEventBudget;
      break;
    case sim::AbortCause::kTimestampStall:
      m.run_status = RunStatus::kStalled;
      break;
  }
  m.run_status_detail = sim_.abort_reason();
  if (fault_engine_ != nullptr) {
    const fault::FaultReport fr = fault_engine_->report();
    m.fault_windows = fr.windows;
    m.fault_drops = fr.drops;
    m.fault_active_us = fr.active_us;
    m.fault_blind_us = fr.blind_us;
  }
  if (secs <= 0.0) return m;

  const auto& win = receiver_->window();
  m.app_throughput_gbps = static_cast<double>(win.processed_bytes) * 8.0 / secs * 1e-9;

  const std::int64_t arrivals = now.nic_arrivals - window_start_.nic_arrivals;
  const double wire_bits =
      static_cast<double>(arrivals) * cfg_.wire.data_wire().bits();
  m.link_utilization = wire_bits / secs / cfg_.fabric.link_rate.bps();

  m.delivered_packets = win.processed_packets;
  m.nic_buffer_drops = now.nic_drops - window_start_.nic_drops;
  m.fabric_drops = now.fabric_drops - window_start_.fabric_drops;
  m.data_packets_sent = (now.data_sent - window_start_.data_sent) +
                        (now.retransmits - window_start_.retransmits);
  m.retransmits = now.retransmits - window_start_.retransmits;
  m.rto_fires = now.rto_fires - window_start_.rto_fires;
  m.drop_rate = m.data_packets_sent > 0 ? static_cast<double>(m.nic_buffer_drops) /
                                              static_cast<double>(m.data_packets_sent)
                                        : 0.0;

  m.iotlb_misses = now.iotlb_misses - window_start_.iotlb_misses;
  m.iotlb_lookups = now.iotlb_lookups - window_start_.iotlb_lookups;
  const std::int64_t delivered_delta = now.delivered - window_start_.delivered;
  m.iotlb_misses_per_packet =
      delivered_delta > 0
          ? static_cast<double>(m.iotlb_misses) / static_cast<double>(delivered_delta)
          : 0.0;

  m.memory = mem_->window_report();
  m.remote_memory = remote_mem_->window_report();
  m.host_delay_p50_us = win.host_delay_us.percentile(50);
  m.host_delay_p99_us = win.host_delay_us.percentile(99);
  m.host_delay_max_us = win.host_delay_us.max_value();
  m.victim_reads = win.victim_read_us.count();
  m.victim_read_p50_us = win.victim_read_us.percentile(50);
  m.victim_read_p99_us = win.victim_read_us.percentile(99);

  m.pcie_translation_stalls = now.translation_stalls - window_start_.translation_stalls;
  m.pcie_write_buffer_stalls = now.wb_stalls - window_start_.wb_stalls;
  m.hol_descriptor_stalls = now.hol_stalls - window_start_.hol_stalls;

  double cwnd_sum = 0.0;
  std::int64_t flows = 0;
  for (const auto& sender : senders_) {
    for (const auto& [id, flow] : sender->flows()) {
      cwnd_sum += flow->cwnd();
      ++flows;
    }
  }
  m.avg_cwnd = flows > 0 ? cwnd_sum / static_cast<double>(flows) : 0.0;
  return m;
}

Metrics Experiment::run() {
  start();
  sim_.run_until(cfg_.warmup);
  begin_window();
  sim_.run_until(cfg_.warmup + cfg_.measure);
  return snapshot();
}

}  // namespace hicc
