// Experiment configuration: one struct holding every knob of the
// paper's testbed, with defaults matching §3's setup (40 senders,
// Swift with a 100us host target, 100G access link, PCIe 3.0 x16,
// 128-entry IOTLB, 6xDDR4-2400 per NUMA node, 1MB NIC buffer, 12MB
// Rx memory region per thread, 2M hugepages, 4K MTU).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "fault/script.h"
#include "host/rx_thread.h"
#include "iommu/iommu.h"
#include "mem/ddio.h"
#include "mem/dram.h"
#include "mem/stream_antagonist.h"
#include "net/fabric.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "pcie/params.h"
#include "trace/trace.h"
#include "transport/cc.h"
#include "transport/swift.h"

namespace hicc {

/// Full description of one experiment run.
struct ExperimentConfig {
  // ------------------------------------------------------- workload
  int num_senders = 40;
  int rx_threads = 12;
  Bytes read_size = Bytes(16 * 1024);
  int read_pipeline = 1;

  // ------------------------------------------- receiver-host knobs
  /// IOMMU ON/OFF (Figures 3, 5, 6).
  bool iommu_enabled = true;
  /// 2M vs 4K data mappings (Figure 4).
  bool hugepages = true;
  /// Rx memory region registered per thread (Figure 5).
  Bytes data_region = Bytes::mib(12);
  /// STREAM antagonist cores (Figure 6).
  int antagonist_cores = 0;
  /// MBA-style cap on antagonist bandwidth, GB/s; <= 0 disables (§4).
  double antagonist_throttle_gbps = 0.0;
  /// §4's "coordinated congestion response": run the antagonist on the
  /// other NUMA node, off the NIC's memory bus.
  bool antagonist_remote_numa = false;
  /// PCIe ATS (§4a): device-side address translation with a NIC TLB.
  bool ats_enabled = false;
  /// Strict IOMMU mode: invalidate each buffer's translation on
  /// delivery (the mode §3.1 avoids because it is "known to cause even
  /// worse IOTLB misses").
  bool strict_iommu = false;
  /// Direct cache access (footnote 2); enabled on the paper's testbed.
  mem::DdioParams ddio;
  /// Latency-sensitive victim flows sharing the NIC buffer (isolation
  /// experiments) and their read size.
  int victim_flows = 0;
  Bytes victim_read_size = Bytes(4096);

  // ------------------------------------------------------ protocol
  transport::CcAlgorithm cc = transport::CcAlgorithm::kSwift;
  transport::SwiftParams swift;

  // ------------------------------------------------- subsystem knobs
  iommu::IommuParams iommu;   // `enabled` is overridden by iommu_enabled
  pcie::PcieParams pcie;
  nic::NicParams nic;
  mem::DramParams dram;
  mem::AntagonistParams antagonist;
  net::FabricParams fabric;   // num_senders is overridden
  net::WireFormat wire;
  host::RxThreadParams thread;
  double copy_read_fraction = 0.29;

  // ---------------------------------------------------- run control
  TimePs warmup = TimePs::from_ms(10);
  TimePs measure = TimePs::from_ms(30);
  std::uint64_t seed = 1;
  /// Run watchdog (docs/FAULTS.md): max_events = 0 leaves the event
  /// budget unlimited; the same-timestamp guard catches pathological
  /// self-rescheduling loops without bounding legitimate runs (the
  /// densest healthy instant is a few hundred events).
  sim::WatchdogParams watchdog{.max_events = 0, .max_events_per_timestamp = 1'000'000};

  // ---------------------------------------------------------- faults
  /// Mid-run disturbance script (docs/FAULTS.md). Empty by default: no
  /// FaultEngine is constructed and the run is bitwise identical to a
  /// build without the fault subsystem.
  fault::FaultScript faults;

  // ------------------------------------------------------- telemetry
  /// Time-series tracing (docs/OBSERVABILITY.md). Off by default: with
  /// `trace.enabled == false` no Tracer is constructed and the run is
  /// bitwise identical to a build without the trace layer.
  trace::TraceParams trace;
};

/// Knobs of the crash-isolating sweep supervisor (sweep/supervisor.h,
/// docs/ROBUSTNESS.md): how long one point's worker subprocess may
/// run, how many attempts it gets, and how retry backoff grows. Lives
/// in core so validate() can reject nonsensical values alongside the
/// experiment config; the sweep layer consumes it.
struct SupervisorParams {
  /// Wall-clock budget per worker attempt, seconds; a worker still
  /// running at the deadline is SIGKILLed and the attempt classified
  /// `timed_out`. 0 disables the timeout.
  double point_timeout_s = 0.0;
  /// Total attempts per point (first try + retries), >= 1. A point
  /// whose last attempt also fails is recorded `retries_exhausted`.
  int max_attempts = 3;
  /// Deterministic exponential backoff between attempts: attempt k+1
  /// starts backoff_base_s * 2^(k-1) seconds after attempt k failed,
  /// capped at backoff_cap_s. Base 0 retries immediately.
  double backoff_base_s = 0.2;
  double backoff_cap_s = 5.0;
  /// Concurrent worker processes. <= 0 resolves like sweep --jobs:
  /// $HICC_JOBS if set and positive, else hardware_concurrency().
  int jobs = 0;
};

}  // namespace hicc
