// Aggregated configuration validation.
//
// Experiment construction trusts its config; a nonsensical one (zero
// threads, an IOTLB smaller than its set count, a fault script aimed
// at a link that does not exist) either crashes deep in a component or
// silently produces garbage metrics. validate() checks the whole
// config up front and returns *every* violation it finds -- callers
// (hicc_cli, SweepRunner) print them all at once so a user fixes one
// round of mistakes, not one mistake per round.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"

namespace hicc {

struct ClusterConfig;

/// One rejected configuration aspect.
struct ConfigViolation {
  /// Dotted path of the offending field ("rx_threads",
  /// "faults[2].prob", ...).
  std::string field;
  /// What is wrong and what a valid value looks like.
  std::string message;
};

/// Checks `cfg` for nonsensical values across every subsystem plus the
/// fault script's semantic constraints. Empty result = valid. Never
/// throws; ordering is stable (declaration order, then script order).
[[nodiscard]] std::vector<ConfigViolation> validate(const ExperimentConfig& cfg);

/// Cluster variant (core/cluster.h): checks the topology shape, the
/// effective per-host config (violations prefixed "host."), and the
/// cluster fault script -- whose net.* events target topology links by
/// `leaf=`+`spine=` or `host=` rather than the legacy `link=` index.
[[nodiscard]] std::vector<ConfigViolation> validate(const ClusterConfig& cfg);

/// Supervisor variant (sweep/supervisor.h): checks the per-point
/// timeout/retry/backoff knobs. Violations use a "supervisor." field
/// prefix so they read unambiguously next to experiment-config ones.
[[nodiscard]] std::vector<ConfigViolation> validate(const SupervisorParams& params);

/// Renders violations one per line as "field: message" (for CLI
/// output and exception messages).
[[nodiscard]] std::string describe(const std::vector<ConfigViolation>& violations);

}  // namespace hicc
