// Metrics harvested from one experiment run -- the quantities the
// paper's figures plot, plus supporting counters for diagnosis.
//
// Conventions: rates are per second of *simulated* time; `_gbps`
// fields are decimal gigabits (1e9 bits) per second; `_us` fields are
// microseconds; bare counters count events over the measurement
// window (warmup excluded). For continuous time series of the same
// quantities, enable tracing (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory_system.h"

namespace hicc {

/// How a run ended. Anything but kOk means the run was stopped or lost
/// early: the first three non-ok values come from inside a simulation
/// (a Simulator watchdog, or the parallel engine's mailbox bound) and
/// leave Metrics valid for the simulated time that elapsed
/// (simulated_seconds tells how much); the last four are the sweep
/// supervisor's failure taxonomy (docs/ROBUSTNESS.md) for points whose
/// crash-isolated worker process died -- their Metrics are zeroed
/// because the worker never reported any.
enum class RunStatus : std::uint8_t {
  kOk,
  kEventBudget,       // watchdog: max_events exhausted
  kStalled,           // watchdog: no time progress (self-rescheduling loop)
  kMailboxOverflow,   // parallel engine: cross-partition mailbox bound hit
  kCrashed,           // supervisor: worker died (signal / bad exit / no record)
  kTimedOut,          // supervisor: worker exceeded the per-point timeout
  kOomKilled,         // supervisor: worker SIGKILLed from outside (OOM killer)
  kRetriesExhausted,  // supervisor: every allowed attempt failed
};

/// Short machine-stable label ("ok" / "event_budget" / "stalled" /
/// "mailbox_overflow" / "crashed" / "timed_out" / "oom_killed" /
/// "retries_exhausted"). These labels are the `run_status` field of
/// every hicc.sweep.v1 record and journal entry; the taxonomy table in
/// docs/ROBUSTNESS.md is kept in lockstep by the `docs-run-status`
/// lint rule.
[[nodiscard]] inline const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kEventBudget: return "event_budget";
    case RunStatus::kStalled: return "stalled";
    case RunStatus::kMailboxOverflow: return "mailbox_overflow";
    case RunStatus::kCrashed: return "crashed";
    case RunStatus::kTimedOut: return "timed_out";
    case RunStatus::kOomKilled: return "oom_killed";
    case RunStatus::kRetriesExhausted: return "retries_exhausted";
  }
  return "unknown";
}

/// Inverse of to_string(RunStatus): parses a label back into the enum
/// (used when re-reading hicc.sweep.v1 records and journal entries).
/// Returns false and leaves *out untouched on an unknown label.
[[nodiscard]] inline bool run_status_from_string(const std::string& label, RunStatus* out) {
  for (const RunStatus s :
       {RunStatus::kOk, RunStatus::kEventBudget, RunStatus::kStalled,
        RunStatus::kMailboxOverflow, RunStatus::kCrashed, RunStatus::kTimedOut,
        RunStatus::kOomKilled, RunStatus::kRetriesExhausted}) {
    if (label == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

/// Measurement-window results of an Experiment::run().
struct Metrics {
  // --------------------------------------------------- headline plots
  /// Application-level throughput: payload bytes processed per second,
  /// in Gbit/s (the paper's y-axis; ceiling ~92 Gbps at 4K MTU).
  double app_throughput_gbps = 0.0;
  /// Wire bytes arriving at the receiver NIC / access-link capacity;
  /// dimensionless fraction of line rate (Figure 1's x-axis).
  double link_utilization = 0.0;
  /// Host packet drops / data packets transmitted; dimensionless
  /// fraction in [0, 1] (Figure 1/3/4/5/6).
  double drop_rate = 0.0;
  /// IOTLB misses per delivered packet; dimensionless ratio
  /// (Figures 3/4/5, right panels).
  double iotlb_misses_per_packet = 0.0;
  /// Memory bandwidth on the NIC-local NUMA node, decimal GB/s per
  /// traffic class (Fig 6 top).
  mem::BandwidthReport memory;

  // ------------------------------------------------------ host delay
  /// Per-packet host delay (NIC arrival -> stack processing done),
  /// microseconds. This is the delay Swift's 100us host target sees.
  double host_delay_p50_us = 0.0;
  double host_delay_p99_us = 0.0;
  double host_delay_max_us = 0.0;

  // -------------------------------------- victim flows (isolation)
  /// Completed victim reads in the window (count).
  std::int64_t victim_reads = 0;
  /// Victim read-completion latency percentiles, microseconds.
  double victim_read_p50_us = 0.0;
  double victim_read_p99_us = 0.0;

  // ------------------------------- remote NUMA node (§4 experiments)
  /// Bandwidth report of the other NUMA node, decimal GB/s.
  mem::BandwidthReport remote_memory;

  // -------------------------------------------------------- counters
  // All counters are packet/event counts over the measurement window.
  std::int64_t data_packets_sent = 0;  // packets: first transmissions + retx
  std::int64_t retransmits = 0;        // packets
  std::int64_t rto_fires = 0;          // timeout events
  std::int64_t delivered_packets = 0;  // packets processed by rx threads
  std::int64_t nic_buffer_drops = 0;   // packets dropped at the NIC SRAM
  std::int64_t fabric_drops = 0;       // packets dropped in the fabric
  std::int64_t iotlb_misses = 0;       // translation lookups that walked
  std::int64_t iotlb_lookups = 0;      // translation lookups total
  std::int64_t pcie_translation_stalls = 0;  // head-of-line walk stalls
  std::int64_t pcie_write_buffer_stalls = 0; // write-buffer-full stalls
  std::int64_t hol_descriptor_stalls = 0;    // DMA stalls awaiting descriptors

  // ------------------------------------------------------- transport
  /// Mean congestion window across all flows at window end, in
  /// MTU-sized packets (not bytes).
  double avg_cwnd = 0.0;

  // ---------------------------------------------- faults (if scripted)
  // Zero/empty unless the run carried a FaultScript (docs/FAULTS.md).
  /// Fault-window activations over the whole run.
  std::int64_t fault_windows = 0;
  /// NIC buffer drops that landed inside fault windows.
  std::int64_t fault_drops = 0;
  /// Union of active fault windows, microseconds (whole run).
  double fault_active_us = 0.0;
  /// Fault-window time during which drops were occurring -- the spans
  /// where congestion control is blind to a host-side disturbance.
  double fault_blind_us = 0.0;

  // -------------------------------------------------------- run info
  /// How the run ended; != kOk when a watchdog aborted it early.
  RunStatus run_status = RunStatus::kOk;
  /// Human-readable abort explanation; empty when run_status == kOk.
  std::string run_status_detail;
  /// Length of the measurement window in simulated seconds.
  double simulated_seconds = 0.0;
  /// Total simulator events executed since construction (whole run,
  /// not the window). The only Metrics field tracing may change:
  /// enabling the tracer adds its sampler events here.
  std::uint64_t events_executed = 0;
};

}  // namespace hicc
