// Metrics harvested from one experiment run -- the quantities the
// paper's figures plot, plus supporting counters for diagnosis.
#pragma once

#include <cstdint>

#include "mem/memory_system.h"

namespace hicc {

/// Measurement-window results of an Experiment::run().
struct Metrics {
  // --------------------------------------------------- headline plots
  /// Application-level throughput: payload bytes processed per second
  /// (the paper's y-axis; ceiling ~92 Gbps at 4K MTU).
  double app_throughput_gbps = 0.0;
  /// Wire bytes arriving at the receiver NIC / access-link capacity
  /// (Figure 1's x-axis).
  double link_utilization = 0.0;
  /// Host packet drops / data packets transmitted (Figure 1/3/4/5/6).
  double drop_rate = 0.0;
  /// IOTLB misses per delivered packet (Figures 3/4/5, right panels).
  double iotlb_misses_per_packet = 0.0;
  /// Total memory bandwidth on the NIC-local NUMA node, GB/s (Fig 6 top).
  mem::BandwidthReport memory;

  // ------------------------------------------------------ host delay
  double host_delay_p50_us = 0.0;
  double host_delay_p99_us = 0.0;
  double host_delay_max_us = 0.0;

  // -------------------------------------- victim flows (isolation)
  std::int64_t victim_reads = 0;
  double victim_read_p50_us = 0.0;
  double victim_read_p99_us = 0.0;

  // ------------------------------- remote NUMA node (§4 experiments)
  mem::BandwidthReport remote_memory;

  // -------------------------------------------------------- counters
  std::int64_t data_packets_sent = 0;  // first transmissions + retx
  std::int64_t retransmits = 0;
  std::int64_t rto_fires = 0;
  std::int64_t delivered_packets = 0;
  std::int64_t nic_buffer_drops = 0;
  std::int64_t fabric_drops = 0;
  std::int64_t iotlb_misses = 0;
  std::int64_t iotlb_lookups = 0;
  std::int64_t pcie_translation_stalls = 0;
  std::int64_t pcie_write_buffer_stalls = 0;
  std::int64_t hol_descriptor_stalls = 0;

  // ------------------------------------------------------- transport
  double avg_cwnd = 0.0;

  // -------------------------------------------------------- run info
  double simulated_seconds = 0.0;
  std::uint64_t events_executed = 0;
};

}  // namespace hicc
