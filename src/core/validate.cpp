#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "core/cluster.h"

namespace hicc {
namespace {

/// Collects violations with a shared field-path prefix.
class Checker {
 public:
  explicit Checker(std::vector<ConfigViolation>* out) : out_(out) {}

  void fail(std::string field, std::string message) {
    out_->push_back(ConfigViolation{std::move(field), std::move(message)});
  }

  void require(bool ok, std::string field, std::string message) {
    if (!ok) fail(std::move(field), std::move(message));
  }

 private:
  std::vector<ConfigViolation>* out_;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Per-kind parameter contract of the fault script: which keys an
/// injector understands (validated so a typo like `core=8` fails loudly
/// instead of silently applying the default).
const std::set<std::string>& known_params(fault::FaultKind kind, bool clos_targets) {
  static const std::set<std::string> net_link{"link"};
  static const std::set<std::string> net_rate{"link", "gbps"};
  static const std::set<std::string> net_loss{"link", "prob"};
  // Cluster scripts target topology links by coordinates, not by the
  // legacy sender-uplink index.
  static const std::set<std::string> clos_link{"leaf", "spine", "host"};
  static const std::set<std::string> clos_rate{"leaf", "spine", "host", "gbps"};
  static const std::set<std::string> clos_loss{"leaf", "spine", "host", "prob"};
  static const std::set<std::string> none{};
  static const std::set<std::string> squeeze{"kb"};
  static const std::set<std::string> storm{"per_us"};
  static const std::set<std::string> antagonist{"cores"};
  static const std::set<std::string> ddio{"ways"};
  static const std::set<std::string> deschedule{"threads"};
  static const std::set<std::string> churn{"flows"};
  switch (kind) {
    case fault::FaultKind::kNetLinkDown:
      return clos_targets ? clos_link : net_link;
    case fault::FaultKind::kNetRate:
      return clos_targets ? clos_rate : net_rate;
    case fault::FaultKind::kNetLoss:
      return clos_targets ? clos_loss : net_loss;
    case fault::FaultKind::kNicCreditStall:
      return none;
    case fault::FaultKind::kNicBufferSqueeze:
      return squeeze;
    case fault::FaultKind::kIommuStorm:
      return storm;
    case fault::FaultKind::kMemAntagonist:
      return antagonist;
    case fault::FaultKind::kMemDdioSqueeze:
      return ddio;
    case fault::FaultKind::kHostDeschedule:
      return deschedule;
    case fault::FaultKind::kTransportChurn:
      return churn;
  }
  return none;
}

/// `topo` selects net.* targeting: null validates the legacy `link=`
/// index, non-null the cluster's `leaf=`+`spine=` / `host=` coordinates.
void validate_fault_event(const ExperimentConfig& cfg, const fault::FaultEvent& e,
                          const std::string& where, Checker& c,
                          const net::TopologyConfig* topo = nullptr) {
  c.require(e.at >= TimePs(0), where + ".at", "activation time must be >= 0");
  c.require(e.duration >= TimePs(0), where + ".duration", "duration must be >= 0");
  if (e.period != TimePs(0)) {
    c.require(e.duration > TimePs(0), where + ".period",
              "a repeating fault needs a finite window: give it a '+<duration>'");
    c.require(e.period > e.duration, where + ".period",
              "repeat period must exceed the window duration (the window must close before "
              "it reopens)");
  }

  for (const auto& [key, value] : e.params) {
    if (known_params(e.kind, topo != nullptr).count(key) == 0) {
      c.fail(where + "." + key,
             "unknown parameter for " + std::string(fault::to_string(e.kind)) +
                 " (check docs/FAULTS.md for the injector's keys)");
    }
    (void)value;
  }

  const auto has = [&e](const char* key) { return e.params.count(key) > 0; };
  const auto get = [&e](const char* key, double def) {
    const auto it = e.params.find(key);
    return it == e.params.end() ? def : it->second;
  };

  switch (e.kind) {
    case fault::FaultKind::kNetLinkDown:
    case fault::FaultKind::kNetRate:
    case fault::FaultKind::kNetLoss: {
      if (topo != nullptr) {
        const double leaf = get("leaf", -1.0);
        const double spine = get("spine", -1.0);
        const double host = get("host", -1.0);
        c.require(has("leaf") == has("spine"), where + ".leaf",
                  "leaf= and spine= name a leaf-spine link together; give both or neither");
        c.require(!(has("host") && (has("leaf") || has("spine"))), where + ".host",
                  "host= (an edge uplink) is exclusive with leaf=/spine=");
        if (has("leaf")) {
          c.require(leaf >= 0.0 && leaf < static_cast<double>(topo->leaves) &&
                        leaf == std::floor(leaf),
                    where + ".leaf",
                    "leaf must be an index in [0, " + std::to_string(topo->leaves) + ")");
        }
        if (has("spine")) {
          c.require(spine >= 0.0 && spine < static_cast<double>(topo->spines) &&
                        spine == std::floor(spine),
                    where + ".spine",
                    "spine must be an index in [0, " + std::to_string(topo->spines) + ")");
        }
        if (has("host")) {
          c.require(host >= 0.0 && host < static_cast<double>(topo->num_hosts()) &&
                        host == std::floor(host),
                    where + ".host",
                    "host must be an index in [0, " + std::to_string(topo->num_hosts()) +
                        ")");
        }
      } else {
        const double link = get("link", -1.0);
        c.require(link >= -1.0 && link < static_cast<double>(cfg.num_senders) &&
                      link == std::floor(link),
                  where + ".link",
                  "link must be 'access' (-1) or a sender uplink index in [0, " +
                      std::to_string(cfg.num_senders) + ")");
      }
      if (e.kind == fault::FaultKind::kNetRate) {
        c.require(has("gbps"), where + ".gbps", "net.rate needs a target rate, e.g. gbps=25");
        c.require(get("gbps", 1.0) > 0.0, where + ".gbps",
                  "downgraded rate must be > 0 (use net.link_down for a dead link)");
      }
      if (e.kind == fault::FaultKind::kNetLoss) {
        const double prob = get("prob", 0.1);
        c.require(prob >= 0.0 && prob <= 1.0, where + ".prob",
                  "loss probability must be in [0, 1], got " + fmt(prob));
      }
      break;
    }
    case fault::FaultKind::kNicCreditStall:
      break;
    case fault::FaultKind::kNicBufferSqueeze: {
      const double kb = get("kb", 64.0);
      c.require(kb > 0.0, where + ".kb", "squeezed buffer limit must be > 0 KiB");
      c.require(Bytes::kib(kb) >= cfg.wire.data_wire(), where + ".kb",
                "squeezed buffer must still fit one wire MTU (" +
                    std::to_string(cfg.wire.data_wire().count()) + " bytes)");
      break;
    }
    case fault::FaultKind::kIommuStorm: {
      const double per_us = get("per_us", 1.0);
      c.require(per_us > 0.0, where + ".per_us", "invalidation rate must be > 0 per us");
      c.require(per_us <= 1e6, where + ".per_us",
                "invalidation rate above 1e6/us gives the storm ticker a zero period (the "
                "run watchdog would abort it as a stall)");
      break;
    }
    case fault::FaultKind::kMemAntagonist:
      c.require(get("cores", 8.0) >= 0.0, where + ".cores", "core count must be >= 0");
      break;
    case fault::FaultKind::kMemDdioSqueeze: {
      const double ways = get("ways", 1.0);
      c.require(ways >= 0.0 && ways <= static_cast<double>(cfg.ddio.llc_ways), where + ".ways",
                "squeezed way count must be in [0, llc_ways=" +
                    std::to_string(cfg.ddio.llc_ways) + "]");
      break;
    }
    case fault::FaultKind::kHostDeschedule: {
      const double threads = get("threads", 1.0);
      c.require(threads >= 1.0 && threads <= static_cast<double>(cfg.rx_threads),
                where + ".threads",
                "descheduled thread count must be in [1, rx_threads=" +
                    std::to_string(cfg.rx_threads) + "]");
      break;
    }
    case fault::FaultKind::kTransportChurn: {
      const int num_flows = cfg.num_senders * cfg.rx_threads + cfg.victim_flows;
      const double flows = get("flows", 1.0);
      c.require(flows >= 1.0 && flows <= static_cast<double>(num_flows), where + ".flows",
                "paused flow count must be in [1, num_flows=" + std::to_string(num_flows) +
                    "]");
      break;
    }
  }
}

}  // namespace

std::vector<ConfigViolation> validate(const ExperimentConfig& cfg) {
  std::vector<ConfigViolation> violations;
  Checker c(&violations);

  // Workload shape.
  c.require(cfg.num_senders >= 1, "num_senders", "need at least one sender host");
  c.require(cfg.rx_threads >= 1, "rx_threads", "need at least one receiver thread");
  c.require(cfg.read_size.count() > 0, "read_size", "RPC read size must be > 0 bytes");
  c.require(cfg.read_pipeline >= 1, "read_pipeline", "each flow needs >= 1 outstanding read");
  c.require(cfg.victim_flows >= 0, "victim_flows", "victim flow count cannot be negative");
  c.require(cfg.victim_flows == 0 || cfg.victim_read_size.count() > 0, "victim_read_size",
            "victim read size must be > 0 bytes when victim flows exist");

  // Receiver memory layout.
  c.require(cfg.data_region.count() > 0, "data_region",
            "per-thread Rx data region must be > 0 bytes");
  c.require(cfg.antagonist_cores >= 0, "antagonist_cores",
            "antagonist core count cannot be negative");

  // IOMMU geometry.
  c.require(cfg.iommu.iotlb_entries >= 1, "iommu.iotlb_entries", "IOTLB needs >= 1 entry");
  c.require(cfg.iommu.iotlb_sets >= 1, "iommu.iotlb_sets", "IOTLB needs >= 1 set");
  c.require(cfg.iommu.iotlb_sets < 1 || cfg.iommu.iotlb_entries % cfg.iommu.iotlb_sets == 0,
            "iommu.iotlb_entries",
            "entry count must divide evenly into sets (entries % sets == 0)");
  c.require(cfg.iommu.walkers >= 1, "iommu.walkers", "need >= 1 hardware page walker");

  // NIC.
  c.require(cfg.nic.input_buffer >= cfg.wire.data_wire(), "nic.input_buffer",
            "input buffer must hold at least one wire MTU (" +
                std::to_string(cfg.wire.data_wire().count()) + " bytes)");
  c.require(cfg.nic.descriptors_per_queue >= 1, "nic.descriptors_per_queue",
            "each queue needs >= 1 Rx descriptor");
  c.require(cfg.nic.descriptor_prefetch >= 1 &&
                cfg.nic.descriptor_prefetch <= cfg.nic.descriptors_per_queue,
            "nic.descriptor_prefetch",
            "prefetch depth must be in [1, descriptors_per_queue=" +
                std::to_string(cfg.nic.descriptors_per_queue) + "]");

  // PCIe.
  c.require(cfg.pcie.max_payload.count() > 0, "pcie.max_payload",
            "TLP max payload must be > 0 bytes");
  c.require(cfg.pcie.credit_bytes >= cfg.pcie.tlp_wire_bytes(cfg.pcie.max_payload),
            "pcie.credit_bytes",
            "credit pool must cover at least one max-payload TLP (" +
                std::to_string(cfg.pcie.tlp_wire_bytes(cfg.pcie.max_payload).count()) +
                " bytes), or no write can ever be admitted");
  c.require(cfg.pcie.write_buffer_bytes.count() > 0, "pcie.write_buffer_bytes",
            "root-complex write buffer must be > 0 bytes");

  // DDIO geometry.
  c.require(cfg.ddio.llc_ways >= 1, "ddio.llc_ways", "LLC needs >= 1 way");
  c.require(cfg.ddio.ddio_ways >= 0 && cfg.ddio.ddio_ways <= cfg.ddio.llc_ways,
            "ddio.ddio_ways",
            "IO ways must be in [0, llc_ways=" + std::to_string(cfg.ddio.llc_ways) + "]");

  // Fabric.
  c.require(cfg.fabric.link_rate.bps() > 0.0, "fabric.link_rate", "link rate must be > 0");
  c.require(cfg.fabric.switch_buffer.count() > 0, "fabric.switch_buffer",
            "switch buffering must be > 0 bytes");

  // Transport.
  c.require(cfg.swift.host_target > TimePs(0), "swift.host_target",
            "Swift host delay target must be > 0");
  c.require(cfg.swift.fabric_target > TimePs(0), "swift.fabric_target",
            "Swift fabric delay target must be > 0");
  c.require(cfg.swift.max_cwnd >= cfg.swift.min_cwnd, "swift.max_cwnd",
            "max_cwnd must be >= min_cwnd");

  // Run control.
  c.require(cfg.warmup >= TimePs(0), "warmup", "warmup cannot be negative");
  c.require(cfg.measure > TimePs(0), "measure", "measurement window must be > 0");
  c.require(!cfg.trace.enabled || cfg.trace.sample_period > TimePs(0), "trace.sample_period",
            "trace sampling period must be > 0 when tracing is enabled");

  // Fault script semantics (syntax errors are caught by parse_script).
  for (std::size_t i = 0; i < cfg.faults.events.size(); ++i) {
    validate_fault_event(cfg, cfg.faults.events[i], "faults[" + std::to_string(i) + "]", c);
  }

  return violations;
}

std::vector<ConfigViolation> validate(const ClusterConfig& cfg) {
  std::vector<ConfigViolation> violations;
  Checker c(&violations);
  const net::TopologyConfig& topo = cfg.topology;

  // Topology shape.
  c.require(topo.leaves >= 1, "topology.leaves", "need at least one leaf switch");
  c.require(topo.spines >= 1, "topology.spines", "need at least one spine switch");
  c.require(topo.hosts_per_leaf >= 1, "topology.hosts_per_leaf",
            "each leaf needs at least one host");
  c.require(topo.num_hosts() >= 2, "topology.hosts_per_leaf",
            "a cluster needs >= 2 hosts (one receiver plus one sender machine)");
  c.require(topo.host_link_rate.bps() > 0.0, "topology.host_link_rate",
            "host link rate must be > 0");
  c.require(topo.fabric_link_rate.bps() > 0.0, "topology.fabric_link_rate",
            "fabric link rate must be > 0");
  c.require(topo.edge_propagation >= TimePs(0), "topology.edge_propagation",
            "propagation delay cannot be negative");
  c.require(topo.fabric_propagation >= TimePs(0), "topology.fabric_propagation",
            "propagation delay cannot be negative");
  c.require(topo.edge_buffer >= cfg.host.wire.data_wire(), "topology.edge_buffer",
            "edge port buffer must hold at least one wire MTU (" +
                std::to_string(cfg.host.wire.data_wire().count()) + " bytes)");
  c.require(topo.fabric_buffer >= cfg.host.wire.data_wire(), "topology.fabric_buffer",
            "fabric port buffer must hold at least one wire MTU (" +
                std::to_string(cfg.host.wire.data_wire().count()) + " bytes)");
  c.require(cfg.receivers >= 1 && cfg.receivers < topo.num_hosts(), "receivers",
            "receiver count must be in [1, num_hosts=" + std::to_string(topo.num_hosts()) +
                "), leaving at least one sender machine");

  // Parallel execution (docs/PARALLELISM.md): the conservative engine
  // needs a positive lookahead (the edge propagation delay), and fault
  // injectors are incompatible (they mutate cross-partition link/host
  // state mid-window from the fabric partition).
  c.require(cfg.parallelism >= 0, "parallelism",
            "parallelism must be >= 0 (0 = legacy single-simulator run)");
  if (cfg.parallelism >= 1) {
    c.require(topo.edge_propagation > TimePs(0), "topology.edge_propagation",
              "parallel runs need edge_propagation > 0: it is the engine's "
              "conservative lookahead window");
    c.require(cfg.faults.empty(), "faults",
              "fault scripts are not supported with parallelism >= 1 "
              "(injectors mutate cross-partition state mid-window)");
  }

  // Open-loop workload generation (src/workload, docs/WORKLOADS.md).
  if (cfg.workload.enabled()) {
    const workload::WorkloadParams& wl = cfg.workload;
    const int senders = std::max(1, topo.num_hosts() - cfg.receivers);
    c.require(wl.rate_per_s > 0.0 && std::isfinite(wl.rate_per_s), "workload.rate_per_s",
              "open-loop arrival rate must be positive and finite");
    c.require(wl.fanout >= 1 && wl.fanout <= senders, "workload.fanout",
              "incast fanout must be in [1, sender machines=" + std::to_string(senders) + "]");
    c.require(wl.max_active >= senders, "workload.max_active",
              "the flow pool needs at least one slot per sender machine (" +
                  std::to_string(senders) + ")");
    c.require(wl.target_flows >= 0, "workload.target_flows",
              "target_flows must be >= 0 (0 = unbounded)");
    c.require(wl.fixed_size.count() >= 1, "workload.fixed_size",
              "fixed flow size must be >= 1 byte");
    c.require(wl.sketch_relative_error > 0.0 && wl.sketch_relative_error < 0.5,
              "workload.sketch_relative_error",
              "quantile-sketch relative error must be in (0, 0.5)");
    if (wl.arrival == workload::Arrival::kBursty) {
      c.require(wl.burst_factor >= 1.0 && std::isfinite(wl.burst_factor),
                "workload.burst_factor", "burst factor must be >= 1 and finite");
      c.require(wl.burst_on_fraction > 0.0 && wl.burst_on_fraction <= 1.0,
                "workload.burst_on_fraction", "burst on-fraction must be in (0, 1]");
      c.require(wl.burst_period > TimePs(0), "workload.burst_period",
                "burst period must be > 0");
    }
    c.require(cfg.host.victim_flows == 0, "host.victim_flows",
              "victim flows are closed-loop and unavailable with an open-loop "
              "workload (use the workload's own FCT sketches instead)");
  }

  for (const int cores : cfg.antagonist_profile) {
    c.require(cores >= 0 && cores <= 64, "antagonist_profile",
              "per-receiver antagonist cores must be in [0, 64]");
  }

  // The per-host template, as ClusterExperiment will actually run it:
  // num_senders overridden by the topology, the legacy fault script
  // ignored in favor of cfg.faults.
  ExperimentConfig host = cfg.host;
  host.num_senders = std::max(1, topo.num_hosts() - cfg.receivers);
  host.faults = fault::FaultScript{};
  for (ConfigViolation& v : validate(host)) {
    v.field = "host." + v.field;
    violations.push_back(std::move(v));
  }

  for (std::size_t i = 0; i < cfg.faults.events.size(); ++i) {
    validate_fault_event(host, cfg.faults.events[i], "faults[" + std::to_string(i) + "]", c,
                         &topo);
  }

  return violations;
}

std::vector<ConfigViolation> validate(const SupervisorParams& params) {
  std::vector<ConfigViolation> violations;
  Checker c(&violations);
  c.require(params.point_timeout_s >= 0.0, "supervisor.point_timeout_s",
            "per-point timeout cannot be negative (0 disables it)");
  c.require(std::isfinite(params.point_timeout_s), "supervisor.point_timeout_s",
            "per-point timeout must be finite");
  c.require(params.max_attempts >= 1, "supervisor.max_attempts",
            "every point needs at least one attempt");
  c.require(params.backoff_base_s >= 0.0 && std::isfinite(params.backoff_base_s),
            "supervisor.backoff_base_s", "backoff base must be finite and >= 0");
  c.require(params.backoff_cap_s >= params.backoff_base_s &&
                std::isfinite(params.backoff_cap_s),
            "supervisor.backoff_cap_s", "backoff cap must be finite and >= the base");
  return violations;
}

std::string describe(const std::vector<ConfigViolation>& violations) {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i].field << ": " << violations[i].message;
  }
  return os.str();
}

}  // namespace hicc
