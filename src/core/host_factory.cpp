#include "core/host_factory.h"

#include "transport/swift.h"

namespace hicc {

std::unique_ptr<transport::CongestionControl> make_congestion_control(
    sim::Simulator& sim, const ExperimentConfig& cfg, trace::Tracer* tracer) {
  switch (cfg.cc) {
    case transport::CcAlgorithm::kSwift:
      return std::make_unique<transport::SwiftCc>(sim, cfg.swift,
                                                  /*react_to_host_signal=*/false, tracer);
    case transport::CcAlgorithm::kTcpLike:
      return std::make_unique<transport::TcpLikeCc>(sim);
    case transport::CcAlgorithm::kHostSignal:
      return std::make_unique<transport::SwiftCc>(sim, cfg.swift,
                                                  /*react_to_host_signal=*/true, tracer);
  }
  return nullptr;
}

host::ReceiverParams HostFactory::receiver_params(const ExperimentConfig& cfg, bool open_loop,
                                                  int open_loop_slots) {
  host::ReceiverParams rp;
  rp.threads = cfg.rx_threads;
  rp.data_region = cfg.data_region;
  rp.hugepages = cfg.hugepages;
  rp.iommu = cfg.iommu;
  rp.iommu.enabled = cfg.iommu_enabled;
  rp.pcie = cfg.pcie;
  rp.nic = cfg.nic;
  rp.nic.ats_enabled = cfg.ats_enabled;
  rp.nic.strict_invalidation = cfg.strict_iommu;
  rp.thread = cfg.thread;
  rp.ddio = cfg.ddio;
  rp.copy_read_fraction = cfg.copy_read_fraction;
  rp.read_size = cfg.read_size;
  rp.read_pipeline = cfg.read_pipeline;
  rp.victim_flows = cfg.victim_flows;
  rp.victim_read_size = cfg.victim_read_size;
  rp.send_host_signals = (cfg.cc == transport::CcAlgorithm::kHostSignal);
  if (open_loop) {
    rp.open_loop = true;
    rp.open_loop_slots = open_loop_slots;
    rp.victim_flows = 0;  // victims are closed-loop by definition
  }
  return rp;
}

FullHost HostFactory::make_full_host(const ExperimentConfig& cfg, int num_senders, Rng& rng,
                                     trace::Tracer* tracer, bool open_loop,
                                     int open_loop_slots) const {
  FullHost h;
  // Probes cover the NIC-local NUMA node only; the remote node's
  // mem.* probes would collide by name and it is idle in most setups.
  h.mem = std::make_unique<mem::MemorySystem>(sim_, cfg.dram, rng.fork(), TimePs::from_us(5),
                                              tracer);
  h.remote_mem = std::make_unique<mem::MemorySystem>(sim_, cfg.dram, rng.fork());
  // §4: scheduling the memory-hungry application on the NUMA node the
  // NIC is NOT attached to removes it from the contended bus entirely.
  mem::MemorySystem& antagonist_node = cfg.antagonist_remote_numa ? *h.remote_mem : *h.mem;
  h.antagonist = std::make_unique<mem::StreamAntagonist>(antagonist_node, cfg.antagonist,
                                                         cfg.antagonist_cores);
  if (cfg.antagonist_throttle_gbps > 0.0) {
    antagonist_node.set_class_throttle(
        mem::MemClass::kAntagonist, BitRate::gigabytes_per_sec(cfg.antagonist_throttle_gbps));
  }
  h.receiver = std::make_unique<host::ReceiverHost>(
      sim_, *h.mem, receiver_params(cfg, open_loop, open_loop_slots), num_senders, cfg.wire,
      rng.fork(), tracer);
  return h;
}

HostCounterSnapshot snapshot_host_counters(const HostHarvestSources& src,
                                           std::int64_t fabric_drops) {
  HostCounterSnapshot s;
  s.iotlb_misses = src.receiver->iommu().stats().misses;
  s.iotlb_lookups = src.receiver->iommu().stats().lookups;
  s.nic_arrivals = src.receiver->nic().stats().arrivals;
  s.nic_drops = src.receiver->nic().stats().buffer_drops;
  s.delivered = src.receiver->nic().stats().delivered;
  s.fabric_drops = fabric_drops;
  s.translation_stalls = src.receiver->pcie().stats().translation_stalls;
  s.wb_stalls = src.receiver->pcie().stats().write_buffer_stalls;
  s.hol_stalls = src.receiver->nic().stats().hol_descriptor_stalls;
  for (const transport::SenderHost* sender : src.senders) {
    for (const auto& [id, flow] : sender->flows()) {
      s.data_sent += flow->stats().data_packets_sent;
      s.retransmits += flow->stats().retransmits;
      s.rto_fires += flow->stats().rto_fires;
    }
  }
  return s;
}

RunStatus to_run_status(sim::AbortCause cause) {
  switch (cause) {
    case sim::AbortCause::kNone: return RunStatus::kOk;
    case sim::AbortCause::kEventBudget: return RunStatus::kEventBudget;
    case sim::AbortCause::kTimestampStall: return RunStatus::kStalled;
    case sim::AbortCause::kMailboxOverflow: return RunStatus::kMailboxOverflow;
  }
  return RunStatus::kOk;
}

Metrics harvest_host_window(const HostHarvestSources& src,
                            const HostCounterSnapshot& window_start,
                            TimePs window_start_time, std::int64_t fabric_drops_now) {
  const HostCounterSnapshot now = snapshot_host_counters(src, fabric_drops_now);
  const double secs = (src.sim->now() - window_start_time).sec();
  Metrics m;
  m.simulated_seconds = secs;
  m.events_executed = src.sim->executed();
  m.run_status = to_run_status(src.sim->abort_cause());
  m.run_status_detail = src.sim->abort_reason();
  if (src.fault_engine != nullptr) {
    const fault::FaultReport fr = src.fault_engine->report();
    m.fault_windows = fr.windows;
    m.fault_drops = fr.drops;
    m.fault_active_us = fr.active_us;
    m.fault_blind_us = fr.blind_us;
  }
  if (secs <= 0.0) return m;

  const auto& win = src.receiver->window();
  m.app_throughput_gbps = static_cast<double>(win.processed_bytes) * 8.0 / secs * 1e-9;

  const std::int64_t arrivals = now.nic_arrivals - window_start.nic_arrivals;
  const double wire_bits = static_cast<double>(arrivals) * src.wire.data_wire().bits();
  m.link_utilization = wire_bits / secs / src.link_rate.bps();

  m.delivered_packets = win.processed_packets;
  m.nic_buffer_drops = now.nic_drops - window_start.nic_drops;
  m.fabric_drops = now.fabric_drops - window_start.fabric_drops;
  m.data_packets_sent = (now.data_sent - window_start.data_sent) +
                        (now.retransmits - window_start.retransmits);
  m.retransmits = now.retransmits - window_start.retransmits;
  m.rto_fires = now.rto_fires - window_start.rto_fires;
  m.drop_rate = m.data_packets_sent > 0 ? static_cast<double>(m.nic_buffer_drops) /
                                              static_cast<double>(m.data_packets_sent)
                                        : 0.0;

  m.iotlb_misses = now.iotlb_misses - window_start.iotlb_misses;
  m.iotlb_lookups = now.iotlb_lookups - window_start.iotlb_lookups;
  const std::int64_t delivered_delta = now.delivered - window_start.delivered;
  m.iotlb_misses_per_packet =
      delivered_delta > 0
          ? static_cast<double>(m.iotlb_misses) / static_cast<double>(delivered_delta)
          : 0.0;

  m.memory = src.mem->window_report();
  m.remote_memory = src.remote_mem->window_report();
  m.host_delay_p50_us = win.host_delay_us.percentile(50);
  m.host_delay_p99_us = win.host_delay_us.percentile(99);
  m.host_delay_max_us = win.host_delay_us.max_value();
  m.victim_reads = win.victim_read_us.count();
  m.victim_read_p50_us = win.victim_read_us.percentile(50);
  m.victim_read_p99_us = win.victim_read_us.percentile(99);

  m.pcie_translation_stalls = now.translation_stalls - window_start.translation_stalls;
  m.pcie_write_buffer_stalls = now.wb_stalls - window_start.wb_stalls;
  m.hol_descriptor_stalls = now.hol_stalls - window_start.hol_stalls;

  double cwnd_sum = 0.0;
  std::int64_t flows = 0;
  for (const transport::SenderHost* sender : src.senders) {
    for (const auto& [id, flow] : sender->flows()) {
      cwnd_sum += flow->cwnd();
      ++flows;
    }
  }
  m.avg_cwnd = flows > 0 ? cwnd_sum / static_cast<double>(flows) : 0.0;
  return m;
}

}  // namespace hicc
