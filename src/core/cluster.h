// ClusterExperiment: M senders x K receivers on a config-driven Clos
// fabric (net/topology.h), every receiver carrying the full
// NIC/PCIe/IOMMU/mem/rx-threads model via HostFactory.
//
// Host numbering: hosts 0..receivers-1 run full receiver stacks and
// drive the closed-loop read workload; hosts receivers..num_hosts-1
// are sender machines serving reads to *every* receiver. receivers=1
// gives the incast tree the paper studies; receivers>1 gives
// many-to-many traffic with several simultaneous host bottlenecks.
// When `full_sender_hosts` is set (the default), sender machines also
// get a full host stack -- constructed but quiescent, since per the
// paper (§2, footnote 1) the transmit path sees no host congestion;
// the serving transports remain transport-level SenderHosts.
//
// Addressing: transports write the destination host into Packet::dst;
// the ClosFabric routes purely on it. On the reverse path the
// receiver-local `sender` index is rewritten to the receiver's own
// index before transmission so the destination sender machine can
// dispatch the packet to its per-receiver transport instance
// (SenderHost itself never reads Packet::sender).
//
// Determinism: one RNG stream forked in a fixed order -- per-receiver
// host stacks, optional sender-host stacks, then per-(sender,
// receiver) transports, fault engine last. With a one-leaf topology,
// one receiver, and transport-only senders this is fork-for-fork the
// legacy Experiment sequence, and the run reproduces its Metrics
// bitwise (degenerate_cluster(), pinned by tests/cluster_test.cpp).
//
// Parallel execution (ClusterConfig::parallelism >= 1): the run is
// partitioned onto a sim::ParallelEngine -- fabric interior in
// partition 0, each host (its FullHost, serving transports, and
// uplink) in partition 1+h -- with construction order, RNG forks, and
// per-partition event order all independent of the thread count, so
// every parallelism >= 1 value yields bitwise-identical results. The
// full model and its invariants are documented in docs/PARALLELISM.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/sketch.h"
#include "core/config.h"
#include "core/host_factory.h"
#include "core/metrics.h"
#include "fault/engine.h"
#include "fault/script.h"
#include "net/topology.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "transport/sender_host.h"
#include "workload/workload.h"

namespace hicc {

namespace workload {
class WorkloadEngine;
}  // namespace workload

/// Full description of one cluster run.
struct ClusterConfig {
  /// Per-host template: receiver knobs, transport, run control, seed.
  /// `num_senders` is overridden with the topology's sender-machine
  /// count and `faults` is ignored (use ClusterConfig::faults, which
  /// understands topology targeting).
  ExperimentConfig host;
  net::TopologyConfig topology;
  /// Hosts 0..receivers-1 run receiver workloads; the rest serve them.
  int receivers = 1;
  /// Build a full (quiescent) host stack on sender machines too. The
  /// degenerate legacy mapping turns this off: the legacy Experiment
  /// models senders at transport level only.
  bool full_sender_hosts = true;
  /// Cluster-level fault script; net.* events accept `leaf=`+`spine=`
  /// (a leaf-spine link) or `host=` (a host uplink) targeting.
  fault::FaultScript faults;
  /// Open-loop workload generation (src/workload, docs/WORKLOADS.md).
  /// When `workload.pattern != off` every receiver runs a
  /// WorkloadEngine injecting dynamic flows over a recyclable slot
  /// pool instead of the closed-loop per-flow read pipeline;
  /// `host.read_size`/`read_pipeline`/`victim_flows` are then unused
  /// (validate() enforces victim_flows == 0).
  workload::WorkloadParams workload;
  /// Per-receiver memory-antagonist heterogeneity: receiver r runs
  /// antagonist_profile[r % size()] antagonist cores instead of
  /// host.antagonist_cores. Empty (default) keeps the uniform
  /// template. Models a production fleet where only some hosts
  /// co-locate memory-heavy batch jobs (the paper's Fig. 1 population
  /// with drops at low utilization).
  std::vector<int> antagonist_profile;
  /// Engine worker threads. 0 (default) keeps the legacy single
  /// Simulator. >= 1 partitions the run onto a sim::ParallelEngine --
  /// partition 0 the fabric interior, partition 1+h host h -- with the
  /// edge-link propagation delay as the conservative lookahead and
  /// this many threads executing windows. The value changes wall-clock
  /// time only: any parallelism >= 1 produces bitwise-identical
  /// metrics/trace/sweep output (docs/PARALLELISM.md; pinned by
  /// tests/parallel_test.cpp). Requires edge_propagation > 0 and an
  /// empty fault script (validate(); fault injectors mutate
  /// cross-partition state mid-window).
  int parallelism = 0;
  /// Per-(window, destination) cross-partition mailbox row bound for
  /// parallelism >= 1; 0 keeps the engine default (1M messages,
  /// sim/parallel.h). A run that posts more than this into one row in
  /// one window aborts deterministically with
  /// RunStatus::kMailboxOverflow -- the bound exists to turn a runaway
  /// partition into a classified failure instead of unbounded memory
  /// growth (docs/PARALLELISM.md, docs/ROBUSTNESS.md).
  std::size_t mailbox_capacity = 0;
};

/// The degenerate one-leaf mapping of a legacy single-receiver config:
/// N+1 hosts under one leaf (receiver plus N transport-only senders),
/// edge links taking the legacy rates/buffers. With the default equal
/// edge/access propagations this reproduces the legacy Experiment's
/// Metrics bitwise (the parity test pins it).
[[nodiscard]] ClusterConfig degenerate_cluster(const ExperimentConfig& cfg);

/// Open-loop workload results for one window: counters summed and
/// sketches exactly merged across every receiver engine in fixed
/// receiver order, so the merged sketches (and their encode() bytes)
/// are identical for any --parallel=N (docs/WORKLOADS.md).
struct WorkloadMetrics {
  bool enabled = false;
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  std::int64_t pool_exhausted = 0;
  std::int64_t collectives_completed = 0;
  std::int64_t active_flows = 0;  // at snapshot instant
  double fct_p50_us = 0.0;
  double fct_p99_us = 0.0;
  double fct_p999_us = 0.0;
  double slowdown_p50 = 0.0;
  double slowdown_p99 = 0.0;
  double slowdown_p999 = 0.0;
  double host_delay_p50_us = 0.0;
  double host_delay_p99_us = 0.0;
  double host_delay_p999_us = 0.0;
  /// The merged sketches themselves, for exporters and the
  /// bitwise-determinism tests (quantiles above are derived views).
  QuantileSketch fct_us;
  QuantileSketch slowdown;
  QuantileSketch host_delay_us;
};

/// Cluster-level aggregation of the per-receiver Metrics.
struct ClusterMetrics {
  /// One Metrics per receiver host, index == host id. Each receiver's
  /// `fabric_drops` counts its own ports; `events_executed`,
  /// run status, and fault accounting are run-global.
  std::vector<Metrics> per_receiver;
  double total_app_throughput_gbps = 0.0;
  std::int64_t total_nic_buffer_drops = 0;
  std::int64_t total_data_packets_sent = 0;
  /// Whole-fabric drops over the window (every port, O(1) snapshot).
  std::int64_t total_fabric_drops = 0;
  double max_host_delay_p99_us = 0.0;
  RunStatus run_status = RunStatus::kOk;
  std::uint64_t events_executed = 0;
  double simulated_seconds = 0.0;
  /// Parallel-engine accounting; all zero in legacy (parallelism=0)
  /// runs. Thread-count invariant: equal for any parallelism >= 1.
  int partitions = 0;
  std::uint64_t parallel_windows = 0;
  std::uint64_t parallel_messages = 0;
  /// Open-loop workload results; enabled iff config().workload is.
  WorkloadMetrics workload;
};

/// One fully-wired multi-host simulation instance; run() may be
/// called once, like Experiment.
class ClusterExperiment {
 public:
  explicit ClusterExperiment(ClusterConfig cfg);

  ClusterExperiment(const ClusterExperiment&) = delete;
  ClusterExperiment& operator=(const ClusterExperiment&) = delete;
  ~ClusterExperiment();

  /// Runs warmup + measurement and returns the aggregated metrics.
  ClusterMetrics run();

  /// Starts every receiver's workload without running.
  void start();

  /// Resets all measurement windows at the current instant.
  void begin_window();

  /// Snapshot of current metrics relative to the last begin_window().
  [[nodiscard]] ClusterMetrics snapshot() const;

  /// The fabric-partition simulator (the only one in legacy mode).
  [[nodiscard]] sim::Simulator& simulator() { return fabric_sim(); }
  /// Null unless config().parallelism >= 1.
  [[nodiscard]] sim::ParallelEngine* engine() { return engine_.get(); }
  /// Null unless config().host.trace.enabled. Per-host component
  /// probes appear under host_prefix(h); see docs/OBSERVABILITY.md.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] net::ClosFabric& fabric() { return *fabric_; }
  [[nodiscard]] host::ReceiverHost& receiver(int r) { return *groups_[static_cast<std::size_t>(r)].host.receiver; }
  [[nodiscard]] int num_receivers() const { return receivers_; }
  [[nodiscard]] int num_sender_hosts() const { return senders_per_receiver_; }
  /// Null unless config().faults is non-empty.
  [[nodiscard]] fault::FaultEngine* fault_engine() { return fault_engine_.get(); }
  /// Receiver r's open-loop engine; null unless config().workload is
  /// enabled.
  [[nodiscard]] workload::WorkloadEngine* workload_engine(int r) {
    return workload_engines_.empty() ? nullptr
                                     : workload_engines_[static_cast<std::size_t>(r)].get();
  }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

 private:
  struct ReceiverGroup {
    FullHost host;
    /// This receiver's serving transports, one per sender machine
    /// (borrowed from sender_ports_).
    std::vector<transport::SenderHost*> senders;
    HostCounterSnapshot window_start;
  };

  void dispatch(int host, net::Packet p);
  [[nodiscard]] HostHarvestSources harvest_sources(int r) const;
  /// Coordinator-side work at each engine window barrier (trace
  /// sampling at deterministic barrier instants).
  void on_barrier();

  /// Partition-0 simulator in parallel mode, the lone sim_ otherwise.
  [[nodiscard]] sim::Simulator& fabric_sim() {
    return engine_ != nullptr ? engine_->sim(net::ClosFabric::kFabricPartition) : sim_;
  }
  [[nodiscard]] const sim::Simulator& fabric_sim() const {
    return engine_ != nullptr ? engine_->sim(net::ClosFabric::kFabricPartition) : sim_;
  }
  /// Host h's partition simulator in parallel mode, sim_ otherwise.
  [[nodiscard]] sim::Simulator& host_sim(int h) {
    return engine_ != nullptr ? engine_->sim(net::ClosFabric::host_partition(h)) : sim_;
  }
  [[nodiscard]] const sim::Simulator& host_sim(int h) const {
    return engine_ != nullptr ? engine_->sim(net::ClosFabric::host_partition(h)) : sim_;
  }

  ClusterConfig cfg_;
  Rng rng_;
  sim::Simulator sim_;
  /// Present iff cfg_.parallelism >= 1.
  std::unique_ptr<sim::ParallelEngine> engine_;
  /// Next trace-sample instant for barrier-driven sampling.
  TimePs next_sample_{};
  int receivers_ = 0;
  int senders_per_receiver_ = 0;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<net::ClosFabric> fabric_;
  std::vector<ReceiverGroup> groups_;
  /// Quiescent full stacks on sender machines (full_sender_hosts).
  std::vector<FullHost> sender_stacks_;
  /// sender_ports_[s][r]: sender machine receivers_+s's transport
  /// serving receiver r.
  std::vector<std::vector<std::unique_ptr<transport::SenderHost>>> sender_ports_;
  /// One open-loop engine per receiver (index == receiver); empty
  /// unless cfg_.workload is enabled.
  std::vector<std::unique_ptr<workload::WorkloadEngine>> workload_engines_;
  std::unique_ptr<fault::FaultEngine> fault_engine_;
  std::int64_t fabric_window_start_ = 0;
  TimePs window_start_time_{};
  bool started_ = false;
};

}  // namespace hicc
