// The paper's analytic throughput model (§3.1):
//
//   "PCIe credits allow at most C packets in flight, each PCIe write
//    experiences a latency T_base + M * T_miss ... As a result, the
//    throughput is bounded by (C * pkt_size) / (T_base + M * T_miss)."
//
// Figure 3 overlays this model (for >= 10 receiver cores, where PCIe
// credits are the bottleneck) on the measured curve. We reproduce that
// overlay: C follows from the configured credit pool, T_base is
// calibrated from the miss-free operating point (exactly how one would
// fit it on real hardware: at M = 0 the bound must equal the measured
// miss-free throughput), and T_miss from the cost of one page walk.
#pragma once

#include <algorithm>

#include "common/units.h"
#include "core/config.h"

namespace hicc {

/// Parameters of the analytic bound.
struct ThroughputModel {
  /// C: packets the credit pool keeps in flight.
  double packets_in_flight = 0.0;
  /// Wire size of one packet's TLP stream on PCIe.
  Bytes packet_pcie_bytes{};
  /// T_base: per-packet PCIe write latency with no IOTLB misses.
  TimePs t_base{};
  /// T_miss: added latency per IOTLB miss.
  TimePs t_miss{};

  /// Wire-level bound at M misses/packet, in Gbps.
  [[nodiscard]] double wire_gbps(double misses_per_packet) const {
    const double t_ns = t_base.ns() + misses_per_packet * t_miss.ns();
    if (t_ns <= 0.0) return 0.0;
    return packets_in_flight * packet_pcie_bytes.bits() / t_ns;  // bits/ns == Gbps
  }

  /// Application-level bound: wire bound x goodput fraction, capped at
  /// the access link's goodput ceiling.
  [[nodiscard]] double app_gbps(double misses_per_packet, const ExperimentConfig& cfg) const {
    const double cap =
        cfg.fabric.link_rate.gbps() * cfg.wire.goodput_fraction();
    // PCIe wire carries payload + TLP overhead; scale to app payload.
    const double payload_fraction =
        cfg.wire.mtu_payload / packet_pcie_bytes;
    return std::min(wire_gbps(misses_per_packet) * payload_fraction, cap);
  }
};

/// Derives the model from a configuration. Credits bound the pipeline
/// to one packet "slot" being translated at the root complex at a
/// time (posted writes are ordered), so the fitted form uses C = 1
/// packet with T_base equal to the per-packet root-complex processing
/// time and T_miss equal to the cost of one head-of-line page walk
/// (IOMMU pipeline overhead + the DRAM/PT-cache mix of the leaf PTE
/// read). The app-level bound is additionally capped by the measured
/// miss-free throughput (the access-link goodput ceiling).
inline ThroughputModel fit_model(const ExperimentConfig& cfg) {
  ThroughputModel m;
  const auto tlps_per_packet =
      (cfg.wire.mtu_payload.count() + cfg.pcie.max_payload.count() - 1) /
      cfg.pcie.max_payload.count();
  m.packet_pcie_bytes =
      Bytes(tlps_per_packet * cfg.pcie.tlp_wire_bytes(cfg.pcie.max_payload).count());
  m.packets_in_flight = 1.0;
  m.t_base = TimePs((cfg.pcie.tlp_proc_time + cfg.iommu.hit_latency).ps() *
                    tlps_per_packet);
  const TimePs pte_read = TimePs::from_ns(
      cfg.iommu.pt_cache_hit_fraction * cfg.iommu.pt_cache_latency.ns() +
      (1.0 - cfg.iommu.pt_cache_hit_fraction) * cfg.dram.idle_latency.ns());
  m.t_miss = cfg.pcie.walk_overhead + pte_read;
  return m;
}

}  // namespace hicc
