#include "core/cluster.h"

#include <algorithm>
#include <utility>

#include "workload/engine.h"

namespace hicc {

ClusterConfig degenerate_cluster(const ExperimentConfig& cfg) {
  ClusterConfig c;
  c.host = cfg;
  c.topology.leaves = 1;
  c.topology.spines = 1;
  c.topology.hosts_per_leaf = cfg.num_senders + 1;
  c.topology.host_link_rate = cfg.fabric.link_rate;
  c.topology.fabric_link_rate = cfg.fabric.link_rate;
  // Both degenerate hops are edge links; the legacy fabric's second
  // hop uses access_propagation, so bitwise parity holds when the two
  // propagations are equal (they are, by default: 2us each).
  c.topology.edge_propagation = cfg.fabric.edge_propagation;
  c.topology.fabric_propagation = cfg.fabric.access_propagation;
  c.topology.edge_buffer = cfg.fabric.switch_buffer;
  c.topology.fabric_buffer = cfg.fabric.switch_buffer;
  c.receivers = 1;
  c.full_sender_hosts = false;
  return c;
}

ClusterExperiment::ClusterExperiment(ClusterConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.host.seed) {
  receivers_ = cfg_.receivers;
  senders_per_receiver_ = cfg_.topology.num_hosts() - receivers_;
  cfg_.host.num_senders = senders_per_receiver_;
  cfg_.host.iommu.enabled = cfg_.host.iommu_enabled;
  cfg_.host.faults = fault::FaultScript{};  // cluster script is cfg_.faults

  if (cfg_.parallelism >= 1) {
    sim::ParallelParams pp;
    pp.partitions = 1 + cfg_.topology.num_hosts();
    pp.lookahead = cfg_.topology.edge_propagation;
    pp.threads = cfg_.parallelism;
    if (cfg_.mailbox_capacity > 0) pp.mailbox_capacity = cfg_.mailbox_capacity;
    engine_ = std::make_unique<sim::ParallelEngine>(pp);
    engine_->set_barrier_hook(sim::InlineAction([this] { on_barrier(); }));
  }

  if (cfg_.host.trace.enabled) {
    tracer_ = std::make_unique<trace::Tracer>(fabric_sim(), cfg_.host.trace);
  }

  fabric_ = engine_ != nullptr
                ? std::make_unique<net::ClosFabric>(
                      *engine_, cfg_.topology,
                      [this](int h, net::Packet p) { dispatch(h, std::move(p)); })
                : std::make_unique<net::ClosFabric>(
                      sim_, cfg_.topology,
                      [this](int h, net::Packet p) { dispatch(h, std::move(p)); });

  // Receiver stacks first, then (optional) sender stacks, then the
  // serving transports -- a fixed fork order so equal seeds reproduce
  // bitwise, and so the K=1 transport-only case forks exactly like the
  // legacy Experiment (mem, remote mem, receiver, senders 0..M-1).
  // Construction is always single-threaded; in parallel mode each
  // host's components simply schedule on its partition simulator, so
  // the fork order (and hence every RNG stream) is thread-count
  // independent.
  const bool open_loop = cfg_.workload.enabled();
  groups_.reserve(static_cast<std::size_t>(receivers_));
  for (int r = 0; r < receivers_; ++r) {
    const trace::Tracer::ScopedPrefix prefix(tracer_.get(), trace::host_prefix(r));
    const HostFactory factory(host_sim(r));
    ExperimentConfig host_cfg = cfg_.host;
    if (!cfg_.antagonist_profile.empty()) {
      host_cfg.antagonist_cores = cfg_.antagonist_profile[static_cast<std::size_t>(r) %
                                                          cfg_.antagonist_profile.size()];
    }
    ReceiverGroup group;
    group.host = factory.make_full_host(host_cfg, senders_per_receiver_, rng_, tracer_.get(),
                                        open_loop, cfg_.workload.max_active);
    groups_.push_back(std::move(group));
  }
  if (cfg_.full_sender_hosts) {
    sender_stacks_.reserve(static_cast<std::size_t>(senders_per_receiver_));
    for (int s = 0; s < senders_per_receiver_; ++s) {
      const int g = receivers_ + s;
      const trace::Tracer::ScopedPrefix prefix(tracer_.get(), trace::host_prefix(g));
      const HostFactory factory(host_sim(g));
      sender_stacks_.push_back(
          factory.make_full_host(cfg_.host, senders_per_receiver_, rng_, tracer_.get()));
    }
  }

  sender_ports_.resize(static_cast<std::size_t>(senders_per_receiver_));
  for (int r = 0; r < receivers_; ++r) {
    ReceiverGroup& group = groups_[static_cast<std::size_t>(r)];
    host::ReceiverHost& recv = *group.host.receiver;
    for (int s = 0; s < senders_per_receiver_; ++s) {
      const int g = receivers_ + s;
      const trace::Tracer::ScopedPrefix prefix(tracer_.get(), trace::host_prefix(g));
      sender_ports_[static_cast<std::size_t>(s)].push_back(
          std::make_unique<transport::SenderHost>(
              host_sim(g), s, cfg_.host.wire,
              [this, g, r](net::Packet p) {
                p.dst = r;
                return fabric_->send_from_host(g, std::move(p));
              },
              rng_.fork()));
      group.senders.push_back(sender_ports_[static_cast<std::size_t>(s)].back().get());
    }
    if (open_loop) {
      // Dynamic flows: sender-side state is created lazily on the
      // first read request for each slot (then reused by every later
      // occupancy). Controllers skip per-flow trace probes -- factory
      // creation happens mid-run, and probe registration must stay
      // construction-time-only.
      for (int s = 0; s < senders_per_receiver_; ++s) {
        const int g = receivers_ + s;
        group.senders[static_cast<std::size_t>(s)]->set_flow_factory(
            [this, g](std::int32_t) {
              return make_congestion_control(host_sim(g), cfg_.host, nullptr);
            });
      }
    } else {
      for (std::int32_t flow = 0; flow < recv.num_flows(); ++flow) {
        const int s = recv.sender_of_flow(flow);
        const int g = receivers_ + s;
        // In parallel mode the controller's shared transport.* histograms
        // are prefixed per sender machine: flows on different machines
        // observe from different partitions, and host<g>.transport.* keeps
        // every histogram single-writer (legacy runs keep the shared
        // catalog names).
        const trace::Tracer::ScopedPrefix prefix(
            tracer_.get(), engine_ != nullptr ? trace::host_prefix(g) : "");
        group.senders[static_cast<std::size_t>(s)]->add_flow(
            flow, make_congestion_control(host_sim(g), cfg_.host, tracer_.get()));
      }
    }
    recv.set_transmit([this, r](net::Packet p) {
      // `p.sender` is the receiver-local sender index the packet is
      // addressed to; route to that machine and stamp the receiver's
      // index in its place so the sender machine can dispatch to its
      // per-receiver transport (SenderHost never reads p.sender).
      p.dst = receivers_ + p.sender;
      p.sender = r;
      return fabric_->send_from_host(r, std::move(p));
    });
  }

  if (open_loop) {
    // One arrival engine per receiver, forked in receiver order right
    // after the transports (still ahead of the fault engine, which
    // must stay last). Each engine lives on its receiver's partition
    // simulator, so parallel runs stay bitwise deterministic.
    workload_engines_.reserve(static_cast<std::size_t>(receivers_));
    const std::int64_t target = cfg_.workload.target_flows;
    for (int r = 0; r < receivers_; ++r) {
      const trace::Tracer::ScopedPrefix prefix(tracer_.get(), trace::host_prefix(r));
      workload::WorkloadEngine::Wiring w;
      w.sim = &host_sim(r);
      w.receiver = groups_[static_cast<std::size_t>(r)].host.receiver.get();
      w.num_senders = senders_per_receiver_;
      w.receiver_index = r;
      w.target_flows =
          target > 0 ? target / receivers_ + (r < target % receivers_ ? 1 : 0) : 0;
      // Ideal-FCT baseline for slowdowns: the 4-hop propagation round
      // trip plus size / host-link rate (docs/WORKLOADS.md).
      w.base_rtt = TimePs(4 * (cfg_.topology.edge_propagation.ps() +
                               cfg_.topology.fabric_propagation.ps()));
      w.link_rate = cfg_.topology.host_link_rate;
      workload_engines_.push_back(std::make_unique<workload::WorkloadEngine>(
          cfg_.workload, w, rng_.fork(), tracer_.get()));
    }
  }

  if (tracer_ != nullptr) {
    for (int r = 0; r < receivers_; ++r) {
      tracer_->counter(trace::host_probe(r, "cluster.port_drops"), "packets",
                       [this, r] { return static_cast<double>(fabric_->host_port_drops(r)); });
      tracer_->gauge(trace::host_probe(r, "cluster.port_queue_bytes"), "bytes",
                     [this, r] { return static_cast<double>(fabric_->host_queue(r).count()); });
    }
    tracer_->gauge("transport.cwnd_avg", "packets", [this] {
      double sum = 0.0;
      std::int64_t flows = 0;
      for (const auto& per_receiver : sender_ports_) {
        for (const auto& sender : per_receiver) {
          for (const auto& [id, flow] : sender->flows()) {
            sum += flow->cwnd();
            ++flows;
          }
        }
      }
      return flows > 0 ? sum / static_cast<double>(flows) : 0.0;
    });
  }

  if (engine_ != nullptr) {
    // Watchdogs guard each partition independently (deterministic per
    // partition); the engine stops the whole run at the barrier after
    // any trips.
    for (int p = 0; p < engine_->partitions(); ++p) {
      engine_->sim(p).set_watchdog(cfg_.host.watchdog);
    }
  } else {
    sim_.set_watchdog(cfg_.host.watchdog);
  }

  // Last on purpose, exactly like Experiment: the engine forks the
  // cluster RNG after every component has taken its stream. Fault
  // injectors mutate cross-partition state mid-window, so validate()
  // rejects faults + parallelism >= 1; this path is legacy-only.
  if (!cfg_.faults.empty()) {
    fault::FaultTargets targets;
    targets.clos = fabric_.get();
    targets.receiver = groups_[0].host.receiver.get();
    targets.antagonist = groups_[0].host.antagonist.get();
    fault_engine_ = std::make_unique<fault::FaultEngine>(fabric_sim(), cfg_.faults, targets,
                                                         rng_.fork(), tracer_.get());
  }
}

ClusterExperiment::~ClusterExperiment() = default;

void ClusterExperiment::dispatch(int host, net::Packet p) {
  if (host < receivers_) {
    groups_[static_cast<std::size_t>(host)].host.receiver->on_arrival(std::move(p));
    return;
  }
  // Reverse-path traffic (ACK / read request / host signal): p.sender
  // carries the originating receiver's index.
  sender_ports_[static_cast<std::size_t>(host - receivers_)][static_cast<std::size_t>(p.sender)]
      ->on_packet(p);
}

HostHarvestSources ClusterExperiment::harvest_sources(int r) const {
  const ReceiverGroup& group = groups_[static_cast<std::size_t>(r)];
  HostHarvestSources src;
  src.sim = &host_sim(r);
  src.receiver = group.host.receiver.get();
  src.mem = group.host.mem.get();
  src.remote_mem = group.host.remote_mem.get();
  src.senders = group.senders;
  src.fault_engine = fault_engine_.get();
  src.wire = cfg_.host.wire;
  src.link_rate = cfg_.topology.host_link_rate;
  return src;
}

void ClusterExperiment::start() {
  if (started_) return;
  started_ = true;
  if (tracer_ != nullptr) {
    // Parallel mode samples from the window-barrier hook instead of a
    // PeriodicTask (a mid-window sample would read partitions that are
    // executing); barrier instants are thread-count independent, so
    // trace output stays bitwise deterministic.
    tracer_->start(/*arm_sampler=*/engine_ == nullptr);
    next_sample_ = fabric_sim().now() + tracer_->params().sample_period;
  }
  for (auto& group : groups_) group.host.receiver->start();
  for (auto& engine : workload_engines_) engine->start();
}

void ClusterExperiment::on_barrier() {
  if (tracer_ == nullptr || !started_) return;
  if (engine_->now() >= next_sample_) {
    tracer_->sample_now();
    // One sample per barrier, stamped at the barrier time; catch up the
    // schedule if a window spanned several periods.
    while (next_sample_ <= engine_->now()) {
      next_sample_ = next_sample_ + tracer_->params().sample_period;
    }
  }
}

void ClusterExperiment::begin_window() {
  window_start_time_ = fabric_sim().now();
  fabric_window_start_ = fabric_->fabric_drops();
  for (int r = 0; r < receivers_; ++r) {
    ReceiverGroup& group = groups_[static_cast<std::size_t>(r)];
    group.window_start = snapshot_host_counters(harvest_sources(r), fabric_->host_port_drops(r));
    group.host.mem->begin_window();
    group.host.remote_mem->begin_window();
    group.host.receiver->begin_window();
    if (!workload_engines_.empty()) {
      workload_engines_[static_cast<std::size_t>(r)]->begin_window();
    }
  }
}

ClusterMetrics ClusterExperiment::snapshot() const {
  ClusterMetrics cm;
  cm.per_receiver.reserve(static_cast<std::size_t>(receivers_));
  for (int r = 0; r < receivers_; ++r) {
    const ReceiverGroup& group = groups_[static_cast<std::size_t>(r)];
    cm.per_receiver.push_back(harvest_host_window(harvest_sources(r), group.window_start,
                                                  window_start_time_,
                                                  fabric_->host_port_drops(r)));
  }
  for (const Metrics& m : cm.per_receiver) {
    cm.total_app_throughput_gbps += m.app_throughput_gbps;
    cm.total_nic_buffer_drops += m.nic_buffer_drops;
    cm.total_data_packets_sent += m.data_packets_sent;
    cm.max_host_delay_p99_us = std::max(cm.max_host_delay_p99_us, m.host_delay_p99_us);
  }
  cm.total_fabric_drops = fabric_->fabric_drops() - fabric_window_start_;
  if (!workload_engines_.empty()) {
    WorkloadMetrics& wm = cm.workload;
    wm.enabled = true;
    wm.fct_us = QuantileSketch(cfg_.workload.sketch_relative_error);
    wm.slowdown = QuantileSketch(cfg_.workload.sketch_relative_error);
    wm.host_delay_us = QuantileSketch(cfg_.workload.sketch_relative_error);
    // Fixed receiver order; sketch merges are exact, so this equals
    // one sketch fed by every receiver's stream regardless of
    // partitioning (the --parallel=N determinism probe).
    for (const auto& engine : workload_engines_) {
      const workload::WorkloadWindow& win = engine->window();
      wm.flows_started += win.flows_started;
      wm.flows_completed += win.flows_completed;
      wm.pool_exhausted += win.pool_exhausted;
      wm.collectives_completed += win.collectives_completed;
      wm.active_flows += engine->active_flows();
      wm.fct_us.merge(engine->fct_us());
      wm.slowdown.merge(engine->slowdown());
      wm.host_delay_us.merge(engine->host_delay_us());
    }
    wm.fct_p50_us = wm.fct_us.quantile(0.5);
    wm.fct_p99_us = wm.fct_us.quantile(0.99);
    wm.fct_p999_us = wm.fct_us.quantile(0.999);
    wm.slowdown_p50 = wm.slowdown.quantile(0.5);
    wm.slowdown_p99 = wm.slowdown.quantile(0.99);
    wm.slowdown_p999 = wm.slowdown.quantile(0.999);
    wm.host_delay_p50_us = wm.host_delay_us.quantile(0.5);
    wm.host_delay_p99_us = wm.host_delay_us.quantile(0.99);
    wm.host_delay_p999_us = wm.host_delay_us.quantile(0.999);
  }
  if (!cm.per_receiver.empty()) {
    cm.run_status = cm.per_receiver[0].run_status;
    cm.events_executed = cm.per_receiver[0].events_executed;
    cm.simulated_seconds = cm.per_receiver[0].simulated_seconds;
  }
  if (engine_ != nullptr) {
    // Run-global figures span every partition; per-receiver Metrics
    // carry the same run-global values (matching the legacy contract
    // that events_executed/run_status are not per-host quantities).
    cm.partitions = engine_->partitions();
    cm.parallel_windows = engine_->windows();
    cm.parallel_messages = engine_->messages_delivered();
    cm.events_executed = engine_->executed_total();
    const int fa = engine_->first_aborted_partition();
    if (fa >= 0) {
      cm.run_status = to_run_status(engine_->sim(fa).abort_cause());
    }
    for (Metrics& m : cm.per_receiver) {
      m.events_executed = cm.events_executed;
      m.run_status = cm.run_status;
      if (fa >= 0) m.run_status_detail = engine_->sim(fa).abort_reason();
    }
  }
  return cm;
}

ClusterMetrics ClusterExperiment::run() {
  start();
  if (engine_ != nullptr) {
    engine_->run_until(cfg_.host.warmup);
    begin_window();
    engine_->run_until(cfg_.host.warmup + cfg_.host.measure);
    return snapshot();
  }
  sim_.run_until(cfg_.host.warmup);
  begin_window();
  sim_.run_until(cfg_.host.warmup + cfg_.host.measure);
  return snapshot();
}

}  // namespace hicc
