// Reusable construction and harvesting of one full host.
//
// Experiment historically built its single receiver's stack (NUMA
// memory pair, STREAM antagonist, NIC/PCIe/IOMMU/rx-threads) inline;
// ClusterExperiment needs the same stack once per host. HostFactory
// extracts that construction -- including the exact RNG fork order the
// bitwise-determinism contract pins (mem, remote mem, receiver) -- and
// the harvest functions extract the window math that turns two counter
// snapshots into one host's Metrics. Both entry points share these, so
// a degenerate one-leaf cluster reproduces the legacy Experiment
// metrics through literally the same code path
// (tests/cluster_test.cpp pins the result bitwise).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/metrics.h"
#include "fault/engine.h"
#include "host/receiver_host.h"
#include "mem/memory_system.h"
#include "mem/stream_antagonist.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "transport/sender_host.h"

namespace hicc {

/// One host's full component stack (§2's Figure 2): the NIC-local and
/// remote NUMA memory systems, the optional STREAM antagonist pinned
/// to one of them, and the receiver datapath.
struct FullHost {
  std::unique_ptr<mem::MemorySystem> mem;         // NIC-local NUMA node
  std::unique_ptr<mem::MemorySystem> remote_mem;  // the other NUMA node
  std::unique_ptr<mem::StreamAntagonist> antagonist;
  std::unique_ptr<host::ReceiverHost> receiver;
};

/// Builds FullHost stacks on one simulator.
class HostFactory {
 public:
  explicit HostFactory(sim::Simulator& sim) : sim_(sim) {}

  /// Maps the experiment-level receiver knobs onto ReceiverParams
  /// (including the iommu_enabled / ats / strict overrides). With
  /// `open_loop` set the receiver is built in workload mode:
  /// `open_loop_slots` recyclable flow slots, no closed-loop reads, no
  /// victims (src/workload, docs/WORKLOADS.md).
  [[nodiscard]] static host::ReceiverParams receiver_params(const ExperimentConfig& cfg,
                                                            bool open_loop = false,
                                                            int open_loop_slots = 0);

  /// Builds one host's stack in the canonical order -- mem fork,
  /// remote-mem fork, antagonist (no fork), receiver fork -- which is
  /// the fork sequence the parity contract depends on. `num_senders`
  /// is the number of remote peers this host reads from. The defaulted
  /// open-loop arguments pass through to receiver_params().
  [[nodiscard]] FullHost make_full_host(const ExperimentConfig& cfg, int num_senders,
                                        Rng& rng, trace::Tracer* tracer,
                                        bool open_loop = false,
                                        int open_loop_slots = 0) const;

 private:
  sim::Simulator& sim_;
};

/// Cumulative per-host counters, snapshotted at window start and end;
/// Metrics reports the deltas.
struct HostCounterSnapshot {
  std::int64_t iotlb_misses = 0;
  std::int64_t iotlb_lookups = 0;
  std::int64_t nic_arrivals = 0;
  std::int64_t nic_drops = 0;
  std::int64_t data_sent = 0;
  std::int64_t retransmits = 0;
  std::int64_t rto_fires = 0;
  std::int64_t delivered = 0;
  std::int64_t fabric_drops = 0;
  std::int64_t translation_stalls = 0;
  std::int64_t wb_stalls = 0;
  std::int64_t hol_stalls = 0;
};

/// Everything the harvest reads to compute one host's Metrics: the
/// host stack, the sender-side transports feeding it, and the wire /
/// link-rate constants for the utilization math.
struct HostHarvestSources {
  const sim::Simulator* sim = nullptr;
  host::ReceiverHost* receiver = nullptr;
  mem::MemorySystem* mem = nullptr;
  mem::MemorySystem* remote_mem = nullptr;
  std::vector<transport::SenderHost*> senders;
  /// Run-level fault accounting; null when no script. (Cluster runs
  /// share one engine, so every host's Metrics carries the same
  /// cluster-wide fault numbers.)
  const fault::FaultEngine* fault_engine = nullptr;
  net::WireFormat wire;
  BitRate link_rate{};
};

/// Builds one flow's congestion controller per the config's cc
/// algorithm selection (shared by Experiment and ClusterExperiment).
[[nodiscard]] std::unique_ptr<transport::CongestionControl> make_congestion_control(
    sim::Simulator& sim, const ExperimentConfig& cfg, trace::Tracer* tracer);

/// Maps a simulator abort cause to the run-status Metrics reports --
/// shared by harvest_host_window and ClusterExperiment's parallel-mode
/// status aggregation.
[[nodiscard]] RunStatus to_run_status(sim::AbortCause cause);

/// Reads the current cumulative counters. `fabric_drops` is passed in
/// because its scope differs by caller: the whole fabric for the
/// legacy Experiment, the host's own ports for a cluster receiver.
[[nodiscard]] HostCounterSnapshot snapshot_host_counters(const HostHarvestSources& src,
                                                         std::int64_t fabric_drops);

/// Computes the window's Metrics from the start snapshot and the
/// current component state -- the single implementation of the
/// paper-figure math shared by Experiment and ClusterExperiment.
[[nodiscard]] Metrics harvest_host_window(const HostHarvestSources& src,
                                          const HostCounterSnapshot& window_start,
                                          TimePs window_start_time,
                                          std::int64_t fabric_drops_now);

}  // namespace hicc
