// Experiment: assembles the full system (memory, IOMMU, PCIe, NIC,
// receiver threads, fabric, sender hosts, congestion control), runs
// warmup + a measurement window, and harvests Metrics.
//
// This is the primary public entry point of the library:
//
//   hicc::ExperimentConfig cfg;
//   cfg.rx_threads = 12;
//   cfg.iommu_enabled = true;
//   hicc::Experiment exp(cfg);
//   const hicc::Metrics m = exp.run();
//
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/host_factory.h"
#include "core/metrics.h"
#include "fault/engine.h"
#include "host/receiver_host.h"
#include "mem/memory_system.h"
#include "mem/stream_antagonist.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "transport/sender_host.h"

namespace hicc {

/// One fully-wired simulation instance. Build one Experiment per
/// configuration point; run() may be called once.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;
  ~Experiment();

  /// Runs warmup + measurement and returns the window's metrics.
  Metrics run();

  /// Advances the simulation by `dt` (for incremental/example use).
  void advance(TimePs dt);

  /// Starts the workload without running (for incremental use).
  void start();

  /// Snapshot of current metrics relative to the last begin_window().
  [[nodiscard]] Metrics snapshot() const;

  /// Resets all measurement windows at the current instant.
  void begin_window();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  /// The experiment's tracer; null unless config().trace.enabled. Used
  /// to attach a TraceSink (CSV / Chrome JSON) before start() and to
  /// finish() the capture while the experiment is still alive.
  [[nodiscard]] trace::Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] mem::MemorySystem& memory() { return *mem_; }
  [[nodiscard]] mem::MemorySystem& remote_memory() { return *remote_mem_; }
  [[nodiscard]] host::ReceiverHost& receiver() { return *receiver_; }
  [[nodiscard]] mem::StreamAntagonist& antagonist() { return *antagonist_; }
  /// The fault engine; null unless config().faults is non-empty.
  [[nodiscard]] fault::FaultEngine* fault_engine() { return fault_engine_.get(); }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::unique_ptr<transport::CongestionControl> make_cc();
  /// Harvest sources for the shared per-host window math
  /// (core/host_factory.h); fabric_drops is supplied by the caller.
  [[nodiscard]] HostHarvestSources harvest_sources() const;

  ExperimentConfig cfg_;
  Rng rng_;
  sim::Simulator sim_;
  /// Declared before the components so probe-registering constructors
  /// can take it, and so it outlives them (poll lambdas capture
  /// component pointers; the tracer only calls them while sampling).
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<mem::MemorySystem> mem_;         // NIC-local NUMA node
  std::unique_ptr<mem::MemorySystem> remote_mem_;  // the other NUMA node
  std::unique_ptr<mem::StreamAntagonist> antagonist_;
  std::unique_ptr<host::ReceiverHost> receiver_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<transport::SenderHost>> senders_;
  /// Built last (and forks rng_ last) so runs whose script never fires
  /// stay event-identical to engine-less runs; null when no script.
  std::unique_ptr<fault::FaultEngine> fault_engine_;
  HostCounterSnapshot window_start_;
  TimePs window_start_time_{};
  bool started_ = false;
};

}  // namespace hicc
