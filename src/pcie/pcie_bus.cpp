// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#include "pcie/pcie_bus.h"

#include <cassert>
#include <utility>

namespace hicc::pcie {

PcieBus::PcieBus(sim::Simulator& sim, mem::MemorySystem& mem, iommu::Iommu& iommu,
                 PcieParams params, mem::DdioModel* ddio, trace::Tracer* tracer)
    : sim_(sim),
      mem_(mem),
      iommu_(iommu),
      params_(params),
      ddio_(ddio),
      credits_free_(params.credit_bytes) {
  if (tracer != nullptr) {
    // All polled: the sampler reads flow-control state the bus already
    // maintains, so the per-TLP path carries no tracing work.
    tracer->gauge("pcie.credits_in_use", "bytes",
                  [this] { return static_cast<double>(credits_in_use().count()); });
    tracer->gauge("pcie.rc_queue_depth", "tlps",
                  [this] { return static_cast<double>(rc_queue_.size()); });
    tracer->gauge("pcie.write_buffer_bytes", "bytes",
                  [this] { return static_cast<double>(wb_used_.count()); });
    tracer->counter("pcie.translation_stalls", "stalls",
                    [this] { return static_cast<double>(stats_.translation_stalls); });
    tracer->counter("pcie.write_buffer_stalls", "stalls",
                    [this] { return static_cast<double>(stats_.write_buffer_stalls); });
  }
}

void PcieBus::send_write_tlp(iommu::Iova iova, Bytes payload, CompletionFn retired,
                             bool pre_translated) {
  assert(can_send_write(payload));
  credits_free_ -= params_.tlp_wire_bytes(payload);
  ++stats_.write_tlps;
  transmit(Tlp{iova, payload, /*is_read=*/false, pre_translated, std::move(retired)});
}

void PcieBus::send_read(iommu::Iova iova, Bytes payload, CompletionFn done) {
  ++stats_.read_tlps;
  // Read requests carry no data downstream; only the header goes on
  // the wire. (Non-posted credits are not modeled: descriptor/ACK
  // traffic is far below the non-posted credit limits.)
  transmit(Tlp{iova, payload, /*is_read=*/true, /*pre_translated=*/false, std::move(done)});
}

void PcieBus::transmit(Tlp tlp) {
  // The per-TLP link closure must stay inside the event node's inline
  // buffer -- a boxed fallback here would mean one heap allocation per
  // simulated TLP.
  static_assert(sizeof(Tlp) + sizeof(PcieBus*) <= 80,
                "[this, tlp] closure must fit InlineAction's inline buffer");
  const Bytes wire =
      tlp.is_read ? params_.tlp_overhead : params_.tlp_wire_bytes(tlp.payload);
  const TimePs start = std::max(link_free_at_, sim_.now());
  link_free_at_ = start + params_.link_rate().time_to_send(wire);
  sim_.at(link_free_at_ + params_.link_latency,
          [this, tlp = std::move(tlp)]() mutable {
            rc_queue_.push_back(std::move(tlp));
            pump_rc();
          });
}

void PcieBus::pump_rc() {
  if (rc_busy_ || rc_queue_.empty()) return;
  rc_busy_ = true;
  const Tlp& head = rc_queue_.front();
  if (head.pre_translated) {
    // ATS: the address was translated on the device; no IOMMU work and
    // no possible head-of-line walk stall.
    sim_.after(params_.tlp_proc_time, [this] { finish_translation(); });
    return;
  }
  if (const auto fast = iommu_.try_translate(head.iova)) {
    sim_.after(params_.tlp_proc_time + *fast, [this] { finish_translation(); });
  } else {
    // Head-of-line page walk: everything behind waits (posted writes
    // cannot pass each other), and the credits of every queued TLP
    // stay captive until the walk resolves.
    ++stats_.translation_stalls;
    iommu_.translate_slow(head.iova, [this] {
      sim_.after(params_.tlp_proc_time + params_.walk_overhead,
                 [this] { finish_translation(); });
    });
  }
}

void PcieBus::finish_translation() {
  assert(rc_busy_ && !rc_queue_.empty());
  Tlp& head = rc_queue_.front();
  if (head.is_read) {
    stats_.bytes_read += head.payload.count();
    const TimePs lat = mem_.request(mem::MemClass::kNicDma, head.payload, /*is_read=*/true);
    auto done = std::move(head.done);
    rc_queue_.pop_front();
    rc_busy_ = false;
    // Completion returns over the upstream link.
    sim_.after(lat + params_.link_latency, std::move(done));
    pump_rc();
    return;
  }
  try_commit_write();
}

void PcieBus::try_commit_write() {
  assert(rc_busy_ && !rc_queue_.empty());
  Tlp& head = rc_queue_.front();
  if (wb_used_ + head.payload > params_.write_buffer_bytes) {
    // Memory is not draining fast enough: park until a write retires.
    if (!head_waiting_wb_) {
      head_waiting_wb_ = true;
      ++stats_.write_buffer_stalls;
    }
    return;
  }
  head_waiting_wb_ = false;
  const Bytes payload = head.payload;
  auto done = std::move(head.done);
  rc_queue_.pop_front();
  rc_busy_ = false;

  // The TLP has left the receive queue: its flow-control credits are
  // released back to the NIC.
  credits_free_ += params_.tlp_wire_bytes(payload);
  assert(credits_free_ <= params_.credit_bytes);

  wb_used_ += payload;
  stats_.bytes_written += payload.count();
  // DDIO: writes that land in the LLC's IO ways retire at cache
  // latency and place no load on the memory bus.
  TimePs lat;
  if (ddio_ != nullptr && ddio_->enabled() && ddio_->write_hits()) {
    ++stats_.ddio_write_hits;
    lat = ddio_->params().llc_write_latency;
  } else {
    lat = mem_.request(mem::MemClass::kNicDma, payload, /*is_read=*/false);
  }
  sim_.after(lat, [this, payload, done = std::move(done)] {
    wb_used_ -= payload;
    if (done) done();
    if (head_waiting_wb_) try_commit_write();
  });

  if (credits_cb_) credits_cb_();
  pump_rc();
}

}  // namespace hicc::pcie
