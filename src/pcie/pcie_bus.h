// The PCIe datapath between NIC and host memory (§2 steps 3-6).
//
// Model, downstream (NIC -> memory) direction:
//
//   [NIC DMA engine] --credits--> [link serializer] --> [RC ordered queue]
//        ^                                                   |
//        |                                    translate (IOTLB / page walk)
//        |                                                   v
//        +---- credit release <--- [write buffer] ---> memory write
//
//  * Credit-based flow control: the NIC may only place a TLP on the
//    link when it holds enough posted credits; credits for a TLP are
//    returned when the root complex moves it out of its receive queue
//    into the write buffer (i.e. after address translation).
//  * The RC receive queue is processed in order -- PCIe posted writes
//    cannot pass one another -- so a single IOTLB miss stalls every
//    TLP behind it, delaying credit return. This is how per-DMA latency
//    becomes a throughput ceiling (the paper's C*pkt/(Tbase + M*Tmiss)).
//  * The write buffer bounds posted data outstanding to DRAM. When the
//    memory bus is contended (§3.2) writes retire slowly, the buffer
//    fills, the pipeline stalls, and credit return slows -- identical
//    symptom, different root cause.
//
// Non-posted reads (Rx descriptor fetches, Tx/ACK payload fetches)
// traverse the same link and ordered pipeline, then complete with a
// memory read plus the upstream link latency.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <deque>

#include "common/units.h"
#include "iommu/iommu.h"
#include "mem/ddio.h"
#include "mem/memory_system.h"
#include "pcie/params.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hicc::pcie {

/// Counters for experiments and tests.
struct PcieStats {
  std::int64_t write_tlps = 0;
  std::int64_t read_tlps = 0;
  std::int64_t bytes_written = 0;   // payload bytes DMA'd to memory
  std::int64_t bytes_read = 0;      // payload bytes fetched from memory
  std::int64_t translation_stalls = 0;  // head-of-line page-walk stalls
  std::int64_t write_buffer_stalls = 0;
  std::int64_t ddio_write_hits = 0;     // DMA writes absorbed by the LLC
};

/// One PCIe link + root complex serving one NIC. When a DdioModel is
/// supplied, the root complex implements direct cache access: DMA
/// writes that hit the LLC's IO ways retire at cache latency and never
/// touch the memory bus (footnote 2 of the paper).
class PcieBus {
 public:
  /// Completion callbacks ride the per-TLP hot path; inline storage
  /// keeps them allocation-free (the NIC captures at most
  /// `[this, job_id]`-sized state).
  using CompletionFn = sim::InlineCallback<void()>;

  /// `tracer`, when non-null, registers the `pcie.*` probes (all
  /// polled from the credit/queue/buffer state the bus already keeps).
  PcieBus(sim::Simulator& sim, mem::MemorySystem& mem, iommu::Iommu& iommu,
          PcieParams params, mem::DdioModel* ddio = nullptr,
          trace::Tracer* tracer = nullptr);

  PcieBus(const PcieBus&) = delete;
  PcieBus& operator=(const PcieBus&) = delete;

  [[nodiscard]] const PcieParams& params() const { return params_; }

  /// True when the NIC holds enough credits to emit a posted write TLP
  /// of `payload` bytes.
  [[nodiscard]] bool can_send_write(Bytes payload) const {
    return !credits_frozen_ && credits_free_ >= params_.tlp_wire_bytes(payload);
  }

  /// Fault hook (nic.credit_stall): while frozen the NIC sees no
  /// posted credits, emulating a root complex that stops returning
  /// them. Unfreezing notifies the credit subscriber so DMA resumes.
  void set_credit_freeze(bool frozen) {
    const bool was = credits_frozen_;
    credits_frozen_ = frozen;
    if (was && !frozen && credits_cb_) credits_cb_();
  }

  /// Emits one posted write TLP. Preconditions: can_send_write().
  /// `retired` fires when the payload has been written to host memory
  /// (used for delivery timestamps and completion-queue ordering).
  /// `pre_translated` marks a TLP whose address the device already
  /// translated via ATS; the root complex skips the IOMMU for it.
  void send_write_tlp(iommu::Iova iova, Bytes payload, CompletionFn retired,
                      bool pre_translated = false);

  /// Emits one non-posted read (descriptor or Tx payload fetch) of
  /// `payload` bytes; `done` fires when the completion reaches the NIC.
  void send_read(iommu::Iova iova, Bytes payload, CompletionFn done);

  /// Registers the single credit-availability subscriber (the NIC DMA
  /// engine); invoked after credits are released.
  void on_credits_available(CompletionFn cb) { credits_cb_ = std::move(cb); }

  [[nodiscard]] Bytes credits_free() const { return credits_free_; }
  [[nodiscard]] Bytes credits_in_use() const { return params_.credit_bytes - credits_free_; }
  [[nodiscard]] Bytes write_buffer_used() const { return wb_used_; }
  [[nodiscard]] std::size_t rc_queue_depth() const { return rc_queue_.size(); }
  [[nodiscard]] const PcieStats& stats() const { return stats_; }

 private:
  struct Tlp {
    iommu::Iova iova = 0;
    Bytes payload{};
    bool is_read = false;
    bool pre_translated = false;
    CompletionFn done;
  };

  /// Places a TLP on the downstream link; it joins the RC queue after
  /// serialization + propagation.
  void transmit(Tlp tlp);
  /// Starts processing the RC queue head if idle.
  void pump_rc();
  /// Head TLP's translation finished; dispatch by type.
  void finish_translation();
  /// Tries to move the head posted write into the write buffer.
  void try_commit_write();

  sim::Simulator& sim_;
  mem::MemorySystem& mem_;
  iommu::Iommu& iommu_;
  PcieParams params_;
  mem::DdioModel* ddio_;

  Bytes credits_free_;
  bool credits_frozen_ = false;
  TimePs link_free_at_{};
  std::deque<Tlp> rc_queue_;
  bool rc_busy_ = false;
  bool head_waiting_wb_ = false;
  Bytes wb_used_{};
  CompletionFn credits_cb_;
  PcieStats stats_;
};

}  // namespace hicc::pcie
