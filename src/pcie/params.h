// PCIe link and root-complex parameters (§2 steps 3-6).
//
// The testbed uses PCIe 3.0 x16 per NIC: 8 GT/s per lane x 16 lanes =
// 128 Gbps raw. After 128b/130b encoding and per-TLP overheads (TLP
// header + LCRC + framing + DLLP bandwidth share), the achievable
// goodput with 256B max-payload TLPs is ~110 Gbps -- "only nominally
// faster than the line rate for 100Gbps NICs" (§3.1), which is why a
// modest per-DMA latency increase translates into lost throughput.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include "common/units.h"

namespace hicc::pcie {

/// Static PCIe + root-complex configuration.
struct PcieParams {
  /// Per-lane signalling rate in GT/s (gen3 = 8).
  double gigatransfers_per_lane = 8.0;
  int lanes = 16;
  /// Physical-layer encoding efficiency (128b/130b for gen3).
  double encoding = 128.0 / 130.0;
  /// Fraction of link cycles left after DLLP (ack/flow-control) traffic.
  double dllp_efficiency = 0.98;

  /// Maximum TLP payload (typical root complexes negotiate 256B).
  Bytes max_payload{256};
  /// Per-TLP overhead on the wire: 12B TLP header + 4B LCRC + 2B
  /// framing + 12B amortized sequence/ack overhead.
  Bytes tlp_overhead{30};

  /// Posted-write flow-control credits advertised by the root complex,
  /// expressed in bytes of TLP wire data the NIC may have in flight
  /// (header + data credits folded together).
  Bytes credit_bytes = Bytes(16 * 1024);

  /// Root-complex write buffer: bytes of translated posted writes that
  /// may be outstanding to the memory system. When memory slows down,
  /// this fills and backpressures the translation pipeline (and thus
  /// credit return) -- the §3.2 mechanism.
  Bytes write_buffer_bytes = Bytes(4 * 1024);

  /// Root-complex per-TLP processing time (header decode, routing).
  TimePs tlp_proc_time = TimePs::from_ns(3);

  /// One-way latency of the physical link + serdes.
  TimePs link_latency = TimePs::from_ns(50);

  /// Extra fixed cost of an IOTLB-miss page walk beyond its memory
  /// reads (walker setup, IOMMU pipeline).
  TimePs walk_overhead = TimePs::from_ns(90);

  /// Raw bidirectional link rate (128 Gbps for gen3 x16).
  [[nodiscard]] constexpr BitRate raw_rate() const {
    return BitRate(gigatransfers_per_lane * 1e9 * static_cast<double>(lanes));
  }

  /// Rate at which TLP wire bytes (payload + per-TLP overhead) move.
  [[nodiscard]] constexpr BitRate link_rate() const {
    return raw_rate() * encoding * dllp_efficiency;
  }

  /// Wire bytes occupied by a TLP carrying `payload` bytes.
  [[nodiscard]] constexpr Bytes tlp_wire_bytes(Bytes payload) const {
    return payload + tlp_overhead;
  }

  /// Effective payload goodput when streaming max-size TLPs
  /// (~110 Gbps with the defaults; the paper's achievable PCIe rate).
  [[nodiscard]] constexpr BitRate effective_goodput() const {
    const double frac = max_payload / tlp_wire_bytes(max_payload);
    return link_rate() * frac;
  }
};

}  // namespace hicc::pcie
