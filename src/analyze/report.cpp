#include "analyze/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

namespace hicc::analyze {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_string_array(std::ostringstream* out, const std::vector<std::string>& items) {
  *out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) *out << ", ";
    *out << '"' << json_escape(items[i]) << '"';
  }
  *out << "]";
}

}  // namespace

std::string Diagnostic::text() const {
  std::ostringstream out;
  out << file << ":" << line << ":" << col << ": " << rule << ": " << message;
  return out.str();
}

void sort_diagnostics(std::vector<Diagnostic>* diags) {
  std::sort(diags->begin(), diags->end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.col, a.rule, a.message) <
           std::tie(b.file, b.line, b.col, b.rule, b.message);
  });
}

std::vector<std::string> load_baseline(const std::string& path) {
  std::vector<std::string> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    entries.push_back(line.substr(first));
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  return entries;
}

bool write_baseline(const std::string& path, const std::vector<std::string>& keys) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# hicc_analyze grandfathered findings -- one per line:\n"
         "#   file|rule|normalized source text\n"
         "# Entries forgive matching findings; --strict fails on\n"
         "# stale entries. Shrink this file, never grow it.\n";
  std::set<std::string> sorted(keys.begin(), keys.end());
  for (const std::string& k : sorted) out << k << "\n";
  return static_cast<bool>(out);
}

std::string to_json(const std::vector<Diagnostic>& findings, const ReportStats& stats) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"hicc.analysis.v1\",\n";
  out << "  \"paths\": ";
  append_string_array(&out, stats.scanned_paths);
  out << ",\n";
  out << "  \"files\": " << stats.files << ",\n";
  out << "  \"functions\": " << stats.functions << ",\n";
  out << "  \"include_edges\": " << stats.include_edges << ",\n";
  out << "  \"call_edges\": " << stats.call_edges << ",\n";
  out << "  \"suppressions_used\": " << stats.suppressions_used << ",\n";
  out << "  \"baselined\": " << stats.baselined << ",\n";
  out << "  \"stale_baseline\": ";
  append_string_array(&out, stats.stale_baseline);
  out << ",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Diagnostic& d = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": " << d.line
        << ", \"col\": " << d.col << ", \"rule\": \"" << json_escape(d.rule)
        << "\", \"severity\": \"" << (d.warning ? "warning" : "error") << "\", \"message\": \""
        << json_escape(d.message) << "\", \"chain\": ";
    append_string_array(&out, d.chain);
    out << "}";
  }
  out << (findings.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

}  // namespace hicc::analyze
