#include "analyze/graph.h"

#include <algorithm>

namespace hicc::analyze {
namespace {

// Collapses "a/./b" and "a/x/../b" segments.
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (cur == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!cur.empty() && cur != ".") {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur.push_back(path[i]);
    }
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out.push_back('/');
    out += p;
  }
  return out;
}

std::string dirname_of(const std::string& path) {
  std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

std::string resolve(const std::string& from, const std::string& target,
                    const std::map<std::string, SourceFile>& files) {
  // Build include path: -I src (the CMake convention), then quoted
  // lookup relative to the including file, then root-relative.
  std::string cand = normalize("src/" + target);
  if (files.count(cand)) return cand;
  std::string dir = dirname_of(from);
  cand = normalize(dir.empty() ? target : dir + "/" + target);
  if (files.count(cand)) return cand;
  cand = normalize(target);
  if (files.count(cand)) return cand;
  return "";
}

}  // namespace

void IncludeGraph::build(const std::map<std::string, SourceFile>& files) {
  for (const auto& [path, sf] : files) {
    for (const IncludeDirective& inc : sf.includes) {
      IncludeEdge e;
      e.from = path;
      e.target = inc.target;
      e.resolved = resolve(path, inc.target, files);
      e.line = inc.line;
      e.col = inc.col;
      edges_.push_back(e);
      if (!e.resolved.empty()) {
        adj_[path].push_back(e.resolved);
        edge_pos_[path].emplace(e.resolved, std::make_pair(inc.line, inc.col));
      }
    }
  }
  for (auto& [from, outs] : adj_) {
    std::sort(outs.begin(), outs.end());
    outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
  }
}

std::vector<IncludeCycle> IncludeGraph::find_cycles() const {
  std::vector<IncludeCycle> cycles;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  // Iterative DFS so deep include chains cannot overflow the C stack.
  struct Frame {
    std::string node;
    std::size_t next = 0;
  };
  std::vector<std::string> roots;
  roots.reserve(adj_.size());
  for (const auto& [node, outs] : adj_) roots.push_back(node);

  for (const std::string& root : roots) {
    if (color[root] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    color[root] = 1;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      auto it = adj_.find(f.node);
      const std::vector<std::string>* outs = it == adj_.end() ? nullptr : &it->second;
      if (outs == nullptr || f.next >= outs->size()) {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string& to = (*outs)[f.next++];
      int c = color[to];
      if (c == 1) {
        // Back edge f.node -> to: the cycle is the stack from `to` down.
        IncludeCycle cyc;
        auto at = std::find(stack.begin(), stack.end(), to);
        cyc.path.assign(at, stack.end());
        cyc.at_file = f.node;
        auto pos = edge_pos_.at(f.node).at(to);
        cyc.line = pos.first;
        cyc.col = pos.second;
        cycles.push_back(std::move(cyc));
        continue;
      }
      if (c == 0) {
        color[to] = 1;
        stack.push_back(to);
        frames.push_back({to, 0});
      }
    }
  }
  return cycles;
}

const std::map<std::string, std::set<std::string>>& layer_dag() {
  // Lockstep contract: identical to scripts/hicc_lint.py LAYER_DAG and
  // the DESIGN.md §9 table (tests/dag_lockstep_test.py enforces it).
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {}},
      {"sim", {}},
      {"trace", {"sim"}},
      {"net", {"sim"}},
      {"mem", {"sim", "trace"}},
      {"iommu", {"sim", "trace", "mem"}},
      {"pcie", {"sim", "trace", "mem", "iommu"}},
      {"nic", {"sim", "trace", "net", "iommu", "pcie"}},
      {"transport", {"sim", "trace", "net"}},
      {"host", {"sim", "trace", "net", "nic", "pcie", "iommu", "mem"}},
      {"workload", {"sim", "trace", "net", "transport", "host"}},
      {"core",
       {"sim", "trace", "net", "nic", "pcie", "iommu", "mem", "host", "transport", "fault",
        "workload"}},
      {"fault", {"sim", "trace", "net", "nic", "pcie", "iommu", "mem", "host", "transport"}},
      {"sweep", {"sim", "trace", "core", "fault"}},
      {"analyze", {}},
  };
  return kDag;
}

const std::map<std::string, std::set<std::string>>& layer_dag_closure() {
  static const std::map<std::string, std::set<std::string>> kClosure = [] {
    const auto& dag = layer_dag();
    std::map<std::string, std::set<std::string>> closure;
    for (const auto& [mod, deps] : dag) {
      // BFS over allowed-dependency edges.
      std::set<std::string>& out = closure[mod];
      std::vector<std::string> queue(deps.begin(), deps.end());
      while (!queue.empty()) {
        std::string next = queue.back();
        queue.pop_back();
        if (!out.insert(next).second) continue;
        auto it = dag.find(next);
        if (it == dag.end()) continue;
        for (const std::string& d : it->second) queue.push_back(d);
      }
    }
    return closure;
  }();
  return kClosure;
}

std::string path_module(const std::string& rel_path) {
  if (rel_path.compare(0, 4, "src/") != 0) return "";
  std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

}  // namespace hicc::analyze
