// Whole-program semantic analyzer, layer 4: reporting.
//
// Diagnostics print in hicc_lint's exact shape --
//
//   file:line:col: rule-id: message
//
// sorted by (file, line, col, rule), and the baseline file uses the
// same text-keyed format (`file|rule|normalized source text`), so the
// two tools' workflows are interchangeable: grandfather with
// --write-baseline, shrink the file over time, and --strict fails on
// entries that no longer match.
//
// The machine-readable report is the `hicc.analysis.v1` JSON schema:
// a single object with schema id, deterministic scan counters, the
// rule catalog, and the findings (severity, optional call chain). No
// timestamps or absolute paths: the report is byte-identical across
// runs on the same tree.
#pragma once

#include <string>
#include <vector>

namespace hicc::analyze {

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  bool warning = false;             // advisory: printed, never fails the run
  std::string norm;                 // whitespace-normalized source line
  std::vector<std::string> chain;   // call chain root -> ... -> sink, if any

  [[nodiscard]] std::string baseline_key() const { return file + "|" + rule + "|" + norm; }
  [[nodiscard]] std::string text() const;
};

/// Orders by (file, line, col, rule, message).
void sort_diagnostics(std::vector<Diagnostic>* diags);

/// Reads a baseline file: one key per line, '#' comments and blank
/// lines skipped. Missing file -> empty set (not an error).
std::vector<std::string> load_baseline(const std::string& path);

/// Writes sorted unique keys under the standard header comment.
bool write_baseline(const std::string& path, const std::vector<std::string>& keys);

/// Everything the JSON report needs beyond the diagnostics.
struct ReportStats {
  std::vector<std::string> scanned_paths;  // the CLI path arguments
  int files = 0;
  int functions = 0;
  int include_edges = 0;
  int call_edges = 0;
  int suppressions_used = 0;
  int baselined = 0;
  std::vector<std::string> stale_baseline;
};

/// Serializes the hicc.analysis.v1 report (deterministic key order).
std::string to_json(const std::vector<Diagnostic>& findings, const ReportStats& stats);

}  // namespace hicc::analyze
