// Whole-program semantic analyzer, layer 2: the per-file index.
//
// A single forward pass over the token stream recovers an approximate
// structural view of each translation unit without a real parse:
//
//   * function definitions (namespace- and class-scope, ctors/dtors,
//     qualified names like Engine::run) with their body token ranges;
//   * call sites inside each body (`name(...)`, `obj.name(...)`);
//   * sink sites inside each body -- the allocation / nondeterminism
//     patterns the reachability rules propagate (mirrors the sink
//     regexes in scripts/hicc_lint.py so the two tools agree on what
//     counts as an allocation or a wall clock);
//   * namespace-scope mutable variables (the state the partition
//     single-writer rule tracks references to);
//   * every name the file provides to includers (classes, enums and
//     enumerators, using-aliases, functions, variables, macros) and
//     every identifier the file uses -- the two sides of the
//     unused-direct-include advisory.
//
// The parser is deliberately approximate: it must never crash or hang
// on valid C++, and may miss exotic constructs (it skips preprocessor
// branches, treats lambdas as part of the enclosing function, and does
// not instantiate templates). Rules built on it are tuned so that
// approximation errs toward silence, and every diagnostic can be
// suppressed with the shared `hicc-lint: allow(...)` grammar.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace hicc::analyze {

struct CallSite {
  std::string callee;  // simple (unqualified) name
  int line = 0;
  int col = 0;
};

/// A pattern occurrence a reachability rule treats as a sink.
/// `kind` is one of: new, malloc, make-unique-shared, std-function,
/// container-growth, wallclock, rand, unordered-iter, pointer-keyed.
struct SinkSite {
  std::string kind;
  std::string detail;  // the offending token text, e.g. "malloc"
  int line = 0;
  int col = 0;
};

struct FunctionDef {
  std::string name;       // simple name ("run", "Engine" for a ctor)
  std::string qualified;  // display name ("Engine::run")
  std::string file;       // root-relative path
  std::string module;     // "" outside src/<module>/
  int line = 0;
  int col = 0;
  bool in_hotpath_file = false;
  bool is_ctor_dtor = false;
  std::vector<CallSite> calls;
  std::vector<SinkSite> sinks;
  // First value-like reference to each identifier in the body: not a
  // member access (x.name), not qualified (ns::name), not a call
  // (name(...)), not an apparent declaration (Type name). This is what
  // the partition rule matches mutable-global names against.
  std::map<std::string, std::pair<int, int>> body_idents;
};

struct GlobalVar {
  std::string name;
  std::string file;
  std::string module;
  int line = 0;
};

/// Index of one file; built once, consumed by all rules.
struct FileIndex {
  std::vector<FunctionDef> functions;
  std::vector<GlobalVar> mutable_globals;  // namespace-scope, non-const
  std::set<std::string> provided;          // names usable by includers
  std::set<std::string> used_idents;       // every identifier mentioned
};

/// Scans a lexed file into its index. Pure function of the tokens.
FileIndex index_file(const SourceFile& sf);

/// True for C++ keywords and analyzer-ignored builtins (never callees).
bool is_cxx_keyword(const std::string& word);

}  // namespace hicc::analyze
