#include "analyze/analyzer.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

#include "analyze/graph.h"
#include "analyze/index.h"
#include "analyze/source.h"

namespace hicc::analyze {
namespace {

namespace fs = std::filesystem;

constexpr const char* kHotSinks[] = {"new", "malloc", "make-unique-shared", "std-function",
                                     "container-growth"};
constexpr const char* kDetSinks[] = {"wallclock", "rand", "unordered-iter", "pointer-keyed"};

// Modules whose code runs inside partition callbacks under the
// parallel engine (everything the datapath executes; harness layers
// core/fault/sweep and the read-only trace/analyze layers are not
// partition seams).
const std::set<std::string>& partition_modules() {
  static const std::set<std::string> kMods = {"sim",  "net",  "nic",       "pcie",    "iommu",
                                              "mem",  "host", "transport", "workload"};
  return kMods;
}

bool sink_in(const SinkSite& s, const char* const* kinds, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (s.kind == kinds[k]) return true;
  }
  return false;
}

struct Tree {
  std::map<std::string, SourceFile> files;  // rel path -> lexed file
  std::map<std::string, FileIndex> index;   // rel path -> index
  std::vector<const FunctionDef*> fns;      // flattened, file order
  std::vector<std::vector<int>> callees;    // resolved call-graph edges
  int call_edges = 0;
};

bool has_cxx_ext(const std::string& name) {
  for (const char* ext : {".h", ".hpp", ".cpp", ".cc"}) {
    std::string e(ext);
    if (name.size() > e.size() && name.compare(name.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

std::string rel_to_root(const fs::path& p, const fs::path& root) {
  std::string rel = p.lexically_normal().lexically_relative(root).generic_string();
  return rel.empty() ? p.generic_string() : rel;
}

// Mirrors hicc_lint's collect_files: directories walk recursively,
// files are taken as-is, everything sorted and deduplicated.
bool collect_files(const Options& opts, const fs::path& root, std::set<std::string>* out,
                   std::string* err) {
  for (const std::string& arg : opts.paths) {
    fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && has_cxx_ext(it->path().filename().string())) {
          out->insert(rel_to_root(it->path(), root));
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out->insert(rel_to_root(p, root));
    } else {
      *err = "hicc_analyze: no such path: " + arg;
      return false;
    }
  }
  return true;
}

// ---- call graph ----------------------------------------------------

void build_call_graph(Tree* tree) {
  // Flatten in file order (files map is sorted by path).
  std::map<std::string, std::vector<int>> by_name;
  for (const auto& [path, idx] : tree->index) {
    for (const FunctionDef& fn : idx.functions) {
      by_name[fn.name].push_back(static_cast<int>(tree->fns.size()));
      tree->fns.push_back(&fn);
    }
  }
  const auto& closure = layer_dag_closure();
  tree->callees.resize(tree->fns.size());
  for (std::size_t i = 0; i < tree->fns.size(); ++i) {
    const FunctionDef& f = *tree->fns[i];
    std::set<std::string> allowed;  // empty = allow every module
    if (!f.module.empty()) {
      allowed = {f.module, "common"};
      auto it = closure.find(f.module);
      if (it != closure.end()) allowed.insert(it->second.begin(), it->second.end());
    }
    std::set<int> outs;
    for (const CallSite& c : f.calls) {
      auto cand = by_name.find(c.callee);
      if (cand == by_name.end()) continue;
      for (int g : cand->second) {
        if (g == static_cast<int>(i)) continue;
        const FunctionDef& gf = *tree->fns[g];
        if (!allowed.empty() && gf.file != f.file && allowed.count(gf.module) == 0) continue;
        outs.insert(g);
      }
    }
    tree->callees[i].assign(outs.begin(), outs.end());
    tree->call_edges += static_cast<int>(outs.size());
  }
}

// Multi-source BFS; fills depth (-1 unreached) and parent (-1 none).
void reach(const Tree& tree, const std::vector<int>& roots, std::vector<int>* depth,
           std::vector<int>* parent) {
  depth->assign(tree.fns.size(), -1);
  parent->assign(tree.fns.size(), -1);
  std::deque<int> queue;
  for (int r : roots) {
    if ((*depth)[r] == -1) {
      (*depth)[r] = 0;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int w : tree.callees[v]) {
      if ((*depth)[w] != -1) continue;
      (*depth)[w] = (*depth)[v] + 1;
      (*parent)[w] = v;
      queue.push_back(w);
    }
  }
}

std::string chain_string(const Tree& tree, const std::vector<int>& parent, int g) {
  std::vector<std::string> names;
  for (int v = g; v != -1; v = parent[v]) names.push_back(tree.fns[v]->qualified);
  std::reverse(names.begin(), names.end());
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

int chain_root(const std::vector<int>& parent, int g) {
  int v = g;
  while (parent[v] != -1) v = parent[v];
  return v;
}

// "file:Qualified" entries, root first.
std::vector<std::string> chain_links(const Tree& tree, const std::vector<int>& parent, int g) {
  std::vector<std::string> links;
  for (int v = g; v != -1; v = parent[v]) {
    links.push_back(tree.fns[v]->file + ":" + tree.fns[v]->qualified);
  }
  std::reverse(links.begin(), links.end());
  return links;
}

// ---- rules ---------------------------------------------------------

void rule_include_cycle(const IncludeGraph& graph, std::vector<Diagnostic>* out) {
  for (const IncludeCycle& cyc : graph.find_cycles()) {
    std::string path;
    for (const std::string& f : cyc.path) {
      if (!path.empty()) path += " -> ";
      path += f;
    }
    path += " -> " + cyc.path.front();
    Diagnostic d;
    d.file = cyc.at_file;
    d.line = cyc.line;
    d.col = cyc.col;
    d.rule = "ana-include-cycle";
    d.message = "include cycle: " + path + "; headers must form a DAG (DESIGN.md §9)";
    out->push_back(std::move(d));
  }
}

void rule_layer_transitive(const IncludeGraph& graph, std::vector<Diagnostic>* out) {
  const auto& dag = layer_dag();
  const auto& closure = layer_dag_closure();
  for (const IncludeEdge& e : graph.edges()) {
    std::string mod = path_module(e.from);
    if (mod.empty() || dag.find(mod) == dag.end()) continue;
    std::string target_mod = e.target.substr(0, e.target.find('/'));
    if (dag.find(target_mod) == dag.end()) continue;
    std::set<std::string> allowed = {mod, "common"};
    auto it = closure.find(mod);
    if (it != closure.end()) allowed.insert(it->second.begin(), it->second.end());
    if (allowed.count(target_mod)) continue;
    std::string allow_list;
    for (const std::string& a : allowed) {
      if (!allow_list.empty()) allow_list += ", ";
      allow_list += a;
    }
    Diagnostic d;
    d.file = e.from;
    d.line = e.line;
    d.col = e.col;
    d.rule = "ana-layer-transitive";
    d.message = "src/" + mod + " must not depend on src/" + target_mod +
                " even transitively (closure: " + allow_list + "; DESIGN.md §9 DAG)";
    out->push_back(std::move(d));
  }
}

void rule_include_unused(const Tree& tree, const IncludeGraph& graph,
                         std::vector<Diagnostic>* out) {
  for (const IncludeEdge& e : graph.edges()) {
    if (e.resolved.empty()) continue;
    // A .cpp's own header is its interface, not a dependency choice.
    auto stem = [](const std::string& p) {
      std::size_t dot = p.rfind('.');
      return dot == std::string::npos ? p : p.substr(0, dot);
    };
    if (stem(e.from) == stem(e.resolved)) continue;
    const FileIndex& provider = tree.index.at(e.resolved);
    if (provider.provided.empty()) continue;  // marker/macro-only header
    const FileIndex& user = tree.index.at(e.from);
    bool used = false;
    for (const std::string& name : provider.provided) {
      if (user.used_idents.count(name)) {
        used = true;
        break;
      }
    }
    if (used) continue;
    Diagnostic d;
    d.file = e.from;
    d.line = e.line;
    d.col = e.col;
    d.rule = "ana-include-unused";
    d.warning = true;
    d.message = "unused direct include \"" + e.target +
                "\": nothing it provides is referenced in this file (advisory -- remove it, "
                "or keep it with an allow and a why)";
    out->push_back(std::move(d));
  }
}

void rule_hot_alloc_reach(const Tree& tree, std::vector<Diagnostic>* out) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < tree.fns.size(); ++i) {
    const FunctionDef& f = *tree.fns[i];
    if (f.in_hotpath_file && !f.is_ctor_dtor) roots.push_back(static_cast<int>(i));
  }
  std::vector<int> depth;
  std::vector<int> parent;
  reach(tree, roots, &depth, &parent);
  for (std::size_t g = 0; g < tree.fns.size(); ++g) {
    if (depth[g] < 0) continue;
    const FunctionDef& fn = *tree.fns[g];
    if (fn.in_hotpath_file) continue;  // direct sites are hicc_lint's job
    for (const SinkSite& s : fn.sinks) {
      if (!sink_in(s, kHotSinks, std::size(kHotSinks))) continue;
      int root = chain_root(parent, static_cast<int>(g));
      Diagnostic d;
      d.file = fn.file;
      d.line = s.line;
      d.col = s.col;
      d.rule = "ana-hot-alloc-reach";
      d.message = "allocation (" + s.detail + ") reachable from hot-path function '" +
                  tree.fns[root]->qualified + "' via " +
                  chain_string(tree, parent, static_cast<int>(g)) +
                  "; steady state must be allocation-free (DESIGN.md §8)";
      d.chain = chain_links(tree, parent, static_cast<int>(g));
      out->push_back(std::move(d));
    }
  }
}

void rule_det_reach(const Tree& tree, std::vector<Diagnostic>* out) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < tree.fns.size(); ++i) {
    if (tree.fns[i]->module == "sim") roots.push_back(static_cast<int>(i));
  }
  std::vector<int> depth;
  std::vector<int> parent;
  reach(tree, roots, &depth, &parent);
  for (std::size_t g = 0; g < tree.fns.size(); ++g) {
    if (depth[g] < 1) continue;  // direct sites are hicc_lint's job
    const FunctionDef& fn = *tree.fns[g];
    for (const SinkSite& s : fn.sinks) {
      if (!sink_in(s, kDetSinks, std::size(kDetSinks))) continue;
      int root = chain_root(parent, static_cast<int>(g));
      Diagnostic d;
      d.file = fn.file;
      d.line = s.line;
      d.col = s.col;
      d.rule = "ana-det-reach";
      d.message = "nondeterminism source (" + s.detail + ") reachable from sim entry '" +
                  tree.fns[root]->qualified + "' via " +
                  chain_string(tree, parent, static_cast<int>(g)) +
                  "; runs must be a pure function of the seed (DESIGN.md §7)";
      d.chain = chain_links(tree, parent, static_cast<int>(g));
      out->push_back(std::move(d));
    }
  }
}

void rule_par_global_reach(const Tree& tree, std::vector<Diagnostic>* out) {
  // Program-wide mutable-global registry, deduplicated by name (first
  // declaration in path order wins for the message).
  std::map<std::string, const GlobalVar*> globals;
  for (const auto& [path, idx] : tree.index) {
    for (const GlobalVar& g : idx.mutable_globals) {
      globals.emplace(g.name, &g);
    }
  }
  if (globals.empty()) return;
  const auto& closure = layer_dag_closure();
  std::vector<int> roots;
  for (std::size_t i = 0; i < tree.fns.size(); ++i) {
    if (partition_modules().count(tree.fns[i]->module)) roots.push_back(static_cast<int>(i));
  }
  std::vector<int> depth;
  std::vector<int> parent;
  reach(tree, roots, &depth, &parent);
  for (std::size_t g = 0; g < tree.fns.size(); ++g) {
    if (depth[g] < 0) continue;
    const FunctionDef& fn = *tree.fns[g];
    std::set<std::string> visible = {fn.module, "common", ""};
    auto cit = closure.find(fn.module);
    if (cit != closure.end()) visible.insert(cit->second.begin(), cit->second.end());
    for (const auto& [name, pos] : fn.body_idents) {
      auto git = globals.find(name);
      if (git == globals.end()) continue;
      const GlobalVar& var = *git->second;
      if (fn.module.empty()) {
        // Outside src/<module>: everything is visible.
      } else if (var.file != fn.file && visible.count(var.module) == 0) {
        continue;
      }
      int root = chain_root(parent, static_cast<int>(g));
      Diagnostic d;
      d.file = fn.file;
      d.line = pos.first;
      d.col = pos.second;
      d.rule = "ana-par-global-reach";
      d.message = "mutable global '" + name + "' (" + var.file + ":" +
                  std::to_string(var.line) + ") referenced by '" + fn.qualified +
                  "', reachable from partition seam '" + tree.fns[root]->qualified + "' via " +
                  chain_string(tree, parent, static_cast<int>(g)) +
                  "; partition callbacks must not share unguarded state (docs/PARALLELISM.md)";
      d.chain = chain_links(tree, parent, static_cast<int>(g));
      out->push_back(std::move(d));
    }
  }
}

}  // namespace

Result run(const Options& opts) {
  Result res;
  fs::path root = fs::absolute(opts.root.empty() ? "." : opts.root).lexically_normal();

  std::set<std::string> rel_paths;
  std::string err;
  if (!collect_files(opts, root, &rel_paths, &err)) {
    res.io_error = true;
    res.io_message = err;
    res.failed = true;
    return res;
  }

  Tree tree;
  for (const std::string& rel : rel_paths) {
    SourceFile sf;
    if (!load_source((root / rel).string(), rel, &sf)) continue;
    tree.files.emplace(rel, std::move(sf));
  }
  for (const auto& [rel, sf] : tree.files) {
    tree.index.emplace(rel, index_file(sf));
  }

  IncludeGraph graph;
  graph.build(tree.files);
  build_call_graph(&tree);

  std::vector<Diagnostic> raw;
  rule_include_cycle(graph, &raw);
  rule_layer_transitive(graph, &raw);
  rule_include_unused(tree, graph, &raw);
  rule_hot_alloc_reach(tree, &raw);
  rule_det_reach(tree, &raw);
  rule_par_global_reach(tree, &raw);

  // Suppressions (shared hicc-lint grammar), then baseline for errors.
  int suppressions_used = 0;
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    auto fit = tree.files.find(d.file);
    if (fit != tree.files.end()) {
      if (fit->second.allowed(d.line, d.rule)) {
        ++suppressions_used;
        continue;
      }
      d.norm = fit->second.norm(d.line);
    }
    kept.push_back(std::move(d));
  }

  std::vector<std::string> baseline =
      load_baseline(opts.baseline_path.empty()
                        ? (root / "scripts" / "hicc_analyze_baseline.txt").string()
                        : opts.baseline_path);
  std::set<std::string> baseline_set(baseline.begin(), baseline.end());
  std::set<std::string> used_baseline;
  for (Diagnostic& d : kept) {
    if (d.warning) {
      res.warnings.push_back(std::move(d));
      continue;
    }
    res.all_error_keys.push_back(d.baseline_key());
    if (baseline_set.count(d.baseline_key())) {
      used_baseline.insert(d.baseline_key());
      continue;
    }
    res.findings.push_back(std::move(d));
  }
  for (const std::string& key : baseline) {
    if (!used_baseline.count(key)) res.stale_baseline.push_back(key);
  }

  // Strict: unused ana-* suppressions become findings of their own.
  if (opts.strict) {
    for (const auto& [rel, sf] : tree.files) {
      for (const auto& [line, rule] : sf.unused_allows()) {
        Diagnostic d;
        d.file = rel;
        d.line = line;
        d.col = 1;
        d.rule = "ana-unused-suppression";
        d.message = "allow(" + rule + ") no longer matches a finding; remove it";
        res.findings.push_back(std::move(d));
      }
    }
  }

  sort_diagnostics(&res.findings);
  sort_diagnostics(&res.warnings);

  res.stats.files = static_cast<int>(tree.files.size());
  for (const auto& [rel, idx] : tree.index) {
    res.stats.functions += static_cast<int>(idx.functions.size());
  }
  res.stats.include_edges = static_cast<int>(graph.edges().size());
  res.stats.call_edges = tree.call_edges;
  res.stats.suppressions_used = suppressions_used;
  res.stats.baselined = static_cast<int>(used_baseline.size());
  res.stats.stale_baseline = res.stale_baseline;
  res.stats.scanned_paths = opts.paths;

  res.failed = !res.findings.empty() || (opts.strict && !res.stale_baseline.empty());
  return res;
}

std::string format_text(const Result& r, bool strict) {
  std::ostringstream out;
  if (r.io_error) {
    out << r.io_message << "\n";
    return out.str();
  }
  std::vector<Diagnostic> merged;
  merged.insert(merged.end(), r.warnings.begin(), r.warnings.end());
  merged.insert(merged.end(), r.findings.begin(), r.findings.end());
  sort_diagnostics(&merged);
  for (const Diagnostic& d : merged) out << d.text() << "\n";
  if (!r.findings.empty()) {
    out << "hicc_analyze: " << r.findings.size() << " finding(s)";
    if (r.stats.baselined > 0) out << " (" << r.stats.baselined << " baselined)";
    out << "\n";
  }
  if (strict) {
    for (const std::string& key : r.stale_baseline) {
      out << "hicc_analyze: stale baseline entry (fixed? delete it): " << key << "\n";
    }
  }
  if (!r.failed && r.findings.empty()) {
    out << "hicc_analyze: OK (" << r.stats.files << " files, " << r.stats.baselined
        << " baselined finding(s))\n";
  }
  return out.str();
}

std::string dump_dag() {
  std::ostringstream out;
  for (const auto& [mod, deps] : layer_dag()) {
    out << mod << ":";
    for (const std::string& d : deps) out << " " << d;
    out << "\n";
  }
  return out.str();
}

std::vector<std::string> rule_ids() {
  return {"ana-det-reach",       "ana-hot-alloc-reach", "ana-include-cycle",
          "ana-include-unused",  "ana-layer-transitive", "ana-par-global-reach",
          "ana-unused-suppression"};
}

}  // namespace hicc::analyze
