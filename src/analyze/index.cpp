#include "analyze/index.h"

#include <algorithm>

namespace hicc::analyze {
namespace {

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",      "asm",       "auto",     "bool",
      "break",     "case",         "catch",     "char",     "char8_t",
      "char16_t",  "char32_t",     "class",     "concept",  "const",
      "consteval", "constexpr",    "constinit", "const_cast",
      "continue",  "co_await",     "co_return", "co_yield", "decltype",
      "default",   "delete",       "do",        "double",   "dynamic_cast",
      "else",      "enum",         "explicit",  "export",   "extern",
      "false",     "final",        "float",     "for",      "friend",
      "goto",      "if",           "inline",    "int",      "long",
      "mutable",   "namespace",    "new",       "noexcept", "nullptr",
      "operator",  "override",     "private",   "protected",
      "public",    "register",     "reinterpret_cast",      "requires",
      "return",    "short",        "signed",    "sizeof",   "static",
      "static_assert",             "static_cast",           "struct",
      "switch",    "template",     "this",      "thread_local",
      "throw",     "true",         "try",       "typedef",  "typeid",
      "typename",  "union",        "unsigned",  "using",    "virtual",
      "void",      "volatile",     "wchar_t",   "while"};
  return kKeywords;
}

bool is_one_of(const std::string& s, std::initializer_list<const char*> opts) {
  for (const char* o : opts) {
    if (s == o) return true;
  }
  return false;
}

// Walks the whole token stream once collecting variable names declared
// as unordered_{map,set} (mirrors hicc_lint's UNORDERED_DECL_RE +
// DECL_NAME_RE pass; class members included, as with decl_code there).
std::set<std::string> collect_unordered_vars(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set") continue;
    if (t[i + 1].text != "<") continue;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < t.size() && j < i + 120; ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") --depth;
      if (t[j].text == ">>") depth -= 2;
      if (depth <= 0) break;
      if (t[j].text == ";" || t[j].text == "{") break;
    }
    if (j >= t.size() || depth > 0) continue;
    ++j;  // past the closing >
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) ++j;
    if (j + 1 < t.size() && t[j].kind == Token::Kind::kIdent && !is_cxx_keyword(t[j].text) &&
        is_one_of(t[j + 1].text, {";", "=", "{", "("})) {
      names.insert(t[j].text);
    }
  }
  return names;
}

// The structural scanner. One instance per file; `scan()` drives a
// statement-head state machine at namespace/class scope and hands
// function bodies to `scan_body`.
class Scanner {
 public:
  Scanner(const SourceFile& sf, FileIndex& out)
      : sf_(sf), out_(out), t_(sf.tokens), unordered_vars_(collect_unordered_vars(sf.tokens)) {}

  void scan() {
    for (const Token& tok : t_) {
      if (tok.kind == Token::Kind::kIdent && !is_cxx_keyword(tok.text)) {
        out_.used_idents.insert(tok.text);
      }
    }
    std::size_t i = 0;
    scan_decls(&i);
  }

 private:
  struct Scope {
    char kind;  // 'n' namespace, 'c' class, 'x' transparent (extern "C")
    std::string name;
  };

  const SourceFile& sf_;
  FileIndex& out_;
  const std::vector<Token>& t_;
  std::set<std::string> unordered_vars_;
  std::vector<Scope> scopes_;

  [[nodiscard]] bool in_class() const {
    for (const Scope& s : scopes_) {
      if (s.kind == 'c') return true;
    }
    return false;
  }

  // Adds a name to the file's provided set -- but only at namespace
  // scope. Class members are reached through the class name (which the
  // includer must spell out anyway); counting generic member names like
  // `record` or `size` as provided would make every include look used
  // and blind the unused-direct-include advisory. Type names themselves
  // are provided unconditionally via classify_brace/harvest_enum.
  void provide(const std::string& name) {
    if (!in_class()) out_.provided.insert(name);
  }

  [[nodiscard]] std::string innermost_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == 'c') return it->name;
    }
    return "";
  }

  static bool head_has(const std::vector<std::size_t>& head, const std::vector<Token>& t,
                       const char* word) {
    return std::any_of(head.begin(), head.end(), [&](std::size_t k) { return t[k].text == word; });
  }

  // Consumes a balanced {...} group starting at *i (which points at the
  // opening brace), appending nothing; leaves *i one past the match.
  void skip_braces(std::size_t* i) {
    int depth = 0;
    while (*i < t_.size()) {
      if (t_[*i].text == "{") ++depth;
      if (t_[*i].text == "}") --depth;
      ++*i;
      if (depth == 0) return;
    }
  }

  // ---- declaration-scope loop -------------------------------------

  void scan_decls(std::size_t* ip) {
    std::vector<std::size_t> head;  // token indices since last boundary
    int paren = 0;
    std::size_t& i = *ip;
    while (i < t_.size()) {
      const std::string& x = t_[i].text;
      if (t_[i].kind == Token::Kind::kPunct) {
        if (x == "(") ++paren;
        if (x == ")") --paren;
        if (x == ";" && paren == 0) {
          process_declaration(head);
          head.clear();
          ++i;
          continue;
        }
        if (x == ":" && paren == 0 && head.size() == 1 &&
            is_one_of(t_[head[0]].text, {"public", "private", "protected"})) {
          head.clear();  // access specifier
          ++i;
          continue;
        }
        if (x == "{") {
          if (paren > 0 || initializer_brace(head)) {
            // Part of the current statement (lambda in an argument,
            // `= {...}` initializer, ctor init-list member brace):
            // swallow it into the head.
            std::size_t start = i;
            skip_braces(&i);
            for (std::size_t k = start; k < i; ++k) head.push_back(k);
            continue;
          }
          classify_brace(&head, &i);
          continue;
        }
        if (x == "}" && paren == 0) {
          if (!scopes_.empty()) scopes_.pop_back();
          head.clear();
          ++i;
          // In a nested scan this } belongs to the caller's class; the
          // stack pop above already accounted for it.
          continue;
        }
      }
      head.push_back(i);
      ++i;
    }
    process_declaration(head);
  }

  // True when the `{` at the end of `head` opens an initializer rather
  // than a scope: `= {...}`, `Foo x{...}`, or a ctor init-list member.
  bool initializer_brace(const std::vector<std::size_t>& head) const {
    if (head.empty()) return false;
    int paren = 0;
    bool saw_group = false;
    bool colon_after_group = false;
    bool eq = false;
    for (std::size_t k : head) {
      const std::string& x = t_[k].text;
      if (x == "(") ++paren;
      if (x == ")") {
        --paren;
        if (paren == 0) saw_group = true;
      }
      if (paren == 0 && x == "=") eq = true;
      if (paren == 0 && x == ":" && saw_group) colon_after_group = true;
    }
    if (eq) return true;
    const Token& last = t_[head.back()];
    if (colon_after_group && last.kind == Token::Kind::kIdent) return true;  // init-list member
    if (!saw_group && last.kind == Token::Kind::kIdent && !head_has(head, t_, "namespace") &&
        !head_has(head, t_, "class") && !head_has(head, t_, "struct") &&
        !head_has(head, t_, "union") && !head_has(head, t_, "enum")) {
      return true;  // `Foo x{...}` brace-init
    }
    return false;
  }

  // `i` points at a scope-opening `{`. Decides what it opens.
  void classify_brace(std::vector<std::size_t>* head, std::size_t* i) {
    const std::vector<std::size_t>& h = *head;
    if (head_has(h, t_, "namespace")) {
      std::string name;
      for (std::size_t k : h) {
        if (t_[k].kind == Token::Kind::kIdent && t_[k].text != "namespace" &&
            t_[k].text != "inline") {
          if (!name.empty()) name += "::";
          name += t_[k].text;
        }
      }
      scopes_.push_back({'n', name});
      head->clear();
      ++*i;
      return;
    }
    if (head_has(h, t_, "enum")) {
      harvest_enum(h, i);  // consumes through the matching }
      head->clear();
      return;
    }
    // class/struct/union head with no parameter list -> type definition.
    bool class_kw = false;
    bool paren0 = false;
    int paren = 0;
    for (std::size_t k : h) {
      const std::string& x = t_[k].text;
      if (x == "(") {
        if (paren == 0) paren0 = true;
        ++paren;
      }
      if (x == ")") --paren;
      if (paren == 0 && !paren0 && is_one_of(x, {"class", "struct", "union"})) class_kw = true;
    }
    if (class_kw) {
      std::string name = class_head_name(h);
      if (!name.empty()) out_.provided.insert(name);
      scopes_.push_back({'c', name});
      head->clear();
      ++*i;
      return;
    }
    if (h.size() >= 2 && t_[h[0]].text == "extern" && t_[h[1]].kind == Token::Kind::kString) {
      scopes_.push_back({'x', ""});
      head->clear();
      ++*i;
      return;
    }
    if (paren0) {
      begin_function(h, i);  // consumes the body
      head->clear();
      return;
    }
    // Unknown brace (rare): treat as an opaque balanced group.
    skip_braces(i);
    head->clear();
  }

  std::string class_head_name(const std::vector<std::size_t>& h) const {
    for (std::size_t n = 0; n + 1 < h.size(); ++n) {
      if (is_one_of(t_[h[n]].text, {"class", "struct", "union"})) {
        for (std::size_t m = n + 1; m < h.size(); ++m) {
          if (t_[h[m]].text == ":") break;
          if (t_[h[m]].kind == Token::Kind::kIdent && t_[h[m]].text != "final" &&
              t_[h[m]].text != "alignas") {
            return t_[h[m]].text;
          }
        }
      }
    }
    return "";
  }

  void harvest_enum(const std::vector<std::size_t>& h, std::size_t* i) {
    // Name: first identifier after the `enum` keyword (skipping the
    // `class`/`struct` of a scoped enum), before any `:` base clause.
    bool seen_enum = false;
    for (std::size_t k : h) {
      if (t_[k].text == "enum") {
        seen_enum = true;
        continue;
      }
      if (!seen_enum) continue;
      if (t_[k].text == ":") break;
      if (t_[k].kind == Token::Kind::kIdent && !is_one_of(t_[k].text, {"class", "struct"})) {
        out_.provided.insert(t_[k].text);
        break;
      }
    }
    // Enumerators: identifiers at depth 1 followed by , } or =.
    int depth = 0;
    std::size_t& i2 = *i;
    while (i2 < t_.size()) {
      const std::string& x = t_[i2].text;
      if (x == "{") ++depth;
      if (x == "}") {
        --depth;
        if (depth == 0) {
          ++i2;
          return;
        }
      }
      if (depth == 1 && t_[i2].kind == Token::Kind::kIdent && i2 + 1 < t_.size() &&
          is_one_of(t_[i2 + 1].text, {",", "}", "="})) {
        out_.provided.insert(t_[i2].text);
      }
      ++i2;
    }
  }

  // ---- declarations (statements ending in `;`) --------------------

  void process_declaration(const std::vector<std::size_t>& h) {
    if (h.empty()) return;
    if (head_has(h, t_, "using")) {
      // `using NAME = ...` or `using ns::name`; skip using-namespace.
      for (std::size_t n = 0; n < h.size(); ++n) {
        if (t_[h[n]].text != "using") continue;
        if (n + 1 < h.size() && t_[h[n + 1]].text == "namespace") return;
        break;
      }
      std::string last_ident;
      for (std::size_t k : h) {
        if (t_[k].text == "=") break;
        if (t_[k].kind == Token::Kind::kIdent && !is_cxx_keyword(t_[k].text)) {
          last_ident = t_[k].text;
        }
      }
      if (!last_ident.empty()) provide(last_ident);
      return;
    }
    if (head_has(h, t_, "typedef")) {
      if (t_[h.back()].kind == Token::Kind::kIdent) provide(t_[h.back()].text);
      return;
    }
    bool class_kw = head_has(h, t_, "class") || head_has(h, t_, "struct") ||
                    head_has(h, t_, "union") || head_has(h, t_, "enum");
    if (class_kw) {
      std::string name = class_head_name(h);
      if (!name.empty()) out_.provided.insert(name);  // forward declaration
      return;
    }
    // Function declaration: a top-level (...) group.
    int paren = 0;
    std::size_t open = h.size();
    for (std::size_t n = 0; n < h.size(); ++n) {
      if (t_[h[n]].text == "(") {
        if (paren == 0 && open == h.size()) open = n;
        ++paren;
      }
      if (t_[h[n]].text == ")") --paren;
    }
    if (open != h.size()) {
      if (open > 0 && t_[h[open - 1]].kind == Token::Kind::kIdent &&
          !is_cxx_keyword(t_[h[open - 1]].text)) {
        provide(t_[h[open - 1]].text);
      }
      return;
    }
    if (h.size() < 2) return;
    // Variable declaration: name = last identifier before = / { / [.
    std::string name;
    for (std::size_t n = 0; n < h.size(); ++n) {
      const std::string& x = t_[h[n]].text;
      if (x == "=" || x == "{" || x == "[") break;
      if (t_[h[n]].kind == Token::Kind::kIdent && !is_cxx_keyword(t_[h[n]].text)) {
        name = t_[h[n]].text;
      }
    }
    if (name.empty()) return;
    provide(name);
    bool immut = head_has(h, t_, "const") || head_has(h, t_, "constexpr") ||
                 head_has(h, t_, "constinit") || head_has(h, t_, "extern") ||
                 head_has(h, t_, "friend");
    if (immut) return;
    const bool ns_scope = !in_class();
    const bool class_static = in_class() && head_has(h, t_, "static");
    if (ns_scope || class_static) {
      GlobalVar g;
      g.name = name;
      g.file = sf_.path;
      g.module = sf_.module_name();
      g.line = t_[h[0]].line;
      out_.mutable_globals.push_back(g);
    }
  }

  // ---- function definitions ---------------------------------------

  void begin_function(const std::vector<std::size_t>& h, std::size_t* i) {
    FunctionDef fn;
    fn.file = sf_.path;
    fn.module = sf_.module_name();
    fn.in_hotpath_file = sf_.hotpath;
    // Name: the identifier chain immediately before the first top-level
    // parameter list.
    std::size_t open = h.size();
    int paren = 0;
    for (std::size_t n = 0; n < h.size(); ++n) {
      if (t_[h[n]].text == "(") {
        if (paren == 0) {
          open = n;
          break;
        }
        ++paren;
      }
      if (t_[h[n]].text == ")") --paren;
    }
    std::vector<std::string> chain;
    bool dtor = false;
    if (open != h.size() && open > 0) {
      std::size_t j = open - 1;
      const Token& prev = t_[h[j]];
      if (prev.kind == Token::Kind::kPunct && j > 0 && t_[h[j - 1]].text == "operator") {
        fn.name = "operator" + prev.text;
        fn.line = t_[h[j - 1]].line;
        fn.col = t_[h[j - 1]].col;
      } else if (prev.kind == Token::Kind::kIdent) {
        chain.push_back(prev.text);
        fn.line = prev.line;
        fn.col = prev.col;
        while (j >= 2 && t_[h[j - 1]].text == "::" &&
               t_[h[j - 2]].kind == Token::Kind::kIdent) {
          chain.insert(chain.begin(), t_[h[j - 2]].text);
          fn.line = t_[h[j - 2]].line;
          fn.col = t_[h[j - 2]].col;
          j -= 2;
        }
        if (j >= 1 && t_[h[j - 1]].text == "~") dtor = true;
        fn.name = chain.back();
      }
    }
    if (fn.name.empty()) {  // unparseable head; still walk the body
      fn.name = "<anon>";
      fn.line = t_[*i].line;
      fn.col = t_[*i].col;
    }
    std::string owner = chain.size() >= 2 ? chain[chain.size() - 2] : innermost_class();
    fn.is_ctor_dtor = dtor || (!owner.empty() && fn.name == owner);
    if (dtor) fn.name = "~" + fn.name;
    fn.qualified = owner.empty() ? fn.name : owner + "::" + fn.name;
    // Only free functions are provided names; member definitions are
    // reached through their class.
    if (!is_cxx_keyword(fn.name) && owner.empty()) provide(fn.name);
    scan_body(&fn, i);
    out_.functions.push_back(std::move(fn));
  }

  void scan_body(FunctionDef* fn, std::size_t* ip) {
    std::size_t& i = *ip;
    int depth = 0;
    while (i < t_.size()) {
      const Token& tok = t_[i];
      if (tok.text == "{") ++depth;
      if (tok.text == "}") {
        --depth;
        if (depth == 0) {
          ++i;
          return;
        }
      }
      if (tok.kind == Token::Kind::kIdent) {
        scan_ident(fn, i);
      }
      ++i;
    }
  }

  [[nodiscard]] const std::string& next_text(std::size_t i, std::size_t ahead = 1) const {
    static const std::string kEmpty;
    return i + ahead < t_.size() ? t_[i + ahead].text : kEmpty;
  }

  [[nodiscard]] const std::string& prev_text(std::size_t i) const {
    static const std::string kEmpty;
    return i > 0 ? t_[i - 1].text : kEmpty;
  }

  // Looks at one identifier inside a body for call sites and sinks.
  void scan_ident(FunctionDef* fn, std::size_t i) {
    const Token& tok = t_[i];
    const std::string& name = tok.text;
    const std::string& prev = prev_text(i);
    const std::string& next = next_text(i);
    const bool member_access = prev == "." || prev == "->";
    const bool std_qualified = prev == "::" && i >= 2 && t_[i - 2].text == "std";

    if (!is_cxx_keyword(name) && !member_access && prev != "::" && next != "(" && next != "::") {
      const bool decl_like = i > 0 && t_[i - 1].kind == Token::Kind::kIdent &&
                             !is_cxx_keyword(t_[i - 1].text);
      if (!decl_like) fn->body_idents.emplace(name, std::make_pair(tok.line, tok.col));
    }

    // -- sinks ------------------------------------------------------
    if (name == "new" && prev != "operator" && !member_access && prev != "::" && next != "(" &&
        next != ";") {
      fn->sinks.push_back({"new", "new", tok.line, tok.col});
      return;
    }
    if (!member_access && next == "(" &&
        is_one_of(name, {"malloc", "calloc", "realloc", "aligned_alloc"})) {
      fn->sinks.push_back({"malloc", name, tok.line, tok.col});
    }
    if (std_qualified && next == "<" && is_one_of(name, {"make_unique", "make_shared"})) {
      fn->sinks.push_back({"make-unique-shared", "std::" + name, tok.line, tok.col});
    }
    if (std_qualified && next == "<" && name == "function") {
      fn->sinks.push_back({"std-function", "std::function", tok.line, tok.col});
    }
    if (member_access && next == "(" && is_one_of(name, {"push_back", "emplace_back"})) {
      std::string obj = i >= 2 && t_[i - 2].kind == Token::Kind::kIdent ? t_[i - 2].text : "?";
      fn->sinks.push_back({"container-growth", obj + "." + name, tok.line, tok.col});
    }
    if (name == "now" && prev == "::" && i >= 2 &&
        is_one_of(t_[i - 2].text, {"steady_clock", "system_clock", "high_resolution_clock"})) {
      fn->sinks.push_back({"wallclock", t_[i - 2].text + "::now", tok.line, tok.col});
    }
    if (!member_access && next == "(" &&
        is_one_of(name, {"time", "clock_gettime", "gettimeofday", "clock"})) {
      fn->sinks.push_back({"wallclock", name, tok.line, tok.col});
    }
    if (!member_access && next == "(" &&
        is_one_of(name, {"rand", "srand", "rand_r", "drand48", "random"})) {
      fn->sinks.push_back({"rand", name, tok.line, tok.col});
    }
    if (std_qualified && is_one_of(name, {"random_device", "mt19937", "mt19937_64"})) {
      fn->sinks.push_back({"rand", "std::" + name, tok.line, tok.col});
    }
    if (std_qualified && next == "<" && (name == "map" || name == "set")) {
      scan_pointer_key(fn, i);
    }
    if (name == "for" && next == "(") {
      scan_range_for(fn, i);
    }

    // -- call sites -------------------------------------------------
    if (is_cxx_keyword(name)) return;
    std::size_t after = i + 1;
    if (next == "<") {  // possible explicit template arguments
      int adepth = 0;
      std::size_t j = i + 1;
      for (; j < t_.size() && j < i + 40; ++j) {
        const std::string& x = t_[j].text;
        if (x == "<") ++adepth;
        if (x == ">") --adepth;
        if (x == ">>") adepth -= 2;
        if (adepth <= 0) break;
        if (x == ";" || x == "{" || x == "}" || x == "&&" || x == "||") {
          adepth = -100;  // comparison, not template args
          break;
        }
      }
      if (adepth == 0 && j + 1 < t_.size() && t_[j + 1].text == "(") after = j + 1;
    }
    if (after >= t_.size() || t_[after].text != "(") return;
    fn->calls.push_back({name, tok.line, tok.col});
  }

  // At `std::map<` / `std::set<`: flags a pointer-typed key.
  void scan_pointer_key(FunctionDef* fn, std::size_t i) {
    int depth = 0;
    std::string last;
    for (std::size_t j = i + 1; j < t_.size() && j < i + 120; ++j) {
      const std::string& x = t_[j].text;
      if (x == "<") ++depth;
      if (x == ">") --depth;
      if (x == ">>") depth -= 2;
      if (depth <= 0 || (depth == 1 && x == ",")) {
        if (last == "*") {
          fn->sinks.push_back(
              {"pointer-keyed", "std::" + t_[i].text + "<T*, ...>", t_[i].line, t_[i].col});
        }
        return;
      }
      if (x == ";" || x == "{") return;
      if (j > i + 1) last = x;
    }
  }

  // At `for (`: flags range-for over a variable declared unordered.
  void scan_range_for(FunctionDef* fn, std::size_t i) {
    int depth = 0;
    bool past_colon = false;
    for (std::size_t j = i + 1; j < t_.size() && j < i + 80; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(") ++depth;
      if (x == ")") {
        --depth;
        if (depth == 0) return;
      }
      if (x == ";") return;  // classic for
      if (depth == 1 && x == ":") past_colon = true;
      if (past_colon && t_[j].kind == Token::Kind::kIdent && unordered_vars_.count(x)) {
        fn->sinks.push_back({"unordered-iter", x, t_[i].line, t_[i].col});
        return;
      }
    }
  }
};

}  // namespace

bool is_cxx_keyword(const std::string& word) { return keyword_set().count(word) > 0; }

FileIndex index_file(const SourceFile& sf) {
  FileIndex out;
  for (const std::string& m : sf.macro_defines) out.provided.insert(m);
  Scanner scanner(sf, out);
  scanner.scan();
  return out;
}

}  // namespace hicc::analyze
