// Whole-program semantic analyzer, layer 5: the analysis driver.
//
// run() loads and lexes every C++ file under the requested paths,
// builds the include graph and the approximate call graph, and applies
// the rule set:
//
//   ana-include-cycle      include cycles
//   ana-layer-transitive   include edges outside the layering DAG's
//                          transitive closure
//   ana-include-unused     direct includes providing nothing the
//                          includer mentions (warning-level advisory)
//   ana-hot-alloc-reach    allocation sites reachable from functions
//                          in hotpath-marked files, where the sink
//                          lives in a file the per-line linter's hot
//                          rules do not cover
//   ana-det-reach          wall-clock / global-RNG / unordered-
//                          iteration / pointer-keyed-ordering sites
//                          reachable (>= 1 call hop) from functions
//                          defined in src/sim -- the simulator entry
//                          points
//   ana-par-global-reach   references to namespace-scope mutable
//                          variables from functions reachable from
//                          partition-module seams
//
// Call edges are layering-aware: a call in module M only resolves to
// definitions in M, common, or M's transitive DAG closure, which is
// what keeps an approximate name-keyed call graph from inventing
// cross-module edges the build would reject.
#pragma once

#include <string>
#include <vector>

#include "analyze/report.h"

namespace hicc::analyze {

struct Options {
  std::string root;                // directory containing src/ (default ".")
  std::vector<std::string> paths;  // files/dirs to scan, relative to cwd
  std::string baseline_path;       // "" -> <root>/scripts/hicc_analyze_baseline.txt
  bool strict = false;             // fail on stale baseline/suppressions
};

struct Result {
  std::vector<Diagnostic> findings;  // fresh errors (and, under --strict,
                                     // ana-unused-suppression), sorted
  std::vector<Diagnostic> warnings;  // advisory diagnostics, sorted
  std::vector<std::string> stale_baseline;  // unmatched baseline keys
  std::vector<std::string> all_error_keys;  // pre-baseline keys (--write-baseline)
  ReportStats stats;
  bool failed = false;       // exit-1 condition (strict folds in staleness)
  bool io_error = false;     // a path argument did not exist
  std::string io_message;
};

/// Runs the full analysis. Deterministic: same tree, same output.
Result run(const Options& opts);

/// Renders the human-readable output exactly the way hicc_lint does:
/// sorted diagnostics, then the summary / staleness / OK lines.
std::string format_text(const Result& r, bool strict);

/// The analyzer's copy of the layering DAG as "module: dep dep ..."
/// lines (sorted), for the DAG lockstep test.
std::string dump_dag();

/// Sorted rule ids (--list-rules).
std::vector<std::string> rule_ids();

}  // namespace hicc::analyze
