#include "analyze/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace hicc::analyze {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Comment bodies that drive the shared suppression grammar.
constexpr const char* kAllowTag = "hicc-lint:";

// Multi-character punctuators worth keeping whole; everything else is
// emitted one character at a time. Order matters (longest first).
constexpr const char* kPuncts3[] = {"->*", "<<=", ">>=", "...", "<=>"};
constexpr const char* kPuncts2[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
                                    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                                    "|=", "^=", "##"};

struct Lexer {
  const std::string& text;
  SourceFile& out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  std::string code_line;  // current stripped line being built

  explicit Lexer(const std::string& t, SourceFile& o) : text(t), out(o) {}

  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }

  void emit_code(char c) { code_line.push_back(c); }

  void advance(char visible) {
    // Consumes one source character, mirroring it (or a blank) into the
    // stripped code view so columns line up with the raw file.
    if (text[i] == '\n') {
      out.code.push_back(code_line);
      code_line.clear();
      ++line;
      col = 1;
    } else {
      emit_code(visible);
      ++col;
    }
    ++i;
  }

  void skip_blank(std::size_t n) {
    for (std::size_t k = 0; k < n && i < text.size(); ++k) advance(' ');
  }

  void line_comment() {
    while (i < text.size() && text[i] != '\n') advance(' ');
  }

  void block_comment() {
    skip_blank(2);
    while (i < text.size()) {
      if (text[i] == '*' && peek(1) == '/') {
        skip_blank(2);
        return;
      }
      advance(' ');
    }
  }

  void string_literal(char quote) {
    advance(quote);
    while (i < text.size() && text[i] != '\n') {
      if (text[i] == '\\') {
        skip_blank(2);
        continue;
      }
      if (text[i] == quote) {
        advance(quote);
        return;
      }
      advance(' ');
    }
  }

  void raw_string() {
    // At 'R' of R"delim( ... )delim".
    std::size_t j = i + 2;
    std::string delim;
    while (j < text.size() && text[j] != '(' && delim.size() <= 16) delim.push_back(text[j++]);
    if (j >= text.size() || text[j] != '(') {  // not actually a raw string
      advance('R');
      return;
    }
    skip_blank(j + 1 - i);  // R"delim(
    const std::string closer = ")" + delim + "\"";
    while (i < text.size()) {
      if (text.compare(i, closer.size(), closer) == 0) {
        skip_blank(closer.size());
        return;
      }
      advance(' ');
    }
  }

  // Preprocessor directive: record #include "..." / #define NAME, then
  // blank the whole (possibly continued) line so conditional-compilation
  // branches and macro bodies never unbalance the token stream.
  void preprocessor() {
    std::size_t j = i + 1;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    std::size_t word_end = j;
    while (word_end < text.size() && ident_char(text[word_end])) ++word_end;
    const std::string directive = text.substr(j, word_end - j);
    if (directive == "include") {
      std::size_t q = word_end;
      while (q < text.size() && text[q] != '"' && text[q] != '<' && text[q] != '\n') ++q;
      if (q < text.size() && text[q] == '"') {
        std::size_t close = text.find('"', q + 1);
        if (close != std::string::npos && text.find('\n', q) > close) {
          IncludeDirective inc;
          inc.target = text.substr(q + 1, close - q - 1);
          inc.line = line;
          inc.col = static_cast<int>(col + (q + 1 - i));
          out.includes.push_back(inc);
        }
      }
    } else if (directive == "define") {
      std::size_t n = word_end;
      while (n < text.size() && (text[n] == ' ' || text[n] == '\t')) ++n;
      std::size_t name_end = n;
      while (name_end < text.size() && ident_char(text[name_end])) ++name_end;
      if (name_end > n) out.macro_defines.insert(text.substr(n, name_end - n));
    }
    // Blank to end of line, honoring backslash continuations.
    while (i < text.size()) {
      if (text[i] == '\\' && peek(1) == '\n') {
        advance(' ');  // the backslash
        advance(' ');  // the newline (advances `line`)
        continue;
      }
      if (text[i] == '\n') return;  // leave the newline to the main loop
      // Strip comments inside directives too (a // after #include).
      if (text[i] == '/' && peek(1) == '/') {
        line_comment();
        return;
      }
      if (text[i] == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      advance(' ');
    }
  }

  void run() {
    bool at_line_start = true;  // only whitespace seen so far this line
    while (i < text.size()) {
      const char c = text[i];
      if (c == '\n') {
        advance(c);
        at_line_start = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        advance(' ');
        continue;
      }
      if (c == '#' && at_line_start) {
        preprocessor();
        continue;
      }
      at_line_start = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (c == '"' || c == '\'') {
        Token t{c == '"' ? Token::Kind::kString : Token::Kind::kChar, "", line, col};
        // Char-literal heuristic: a ' preceded by an identifier or digit
        // is a digit separator / UDL context only in numbers, which are
        // consumed below, so reaching here it is a real literal.
        string_literal(c);
        out.tokens.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        Token t{Token::Kind::kNumber, "", line, col};
        while (i < text.size() &&
               (ident_char(text[i]) || text[i] == '.' ||
                ((text[i] == '+' || text[i] == '-') && i > 0 &&
                 (text[i - 1] == 'e' || text[i - 1] == 'E' || text[i - 1] == 'p' ||
                  text[i - 1] == 'P')) ||
                (text[i] == '\'' && i + 1 < text.size() && ident_char(text[i + 1])))) {
          t.text.push_back(text[i]);
          advance(text[i]);
        }
        out.tokens.push_back(std::move(t));
        continue;
      }
      if (ident_start(c)) {
        Token t{Token::Kind::kIdent, "", line, col};
        while (i < text.size() && ident_char(text[i])) {
          t.text.push_back(text[i]);
          advance(text[i]);
        }
        out.tokens.push_back(std::move(t));
        continue;
      }
      // Punctuation, longest match first.
      Token t{Token::Kind::kPunct, "", line, col};
      bool matched = false;
      for (const char* p : kPuncts3) {
        if (text.compare(i, 3, p) == 0) {
          t.text = p;
          matched = true;
          break;
        }
      }
      if (!matched) {
        for (const char* p : kPuncts2) {
          if (text.compare(i, 2, p) == 0) {
            t.text = p;
            matched = true;
            break;
          }
        }
      }
      if (!matched) t.text = std::string(1, c);
      for (std::size_t k = 0; k < t.text.size(); ++k) advance(t.text[k]);
      out.tokens.push_back(std::move(t));
    }
    out.code.push_back(code_line);
  }
};

void split_lines(const std::string& text, std::vector<std::string>* out) {
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      out->push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out->push_back(cur);
}

// Parses "rule-a, rule-b" from inside an allow(...) form.
std::set<std::string> split_rules(const std::string& s) {
  std::set<std::string> rules;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) rules.insert(cur);
  return rules;
}

void scan_suppressions(SourceFile& sf) {
  for (std::size_t idx = 0; idx < sf.raw.size(); ++idx) {
    const std::string& line = sf.raw[idx];
    std::size_t c = line.find("//");
    if (c == std::string::npos) continue;
    std::size_t tag = line.find(kAllowTag, c);
    if (tag == std::string::npos) continue;
    std::size_t body = tag + std::string(kAllowTag).size();
    while (body < line.size() && line[body] == ' ') ++body;
    if (line.compare(body, 7, "hotpath") == 0) {
      sf.hotpath = true;
      continue;
    }
    const bool file_scope = line.compare(body, 11, "allow-file(") == 0;
    const bool line_scope = !file_scope && line.compare(body, 6, "allow(") == 0;
    if (!file_scope && !line_scope) continue;
    std::size_t open = line.find('(', body);
    std::size_t close = line.find(')', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    std::set<std::string> rules = split_rules(line.substr(open + 1, close - open - 1));
    if (file_scope) {
      sf.file_allows.insert(rules.begin(), rules.end());
      continue;
    }
    std::size_t target = idx + 1;  // 1-based line of the comment itself
    std::string before = line.substr(0, c);
    const bool trailing = before.find_first_not_of(" \t") != std::string::npos;
    if (!trailing) {
      // A bare comment covers the next code line; the justification may
      // continue over further comment-only or blank lines (same skip
      // rule as hicc_lint.py's FileContext).
      ++target;
      while (target <= sf.raw.size()) {
        const std::string& t = sf.raw[target - 1];
        std::size_t first = t.find_first_not_of(" \t\r");
        if (first != std::string::npos && t.compare(first, 2, "//") != 0) break;
        ++target;
      }
    }
    sf.line_allows[static_cast<int>(target)].insert(rules.begin(), rules.end());
  }
}

}  // namespace

std::string SourceFile::module_name() const {
  if (path.compare(0, 4, "src/") != 0) return "";
  std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

bool SourceFile::allowed(int line, const std::string& rule) const {
  if (file_allows.count(rule)) return true;
  auto it = line_allows.find(line);
  if (it != line_allows.end() && it->second.count(rule)) {
    used_allows.insert({line, rule});
    return true;
  }
  return false;
}

std::string SourceFile::norm(int line) const {
  if (line < 1 || line > static_cast<int>(raw.size())) return "";
  std::istringstream in(raw[line - 1]);
  std::string word;
  std::string out;
  while (in >> word) {
    if (!out.empty()) out.push_back(' ');
    out += word;
  }
  return out;
}

std::vector<std::pair<int, std::string>> SourceFile::unused_allows() const {
  std::vector<std::pair<int, std::string>> out;
  for (const auto& [line, rules] : line_allows) {
    for (const std::string& rule : rules) {
      if (rule.compare(0, 4, "ana-") != 0) continue;  // hicc_lint's rules
      if (!used_allows.count({line, rule})) out.emplace_back(line, rule);
    }
  }
  return out;
}

SourceFile parse_source(const std::string& rel_path, const std::string& text) {
  SourceFile sf;
  sf.path = rel_path;
  split_lines(text, &sf.raw);
  Lexer lexer(text, sf);
  lexer.run();
  while (sf.code.size() < sf.raw.size()) sf.code.emplace_back();
  scan_suppressions(sf);
  return sf;
}

bool load_source(const std::string& abs_path, const std::string& rel_path, SourceFile* out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = parse_source(rel_path, buf.str());
  return true;
}

}  // namespace hicc::analyze
