// Whole-program semantic analyzer, layer 1: source loading and lexing.
//
// hicc_analyze (docs/STATIC_ANALYSIS.md, layer 2 of the gate) is a
// zero-dependency analyzer: no libclang, no compile step. Each file is
// loaded once into a SourceFile -- raw lines, a comment/string-stripped
// "code view" with columns preserved (the same view scripts/hicc_lint.py
// scans), a token stream with line/col positions, the `#include` and
// `#define` directives, and the hicc-lint suppression state. The
// suppression grammar is shared with the line linter by design: a
// trailing "hicc-lint:" comment carrying allow(rule) -- justification
// suppresses on that line; on a line of its own it binds to the next
// code line; allow-file(rule) covers the whole file; and a bare
// "hotpath" marker opts the file into hot-path rules. Analyzer rules
// all carry the `ana-` prefix; each tool ignores the other's rule ids
// when checking for unused suppressions.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hicc::analyze {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;  // punct: the operator; string/char: empty (contents blanked)
  int line = 0;      // 1-based
  int col = 0;       // 1-based
};

struct IncludeDirective {
  std::string target;  // as written between the quotes
  int line = 0;
  int col = 0;  // column of the first character of the target
};

/// One lexed file. `path` is root-relative with forward slashes; the
/// module (for layering) is the first directory under src/.
class SourceFile {
 public:
  std::string path;
  std::vector<std::string> raw;   // raw source lines
  std::vector<std::string> code;  // comments/strings blanked, columns kept
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;  // quoted includes only
  std::set<std::string> macro_defines;     // #define NAME
  bool hotpath = false;                    // carries "// hicc-lint: hotpath"

  /// "sim" for src/sim/..., "" for anything not under src/<module>/.
  [[nodiscard]] std::string module_name() const;

  /// True (and marks the suppression used) when `rule` is allowed at
  /// `line` by an inline or file-level hicc-lint allow.
  bool allowed(int line, const std::string& rule) const;

  /// Whitespace-normalized raw text of `line` (baseline key component).
  [[nodiscard]] std::string norm(int line) const;

  /// Inline allows that never fired, restricted to `ana-*` rules
  /// (other prefixes belong to hicc_lint). Sorted (line, rule) pairs.
  [[nodiscard]] std::vector<std::pair<int, std::string>> unused_allows() const;

  std::set<std::string> file_allows;
  std::map<int, std::set<std::string>> line_allows;  // line -> rule ids
  mutable std::set<std::pair<int, std::string>> used_allows;
};

/// Lexes `text` into a SourceFile (pure; no filesystem access).
SourceFile parse_source(const std::string& rel_path, const std::string& text);

/// Reads and lexes one file; returns false on I/O failure.
bool load_source(const std::string& abs_path, const std::string& rel_path, SourceFile* out);

}  // namespace hicc::analyze
