// Whole-program semantic analyzer, layer 3: the include graph.
//
// Nodes are root-relative file paths; edges are quoted #include
// directives, resolved first against the src/-rooted include path the
// build uses (target_include_directories(... src)), then relative to
// the including file. The graph backs three rules:
//
//   ana-include-cycle      include cycles (DFS back edges)
//   ana-layer-transitive   an edge whose target module is outside the
//                          including module's transitive DAG closure
//   ana-include-unused     a direct include none of whose provided
//                          names the includer mentions (advisory)
//
// The module layering DAG lives here too. It must stay identical to
// scripts/hicc_lint.py's LAYER_DAG and to the DESIGN.md §9 table;
// tests/dag_lockstep_test.py pins all three together.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace hicc::analyze {

struct IncludeEdge {
  std::string from;      // includer, root-relative
  std::string target;    // as written between the quotes
  std::string resolved;  // root-relative path, "" if outside the scanned set
  int line = 0;
  int col = 0;
};

struct IncludeCycle {
  std::vector<std::string> path;  // f0, f1, ..., fk with fk including f0
  std::string at_file;            // file carrying the closing directive
  int line = 0;
  int col = 0;
};

class IncludeGraph {
 public:
  /// Builds edges for every scanned file. `files` is keyed by
  /// root-relative path; resolution only succeeds into that set.
  void build(const std::map<std::string, SourceFile>& files);

  [[nodiscard]] const std::vector<IncludeEdge>& edges() const { return edges_; }

  /// All include cycles, one per DFS back edge, in deterministic order.
  [[nodiscard]] std::vector<IncludeCycle> find_cycles() const;

 private:
  std::vector<IncludeEdge> edges_;
  std::map<std::string, std::vector<std::string>> adj_;  // resolved edges only
  std::map<std::string, std::map<std::string, std::pair<int, int>>> edge_pos_;
};

/// The module layering DAG: module -> modules it may include directly
/// (besides itself and common). Kept in lockstep with hicc_lint.py.
const std::map<std::string, std::set<std::string>>& layer_dag();

/// Transitive closure of layer_dag(): module -> every module it may
/// depend on through any chain of allowed direct includes.
const std::map<std::string, std::set<std::string>>& layer_dag_closure();

/// "sim" for src/sim/..., "" otherwise.
std::string path_module(const std::string& rel_path);

}  // namespace hicc::analyze
