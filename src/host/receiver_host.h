// The receiver machine under study: NIC + PCIe + IOMMU + rx threads,
// all attached to one NUMA node's memory system (§2's Figure 2).
//
// Responsibilities:
//  * assemble and wire the datapath (fabric -> NIC -> PCIe/IOMMU ->
//    memory -> rx thread -> ACK/read-request back through the NIC Tx);
//  * drive the closed-loop RPC workload: each (sender, thread) flow
//    keeps `read_pipeline` 16KB reads outstanding, reissuing as reads
//    complete (§3's "each receiver thread issues 16KB remote reads
//    using one connection per sender");
//  * account the rx threads' copy traffic on the memory bus;
//  * measure host delay (NIC arrival -> stack processing done), the
//    quantity Swift's 100us host target is compared against;
//  * optionally emit sub-RTT host congestion signals (§4 ablation).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/sketch.h"
#include "common/stats.h"
#include "common/units.h"
#include "iommu/iommu.h"
#include "mem/ddio.h"
#include "mem/memory_system.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "pcie/pcie_bus.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "host/rx_thread.h"

namespace hicc::host {

/// Receiver-host configuration.
struct ReceiverParams {
  int threads = 12;
  /// Registered Rx data region per thread (Fig 5 sweeps this).
  Bytes data_region = Bytes::mib(12);
  /// 2M mappings when true (Fig 4 disables this).
  bool hugepages = true;
  iommu::IommuParams iommu;
  pcie::PcieParams pcie;
  nic::NicParams nic;
  RxThreadParams thread;
  /// Direct-cache-access model shared by the root complex and the
  /// copy-traffic accounting (footnote 2).
  mem::DdioParams ddio;
  /// Fraction of processed payload bytes that miss cache during the
  /// copy to application buffers when DDIO keeps the rest on-chip:
  /// ~3.3 GB/s of reads at full rate, per §3.2's measurement. With
  /// DDIO disabled every copied byte is read from DRAM.
  double copy_read_fraction = 0.29;
  /// RPC read size (16KB -> 4 MTU packets).
  Bytes read_size = Bytes(16 * 1024);
  /// Reads kept outstanding per flow.
  int read_pipeline = 1;
  /// Latency-sensitive victim flows sharing the NIC with the bulk
  /// workload (isolation experiments: "all applications use a shared
  /// NIC buffer where drops end up occurring", §3). Victims issue
  /// small closed-loop reads and their read-completion latency is
  /// tracked separately.
  int victim_flows = 0;
  Bytes victim_read_size = Bytes(4096);
  /// Emit out-of-band NIC-buffer congestion signals to senders.
  bool send_host_signals = false;
  TimePs signal_cooldown = TimePs::from_us(25);
  /// Interval for refreshing the copy client's fluid demand.
  TimePs accounting_period = TimePs::from_us(20);
  /// Open-loop mode (the workload engine, docs/WORKLOADS.md): the host
  /// carries `open_loop_slots` recyclable flow slots instead of the
  /// fixed closed-loop flow set. start() issues nothing; reads are
  /// injected via issue_open_read() and completions fire the
  /// read-complete hook instead of reissuing.
  bool open_loop = false;
  int open_loop_slots = 0;
};

/// Windowed receiver metrics (reset by begin_window()).
struct ReceiverWindow {
  std::int64_t processed_packets = 0;
  std::int64_t processed_bytes = 0;
  LogHistogram host_delay_us;   // per-packet host delay in microseconds
  LogHistogram victim_read_us;  // victim-flow read completion latency
};

/// The receiver host.
class ReceiverHost {
 public:
  /// `transmit` forwards ACKs/read-requests/signals to the fabric's
  /// reverse path. `tracer`, when non-null, is handed down to the
  /// internally-constructed NIC / PCIe bus / IOMMU (registering their
  /// probes) and registers the `host.rx_queue_pkts` gauge.
  ReceiverHost(sim::Simulator& sim, mem::MemorySystem& mem, ReceiverParams params,
               int num_senders, net::WireFormat wire, Rng rng,
               trace::Tracer* tracer = nullptr);

  ReceiverHost(const ReceiverHost&) = delete;
  ReceiverHost& operator=(const ReceiverHost&) = delete;

  /// Wires the reverse path; must be called before start().
  void set_transmit(sim::InlineCallback<bool(net::Packet)> transmit);

  /// Issues the initial pipeline of reads on every flow (staggered a
  /// few microseconds to avoid synchronization artifacts).
  void start();

  /// Entry point for packets delivered by the fabric.
  void on_arrival(net::Packet p) { nic_->on_arrival(std::move(p)); }

  /// Resets the measurement window (call at warmup end).
  void begin_window();

  /// Fault hook (host.deschedule): parks the first `n` rx threads (the
  /// OS migrated them off-core); completions keep queueing and drain
  /// when the threads come back.
  void set_threads_descheduled(int n, bool descheduled);

  /// Fault hook (transport.churn): a paused flow stops issuing reads;
  /// its in-flight read completes normally but the follow-up reissue is
  /// deferred until unpause (the application went quiet, then returned).
  void set_flow_paused(std::int32_t flow, bool paused);

  /// Open-loop mode: injects one read of `size` bytes on pool slot
  /// `slot` (the flow id); the slot's sender is sender_of_flow(slot).
  /// The workload engine owns slot lifecycle (workload/flow_pool.h).
  void issue_open_read(std::int32_t slot, Bytes size);

  /// Open-loop mode: invoked when a slot's read fully completes, with
  /// the slot id and the time the read was issued. No reissue happens;
  /// the callback retires or recycles the slot.
  void set_read_complete(sim::InlineCallback<void(std::int32_t, TimePs)> cb) {
    read_complete_ = std::move(cb);
  }

  /// Optional per-packet host-delay feed (microseconds) into a
  /// workload quantile sketch; null disables (common/sketch.h).
  void set_host_delay_sketch(QuantileSketch* sketch) { host_delay_sketch_ = sketch; }

  [[nodiscard]] const ReceiverWindow& window() const { return window_; }
  [[nodiscard]] nic::Nic& nic() { return *nic_; }
  [[nodiscard]] iommu::Iommu& iommu() { return *iommu_; }
  [[nodiscard]] pcie::PcieBus& pcie() { return *pcie_; }
  [[nodiscard]] mem::DdioModel& ddio() { return *ddio_; }
  [[nodiscard]] const ReceiverParams& params() const { return params_; }

  /// Bulk flows plus any victim flows (closed loop), or the pool slot
  /// count (open loop).
  [[nodiscard]] int num_flows() const {
    return params_.open_loop ? params_.open_loop_slots
                             : num_senders_ * params_.threads + params_.victim_flows;
  }
  [[nodiscard]] bool is_victim(std::int32_t flow) const {
    return !params_.open_loop && flow >= num_senders_ * params_.threads;
  }

  /// Bulk flow ids are laid out thread-major (flow = thread *
  /// num_senders + sender); victim flows are appended and spread
  /// round-robin over threads and senders. Open-loop slots extend the
  /// same layout with a depth dimension (slot % senders is the sender,
  /// wrapping over threads), so the pool's per-sender slot classes and
  /// the NIC's thread steering agree by construction.
  [[nodiscard]] int thread_of_flow(std::int32_t flow) const {
    if (params_.open_loop) return (flow / num_senders_) % params_.threads;
    if (is_victim(flow)) {
      return (flow - num_senders_ * params_.threads) % params_.threads;
    }
    return flow / num_senders_;
  }
  [[nodiscard]] int sender_of_flow(std::int32_t flow) const {
    if (is_victim(flow)) {
      return (flow - num_senders_ * params_.threads) % num_senders_;
    }
    return flow % num_senders_;
  }

 private:
  void on_delivered(int thread, net::Packet p, TimePs nic_arrival);
  void on_processed(const net::Packet& p, TimePs nic_arrival);
  void issue_read(std::int32_t flow);
  void send_ack(const net::Packet& data, TimePs host_delay);
  void on_buffer_pressure();
  void refresh_copy_demand();

  sim::Simulator& sim_;
  mem::MemorySystem& mem_;
  ReceiverParams params_;
  int num_senders_;
  net::WireFormat wire_;
  Rng rng_;

  std::unique_ptr<iommu::Iommu> iommu_;
  std::unique_ptr<mem::DdioModel> ddio_;
  std::unique_ptr<pcie::PcieBus> pcie_;
  std::unique_ptr<nic::Nic> nic_;
  std::vector<std::unique_ptr<RxThread>> threads_;
  sim::InlineCallback<bool(net::Packet)> transmit_;

  /// Packets remaining in the current read of each flow, the per-flow
  /// read size in packets, and (victims) when the read was issued.
  std::vector<int> read_remaining_;
  std::vector<int> packets_per_read_;
  std::vector<TimePs> read_issued_at_;
  /// Churn state: paused flows defer their reissue until unpaused.
  std::vector<char> flow_paused_;
  std::vector<char> read_deferred_;
  /// Per-flow payload of one read request.
  [[nodiscard]] Bytes read_bytes_of(std::int32_t flow) const {
    return is_victim(flow) ? params_.victim_read_size : params_.read_size;
  }

  mem::ClientId copy_client_{};
  std::int64_t copy_accounted_bytes_ = 0;
  std::optional<sim::PeriodicTask> accounting_;

  TimePs last_signal_{};
  ReceiverWindow window_;

  /// Open-loop hooks (unset in closed-loop runs).
  sim::InlineCallback<void(std::int32_t, TimePs)> read_complete_;
  QuantileSketch* host_delay_sketch_ = nullptr;
};

}  // namespace hicc::host
