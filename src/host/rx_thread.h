// A receiver (SNAP-style) network-stack thread pinned to one core.
//
// Each thread polls its completion queue and processes packets at a
// fixed per-packet CPU cost (~2.6us for a 4KB MTU -> ~12.6 Gbps per
// core, so ~8 cores saturate the 92 Gbps goodput ceiling, matching
// Figure 3's CPU-bottlenecked region). Processing includes the copy to
// the application buffer; the copy's memory-bus traffic is accounted
// by the ReceiverHost as a fluid client.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hicc::host {

/// Per-thread cost model.
struct RxThreadParams {
  /// CPU time to process one MTU packet (protocol + copy).
  TimePs per_packet_cost = TimePs::from_ns(2600);
  /// Uniform jitter applied to each packet's cost (+-fraction).
  double cost_jitter = 0.10;
};

/// One polling receiver thread.
class RxThread {
 public:
  /// `processed(pkt, nic_arrival)` fires when the stack finishes a
  /// packet -- the end of the paper's "host delay" interval.
  using ProcessedFn = sim::InlineCallback<void(const net::Packet&, TimePs)>;

  RxThread(sim::Simulator& sim, int id, RxThreadParams params, Rng rng, ProcessedFn processed)
      : sim_(sim), id_(id), params_(params), rng_(rng), processed_(std::move(processed)) {}

  RxThread(const RxThread&) = delete;
  RxThread& operator=(const RxThread&) = delete;

  /// Completion delivered by the NIC.
  void enqueue(net::Packet p, TimePs nic_arrival) {
    queue_.emplace_back(std::move(p), nic_arrival);
    maybe_start();
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::int64_t processed_count() const { return processed_count_; }
  [[nodiscard]] int id() const { return id_; }

  /// Fault hook (host.deschedule): while descheduled the thread stops
  /// picking up work (completions keep queueing). A packet already
  /// being processed finishes. Resuming drains the backlog.
  void set_descheduled(bool descheduled) {
    descheduled_ = descheduled;
    if (!descheduled_) maybe_start();
  }
  [[nodiscard]] bool descheduled() const { return descheduled_; }

 private:
  void maybe_start() {
    if (busy_ || descheduled_ || queue_.empty()) return;
    busy_ = true;
    const double jitter = rng_.uniform(1.0 - params_.cost_jitter, 1.0 + params_.cost_jitter);
    const auto cost = TimePs(static_cast<std::int64_t>(
        static_cast<double>(params_.per_packet_cost.ps()) * jitter));
    sim_.after(cost, [this] {
      auto [pkt, arrival] = std::move(queue_.front());
      queue_.pop_front();
      busy_ = false;
      ++processed_count_;
      processed_(pkt, arrival);
      maybe_start();
    });
  }

  sim::Simulator& sim_;
  int id_;
  RxThreadParams params_;
  Rng rng_;
  ProcessedFn processed_;
  std::deque<std::pair<net::Packet, TimePs>> queue_;
  bool busy_ = false;
  bool descheduled_ = false;
  std::int64_t processed_count_ = 0;
};

}  // namespace hicc::host
