#include "host/receiver_host.h"

#include <cassert>
#include <utility>

namespace hicc::host {

ReceiverHost::ReceiverHost(sim::Simulator& sim, mem::MemorySystem& mem,
                           ReceiverParams params, int num_senders, net::WireFormat wire,
                           Rng rng, trace::Tracer* tracer)
    : sim_(sim),
      mem_(mem),
      params_(params),
      num_senders_(num_senders),
      wire_(wire),
      rng_(rng) {
  iommu_ = std::make_unique<iommu::Iommu>(sim_, mem_, params_.iommu, rng_.fork(), tracer);
  ddio_ = std::make_unique<mem::DdioModel>(params_.ddio, rng_.fork());
  ddio_->set_io_working_set(params_.data_region * params_.threads);
  pcie_ = std::make_unique<pcie::PcieBus>(sim_, mem_, *iommu_, params_.pcie, ddio_.get(), tracer);
  nic_ = std::make_unique<nic::Nic>(
      sim_, *pcie_, *iommu_, params_.nic, params_.threads, params_.data_region,
      params_.hugepages ? iommu::PageSize::k2M : iommu::PageSize::k4K,
      [this](std::int32_t flow) { return thread_of_flow(flow); }, rng_.fork(), tracer);

  threads_.reserve(static_cast<std::size_t>(params_.threads));
  for (int t = 0; t < params_.threads; ++t) {
    threads_.push_back(std::make_unique<RxThread>(
        sim_, t, params_.thread, rng_.fork(),
        [this](const net::Packet& p, TimePs arr) { on_processed(p, arr); }));
  }
  if (tracer != nullptr) {
    // Software-side backlog: packets DMA-completed but not yet
    // processed by the rx threads (the CPU-bottleneck observable).
    tracer->gauge("host.rx_queue_pkts", "packets", [this] {
      double depth = 0.0;
      for (const auto& t : threads_) depth += static_cast<double>(t->queue_depth());
      return depth;
    });
  }

  read_remaining_.resize(static_cast<std::size_t>(num_flows()));
  packets_per_read_.resize(static_cast<std::size_t>(num_flows()));
  read_issued_at_.assign(static_cast<std::size_t>(num_flows()), TimePs(0));
  flow_paused_.assign(static_cast<std::size_t>(num_flows()), 0);
  read_deferred_.assign(static_cast<std::size_t>(num_flows()), 0);
  for (std::int32_t f = 0; f < num_flows(); ++f) {
    if (params_.open_loop) {
      // Slots start idle: remaining == 0 means "no read in flight" and
      // makes stale duplicates of a completed read inert.
      packets_per_read_[static_cast<std::size_t>(f)] = 1;
      read_remaining_[static_cast<std::size_t>(f)] = 0;
      continue;
    }
    packets_per_read_[static_cast<std::size_t>(f)] = static_cast<int>(
        std::max<std::int64_t>(1, read_bytes_of(f).count() / wire_.mtu_payload.count()));
    read_remaining_[static_cast<std::size_t>(f)] =
        packets_per_read_[static_cast<std::size_t>(f)];
  }

  // The rx threads' copies are CPU-side streaming traffic on the same
  // memory bus; demand follows the processing rate.
  copy_client_ = mem_.add_open(mem::MemClass::kCpuCopy, /*read_fraction=*/1.0);
  accounting_.emplace(sim_, params_.accounting_period, [this] { refresh_copy_demand(); });

  nic::Nic::Callbacks cbs;
  cbs.deliver = [this](int t, net::Packet p, TimePs arr) { on_delivered(t, std::move(p), arr); };
  cbs.transmit = [this](net::Packet p) { return transmit_ ? transmit_(std::move(p)) : false; };
  if (params_.send_host_signals) {
    cbs.buffer_pressure = [this] { on_buffer_pressure(); };
  }
  nic_->set_callbacks(std::move(cbs));
}

void ReceiverHost::set_transmit(sim::InlineCallback<bool(net::Packet)> transmit) {
  transmit_ = std::move(transmit);
}

void ReceiverHost::start() {
  assert(transmit_ && "set_transmit() must be wired before start()");
  if (params_.open_loop) return;  // the workload engine injects reads
  for (std::int32_t flow = 0; flow < num_flows(); ++flow) {
    // Victims are strictly closed-loop (one read at a time) so their
    // measured read latency is well defined.
    const int pipeline = is_victim(flow) ? 1 : params_.read_pipeline;
    for (int r = 0; r < pipeline; ++r) {
      // Stagger initial requests across ~50us so 480 flows do not fire
      // in lockstep.
      const TimePs jitter = TimePs::from_us(rng_.uniform(0.0, 50.0));
      sim_.after(jitter, [this, flow] { issue_read(flow); });
    }
  }
}

void ReceiverHost::set_threads_descheduled(int n, bool descheduled) {
  for (int t = 0; t < n && t < params_.threads; ++t) {
    threads_[static_cast<std::size_t>(t)]->set_descheduled(descheduled);
  }
}

void ReceiverHost::set_flow_paused(std::int32_t flow, bool paused) {
  auto& flag = flow_paused_[static_cast<std::size_t>(flow)];
  if (flag == static_cast<char>(paused)) return;
  flag = static_cast<char>(paused);
  auto& deferred = read_deferred_[static_cast<std::size_t>(flow)];
  if (!paused && deferred != 0) {
    deferred = 0;
    issue_read(flow);
  }
}

void ReceiverHost::issue_read(std::int32_t flow) {
  if (flow_paused_[static_cast<std::size_t>(flow)] != 0) {
    read_deferred_[static_cast<std::size_t>(flow)] = 1;
    return;
  }
  net::Packet req;
  req.kind = net::PacketKind::kReadRequest;
  req.flow = flow;
  req.sender = sender_of_flow(flow);
  req.payload = read_bytes_of(flow);
  req.wire = wire_.read_request_wire;
  read_issued_at_[static_cast<std::size_t>(flow)] = sim_.now();
  nic_->send_packet(std::move(req), thread_of_flow(flow));
}

void ReceiverHost::issue_open_read(std::int32_t slot, Bytes size) {
  auto& remaining = read_remaining_[static_cast<std::size_t>(slot)];
  assert(remaining == 0 && "slot already carries an in-flight read");
  // Same floor-with-minimum rule as SenderPort::on_packet's
  // kReadRequest handler: both ends MUST derive the identical packet
  // count from `size`, or the read never completes and leaks its slot.
  const int packets = static_cast<int>(
      std::max<std::int64_t>(1, size.count() / wire_.mtu_payload.count()));
  packets_per_read_[static_cast<std::size_t>(slot)] = packets;
  remaining = packets;
  net::Packet req;
  req.kind = net::PacketKind::kReadRequest;
  req.flow = slot;
  req.sender = sender_of_flow(slot);
  req.payload = size;
  req.wire = wire_.read_request_wire;
  read_issued_at_[static_cast<std::size_t>(slot)] = sim_.now();
  nic_->send_packet(std::move(req), thread_of_flow(slot));
}

void ReceiverHost::on_delivered(int thread, net::Packet p, TimePs nic_arrival) {
  threads_[static_cast<std::size_t>(thread)]->enqueue(std::move(p), nic_arrival);
}

void ReceiverHost::on_processed(const net::Packet& p, TimePs nic_arrival) {
  const TimePs host_delay = sim_.now() - nic_arrival;
  ++window_.processed_packets;
  window_.processed_bytes += p.payload.count();
  window_.host_delay_us.add(host_delay.us());
  if (host_delay_sketch_ != nullptr) host_delay_sketch_->add(host_delay.us());

  const int thread = thread_of_flow(p.flow);
  // The stack replenishes the Rx descriptor it just consumed.
  nic_->post_descriptors(thread, 1);
  send_ack(p, host_delay);

  auto& remaining = read_remaining_[static_cast<std::size_t>(p.flow)];
  if (params_.open_loop) {
    // remaining == 0 means the slot is idle: this packet is a late
    // duplicate of an already-completed read (retransmit raced the
    // SACK) -- acked above, but it must not touch the next occupancy.
    if (remaining > 0 && --remaining == 0) {
      if (read_complete_) {
        read_complete_(p.flow, read_issued_at_[static_cast<std::size_t>(p.flow)]);
      }
    }
    return;
  }
  if (--remaining <= 0) {
    remaining = packets_per_read_[static_cast<std::size_t>(p.flow)];
    if (is_victim(p.flow)) {
      const TimePs issued = read_issued_at_[static_cast<std::size_t>(p.flow)];
      window_.victim_read_us.add((sim_.now() - issued).us());
    }
    issue_read(p.flow);
  }
}

void ReceiverHost::send_ack(const net::Packet& data, TimePs host_delay) {
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.flow = data.flow;
  ack.sender = data.sender;
  ack.seq = data.seq;
  ack.wire = wire_.ack_wire;
  ack.sent_at = data.sent_at;           // echo for RTT measurement
  ack.echoed_host_delay = host_delay;   // Swift's host-delay signal
  nic_->send_packet(std::move(ack), thread_of_flow(data.flow));
}

void ReceiverHost::on_buffer_pressure() {
  if (sim_.now() - last_signal_ < params_.signal_cooldown) return;
  last_signal_ = sim_.now();
  // Hardware-originated sub-RTT signal: bypasses DMA + stack entirely
  // and goes straight back to every sender (§4's "new congestion
  // signals from outside the network stack").
  for (int s = 0; s < num_senders_; ++s) {
    net::Packet sig;
    sig.kind = net::PacketKind::kHostSignal;
    sig.sender = s;
    sig.wire = wire_.ack_wire;
    if (transmit_) transmit_(std::move(sig));
  }
}

void ReceiverHost::refresh_copy_demand() {
  const std::int64_t delta = window_.processed_bytes - copy_accounted_bytes_;
  copy_accounted_bytes_ = window_.processed_bytes;
  const double bytes_per_sec =
      static_cast<double>(delta) / params_.accounting_period.sec();
  // With DDIO the copied payload is mostly still LLC-resident; without
  // it, every copied byte is fetched from DRAM.
  const double miss_fraction = ddio_->enabled() ? params_.copy_read_fraction : 1.0;
  mem_.set_demand(copy_client_, BitRate(bytes_per_sec * 8.0 * miss_fraction));
}

void ReceiverHost::begin_window() {
  window_ = ReceiverWindow{};
  copy_accounted_bytes_ = 0;
}

}  // namespace hicc::host
