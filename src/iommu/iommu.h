// The IO memory management unit (§2 step 4, §3.1).
//
// Every DMA initiated by the NIC carries an IO virtual address; the
// PCIe root complex asks the IOMMU to translate it. Translations are
// served by the IOTLB (a small cache -- 128 entries on the paper's
// testbed) in a few nanoseconds; a miss requires a page-table walk of
// one or more dependent memory reads (fewer when the page-walk caches
// hold the upper levels), each subject to the current memory-bus load.
// Walks are performed by a small pool of hardware walkers; when all
// walkers are busy, walk requests queue.
//
// This is the mechanism chain behind Figures 3-5: more registered
// pages -> IOTLB overflow -> misses per packet -> hundreds of ns of
// extra per-DMA latency -> PCIe credit throughput ceiling.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/rng.h"
#include "common/units.h"
#include "iommu/lru_cache.h"
#include "iommu/page_table.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hicc::iommu {

/// Configuration of the IOMMU hardware.
struct IommuParams {
  /// Master switch: when false, DMA addresses are physical and the
  /// translation path is skipped entirely (the paper's "IOMMU OFF").
  bool enabled = true;
  /// IOTLB capacity in entries (paper testbed: 128).
  int iotlb_entries = 128;
  /// IOTLB sets; 1 = fully associative (default).
  int iotlb_sets = 1;
  /// IOTLB hit latency ("a few nanoseconds", §3.1).
  TimePs hit_latency = TimePs::from_ns(2);
  /// Page-walk cache sizes per level (entries). Zero disables a level.
  int pwc_l4_entries = 8;
  int pwc_l3_entries = 8;
  int pwc_l2_entries = 32;
  /// Number of concurrent hardware page walkers.
  int walkers = 2;
  /// Service time of one IOTLB invalidation command; invalidations
  /// share the walker/command pipeline with translations, which is why
  /// strict-mode unmapping is so expensive (§3.1).
  TimePs invalidation_latency = TimePs::from_ns(250);
  /// Probability that a page-table-entry read hits in the CPU cache
  /// hierarchy (PT entries of the hot working set stay LLC-resident)
  /// instead of going to DRAM, and its latency when it does.
  double pt_cache_hit_fraction = 0.4;
  TimePs pt_cache_latency = TimePs::from_ns(30);
};

/// Counters exposed to experiments (the paper's infrastructure counters).
struct IommuStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t walks_completed = 0;
  std::int64_t walk_memory_reads = 0;
  std::int64_t invalidations = 0;
  std::int64_t faults = 0;  // lookups outside any mapped region
};

/// The IOMMU: region registration (loose mode), IOTLB, PWC, walkers.
class Iommu {
 public:
  /// `tracer`, when non-null, registers the `iommu.*` probes (all
  /// polled from IommuStats / walker state -- the translation hot path
  /// is untouched).
  Iommu(sim::Simulator& sim, mem::MemorySystem& mem, IommuParams params,
        Rng rng = Rng(0x10771b), trace::Tracer* tracer = nullptr);

  Iommu(const Iommu&) = delete;
  Iommu& operator=(const Iommu&) = delete;

  [[nodiscard]] bool enabled() const { return params_.enabled; }

  /// Registers a DMA region (called by the network stack at startup in
  /// loose mode, or per-buffer in strict-mode experiments).
  RegionId map_region(Bytes size, PageSize page_size) {
    return table_.map_region(size, page_size);
  }

  /// Unmaps a region and invalidates its IOTLB entries (strict mode).
  void unmap_region(RegionId id);

  /// Invalidates the single IOTLB entry covering `iova` (per-buffer
  /// unmap in strict mode: the mapping itself stays registered, but
  /// the cached translation is shot down). Returns true if an entry
  /// was present.
  bool invalidate_page(Iova iova);

  /// Queues an IOTLB invalidation command for `iova`'s page. The entry
  /// is removed immediately, but the command occupies a walker slot
  /// for invalidation_latency, delaying queued translations.
  void invalidate_page_async(Iova iova);

  /// Fault hook (iommu.storm): async-invalidates one uniformly chosen
  /// mapped page, emulating an unrelated driver churning its mappings.
  /// No-op (returns false) when nothing is mapped.
  bool invalidate_random_page(Rng& rng);

  [[nodiscard]] const Region& region(RegionId id) const { return table_.region(id); }
  [[nodiscard]] const IoPageTable& page_table() const { return table_; }

  /// Fast path: completes the translation without a page walk if
  /// possible. Returns the translation latency on an IOTLB hit (or
  /// zero when the IOMMU is disabled); std::nullopt means a walk is
  /// required and the caller must use translate_slow().
  [[nodiscard]] std::optional<TimePs> try_translate(Iova iova);

  /// Slow path: queues a page walk for `iova`; `done` runs when the
  /// translation is installed (walk latency has already elapsed on the
  /// simulator clock). Call only after try_translate() returned nullopt.
  void translate_slow(Iova iova, sim::InlineCallback<void()> done);

  [[nodiscard]] const IommuStats& stats() const { return stats_; }

  /// Number of distinct leaf pages currently mapped: the IOTLB
  /// working-set size that Figures 3-5 sweep.
  [[nodiscard]] std::int64_t mapped_pages() const { return table_.total_mapped_pages(); }

 private:
  /// One queued walk (or invalidation command). The levels still to be
  /// read are a fixed in-object array (root-first; at most L4..L1), so
  /// the whole Walk rides inside an event closure's inline buffer --
  /// no per-walk heap allocation.
  struct Walk {
    Iova iova = 0;
    PageSize page_size = PageSize::k4K;
    bool is_invalidation = false;
    std::uint8_t num_levels = 0;
    std::uint8_t next_level = 0;  // index into `levels` of the next read
    std::int8_t levels[4] = {};
    sim::InlineCallback<void()> done;
  };

  /// Starts queued walks while walkers are available.
  void pump_walkers();
  /// Executes the next level read of `walk`; chains until done.
  void walk_step(Walk walk);

  sim::Simulator& sim_;
  mem::MemorySystem& mem_;
  IommuParams params_;
  Rng rng_;
  IoPageTable table_;
  LruCache<Iova> iotlb_;
  LruCache<Iova> pwc_l4_;
  LruCache<Iova> pwc_l3_;
  LruCache<Iova> pwc_l2_;
  std::deque<Walk> walk_queue_;
  int walkers_busy_ = 0;
  IommuStats stats_;
};

}  // namespace hicc::iommu
