// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#include "iommu/iommu.h"

#include <utility>

namespace hicc::iommu {

namespace {
/// PWC tag: the IOVA prefix covered by one entry at `level`. The
/// per-level caches are separate structures, so the prefix alone tags.
Iova pwc_tag(Iova iova, int level) { return level_prefix(iova, level); }
}  // namespace

Iommu::Iommu(sim::Simulator& sim, mem::MemorySystem& mem, IommuParams params, Rng rng,
             trace::Tracer* tracer)
    : sim_(sim),
      mem_(mem),
      params_(params),
      rng_(rng),
      iotlb_(params.iotlb_sets,
             params.iotlb_entries / (params.iotlb_sets > 0 ? params.iotlb_sets : 1)),
      pwc_l4_(1, params.pwc_l4_entries > 0 ? params.pwc_l4_entries : 1),
      pwc_l3_(1, params.pwc_l3_entries > 0 ? params.pwc_l3_entries : 1),
      pwc_l2_(1, params.pwc_l2_entries > 0 ? params.pwc_l2_entries : 1) {
  if (tracer != nullptr) {
    // All polled from state the IOMMU already keeps: tracing adds no
    // work to the translation fast path.
    tracer->counter("iommu.iotlb_hits", "lookups",
                    [this] { return static_cast<double>(stats_.hits); });
    tracer->counter("iommu.iotlb_misses", "lookups",
                    [this] { return static_cast<double>(stats_.misses); });
    tracer->counter("iommu.invalidations", "commands",
                    [this] { return static_cast<double>(stats_.invalidations); });
    tracer->gauge("iommu.pending_walks", "walks", [this] {
      return static_cast<double>(walk_queue_.size()) + static_cast<double>(walkers_busy_);
    });
  }
}

void Iommu::unmap_region(RegionId id) {
  const Region r = table_.region(id);
  for (std::int64_t p = 0; p < r.num_pages(); ++p) {
    if (iotlb_.invalidate(r.page_iova(p))) ++stats_.invalidations;
  }
  table_.unmap_region(id);
}

bool Iommu::invalidate_page(Iova iova) {
  const auto region = table_.find(iova);
  if (!region) return false;
  if (iotlb_.invalidate(IoPageTable::page_base(*region, iova))) {
    ++stats_.invalidations;
    return true;
  }
  return false;
}

std::optional<TimePs> Iommu::try_translate(Iova iova) {
  if (!params_.enabled) return TimePs(0);
  ++stats_.lookups;
  const auto region = table_.find(iova);
  if (!region) {
    // DMA fault: in hardware this aborts the transaction. The callers
    // in this codebase only present mapped addresses; count and treat
    // as an instantaneous completion to stay robust.
    ++stats_.faults;
    return TimePs(0);
  }
  const Iova key = IoPageTable::page_base(*region, iova);
  if (iotlb_.lookup(key)) {
    ++stats_.hits;
    return params_.hit_latency;
  }
  ++stats_.misses;
  return std::nullopt;
}

void Iommu::translate_slow(Iova iova, sim::InlineCallback<void()> done) {
  const auto region = table_.find(iova);
  Walk walk;
  walk.iova = iova;
  walk.page_size = region ? region->page_size : PageSize::k4K;
  walk.done = std::move(done);
  walk_queue_.push_back(std::move(walk));
  pump_walkers();
}

void Iommu::invalidate_page_async(Iova iova) {
  (void)invalidate_page(iova);  // entry disappears immediately
  Walk inval;
  inval.iova = iova;
  inval.is_invalidation = true;
  walk_queue_.push_back(std::move(inval));
  pump_walkers();
}

bool Iommu::invalidate_random_page(Rng& rng) {
  const std::size_t regions = table_.region_count();
  if (regions == 0) return false;
  const Region& r = table_.region(
      RegionId{static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(regions)))});
  if (r.num_pages() <= 0) return false;
  invalidate_page_async(r.page_iova(
      static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(r.num_pages())))));
  return true;
}

void Iommu::pump_walkers() {
  while (walkers_busy_ < params_.walkers && !walk_queue_.empty()) {
    Walk walk = std::move(walk_queue_.front());
    walk_queue_.pop_front();
    ++walkers_busy_;

    if (walk.is_invalidation) {
      // Invalidation command: holds the pipeline slot, no memory reads.
      sim_.after(params_.invalidation_latency, [this] {
        --walkers_busy_;
        pump_walkers();
      });
      continue;
    }

    // Decide which levels must be read from memory. The leaf level is
    // always read (its absence from the IOTLB is why we are walking);
    // upper levels are skipped when the page-walk caches cover them.
    // Levels are read root-first: L4 -> L3 -> L2 [-> L1].
    const int leaf = (walk.page_size == PageSize::k4K) ? 1 : 2;
    for (int level = 4; level >= leaf; --level) {
      bool cached = false;
      if (level == 4 && params_.pwc_l4_entries > 0) cached = pwc_l4_.lookup(pwc_tag(walk.iova, 4));
      if (level == 3 && params_.pwc_l3_entries > 0) cached = pwc_l3_.lookup(pwc_tag(walk.iova, 3));
      if (level == 2 && leaf != 2 && params_.pwc_l2_entries > 0) {
        cached = pwc_l2_.lookup(pwc_tag(walk.iova, 2));
      }
      if (level == leaf || !cached) {
        walk.levels[walk.num_levels++] = static_cast<std::int8_t>(level);
      }
    }
    walk_step(std::move(walk));
  }
}

void Iommu::walk_step(Walk walk) {
  if (walk.next_level >= walk.num_levels) {
    // Walk complete: install the leaf in the IOTLB and the traversed
    // upper levels in the page-walk caches.
    const auto region = table_.find(walk.iova);
    if (region) iotlb_.insert(IoPageTable::page_base(*region, walk.iova));
    const int leaf = (walk.page_size == PageSize::k4K) ? 1 : 2;
    for (std::uint8_t i = 0; i < walk.num_levels; ++i) {
      const int level = walk.levels[i];
      if (level == leaf) continue;
      if (level == 4) pwc_l4_.insert(pwc_tag(walk.iova, 4));
      if (level == 3) pwc_l3_.insert(pwc_tag(walk.iova, 3));
      if (level == 2) pwc_l2_.insert(pwc_tag(walk.iova, 2));
    }
    ++stats_.walks_completed;
    --walkers_busy_;
    auto done = std::move(walk.done);
    pump_walkers();
    if (done) done();
    return;
  }
  // One dependent page-table-entry read. Hot page-table entries stay
  // resident in the CPU cache hierarchy; only the miss fraction pays a
  // DRAM access (and shows up as memory-bus traffic).
  ++stats_.walk_memory_reads;
  const TimePs latency =
      rng_.chance(params_.pt_cache_hit_fraction)
          ? params_.pt_cache_latency
          : mem_.request(mem::MemClass::kIommuWalk, mem::kCacheLine, true);
  ++walk.next_level;
  // `[this, walk]` is 72 bytes: the whole chained walk state rides in
  // the event node's inline buffer.
  sim_.after(latency, [this, walk = std::move(walk)]() mutable {
    walk_step(std::move(walk));
  });
}

}  // namespace hicc::iommu
