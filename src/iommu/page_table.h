// IO virtual address space layout and 4-level page-table geometry.
//
// The IOMMU's second-level page table is a 4-level radix tree with
// 9 bits per level (x86/VT-d geometry): a 4K translation reads entries
// at levels L4->L3->L2->L1; a 2M ("hugepage") translation terminates at
// L2. Regions registered by the network stack ("loose mode": mapped
// once at startup, never invalidated at runtime -- §3.1's setup) are
// carved out of the IOVA space by a bump allocator.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/units.h"

namespace hicc::iommu {

/// An IO virtual address as seen by the NIC in Rx descriptors.
using Iova = std::uint64_t;

/// Leaf page size of a mapping.
enum class PageSize : std::uint8_t {
  k4K,  // standard 4KiB pages
  k2M,  // hugepages
};

inline constexpr Bytes page_bytes(PageSize ps) {
  return ps == PageSize::k4K ? Bytes(4096) : Bytes(2 * 1024 * 1024);
}

/// Number of page-table levels that must be read to translate a leaf
/// of the given size, assuming nothing is cached (L4,L3,L2[,L1]).
inline constexpr int walk_levels(PageSize ps) { return ps == PageSize::k4K ? 4 : 3; }

/// Bit position of the low edge of each level's index field.
/// Level 1 = PT (4K leaves), 2 = PD (2M leaves), 3 = PDPT, 4 = PML4.
inline constexpr int level_shift(int level) { return 12 + 9 * (level - 1); }

/// The IOVA prefix that selects a single entry at `level` (i.e. the
/// address truncated to that level's coverage). Two addresses with the
/// same prefix share the page-table entry at that level.
inline constexpr Iova level_prefix(Iova iova, int level) {
  return iova >> level_shift(level);
}

/// A registered DMA-able memory region.
struct Region {
  Iova base = 0;
  Bytes size{};
  PageSize page_size = PageSize::k2M;

  [[nodiscard]] constexpr std::int64_t num_pages() const {
    const auto psz = page_bytes(page_size).count();
    return (size.count() + psz - 1) / psz;
  }
  /// IOVA of the n-th page of the region.
  [[nodiscard]] constexpr Iova page_iova(std::int64_t n) const {
    return base + static_cast<Iova>(n * page_bytes(page_size).count());
  }
  [[nodiscard]] constexpr bool contains(Iova a) const {
    return a >= base && a < base + static_cast<Iova>(size.count());
  }
};

/// Handle to a registered region.
struct RegionId {
  std::int32_t index = -1;
  [[nodiscard]] constexpr bool valid() const { return index >= 0; }
};

/// The IO page table: tracks registered regions and answers geometry
/// queries (which region an IOVA belongs to, page base, walk depth).
/// It does not store actual PTE contents -- the simulator needs only
/// the structure that determines translation cost.
class IoPageTable {
 public:
  /// Registers a region of `size`, mapped with `page_size` leaves.
  /// Returns its id; base addresses are assigned by a bump allocator
  /// aligned to the leaf size.
  RegionId map_region(Bytes size, PageSize page_size) {
    const auto align = static_cast<Iova>(page_bytes(page_size).count());
    next_base_ = (next_base_ + align - 1) / align * align;
    Region r{next_base_, size, page_size};
    next_base_ += static_cast<Iova>(r.num_pages() * page_bytes(page_size).count());
    // hicc-lint: allow(hot-vector-growth) -- region registration is
    // setup-time (loose mode pins once); never on the datapath.
    regions_.push_back(r);
    by_base_[r.base] = static_cast<std::int32_t>(regions_.size()) - 1;
    total_mapped_pages_ += r.num_pages();
    return RegionId{static_cast<std::int32_t>(regions_.size()) - 1};
  }

  /// Removes a region's mapping (strict-mode experiments). The region
  /// slot stays allocated; subsequent find() no longer returns it.
  void unmap_region(RegionId id) {
    const auto& r = regions_.at(static_cast<std::size_t>(id.index));
    total_mapped_pages_ -= r.num_pages();
    by_base_.erase(r.base);
  }

  [[nodiscard]] const Region& region(RegionId id) const {
    return regions_.at(static_cast<std::size_t>(id.index));
  }

  /// Finds the mapped region containing `iova`, if any.
  [[nodiscard]] std::optional<Region> find(Iova iova) const {
    auto it = by_base_.upper_bound(iova);
    if (it == by_base_.begin()) return std::nullopt;
    --it;
    const Region& r = regions_[static_cast<std::size_t>(it->second)];
    if (!r.contains(iova)) return std::nullopt;
    return r;
  }

  /// IOVA rounded down to its page base (the IOTLB tag), given the
  /// owning region's page size.
  [[nodiscard]] static Iova page_base(const Region& r, Iova iova) {
    const auto psz = static_cast<Iova>(page_bytes(r.page_size).count());
    return iova / psz * psz;
  }

  /// Total leaf pages currently mapped (the IOTLB working-set bound).
  [[nodiscard]] std::int64_t total_mapped_pages() const { return total_mapped_pages_; }

  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  // IOVA 0 is left unmapped so a zero address is always a fault.
  Iova next_base_ = 1ull << 21;
  std::vector<Region> regions_;
  std::map<Iova, std::int32_t> by_base_;
  std::int64_t total_mapped_pages_ = 0;
};

}  // namespace hicc::iommu
