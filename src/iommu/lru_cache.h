// Small set-associative LRU cache used for the IOTLB and the page-walk
// caches. Capacities are tiny (tens to hundreds of entries), so each
// set is a linear-scanned array; LRU is tracked with a global stamp.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hicc::iommu {

/// Set-associative LRU cache of keys (no payload: the simulator only
/// needs presence, since the "translation" itself is synthesized).
/// `sets == 1` gives a fully-associative cache.
template <typename Key>
class LruCache {
 public:
  /// Creates a cache of `sets` x `ways` entries.
  LruCache(int sets, int ways)
      : sets_(sets),
        ways_(ways),
        slots_(static_cast<std::size_t>(sets) * static_cast<std::size_t>(ways)) {}

  /// Total capacity in entries.
  [[nodiscard]] int capacity() const { return sets_ * ways_; }

  /// Looks up `key`, refreshing its LRU stamp on a hit.
  bool lookup(const Key& key) {
    auto [begin, end] = set_range(key);
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].valid && slots_[i].key == key) {
        slots_[i].stamp = ++clock_;
        return true;
      }
    }
    return false;
  }

  /// Presence test without touching LRU state.
  [[nodiscard]] bool contains(const Key& key) const {
    auto [begin, end] = set_range(key);
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].valid && slots_[i].key == key) return true;
    }
    return false;
  }

  /// Inserts `key`, evicting the set's LRU entry if needed. Inserting
  /// a present key refreshes it. Returns true if an entry was evicted.
  bool insert(const Key& key) {
    auto [begin, end] = set_range(key);
    std::size_t victim = begin;
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].valid && slots_[i].key == key) {
        slots_[i].stamp = ++clock_;
        return false;
      }
      if (!slots_[i].valid) {
        victim = i;
      } else if (slots_[victim].valid && slots_[i].stamp < slots_[victim].stamp) {
        victim = i;
      }
    }
    const bool evicted = slots_[victim].valid;
    slots_[victim] = Slot{key, ++clock_, true};
    return evicted;
  }

  /// Removes `key` if present (IOTLB invalidation). Returns true if removed.
  bool invalidate(const Key& key) {
    auto [begin, end] = set_range(key);
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].valid && slots_[i].key == key) {
        slots_[i].valid = false;
        return true;
      }
    }
    return false;
  }

  /// Drops everything (global invalidation).
  void clear() {
    for (auto& s : slots_) s.valid = false;
  }

  /// Number of valid entries (for tests).
  [[nodiscard]] int size() const {
    int n = 0;
    for (const auto& s : slots_) n += s.valid ? 1 : 0;
    return n;
  }

 private:
  struct Slot {
    Key key{};
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  [[nodiscard]] std::pair<std::size_t, std::size_t> set_range(const Key& key) const {
    const std::size_t set =
        sets_ == 1 ? 0 : std::hash<Key>{}(key) % static_cast<std::size_t>(sets_);
    const std::size_t begin = set * static_cast<std::size_t>(ways_);
    return {begin, begin + static_cast<std::size_t>(ways_)};
  }

  int sets_;
  int ways_;
  std::uint64_t clock_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace hicc::iommu
