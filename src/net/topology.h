// Config-driven Clos leaf/spine fabric generalizing the single-ToR
// Fabric: `leaves` leaf switches, `spines` spine switches, and
// `hosts_per_leaf` hosts per leaf, every port modeled as a QueuedLink
// (serialization + propagation + byte-bounded tail-drop FIFO).
//
//   host --uplink--> [leaf] --leaf_uplink--> [spine]
//                      |                        |
//   host <-downlink-- [leaf] <--spine_downlink--+
//
// Routing is destination-based on Packet::dst: intra-leaf traffic
// takes two hops (host uplink -> destination downlink), inter-leaf
// traffic four (uplink -> leaf-to-spine -> spine-to-leaf -> downlink).
// The spine is chosen by stateless ECMP: a splitmix64 hash of
// (ecmp_seed, flow, sender, dst), so every packet of a flow takes the
// same path and two runs with equal seeds make identical choices --
// the fabric draws no RNG stream and schedules no events of its own,
// which is what lets a one-leaf config reproduce the legacy Fabric
// bitwise (tests/cluster_test.cpp).
//
// Like the legacy fabric, the Clos is deliberately uncongested in the
// paper's experiments: per-port drop counts (plus an O(1) running
// total) let experiments verify the "all drops are host drops" claim
// per receiver even with thousands of ports.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace hicc::net {

/// Clos topology + timing parameters. Validated by
/// hicc::validate(const ClusterConfig&) (src/core/validate.h).
struct TopologyConfig {
  int leaves = 2;
  int spines = 2;
  int hosts_per_leaf = 4;
  /// Host-to-leaf (and leaf-to-host) link rate.
  BitRate host_link_rate = BitRate::gbps(100);
  /// Leaf-to-spine (and spine-to-leaf) link rate.
  BitRate fabric_link_rate = BitRate::gbps(100);
  /// One-way propagation of a host edge link.
  TimePs edge_propagation = TimePs::from_us(2);
  /// One-way propagation of a leaf-spine hop.
  TimePs fabric_propagation = TimePs::from_us(2);
  /// Per-port buffering on host-facing ports.
  Bytes edge_buffer = Bytes::mib(8);
  /// Per-port buffering on leaf-spine ports.
  Bytes fabric_buffer = Bytes::mib(8);
  /// Seed of the stateless ECMP hash; equal seeds give equal paths.
  std::uint64_t ecmp_seed = 1;

  [[nodiscard]] constexpr int num_hosts() const { return leaves * hosts_per_leaf; }
  [[nodiscard]] constexpr int leaf_of(int host) const { return host / hosts_per_leaf; }
};

/// The Clos fabric. Hosts are numbered 0..num_hosts()-1, filled leaf
/// by leaf (host h sits under leaf h / hosts_per_leaf).
class ClosFabric {
 public:
  /// Canonical partition layout for ParallelEngine runs: the fabric
  /// interior (leaf/spine links + host downlinks) is partition 0, host
  /// h (its FullHost, serving senders, and uplink) is partition 1+h.
  static constexpr int kFabricPartition = 0;
  [[nodiscard]] static constexpr int host_partition(int h) { return h + 1; }

  /// `deliver(h, p)` is invoked for every packet that survives to host
  /// h's downlink.
  ClosFabric(sim::Simulator& sim, const TopologyConfig& cfg,
             sim::InlineCallback<void(int, Packet)> deliver)
      : cfg_(cfg), deliver_(std::move(deliver)) {
    build(sim, nullptr);
  }

  /// Partitioned construction: each host h's uplink lives on (and is
  /// sent into from) engine.sim(host_partition(h)); everything else
  /// lives on engine.sim(kFabricPartition). Edge links are marked
  /// cross-partition, so their deliveries ride the engine mailboxes;
  /// the event stream is otherwise identical to the serial fabric.
  ClosFabric(sim::ParallelEngine& engine, const TopologyConfig& cfg,
             sim::InlineCallback<void(int, Packet)> deliver)
      : cfg_(cfg), deliver_(std::move(deliver)) {
    build(engine.sim(kFabricPartition), &engine);
  }

  ClosFabric(const ClosFabric&) = delete;
  ClosFabric& operator=(const ClosFabric&) = delete;

  /// Host `src` transmits toward `p.dst`. Returns false on a fabric
  /// drop (at the host's uplink port).
  bool send_from_host(int src, Packet p) {
    return host_up_[static_cast<std::size_t>(src)]->send(std::move(p));
  }

  /// Stateless ECMP spine choice for a packet's flow key. A pure
  /// function of (ecmp_seed, flow, sender, dst): same seed -> same
  /// spine, so paths are reproducible across runs and processes.
  [[nodiscard]] int ecmp_spine(const Packet& p) const {
    std::uint64_t state = cfg_.ecmp_seed;
    state = splitmix64(state) ^ static_cast<std::uint32_t>(p.flow);
    state = splitmix64(state) ^ static_cast<std::uint32_t>(p.sender);
    state = splitmix64(state) ^ static_cast<std::uint32_t>(p.dst);
    return static_cast<int>(splitmix64(state) % static_cast<std::uint64_t>(cfg_.spines));
  }

  /// Total packets dropped inside the fabric: fabric-owned ports feed
  /// one running total at drop time (QueuedLink::set_drop_total), host
  /// uplinks each feed a per-host slot so partitioned runs stay
  /// single-writer -- the snapshot sums O(hosts) slots, never rescans
  /// the full O(leaves*spines) port list.
  [[nodiscard]] std::int64_t fabric_drops() const {
    std::int64_t total = drop_total_;
    for (const std::int64_t d : host_up_drop_totals_) total += d;
    return total;
  }

  /// Fabric drops charged to host `h`'s ports (its uplink + downlink);
  /// the per-receiver "all drops are host drops" check reads this.
  [[nodiscard]] std::int64_t host_port_drops(int h) const {
    return host_up_[static_cast<std::size_t>(h)]->drops() +
           host_down_[static_cast<std::size_t>(h)]->drops();
  }

  /// Occupancy of host `h`'s downlink port -- the congestion-relevant
  /// queue in an incast toward h (the access-link analog).
  [[nodiscard]] Bytes host_queue(int h) const {
    return host_down_[static_cast<std::size_t>(h)]->queued();
  }

  // Mutable link handles for fault injection (flap / rate / loss) and
  // per-port inspection.
  [[nodiscard]] QueuedLink& host_uplink(int h) {
    return *host_up_[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] QueuedLink& host_downlink(int h) {
    return *host_down_[static_cast<std::size_t>(h)];
  }
  /// The leaf->spine link out of leaf `l` toward spine `s`.
  [[nodiscard]] QueuedLink& leaf_uplink(int l, int s) {
    return *leaf_up_[static_cast<std::size_t>(l * cfg_.spines + s)];
  }
  /// The spine->leaf link out of spine `s` toward leaf `l`.
  [[nodiscard]] QueuedLink& spine_downlink(int s, int l) {
    return *spine_down_[static_cast<std::size_t>(l * cfg_.spines + s)];
  }

  [[nodiscard]] int num_hosts() const { return cfg_.num_hosts(); }
  [[nodiscard]] const TopologyConfig& config() const { return cfg_; }

 private:
  void build(sim::Simulator& fabric_sim, sim::ParallelEngine* engine) {
    const auto hosts = static_cast<std::size_t>(cfg_.num_hosts());
    host_up_.reserve(hosts);
    host_down_.reserve(hosts);
    host_up_drop_totals_.assign(hosts, 0);
    for (int h = 0; h < cfg_.num_hosts(); ++h) {
      const int leaf = cfg_.leaf_of(h);
      // The uplink is sent into by host h's transports, so it lives in
      // (and keeps its queue state in) host h's partition.
      sim::Simulator& host_sim =
          engine != nullptr ? engine->sim(host_partition(h)) : fabric_sim;
      host_up_.push_back(std::make_unique<QueuedLink>(
          host_sim, cfg_.host_link_rate, cfg_.edge_propagation, cfg_.edge_buffer,
          [this, leaf](Packet p) { at_leaf(leaf, std::move(p)); }));
      host_down_.push_back(std::make_unique<QueuedLink>(
          fabric_sim, cfg_.host_link_rate, cfg_.edge_propagation, cfg_.edge_buffer,
          [this, h](Packet p) { deliver_(h, std::move(p)); }));
      if (engine != nullptr) {
        host_up_.back()->set_cross_partition(engine, host_partition(h),
                                             kFabricPartition);
        host_down_.back()->set_cross_partition(engine, kFabricPartition,
                                               host_partition(h));
      }
    }
    const auto pairs = static_cast<std::size_t>(cfg_.leaves * cfg_.spines);
    leaf_up_.reserve(pairs);
    spine_down_.reserve(pairs);
    for (int l = 0; l < cfg_.leaves; ++l) {
      for (int s = 0; s < cfg_.spines; ++s) {
        leaf_up_.push_back(std::make_unique<QueuedLink>(
            fabric_sim, cfg_.fabric_link_rate, cfg_.fabric_propagation,
            cfg_.fabric_buffer, [this](Packet p) { at_spine(std::move(p)); }));
        spine_down_.push_back(std::make_unique<QueuedLink>(
            fabric_sim, cfg_.fabric_link_rate, cfg_.fabric_propagation,
            cfg_.fabric_buffer, [this](Packet p) { to_host(std::move(p)); }));
      }
    }
    // Drop totals: host uplinks write from their own partition, so each
    // gets a private slot; everything else is fabric-partition-owned
    // and shares one counter.
    for (std::size_t h = 0; h < hosts; ++h) {
      host_up_[h]->set_drop_total(&host_up_drop_totals_[h]);
    }
    for (auto& l : host_down_) l->set_drop_total(&drop_total_);
    for (auto& l : leaf_up_) l->set_drop_total(&drop_total_);
    for (auto& l : spine_down_) l->set_drop_total(&drop_total_);
  }

  void at_leaf(int leaf, Packet p) {
    const int dst_leaf = cfg_.leaf_of(p.dst);
    if (dst_leaf == leaf) {
      host_down_[static_cast<std::size_t>(p.dst)]->send(std::move(p));
      return;
    }
    const int spine = ecmp_spine(p);
    leaf_up_[static_cast<std::size_t>(leaf * cfg_.spines + spine)]->send(std::move(p));
  }

  void at_spine(Packet p) {
    // The spine knows the chosen spine index from the packet's own
    // flow key (the hash is stateless), so no per-link capture needed.
    const int spine = ecmp_spine(p);
    const int dst_leaf = cfg_.leaf_of(p.dst);
    spine_down_[static_cast<std::size_t>(dst_leaf * cfg_.spines + spine)]->send(std::move(p));
  }

  void to_host(Packet p) {
    host_down_[static_cast<std::size_t>(p.dst)]->send(std::move(p));
  }

  TopologyConfig cfg_;
  sim::InlineCallback<void(int, Packet)> deliver_;
  std::int64_t drop_total_ = 0;
  /// One slot per host uplink (single-writer in partitioned runs).
  std::vector<std::int64_t> host_up_drop_totals_;
  std::vector<std::unique_ptr<QueuedLink>> host_up_;    // host -> leaf
  std::vector<std::unique_ptr<QueuedLink>> host_down_;  // leaf -> host
  std::vector<std::unique_ptr<QueuedLink>> leaf_up_;    // [leaf][spine]
  std::vector<std::unique_ptr<QueuedLink>> spine_down_; // [leaf][spine], indexed by dst leaf
};

}  // namespace hicc::net
