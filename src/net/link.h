// A unidirectional link with an output queue: serialization at a fixed
// rate, propagation delay, and a byte-bounded FIFO that tail-drops.
// Used for sender uplinks, the ToR->receiver access link, and the
// reverse (ACK) path.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace hicc::net {

/// Byte-bounded output-queued link.
class QueuedLink {
 public:
  /// Inline-storage delivery callback: link delivery fires once per
  /// surviving packet, so the handler must not heap-allocate.
  using DeliverFn = sim::InlineCallback<void(Packet)>;

  /// `deliver` is invoked (at arrival time) for every packet that
  /// survives the queue.
  QueuedLink(sim::Simulator& sim, BitRate rate, TimePs propagation, Bytes queue_capacity,
             DeliverFn deliver)
      : sim_(sim),
        rate_(rate),
        propagation_(propagation),
        capacity_(queue_capacity),
        deliver_(std::move(deliver)) {}

  QueuedLink(const QueuedLink&) = delete;
  QueuedLink& operator=(const QueuedLink&) = delete;

  /// Enqueues `p`; returns false (and counts a drop) when the queue
  /// cannot hold the packet's wire bytes, the link is administratively
  /// down, or a loss window discards the packet.
  bool send(Packet p) {
    if (down_ || (loss_prob_ > 0.0 && loss_rng_ != nullptr && loss_rng_->chance(loss_prob_))) {
      record_drop();
      return false;
    }
    if (queued_ + p.wire > capacity_) {
      record_drop();
      return false;
    }
    // Occupancy is released at delivery (serialization + propagation),
    // so it over-counts by at most one propagation-delay's worth of
    // in-flight bytes; queue capacities are sized well above that.
    queued_ += p.wire;
    // Serialization start = when the transmitter frees up.
    const TimePs start = std::max(busy_until_, sim_.now());
    busy_until_ = start + rate_.time_to_send(p.wire);
    const Bytes wire = p.wire;
    const TimePs arrival = busy_until_ + propagation_;
    if (engine_ == nullptr) {
      sim_.at(arrival, [this, wire, p = std::move(p)]() mutable {
        queued_ -= wire;
        deliver_(std::move(p));
      });
    } else {
      // Cross-partition link: occupancy release stays home (queued_ is
      // src-partition state), delivery is mailed to the destination
      // partition. propagation_ >= the engine lookahead guarantees the
      // conservative contract (arrival lands at or after the window
      // end). The mailed closure reads only deliver_, which is
      // immutable after construction -- the one cross-thread access,
      // and a data-race-free one.
      sim_.at(arrival, [this, wire] { queued_ -= wire; });
      engine_->post(src_partition_, dst_partition_, arrival,
                    [this, p = std::move(p)]() mutable { deliver_(std::move(p)); });
    }
    return true;
  }

  /// Bytes currently queued or in serialization.
  [[nodiscard]] Bytes queued() const { return queued_; }
  /// Packets dropped so far (tail drops + down/loss-window discards).
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] BitRate rate() const { return rate_; }

  // Fault-injection hooks (src/fault/engine.cpp). Packets already in
  // serialization or flight are unaffected; only new sends see the
  // changed state, mirroring how real link events manifest.

  /// Changes the serialization rate for subsequent sends.
  void set_rate(BitRate rate) { rate_ = rate; }
  /// Administratively downs the link: every send drops.
  void set_down(bool down) { down_ = down; }
  /// Random-loss window; `prob` in [0,1], rng must outlive the window
  /// (pass prob=0 to end it).
  void set_loss(double prob, Rng* rng) {
    loss_prob_ = prob;
    loss_rng_ = rng;
  }

  /// Attaches a shared running total bumped on every drop, letting a
  /// fabric report aggregate drops in O(1) instead of rescanning every
  /// link per snapshot. Pure accounting: drops themselves (and the
  /// event stream) are unchanged. Counter must outlive the link.
  void set_drop_total(std::int64_t* total) { drop_total_ = total; }

  /// Marks this link as crossing partitions in a ParallelEngine run:
  /// every send() keeps its queue/serialization bookkeeping in the
  /// owning (src) partition but mails the delivery to `dst` via
  /// engine->post(). Requires propagation >= the engine lookahead.
  /// Call before the run starts; src must be the partition whose
  /// events invoke send() on this link.
  void set_cross_partition(sim::ParallelEngine* engine, int src, int dst) {
    engine_ = engine;
    src_partition_ = src;
    dst_partition_ = dst;
  }

 private:
  void record_drop() {
    ++drops_;
    if (drop_total_ != nullptr) ++*drop_total_;
  }

  sim::Simulator& sim_;
  BitRate rate_;
  TimePs propagation_;
  Bytes capacity_;
  DeliverFn deliver_;
  TimePs busy_until_{};
  Bytes queued_{};
  std::int64_t drops_ = 0;
  std::int64_t* drop_total_ = nullptr;
  sim::ParallelEngine* engine_ = nullptr;
  int src_partition_ = 0;
  int dst_partition_ = 0;
  bool down_ = false;
  double loss_prob_ = 0.0;
  Rng* loss_rng_ = nullptr;
};

}  // namespace hicc::net
