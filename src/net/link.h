// A unidirectional link with an output queue: serialization at a fixed
// rate, propagation delay, and a byte-bounded FIFO that tail-drops.
// Used for sender uplinks, the ToR->receiver access link, and the
// reverse (ACK) path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/units.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hicc::net {

/// Byte-bounded output-queued link.
class QueuedLink {
 public:
  /// `deliver` is invoked (at arrival time) for every packet that
  /// survives the queue.
  QueuedLink(sim::Simulator& sim, BitRate rate, TimePs propagation, Bytes queue_capacity,
             std::function<void(Packet)> deliver)
      : sim_(sim),
        rate_(rate),
        propagation_(propagation),
        capacity_(queue_capacity),
        deliver_(std::move(deliver)) {}

  QueuedLink(const QueuedLink&) = delete;
  QueuedLink& operator=(const QueuedLink&) = delete;

  /// Enqueues `p`; returns false (and counts a drop) when the queue
  /// cannot hold the packet's wire bytes.
  bool send(Packet p) {
    if (queued_ + p.wire > capacity_) {
      ++drops_;
      return false;
    }
    // Occupancy is released at delivery (serialization + propagation),
    // so it over-counts by at most one propagation-delay's worth of
    // in-flight bytes; queue capacities are sized well above that.
    queued_ += p.wire;
    // Serialization start = when the transmitter frees up.
    const TimePs start = std::max(busy_until_, sim_.now());
    busy_until_ = start + rate_.time_to_send(p.wire);
    const Bytes wire = p.wire;
    sim_.at(busy_until_ + propagation_, [this, wire, p = std::move(p)]() mutable {
      queued_ -= wire;
      deliver_(std::move(p));
    });
    return true;
  }

  /// Bytes currently queued or in serialization.
  [[nodiscard]] Bytes queued() const { return queued_; }
  /// Packets tail-dropped so far.
  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] BitRate rate() const { return rate_; }

 private:
  sim::Simulator& sim_;
  BitRate rate_;
  TimePs propagation_;
  Bytes capacity_;
  std::function<void(Packet)> deliver_;
  TimePs busy_until_{};
  Bytes queued_{};
  std::int64_t drops_ = 0;
};

}  // namespace hicc::net
