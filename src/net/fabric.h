// The network fabric of the paper's testbed workload: N sender hosts
// exchanging traffic with one receiver through a ToR switch.
//
//   sender i --uplink_i--> [ToR] --access link--> receiver NIC
//   receiver --reverse uplink--> [ToR] --downlink_i--> sender i
//
// The fabric itself is deliberately uncongested in the paper's
// experiments (all drops are at the receiver host); switch buffers
// default deep enough that fabric drops only occur if congestion
// control misbehaves, and are counted separately so experiments can
// verify the "all drops are host drops" claim (Fig 1 footnote).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/units.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hicc::net {

/// Fabric topology + timing parameters.
struct FabricParams {
  int num_senders = 40;
  BitRate link_rate = BitRate::gbps(100);
  /// One-way propagation of a sender uplink / downlink (host-to-ToR).
  TimePs edge_propagation = TimePs::from_us(2);
  /// One-way propagation of the ToR-to-receiver access hop.
  TimePs access_propagation = TimePs::from_us(2);
  /// Per-port switch buffering.
  Bytes switch_buffer = Bytes::mib(8);
};

/// N-senders-to-one-receiver fabric.
class Fabric {
 public:
  /// `to_receiver` is invoked for every packet arriving at the
  /// receiver's NIC port; `to_sender(i, p)` for packets arriving at
  /// sender i.
  Fabric(sim::Simulator& sim, const FabricParams& params,
         sim::InlineCallback<void(Packet)> to_receiver,
         sim::InlineCallback<void(int, Packet)> to_sender)
      : params_(params), to_sender_(std::move(to_sender)) {
    access_ = std::make_unique<QueuedLink>(sim, params.link_rate, params.access_propagation,
                                           params.switch_buffer, std::move(to_receiver));
    reverse_ = std::make_unique<QueuedLink>(
        sim, params.link_rate, params.access_propagation, params.switch_buffer,
        [this](Packet p) { route_to_sender(std::move(p)); });
    uplinks_.reserve(static_cast<std::size_t>(params.num_senders));
    downlinks_.reserve(static_cast<std::size_t>(params.num_senders));
    for (int i = 0; i < params.num_senders; ++i) {
      uplinks_.push_back(std::make_unique<QueuedLink>(
          sim, params.link_rate, params.edge_propagation, params.switch_buffer,
          [this](Packet p) { forward_to_access(std::move(p)); }));
      downlinks_.push_back(std::make_unique<QueuedLink>(
          sim, params.link_rate, params.edge_propagation, params.switch_buffer,
          [this, i](Packet p) { to_sender_(i, std::move(p)); }));
    }
    // Every link feeds one running total so fabric_drops() is O(1)
    // regardless of port count.
    access_->set_drop_total(&drop_total_);
    reverse_->set_drop_total(&drop_total_);
    for (auto& l : uplinks_) l->set_drop_total(&drop_total_);
    for (auto& l : downlinks_) l->set_drop_total(&drop_total_);
  }

  /// Sender i transmits toward the receiver. Returns false on a
  /// (fabric) drop.
  bool send_from_sender(int i, Packet p) {
    return uplinks_[static_cast<std::size_t>(i)]->send(std::move(p));
  }

  /// Receiver transmits toward sender `p.sender` (ACKs, read requests).
  bool send_from_receiver(Packet p) { return reverse_->send(std::move(p)); }

  /// Total packets dropped inside the fabric (should stay ~0; the
  /// paper's drops are all at the host). O(1): links maintain the
  /// running total at drop time, so per-window snapshots stay cheap
  /// even with thousands of ports.
  [[nodiscard]] std::int64_t fabric_drops() const { return drop_total_; }

  /// Occupancy of the congestion-relevant queue (ToR access port).
  [[nodiscard]] Bytes access_queue() const { return access_->queued(); }

  /// Mutable link handles for fault injection (flap / rate / loss).
  [[nodiscard]] QueuedLink& access_link() { return *access_; }
  [[nodiscard]] QueuedLink& uplink(int i) { return *uplinks_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int num_uplinks() const { return static_cast<int>(uplinks_.size()); }

  [[nodiscard]] const FabricParams& params() const { return params_; }

 private:
  void forward_to_access(Packet p) { access_->send(std::move(p)); }
  void route_to_sender(Packet p) {
    downlinks_[static_cast<std::size_t>(p.sender)]->send(std::move(p));
  }

  FabricParams params_;
  sim::InlineCallback<void(int, Packet)> to_sender_;
  std::int64_t drop_total_ = 0;
  std::unique_ptr<QueuedLink> access_;
  std::unique_ptr<QueuedLink> reverse_;
  std::vector<std::unique_ptr<QueuedLink>> uplinks_;
  std::vector<std::unique_ptr<QueuedLink>> downlinks_;
};

}  // namespace hicc::net
