// Packet metadata. The simulator never carries payload contents --
// only sizes and the timestamps/sequence numbers the transport needs.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace hicc::net {

/// Kinds of packets crossing the fabric.
enum class PacketKind : std::uint8_t {
  kData,         // 1-MTU data segment of a read response
  kAck,          // per-packet acknowledgment, receiver -> sender
  kReadRequest,  // RPC read issued by a receiver thread
  kHostSignal,   // out-of-band NIC congestion signal (§4 ablation)
};

/// A network packet (metadata only).
struct Packet {
  PacketKind kind = PacketKind::kData;
  /// Global flow index (one flow = one sender/receiver-thread pair).
  std::int32_t flow = -1;
  /// Index of the sending host for data, or destination for ACKs.
  std::int32_t sender = -1;
  /// Destination host id for multi-host (Clos) routing; -1 in the
  /// legacy single-receiver fabric. Occupies the alignment hole after
  /// `sender`, so Packet stays 64 bytes and the QueuedLink delivery
  /// closure keeps fitting an 80-byte InlineAction (DESIGN §8).
  std::int32_t dst = -1;
  /// Per-flow sequence number of data packets; for ACKs, the sequence
  /// being acknowledged.
  std::int64_t seq = -1;
  /// Application payload bytes (0 for ACK / read request).
  Bytes payload{};
  /// Total wire size including all protocol headers.
  Bytes wire{};
  /// When the data packet left the sender (echoed back in its ACK for
  /// RTT measurement).
  TimePs sent_at{};
  /// Receiver-host delay (NIC arrival -> stack processing) echoed in
  /// the ACK; the congestion signal the Swift host target compares to.
  TimePs echoed_host_delay{};
  /// Set by the receiver NIC on arrival (start of host-delay clock).
  TimePs nic_arrival{};

  [[nodiscard]] bool is_data() const { return kind == PacketKind::kData; }
};

/// Wire sizing for the paper's setup: 4K MTU payload + protocol
/// headers such that goodput tops out at ~92% of line rate
/// ("throughput is upper bounded by ~92Gbps due to protocol header
/// overheads", §3).
struct WireFormat {
  Bytes mtu_payload{4096};
  Bytes data_header{356};
  Bytes ack_wire{64};
  Bytes read_request_wire{64};

  [[nodiscard]] constexpr Bytes data_wire() const { return mtu_payload + data_header; }
  /// Fraction of access-link rate available to application payload.
  [[nodiscard]] constexpr double goodput_fraction() const {
    return mtu_payload / data_wire();
  }
};

}  // namespace hicc::net
