// Strong-typed physical units used throughout the simulator.
//
// Simulation time is kept as integer picoseconds: at 100Gbps one byte
// takes exactly 80ps on the wire, so picosecond resolution represents
// per-byte serialization times exactly and an int64_t still covers
// ~106 days of simulated time. Rates are double bits-per-second.
//
// The types are deliberately tiny (a single arithmetic member, all
// constexpr) so they compile away entirely; their only job is to make
// unit mistakes (ns vs ps, bits vs bytes, GB/s vs Gbps) type errors.
#pragma once

#include <cstdint>
#include <compare>

namespace hicc {

/// A point in (or span of) simulated time, in integer picoseconds.
class TimePs {
 public:
  constexpr TimePs() = default;
  constexpr explicit TimePs(std::int64_t ps) : ps_(ps) {}

  /// Value in picoseconds.
  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  /// Value converted to floating-point nanoseconds.
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  /// Value converted to floating-point microseconds.
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  /// Value converted to floating-point seconds.
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  static constexpr TimePs from_ns(double ns) {
    return TimePs(static_cast<std::int64_t>(ns * 1e3));
  }
  static constexpr TimePs from_us(double us) {
    return TimePs(static_cast<std::int64_t>(us * 1e6));
  }
  static constexpr TimePs from_ms(double ms) {
    return TimePs(static_cast<std::int64_t>(ms * 1e9));
  }
  static constexpr TimePs from_sec(double s) {
    return TimePs(static_cast<std::int64_t>(s * 1e12));
  }
  /// The largest representable time; used as "never".
  static constexpr TimePs max() { return TimePs(INT64_MAX); }

  constexpr auto operator<=>(const TimePs&) const = default;

  constexpr TimePs& operator+=(TimePs o) { ps_ += o.ps_; return *this; }
  constexpr TimePs& operator-=(TimePs o) { ps_ -= o.ps_; return *this; }

  friend constexpr TimePs operator+(TimePs a, TimePs b) { return TimePs(a.ps_ + b.ps_); }
  friend constexpr TimePs operator-(TimePs a, TimePs b) { return TimePs(a.ps_ - b.ps_); }
  friend constexpr TimePs operator*(TimePs a, std::int64_t k) { return TimePs(a.ps_ * k); }
  friend constexpr TimePs operator*(std::int64_t k, TimePs a) { return TimePs(a.ps_ * k); }
  friend constexpr TimePs operator/(TimePs a, std::int64_t k) { return TimePs(a.ps_ / k); }
  /// Ratio of two durations (e.g. for utilization computations).
  friend constexpr double operator/(TimePs a, TimePs b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }

 private:
  std::int64_t ps_ = 0;
};

/// A byte count (buffer occupancies, packet sizes, transfer volumes).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double bits() const { return static_cast<double>(count_) * 8.0; }
  [[nodiscard]] constexpr double kib() const { return static_cast<double>(count_) / 1024.0; }
  [[nodiscard]] constexpr double mib() const {
    return static_cast<double>(count_) / (1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr double gb() const { return static_cast<double>(count_) * 1e-9; }

  static constexpr Bytes kib(double v) {
    return Bytes(static_cast<std::int64_t>(v * 1024.0));
  }
  static constexpr Bytes mib(double v) {
    return Bytes(static_cast<std::int64_t>(v * 1024.0 * 1024.0));
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes o) { count_ += o.count_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { count_ -= o.count_; return *this; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.count_ + b.count_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.count_ - b.count_); }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) { return Bytes(a.count_ * k); }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) { return Bytes(a.count_ * k); }
  friend constexpr Bytes operator/(Bytes a, std::int64_t k) { return Bytes(a.count_ / k); }
  friend constexpr double operator/(Bytes a, Bytes b) {
    return static_cast<double>(a.count_) / static_cast<double>(b.count_);
  }

 private:
  std::int64_t count_ = 0;
};

/// A data rate in bits per second. Stored as double: rates are the
/// result of divisions and fixed-point would buy nothing here.
class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(double bits_per_sec) : bps_(bits_per_sec) {}

  [[nodiscard]] constexpr double bps() const { return bps_; }
  [[nodiscard]] constexpr double gbps() const { return bps_ * 1e-9; }
  /// Bytes per second (used by the memory subsystem, which thinks in GB/s).
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_ / 8.0; }
  [[nodiscard]] constexpr double gigabytes_per_sec() const { return bps_ * 1e-9 / 8.0; }

  static constexpr BitRate gbps(double v) { return BitRate(v * 1e9); }
  static constexpr BitRate mbps(double v) { return BitRate(v * 1e6); }
  /// From bytes/second (memory-bandwidth style figures).
  static constexpr BitRate gigabytes_per_sec(double v) { return BitRate(v * 8e9); }

  constexpr auto operator<=>(const BitRate&) const = default;

  /// Time to move `n` bytes at this rate (rounded to the nearest ps).
  [[nodiscard]] constexpr TimePs time_to_send(Bytes n) const {
    return TimePs(static_cast<std::int64_t>(n.bits() / bps_ * 1e12 + 0.5));
  }
  /// Bytes moved in `t` at this rate (rounded to the nearest byte).
  [[nodiscard]] constexpr Bytes bytes_in(TimePs t) const {
    return Bytes(static_cast<std::int64_t>(bps_ / 8.0 * t.sec() + 0.5));
  }

  friend constexpr BitRate operator+(BitRate a, BitRate b) { return BitRate(a.bps_ + b.bps_); }
  friend constexpr BitRate operator-(BitRate a, BitRate b) { return BitRate(a.bps_ - b.bps_); }
  friend constexpr BitRate operator*(BitRate a, double k) { return BitRate(a.bps_ * k); }
  friend constexpr BitRate operator*(double k, BitRate a) { return BitRate(a.bps_ * k); }
  friend constexpr BitRate operator/(BitRate a, double k) { return BitRate(a.bps_ / k); }
  friend constexpr double operator/(BitRate a, BitRate b) { return a.bps_ / b.bps_; }

 private:
  double bps_ = 0.0;
};

/// Rate observed when `n` bytes take `t` time (guards t == 0).
constexpr BitRate rate_of(Bytes n, TimePs t) {
  if (t.ps() <= 0) return BitRate(0.0);
  return BitRate(n.bits() / t.sec());
}

namespace literals {
constexpr TimePs operator""_ps(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v));
}
constexpr TimePs operator""_ns(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1000);
}
constexpr TimePs operator""_us(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1000000);
}
constexpr TimePs operator""_ms(unsigned long long v) {
  return TimePs(static_cast<std::int64_t>(v) * 1000000000);
}
constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes(static_cast<std::int64_t>(v));
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes(static_cast<std::int64_t>(v) * 1024);
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes(static_cast<std::int64_t>(v) * 1024 * 1024);
}
}  // namespace literals

}  // namespace hicc
