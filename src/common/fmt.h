// Formatting helpers shared by the structured-output writers (sweep
// JSON, trace CSV/Chrome-JSON).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

namespace hicc {

/// Round-trip double formatting: the shortest of %.15g/%.16g/%.17g
/// that parses back to the same value, so machine-diffable outputs are
/// exact and stable across runs.
inline void put_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  for (int precision : {15, 16}) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) {
      os << shorter;
      return;
    }
  }
  os << buf;
}

}  // namespace hicc
