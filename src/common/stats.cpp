#include "common/stats.h"

#include <cmath>

namespace hicc {

double RunningStats::stddev() const { return std::sqrt(variance()); }

int LogHistogram::bucket_for(double value) {
  if (value < 1.0) return 0;
  // Decompose value = m * 2^e with m in [1, 2); the octave is e and the
  // sub-bucket is the top kSubBits bits of the mantissa fraction.
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  const int octave = exp - 1;                       // value in [2^octave, 2^(octave+1))
  const int sub = static_cast<int>((mantissa * 2.0 - 1.0) * (1 << kSubBits));
  const int bucket = (octave << kSubBits) + std::min(sub, (1 << kSubBits) - 1);
  return std::min(bucket, kBucketCount - 1);
}

double LogHistogram::bucket_value(int bucket) {
  const int octave = bucket >> kSubBits;
  const int sub = bucket & ((1 << kSubBits) - 1);
  // Midpoint of the bucket range.
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / (1 << kSubBits), octave);
  const double hi = std::ldexp(1.0 + static_cast<double>(sub + 1) / (1 << kSubBits), octave);
  return 0.5 * (lo + hi);
}

void LogHistogram::add(double value) {
  if (value < 0.0) value = 0.0;
  ++buckets_[static_cast<std::size_t>(bucket_for(value))];
  ++total_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total_ - 1);
  std::int64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (static_cast<double>(seen) > rank) return bucket_value(b);
  }
  return max_;
}

}  // namespace hicc
