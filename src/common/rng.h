// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that
// experiments are exactly reproducible and sweeps can use independent
// streams. xoshiro256++ is used for generation and splitmix64 for
// seeding, following the reference implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hicc {

/// splitmix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256++ state and to derive independent child seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the seed for one point of a parameter sweep from the
/// sweep-level seed and the point's index. Each (sweep_seed, index)
/// pair maps to a statistically independent stream, and the result
/// depends on nothing else -- so a sweep's points can run in any
/// order, on any number of threads, and reproduce bitwise-identical
/// results.
constexpr std::uint64_t derive_seed(std::uint64_t sweep_seed, std::uint64_t index) {
  std::uint64_t s = sweep_seed;
  std::uint64_t t = splitmix64(s) + index;
  return splitmix64(t);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64, so any seed (including 0) is fine.
  constexpr explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased enough for simulation use
  /// (Lemire's multiply-shift reduction without the rejection loop would
  /// bias by <2^-64 per draw; we keep the rejection loop for exactness).
  constexpr std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    // Rejection sampling over the largest multiple of n.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator; use one child per
  /// component so adding randomness in one place does not perturb others.
  constexpr Rng fork() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hicc
