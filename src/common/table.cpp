#include "common/table.h"

#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hicc {

void Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell, int precision) {
  std::ostringstream oss;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    oss << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    oss << *i;
  } else {
    oss << std::fixed << std::setprecision(precision) << std::get<double>(cell);
  }
  return oss.str();
}

void Table::print(std::ostream& os, int precision) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c], precision));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < columns_.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rendered) line(row);
}

void Table::write_csv(std::ostream& os, int precision) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << render(row[c], precision);
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path, int precision) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out, precision);
  return static_cast<bool>(out);
}

}  // namespace hicc
