// Streaming statistics used to collect experiment metrics:
//  - Welford running mean/variance,
//  - a log-bucketed latency histogram with percentile queries,
//  - a windowed rate meter (bytes over time),
//  - a simple named counter set for drop attribution etc.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hicc {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Log-bucketed histogram for non-negative values (latencies in ns,
/// queue depths, ...). Buckets grow geometrically, 32 per octave, so
/// percentile error is bounded by the bucket width (~2% relative).
class LogHistogram {
 public:
  LogHistogram() : buckets_(kBucketCount, 0) {}

  void add(double value);

  /// Percentile in [0, 100]; returns the representative value of the
  /// bucket containing that rank (0 if the histogram is empty).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double max_value() const { return max_; }

 private:
  static constexpr int kSubBits = 5;               // 32 sub-buckets per octave
  static constexpr int kOctaves = 40;              // covers [1, 2^40)
  static constexpr int kBucketCount = kOctaves << kSubBits;

  static int bucket_for(double value);
  static double bucket_value(int bucket);

  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Measures average data rate over an explicit measurement window.
/// Typical use: reset at warmup end, read at the end of the run.
class RateMeter {
 public:
  /// Starts (or restarts) the measurement window at `now`.
  void reset(TimePs now) {
    window_start_ = now;
    bytes_ = Bytes(0);
  }

  void add(Bytes n) { bytes_ += n; }

  [[nodiscard]] Bytes bytes() const { return bytes_; }
  [[nodiscard]] BitRate rate_at(TimePs now) const {
    return rate_of(bytes_, now - window_start_);
  }

 private:
  TimePs window_start_{};
  Bytes bytes_{};
};

/// Windowed counter for ratio metrics (drops / transmissions, misses /
/// packets): counts only after the last reset so warmup is excluded.
class WindowedCounter {
 public:
  void reset() { value_ = 0; }
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }

  /// value() / denominator, or 0 when the denominator is 0.
  [[nodiscard]] double ratio_to(std::int64_t denom) const {
    return denom > 0 ? static_cast<double>(value_) / static_cast<double>(denom) : 0.0;
  }

 private:
  std::int64_t value_ = 0;
};

}  // namespace hicc
