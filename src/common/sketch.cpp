#include "common/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hicc {
namespace {

// Value-domain ceiling: FCTs in microseconds, slowdowns, byte counts
// all fit comfortably below 1e12 with the 1e-6 floor.
constexpr double kMaxValue = 1e12;

}  // namespace

QuantileSketch::QuantileSketch(double relative_error) {
  alpha_ = std::clamp(relative_error, 1e-4, 0.499);
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  const double log_gamma = std::log(gamma_);
  inv_log_gamma_ = 1.0 / log_gamma;
  // Bucket i covers (gamma^(i-1), gamma^i]; the domain [min_value(),
  // kMaxValue] maps to indices [min_index_, max_index].
  min_index_ = static_cast<int>(std::ceil(std::log(min_value()) * inv_log_gamma_));
  const int max_index = static_cast<int>(std::ceil(std::log(kMaxValue) * inv_log_gamma_));
  counts_.assign(static_cast<std::size_t>(max_index - min_index_ + 1), 0);
}

int QuantileSketch::bucket_for(double value) const {
  const int idx = static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_));
  return std::clamp(idx - min_index_, 0, static_cast<int>(counts_.size()) - 1);
}

double QuantileSketch::bucket_value(int bucket) const {
  // DDSketch representative 2*gamma^i / (gamma + 1): the geometric
  // point whose distance to either bucket edge is at most alpha
  // relative.
  const double i = static_cast<double>(bucket + min_index_);
  return std::exp(i / inv_log_gamma_) * 2.0 / (gamma_ + 1.0);
}

void QuantileSketch::add(double value) {
  if (total_ == 0) {
    max_ = value;
    min_ = value;
  } else {
    max_ = std::max(max_, value);
    min_ = std::min(min_, value);
  }
  ++total_;
  sum_ += value;
  if (value <= min_value()) {
    ++zero_count_;
    return;
  }
  ++counts_[static_cast<std::size_t>(bucket_for(value))];
}

bool QuantileSketch::merge(const QuantileSketch& other) {
  if (!mergeable(other)) return false;
  if (other.total_ == 0) return true;
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  zero_count_ += other.zero_count_;
  if (total_ == 0) {
    max_ = other.max_;
    min_ = other.min_;
  } else {
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  return true;
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total_ - 1);
  std::int64_t seen = zero_count_;
  if (static_cast<double>(seen) > rank) return 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) > rank) return bucket_value(static_cast<int>(b));
  }
  return max_;
}

std::string QuantileSketch::encode() const {
  std::string out = "hicc.sketch.v1|";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g|%lld|%lld|", alpha_,
                static_cast<long long>(zero_count_), static_cast<long long>(total_));
  out += buf;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%zu:%lld,", b, static_cast<long long>(counts_[b]));
    out += buf;
  }
  return out;
}

std::uint64_t QuantileSketch::fingerprint() const {
  const std::string bytes = encode();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hicc
