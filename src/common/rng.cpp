#include "common/rng.h"

#include <cmath>

namespace hicc {

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; uniform() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace hicc
