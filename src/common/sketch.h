// Mergeable streaming quantile sketch (DDSketch-style, log-bucketed)
// for bounded-memory tail statistics over unbounded value streams:
// flow completion times, slowdowns, host delays.
//
// Guarantee: for any quantile q, the reported value is within the
// configured relative error alpha of the exact q-quantile of the
// inserted values (for values inside [min_value(), max_value_bound()];
// values at or below zero land in an explicit underflow bucket).
//
// Unlike LogHistogram (fixed ~2% buckets, double sum, no merge), the
// sketch's accuracy is a constructor knob, its per-bucket state is
// integer counts, and merge() is exact: merging two sketches equals
// inserting both streams into one. Merges are associative and
// commutative on the bucket counts, so per-host / per-partition
// sketches combined in a fixed order are bitwise reproducible for any
// thread or partition count (encode() is the canonical byte form the
// determinism tests compare).
//
// Memory is O(log(domain) / alpha), fixed at construction: the add()
// and merge() paths never allocate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace hicc {

/// Log-bucketed quantile sketch with a relative-error contract.
class QuantileSketch {
 public:
  /// `relative_error` (alpha) must be in (0, 0.5); 0.01 gives 1%
  /// worst-case quantile error with ~2.1k buckets over the value
  /// domain [1e-6, 1e12].
  explicit QuantileSketch(double relative_error = 0.01);

  /// Inserts one value. Values <= min_value() count in the underflow
  /// bucket (reported as 0 by quantile()); values beyond the domain
  /// ceiling clamp into the last bucket. Never allocates.
  void add(double value);

  /// Empties the sketch (measurement-window reset); geometry and
  /// relative error are unchanged. Never allocates.
  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    zero_count_ = 0;
    total_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
    min_ = 0.0;
  }

  /// Exact distributed aggregation: after a.merge(b), a reports the
  /// quantiles of both streams. Both sketches must share the same
  /// relative error (mergeable() true); merging an incompatible
  /// sketch is ignored and returns false. Never allocates.
  bool merge(const QuantileSketch& other);
  [[nodiscard]] bool mergeable(const QuantileSketch& other) const {
    return counts_.size() == other.counts_.size() && min_index_ == other.min_index_;
  }

  /// q-quantile for q in [0, 1]; returns the bucket's representative
  /// value (within alpha of exact), 0 on an empty sketch.
  [[nodiscard]] double quantile(double q) const;
  /// LogHistogram-style alias: percentile(99.9) == quantile(0.999).
  [[nodiscard]] double percentile(double p) const { return quantile(p / 100.0); }

  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double max_seen() const { return total_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double min_seen() const { return total_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double relative_error() const { return alpha_; }
  /// Smallest value with full relative-error resolution.
  [[nodiscard]] static constexpr double min_value() { return 1e-6; }

  /// Canonical byte form ("hicc.sketch.v1|alpha|zero|total|i:c,...":
  /// sparse non-zero buckets in index order). Two sketches over the
  /// same value stream encode identically regardless of how the stream
  /// was partitioned and merged -- the bitwise-determinism probe.
  [[nodiscard]] std::string encode() const;
  /// FNV-1a hash of encode(), for cheap bitwise comparisons.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Bucket array accessors for tests and exporters.
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts() const { return counts_; }
  [[nodiscard]] std::int64_t underflow_count() const { return zero_count_; }

 private:
  [[nodiscard]] int bucket_for(double value) const;
  [[nodiscard]] double bucket_value(int bucket) const;

  double alpha_;
  double inv_log_gamma_;
  double gamma_;
  int min_index_;  // bucket index of min_value()
  std::vector<std::int64_t> counts_;
  std::int64_t zero_count_ = 0;
  std::int64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
};

}  // namespace hicc
