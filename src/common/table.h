// Minimal table formatting for benchmark/experiment output: every
// figure-reproduction binary prints its series as an aligned ASCII
// table (what EXPERIMENTS.md quotes) and can also dump CSV for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hicc {

/// A single table cell: text, integer or floating point.
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned table with a fixed header row.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  /// Appends a row; must contain exactly one cell per column.
  void add_row(std::vector<Cell> cells);

  /// Renders with aligned columns. Doubles are printed with
  /// `precision` digits after the decimal point.
  void print(std::ostream& os, int precision = 3) const;

  /// Renders as CSV (no quoting; cells must not contain commas).
  void write_csv(std::ostream& os, int precision = 6) const;

  /// Convenience: writes CSV to `path`, returning false on I/O failure.
  [[nodiscard]] bool save_csv(const std::string& path, int precision = 6) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }

 private:
  static std::string render(const Cell& cell, int precision);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace hicc
