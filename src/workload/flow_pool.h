// hicc-lint: hotpath
//
// Slab/free-list pool of workload flow slots: the structure that makes
// million-flow open-loop runs O(active flows) in memory with zero
// steady-state allocation.
//
// Slots are pre-bound to sender classes by layout (class == slot %
// classes), matching the receiver's flow-id addressing (a slot IS the
// transport flow id), so acquire/release is a per-class LIFO stack
// pop/push -- O(1), allocation-free. Handles carry a generation stamp
// bumped on every acquire: a stale handle from a slot's previous
// occupancy can neither release nor be mistaken for the current flow
// (the ABA guard tests/workload_test.cpp pins).
#pragma once

#include <cstdint>
#include <vector>

namespace hicc::workload {

/// Generation-stamped reference to one pooled flow slot.
struct FlowHandle {
  std::int32_t slot = -1;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return slot >= 0; }
};

/// Fixed-capacity slab of flow slots with per-class free lists.
class FlowPool {
 public:
  /// `capacity` total slots; slot s belongs to class s % classes.
  FlowPool(int capacity, int classes) : classes_(classes) {
    generation_.assign(static_cast<std::size_t>(capacity), 0);
    live_.assign(static_cast<std::size_t>(capacity), 0);
    free_.resize(static_cast<std::size_t>(classes));
    for (int c = 0; c < classes; ++c) {
      auto& list = free_[static_cast<std::size_t>(c)];
      list.reserve(static_cast<std::size_t>((capacity - c + classes - 1) / classes));
      // Descending fill so pop_back hands out ascending slot ids.
      for (std::int32_t s = capacity - 1; s >= 0; --s) {
        if (s % classes == c) list.push_back(s);
      }
    }
  }

  /// Pops a free slot of `cls`; invalid handle when the class is
  /// exhausted (the caller counts that as an overload drop).
  [[nodiscard]] FlowHandle acquire(int cls) {
    auto& list = free_[static_cast<std::size_t>(cls)];
    if (list.empty()) return FlowHandle{};
    const std::int32_t slot = list.back();
    list.pop_back();
    auto& gen = generation_[static_cast<std::size_t>(slot)];
    ++gen;
    live_[static_cast<std::size_t>(slot)] = 1;
    ++active_;
    return FlowHandle{slot, gen};
  }

  /// Returns the slot to its class's free list. A handle whose
  /// generation does not match the slot's current occupancy (already
  /// released, or re-acquired since) is rejected -- double-release and
  /// ABA are structurally impossible.
  bool release(FlowHandle h) {
    if (!live(h)) return false;
    live_[static_cast<std::size_t>(h.slot)] = 0;
    free_[static_cast<std::size_t>(h.slot % classes_)].push_back(h.slot);
    --active_;
    return true;
  }

  [[nodiscard]] bool live(FlowHandle h) const {
    return h.valid() && h.slot < capacity() &&
           live_[static_cast<std::size_t>(h.slot)] != 0 &&
           generation_[static_cast<std::size_t>(h.slot)] == h.generation;
  }

  [[nodiscard]] std::uint32_t generation_of(std::int32_t slot) const {
    return generation_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] int capacity() const { return static_cast<int>(generation_.size()); }
  [[nodiscard]] int classes() const { return classes_; }

 private:
  int classes_;
  int active_ = 0;
  std::vector<std::uint32_t> generation_;
  std::vector<char> live_;
  /// Per-class LIFO stacks; sized to their class population at
  /// construction, so push_back never reallocates.
  std::vector<std::vector<std::int32_t>> free_;
};

}  // namespace hicc::workload
