// hicc-lint: hotpath
//
// The open-loop workload engine: one per receiver host, generating
// flow arrivals (workload/dist.h) onto recyclable flow-pool slots
// (workload/flow_pool.h) and recording completions into mergeable
// quantile sketches (common/sketch.h).
//
// Lifecycle of one flow: arrival event -> acquire a slot of the
// target sender's class -> ReceiverHost::issue_open_read() (the read
// request travels the real fabric + transport + full receiver stack)
// -> the receiver's read-complete hook fires -> FCT and slowdown are
// sketched, the slot is released. Collective patterns chain dependent
// steps through the same path. The steady state allocates nothing:
// slots, chains, and sketch buckets are all fixed at construction, so
// memory is O(max_active), never O(total flows).
//
// Determinism: the engine runs entirely on its receiver's partition
// simulator and draws all randomness from its own forked Rng, so
// cluster runs stay bitwise identical for any --parallel=N
// (docs/WORKLOADS.md, docs/PARALLELISM.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sketch.h"
#include "common/units.h"
#include "host/receiver_host.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workload/dist.h"
#include "workload/flow_pool.h"
#include "workload/workload.h"

namespace hicc::workload {

/// Windowed workload accounting (totals since begin_window()).
struct WorkloadWindow {
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  std::int64_t pool_exhausted = 0;
  std::int64_t collectives_completed = 0;
};

/// One receiver's open-loop arrival engine.
class WorkloadEngine {
 public:
  /// Everything the engine is wired to. `target_flows` is this
  /// engine's share of WorkloadParams::target_flows (0 = unbounded).
  /// `base_rtt` + `link_rate` define the ideal FCT used as the
  /// slowdown denominator: ideal(b) = base_rtt + b / link_rate.
  struct Wiring {
    sim::Simulator* sim = nullptr;
    host::ReceiverHost* receiver = nullptr;
    int num_senders = 1;
    int receiver_index = 0;
    std::int64_t target_flows = 0;
    TimePs base_rtt = TimePs::from_us(10);
    BitRate link_rate = BitRate::gbps(100.0);
  };

  /// Registers trace probes when `tracer` is non-null (names in
  /// docs/OBSERVABILITY.md) and installs the receiver's read-complete
  /// and host-delay-sketch hooks.
  WorkloadEngine(const WorkloadParams& params, Wiring wiring, Rng rng,
                 trace::Tracer* tracer);

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Schedules the first arrival; call once, alongside receiver start.
  void start();

  /// Resets the measurement window (sketches + windowed counters).
  void begin_window();

  [[nodiscard]] const WorkloadWindow& window() const { return window_; }
  [[nodiscard]] const QuantileSketch& fct_us() const { return fct_us_; }
  [[nodiscard]] const QuantileSketch& slowdown() const { return slowdown_; }
  [[nodiscard]] const QuantileSketch& host_delay_us() const { return host_delay_us_; }
  [[nodiscard]] int active_flows() const { return pool_.active(); }
  [[nodiscard]] std::int64_t injected_total() const { return injected_total_; }
  [[nodiscard]] const FlowPool& pool() const { return pool_; }

 private:
  /// One collective's dependency chain, carried by its current slot.
  struct Chain {
    std::int16_t remaining = 0;  // dependent steps still to run
    std::int16_t step = 0;       // index of the step now in flight
    std::int16_t total = 0;      // 0 for non-collective flows
    Bytes step_size{};
  };

  void schedule_next();
  void on_arrival();
  void launch(int sender, Bytes size, Chain chain);
  void on_complete(std::int32_t slot, TimePs issued_at);
  [[nodiscard]] int chain_sender(int step) const;
  [[nodiscard]] double ideal_fct_us(Bytes size) const;

  WorkloadParams params_;
  Wiring w_;
  Rng rng_;          // sizes + sender choices
  ArrivalProcess arrival_;  // owns its forked gap Rng
  FlowPool pool_;
  FlowSizeDist size_dist_;
  int tree_rounds_ = 1;
  double base_rtt_us_ = 0.0;
  double us_per_byte_ = 0.0;

  /// Per-slot state, fixed at construction (index == slot id).
  std::vector<FlowHandle> handles_;
  std::vector<Bytes> slot_size_;
  std::vector<Chain> chains_;

  QuantileSketch fct_us_;
  QuantileSketch slowdown_;
  QuantileSketch host_delay_us_;
  WorkloadWindow window_;
  /// Run-total counters (never reset; drive target_flows + probes).
  std::int64_t injected_total_ = 0;
  std::int64_t completed_total_ = 0;
  std::int64_t exhausted_total_ = 0;
  std::int64_t collectives_total_ = 0;
  bool stopped_ = false;
};

}  // namespace hicc::workload
