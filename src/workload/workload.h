// hicc-lint: hotpath
//
// Open-loop workload configuration: arrival process, flow-size
// distribution, and traffic pattern for the production workload
// engine (docs/WORKLOADS.md).
//
// The engine (workload/engine.h) creates and retires flows
// dynamically through a slab flow pool (workload/flow_pool.h); these
// params are carried by ClusterConfig and surfaced as hicc_cli's
// --workload/--wl-* knobs.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/units.h"

namespace hicc::workload {

/// Traffic pattern driven by each receiver's engine.
enum class Pattern : std::uint8_t {
  kOff,            // workload engine disabled (closed-loop legacy reads)
  kIncast,         // RPC fan-out: each arrival reads from `fanout` distinct senders
  kUniform,        // each arrival reads from one uniformly random sender
  kAllreduceRing,  // ring allreduce: 2(M-1) dependent chunks from the ring neighbor
  kAllreduceTree,  // tree allreduce: 2*ceil(log2 M) dependent rounds from tree peers
};

/// Flow inter-arrival process (open-loop: arrivals never wait for
/// completions).
enum class Arrival : std::uint8_t {
  kPoisson,  // exponential inter-arrival gaps at `rate_per_s`
  kBursty,   // two-state Markov-modulated Poisson (on/off), mean `rate_per_s`
};

/// Flow-size distribution.
enum class SizeDist : std::uint8_t {
  kFixed,      // every flow carries `fixed_size` bytes
  kWebSearch,  // web-search RPC sizes (DCTCP-style CDF, ~1.6MB mean)
  kHadoop,     // storage/analytics sizes (VL2-style CDF, mostly-small heavy tail)
};

[[nodiscard]] const char* to_string(Pattern p);
[[nodiscard]] const char* to_string(Arrival a);
[[nodiscard]] const char* to_string(SizeDist d);
[[nodiscard]] bool pattern_from_string(const char* s, Pattern* out);
[[nodiscard]] bool arrival_from_string(const char* s, Arrival* out);
[[nodiscard]] bool size_dist_from_string(const char* s, SizeDist* out);

/// All knobs of one receiver-side open-loop workload.
struct WorkloadParams {
  Pattern pattern = Pattern::kOff;
  Arrival arrival = Arrival::kPoisson;
  /// Mean flow arrival rate per receiver, flows per simulated second.
  double rate_per_s = 1e5;
  /// Bursty arrivals: on-state rate multiplier, fraction of time in
  /// the on state, and the mean on+off cycle length.
  double burst_factor = 8.0;
  double burst_on_fraction = 0.2;
  TimePs burst_period = TimePs::from_us(500);
  SizeDist size_dist = SizeDist::kFixed;
  Bytes fixed_size = Bytes(16 * 1024);
  /// Incast fan-out width (distinct senders per RPC arrival).
  int fanout = 8;
  /// Flow-pool capacity per receiver: the hard bound on concurrently
  /// active flows (and hence on workload memory). Arrivals that find
  /// their sender's slots exhausted are dropped and counted.
  int max_active = 4096;
  /// Stop injecting after this many flows cluster-wide (split evenly
  /// across receivers); 0 injects for the whole run.
  std::int64_t target_flows = 0;
  /// Relative-error bound of the FCT/slowdown/host-delay quantile
  /// sketches (common/sketch.h).
  double sketch_relative_error = 0.01;

  [[nodiscard]] bool enabled() const { return pattern != Pattern::kOff; }
};

inline const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kOff: return "off";
    case Pattern::kIncast: return "incast";
    case Pattern::kUniform: return "uniform";
    case Pattern::kAllreduceRing: return "allreduce_ring";
    case Pattern::kAllreduceTree: return "allreduce_tree";
  }
  return "unknown";
}

inline const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kBursty: return "bursty";
  }
  return "unknown";
}

inline const char* to_string(SizeDist d) {
  switch (d) {
    case SizeDist::kFixed: return "fixed";
    case SizeDist::kWebSearch: return "websearch";
    case SizeDist::kHadoop: return "hadoop";
  }
  return "unknown";
}

inline bool pattern_from_string(const char* s, Pattern* out) {
  for (const Pattern p : {Pattern::kOff, Pattern::kIncast, Pattern::kUniform,
                          Pattern::kAllreduceRing, Pattern::kAllreduceTree}) {
    if (std::strcmp(s, to_string(p)) == 0) {
      *out = p;
      return true;
    }
  }
  return false;
}

inline bool arrival_from_string(const char* s, Arrival* out) {
  for (const Arrival a : {Arrival::kPoisson, Arrival::kBursty}) {
    if (std::strcmp(s, to_string(a)) == 0) {
      *out = a;
      return true;
    }
  }
  return false;
}

inline bool size_dist_from_string(const char* s, SizeDist* out) {
  for (const SizeDist d : {SizeDist::kFixed, SizeDist::kWebSearch, SizeDist::kHadoop}) {
    if (std::strcmp(s, to_string(d)) == 0) {
      *out = d;
      return true;
    }
  }
  return false;
}

}  // namespace hicc::workload
