// hicc-lint: hotpath
#include "workload/dist.h"

#include <algorithm>
#include <cmath>

namespace hicc::workload {
namespace {

// Web-search RPC flow sizes: the DCTCP-style search workload CDF --
// mostly tens-of-KB query/response traffic with a multi-MB tail.
constexpr SizeKnot kWebSearch[] = {
    {6e3, 0.0},   {10e3, 0.15}, {13e3, 0.2},  {19e3, 0.3},
    {33e3, 0.4},  {53e3, 0.53}, {133e3, 0.6}, {667e3, 0.7},
    {1467e3, 0.8}, {3333e3, 0.9}, {6667e3, 0.97}, {20e6, 1.0},
};
constexpr int kWebSearchSize = static_cast<int>(sizeof(kWebSearch) / sizeof(kWebSearch[0]));

// Hadoop/storage-style flow sizes: the VL2-style data-mining shape --
// a large mass of tiny control/metadata flows under a heavy bulk tail.
constexpr SizeKnot kHadoop[] = {
    {100.0, 0.0}, {300.0, 0.3},  {1e3, 0.5},   {2e3, 0.6},
    {10e3, 0.7},  {100e3, 0.8},  {1e6, 0.9},   {10e6, 0.97},
    {100e6, 0.999}, {1e9, 1.0},
};
constexpr int kHadoopSize = static_cast<int>(sizeof(kHadoop) / sizeof(kHadoop[0]));

}  // namespace

FlowSizeDist::FlowSizeDist(SizeDist dist, Bytes fixed_size)
    : dist_(dist), fixed_(fixed_size) {
  switch (dist_) {
    case SizeDist::kFixed:
      mean_bytes_ = static_cast<double>(fixed_.count());
      return;
    case SizeDist::kWebSearch:
      table_ = kWebSearch;
      table_size_ = kWebSearchSize;
      break;
    case SizeDist::kHadoop:
      table_ = kHadoop;
      table_size_ = kHadoopSize;
      break;
  }
  // Segment-wise expectation of the log-linear interpolant:
  // E[X] = sum_i (c_{i+1}-c_i) * b_i * (r-1)/ln(r), r = b_{i+1}/b_i.
  for (int i = 0; i + 1 < table_size_; ++i) {
    const double dc = table_[i + 1].cdf - table_[i].cdf;
    const double r = table_[i + 1].bytes / table_[i].bytes;
    mean_bytes_ += dc * table_[i].bytes * (r - 1.0) / std::log(r);
  }
}

Bytes FlowSizeDist::sample(Rng& rng) const {
  if (dist_ == SizeDist::kFixed) return fixed_;
  const double u = rng.uniform();
  int i = 0;
  while (i + 2 < table_size_ && table_[i + 1].cdf <= u) ++i;
  const double dc = table_[i + 1].cdf - table_[i].cdf;
  const double t = dc > 0.0 ? (u - table_[i].cdf) / dc : 0.0;
  const double bytes =
      table_[i].bytes * std::pow(table_[i + 1].bytes / table_[i].bytes, t);
  return Bytes(std::max<std::int64_t>(1, static_cast<std::int64_t>(bytes)));
}

ArrivalProcess::ArrivalProcess(const WorkloadParams& params, Rng rng)
    : kind_(params.arrival), rng_(rng) {
  const double rate_per_ps = params.rate_per_s * 1e-12;
  if (kind_ == Arrival::kPoisson) {
    on_rate_per_ps_ = rate_per_ps;
    off_rate_per_ps_ = rate_per_ps;
    mean_on_ps_ = 0.0;
    mean_off_ps_ = 0.0;
    return;
  }
  // Two-state MMPP: on-state rate = burst_factor * mean; the off-state
  // rate balances the long-run mean back to rate_per_s (clamped at 0
  // when the on state already carries the whole mean).
  const double f = std::clamp(params.burst_on_fraction, 1e-6, 1.0);
  on_rate_per_ps_ = rate_per_ps * std::max(1.0, params.burst_factor);
  off_rate_per_ps_ =
      f < 1.0 ? std::max(0.0, rate_per_ps * (1.0 - f * params.burst_factor) / (1.0 - f))
              : rate_per_ps;
  const double period_ps = static_cast<double>(params.burst_period.ps());
  mean_on_ps_ = f * period_ps;
  mean_off_ps_ = (1.0 - f) * period_ps;
}

TimePs ArrivalProcess::next_gap() {
  if (kind_ == Arrival::kPoisson) {
    const double gap = rng_.exponential(1.0 / on_rate_per_ps_);
    return TimePs(std::max<std::int64_t>(1, static_cast<std::int64_t>(gap)));
  }
  double elapsed = 0.0;
  for (;;) {
    if (state_left_ps_ <= 0.0) {
      on_ = !on_;
      state_left_ps_ = rng_.exponential(on_ ? mean_on_ps_ : mean_off_ps_);
      continue;
    }
    const double rate = on_ ? on_rate_per_ps_ : off_rate_per_ps_;
    if (rate <= 0.0) {
      // Silent state: skip to its end.
      elapsed += state_left_ps_;
      state_left_ps_ = 0.0;
      continue;
    }
    const double gap = rng_.exponential(1.0 / rate);
    if (gap <= state_left_ps_) {
      state_left_ps_ -= gap;
      return TimePs(std::max<std::int64_t>(1, static_cast<std::int64_t>(elapsed + gap)));
    }
    elapsed += state_left_ps_;
    state_left_ps_ = 0.0;
  }
}

}  // namespace hicc::workload
