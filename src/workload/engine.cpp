// hicc-lint: hotpath
#include "workload/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hicc::workload {
namespace {

/// Tree-allreduce round count: reduce up then broadcast down a binary
/// tree over M peers.
int tree_rounds_for(int senders) {
  int rounds = 0;
  int span = 1;
  while (span < senders + 1) {
    span <<= 1;
    ++rounds;
  }
  return std::max(1, rounds);
}

}  // namespace

WorkloadEngine::WorkloadEngine(const WorkloadParams& params, Wiring wiring, Rng rng,
                               trace::Tracer* tracer)
    : params_(params),
      w_(wiring),
      rng_(rng),
      arrival_(params, rng_.fork()),
      pool_(params.max_active, wiring.num_senders),
      size_dist_(params.size_dist, params.fixed_size),
      fct_us_(params.sketch_relative_error),
      slowdown_(params.sketch_relative_error),
      host_delay_us_(params.sketch_relative_error) {
  assert(w_.sim != nullptr && w_.receiver != nullptr);
  tree_rounds_ = tree_rounds_for(w_.num_senders);
  base_rtt_us_ = w_.base_rtt.us();
  us_per_byte_ = 8.0 / w_.link_rate.bps() * 1e6;

  handles_.assign(static_cast<std::size_t>(pool_.capacity()), FlowHandle{});
  slot_size_.assign(static_cast<std::size_t>(pool_.capacity()), Bytes(0));
  chains_.assign(static_cast<std::size_t>(pool_.capacity()), Chain{});

  w_.receiver->set_read_complete(sim::InlineCallback<void(std::int32_t, TimePs)>(
      [this](std::int32_t slot, TimePs issued_at) { on_complete(slot, issued_at); }));
  w_.receiver->set_host_delay_sketch(&host_delay_us_);

  if (tracer != nullptr) {
    tracer->gauge("workload.active_flows", "flows",
                  [this] { return static_cast<double>(pool_.active()); });
    tracer->counter("workload.flows_started", "flows",
                    [this] { return static_cast<double>(injected_total_); });
    tracer->counter("workload.flows_completed", "flows",
                    [this] { return static_cast<double>(completed_total_); });
    tracer->counter("workload.pool_exhausted", "flows",
                    [this] { return static_cast<double>(exhausted_total_); });
    tracer->counter("workload.collectives_completed", "collectives",
                    [this] { return static_cast<double>(collectives_total_); });
    tracer->gauge("workload.fct_p99_us", "us",
                  [this] { return fct_us_.quantile(0.99); });
    tracer->gauge("workload.slowdown_p99", "ratio",
                  [this] { return slowdown_.quantile(0.99); });
  }
}

void WorkloadEngine::start() {
  if (!params_.enabled()) return;
  schedule_next();
}

void WorkloadEngine::begin_window() {
  fct_us_.reset();
  slowdown_.reset();
  host_delay_us_.reset();
  window_ = WorkloadWindow{};
}

void WorkloadEngine::schedule_next() {
  if (stopped_) return;
  w_.sim->after(arrival_.next_gap(), [this] { on_arrival(); });
}

void WorkloadEngine::on_arrival() {
  if (w_.target_flows > 0 && injected_total_ >= w_.target_flows) {
    stopped_ = true;
    return;
  }
  const int senders = w_.num_senders;
  switch (params_.pattern) {
    case Pattern::kOff:
      return;
    case Pattern::kUniform: {
      const int s = static_cast<int>(rng_.below(static_cast<std::uint64_t>(senders)));
      launch(s, size_dist_.sample(rng_), Chain{});
      break;
    }
    case Pattern::kIncast: {
      // One RPC fans out to `fanout` distinct senders, each serving an
      // equal shard; the responses converge on this receiver's NIC.
      const int fanout = std::min(params_.fanout, senders);
      const int base = static_cast<int>(rng_.below(static_cast<std::uint64_t>(senders)));
      const Bytes total = size_dist_.sample(rng_);
      const Bytes shard(std::max<std::int64_t>(1, total.count() / fanout));
      for (int j = 0; j < fanout; ++j) {
        launch((base + j) % senders, shard, Chain{});
      }
      break;
    }
    case Pattern::kAllreduceRing: {
      // Ring allreduce: 2(M-1) size/M chunks arrive sequentially from
      // the ring predecessor -- a latency-bound dependency chain.
      const Bytes total = size_dist_.sample(rng_);
      const Bytes chunk(std::max<std::int64_t>(1, total.count() / senders));
      const int steps = std::max(1, 2 * (senders - 1));
      Chain chain;
      chain.total = static_cast<std::int16_t>(std::min(steps, 32767));
      chain.remaining = static_cast<std::int16_t>(chain.total - 1);
      chain.step = 0;
      chain.step_size = chunk;
      launch(chain_sender(0), chunk, chain);
      break;
    }
    case Pattern::kAllreduceTree: {
      // Tree allreduce: reduce up + broadcast down, one full-size
      // transfer per round from alternating tree peers.
      const Bytes total = size_dist_.sample(rng_);
      const int steps = 2 * tree_rounds_;
      Chain chain;
      chain.total = static_cast<std::int16_t>(std::min(steps, 32767));
      chain.remaining = static_cast<std::int16_t>(chain.total - 1);
      chain.step = 0;
      chain.step_size = total;
      launch(chain_sender(0), total, chain);
      break;
    }
  }
  schedule_next();
}

int WorkloadEngine::chain_sender(int step) const {
  if (params_.pattern == Pattern::kAllreduceRing) {
    // The ring predecessor is fixed per receiver.
    return w_.receiver_index % w_.num_senders;
  }
  // Tree peers at distance 2^round.
  const int round = step % tree_rounds_;
  return (w_.receiver_index + (1 << round)) % w_.num_senders;
}

void WorkloadEngine::launch(int sender, Bytes size, Chain chain) {
  const FlowHandle h = pool_.acquire(sender);
  if (!h.valid()) {
    // Overload: the pool bounds active flows (and memory); arrivals
    // beyond it are dropped and counted, like an app-level admission
    // queue overflowing. A dropped collective step drops its chain.
    ++window_.pool_exhausted;
    ++exhausted_total_;
    return;
  }
  handles_[static_cast<std::size_t>(h.slot)] = h;
  slot_size_[static_cast<std::size_t>(h.slot)] = size;
  chains_[static_cast<std::size_t>(h.slot)] = chain;
  ++window_.flows_started;
  ++injected_total_;
  w_.receiver->issue_open_read(h.slot, size);
}

double WorkloadEngine::ideal_fct_us(Bytes size) const {
  return base_rtt_us_ + static_cast<double>(size.count()) * us_per_byte_;
}

void WorkloadEngine::on_complete(std::int32_t slot, TimePs issued_at) {
  const FlowHandle h = handles_[static_cast<std::size_t>(slot)];
  if (!pool_.live(h)) return;  // stale completion for a recycled slot
  const Bytes size = slot_size_[static_cast<std::size_t>(slot)];
  const Chain chain = chains_[static_cast<std::size_t>(slot)];
  const double fct_us = (w_.sim->now() - issued_at).us();
  fct_us_.add(fct_us);
  slowdown_.add(fct_us / ideal_fct_us(size));
  pool_.release(h);
  handles_[static_cast<std::size_t>(slot)] = FlowHandle{};
  ++window_.flows_completed;
  ++completed_total_;
  if (chain.total == 0) return;
  if (chain.remaining > 0) {
    Chain next = chain;
    next.step = static_cast<std::int16_t>(chain.step + 1);
    next.remaining = static_cast<std::int16_t>(chain.remaining - 1);
    launch(chain_sender(next.step), next.step_size, next);
    return;
  }
  ++window_.collectives_completed;
  ++collectives_total_;
}

}  // namespace hicc::workload
