// hicc-lint: hotpath
//
// Sampling machinery of the open-loop workload: flow-size
// distributions (fixed, web-search CDF, Hadoop-style CDF) and arrival
// processes (Poisson, two-state bursty). Both sample in O(table size)
// with zero allocation; all randomness flows through the caller's Rng
// so runs stay bitwise deterministic (docs/WORKLOADS.md).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "workload/workload.h"

namespace hicc::workload {

/// One knot of an empirical flow-size CDF.
struct SizeKnot {
  double bytes;
  double cdf;
};

/// Inverse-transform sampler over an empirical flow-size CDF (or the
/// degenerate fixed-size distribution).
class FlowSizeDist {
 public:
  FlowSizeDist(SizeDist dist, Bytes fixed_size);

  /// One flow size; log-linear interpolation between CDF knots.
  [[nodiscard]] Bytes sample(Rng& rng) const;

  /// Mean of the distribution (for offered-load math).
  [[nodiscard]] double mean_bytes() const { return mean_bytes_; }

 private:
  SizeDist dist_;
  Bytes fixed_;
  const SizeKnot* table_ = nullptr;
  int table_size_ = 0;
  double mean_bytes_ = 0.0;
};

/// Open-loop inter-arrival gap generator. Poisson draws exponential
/// gaps at the configured rate; bursty is a two-state Markov-modulated
/// Poisson process whose on-state rate is `burst_factor` times the
/// mean, with exponentially distributed state dwell times -- the
/// long-run mean rate equals `rate_per_s` in both modes.
class ArrivalProcess {
 public:
  ArrivalProcess(const WorkloadParams& params, Rng rng);

  /// Gap to the next arrival from "now". Never returns a zero/negative
  /// gap (floor 1ps) so the arrival loop always advances time.
  [[nodiscard]] TimePs next_gap();

 private:
  Arrival kind_;
  double on_rate_per_ps_;
  double off_rate_per_ps_;
  double mean_on_ps_;
  double mean_off_ps_;
  bool on_ = true;
  /// Time left in the current on/off state, consumed by next_gap().
  double state_left_ps_ = 0.0;
  Rng rng_;
};

}  // namespace hicc::workload
