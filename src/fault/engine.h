// Fault-injection engine: executes a FaultScript against the live
// device models of one experiment.
//
// The engine is constructed after the rest of the system is wired (it
// is the last component the Experiment builds, and forks the
// experiment RNG last) so that a run whose script never fires is
// event-for-event identical to a run without any engine at all --
// tests/fault_test.cpp pins this down bitwise. All injection happens
// through small mutator hooks on the device models (QueuedLink,
// PcieBus, Nic, Iommu, DdioModel, RxThread, ReceiverHost,
// StreamAntagonist); the engine owns no model state beyond what it
// needs to restore on window end.
//
// Accounting: the engine tracks the union of active fault windows
// (`fault_active_us`), NIC drops that land inside them
// (`fault_drops`), and "blind time" -- active time during which drops
// were actually occurring, i.e. the spans where congestion control is
// flying blind on a host-side disturbance (`fault_blind_us`).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "fault/script.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace hicc::net {
class ClosFabric;
class Fabric;
class QueuedLink;
}  // namespace hicc::net
namespace hicc::host {
class ReceiverHost;
}
namespace hicc::mem {
class StreamAntagonist;
}

namespace hicc::fault {

/// The device models a script may perturb. The receiver gives access
/// to NIC / PCIe / IOMMU / DDIO / rx threads / flows; null targets
/// disable the injectors that need them (validation catches scripts
/// that would hit a null target before a run starts).
struct FaultTargets {
  net::Fabric* fabric = nullptr;
  /// Clos topology runs set this instead of `fabric`; net.* events may
  /// then target a leaf-spine link (`leaf=`+`spine=`) or a host uplink
  /// (`host=`), defaulting to receiver 0's downlink port.
  net::ClosFabric* clos = nullptr;
  host::ReceiverHost* receiver = nullptr;
  mem::StreamAntagonist* antagonist = nullptr;
};

/// Aggregate disturbance accounting for Metrics.
struct FaultReport {
  /// Fault-window activations (repeating windows count each firing).
  std::int64_t windows = 0;
  /// NIC buffer drops that occurred while any fault was active.
  std::int64_t drops = 0;
  /// Union of active fault windows, microseconds.
  double active_us = 0.0;
  /// Active time during which drops were occurring, microseconds.
  double blind_us = 0.0;
};

/// Schedules and executes a FaultScript on the simulation event loop.
class FaultEngine {
 public:
  /// Schedules every script entry immediately (times are relative to
  /// simulator time zero). `tracer`, when non-null, registers the
  /// `fault.*` probes -- `fault.active`, `fault.activations`, and one
  /// per-kind activity gauge for each kind the script uses.
  FaultEngine(sim::Simulator& sim, FaultScript script, FaultTargets targets, Rng rng,
              trace::Tracer* tracer = nullptr);

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// Faults currently holding their window open.
  [[nodiscard]] int active_count() const { return active_count_; }
  /// Total window activations so far.
  [[nodiscard]] std::int64_t activations() const { return activations_; }
  [[nodiscard]] const FaultScript& script() const { return script_; }

  /// Accounting snapshot; includes still-open windows up to now().
  [[nodiscard]] FaultReport report() const;

 private:
  /// Per-script-entry runtime state.
  struct Active {
    bool active = false;
    BitRate saved_rate{};        // net.rate restore value
    int saved_int = 0;           // antagonist cores / ddio ways restore
    sim::PeriodicTask ticker;    // iommu.storm invalidation driver
  };

  void activate(std::size_t idx);
  void deactivate(std::size_t idx);
  void apply(std::size_t idx);
  void revert(std::size_t idx);
  void monitor_tick();
  [[nodiscard]] net::QueuedLink* link_of(const FaultEvent& e) const;
  [[nodiscard]] std::int64_t nic_drops() const;
  [[nodiscard]] int active_of_kind(FaultKind kind) const;

  sim::Simulator& sim_;
  FaultScript script_;
  FaultTargets targets_;
  Rng rng_;
  std::vector<Active> states_;

  int active_count_ = 0;
  std::int64_t activations_ = 0;
  /// Runs only while a window is open (so idle scripts stay invisible
  /// to the event stream); samples drop deltas for blind-time.
  sim::PeriodicTask monitor_;
  TimePs active_since_{};
  std::int64_t drops_at_union_start_ = 0;
  std::int64_t drops_at_last_tick_ = 0;
  FaultReport report_;
};

}  // namespace hicc::fault
