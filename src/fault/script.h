// Fault scripts: declarative, deterministic mid-run disturbance plans.
//
// A FaultScript is a list of timed events, each naming an injector kind
// plus parameters. Scripts are data only -- this header depends on
// nothing but common/ so core/config.h can embed one; the engine that
// executes scripts against live device models lives in fault/engine.h.
//
// Spec grammar (the `--faults` CLI flag and sweep JSON use this form):
//
//   script   := entry (';' entry)*
//   entry    := kind '@' time ['+' time] ['/' time] (',' key '=' value)*
//   time     := number ['us' | 'ms' | 's' | 'ns']     (bare number = us)
//
// `@t` is the activation instant, `+d` an optional window duration
// (omitted or 0 = permanent), `/p` an optional repeat period. Example:
//
//   mem.antagonist@5ms+2ms/10ms,cores=8;net.rate@12ms+1ms,link=access,gbps=25
//
// ramps 8 antagonist cores for 2ms every 10ms starting at 5ms, and
// downgrades the access link to 25 Gbps for 1ms at 12ms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace hicc::fault {

/// Injector catalog. Each kind perturbs exactly one layer; the mapping
/// to device-model hooks is documented in docs/FAULTS.md.
enum class FaultKind : std::uint8_t {
  kNetLinkDown,      // net.link_down: link drops every packet
  kNetRate,          // net.rate: link rate downgrade (gbps=)
  kNetLoss,          // net.loss: random loss window (prob=)
  kNicCreditStall,   // nic.credit_stall: PCIe posted credits frozen
  kNicBufferSqueeze, // nic.buffer_squeeze: NIC buffer limit (kb=)
  kIommuStorm,       // iommu.storm: random IOTLB invalidations (per_us=)
  kMemAntagonist,    // mem.antagonist: antagonist core ramp (cores=)
  kMemDdioSqueeze,   // mem.ddio_squeeze: DDIO way reduction (ways=)
  kHostDeschedule,   // host.deschedule: rx threads stop running (threads=)
  kTransportChurn,   // transport.churn: victim flows pause (flows=)
};

/// Canonical spec name ("mem.antagonist", ...).
std::string_view to_string(FaultKind kind);

/// One scripted disturbance.
struct FaultEvent {
  FaultKind kind = FaultKind::kMemAntagonist;
  /// Activation time, measured from the start of the run.
  TimePs at{};
  /// Window length; 0 means the fault persists to the end of the run.
  TimePs duration{};
  /// Repeat period; 0 means one-shot. Must exceed `duration` when set.
  TimePs period{};
  /// Kind-specific knobs (see docs/FAULTS.md for the per-kind keys).
  std::map<std::string, double> params;

  bool operator==(const FaultEvent&) const = default;
};

/// A whole scenario. Order does not matter; the engine schedules every
/// entry up front and the Simulator's time ordering takes over.
struct FaultScript {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  bool operator==(const FaultScript&) const = default;

  /// Renders the script back into spec-grammar form (round-trips
  /// through parse_script); used to record scenarios in sweep JSON.
  [[nodiscard]] std::string to_spec() const;
};

/// Parse outcome: a script plus every problem found. The script is only
/// meaningful when `errors` is empty -- parsing keeps going after an
/// error so a user sees all mistakes at once.
struct ParseResult {
  FaultScript script;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parses the spec grammar above. Never throws; all syntax problems are
/// aggregated into ParseResult::errors with entry positions.
ParseResult parse_script(std::string_view spec);

}  // namespace hicc::fault
