#include "fault/script.h"

#include <array>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/fmt.h"

namespace hicc::fault {
namespace {

constexpr std::array<std::pair<std::string_view, FaultKind>, 10> kKindNames = {{
    {"net.link_down", FaultKind::kNetLinkDown},
    {"net.rate", FaultKind::kNetRate},
    {"net.loss", FaultKind::kNetLoss},
    {"nic.credit_stall", FaultKind::kNicCreditStall},
    {"nic.buffer_squeeze", FaultKind::kNicBufferSqueeze},
    {"iommu.storm", FaultKind::kIommuStorm},
    {"mem.antagonist", FaultKind::kMemAntagonist},
    {"mem.ddio_squeeze", FaultKind::kMemDdioSqueeze},
    {"host.deschedule", FaultKind::kHostDeschedule},
    {"transport.churn", FaultKind::kTransportChurn},
}};

bool lookup_kind(std::string_view name, FaultKind* out) {
  for (const auto& [spec, kind] : kKindNames) {
    if (spec == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Parses "12", "12us", "3.5ms", "2s", "40ns" into a TimePs.
bool parse_time(std::string_view text, TimePs* out) {
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return false;
  const std::string_view unit = trim(std::string_view(end));
  if (unit.empty() || unit == "us") {
    *out = TimePs::from_us(v);
  } else if (unit == "ms") {
    *out = TimePs::from_ms(v);
  } else if (unit == "s") {
    *out = TimePs::from_sec(v);
  } else if (unit == "ns") {
    *out = TimePs::from_ns(v);
  } else {
    return false;
  }
  return true;
}

void put_time(std::ostream& os, TimePs t) {
  // Emit in the largest unit that keeps the value integral in ps terms,
  // preferring us (the grammar's default unit).
  const std::int64_t ps = t.ps();
  if (ps % 1'000'000 == 0) {
    os << ps / 1'000'000 << "us";
  } else if (ps % 1'000 == 0) {
    os << ps / 1'000 << "ns";
  } else {
    put_double(os, t.us());
    os << "us";
  }
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  for (const auto& [spec, k] : kKindNames) {
    if (k == kind) return spec;
  }
  return "unknown";
}

std::string FaultScript::to_spec() const {
  std::ostringstream os;
  bool first_event = true;
  for (const FaultEvent& e : events) {
    if (!first_event) os << ';';
    first_event = false;
    os << to_string(e.kind) << '@';
    put_time(os, e.at);
    if (e.duration != TimePs{}) {
      os << '+';
      put_time(os, e.duration);
    }
    if (e.period != TimePs{}) {
      os << '/';
      put_time(os, e.period);
    }
    for (const auto& [key, value] : e.params) {
      os << ',' << key << '=';
      put_double(os, value);
    }
  }
  return os.str();
}

ParseResult parse_script(std::string_view spec) {
  ParseResult result;
  int index = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t sep = spec.find(';', pos);
    std::string_view entry =
        trim(spec.substr(pos, sep == std::string_view::npos ? sep : sep - pos));
    pos = sep == std::string_view::npos ? spec.size() + 1 : sep + 1;
    if (entry.empty()) continue;  // tolerate empty segments / trailing ';'
    ++index;
    const std::string where = "entry " + std::to_string(index) + " ('" + std::string(entry) + "')";

    FaultEvent ev;
    // Split off the comma-separated params; head is kind@times.
    std::string_view head = entry;
    std::string_view rest;
    if (const std::size_t comma = entry.find(','); comma != std::string_view::npos) {
      head = entry.substr(0, comma);
      rest = entry.substr(comma + 1);
    }

    const std::size_t at_pos = head.find('@');
    if (at_pos == std::string_view::npos) {
      result.errors.push_back(where + ": missing '@<time>' (grammar: kind@t[+dur][/period])");
      continue;
    }
    const std::string_view kind_name = trim(head.substr(0, at_pos));
    if (!lookup_kind(kind_name, &ev.kind)) {
      std::string known;
      for (const auto& [spec_name, _] : kKindNames) {
        if (!known.empty()) known += ", ";
        known += spec_name;
      }
      result.errors.push_back(where + ": unknown fault kind '" + std::string(kind_name) +
                              "' (known: " + known + ")");
      continue;
    }

    // times := at ['+' duration] ['/' period]
    std::string_view times = head.substr(at_pos + 1);
    std::string_view period_text;
    std::string_view duration_text;
    if (const std::size_t slash = times.find('/'); slash != std::string_view::npos) {
      period_text = times.substr(slash + 1);
      times = times.substr(0, slash);
    }
    if (const std::size_t plus = times.find('+'); plus != std::string_view::npos) {
      duration_text = times.substr(plus + 1);
      times = times.substr(0, plus);
    }
    bool entry_ok = true;
    if (!parse_time(trim(times), &ev.at)) {
      result.errors.push_back(where + ": bad activation time '" + std::string(trim(times)) +
                              "' (want number with optional ns/us/ms/s suffix)");
      entry_ok = false;
    }
    if (!duration_text.empty() && !parse_time(trim(duration_text), &ev.duration)) {
      result.errors.push_back(where + ": bad duration '" + std::string(trim(duration_text)) + "'");
      entry_ok = false;
    }
    if (!period_text.empty() && !parse_time(trim(period_text), &ev.period)) {
      result.errors.push_back(where + ": bad period '" + std::string(trim(period_text)) + "'");
      entry_ok = false;
    }

    // key=value params; `link=access` is sugar for link=-1.
    while (!rest.empty()) {
      std::string_view kv = rest;
      if (const std::size_t comma = rest.find(','); comma != std::string_view::npos) {
        kv = rest.substr(0, comma);
        rest = rest.substr(comma + 1);
      } else {
        rest = {};
      }
      kv = trim(kv);
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        result.errors.push_back(where + ": parameter '" + std::string(kv) +
                                "' is not of the form key=value");
        entry_ok = false;
        continue;
      }
      const std::string key(trim(kv.substr(0, eq)));
      const std::string_view value_text = trim(kv.substr(eq + 1));
      double value = 0.0;
      if (key == "link" && value_text == "access") {
        value = -1.0;
      } else {
        const std::string buf(value_text);
        char* end = nullptr;
        value = std::strtod(buf.c_str(), &end);
        if (end == buf.c_str() || trim(std::string_view(end)) != "") {
          result.errors.push_back(where + ": parameter '" + key + "' has non-numeric value '" +
                                  std::string(value_text) + "'");
          entry_ok = false;
          continue;
        }
      }
      if (!ev.params.emplace(key, value).second) {
        result.errors.push_back(where + ": duplicate parameter '" + key + "'");
        entry_ok = false;
      }
    }

    if (entry_ok) result.script.events.push_back(std::move(ev));
  }
  return result;
}

}  // namespace hicc::fault
