#include "fault/engine.h"

#include <algorithm>
#include <string>
#include <utility>

// The next four headers never have their type names spelled here --
// the fault engine reaches ReceiverHost / StreamAntagonist / Fabric /
// ClosFabric only through FaultTargets pointers -- but dereferencing
// those pointers needs the complete types.
// hicc-lint: allow(ana-include-unused) -- complete type for FaultTargets::hosts[i]->
#include "host/receiver_host.h"
// hicc-lint: allow(ana-include-unused) -- complete type for FaultTargets::antagonist->
#include "mem/stream_antagonist.h"
// hicc-lint: allow(ana-include-unused) -- complete type for FaultTargets::fabric->
#include "net/fabric.h"
#include "net/link.h"
// hicc-lint: allow(ana-include-unused) -- complete type for FaultTargets::clos->
#include "net/topology.h"

namespace hicc::fault {
namespace {

/// Blind-time sampling resolution; matches the default trace tick so
/// fault windows and probe series line up.
constexpr TimePs kMonitorPeriod = TimePs::from_us(5);

double param(const FaultEvent& e, const char* key, double def) {
  const auto it = e.params.find(key);
  return it == e.params.end() ? def : it->second;
}

std::string probe_name(FaultKind kind) {
  // "mem.antagonist" -> "fault.mem_antagonist": the Chrome exporter
  // groups tracks by first dotted segment, so all injectors share one
  // "fault" category.
  std::string name(to_string(kind));
  std::replace(name.begin(), name.end(), '.', '_');
  return "fault." + name;
}

}  // namespace

FaultEngine::FaultEngine(sim::Simulator& sim, FaultScript script, FaultTargets targets, Rng rng,
                         trace::Tracer* tracer)
    : sim_(sim), script_(std::move(script)), targets_(targets), rng_(rng) {
  states_.resize(script_.events.size());
  for (std::size_t i = 0; i < script_.events.size(); ++i) {
    sim_.at(script_.events[i].at, [this, i] { activate(i); });
  }
  if (tracer != nullptr && !script_.empty()) {
    tracer->gauge("fault.active", "faults",
                  [this] { return static_cast<double>(active_count_); });
    tracer->counter("fault.activations", "windows",
                    [this] { return static_cast<double>(activations_); });
    // One activity gauge per kind the script uses (get-or-create, so
    // multiple entries of one kind share the series).
    for (const FaultEvent& e : script_.events) {
      const FaultKind kind = e.kind;
      // hicc-lint: allow(docs-probe-dynamic) -- fault.<kind> names are
      // cataloged in docs/FAULTS.md; the unconditional 34-probe catalog
      // check stays literal.
      tracer->gauge(probe_name(kind), "faults",
                    [this, kind] { return static_cast<double>(active_of_kind(kind)); });
    }
  }
}

std::int64_t FaultEngine::nic_drops() const {
  return targets_.receiver != nullptr ? targets_.receiver->nic().stats().buffer_drops : 0;
}

int FaultEngine::active_of_kind(FaultKind kind) const {
  int n = 0;
  for (std::size_t i = 0; i < script_.events.size(); ++i) {
    if (script_.events[i].kind == kind && states_[i].active) ++n;
  }
  return n;
}

net::QueuedLink* FaultEngine::link_of(const FaultEvent& e) const {
  if (targets_.clos != nullptr) {
    const auto& topo = targets_.clos->config();
    const int leaf = static_cast<int>(param(e, "leaf", -1.0));
    const int spine = static_cast<int>(param(e, "spine", -1.0));
    if (leaf >= 0 && spine >= 0) {
      if (leaf >= topo.leaves || spine >= topo.spines) return nullptr;
      return &targets_.clos->leaf_uplink(leaf, spine);
    }
    const int host = static_cast<int>(param(e, "host", -1.0));
    if (host >= 0) {
      if (host >= topo.num_hosts()) return nullptr;
      return &targets_.clos->host_uplink(host);
    }
    // Default: the hot port of the incast -- receiver 0's downlink,
    // the access-link analog of the legacy fabric.
    return &targets_.clos->host_downlink(0);
  }
  if (targets_.fabric == nullptr) return nullptr;
  const int link = static_cast<int>(param(e, "link", -1.0));
  if (link < 0) return &targets_.fabric->access_link();
  if (link >= targets_.fabric->num_uplinks()) return nullptr;
  return &targets_.fabric->uplink(link);
}

void FaultEngine::activate(std::size_t idx) {
  const FaultEvent& e = script_.events[idx];
  Active& a = states_[idx];
  if (!a.active) {
    a.active = true;
    ++activations_;
    if (active_count_++ == 0) {
      active_since_ = sim_.now();
      drops_at_union_start_ = nic_drops();
      drops_at_last_tick_ = drops_at_union_start_;
      monitor_ = sim::PeriodicTask(sim_, kMonitorPeriod, [this] { monitor_tick(); });
    }
    apply(idx);
  }
  if (e.duration != TimePs{}) {
    sim_.after(e.duration, [this, idx] { deactivate(idx); });
  }
  if (e.period != TimePs{}) {
    sim_.after(e.period, [this, idx] { activate(idx); });
  }
}

void FaultEngine::deactivate(std::size_t idx) {
  Active& a = states_[idx];
  if (!a.active) return;
  a.active = false;
  revert(idx);
  if (--active_count_ == 0) {
    report_.active_us += (sim_.now() - active_since_).us();
    report_.drops += nic_drops() - drops_at_union_start_;
    monitor_.stop();
  }
}

void FaultEngine::monitor_tick() {
  const std::int64_t drops = nic_drops();
  if (drops > drops_at_last_tick_) report_.blind_us += kMonitorPeriod.us();
  drops_at_last_tick_ = drops;
}

FaultReport FaultEngine::report() const {
  FaultReport r = report_;
  r.windows = activations_;
  if (active_count_ > 0) {
    // Windows still open (permanent faults, or a window spanning the
    // end of the run) are counted up to the current instant.
    r.active_us += (sim_.now() - active_since_).us();
    r.drops += nic_drops() - drops_at_union_start_;
  }
  return r;
}

void FaultEngine::apply(std::size_t idx) {
  const FaultEvent& e = script_.events[idx];
  Active& a = states_[idx];
  switch (e.kind) {
    case FaultKind::kNetLinkDown:
      if (net::QueuedLink* link = link_of(e)) link->set_down(true);
      break;
    case FaultKind::kNetRate:
      if (net::QueuedLink* link = link_of(e)) {
        a.saved_rate = link->rate();
        link->set_rate(BitRate::gbps(param(e, "gbps", 10.0)));
      }
      break;
    case FaultKind::kNetLoss:
      if (net::QueuedLink* link = link_of(e)) link->set_loss(param(e, "prob", 0.1), &rng_);
      break;
    case FaultKind::kNicCreditStall:
      if (targets_.receiver != nullptr) targets_.receiver->pcie().set_credit_freeze(true);
      break;
    case FaultKind::kNicBufferSqueeze:
      if (targets_.receiver != nullptr) {
        targets_.receiver->nic().set_buffer_limit(Bytes::kib(param(e, "kb", 64.0)));
      }
      break;
    case FaultKind::kIommuStorm:
      if (targets_.receiver != nullptr) {
        const double per_us = param(e, "per_us", 1.0);
        a.ticker = sim::PeriodicTask(
            sim_, TimePs::from_us(per_us > 0.0 ? 1.0 / per_us : 1.0), [this] {
              (void)targets_.receiver->iommu().invalidate_random_page(rng_);
            });
      }
      break;
    case FaultKind::kMemAntagonist:
      if (targets_.antagonist != nullptr) {
        a.saved_int = targets_.antagonist->cores();
        targets_.antagonist->set_cores(static_cast<int>(param(e, "cores", 8.0)));
      }
      break;
    case FaultKind::kMemDdioSqueeze:
      if (targets_.receiver != nullptr) {
        a.saved_int = targets_.receiver->ddio().params().ddio_ways;
        targets_.receiver->ddio().set_ddio_ways(static_cast<int>(param(e, "ways", 1.0)));
      }
      break;
    case FaultKind::kHostDeschedule:
      if (targets_.receiver != nullptr) {
        targets_.receiver->set_threads_descheduled(static_cast<int>(param(e, "threads", 1.0)),
                                                   true);
      }
      break;
    case FaultKind::kTransportChurn:
      if (targets_.receiver != nullptr) {
        // Pause the highest-numbered flows: victims are laid out after
        // the bulk flows, so churn hits them first ("victims leaving").
        const int total = targets_.receiver->num_flows();
        const int n = std::min(total, static_cast<int>(param(e, "flows", 1.0)));
        for (int f = total - n; f < total; ++f) {
          targets_.receiver->set_flow_paused(f, true);
        }
      }
      break;
  }
}

void FaultEngine::revert(std::size_t idx) {
  const FaultEvent& e = script_.events[idx];
  Active& a = states_[idx];
  switch (e.kind) {
    case FaultKind::kNetLinkDown:
      if (net::QueuedLink* link = link_of(e)) link->set_down(false);
      break;
    case FaultKind::kNetRate:
      if (net::QueuedLink* link = link_of(e)) link->set_rate(a.saved_rate);
      break;
    case FaultKind::kNetLoss:
      if (net::QueuedLink* link = link_of(e)) link->set_loss(0.0, nullptr);
      break;
    case FaultKind::kNicCreditStall:
      if (targets_.receiver != nullptr) targets_.receiver->pcie().set_credit_freeze(false);
      break;
    case FaultKind::kNicBufferSqueeze:
      if (targets_.receiver != nullptr) targets_.receiver->nic().set_buffer_limit(Bytes(0));
      break;
    case FaultKind::kIommuStorm:
      a.ticker = sim::PeriodicTask{};
      break;
    case FaultKind::kMemAntagonist:
      if (targets_.antagonist != nullptr) targets_.antagonist->set_cores(a.saved_int);
      break;
    case FaultKind::kMemDdioSqueeze:
      if (targets_.receiver != nullptr) targets_.receiver->ddio().set_ddio_ways(a.saved_int);
      break;
    case FaultKind::kHostDeschedule:
      if (targets_.receiver != nullptr) {
        targets_.receiver->set_threads_descheduled(static_cast<int>(param(e, "threads", 1.0)),
                                                   false);
      }
      break;
    case FaultKind::kTransportChurn:
      if (targets_.receiver != nullptr) {
        const int total = targets_.receiver->num_flows();
        const int n = std::min(total, static_cast<int>(param(e, "flows", 1.0)));
        for (int f = total - n; f < total; ++f) {
          targets_.receiver->set_flow_paused(f, false);
        }
      }
      break;
  }
}

}  // namespace hicc::fault
