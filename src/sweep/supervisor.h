// Crash-isolated sweep supervision (docs/ROBUSTNESS.md).
//
// Supervisor runs each sweep point in its own worker subprocess
// (fork/exec of `worker_argv`, typically `hicc_cli --point-worker`):
// the point spec goes to the worker's stdin, the hicc.sweep.v1 record
// comes back on its stdout, and the parent enforces a per-point
// wall-clock timeout and a bounded retry budget with deterministic
// exponential backoff. A point that fails every attempt is *recorded*
// -- a synthesized element carrying the failure taxonomy
// (RunStatus::kCrashed / kTimedOut / kOomKilled / kRetriesExhausted
// plus a detail string) -- instead of aborting the sweep; all other
// points complete normally.
//
// With a journal_path, every finalized point is appended durably to a
// hicc.sweep.journal.v1 file as it completes; resume=true restores
// journaled points without re-running them. Because worker records pin
// wall_seconds to 0 and failure records are synthesized
// deterministically, the merged JSON of any interrupted-and-resumed
// sweep -- including kill -9 of the supervisor itself -- is bitwise
// identical to an uninterrupted run's.
//
// The in-process SweepRunner (sweep.h) remains the default sweep path;
// this layer is opt-in via `hicc_cli --isolate` or direct use.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "sweep/sweep.h"

namespace hicc::sweep {

/// Final state of one supervised point.
struct PointOutcome {
  std::size_t index = 0;
  /// The point's run_status: parsed from the worker's record when one
  /// exists (kOk, or a degraded in-run status like kEventBudget /
  /// kMailboxOverflow), else the supervisor's failure taxonomy.
  RunStatus status = RunStatus::kOk;
  std::string detail;       // one-line failure detail; "" when ok
  int attempts = 0;         // worker launches consumed (0 when from_journal)
  bool completed = false;   // a final record exists (ok or failure)
  bool from_journal = false;  // restored by resume, not re-run
  /// The point's hicc.sweep.v1 element bytes (",\n    "-joined when a
  /// cluster point emitted one element per receiver).
  std::string payload;
};

struct SupervisorOutcome {
  std::vector<PointOutcome> points;  // index order, one per input point
  bool interrupted = false;  // stop_flag fired; some points may be incomplete
  std::size_t completed = 0;
  /// Points that exhausted supervision (taxonomy statuses). Degraded
  /// in-run aborts (watchdog, mailbox overflow) count separately: the
  /// worker *did* report, so they are results, not supervision
  /// failures -- but hicc_cli still exits kExitAborted on them.
  std::size_t failures = 0;
  std::size_t degraded = 0;
  std::size_t resumed = 0;
  [[nodiscard]] bool all_ok() const {
    return !interrupted && failures == 0 && degraded == 0;
  }
};

struct SupervisorOptions {
  /// Timeout / retry / backoff / jobs knobs; rejected up front via
  /// validate(const SupervisorParams&).
  SupervisorParams params;
  /// argv of the worker process. worker_argv[0] is exec'd verbatim and
  /// must read a hicc.point.v1 spec on stdin and behave per
  /// run_point_worker() (hicc_cli --point-worker, or a test binary
  /// dispatching to itself).
  std::vector<std::string> worker_argv;
  /// Journal file ("" = none). With resume, it must already hold a
  /// hicc.sweep.journal.v1 header whose fingerprint matches the specs.
  std::string journal_path;
  bool resume = false;
  /// Polled between poll(2) wakeups; when it goes nonzero the
  /// supervisor SIGKILLs in-flight workers, keeps everything already
  /// journaled, and returns with interrupted=true (the CLI's
  /// SIGINT/SIGTERM handler sets it).
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  /// Fired once per finalized point (and once per resumed point up
  /// front), in completion order, from the supervisor thread.
  std::function<void(const SweepProgress&)> progress;
  /// Extra spec lines appended to point i's spec at every attempt --
  /// the failure-injection seam tests and CI use (`inject=...`).
  std::function<std::string(std::size_t)> decorate;
  /// Attempt-level notes ("point 3 attempt 1: crashed ..."); null = silent.
  std::ostream* log = nullptr;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions opts);

  /// Runs every point in a crash-isolated worker, like
  /// SweepRunner::run but degrading gracefully instead of throwing.
  /// Throws std::invalid_argument only for harness misuse: bad
  /// SupervisorParams, empty worker_argv, or an unusable/mismatched
  /// resume journal.
  [[nodiscard]] SupervisorOutcome run(const std::vector<ExperimentConfig>& points) const;

  /// Spec-level form: `specs[i]` is a complete hicc.point.v1 spec
  /// (point_spec / cluster_point_spec). run() delegates here.
  [[nodiscard]] SupervisorOutcome run_specs(const std::vector<std::string>& specs) const;

  /// Concurrent worker processes this supervisor resolved.
  [[nodiscard]] int jobs() const { return jobs_; }

 private:
  SupervisorOptions opts_;
  int jobs_;
};

/// Merges completed points (index order) into a hicc.sweep.v1 doc --
/// bitwise identical to write_json over the same results, which is the
/// resume guarantee. Incomplete points of an interrupted run are
/// omitted (that partial doc is still schema-valid).
void write_merged_json(const SupervisorOutcome& outcome, std::ostream& os);

/// Convenience: writes merged JSON to `path`; false on I/O failure.
[[nodiscard]] bool save_merged_json(const SupervisorOutcome& outcome,
                                    const std::string& path);

}  // namespace hicc::sweep
