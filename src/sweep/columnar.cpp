#include "sweep/columnar.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/fmt.h"

namespace hicc::sweep {

void ColumnarTable::add_row(const std::map<std::string, double>& row) {
  for (const auto& [key, value] : row) {
    auto [it, inserted] = columns_.try_emplace(key);
    if (inserted) it->second.assign(rows_, 0.0);  // backfill earlier rows
    it->second.push_back(value);
  }
  ++rows_;
  // Fields absent from this row get an explicit 0.0 so every column
  // stays rectangular.
  for (auto& [key, column] : columns_) {
    if (column.size() < rows_) column.push_back(0.0);
  }
}

std::vector<std::string> ColumnarTable::fields() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [key, column] : columns_) names.push_back(key);
  return names;
}

const std::vector<double>& ColumnarTable::column(const std::string& field) const {
  static const std::vector<double> kEmpty;
  const auto it = columns_.find(field);
  return it != columns_.end() ? it->second : kEmpty;
}

void ColumnarTable::write(std::ostream& os) const {
  os << "{\n  \"schema\": \"hicc.sweepc.v1\",\n  \"points\": " << rows_
     << ",\n  \"fields\": [";
  bool first = true;
  for (const auto& [key, column] : columns_) {
    os << (first ? "" : ", ") << '"' << key << '"';
    first = false;
  }
  os << "],\n  \"columns\": {";
  first = true;
  for (const auto& [key, column] : columns_) {
    os << (first ? "\n" : ",\n") << "    \"" << key << "\": [";
    first = false;
    for (std::size_t i = 0; i < column.size(); ++i) {
      if (i != 0) os << ", ";
      put_double(os, column[i]);
    }
    os << "]";
  }
  os << (columns_.empty() ? "" : "\n  ") << "}\n}\n";
}

bool ColumnarTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

namespace {

/// Minimal tokenizer for the exact grammar write() emits (a strict
/// subset of JSON: string keys, double values, flat arrays).
class Lexer {
 public:
  explicit Lexer(std::istream& is) : is_(is) {}

  bool expect(char c) {
    skip_ws();
    return is_.get() == c;
  }
  bool peek_is(char c) {
    skip_ws();
    return is_.peek() == c;
  }
  bool string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    for (int c = is_.get(); c != '"'; c = is_.get()) {
      if (c == EOF || c == '\\') return false;  // write() never escapes
      out->push_back(static_cast<char>(c));
    }
    return true;
  }
  bool number(double* out) {
    skip_ws();
    return static_cast<bool>(is_ >> *out);
  }

 private:
  void skip_ws() {
    while (std::isspace(is_.peek())) is_.get();
  }
  std::istream& is_;
};

}  // namespace

bool ColumnarTable::parse(std::istream& is, ColumnarTable* out) {
  Lexer lex(is);
  std::string key;
  std::string schema;
  double points = 0.0;
  if (!lex.expect('{')) return false;
  if (!lex.string(&key) || key != "schema" || !lex.expect(':')) return false;
  if (!lex.string(&schema) || schema != "hicc.sweepc.v1") return false;
  if (!lex.expect(',') || !lex.string(&key) || key != "points" || !lex.expect(':')) return false;
  if (!lex.number(&points) || points < 0.0) return false;

  // The "fields" array is redundant with the "columns" keys; read and
  // remember it to cross-check.
  if (!lex.expect(',') || !lex.string(&key) || key != "fields" || !lex.expect(':')) return false;
  if (!lex.expect('[')) return false;
  std::vector<std::string> fields;
  if (!lex.peek_is(']')) {
    do {
      std::string name;
      if (!lex.string(&name)) return false;
      fields.push_back(std::move(name));
    } while (lex.peek_is(',') && lex.expect(','));
  }
  if (!lex.expect(']')) return false;

  if (!lex.expect(',') || !lex.string(&key) || key != "columns" || !lex.expect(':')) return false;
  if (!lex.expect('{')) return false;
  ColumnarTable table;
  table.rows_ = static_cast<std::size_t>(points);
  std::size_t parsed = 0;
  if (!table.columns_.empty()) return false;
  while (!lex.peek_is('}')) {
    if (parsed > 0 && !lex.expect(',')) return false;
    std::string name;
    if (!lex.string(&name) || !lex.expect(':') || !lex.expect('[')) return false;
    std::vector<double> column;
    column.reserve(table.rows_);
    if (!lex.peek_is(']')) {
      do {
        double v = 0.0;
        if (!lex.number(&v)) return false;
        column.push_back(v);
      } while (lex.peek_is(',') && lex.expect(','));
    }
    if (!lex.expect(']')) return false;
    if (column.size() != table.rows_) return false;
    table.columns_.emplace(std::move(name), std::move(column));
    ++parsed;
  }
  if (!lex.expect('}') || !lex.expect('}')) return false;
  if (parsed != fields.size()) return false;
  for (const std::string& f : fields) {
    if (table.columns_.find(f) == table.columns_.end()) return false;
  }
  *out = std::move(table);
  return true;
}

std::map<std::string, double> flatten(const SweepResult& r) {
  std::map<std::string, double> row;
  row["index"] = static_cast<double>(r.index);
  row["wall_seconds"] = r.wall_seconds;
  row["config.seed"] = static_cast<double>(r.config.seed);
  row["config.num_senders"] = static_cast<double>(r.config.num_senders);
  row["config.rx_threads"] = static_cast<double>(r.config.rx_threads);
  row["config.antagonist_cores"] = static_cast<double>(r.config.antagonist_cores);
  const Metrics& m = r.metrics;
  row["metrics.app_throughput_gbps"] = m.app_throughput_gbps;
  row["metrics.link_utilization"] = m.link_utilization;
  row["metrics.drop_rate"] = m.drop_rate;
  row["metrics.iotlb_misses_per_packet"] = m.iotlb_misses_per_packet;
  row["metrics.memory_total_gbytes_per_sec"] = m.memory.total_gbytes_per_sec;
  row["metrics.host_delay_p50_us"] = m.host_delay_p50_us;
  row["metrics.host_delay_p99_us"] = m.host_delay_p99_us;
  row["metrics.victim_read_p99_us"] = m.victim_read_p99_us;
  row["metrics.nic_buffer_drops"] = static_cast<double>(m.nic_buffer_drops);
  row["metrics.retransmits"] = static_cast<double>(m.retransmits);
  row["metrics.avg_cwnd"] = m.avg_cwnd;
  row["metrics.run_status"] = static_cast<double>(static_cast<int>(m.run_status));
  for (const auto& [key, value] : r.extra) row["extra." + key] = value;
  return row;
}

void write_columnar(const std::vector<SweepResult>& results, std::ostream& os) {
  ColumnarTable table;
  for (const SweepResult& r : results) table.add_row(flatten(r));
  table.write(os);
}

bool save_columnar(const std::vector<SweepResult>& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_columnar(results, out);
  return static_cast<bool>(out);
}

}  // namespace hicc::sweep
