// Worker half of the crash-isolated sweep (docs/ROBUSTNESS.md).
//
// The supervisor (sweep/supervisor.h) runs each sweep point in its own
// subprocess so a segfault, OOM kill, or wedge destroys one point, not
// the sweep. The contract between the two processes lives here:
//
//   - the parent writes a `hicc.point.v1` spec (one key=value per
//     line) to the worker's stdin and closes it;
//   - the worker runs the point and writes a complete `hicc.sweep.v1`
//     record to stdout (one element for a single-host point, one per
//     receiver for a cluster point), with `wall_seconds` pinned to 0
//     so worker records are bitwise deterministic;
//   - the exit code says how it went (ExitCode below -- the same codes
//     hicc_cli uses, asserted by CI).
//
// The spec covers exactly the config surface that hicc.sweep.v1
// records serialize (sweep.cpp write_config) plus run-control,
// watchdog, trace, and optional cluster-topology keys; a worker record
// therefore matches what the in-process SweepRunner would produce for
// the same point, byte for byte except wall_seconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/config.h"

namespace hicc::sweep {

/// Unified process exit codes, shared by hicc_cli and the point worker
/// and documented in docs/ROBUSTNESS.md. CI smoke jobs assert them.
enum ExitCode : int {
  kExitOk = 0,
  kExitUsage = 1,          // bad flags / file I/O failure
  kExitConfigInvalid = 2,  // validate() rejected the configuration
  kExitFaultParse = 3,     // fault-script or point-spec parse error
  kExitAborted = 4,        // run completed degraded: run_status != ok
  kExitGiveUp = 5,         // supervisor: >= 1 point failed every attempt
  kExitInterrupted = 6,    // SIGINT/SIGTERM: partial results were flushed
  kExitExecFailed = 127,   // supervisor child: exec of the worker failed
};

/// A parsed `hicc.point.v1` spec: the per-host config plus either
/// nothing more (single-host point) or the cluster-run shape.
struct PointSpec {
  /// Index the record's element(s) carry (`index` for a single-host
  /// point, `index + r` for cluster receiver r).
  std::size_t index = 0;
  /// Which attempt this is (1-based); the supervisor appends an
  /// `attempt=` line per launch so deterministic flaky injections can
  /// succeed on retry.
  int attempt = 1;
  /// Test-only failure injection, applied before the run: "segv",
  /// "abort", "kill", "hang", "exit:N", or "flaky-segv:K" /
  /// "flaky-kill:K" (fail while attempt < K). Empty = none.
  std::string inject;

  ExperimentConfig host;

  /// True when the spec carried a `topology=` key: the point is a
  /// ClusterExperiment emitting one element per receiver.
  bool is_cluster = false;
  int leaves = 1;
  int spines = 1;
  int hosts = 2;  // total hosts, must divide evenly across leaves
  int receivers = 1;
  std::uint64_t ecmp_seed = 1;
  double host_gbps = 100.0;
  double fabric_gbps = 100.0;
  bool full_hosts = true;
  int parallelism = 0;
  std::size_t mailbox_capacity = 0;

  /// Assembles the ClusterConfig a cluster spec describes. Tracing is
  /// forced off: cluster workers report metrics-only records.
  [[nodiscard]] ClusterConfig cluster() const;
};

/// Serializes a single-host point as a `hicc.point.v1` spec
/// (round-trips through parse_point_spec).
[[nodiscard]] std::string point_spec(const ExperimentConfig& cfg, std::size_t index);

/// Serializes a cluster point; `index` is the first receiver element's
/// index. `cfg.host.faults` is ignored (cluster scripts live in
/// `cfg.faults`), matching ClusterExperiment.
[[nodiscard]] std::string cluster_point_spec(const ClusterConfig& cfg, std::size_t index);

/// Result of parsing a spec: every problem found, not just the first.
struct SpecParse {
  PointSpec spec;
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};
[[nodiscard]] SpecParse parse_point_spec(const std::string& text);

/// The worker-process body behind `hicc_cli --point-worker`: reads one
/// spec from `in`, runs it, writes the `hicc.sweep.v1` record to `out`
/// and problems to `err`; the return value is the process exit code
/// (kExitOk / kExitConfigInvalid / kExitFaultParse / an injected
/// code). A degraded-but-finished run (watchdog abort, mailbox
/// overflow) still exits kExitOk -- its status travels inside the
/// record, and the supervisor does not retry it.
int run_point_worker(std::istream& in, std::ostream& out, std::ostream& err);

}  // namespace hicc::sweep
