#include "sweep/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hicc::sweep {
namespace {

constexpr char kMagic[] = "hicc.sweep.journal.v1";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Newlines inside a detail would tear the line-oriented framing.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

bool write_all(int fd, const std::string& bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses `key=<uint>` at the front of `rest`, advancing past it.
bool take_u64(std::string* rest, const char* key, std::uint64_t* out) {
  const std::string prefix = std::string(key) + "=";
  if (rest->rfind(prefix, 0) != 0) return false;
  const char* begin = rest->c_str() + prefix.size();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, 10);
  if (errno != 0 || end == begin || (*end != ' ' && *end != '\0')) return false;
  *out = v;
  rest->erase(0, static_cast<std::size_t>(end - rest->c_str()) + (*end == ' ' ? 1 : 0));
  return true;
}

/// Parses `key=<16 hex>` at the front of `rest`, advancing past it.
bool take_hex64(std::string* rest, const char* key, std::uint64_t* out) {
  const std::string prefix = std::string(key) + "=";
  if (rest->rfind(prefix, 0) != 0) return false;
  const char* begin = rest->c_str() + prefix.size();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(begin, &end, 16);
  if (errno != 0 || end != begin + 16 || (*end != ' ' && *end != '\0')) return false;
  *out = v;
  rest->erase(0, static_cast<std::size_t>(end - rest->c_str()) + (*end == ' ' ? 1 : 0));
  return true;
}

/// Parses `key=<label>` (no spaces in the label) at the front.
bool take_word(std::string* rest, const char* key, std::string* out) {
  const std::string prefix = std::string(key) + "=";
  if (rest->rfind(prefix, 0) != 0) return false;
  const std::size_t space = rest->find(' ', prefix.size());
  *out = rest->substr(prefix.size(),
                      space == std::string::npos ? std::string::npos : space - prefix.size());
  rest->erase(0, space == std::string::npos ? rest->size() : space + 1);
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool JournalWriter::open(const std::string& path, std::uint64_t fingerprint, bool resume) {
  close();
  const int flags = resume ? (O_WRONLY | O_APPEND) : (O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return false;
  if (!resume) {
    const std::string header = std::string(kMagic) + " fingerprint=" + hex16(fingerprint) + "\n";
    if (!write_all(fd_, header) || ::fdatasync(fd_) != 0) {
      close();
      return false;
    }
  }
  return true;
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::append(const JournalEntry& entry) {
  if (fd_ < 0) return false;
  std::ostringstream frame;
  frame << "point index=" << entry.index << " status=" << entry.status
        << " attempts=" << entry.attempts << " bytes=" << entry.payload.size()
        << " crc=" << hex16(fnv1a64(entry.payload)) << " detail=" << one_line(entry.detail)
        << '\n'
        << entry.payload << "\nend\n";
  // One write so a crash tears at most this frame; fdatasync so a
  // frame the parent saw complete survives the machine's page cache.
  return write_all(fd_, frame.str()) && ::fdatasync(fd_) == 0;
}

bool JournalWriter::note(std::size_t index, int attempt, const std::string& outcome,
                         const std::string& detail) {
  if (fd_ < 0) return false;
  std::ostringstream frame;
  frame << "note index=" << index << " attempt=" << attempt << " outcome=" << outcome
        << " detail=" << one_line(detail) << '\n';
  return write_all(fd_, frame.str());
}

JournalContents read_journal(const std::string& path) {
  JournalContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open journal";
    return out;
  }
  std::string line;
  if (!std::getline(in, line) || line.rfind(kMagic, 0) != 0) {
    out.error = "not a hicc.sweep.journal.v1 file";
    return out;
  }
  // Past "magic + space"; a bare-magic header fails the check below.
  std::string rest = line.size() >= sizeof(kMagic) ? line.substr(sizeof(kMagic)) : "";
  if (!take_hex64(&rest, "fingerprint", &out.fingerprint)) {
    out.error = "journal header carries no fingerprint";
    return out;
  }

  while (std::getline(in, line)) {
    if (line.rfind("note ", 0) == 0) continue;  // diagnostics only
    if (line.rfind("point ", 0) != 0) {
      // Torn note/frame-header tail from a crash mid-append.
      out.truncated = true;
      break;
    }
    rest = line.substr(6);
    JournalEntry e;
    std::uint64_t index = 0, attempts = 0, bytes = 0, crc = 0;
    if (!take_u64(&rest, "index", &index) || !take_word(&rest, "status", &e.status) ||
        !take_u64(&rest, "attempts", &attempts) || !take_u64(&rest, "bytes", &bytes) ||
        !take_hex64(&rest, "crc", &crc) || rest.rfind("detail=", 0) != 0) {
      out.truncated = true;
      break;
    }
    e.index = static_cast<std::size_t>(index);
    e.attempts = static_cast<int>(attempts);
    e.detail = rest.substr(7);

    e.payload.resize(static_cast<std::size_t>(bytes));
    in.read(e.payload.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::uint64_t>(in.gcount()) != bytes) {
      out.truncated = true;  // payload cut short by the crash
      break;
    }
    std::string after;  // the newline terminating the payload line
    if (!std::getline(in, after) || !after.empty() || !std::getline(in, after) ||
        after != "end") {
      out.truncated = true;
      break;
    }
    if (fnv1a64(e.payload) != crc) {
      out.truncated = true;  // bytes landed but are not what was meant
      break;
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

}  // namespace hicc::sweep
