// Across-run parallelism: each Simulator is single-threaded by design,
// so sweeps over many ExperimentConfig points are embarrassingly
// parallel. SweepRunner executes a vector of configuration points on a
// fixed-size thread pool and collects index-ordered results that are
// bitwise-identical to a serial run regardless of worker count or
// completion order:
//
//   std::vector<hicc::ExperimentConfig> points = ...;
//   hicc::sweep::SweepRunner runner;          // HICC_JOBS or hardware
//   const auto results = runner.run(points);  // results[i] <-> points[i]
//
// Determinism holds because every Experiment owns all of its state
// (there is no global mutable state anywhere in the engine) and each
// point's seed is fixed before any worker starts: either the seed the
// caller placed in the config, or -- with SweepOptions::reseed -- a
// seed derived from (sweep_seed, point_index) via derive_seed().
//
// This is the ACROSS-run half of the two-level threading budget; the
// WITHIN-run half is ClusterConfig::parallelism, which runs one cluster
// experiment's partitions on a ParallelEngine pool (sim/parallel.h,
// docs/PARALLELISM.md). The levels compose multiplicatively -- a sweep
// of parallel cluster points uses up to jobs x parallelism threads --
// so size $HICC_JOBS against the cores left over after the per-run
// engines take theirs. Both levels carry the same contract: thread
// count never changes results, only wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"

namespace hicc {
class Experiment;
namespace trace {
class Tracer;
}
}  // namespace hicc

namespace hicc::sweep {

/// Outcome of one sweep point: the config as executed (including any
/// derived seed), its measurement-window metrics, scalars harvested by
/// the probe callback, and the point's wall-clock duration.
struct SweepResult {
  std::size_t index = 0;
  ExperimentConfig config;
  Metrics metrics;
  std::map<std::string, double> extra;
  double wall_seconds = 0.0;
};

/// Snapshot passed to the progress callback after each point finishes.
struct SweepProgress {
  std::size_t completed = 0;     // points finished so far (including this one)
  std::size_t total = 0;         // points in the sweep
  std::size_t index = 0;         // the point that just finished
  double wall_seconds = 0.0;     // that point's duration
};

struct SweepOptions {
  /// Worker threads. <= 0 means: $HICC_JOBS if set and positive, else
  /// std::thread::hardware_concurrency().
  int jobs = 0;
  /// When true, every point's config.seed is overwritten with
  /// derive_seed(sweep_seed, index) before execution.
  bool reseed = false;
  std::uint64_t sweep_seed = 0;
  /// Called after each point completes. Serialized by the runner --
  /// the callback never runs concurrently with itself.
  std::function<void(const SweepProgress&)> progress;
  /// Called on the worker thread after a point's run() completes,
  /// while its Experiment is still alive -- use it to harvest
  /// subsystem counters that Metrics does not carry into
  /// SweepResult::extra. Must only touch the passed-in objects.
  std::function<void(Experiment&, SweepResult&)> probe;
};

/// Fixed-size thread-pool executor for experiment sweeps.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Executes every point and returns results in point order. If any
  /// point throws, the remaining queue is abandoned and the exception
  /// from the lowest-index failing point is rethrown.
  [[nodiscard]] std::vector<SweepResult> run(std::vector<ExperimentConfig> points) const;

  /// Worker count this runner resolved at construction.
  [[nodiscard]] int jobs() const { return jobs_; }

  /// Resolves a requested job count: positive values pass through;
  /// otherwise $HICC_JOBS, then hardware_concurrency(), floor 1.
  [[nodiscard]] static int resolve_jobs(int requested);

 private:
  SweepOptions opts_;
  int jobs_;
};

/// Ready-made SweepOptions::probe body: copies the final value of
/// every trace probe of the point's Tracer into SweepResult::extra as
/// `trace.<probe-name>` (no-op when the point ran with tracing
/// disabled). Lets a sweep carry end-of-run telemetry -- last buffer
/// level, total drops, RTT percentiles -- into the JSON output without
/// per-run trace files.
void harvest_trace(Experiment& exp, SweepResult& r);

/// Tracer-level form of harvest_trace for harnesses that are not an
/// Experiment (e.g. ClusterExperiment): copies every probe of
/// `tracer` into `r.extra` as `trace.<probe-name>`. No-op on nullptr.
/// (Distinct name so `probe = harvest_trace` stays unambiguous.)
void harvest_trace_probes(trace::Tracer* tracer, SweepResult& r);

/// Writes one point's JSON object element exactly as write_json emits
/// it inside the "points" array (4-space object indent, no leading
/// padding or separators). The supervisor's journal/merge path reuses
/// this, which is what makes a resumed sweep's merged output bitwise
/// identical to an uninterrupted write_json (docs/ROBUSTNESS.md).
void write_point(std::ostream& os, const SweepResult& r);

/// Writes results as structured JSON (schema "hicc.sweep.v1"): one
/// entry per point with config, metrics, extra, and wall_seconds --
/// the machine-diffable companion to the benches' CSV tables.
void write_json(const std::vector<SweepResult>& results, std::ostream& os);

/// Convenience: writes JSON to `path`, returning false on I/O failure.
[[nodiscard]] bool save_json(const std::vector<SweepResult>& results,
                             const std::string& path);

}  // namespace hicc::sweep
