// hicc.sweep.journal.v1 -- the crash-safe sweep journal
// (docs/ROBUSTNESS.md).
//
// The supervisor appends one durable frame per *finalized* point (ok
// or failure record) as it completes, so a sweep killed at any instant
// -- including kill -9 mid-append -- can resume from the journal and
// produce a merged JSON bitwise identical to an uninterrupted run.
// Format, all line-oriented:
//
//   hicc.sweep.journal.v1 fingerprint=<16-hex-digit sweep fingerprint>
//   note index=<i> attempt=<k> outcome=<label> detail=<rest of line>
//   point index=<i> status=<label> attempts=<k> bytes=<n> crc=<16 hex> detail=<rest>
//   <n payload bytes: the point's hicc.sweep.v1 element(s), verbatim>
//   end
//
// `note` frames are informational (failed attempts); `point` frames
// are the durable state. Each point frame is written with a single
// O_APPEND write followed by fdatasync, and carries its payload byte
// count plus an FNV-1a64 checksum, so the reader can detect and
// discard a torn tail frame without losing the frames before it. The
// fingerprint ties a journal to the exact sweep (specs) that wrote it;
// --resume refuses a mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hicc::sweep {

/// FNV-1a 64-bit over `bytes` -- stdlib-independent and stable across
/// platforms; checksums journal payloads and fingerprints sweeps.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

/// One journaled point: its position in the sweep, how it ended, and
/// the exact hicc.sweep.v1 element bytes the merged JSON reuses
/// verbatim on resume.
struct JournalEntry {
  std::size_t index = 0;
  std::string status;   // run_status label of the point's outcome
  int attempts = 1;     // worker launches the point consumed
  std::string detail;   // one-line failure detail; "" on ok
  std::string payload;  // element bytes (",\n    "-joined if several)
};

/// Everything read_journal() recovered.
struct JournalContents {
  std::uint64_t fingerprint = 0;
  /// In append order. A duplicate index means a frame was re-written
  /// (should not happen; last one wins downstream).
  std::vector<JournalEntry> entries;
  /// True when a torn/corrupt tail frame was discarded -- the normal
  /// aftermath of killing the sweep mid-append, not an error.
  bool truncated = false;
  /// Non-empty when the file is unusable (missing/foreign header);
  /// entries is empty then.
  std::string error;
};

/// Appending writer. Not thread-safe; the supervisor is the single
/// writer by construction.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// resume=false truncates `path` and writes a fresh header;
  /// resume=true opens an existing journal for appending (the caller
  /// has already read and fingerprint-checked it). False on I/O error.
  [[nodiscard]] bool open(const std::string& path, std::uint64_t fingerprint, bool resume);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Appends one durable point frame (single write + fdatasync).
  bool append(const JournalEntry& entry);
  /// Appends an informational failed-attempt note (not fsynced; notes
  /// are diagnostics, not state).
  bool note(std::size_t index, int attempt, const std::string& outcome,
            const std::string& detail);

 private:
  int fd_ = -1;
};

/// Reads a journal back, tolerating a torn tail (see JournalContents).
[[nodiscard]] JournalContents read_journal(const std::string& path);

}  // namespace hicc::sweep
