// Compact columnar sweep results (schema "hicc.sweepc.v1"), the
// column-oriented companion to write_json's "hicc.sweep.v1": one
// double array per field instead of one nested object per point, so a
// wide sweep (or a 1M-flow workload run reduced to sketch quantiles)
// serializes in kilobytes and loads into analysis tools as plain
// arrays. Scalars only by design -- sketches and histograms are
// reduced to their quantile views before they get here.
//
// Determinism contract: field order is sorted-by-name and values are
// written with put_double (shortest round-trip form), so the same
// results produce byte-identical files on every platform and for any
// sweep/cluster parallelism. parse() reads the format back
// (round-trip pinned by tests/workload_test.cpp).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace hicc::sweep {

/// A rows x fields table of doubles with sorted, stable field order.
class ColumnarTable {
 public:
  /// Appends one row. New fields are backfilled with 0.0 for earlier
  /// rows; fields absent from this row get 0.0.
  void add_row(const std::map<std::string, double>& row);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// Field names in serialization (sorted) order.
  [[nodiscard]] std::vector<std::string> fields() const;
  /// The column for `field`; empty vector if the field is unknown.
  [[nodiscard]] const std::vector<double>& column(const std::string& field) const;

  /// Writes the "hicc.sweepc.v1" JSON document.
  void write(std::ostream& os) const;
  [[nodiscard]] bool save(const std::string& path) const;

  /// Parses a document produced by write(); returns false (and leaves
  /// `out` unspecified) on malformed input or a wrong schema tag.
  [[nodiscard]] static bool parse(std::istream& is, ColumnarTable* out);

 private:
  std::map<std::string, std::vector<double>> columns_;
  std::size_t rows_ = 0;
};

/// Flattens one sweep point to the columnar scalar universe: index,
/// wall_seconds, seed, the headline metrics, and every `extra` probe.
[[nodiscard]] std::map<std::string, double> flatten(const SweepResult& r);

/// Writes `results` as one "hicc.sweepc.v1" document (flatten() per
/// point, one row each).
void write_columnar(const std::vector<SweepResult>& results, std::ostream& os);

/// Convenience: writes columnar JSON to `path`; false on I/O failure.
[[nodiscard]] bool save_columnar(const std::vector<SweepResult>& results,
                                 const std::string& path);

}  // namespace hicc::sweep
