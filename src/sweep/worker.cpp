#include "sweep/worker.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/fmt.h"
#include "core/experiment.h"
#include "core/validate.h"
#include "fault/script.h"
#include "sweep/sweep.h"

namespace hicc::sweep {
namespace {

const char* cc_label(transport::CcAlgorithm cc) {
  switch (cc) {
    case transport::CcAlgorithm::kSwift: return "swift";
    case transport::CcAlgorithm::kTcpLike: return "tcp-like";
    case transport::CcAlgorithm::kHostSignal: return "host-signal";
  }
  return "unknown";
}

bool cc_from_label(const std::string& label, transport::CcAlgorithm* out) {
  for (const auto cc :
       {transport::CcAlgorithm::kSwift, transport::CcAlgorithm::kTcpLike,
        transport::CcAlgorithm::kHostSignal}) {
    if (label == cc_label(cc)) {
      *out = cc;
      return true;
    }
  }
  return false;
}

/// Spec-line writer: one `key=value` per line, doubles through the
/// round-trip formatter so parse_point_spec restores them exactly.
class SpecWriter {
 public:
  explicit SpecWriter(std::ostream& os) : os_(os) { os_ << "hicc.point.v1\n"; }
  void put(const char* key, double v) {
    os_ << key << '=';
    put_double(os_, v);
    os_ << '\n';
  }
  void put(const char* key, std::int64_t v) { os_ << key << '=' << v << '\n'; }
  void put(const char* key, std::uint64_t v) { os_ << key << '=' << v << '\n'; }
  void put(const char* key, int v) { os_ << key << '=' << v << '\n'; }
  void put(const char* key, bool v) { os_ << key << '=' << (v ? 1 : 0) << '\n'; }
  void put(const char* key, const std::string& v) { os_ << key << '=' << v << '\n'; }

 private:
  std::ostream& os_;
};

/// The shared single-host surface of both spec forms -- exactly the
/// fields hicc.sweep.v1 serializes (sweep.cpp write_config) plus
/// watchdog and trace run control.
void write_host_lines(SpecWriter& w, const ExperimentConfig& cfg) {
  w.put("num_senders", cfg.num_senders);
  w.put("rx_threads", cfg.rx_threads);
  w.put("read_size_bytes", cfg.read_size.count());
  w.put("read_pipeline", cfg.read_pipeline);
  w.put("iommu_enabled", cfg.iommu_enabled);
  w.put("hugepages", cfg.hugepages);
  w.put("data_region_bytes", cfg.data_region.count());
  w.put("antagonist_cores", cfg.antagonist_cores);
  w.put("antagonist_throttle_gbps", cfg.antagonist_throttle_gbps);
  w.put("antagonist_remote_numa", cfg.antagonist_remote_numa);
  w.put("ats_enabled", cfg.ats_enabled);
  w.put("strict_iommu", cfg.strict_iommu);
  w.put("ddio_enabled", cfg.ddio.enabled);
  w.put("victim_flows", cfg.victim_flows);
  w.put("victim_read_size_bytes", cfg.victim_read_size.count());
  w.put("cc", std::string(cc_label(cfg.cc)));
  w.put("swift_host_target_us", cfg.swift.host_target.us());
  w.put("iotlb_entries", cfg.iommu.iotlb_entries);
  w.put("nic_buffer_bytes", cfg.nic.input_buffer.count());
  w.put("pcie_gigatransfers_per_lane", cfg.pcie.gigatransfers_per_lane);
  w.put("warmup_us", cfg.warmup.us());
  w.put("measure_us", cfg.measure.us());
  w.put("seed", cfg.seed);
  w.put("max_events", cfg.watchdog.max_events);
  w.put("max_events_per_timestamp", cfg.watchdog.max_events_per_timestamp);
  w.put("trace_enabled", cfg.trace.enabled);
  w.put("trace_period_us", cfg.trace.sample_period.us());
}

/// Runs the injected failure, if any. Returns -1 to continue with the
/// real point, or an exit code ("exit:N"). The process-killing modes
/// do not return; this is the sanctioned seam where a worker may die
/// on purpose (tests + CI drive it; docs/ROBUSTNESS.md).
int apply_inject(const std::string& inject, int attempt) {
  if (inject.empty()) return -1;
  const auto arg = [&inject]() -> int {
    const auto colon = inject.find(':');
    return colon == std::string::npos
               ? 0
               : static_cast<int>(std::strtol(inject.c_str() + colon + 1, nullptr, 10));
  };
  const std::string mode = inject.substr(0, inject.find(':'));
  if (mode == "flaky-segv" || mode == "flaky-kill") {
    if (attempt >= arg()) return -1;  // recovered on this attempt
    std::raise(mode == "flaky-segv" ? SIGSEGV : SIGKILL);
  } else if (mode == "segv") {
    std::raise(SIGSEGV);
  } else if (mode == "abort") {
    std::abort();
  } else if (mode == "kill") {
    std::raise(SIGKILL);
  } else if (mode == "hang") {
    // Sleep far past any sane --point-timeout; the supervisor SIGKILLs.
    while (true) {
      timespec ts{3600, 0};
      ::nanosleep(&ts, nullptr);
    }
  } else if (mode == "exit") {
    return arg();
  }
  return -1;  // unreachable for the killing modes
}

}  // namespace

ClusterConfig PointSpec::cluster() const {
  ClusterConfig cfg;
  cfg.host = host;
  // Cluster scripts live at cluster scope (topology targeting); the
  // spec's single `faults=` line carries them there.
  cfg.faults = cfg.host.faults;
  cfg.host.faults = fault::FaultScript{};
  // Metrics-only records: per-host trace harvesting stays an
  // in-process --topology feature.
  cfg.host.trace.enabled = false;
  cfg.topology.leaves = leaves;
  cfg.topology.spines = spines;
  cfg.topology.hosts_per_leaf = leaves > 0 ? hosts / leaves : hosts;
  cfg.topology.ecmp_seed = ecmp_seed;
  cfg.topology.host_link_rate = BitRate::gbps(host_gbps);
  cfg.topology.fabric_link_rate = BitRate::gbps(fabric_gbps);
  cfg.receivers = receivers;
  cfg.full_sender_hosts = full_hosts;
  cfg.parallelism = parallelism;
  cfg.mailbox_capacity = mailbox_capacity;
  return cfg;
}

std::string point_spec(const ExperimentConfig& cfg, std::size_t index) {
  std::ostringstream os;
  SpecWriter w(os);
  w.put("index", static_cast<std::uint64_t>(index));
  write_host_lines(w, cfg);
  w.put("faults", cfg.faults.to_spec());
  return os.str();
}

std::string cluster_point_spec(const ClusterConfig& cfg, std::size_t index) {
  std::ostringstream os;
  SpecWriter w(os);
  w.put("index", static_cast<std::uint64_t>(index));
  write_host_lines(w, cfg.host);
  w.put("faults", cfg.faults.to_spec());
  std::ostringstream topo;
  topo << cfg.topology.leaves << 'x' << cfg.topology.spines << 'x'
       << cfg.topology.leaves * cfg.topology.hosts_per_leaf;
  w.put("topology", topo.str());
  w.put("receivers", cfg.receivers);
  w.put("ecmp_seed", cfg.topology.ecmp_seed);
  w.put("host_gbps", cfg.topology.host_link_rate.bps() / 1e9);
  w.put("fabric_gbps", cfg.topology.fabric_link_rate.bps() / 1e9);
  w.put("full_hosts", cfg.full_sender_hosts);
  w.put("parallelism", cfg.parallelism);
  w.put("mailbox_capacity", static_cast<std::uint64_t>(cfg.mailbox_capacity));
  return os.str();
}

SpecParse parse_point_spec(const std::string& text) {
  SpecParse out;
  PointSpec& spec = out.spec;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "hicc.point.v1") {
    out.errors.push_back("line 1: expected the 'hicc.point.v1' header");
    return out;
  }

  int lineno = 1;
  const auto fail = [&out, &lineno](const std::string& what) {
    out.errors.push_back("line " + std::to_string(lineno) + ": " + what);
  };
  const auto as_i64 = [&fail](const std::string& v, std::int64_t* dst) {
    char* end = nullptr;
    errno = 0;
    const long long n = std::strtoll(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      fail("expected an integer, got '" + v + "'");
      return;
    }
    *dst = n;
  };
  const auto as_u64 = [&fail](const std::string& v, std::uint64_t* dst) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      fail("expected an unsigned integer, got '" + v + "'");
      return;
    }
    *dst = n;
  };
  const auto as_int = [&as_i64](const std::string& v, int* dst) {
    std::int64_t n = *dst;
    as_i64(v, &n);
    *dst = static_cast<int>(n);
  };
  const auto as_dbl = [&fail](const std::string& v, double* dst) {
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(v.c_str(), &end);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      fail("expected a number, got '" + v + "'");
      return;
    }
    *dst = d;
  };
  const auto as_bool = [&fail](const std::string& v, bool* dst) {
    if (v == "0" || v == "1") {
      *dst = v == "1";
    } else {
      fail("expected 0 or 1, got '" + v + "'");
    }
  };
  const auto as_bytes = [&as_i64](const std::string& v, Bytes* dst) {
    std::int64_t n = dst->count();
    as_i64(v, &n);
    *dst = Bytes(n);
  };
  const auto as_us = [&as_dbl](const std::string& v, TimePs* dst) {
    double us = dst->us();
    as_dbl(v, &us);
    *dst = TimePs::from_us(us);
  };

  ExperimentConfig& cfg = spec.host;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail("expected key=value, got '" + line + "'");
      continue;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);

    if (key == "index") {
      std::uint64_t v = 0;
      as_u64(value, &v);
      spec.index = static_cast<std::size_t>(v);
    } else if (key == "attempt") {
      as_int(value, &spec.attempt);
      if (spec.attempt < 1) fail("attempt must be >= 1");
    } else if (key == "inject") {
      static constexpr const char* kModes[] = {"segv", "abort",      "kill",
                                               "hang", "exit",       "flaky-segv",
                                               "flaky-kill"};
      const std::string mode = value.substr(0, value.find(':'));
      bool known = value.empty();
      for (const char* m : kModes) known = known || mode == m;
      if (!known) fail("unknown inject mode '" + value + "'");
      spec.inject = value;
    } else if (key == "num_senders") {
      as_int(value, &cfg.num_senders);
    } else if (key == "rx_threads") {
      as_int(value, &cfg.rx_threads);
    } else if (key == "read_size_bytes") {
      as_bytes(value, &cfg.read_size);
    } else if (key == "read_pipeline") {
      as_int(value, &cfg.read_pipeline);
    } else if (key == "iommu_enabled") {
      as_bool(value, &cfg.iommu_enabled);
    } else if (key == "hugepages") {
      as_bool(value, &cfg.hugepages);
    } else if (key == "data_region_bytes") {
      as_bytes(value, &cfg.data_region);
    } else if (key == "antagonist_cores") {
      as_int(value, &cfg.antagonist_cores);
    } else if (key == "antagonist_throttle_gbps") {
      as_dbl(value, &cfg.antagonist_throttle_gbps);
    } else if (key == "antagonist_remote_numa") {
      as_bool(value, &cfg.antagonist_remote_numa);
    } else if (key == "ats_enabled") {
      as_bool(value, &cfg.ats_enabled);
    } else if (key == "strict_iommu") {
      as_bool(value, &cfg.strict_iommu);
    } else if (key == "ddio_enabled") {
      as_bool(value, &cfg.ddio.enabled);
    } else if (key == "victim_flows") {
      as_int(value, &cfg.victim_flows);
    } else if (key == "victim_read_size_bytes") {
      as_bytes(value, &cfg.victim_read_size);
    } else if (key == "cc") {
      if (!cc_from_label(value, &cfg.cc)) fail("unknown cc '" + value + "'");
    } else if (key == "swift_host_target_us") {
      as_us(value, &cfg.swift.host_target);
    } else if (key == "iotlb_entries") {
      as_int(value, &cfg.iommu.iotlb_entries);
    } else if (key == "nic_buffer_bytes") {
      as_bytes(value, &cfg.nic.input_buffer);
    } else if (key == "pcie_gigatransfers_per_lane") {
      as_dbl(value, &cfg.pcie.gigatransfers_per_lane);
    } else if (key == "warmup_us") {
      as_us(value, &cfg.warmup);
    } else if (key == "measure_us") {
      as_us(value, &cfg.measure);
    } else if (key == "seed") {
      as_u64(value, &cfg.seed);
    } else if (key == "max_events") {
      as_u64(value, &cfg.watchdog.max_events);
    } else if (key == "max_events_per_timestamp") {
      as_u64(value, &cfg.watchdog.max_events_per_timestamp);
    } else if (key == "trace_enabled") {
      as_bool(value, &cfg.trace.enabled);
    } else if (key == "trace_period_us") {
      as_us(value, &cfg.trace.sample_period);
    } else if (key == "faults") {
      if (!value.empty()) {
        fault::ParseResult parsed = fault::parse_script(value);
        if (!parsed.ok()) {
          for (const auto& err : parsed.errors) fail("faults: " + err);
        } else {
          cfg.faults = std::move(parsed.script);
        }
      }
    } else if (key == "topology") {
      int leaves = 0, spines = 0, hosts = 0;
      char excess = '\0';
      if (std::sscanf(value.c_str(), "%dx%dx%d%c", &leaves, &spines, &hosts, &excess) != 3 ||
          leaves <= 0 || hosts <= 0 || hosts % leaves != 0) {
        fail("bad topology '" + value + "' (want LxSxH with H divisible by L)");
      } else {
        spec.is_cluster = true;
        spec.leaves = leaves;
        spec.spines = spines;
        spec.hosts = hosts;
      }
    } else if (key == "receivers") {
      as_int(value, &spec.receivers);
    } else if (key == "ecmp_seed") {
      as_u64(value, &spec.ecmp_seed);
    } else if (key == "host_gbps") {
      as_dbl(value, &spec.host_gbps);
    } else if (key == "fabric_gbps") {
      as_dbl(value, &spec.fabric_gbps);
    } else if (key == "full_hosts") {
      as_bool(value, &spec.full_hosts);
    } else if (key == "parallelism") {
      as_int(value, &spec.parallelism);
    } else if (key == "mailbox_capacity") {
      std::uint64_t v = 0;
      as_u64(value, &v);
      spec.mailbox_capacity = static_cast<std::size_t>(v);
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  return out;
}

int run_point_worker(std::istream& in, std::ostream& out, std::ostream& err) {
  std::ostringstream buf;
  buf << in.rdbuf();
  SpecParse parsed = parse_point_spec(buf.str());
  if (!parsed.ok()) {
    err << "bad hicc.point.v1 spec:\n";
    for (const auto& e : parsed.errors) err << "  " << e << '\n';
    return kExitFaultParse;
  }
  PointSpec& spec = parsed.spec;

  if (const int injected = apply_inject(spec.inject, spec.attempt); injected >= 0) {
    return injected;
  }

  try {
    std::vector<SweepResult> points;
    if (spec.is_cluster) {
      ClusterConfig cfg = spec.cluster();
      if (const auto violations = validate(cfg); !violations.empty()) {
        err << "invalid point configuration:\n" << describe(violations) << '\n';
        return kExitConfigInvalid;
      }
      ClusterExperiment exp(std::move(cfg));
      const ClusterMetrics cm = exp.run();
      points.resize(static_cast<std::size_t>(exp.num_receivers()));
      for (int r = 0; r < exp.num_receivers(); ++r) {
        SweepResult& p = points[static_cast<std::size_t>(r)];
        p.index = spec.index + static_cast<std::size_t>(r);
        p.config = exp.config().host;
        p.metrics = cm.per_receiver[static_cast<std::size_t>(r)];
        p.extra["host"] = r;
        p.extra["cluster.port_drops"] =
            static_cast<double>(exp.fabric().host_port_drops(r));
        p.extra["cluster.port_queue_bytes"] =
            static_cast<double>(exp.fabric().host_queue(r).count());
      }
    } else {
      ExperimentConfig& cfg = spec.host;
      if (const auto violations = validate(cfg); !violations.empty()) {
        err << "invalid point configuration:\n" << describe(violations) << '\n';
        return kExitConfigInvalid;
      }
      points.resize(1);
      SweepResult& p = points.front();
      p.index = spec.index;
      p.config = cfg;
      Experiment exp(p.config);
      p.metrics = exp.run();
      // Same harvest the in-process sweep path applies to traced
      // replicas, so isolated and in-process records carry the same
      // extra.trace.* keys.
      if (cfg.trace.enabled) harvest_trace(exp, p);
    }
    // wall_seconds stays 0.0 on every element: a worker record is a
    // pure function of its spec, which is what lets a resumed sweep be
    // bitwise identical to an uninterrupted one.
    write_json(points, out);
    out.flush();
    return kExitOk;
  } catch (const std::exception& e) {
    err << "point worker failed: " << e.what() << '\n';
    return kExitUsage;
  }
}

}  // namespace hicc::sweep
