#include "sweep/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include <sstream>
#include <stdexcept>

#include "common/fmt.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "core/validate.h"
#include "trace/trace.h"

namespace hicc::sweep {

namespace {

const char* cc_name(transport::CcAlgorithm cc) {
  switch (cc) {
    case transport::CcAlgorithm::kSwift: return "swift";
    case transport::CcAlgorithm::kTcpLike: return "tcp-like";
    case transport::CcAlgorithm::kHostSignal: return "host-signal";
  }
  return "unknown";
}

class JsonObject {
 public:
  JsonObject(std::ostream& os, int indent) : os_(os), indent_(indent) { os_ << "{"; }

  void field(const char* key, double v) {
    next(key);
    put_double(os_, v);
  }
  void field(const char* key, std::int64_t v) { next(key); os_ << v; }
  void field(const char* key, std::uint64_t v) { next(key); os_ << v; }
  void field(const char* key, int v) { next(key); os_ << v; }
  void field(const char* key, bool v) { next(key); os_ << (v ? "true" : "false"); }
  void field(const char* key, const char* v) { next(key); os_ << '"' << v << '"'; }
  /// Opens a nested object; the caller closes it via the returned
  /// object's close().
  void open(const char* key) { next(key); }

  void close() {
    os_ << "\n";
    pad(indent_);
    os_ << "}";
  }

 private:
  void next(const char* key) {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    pad(indent_ + 2);
    os_ << '"' << key << "\": ";
  }
  void pad(int n) {
    for (int i = 0; i < n; ++i) os_ << ' ';
  }

  std::ostream& os_;
  int indent_;
  bool first_ = true;
};

void write_config(std::ostream& os, const ExperimentConfig& cfg, int indent) {
  JsonObject o(os, indent);
  o.field("num_senders", cfg.num_senders);
  o.field("rx_threads", cfg.rx_threads);
  o.field("read_size_bytes", cfg.read_size.count());
  o.field("read_pipeline", cfg.read_pipeline);
  o.field("iommu_enabled", cfg.iommu_enabled);
  o.field("hugepages", cfg.hugepages);
  o.field("data_region_bytes", cfg.data_region.count());
  o.field("antagonist_cores", cfg.antagonist_cores);
  o.field("antagonist_throttle_gbps", cfg.antagonist_throttle_gbps);
  o.field("antagonist_remote_numa", cfg.antagonist_remote_numa);
  o.field("ats_enabled", cfg.ats_enabled);
  o.field("strict_iommu", cfg.strict_iommu);
  o.field("ddio_enabled", cfg.ddio.enabled);
  o.field("victim_flows", cfg.victim_flows);
  o.field("victim_read_size_bytes", cfg.victim_read_size.count());
  o.field("cc", cc_name(cfg.cc));
  o.field("swift_host_target_us", cfg.swift.host_target.us());
  o.field("iotlb_entries", cfg.iommu.iotlb_entries);
  o.field("nic_buffer_bytes", cfg.nic.input_buffer.count());
  o.field("pcie_gigatransfers_per_lane", cfg.pcie.gigatransfers_per_lane);
  o.field("warmup_us", cfg.warmup.us());
  o.field("measure_us", cfg.measure.us());
  o.field("seed", cfg.seed);
  // Spec-grammar form (docs/FAULTS.md); round-trips through
  // fault::parse_script, so a point's scenario can be replayed from
  // the sweep record alone.
  o.field("faults", cfg.faults.to_spec().c_str());
  o.close();
}

void write_metrics(std::ostream& os, const Metrics& m, int indent) {
  JsonObject o(os, indent);
  o.field("app_throughput_gbps", m.app_throughput_gbps);
  o.field("link_utilization", m.link_utilization);
  o.field("drop_rate", m.drop_rate);
  o.field("iotlb_misses_per_packet", m.iotlb_misses_per_packet);
  o.field("memory_total_gbytes_per_sec", m.memory.total_gbytes_per_sec);
  o.field("memory_nic_dma_gbytes_per_sec",
          m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kNicDma)]);
  o.field("memory_iommu_walk_gbytes_per_sec",
          m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kIommuWalk)]);
  o.field("memory_cpu_copy_gbytes_per_sec",
          m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kCpuCopy)]);
  o.field("memory_antagonist_gbytes_per_sec",
          m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kAntagonist)]);
  o.field("remote_memory_total_gbytes_per_sec", m.remote_memory.total_gbytes_per_sec);
  o.field("host_delay_p50_us", m.host_delay_p50_us);
  o.field("host_delay_p99_us", m.host_delay_p99_us);
  o.field("host_delay_max_us", m.host_delay_max_us);
  o.field("victim_reads", m.victim_reads);
  o.field("victim_read_p50_us", m.victim_read_p50_us);
  o.field("victim_read_p99_us", m.victim_read_p99_us);
  o.field("data_packets_sent", m.data_packets_sent);
  o.field("retransmits", m.retransmits);
  o.field("rto_fires", m.rto_fires);
  o.field("delivered_packets", m.delivered_packets);
  o.field("nic_buffer_drops", m.nic_buffer_drops);
  o.field("fabric_drops", m.fabric_drops);
  o.field("iotlb_misses", m.iotlb_misses);
  o.field("iotlb_lookups", m.iotlb_lookups);
  o.field("pcie_translation_stalls", m.pcie_translation_stalls);
  o.field("pcie_write_buffer_stalls", m.pcie_write_buffer_stalls);
  o.field("hol_descriptor_stalls", m.hol_descriptor_stalls);
  o.field("avg_cwnd", m.avg_cwnd);
  o.field("fault_windows", m.fault_windows);
  o.field("fault_drops", m.fault_drops);
  o.field("fault_active_us", m.fault_active_us);
  o.field("fault_blind_us", m.fault_blind_us);
  o.field("run_status", to_string(m.run_status));
  o.field("run_status_detail", m.run_status_detail.c_str());
  o.field("simulated_seconds", m.simulated_seconds);
  o.field("events_executed", m.events_executed);
  o.close();
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts)
    : opts_(std::move(opts)), jobs_(resolve_jobs(opts_.jobs)) {}

int SweepRunner::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HICC_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0 && n < std::numeric_limits<int>::max()) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<SweepResult> SweepRunner::run(std::vector<ExperimentConfig> points) const {
  const std::size_t total = points.size();
  if (opts_.reseed) {
    for (std::size_t i = 0; i < total; ++i) {
      points[i].seed = derive_seed(opts_.sweep_seed, i);
    }
  }

  // Validate every point up front so a bad sweep fails before any work
  // starts, with every violation of every point in one message.
  {
    std::ostringstream bad;
    std::size_t bad_points = 0;
    for (std::size_t i = 0; i < total; ++i) {
      const auto violations = validate(points[i]);
      if (violations.empty()) continue;
      if (bad_points++ > 0) bad << '\n';
      bad << "point " << i << ":\n" << describe(violations);
    }
    if (bad_points > 0) {
      throw std::invalid_argument("invalid sweep configuration (" +
                                  std::to_string(bad_points) + " bad point(s)):\n" + bad.str());
    }
  }

  std::vector<SweepResult> results(total);
  if (total == 0) return results;

  // Concurrency contract (TSan-verified; SweepRunner.HooksAreRaceFreeUnder16Threads):
  //   - `next` and `failed` are the only lock-free shared state and MUST
  //     stay std::atomic -- `next` is the work-stealing ticket counter,
  //     `failed` the abandon flag polled by every worker.
  //   - `completed`, `failed_index`, `first_error`, and every
  //     opts_.progress invocation are guarded by `mu`; the progress
  //     callback is serialized and may touch non-atomic caller state.
  //   - results[i] is written by exactly one worker (the ticket holder),
  //     and opts_.probe only sees that worker's Experiment + result, so
  //     neither needs synchronization.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;  // guards progress callback + failure bookkeeping
  std::size_t completed = 0;
  std::size_t failed_index = total;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SweepResult& r = results[i];
      r.index = i;
      r.config = points[i];
      // hicc-lint: allow(det-wallclock) -- harness-level wall timing for
      // SweepResult::wall_seconds; never feeds simulation state.
      const auto t0 = std::chrono::steady_clock::now();
      try {
        Experiment exp(r.config);
        r.metrics = exp.run();
        r.wall_seconds = std::chrono::duration<double>(
                             // hicc-lint: allow(det-wallclock) -- see t0.
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (opts_.probe) opts_.probe(exp, r);
      } catch (...) {
        // Keep the error from the lowest-index failing point so a
        // parallel run reports the same failure a serial run would hit
        // first; abandon the rest of the queue.
        std::lock_guard<std::mutex> lock(mu);
        if (i < failed_index) {
          failed_index = i;
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      std::lock_guard<std::mutex> lock(mu);
      ++completed;
      if (opts_.progress) {
        opts_.progress(SweepProgress{completed, total, i, r.wall_seconds});
      }
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), total);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

void harvest_trace(Experiment& exp, SweepResult& r) {
  harvest_trace_probes(exp.tracer(), r);
}

void harvest_trace_probes(trace::Tracer* tracer, SweepResult& r) {
  if (tracer == nullptr) return;
  tracer->sample_now();  // refresh polled + derived values at run end
  const auto& probes = tracer->probes();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    // Histogram parents report their observation count; the derived
    // .p50/.p99/.count entries carry the distribution itself.
    r.extra["trace." + probes[i].name] = tracer->value_at(i);
  }
}

void write_point(std::ostream& os, const SweepResult& r) {
  JsonObject o(os, 4);
  o.field("index", r.index);
  o.field("wall_seconds", r.wall_seconds);
  o.open("config");
  write_config(os, r.config, 6);
  o.open("metrics");
  write_metrics(os, r.metrics, 6);
  if (!r.extra.empty()) {
    o.open("extra");
    JsonObject e(os, 6);
    for (const auto& [key, value] : r.extra) e.field(key.c_str(), value);
    e.close();
  }
  o.close();
}

void write_json(const std::vector<SweepResult>& results, std::ostream& os) {
  os << "{\n  \"schema\": \"hicc.sweep.v1\",\n  \"points\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    ";
    write_point(os, results[i]);
  }
  os << "\n  ]\n}\n";
}

bool save_json(const std::vector<SweepResult>& results, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(results, out);
  return static_cast<bool>(out);
}

}  // namespace hicc::sweep
