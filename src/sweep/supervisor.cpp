#include "sweep/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fmt.h"
#include "core/validate.h"
#include "sweep/journal.h"
#include "sweep/worker.h"

// hicc-lint: allow-file(det-wallclock) -- the supervisor is harness
// code: timeouts, backoff, and progress wall_seconds run on the host
// clock and never feed simulation state.

namespace hicc::sweep {
namespace {

using Clock = std::chrono::steady_clock;

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGPIPE: return "SIGPIPE";
    default: return "signal";
  }
}

std::string fmt_double(double v) {
  std::ostringstream os;
  put_double(os, v);
  return os.str();
}

/// The sweep's identity for journal/resume pairing: a checksum over
/// every point spec (order-sensitive). decorate lines are excluded on
/// purpose -- injection aids must not unpair a journal from the sweep
/// it belongs to.
std::uint64_t sweep_fingerprint(const std::vector<std::string>& specs) {
  std::string all;
  for (const auto& s : specs) {
    all += s;
    all += '\x1f';
  }
  return fnv1a64(all);
}

/// Splits a worker's hicc.sweep.v1 doc into its point-element byte
/// ranges (quote-aware brace matching; the writer never emits braces
/// outside strings except structurally). Empty result = malformed.
std::vector<std::string> extract_point_elements(const std::string& doc) {
  std::vector<std::string> out;
  constexpr char kAnchor[] = "\"points\": [";
  std::size_t i = doc.find(kAnchor);
  if (i == std::string::npos) return out;
  i += sizeof(kAnchor) - 1;
  while (i < doc.size()) {
    while (i < doc.size() && (doc[i] == ' ' || doc[i] == '\n' || doc[i] == ',')) ++i;
    if (i >= doc.size()) return {};
    if (doc[i] == ']') return out;
    if (doc[i] != '{') return {};
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < doc.size(); ++i) {
      const char c = doc[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          out.push_back(doc.substr(start, i - start + 1));
          ++i;
          break;
        }
      }
    }
    if (depth != 0) return {};
  }
  return {};
}

/// First non-"ok" `run_status` label across the record's elements
/// ("ok" if none): a worker that finished degraded (watchdog abort,
/// mailbox overflow) reports it in-band and must not be retried.
std::string record_status_label(const std::string& element) {
  constexpr char kKey[] = "\"run_status\": \"";
  std::size_t pos = 0;
  while ((pos = element.find(kKey, pos)) != std::string::npos) {
    pos += sizeof(kKey) - 1;
    const std::size_t close = element.find('"', pos);
    if (close == std::string::npos) break;
    const std::string label = element.substr(pos, close - pos);
    if (label != "ok") return label;
    pos = close;
  }
  return "ok";
}

/// What one worker launch produced.
struct AttemptResult {
  bool ok = false;         // a usable record was written
  bool permanent = false;  // deterministic failure; retrying is pointless
  RunStatus status = RunStatus::kCrashed;
  std::string detail;
  std::string payload;       // ",\n    "-joined elements when ok
  RunStatus record_status = RunStatus::kOk;  // in-band status when ok
};

AttemptResult classify(int wait_status, bool killed_by_timeout, double timeout_s,
                       const std::string& stdout_text) {
  AttemptResult r;
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    if (killed_by_timeout) {
      r.status = RunStatus::kTimedOut;
      r.detail = "exceeded the " + fmt_double(timeout_s) + " s point timeout; worker killed";
    } else if (sig == SIGKILL) {
      r.status = RunStatus::kOomKilled;
      r.detail = "worker killed by SIGKILL outside the supervisor (OOM killer or external kill)";
    } else {
      r.status = RunStatus::kCrashed;
      r.detail = "worker crashed: signal " + std::to_string(sig) + " (" + signal_name(sig) + ")";
    }
    return r;
  }

  const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  if (code == kExitOk) {
    const std::vector<std::string> elements = extract_point_elements(stdout_text);
    if (elements.empty()) {
      r.status = RunStatus::kCrashed;
      r.detail = "worker exited 0 without a hicc.sweep.v1 record";
      return r;
    }
    r.ok = true;
    for (std::size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) r.payload += ",\n    ";
      r.payload += elements[i];
    }
    const std::string label = record_status_label(r.payload);
    RunStatus parsed = RunStatus::kOk;
    if (run_status_from_string(label, &parsed)) r.record_status = parsed;
    r.status = r.record_status;
    return r;
  }

  r.status = RunStatus::kCrashed;
  if (code == kExitConfigInvalid) {
    r.permanent = true;
    r.detail = "worker rejected the point config (exit 2, validation failure)";
  } else if (code == kExitFaultParse) {
    r.permanent = true;
    r.detail = "worker could not parse the point spec (exit 3)";
  } else if (code == kExitExecFailed) {
    r.permanent = true;
    r.detail = "could not exec the worker binary (exit 127)";
  } else {
    r.detail = "worker exited with code " + std::to_string(code);
  }
  return r;
}

/// Synthesizes the journal/merge element for a point no attempt could
/// produce a record for: the config as the worker would have run it,
/// zeroed metrics, the taxonomy status + detail, and the attempt count
/// under extra -- all deterministic, so resumed and uninterrupted
/// sweeps stay bitwise identical even for failed points.
std::string synthesize_failure_payload(const std::string& spec, std::size_t index,
                                       RunStatus status, const std::string& detail,
                                       int attempts) {
  SweepResult r;
  r.index = index;
  SpecParse parsed = parse_point_spec(spec);
  if (parsed.ok()) {
    if (parsed.spec.is_cluster) {
      // Mirror ClusterExperiment's effective per-host template.
      ClusterConfig cluster = parsed.spec.cluster();
      r.config = cluster.host;
      r.config.num_senders =
          std::max(1, parsed.spec.hosts - parsed.spec.receivers);
    } else {
      r.config = parsed.spec.host;
    }
  }
  r.metrics.run_status = status;
  r.metrics.run_status_detail = detail;
  r.extra["supervisor.attempts"] = attempts;
  std::ostringstream os;
  write_point(os, r);
  return os.str();
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
};

/// fork/exec one worker: spec on its stdin, record pipe returned
/// nonblocking. Only async-signal-safe calls between fork and exec.
Child spawn_worker(const std::vector<std::string>& argv_strings, const std::string& spec) {
  Child child;
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  if (::pipe2(in_pipe, O_CLOEXEC) != 0) return child;
  if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return child;
  }

  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& s : argv_strings) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    return child;
  }
  if (pid == 0) {
    // Worker side: wire the pipes to stdin/stdout (dup2 clears
    // O_CLOEXEC on the duplicates; everything else closes at exec),
    // restore default signal dispositions the parent may have
    // customized, and become the worker binary.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_DFL);
    ::execv(argv[0], argv.data());
    ::_exit(kExitExecFailed);  // exec failed; the classifier explains exit 127
  }

  ::close(in_pipe[0]);
  ::close(out_pipe[1]);

  // Feed the spec. The worker drains stdin before doing anything else,
  // so this cannot deadlock; a child that already died yields EPIPE
  // (SIGPIPE is ignored around the run), which the reaper explains.
  const char* p = spec.data();
  std::size_t left = spec.size();
  while (left > 0) {
    const ssize_t n = ::write(in_pipe[1], p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::close(in_pipe[1]);

  ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  child.pid = pid;
  child.out_fd = out_pipe[0];
  return child;
}

/// Ignores SIGPIPE for the supervisor's lifetime on the call stack so
/// writing a spec to a dead worker surfaces as EPIPE, not death.
class SigpipeGuard {
 public:
  SigpipeGuard() : old_(std::signal(SIGPIPE, SIG_IGN)) {}
  ~SigpipeGuard() { std::signal(SIGPIPE, old_); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  void (*old_)(int);
};

/// One concurrent-worker slot of the supervision loop.
struct Slot {
  enum class State { kIdle, kRunning, kBackoff } state = State::kIdle;
  std::size_t point = 0;
  int attempt = 0;
  pid_t pid = -1;
  int fd = -1;
  std::string stdout_text;
  bool killed_by_timeout = false;
  Clock::time_point started{};
  Clock::time_point deadline{};   // meaningful when timeout_s > 0
  Clock::time_point resume_at{};  // meaningful in kBackoff
  RunStatus last_status = RunStatus::kCrashed;  // last failed attempt
  std::string last_detail;
};

/// Drains everything currently readable from a nonblocking fd into
/// `into`; returns false once the pipe reached EOF (fd closed).
bool drain_fd(int fd, std::string* into) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      into->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return true;  // EAGAIN: nothing more right now
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions opts)
    : opts_(std::move(opts)), jobs_(SweepRunner::resolve_jobs(opts_.params.jobs)) {}

SupervisorOutcome Supervisor::run(const std::vector<ExperimentConfig>& points) const {
  std::vector<std::string> specs;
  specs.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) specs.push_back(point_spec(points[i], i));
  return run_specs(specs);
}

SupervisorOutcome Supervisor::run_specs(const std::vector<std::string>& specs) const {
  if (const auto violations = validate(opts_.params); !violations.empty()) {
    throw std::invalid_argument("invalid supervisor configuration:\n" + describe(violations));
  }
  if (opts_.worker_argv.empty()) {
    throw std::invalid_argument("supervisor needs a worker argv (e.g. hicc_cli --point-worker)");
  }

  const std::size_t total = specs.size();
  SupervisorOutcome out;
  out.points.resize(total);
  for (std::size_t i = 0; i < total; ++i) out.points[i].index = i;

  const std::uint64_t fingerprint = sweep_fingerprint(specs);

  const auto account = [&out](const PointOutcome& p) {
    ++out.completed;
    switch (p.status) {
      case RunStatus::kOk: break;
      case RunStatus::kEventBudget:
      case RunStatus::kStalled:
      case RunStatus::kMailboxOverflow: ++out.degraded; break;
      case RunStatus::kCrashed:
      case RunStatus::kTimedOut:
      case RunStatus::kOomKilled:
      case RunStatus::kRetriesExhausted: ++out.failures; break;
    }
  };

  if (opts_.resume) {
    if (opts_.journal_path.empty()) {
      throw std::invalid_argument("resume needs a journal path");
    }
    JournalContents journal = read_journal(opts_.journal_path);
    if (!journal.error.empty()) {
      throw std::invalid_argument("cannot resume from " + opts_.journal_path + ": " +
                                  journal.error);
    }
    if (journal.fingerprint != fingerprint) {
      throw std::invalid_argument(
          "journal " + opts_.journal_path +
          " was written by a different sweep (fingerprint mismatch); refusing to merge");
    }
    for (JournalEntry& e : journal.entries) {
      if (e.index >= total) continue;  // journal of a longer sweep prefix-matched
      PointOutcome& p = out.points[e.index];
      p.completed = true;
      p.from_journal = true;
      p.attempts = e.attempts;
      p.detail = std::move(e.detail);
      p.payload = std::move(e.payload);
      RunStatus status = RunStatus::kCrashed;
      if (run_status_from_string(e.status, &status)) p.status = status;
    }
    for (const PointOutcome& p : out.points) {
      if (!p.completed) continue;
      ++out.resumed;
      account(p);
      if (opts_.progress) {
        opts_.progress(SweepProgress{out.completed, total, p.index, 0.0});
      }
    }
  }

  JournalWriter journal;
  if (!opts_.journal_path.empty()) {
    if (!journal.open(opts_.journal_path, fingerprint, opts_.resume)) {
      throw std::runtime_error("cannot open sweep journal " + opts_.journal_path);
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < total; ++i) {
    if (!out.points[i].completed) pending.push_back(i);
  }
  std::size_t remaining = pending.size();
  if (remaining == 0) return out;

  SigpipeGuard sigpipe_guard;
  const SupervisorParams& params = opts_.params;
  const double timeout_s = params.point_timeout_s;

  const auto backoff_after = [&params](int failed_attempt) {
    double s = params.backoff_base_s;
    for (int i = 1; i < failed_attempt; ++i) s *= 2.0;
    return std::min(s, params.backoff_cap_s);
  };

  const auto spec_for = [this, &specs](std::size_t point, int attempt) {
    std::string spec = specs[point];
    if (spec.empty() || spec.back() != '\n') spec += '\n';
    if (opts_.decorate) {
      std::string extra = opts_.decorate(point);
      if (!extra.empty()) {
        spec += extra;
        if (spec.back() != '\n') spec += '\n';
      }
    }
    spec += "attempt=" + std::to_string(attempt) + "\n";
    return spec;
  };

  std::vector<Slot> slots(std::min<std::size_t>(static_cast<std::size_t>(jobs_), remaining));

  const auto launch = [&](Slot& slot, std::size_t point, int attempt) {
    const Child child = spawn_worker(opts_.worker_argv, spec_for(point, attempt));
    if (child.pid < 0) {
      // fork/pipe failure: treat like a crashed attempt via a dead
      // slot; record it immediately as permanent (the host is out of
      // resources -- retrying from here would likely fail the same way).
      PointOutcome& p = out.points[point];
      p.completed = true;
      p.attempts = attempt;
      p.status = RunStatus::kCrashed;
      p.detail = "could not fork a worker process";
      p.payload = synthesize_failure_payload(specs[point], point, p.status, p.detail,
                                             p.attempts);
      if (journal.is_open()) {
        journal.append(JournalEntry{point, to_string(p.status), p.attempts, p.detail,
                                    p.payload});
      }
      account(p);
      if (opts_.progress) opts_.progress(SweepProgress{out.completed, total, point, 0.0});
      --remaining;
      slot.state = Slot::State::kIdle;
      return;
    }
    slot.state = Slot::State::kRunning;
    slot.point = point;
    slot.attempt = attempt;
    slot.pid = child.pid;
    slot.fd = child.out_fd;
    slot.stdout_text.clear();
    slot.killed_by_timeout = false;
    slot.started = Clock::now();
    if (timeout_s > 0.0) {
      slot.deadline = slot.started + std::chrono::microseconds(
                                         static_cast<std::int64_t>(timeout_s * 1e6));
    }
  };

  const auto finalize = [&](Slot& slot, const AttemptResult& attempt_result) {
    PointOutcome& p = out.points[slot.point];
    if (attempt_result.ok) {
      p.completed = true;
      p.attempts = slot.attempt;
      p.status = attempt_result.status;
      p.detail.clear();
      p.payload = attempt_result.payload;
    } else {
      if (journal.is_open()) {
        journal.note(slot.point, slot.attempt, to_string(attempt_result.status),
                     attempt_result.detail);
      }
      if (opts_.log != nullptr) {
        *opts_.log << "point " << slot.point << " attempt " << slot.attempt << ": "
                   << to_string(attempt_result.status) << " -- " << attempt_result.detail
                   << '\n';
      }
      const bool retry = !attempt_result.permanent && slot.attempt < params.max_attempts;
      if (retry) {
        slot.state = Slot::State::kBackoff;
        slot.resume_at = Clock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                             backoff_after(slot.attempt) * 1e6));
        slot.last_status = attempt_result.status;
        slot.last_detail = attempt_result.detail;
        return;
      }
      p.completed = true;
      p.attempts = slot.attempt;
      if (slot.attempt > 1) {
        p.status = RunStatus::kRetriesExhausted;
        p.detail = "gave up after " + std::to_string(slot.attempt) +
                   " attempts; last failure: " + to_string(attempt_result.status) + ": " +
                   attempt_result.detail;
      } else {
        p.status = attempt_result.status;
        p.detail = attempt_result.detail;
      }
      p.payload =
          synthesize_failure_payload(specs[slot.point], slot.point, p.status, p.detail,
                                     p.attempts);
    }
    if (journal.is_open()) {
      journal.append(
          JournalEntry{slot.point, to_string(p.status), p.attempts, p.detail, p.payload});
    }
    account(p);
    if (opts_.progress) {
      const double wall =
          std::chrono::duration<double>(Clock::now() - slot.started).count();
      opts_.progress(SweepProgress{out.completed, total, slot.point, wall});
    }
    --remaining;
    slot.state = Slot::State::kIdle;
    slot.pid = -1;
  };

  std::size_t next_pending = 0;
  const auto stopped = [this] {
    return opts_.stop_flag != nullptr && *opts_.stop_flag != 0;
  };

  while (remaining > 0 && !stopped()) {
    // Fill idle slots and wake due backoffs.
    for (Slot& slot : slots) {
      if (slot.state == Slot::State::kIdle && next_pending < pending.size()) {
        launch(slot, pending[next_pending++], 1);
      } else if (slot.state == Slot::State::kBackoff && Clock::now() >= slot.resume_at) {
        launch(slot, slot.point, slot.attempt + 1);
      }
    }
    if (remaining == 0) break;

    // Enforce per-point deadlines.
    if (timeout_s > 0.0) {
      const auto now = Clock::now();
      for (Slot& slot : slots) {
        if (slot.state == Slot::State::kRunning && !slot.killed_by_timeout &&
            now >= slot.deadline) {
          ::kill(slot.pid, SIGKILL);
          slot.killed_by_timeout = true;
        }
      }
    }

    // Wait for worker output / exits, bounded so deadlines, backoffs,
    // and the stop flag are honored promptly.
    std::vector<pollfd> fds;
    auto wake = Clock::now() + std::chrono::milliseconds(100);
    for (Slot& slot : slots) {
      if (slot.state == Slot::State::kRunning) {
        if (slot.fd >= 0) fds.push_back(pollfd{slot.fd, POLLIN, 0});
        if (timeout_s > 0.0 && !slot.killed_by_timeout) wake = std::min(wake, slot.deadline);
      } else if (slot.state == Slot::State::kBackoff) {
        wake = std::min(wake, slot.resume_at);
      }
    }
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        wake - Clock::now());
    const int timeout_ms = std::max(0, static_cast<int>(wait.count()) + 1);
    if (!fds.empty()) {
      ::poll(fds.data(), fds.size(), timeout_ms);
    } else {
      ::poll(nullptr, 0, std::min(timeout_ms, 20));
    }

    // Drain output, reap finished workers, classify their attempts.
    for (Slot& slot : slots) {
      if (slot.state != Slot::State::kRunning) continue;
      if (slot.fd >= 0 && !drain_fd(slot.fd, &slot.stdout_text)) {
        ::close(slot.fd);
        slot.fd = -1;
      }
      int wait_status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &wait_status, WNOHANG);
      if (reaped != slot.pid) continue;
      if (slot.fd >= 0) {
        // The child is gone; whatever remains of its record is already
        // in the pipe. Drain to EOF, then classify.
        while (drain_fd(slot.fd, &slot.stdout_text)) {
          pollfd pfd{slot.fd, POLLIN, 0};
          ::poll(&pfd, 1, 10);
        }
        ::close(slot.fd);
        slot.fd = -1;
      }
      finalize(slot, classify(wait_status, slot.killed_by_timeout, timeout_s,
                              slot.stdout_text));
    }
  }

  if (remaining > 0) {
    // Interrupted: kill in-flight workers, keep everything journaled.
    out.interrupted = true;
    for (Slot& slot : slots) {
      if (slot.state != Slot::State::kRunning) continue;
      ::kill(slot.pid, SIGKILL);
      int wait_status = 0;
      while (::waitpid(slot.pid, &wait_status, 0) < 0 && errno == EINTR) {}
      if (slot.fd >= 0) {
        ::close(slot.fd);
        slot.fd = -1;
      }
      slot.state = Slot::State::kIdle;
    }
  }
  return out;
}

void write_merged_json(const SupervisorOutcome& outcome, std::ostream& os) {
  os << "{\n  \"schema\": \"hicc.sweep.v1\",\n  \"points\": [";
  bool first = true;
  for (const PointOutcome& p : outcome.points) {
    if (!p.completed) continue;
    os << (first ? "\n" : ",\n") << "    " << p.payload;
    first = false;
  }
  os << "\n  ]\n}\n";
}

bool save_merged_json(const SupervisorOutcome& outcome, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_merged_json(outcome, out);
  return static_cast<bool>(out);
}

}  // namespace hicc::sweep
