// Time-resolved telemetry for the host-congestion datapath.
//
// The end-of-run `Metrics` aggregate answers "how much", but the
// paper's argument is about *when*: the NIC buffer fills over hundreds
// of microseconds while Swift's fabric signal stays flat. This layer
// turns the simulator into a measurement instrument: components
// register named probes with a Tracer, and a periodic sampler -- an
// ordinary simulator event, so samples land exactly on event
// boundaries -- emits one time-series point per probe per tick into a
// TraceSink (CSV writer, Chrome trace_event JSON, or an in-memory
// recorder for tests).
//
// Probe kinds:
//  * Counter   -- monotone cumulative count (drops, IOTLB misses).
//  * Gauge     -- instantaneous level (buffer bytes, credits in use).
//  * Histogram -- per-observation distribution (RTT samples); the
//                 sampler emits derived `<name>.p50`, `<name>.p99`
//                 and `<name>.count` series.
//
// Counters and gauges may be registered with a poll callback that
// reads existing component state (e.g. `NicStats::buffer_drops`) at
// sample time; such probes add zero work to the hot path. Probes
// without a poll are fed via the inline add()/set()/observe() calls.
//
// Zero cost when disabled: components hold a `Tracer*` that is null
// unless tracing was requested, every hot-path hook is guarded by a
// single inline pointer test, and the Tracer itself is a final,
// non-polymorphic class (statically asserted below) -- virtual
// dispatch exists only behind the TraceSink boundary, which is reached
// once per sampling tick, never per packet. A run with tracing
// disabled executes the exact same event sequence as an untraced run
// (see tests/trace_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace hicc::trace {

/// What a probe measures; determines how the sampler emits it.
enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Canonical per-host probe name prefix: host_prefix(3) == "host3.".
/// Cluster runs register each host's component probes under this
/// prefix so the hosts get distinct series (registration is
/// get-or-create by name; without the prefix all hosts would merge
/// into one series). See docs/OBSERVABILITY.md, "Per-host probes".
[[nodiscard]] std::string host_prefix(int host);

/// Canonical host-indexed probe name: host_probe(3, "cluster.port_drops")
/// == "host3.cluster.port_drops". Probes registered through this
/// helper are documented once in docs/OBSERVABILITY.md under the
/// template form `host<h>.<name>`; scripts/hicc_lint.py recognizes the
/// idiom and checks the template form instead of the expanded names.
[[nodiscard]] std::string host_probe(int host, const std::string& name);

/// Short label for a probe kind ("counter" / "gauge" / "histogram").
[[nodiscard]] const char* to_string(Kind kind);

/// Handle to a registered probe; invalid by default so an unattached
/// component can hold ids without registering anything.
struct ProbeId {
  std::int32_t index = -1;
  [[nodiscard]] constexpr bool valid() const { return index >= 0; }
};

/// Catalog entry describing one probe (or one derived histogram
/// series). `name` is a dotted path, `layer.quantity`, and `unit` is a
/// free-form label ("bytes", "packets", "us", "GB/s", ...).
struct ProbeInfo {
  std::string name;
  Kind kind = Kind::kGauge;
  std::string unit;
};

/// Tracing knobs, carried inside ExperimentConfig so sweep points copy
/// them by value.
struct TraceParams {
  /// Master switch: when false no Tracer is created and every
  /// component's tracer pointer stays null.
  bool enabled = false;
  /// Sampler tick. 5us resolves the ~ms congestion episodes the paper
  /// plots while keeping a 30ms run to a few thousand ticks per probe.
  TimePs sample_period = TimePs::from_us(5);
};

/// Consumer of sampled time series. Implementations: CsvTraceWriter
/// and ChromeTraceWriter (exporters.h), RecordingSink (tests).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once, when the sink is attached, with the full probe
  /// catalog (histogram parents and their derived series included).
  virtual void begin(const std::vector<ProbeInfo>& probes) { (void)probes; }

  /// One time-series point. Histogram parents are never passed here --
  /// only their derived gauge/counter series are emitted.
  virtual void sample(const ProbeInfo& probe, TimePs t, double value) = 0;

  /// Called once by Tracer::finish() after the final sampling pass.
  virtual void end() {}
};

/// Buffers every sample in memory; used by tests and by sweep-probe
/// harvesting when no file output is wanted.
class RecordingSink final : public TraceSink {
 public:
  struct Sample {
    std::string probe;
    TimePs time{};
    double value = 0.0;
  };

  void begin(const std::vector<ProbeInfo>& probes) override { catalog_ = probes; }
  void sample(const ProbeInfo& probe, TimePs t, double value) override {
    // hicc-lint: allow(ana-hot-alloc-reach) -- test/harvest sink, never
    // installed in a steady-state production run; growth is amortized.
    samples_.push_back(Sample{probe.name, t, value});
  }
  void end() override { ended_ = true; }

  [[nodiscard]] const std::vector<ProbeInfo>& catalog() const { return catalog_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool ended() const { return ended_; }

  /// All samples of one probe, in time order.
  [[nodiscard]] std::vector<Sample> of(const std::string& probe) const;

 private:
  std::vector<ProbeInfo> catalog_;
  std::vector<Sample> samples_;
  bool ended_ = false;
};

/// The probe registry + periodic sampler. One Tracer per Experiment,
/// owned by it; components receive a raw pointer (null = disabled).
class Tracer {
 public:
  /// Registers the simulator's own probes (`sim.events_executed`,
  /// `sim.queue_depth`, `sim.pending`, `sim.events_per_poll`)
  /// immediately; the sampler is armed by start().
  explicit Tracer(sim::Simulator& sim, TraceParams params = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII name scope: while alive, every probe registered on `tracer`
  /// has `prefix` prepended to its name. ClusterExperiment wraps each
  /// host's component construction in a ScopedPrefix(host_prefix(h))
  /// so literal registrations like "nic.buffer_drops" become per-host
  /// series ("host0.nic.buffer_drops") without touching component
  /// code. Scopes nest; a null tracer makes the scope a no-op.
  class ScopedPrefix {
   public:
    ScopedPrefix(Tracer* tracer, const std::string& prefix)
        : tracer_(tracer), saved_len_(tracer != nullptr ? tracer->prefix_.size() : 0) {
      if (tracer_ != nullptr) tracer_->prefix_ += prefix;
    }
    ~ScopedPrefix() {
      if (tracer_ != nullptr) tracer_->prefix_.resize(saved_len_);
    }
    ScopedPrefix(const ScopedPrefix&) = delete;
    ScopedPrefix& operator=(const ScopedPrefix&) = delete;

   private:
    Tracer* tracer_;
    std::size_t saved_len_;
  };

  // ---------------------------------------------------- registration

  /// Registers (or looks up -- registration is get-or-create by name,
  /// so instances sharing a metric share a series) a cumulative
  /// counter. With `poll`, the sampler reads the callback at each tick
  /// and the hot path is untouched; without it, feed via add().
  ProbeId counter(std::string name, std::string unit, std::function<double()> poll = nullptr);

  /// Registers an instantaneous gauge; polled or fed via set().
  ProbeId gauge(std::string name, std::string unit, std::function<double()> poll = nullptr);

  /// Registers a distribution probe fed via observe(). Also registers
  /// the derived `<name>.p50` / `<name>.p99` (gauges, same unit) and
  /// `<name>.count` (counter) series the sampler emits.
  ProbeId histogram(std::string name, std::string unit);

  // ------------------------------------------- hot-path feed (inline)

  /// Adds `delta` to a counter. Arithmetic only; no sink dispatch.
  void add(ProbeId id, double delta = 1.0) {
    probes_[static_cast<std::size_t>(id.index)].value += delta;
  }

  /// Sets a gauge's current value. Arithmetic only; no sink dispatch.
  void set(ProbeId id, double value) {
    probes_[static_cast<std::size_t>(id.index)].value = value;
  }

  /// Records one histogram observation (histogram-bucket increment).
  void observe(ProbeId id, double value);

  // -------------------------------------------------------- sampling

  /// Attaches the sink and immediately hands it the current catalog.
  /// Samples taken while no sink is attached are dropped.
  void set_sink(TraceSink* sink);

  /// Emits a baseline sampling pass and arms the periodic sampler.
  /// Idempotent; called by Experiment::start(). Partitioned cluster
  /// runs pass arm_sampler=false: a PeriodicTask would sample
  /// mid-window while other partitions are running, so
  /// ClusterExperiment instead calls sample_now() from the engine's
  /// barrier hook, where every partition is quiescent (deterministic
  /// per-partition probe aggregation -- see docs/PARALLELISM.md).
  void start(bool arm_sampler = true);

  /// Runs one sampling pass at the current simulated time.
  void sample_now();

  /// Final sampling pass + TraceSink::end(); detaches the sink and
  /// stops the sampler. Call after the run, while the instrumented
  /// components (whose poll callbacks the pass reads) are still alive.
  void finish();

  // ------------------------------------------------------ inspection

  /// Full catalog, histogram parents and derived series included.
  [[nodiscard]] const std::vector<ProbeInfo>& probes() const { return catalog_; }

  /// Current value of catalog entry `i`: counters/gauges return their
  /// latest (polled if registered so) value; histogram parents return
  /// their observation count.
  [[nodiscard]] double value_at(std::size_t i) const;

  /// Looks up a probe by exact name.
  [[nodiscard]] std::optional<ProbeId> find(const std::string& name) const;

  [[nodiscard]] const TraceParams& params() const { return params_; }

 private:
  struct Probe {
    double value = 0.0;                  // counter total / gauge level
    std::function<double()> poll;        // optional state reader
    std::unique_ptr<LogHistogram> hist;  // kHistogram only
    std::int32_t derived = -1;           // index of the .p50 entry
    bool emit = true;                    // histogram parents: false
  };

  ProbeId intern(std::string name, Kind kind, std::string unit,
                 std::function<double()> poll, bool emit);

  sim::Simulator& sim_;
  TraceParams params_;
  /// Active ScopedPrefix chain, prepended to every interned name.
  std::string prefix_;
  TraceSink* sink_ = nullptr;
  std::vector<ProbeInfo> catalog_;  // parallel to probes_
  std::vector<Probe> probes_;
  std::optional<sim::PeriodicTask> sampler_;
  bool started_ = false;
};

// The disabled path must stay a single inline pointer test; a virtual
// Tracer would put a vtable between every hot-path hook and its guard.
static_assert(!std::is_polymorphic_v<Tracer>, "Tracer must stay non-virtual on hot paths");

}  // namespace hicc::trace
