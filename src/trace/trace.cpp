#include "trace/trace.h"

#include <cassert>
#include <utility>

namespace hicc::trace {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

std::string host_prefix(int host) { return "host" + std::to_string(host) + "."; }

std::string host_probe(int host, const std::string& name) {
  return host_prefix(host) + name;
}

std::vector<RecordingSink::Sample> RecordingSink::of(const std::string& probe) const {
  std::vector<Sample> out;
  for (const Sample& s : samples_) {
    if (s.probe == probe) out.push_back(s);
  }
  return out;
}

Tracer::Tracer(sim::Simulator& sim, TraceParams params) : sim_(sim), params_(params) {
  counter("sim.events_executed", "events",
          [this] { return static_cast<double>(sim_.executed()); });
  // Slab occupancy, cancellation tombstones included: the engine's
  // memory-pressure figure. Always >= sim.pending.
  gauge("sim.queue_depth", "events",
        [this] { return static_cast<double>(sim_.queued_nodes()); });
  // Live events awaiting execution (exact; excludes tombstones).
  gauge("sim.pending", "events", [this] { return static_cast<double>(sim_.pending()); });
  // Events retired since the previous sampling tick -- the engine's
  // instantaneous event rate, scaled by the sample period. The poll
  // lambda keeps the previous total, so this stays zero-cost on the
  // hot path like every other polled probe.
  gauge("sim.events_per_poll", "events",
        [this, last = std::uint64_t{0}]() mutable {
          const std::uint64_t total = sim_.executed();
          const double delta = static_cast<double>(total - last);
          last = total;
          return delta;
        });
}

ProbeId Tracer::intern(std::string name, Kind kind, std::string unit,
                       std::function<double()> poll, bool emit) {
  if (!prefix_.empty()) name.insert(0, prefix_);
  for (std::size_t i = 0; i < catalog_.size(); ++i) {
    if (catalog_[i].name == name) {
      // Get-or-create: instances sharing a metric share the series.
      // The kind must agree; the first registrant's poll wins.
      assert(catalog_[i].kind == kind);
      return ProbeId{static_cast<std::int32_t>(i)};
    }
  }
  catalog_.push_back(ProbeInfo{std::move(name), kind, std::move(unit)});
  Probe p;
  p.poll = std::move(poll);
  p.emit = emit;
  if (kind == Kind::kHistogram) p.hist = std::make_unique<LogHistogram>();
  probes_.push_back(std::move(p));
  return ProbeId{static_cast<std::int32_t>(probes_.size()) - 1};
}

ProbeId Tracer::counter(std::string name, std::string unit, std::function<double()> poll) {
  return intern(std::move(name), Kind::kCounter, std::move(unit), std::move(poll), true);
}

ProbeId Tracer::gauge(std::string name, std::string unit, std::function<double()> poll) {
  return intern(std::move(name), Kind::kGauge, std::move(unit), std::move(poll), true);
}

ProbeId Tracer::histogram(std::string name, std::string unit) {
  const ProbeId id = intern(name, Kind::kHistogram, unit, nullptr, /*emit=*/false);
  Probe& parent = probes_[static_cast<std::size_t>(id.index)];
  if (parent.derived < 0) {
    // Derived series are emitted by the sampler from the accumulated
    // histogram; they are registered contiguously so one index finds
    // all three.
    parent.derived = static_cast<std::int32_t>(probes_.size());
    intern(name + ".p50", Kind::kGauge, unit, nullptr, true);
    intern(name + ".p99", Kind::kGauge, unit, nullptr, true);
    intern(name + ".count", Kind::kCounter, "observations", nullptr, true);
  }
  return id;
}

void Tracer::observe(ProbeId id, double value) {
  Probe& p = probes_[static_cast<std::size_t>(id.index)];
  p.hist->add(value);
  p.value = static_cast<double>(p.hist->count());
}

void Tracer::set_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_ != nullptr) sink_->begin(catalog_);
}

void Tracer::start(bool arm_sampler) {
  if (started_) return;
  started_ = true;
  sample_now();
  if (arm_sampler) {
    sampler_.emplace(sim_, params_.sample_period, [this] { sample_now(); });
  }
}

void Tracer::sample_now() {
  const TimePs t = sim_.now();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    Probe& p = probes_[i];
    if (p.hist != nullptr && p.derived >= 0) {
      // Refresh the derived series before the loop reaches them (they
      // were registered right after their parent). Done even without a
      // sink so sweep harvesting sees current percentiles.
      probes_[static_cast<std::size_t>(p.derived)].value = p.hist->percentile(50);
      probes_[static_cast<std::size_t>(p.derived) + 1].value = p.hist->percentile(99);
      probes_[static_cast<std::size_t>(p.derived) + 2].value =
          static_cast<double>(p.hist->count());
    }
    if (!p.emit || sink_ == nullptr) continue;
    sink_->sample(catalog_[i], t, p.poll ? p.poll() : p.value);
  }
}

void Tracer::finish() {
  if (sink_ != nullptr) {
    sample_now();
    sink_->end();
    sink_ = nullptr;
  }
  sampler_.reset();
  started_ = false;
}

double Tracer::value_at(std::size_t i) const {
  const Probe& p = probes_[i];
  return p.poll ? p.poll() : p.value;
}

std::optional<ProbeId> Tracer::find(const std::string& name) const {
  for (std::size_t i = 0; i < catalog_.size(); ++i) {
    if (catalog_[i].name == name) return ProbeId{static_cast<std::int32_t>(i)};
  }
  return std::nullopt;
}

}  // namespace hicc::trace
