#include "trace/exporters.h"

#include <fstream>

#include "common/fmt.h"

namespace hicc::trace {

namespace {

/// Sample times are printed in microseconds; picosecond resolution is
/// 1e-6 us, so round-trip double formatting is exact.
void put_time_us(std::ostream& os, TimePs t) { put_double(os, t.us()); }

/// The category shown in the Chrome trace viewer: the probe name's
/// first dotted component ("nic", "pcie", "iommu", ...).
std::string category_of(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

void CsvTraceWriter::begin(const std::vector<ProbeInfo>& probes) {
  os_ << "# hicc.trace.v1\n";
  for (const ProbeInfo& p : probes) {
    os_ << "# probe," << p.name << "," << to_string(p.kind) << "," << p.unit << "\n";
  }
  os_ << "time_us,probe,value\n";
}

void CsvTraceWriter::sample(const ProbeInfo& probe, TimePs t, double value) {
  put_time_us(os_, t);
  os_ << "," << probe.name << ",";
  put_double(os_, value);
  os_ << "\n";
}

void CsvTraceWriter::end() { os_.flush(); }

void ChromeTraceWriter::begin(const std::vector<ProbeInfo>& probes) {
  (void)probes;
  os_ << "{\"otherData\": {\"schema\": \"hicc.trace.v1\"},\n"
      << "\"displayTimeUnit\": \"ms\",\n"
      << "\"traceEvents\": [\n"
      << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
         "\"args\": {\"name\": \"hicc\"}}";
  first_event_ = false;
}

void ChromeTraceWriter::sample(const ProbeInfo& probe, TimePs t, double value) {
  os_ << (first_event_ ? "\n" : ",\n");
  first_event_ = false;
  os_ << " {\"name\": \"" << probe.name << "\", \"cat\": \"" << category_of(probe.name)
      << "\", \"ph\": \"C\", \"ts\": ";
  put_time_us(os_, t);
  os_ << ", \"pid\": 1, \"tid\": 1, \"args\": {\"" << probe.unit << "\": ";
  put_double(os_, value);
  os_ << "}}";
}

void ChromeTraceWriter::end() {
  os_ << "\n]}\n";
  os_.flush();
}

bool FileTraceSink::open(Tracer& tracer, const std::string& path) {
  file_ = std::make_unique<std::ofstream>(path);
  if (!*file_) return false;
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    sink_ = std::make_unique<CsvTraceWriter>(*file_);
  } else {
    sink_ = std::make_unique<ChromeTraceWriter>(*file_);
  }
  tracer.set_sink(sink_.get());
  return true;
}

bool FileTraceSink::close(Tracer& tracer) {
  if (sink_ == nullptr) return false;
  tracer.finish();
  const bool ok = static_cast<bool>(*file_);
  file_->close();
  sink_.reset();
  file_.reset();
  return ok;
}

}  // namespace hicc::trace
