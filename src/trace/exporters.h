// File exporters for traced runs.
//
// Two formats, both documented in docs/OBSERVABILITY.md:
//
//  * CsvTraceWriter -- the `hicc.trace.v1` long-format CSV: a probe
//    catalog in `# probe,...` comment lines, then one
//    `time_us,probe,value` row per sample. Trivially loadable with
//    pandas / gnuplot / awk.
//
//  * ChromeTraceWriter -- Chrome `trace_event` JSON (counter events,
//    "ph":"C"), so a capture opens directly in chrome://tracing or
//    https://ui.perfetto.dev with one named track per probe.
//
// Both writers stream: each sample is formatted as it arrives, nothing
// is buffered beyond the ostream. Doubles use round-trip formatting
// (common/fmt.h) so outputs are bitwise-stable across runs.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "trace/trace.h"

namespace hicc::trace {

/// Long-format CSV writer (schema "hicc.trace.v1").
class CsvTraceWriter final : public TraceSink {
 public:
  explicit CsvTraceWriter(std::ostream& os) : os_(os) {}

  void begin(const std::vector<ProbeInfo>& probes) override;
  void sample(const ProbeInfo& probe, TimePs t, double value) override;
  void end() override;

 private:
  std::ostream& os_;
};

/// Chrome trace_event JSON writer: one counter track per probe.
class ChromeTraceWriter final : public TraceSink {
 public:
  explicit ChromeTraceWriter(std::ostream& os) : os_(os) {}

  void begin(const std::vector<ProbeInfo>& probes) override;
  void sample(const ProbeInfo& probe, TimePs t, double value) override;
  void end() override;

 private:
  std::ostream& os_;
  bool first_event_ = true;
};

/// Opens `path` and attaches the writer matching its extension (.csv
/// -> CSV, anything else -> Chrome JSON) to `tracer`. Returns false if
/// the file cannot be opened. The returned sink must stay alive until
/// Tracer::finish(); wrap in the small RAII helper below.
class FileTraceSink {
 public:
  FileTraceSink() = default;

  /// Attach to `tracer`, writing to `path`. False on I/O failure.
  [[nodiscard]] bool open(Tracer& tracer, const std::string& path);

  /// Flushes via Tracer::finish() and closes the file. True when the
  /// stream is still good after the final write.
  [[nodiscard]] bool close(Tracer& tracer);

 private:
  std::unique_ptr<std::ofstream> file_;
  std::unique_ptr<TraceSink> sink_;
};

}  // namespace hicc::trace
