// Conservative time-parallel execution on top of sim::Simulator.
//
// A ParallelEngine owns P partition Simulators and runs them in
// lockstep lookahead windows: within a window [t, t+L) every partition
// executes its own events independently (no partition can affect
// another inside the window), and at the window barrier the engine
// drains bounded per-(src,dst) mailboxes of cross-partition events
// into the destination simulators. L -- the lookahead -- is the
// minimum latency of any cross-partition interaction; for a cluster
// run it is the edge-link propagation delay, so a message posted
// during a window always lands at or after the next window's start
// and conservative causality holds without rollback.
//
// Determinism contract (docs/PARALLELISM.md): the worker-thread count
// never influences the logical event order. Partitions are disjoint
// (one thread runs one partition's window at a time), mailbox rows are
// single-writer (only the posting partition's thread appends during a
// window; only the coordinator drains at the barrier), and drained
// messages are merged in canonical `(time, src partition, seq)` order
// before being scheduled -- a pure function of message content. Runs
// with 1 and N threads are therefore bitwise identical, including
// per-partition executed-event counts. A single-partition engine
// degenerates to plain `Simulator::run_until` (one window, no message
// splitting) and reproduces a serial run bitwise
// (tests/parallel_test.cpp pins both properties).
//
// Thread-safety model (TSan-gated in CI): all cross-thread handoffs --
// window start, window completion, mailbox drain -- go through one
// mutex/condvar pair, so partition state and mailbox rows are always
// transferred with a happens-before edge. Partition code itself runs
// single-threaded and needs no synchronization.
// hicc-lint: hotpath -- post() sits on the cross-partition packet path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"

namespace hicc::sim {

/// The engine's public knobs. Documented knob-for-knob in
/// docs/PARALLELISM.md (scripts/hicc_lint.py `docs-par-knob` keeps the
/// two in lockstep).
struct ParallelParams {
  /// Partition count; each partition is one Simulator. 1 gives the
  /// degenerate serial engine (one window, no event splitting).
  int partitions = 1;
  /// Window length = minimum cross-partition latency. Must be > 0
  /// when partitions > 1; ClusterExperiment passes the topology's
  /// edge-link propagation delay.
  TimePs lookahead{};
  /// Worker threads executing partition windows; capped at
  /// `partitions`. 1 runs every window on the calling thread. The
  /// thread count never changes results, only wall-clock time.
  int threads = 1;
  /// Per-(src,dst) mailbox bound: the most cross-partition events one
  /// partition may post toward another in a single window. Exceeding
  /// it aborts the run gracefully (AbortCause::kMailboxOverflow), like
  /// a watchdog trip -- a deterministic property of the workload, not
  /// of thread timing.
  std::size_t mailbox_capacity = 1u << 20;
};

/// P partition Simulators + a persistent worker pool + the barrier
/// protocol. Construction and every public method are
/// coordinator-thread only; post() alone may be called from partition
/// code while a window runs.
class ParallelEngine {
 public:
  explicit ParallelEngine(ParallelParams params);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] int partitions() const { return partitions_; }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] TimePs lookahead() const { return params_.lookahead; }
  /// Barrier time: every partition's now() equals this between windows
  /// (aborted partitions may sit earlier, at their abort instant).
  [[nodiscard]] TimePs now() const { return now_; }

  /// Partition p's simulator. Components of partition p are built on
  /// (and schedule only through) this; cross-partition effects go
  /// through post().
  [[nodiscard]] Simulator& sim(int p) {
    return *sims_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const Simulator& sim(int p) const {
    return *sims_[static_cast<std::size_t>(p)];
  }

  /// Posts `fn` to run at absolute time `t` in partition `dst`. The
  /// ONLY legal cross-partition channel (`par-engine-post` lint rule):
  /// callers must be executing inside partition `src` (or be the
  /// coordinator between windows), and `t` must honor the conservative
  /// contract t >= current window end -- guaranteed whenever the
  /// posting path includes >= `lookahead` of propagation delay.
  /// Messages are fire-and-forget: once posted they cannot be
  /// cancelled from `src`; destination-local state must gate any
  /// revocable effect (docs/PARALLELISM.md, "mailbox protocol").
  template <typename F>
  void post(int src, int dst, TimePs t, F&& fn) {
    assert(t >= window_end_ &&
           "conservative lookahead violated: cross-partition event lands "
           "inside the running window");
    Mailbox& box =
        outbox_[static_cast<std::size_t>(src) * static_cast<std::size_t>(partitions_) +
                static_cast<std::size_t>(dst)];
    if (box.msgs.size() >= params_.mailbox_capacity) {
      box.overflowed = true;
      return;  // the overflow aborts the run at the next barrier
    }
    // hicc-lint: allow(hot-vector-growth) -- amortized: rows keep their
    // capacity across windows (drain clears, never shrinks) and are
    // hard-bounded by mailbox_capacity.
    box.msgs.push_back(Message{t, box.next_seq++, InlineAction(std::forward<F>(fn))});
  }

  /// Runs every partition until `end` in lookahead windows, draining
  /// mailboxes and invoking the barrier hook at each boundary. Returns
  /// early (with now() at the last completed barrier) once any
  /// partition aborts -- watchdog trip or mailbox overflow.
  void run_until(TimePs end);

  /// Invoked on the coordinator at every window boundary while all
  /// partitions are quiescent -- the only safe instant for
  /// cross-partition reads (trace sampling, metrics snapshots).
  void set_barrier_hook(InlineAction hook) { barrier_hook_ = std::move(hook); }

  /// True once any partition aborted (watchdog or mailbox overflow);
  /// run_until() refuses to start further windows.
  [[nodiscard]] bool aborted() const { return first_aborted_ >= 0; }
  /// Lowest-index aborted partition, -1 when none: the deterministic
  /// choice for surfacing one run_status out of many partitions.
  [[nodiscard]] int first_aborted_partition() const { return first_aborted_; }

  /// Sum of executed() over all partitions -- the run-global event
  /// count ClusterMetrics reports.
  [[nodiscard]] std::uint64_t executed_total() const;
  /// Window barriers completed so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-partition messages delivered through the mailboxes so far.
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }
  /// High-water mark of any single (src,dst) mailbox row, for sizing
  /// mailbox_capacity.
  [[nodiscard]] std::size_t max_mailbox_depth() const { return max_mailbox_depth_; }

 private:
  /// One cross-partition event: `seq` is a per-row counter, so
  /// `(time, src, seq)` totally orders every drained message.
  struct Message {
    TimePs time{};
    std::uint64_t seq = 0;
    InlineAction fn;
  };

  /// One (src,dst) row. Single-writer: the src partition's thread
  /// appends during a window, the coordinator drains at the barrier.
  struct Mailbox {
    std::vector<Message> msgs;
    std::uint64_t next_seq = 0;
    bool overflowed = false;
  };

  /// A drained message tagged with its source partition for the
  /// canonical merge sort.
  struct MergeEntry {
    TimePs time{};
    int src = 0;
    std::uint64_t seq = 0;
    InlineAction fn;
  };

  void run_window(TimePs wend);
  /// The shared partition-claim loop run by the coordinator and every
  /// worker during a window.
  void claim_partitions(TimePs wend);
  void worker_main();
  /// Merges and schedules every pending mailbox message; coordinator
  /// only, all workers idle.
  void drain_mailboxes();
  /// Records watchdog trips and mailbox overflows; returns true when
  /// the run must stop.
  bool check_aborts();

  ParallelParams params_;
  int partitions_;
  int threads_;
  TimePs now_{};
  /// End of the window being executed; post()'s conservative floor.
  TimePs window_end_{};
  std::uint64_t windows_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::size_t max_mailbox_depth_ = 0;
  int first_aborted_ = -1;

  std::vector<std::unique_ptr<Simulator>> sims_;
  /// Row-major [src * partitions_ + dst].
  std::vector<Mailbox> outbox_;
  std::vector<MergeEntry> merge_scratch_;
  InlineAction barrier_hook_;

  // Worker pool (empty when threads_ == 1). Handoff protocol: the
  // coordinator publishes (window_end_shared_, generation_) under mu_,
  // workers claim partitions via the atomic ticket, and completion is
  // signaled back under mu_ -- every sim/mailbox access is separated
  // by a mutex acquisition, giving TSan-verifiable happens-before.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<int> next_partition_{0};
  TimePs window_end_shared_{};
  std::uint64_t generation_ = 0;
  int idle_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace hicc::sim
