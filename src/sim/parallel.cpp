// hicc-lint: hotpath -- window loop and mailbox drain run per barrier.
#include "sim/parallel.h"

#include <cassert>
#include <utility>

namespace hicc::sim {

ParallelEngine::ParallelEngine(ParallelParams params)
    : params_(params),
      partitions_(params.partitions < 1 ? 1 : params.partitions),
      threads_(params.threads < 1 ? 1 : params.threads) {
  if (threads_ > partitions_) threads_ = partitions_;
  assert((partitions_ == 1 || params_.lookahead > TimePs{}) &&
         "multi-partition engine needs a positive lookahead");
  sims_.reserve(static_cast<std::size_t>(partitions_));
  for (int p = 0; p < partitions_; ++p) {
    // hicc-lint: allow(hot-heap-alloc) -- construction only, one per partition.
    sims_.push_back(std::make_unique<Simulator>());
  }
  outbox_.resize(static_cast<std::size_t>(partitions_) *
                 static_cast<std::size_t>(partitions_));
  merge_scratch_.reserve(64);
  for (Mailbox& box : outbox_) box.msgs.reserve(16);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelEngine::claim_partitions(TimePs wend) {
  for (;;) {
    const int p = next_partition_.fetch_add(1, std::memory_order_relaxed);
    if (p >= partitions_) return;
    Simulator& s = *sims_[static_cast<std::size_t>(p)];
    if (!s.aborted()) s.run_until(wend);
  }
}

void ParallelEngine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    TimePs wend{};
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      wend = window_end_shared_;
    }
    claim_partitions(wend);
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
    }
    done_cv_.notify_one();
  }
}

void ParallelEngine::run_window(TimePs wend) {
  if (workers_.empty()) {
    // Single-threaded: run partitions in index order on this thread.
    for (auto& s : sims_) {
      if (!s->aborted()) s->run_until(wend);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    window_end_shared_ = wend;
    next_partition_.store(0, std::memory_order_relaxed);
    idle_workers_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  claim_partitions(wend);  // the coordinator is a worker too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [this] { return idle_workers_ == static_cast<int>(workers_.size()); });
}

void ParallelEngine::drain_mailboxes() {
  const auto n = static_cast<std::size_t>(partitions_);
  for (std::size_t dst = 0; dst < n; ++dst) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      Mailbox& box = outbox_[src * n + dst];
      if (box.msgs.size() > max_mailbox_depth_) max_mailbox_depth_ = box.msgs.size();
      for (Message& m : box.msgs) {
        merge_scratch_.push_back(
            MergeEntry{m.time, static_cast<int>(src), m.seq, std::move(m.fn)});
      }
      box.msgs.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Canonical cross-partition order: (time, src partition, seq).
    // (src, seq) pairs are unique, so this is a strict total order and
    // plain sort is deterministic regardless of drain interleaving.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    Simulator& target = *sims_[dst];
    for (MergeEntry& e : merge_scratch_) {
      ++messages_delivered_;
      target.at(e.time, std::move(e.fn));
    }
    merge_scratch_.clear();
  }
}

bool ParallelEngine::check_aborts() {
  const auto n = static_cast<std::size_t>(partitions_);
  // Mailbox overflow aborts the *posting* partition so run_status points
  // at the source of the traffic, mirroring a watchdog trip there.
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      Mailbox& box = outbox_[src * n + dst];
      if (!box.overflowed) continue;
      box.overflowed = false;
      Simulator& s = *sims_[src];
      if (!s.aborted()) {
        s.abort_run(AbortCause::kMailboxOverflow,
                    "cross-partition mailbox exceeded capacity " +
                        std::to_string(params_.mailbox_capacity));
      }
    }
  }
  for (int p = 0; p < partitions_; ++p) {
    if (sims_[static_cast<std::size_t>(p)]->aborted()) {
      if (first_aborted_ < 0) first_aborted_ = p;
      return true;
    }
  }
  return false;
}

void ParallelEngine::run_until(TimePs end) {
  // Deliver anything posted before the run (or between run_until calls).
  drain_mailboxes();
  while (now_ < end && !aborted()) {
    TimePs wend = end;
    if (partitions_ > 1) {
      const TimePs next = now_ + params_.lookahead;
      if (next < wend) wend = next;
    }
    window_end_ = wend;
    run_window(wend);
    now_ = wend;
    ++windows_;
    const bool stop = check_aborts();
    drain_mailboxes();
    if (barrier_hook_) barrier_hook_();
    if (stop) break;
  }
}

std::uint64_t ParallelEngine::executed_total() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->executed();
  return total;
}

}  // namespace hicc::sim
