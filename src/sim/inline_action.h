// Move-only type-erased callables with inline (small-buffer) storage.
//
// `std::function` heap-allocates any capture larger than ~16 bytes --
// on the event-engine hot path that is one malloc/free per simulated
// packet, TLP and timer. `InlineFunction<Sig, Capacity>` stores the
// closure in an in-object buffer instead: invoking, moving and
// destroying a fitting closure never touches the heap. Closures larger
// than `Capacity` (or over-aligned ones) still work -- they fall back
// to a single boxed heap allocation -- so correctness never depends on
// capture size, only performance does. `InlineFunction` is move-only:
// captures (packets in flight, completion continuations) are owned
// exactly once, which `std::function`'s copyability silently broke.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hicc::sim {

template <typename Sig, std::size_t Capacity,
          std::size_t Align = alignof(std::max_align_t)>
class InlineFunction;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args, std::size_t Capacity, std::size_t Align>
class InlineFunction<R(Args...), Capacity, Align> {
  // The fallback representation is a pointer into the buffer, so the
  // buffer must at least hold one (and be aligned for one).
  static_assert(Capacity >= sizeof(void*), "InlineFunction capacity too small");
  static_assert(Align >= alignof(void*), "InlineFunction alignment too small");

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= Align &&
      std::is_nothrow_move_constructible_v<D>;

 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& o) noexcept { move_from(o); }
  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  /// Rebinds to a new callable, constructing it directly in the inline
  /// buffer (no intermediate InlineFunction temporary).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  /// True when a callable is held.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Shallow-const like std::function: calling through a const
  /// reference is allowed and may mutate the held closure's state.
  R operator()(Args... args) const {
    return invoke_(const_cast<unsigned char*>(buf_), static_cast<Args&&>(args)...);
  }

  /// True when the held closure lives in the inline buffer (empty
  /// functions count as inline). Exposed for the allocation tests.
  [[nodiscard]] bool is_inline() const {
    if (manage_ == nullptr) return true;  // empty or trivial inline
    bool boxed = false;
    manage_(Op::kQueryBoxed, &boxed, nullptr);
    return !boxed;
  }

 private:
  enum class Op : std::uint8_t { kMove, kDestroy, kQueryBoxed };

  template <typename D>
  static R invoke_inline(void* buf, Args... args) {
    return (*static_cast<D*>(buf))(static_cast<Args&&>(args)...);
  }
  template <typename D>
  static void manage_inline(Op op, void* dst, void* src) {
    switch (op) {
      case Op::kMove:
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
        break;
      case Op::kDestroy:
        static_cast<D*>(dst)->~D();
        break;
      case Op::kQueryBoxed:
        *static_cast<bool*>(dst) = false;
        break;
    }
  }

  template <typename D>
  static R invoke_boxed(void* buf, Args... args) {
    return (**static_cast<D**>(buf))(static_cast<Args&&>(args)...);
  }
  template <typename D>
  static void manage_boxed(Op op, void* dst, void* src) {
    switch (op) {
      case Op::kMove:
        *static_cast<D**>(dst) = *static_cast<D**>(src);
        break;
      case Op::kDestroy:
        delete *static_cast<D**>(dst);
        break;
      case Op::kQueryBoxed:
        *static_cast<bool*>(dst) = true;
        break;
    }
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      // Trivially copyable + destructible closures (`[this]`, POD
      // packets by value -- the hot-path majority) need no manager:
      // moves are a buffer copy and destruction is a no-op.
      if constexpr (!(std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>)) {
        manage_ = &manage_inline<D>;
      }
    } else {
      // hicc-lint: allow(hot-heap-alloc) -- documented oversize fallback:
      // hot-path closures are engineered to fit inline (static_asserts at
      // the call sites); this box only serves cold oversized captures.
      ::new (static_cast<void*>(&buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_boxed<D>;
      manage_ = &manage_boxed<D>;
    }
  }

  void move_from(InlineFunction& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kMove, &buf_, &o.buf_);
    } else {
      std::memcpy(&buf_, &o.buf_, Capacity);  // manager-less: trivial bits
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, &buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Zero-initialized so the manager-less whole-buffer memcpy in
  // move_from never reads indeterminate bytes (closures smaller than
  // Capacity leave a tail).
  alignas(Align) unsigned char buf_[Capacity] = {};
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

/// The engine's event closure: 80 bytes of inline capture -- enough for
/// `[this, 64-byte Packet, int64]`, the fattest hot-path closure.
using InlineAction = InlineFunction<void(), 80>;

/// Component completion callbacks (TLP retirement, translation done):
/// the hot ones capture `[this]` or `[this, id]`, so 32 bytes suffices.
/// Pointer alignment (not max_align_t) so a callback embedded in a
/// struct -- e.g. a PCIe TLP -- doesn't pad the struct past what an
/// InlineAction capture can hold.
template <typename Sig>
using InlineCallback = InlineFunction<Sig, 32, alignof(void*)>;

}  // namespace hicc::sim
