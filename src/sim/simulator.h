// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered queue of events (closures). Components
// schedule events at absolute or relative times; ties are broken by
// scheduling order so execution is fully deterministic. Events can be
// cancelled by id (used for timers that are usually rearmed, e.g.
// retransmission timeouts and pacing timers).
//
// Robustness guards (src/fault/ relies on these): an optional watchdog
// aborts runs that exhaust an event budget or stop making time progress
// (a pathological self-rescheduling-at-now event). An abort is graceful
// -- the queue is left intact, now() stays at the abort instant, and
// callers can still harvest metrics and flush traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/units.h"

namespace hicc::sim {

/// Opaque handle for a scheduled event; id 0 is "invalid/none".
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] constexpr bool valid() const { return seq != 0; }
  constexpr bool operator==(const EventId&) const = default;
};

/// Run-invariant guards. Zero disables a guard; the defaults keep the
/// engine's historical unguarded behavior.
struct WatchdogParams {
  /// Aborts once this many events have executed (runaway-run budget).
  std::uint64_t max_events = 0;
  /// Aborts when this many events execute back-to-back at one simulated
  /// instant without time advancing (an event loop rescheduling itself
  /// at now() would otherwise spin forever).
  std::uint64_t max_events_per_timestamp = 0;
};

/// Why a watchdog stopped the run.
enum class AbortCause : std::uint8_t { kNone, kEventBudget, kTimestampStall };

/// The event loop. Single-threaded by design: one Simulator per
/// experiment run; parallelism, when wanted, is across runs.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Advances only inside run_* calls.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Times in the past are clamped
  /// to now() (the event still runs, after already-due events).
  EventId at(TimePs t, Action fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId after(TimePs delay, Action fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event. Returns true if the event had not yet run
  /// (or been cancelled). Safe to call with an invalid id, and with the
  /// id of an event that already executed.
  bool cancel(EventId id);

  /// Runs all events with time <= `end`, then sets now() == end. After
  /// a watchdog abort, returns immediately and now() stays put.
  void run_until(TimePs end);

  /// Pops and runs the single earliest event. Returns false if idle or
  /// aborted.
  bool run_one();

  /// Number of events scheduled but not yet run or cancelled. Live ids
  /// are tracked in their own set, so a cancellation can never make
  /// this underflow (cancelling an already-run event is a no-op).
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

  /// Total events executed since construction (for engine benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Installs (or, with default params, clears) the run watchdog.
  void set_watchdog(WatchdogParams wd) { watchdog_ = wd; }
  [[nodiscard]] const WatchdogParams& watchdog() const { return watchdog_; }

  /// True once a watchdog guard has tripped; the engine refuses to
  /// execute further events but keeps all state readable.
  [[nodiscard]] bool aborted() const { return abort_cause_ != AbortCause::kNone; }
  [[nodiscard]] AbortCause abort_cause() const { return abort_cause_; }
  /// Human-readable abort explanation; empty while not aborted.
  [[nodiscard]] const std::string& abort_reason() const { return abort_reason_; }

 private:
  struct Event {
    TimePs time;
    std::uint64_t seq;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const Event& o) const {
      if (time != o.time) return o.time < time;
      return o.seq < seq;
    }
    mutable Action fn;  // moved out when executed
  };

  /// Checks the watchdog before executing the event at `t`. Returns
  /// false (and records the abort) when a guard trips.
  bool guard_event(TimePs t);

  TimePs now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event> queue_;
  /// Seqs of scheduled events that have neither run nor been cancelled.
  /// Always a subset of the queue's entries by construction: at()
  /// inserts, cancel()/execution erase.
  std::unordered_set<std::uint64_t> live_;

  WatchdogParams watchdog_;
  AbortCause abort_cause_ = AbortCause::kNone;
  std::string abort_reason_;
  TimePs last_exec_time_{};
  std::uint64_t same_time_streak_ = 0;
};

/// Self-rescheduling periodic task; the first tick fires one period
/// from start. stop() leaves the task restartable via start(); a
/// default-constructed or moved-from task is explicitly dead (all
/// operations are no-ops). State lives behind a stable heap allocation,
/// so tasks are movable and can be stored in vectors.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulator& sim, TimePs period, std::function<void()> fn)
      : state_(std::make_unique<State>(&sim, period, std::move(fn))) {
    arm(*state_);
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  PeriodicTask(PeriodicTask&&) noexcept = default;
  PeriodicTask& operator=(PeriodicTask&& o) noexcept {
    if (this != &o) {
      stop();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~PeriodicTask() { stop(); }

  /// Cancels the pending tick. The task keeps its simulator, period and
  /// callback, so start() can rearm it later.
  void stop() {
    if (state_ == nullptr) return;
    state_->sim->cancel(state_->pending);
    state_->pending = {};
  }

  /// Rearms a stopped task (next tick one period from now). No-op when
  /// already running or dead.
  void start() {
    if (state_ == nullptr || state_->pending.valid()) return;
    arm(*state_);
  }

  /// True while a tick is scheduled. Dead tasks report false.
  [[nodiscard]] bool running() const { return state_ != nullptr && state_->pending.valid(); }

 private:
  /// The scheduled closure captures this stable address, never the
  /// PeriodicTask itself -- which is what makes moves safe.
  struct State {
    State(Simulator* s, TimePs p, std::function<void()> f)
        : sim(s), period(p), fn(std::move(f)) {}
    Simulator* sim;
    TimePs period;
    std::function<void()> fn;
    EventId pending{};
  };

  static void arm(State& s) {
    s.pending = s.sim->after(s.period, [sp = &s] {
      arm(*sp);  // rearm first so fn may stop() the task
      sp->fn();
    });
  }

  std::unique_ptr<State> state_;
};

}  // namespace hicc::sim
