// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered queue of events (closures). Components
// schedule events at absolute or relative times; ties are broken by
// scheduling order so execution is fully deterministic. Events can be
// cancelled by id (used for timers that are usually rearmed, e.g.
// retransmission timeouts and pacing timers).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace hicc::sim {

/// Opaque handle for a scheduled event; id 0 is "invalid/none".
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] constexpr bool valid() const { return seq != 0; }
  constexpr bool operator==(const EventId&) const = default;
};

/// The event loop. Single-threaded by design: one Simulator per
/// experiment run; parallelism, when wanted, is across runs.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Advances only inside run_* calls.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Times in the past are clamped
  /// to now() (the event still runs, after already-due events).
  EventId at(TimePs t, Action fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId after(TimePs delay, Action fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event. Returns true if the event had not yet run
  /// (or been cancelled). Safe to call with an invalid id.
  bool cancel(EventId id);

  /// Runs all events with time <= `end`, then sets now() == end.
  void run_until(TimePs end);

  /// Pops and runs the single earliest event. Returns false if idle.
  bool run_one();

  /// Number of events still queued (including cancelled tombstones).
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction (for engine benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePs time;
    std::uint64_t seq;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const Event& o) const {
      if (time != o.time) return o.time < time;
      return o.seq < seq;
    }
    mutable Action fn;  // moved out when executed
  };

  TimePs now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Self-rescheduling periodic task. The task stops when destroyed or
/// when stop() is called; the first tick fires one period from start.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulator& sim, TimePs period, std::function<void()> fn)
      : sim_(&sim), period_(period), fn_(std::move(fn)) {
    arm();
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask() { stop(); }

  void stop() {
    if (sim_ != nullptr) sim_->cancel(pending_);
    pending_ = {};
  }

 private:
  void arm() {
    pending_ = sim_->after(period_, [this] {
      arm();  // rearm first so fn_ may stop() the task
      fn_();
    });
  }

  Simulator* sim_ = nullptr;
  TimePs period_{};
  std::function<void()> fn_;
  EventId pending_{};
};

}  // namespace hicc::sim
