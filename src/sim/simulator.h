// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered queue of events (closures). Components
// schedule events at absolute or relative times; ties are broken by
// scheduling order so execution is fully deterministic. Events can be
// cancelled by id (used for timers that are usually rearmed, e.g.
// retransmission timeouts and pacing timers).
//
// The hot path is allocation-free in steady state: closures live in
// slab-pooled nodes with inline capture storage (InlineAction), near
// -horizon events go into a calendar-bucket wheel and far-future timers
// into a compact binary heap, and cancellation is O(1) generation
// -stamped tombstoning. See DESIGN.md ("event engine") for the queue
// structure and the determinism argument.
//
// Robustness guards (src/fault/ relies on these): an optional watchdog
// aborts runs that exhaust an event budget or stop making time progress
// (a pathological self-rescheduling-at-now event). An abort is graceful
// -- the queue is left intact, now() stays at the abort instant, and
// callers can still harvest metrics and flush traces.
// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/inline_action.h"

namespace hicc::sim {

/// Opaque handle for a scheduled event; id 0 is "invalid/none". `seq`
/// is a never-reused generation stamp, `slot` locates the queue node it
/// was issued for -- a stale or forged handle fails the stamp check.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  [[nodiscard]] constexpr bool valid() const { return seq != 0; }
  constexpr bool operator==(const EventId&) const = default;
};

/// Run-invariant guards. Zero disables a guard; the defaults keep the
/// engine's historical unguarded behavior.
struct WatchdogParams {
  /// Aborts once this many events have executed (runaway-run budget).
  std::uint64_t max_events = 0;
  /// Aborts when this many events execute back-to-back at one simulated
  /// instant without time advancing (an event loop rescheduling itself
  /// at now() would otherwise spin forever).
  std::uint64_t max_events_per_timestamp = 0;
};

/// Why a watchdog (or the parallel engine, via abort_run) stopped the
/// run.
enum class AbortCause : std::uint8_t {
  kNone,
  kEventBudget,
  kTimestampStall,
  /// A ParallelEngine cross-partition mailbox exceeded its bound
  /// (sim/parallel.h); set through abort_run(), never by the Simulator
  /// itself.
  kMailboxOverflow,
};

/// The event loop. Single-threaded by design: one Simulator executes
/// events on one thread. Parallelism is layered on top -- across runs
/// (sweep/sweep.h) or across partitions of one run, each partition its
/// own Simulator (sim/parallel.h) -- never inside the loop itself.
class Simulator {
 public:
  using Action = InlineAction;

  Simulator();

  /// Current simulated time. Advances only inside run_* calls.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Times in the past are clamped
  /// to now() (the event still runs, after already-due events). The
  /// closure is constructed directly in the queue node's inline buffer.
  template <typename F>
  EventId at(TimePs t, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "event actions take no arguments and return void");
    const EventId id = schedule(t);
    node(id.slot).fn = std::forward<F>(fn);
    return id;
  }

  /// Schedules `fn` after a relative delay. Negative delays violate the
  /// contract and are clamped to zero (the event runs at now(), after
  /// already-due events), matching at()'s past-time clamp.
  template <typename F>
  EventId after(TimePs delay, F&& fn) {
    if (delay < TimePs{}) delay = TimePs{};
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns true if the event had not yet run
  /// (or been cancelled). Safe to call with an invalid id, and with the
  /// id of an event that already executed. O(1): the node is tombstoned
  /// in place (its closure destroyed immediately) and reclaimed when
  /// the queue scan reaches it.
  bool cancel(EventId id);

  /// Runs all events with time <= `end`, then sets now() == end. After
  /// a watchdog abort, returns immediately and now() stays put.
  void run_until(TimePs end);

  /// Pops and runs the single earliest event. Returns false if idle or
  /// aborted. Defined inline below: this is the engine's innermost
  /// loop, and the call overhead is measurable at ~19ns/event.
  bool run_one();

  /// Number of events scheduled but not yet run or cancelled. Exact:
  /// maintained as a live counter, so a cancellation can never make
  /// this underflow (cancelling an already-run event is a no-op).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Queue occupancy including not-yet-reclaimed cancellation
  /// tombstones -- the engine-pressure figure the `sim.queue_depth`
  /// trace probe reports. Always >= pending().
  [[nodiscard]] std::size_t queued_nodes() const { return occupied_; }

  /// Total events executed since construction (for engine benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Installs (or, with default params, clears) the run watchdog.
  void set_watchdog(WatchdogParams wd) { watchdog_ = wd; }
  [[nodiscard]] const WatchdogParams& watchdog() const { return watchdog_; }

  /// True once a watchdog guard has tripped; the engine refuses to
  /// execute further events but keeps all state readable.
  [[nodiscard]] bool aborted() const { return abort_cause_ != AbortCause::kNone; }
  [[nodiscard]] AbortCause abort_cause() const { return abort_cause_; }
  /// Human-readable abort explanation; empty while not aborted.
  [[nodiscard]] const std::string& abort_reason() const { return abort_reason_; }

  /// Aborts the run from outside the watchdogs -- the parallel engine
  /// uses this to stop a partition whose cross-partition mailbox
  /// overflowed. Same semantics as a watchdog trip: the engine refuses
  /// further events, state stays readable, first cause wins.
  void abort_run(AbortCause cause, std::string reason) {
    if (aborted() || cause == AbortCause::kNone) return;
    abort_cause_ = cause;
    abort_reason_ = std::move(reason);
  }

 private:
  // Calendar wheel geometry: kBuckets buckets of kBucketWidth
  // picoseconds cover a 33.5us horizon -- link serialization, PCIe and
  // memory latencies all land here; only RTO-class timers overflow to
  // the far-future heap.
  static constexpr std::uint64_t kBucketBits = 12;                 // 4096 buckets
  static constexpr std::uint64_t kBuckets = 1ull << kBucketBits;
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;
  static constexpr std::uint64_t kWidthBits = 13;                  // 8192 ps
  static constexpr std::uint64_t kBucketWidth = 1ull << kWidthBits;
  static constexpr std::int32_t kNil = -1;

  // Slab chunk geometry: nodes live in fixed 256-node chunks whose
  // addresses never move, so an executing closure can run in place
  // even while it schedules new events (which may grow the slab).
  static constexpr std::uint32_t kChunkBits = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  /// Slab-pooled event node. A node is referenced by exactly one
  /// container (a bucket chain via `next`, or one heap entry); `seq`
  /// holds the issuing EventId's generation while scheduled and 0 once
  /// reclaimed, `live` drops to false when cancelled (tombstone).
  struct Node {
    TimePs time{};
    std::uint64_t seq = 0;
    std::int32_t next = kNil;
    bool live = false;
    Action fn;
  };

  /// Compact far-future heap entry; `(time, seq)` mirrors the node so
  /// ordering never touches the slab.
  struct HeapEntry {
    TimePs time;
    std::uint64_t seq;
    std::int32_t slot;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const HeapEntry& o) const {
      if (time != o.time) return o.time < time;
      return o.seq < seq;
    }
  };

  /// Where peek_min() found the earliest live event.
  struct Candidate {
    TimePs time{};
    std::uint64_t seq = 0;
    std::int32_t slot = kNil;
    std::int32_t prev = kNil;         // predecessor in the bucket chain
    std::uint64_t bucket = 0;         // absolute bucket (wheel hit only)
    bool from_heap = false;
    bool found = false;
  };

  /// Unlinks the peeked candidate from its container without
  /// reclaiming the node: the closure runs in place (chunk addresses
  /// are stable), and run_*() frees the node afterwards. Defined
  /// inline below (hot path).
  void detach(const Candidate& c);

  [[nodiscard]] std::uint64_t now_bucket() const {
    return static_cast<std::uint64_t>(now_.ps()) >> kWidthBits;
  }

  [[nodiscard]] Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits][slot & kChunkMask];
  }

  /// Allocates a node, stamps it live at `(t, next seq)` and links it
  /// into the wheel or the far-future heap; the closure is assigned by
  /// at() afterwards. Defined inline below (hot path).
  EventId schedule(TimePs t);

  std::int32_t alloc_node_slow();

  void free_node(std::int32_t slot) {
    Node& n = node(static_cast<std::uint32_t>(slot));
    n.seq = 0;  // stale EventIds now fail the generation check
    n.live = false;
    n.fn = nullptr;
    n.next = free_head_;
    free_head_ = slot;
    --occupied_;
  }

  void bucket_push(std::uint64_t abs_bucket, std::int32_t slot) {
    const std::uint64_t idx = abs_bucket & kBucketMask;
    node(static_cast<std::uint32_t>(slot)).next = bucket_head_[idx];
    bucket_head_[idx] = slot;
    bucket_bits_[idx >> 6] |= 1ull << (idx & 63);
    bucket_summary_ |= 1ull << (idx >> 6);
  }

  void clear_bucket_bit(std::uint64_t idx) {
    bucket_bits_[idx >> 6] &= ~(1ull << (idx & 63));
    if (bucket_bits_[idx >> 6] == 0) bucket_summary_ &= ~(1ull << (idx >> 6));
  }

  /// Circular distance from bucket index `p` to the first non-empty
  /// bucket (0..kBuckets-1), or -1 when the wheel is empty.
  [[nodiscard]] std::int64_t wheel_scan_from(std::uint64_t p) const {
    if (bucket_summary_ == 0) return -1;
    const std::uint64_t w0 = p >> 6;
    const std::uint64_t b0 = p & 63;
    const std::uint64_t head = bucket_bits_[w0] & (~0ull << b0);
    if (head != 0)
      return std::countr_zero(head) - static_cast<std::int64_t>(b0);
    for (std::uint64_t k = 1; k < 64; ++k) {
      const std::uint64_t w = (w0 + k) & 63;
      if ((bucket_summary_ >> w) & 1ull) {
        return static_cast<std::int64_t>((k << 6) +
                                         std::countr_zero(bucket_bits_[w])) -
               static_cast<std::int64_t>(b0);
      }
    }
    const std::uint64_t tail = bucket_bits_[w0] & ~(~0ull << b0);
    if (tail != 0)
      return static_cast<std::int64_t>(kBuckets + std::countr_zero(tail)) -
             static_cast<std::int64_t>(b0);
    return -1;
  }
  /// Locates the earliest live event without removing it, reclaiming
  /// any tombstones passed over on the way. Defined inline below (hot
  /// path).
  Candidate peek_min();

  /// Checks the watchdog before executing the event at `t`. Returns
  /// false (and records the abort) when a guard trips. The common
  /// no-watchdog configuration stays branch-cheap.
  bool guard_event(TimePs t) {
    if ((watchdog_.max_events | watchdog_.max_events_per_timestamp) == 0)
      return true;
    return guard_event_slow(t);
  }
  bool guard_event_slow(TimePs t);

  TimePs now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;      // scheduled, not yet run or cancelled
  std::size_t occupied_ = 0;  // slab nodes in use (live + tombstones)

  std::vector<std::unique_ptr<Node[]>> chunks_;  // slab pool, stable addresses
  std::uint32_t node_count_ = 0;                 // slots ever created
  std::int32_t free_head_ = kNil;

  // Calendar wheel: per-bucket intrusive chain heads plus a two-level
  // occupancy bitmap (one summary word over 64 chunk words) so the pop
  // scan jumps straight to the next non-empty bucket. Fixed in-object
  // arrays (~16KB): no pointer chase on the per-event path.
  std::array<std::int32_t, kBuckets> bucket_head_;
  std::array<std::uint64_t, kBuckets / 64> bucket_bits_{};
  std::uint64_t bucket_summary_ = 0;

  // Far-future events (beyond the wheel window at scheduling time).
  std::vector<HeapEntry> heap_;

  WatchdogParams watchdog_;
  AbortCause abort_cause_ = AbortCause::kNone;
  std::string abort_reason_;
  TimePs last_exec_time_{};
  std::uint64_t same_time_streak_ = 0;
};

// ---- Hot-path definitions (kept out of the class body for length, in
// ---- the header for inlining into at()/run loops).

inline EventId Simulator::schedule(TimePs t) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  std::int32_t slot = free_head_;
  if (slot != kNil) {
    free_head_ = node(static_cast<std::uint32_t>(slot)).next;
  } else {
    slot = alloc_node_slow();
  }
  ++occupied_;
  Node& n = node(static_cast<std::uint32_t>(slot));
  n.time = t;
  n.seq = seq;
  n.live = true;
  const std::uint64_t abs_bucket = static_cast<std::uint64_t>(t.ps()) >> kWidthBits;
  if (abs_bucket < now_bucket() + kBuckets) {
    bucket_push(abs_bucket, slot);
  } else {
    n.next = kNil;
    // hicc-lint: allow(hot-vector-growth) -- far-future heap: reaches its
    // high-water mark during warmup, then pops balance pushes.
    heap_.push_back(HeapEntry{t, seq, slot});
    std::push_heap(heap_.begin(), heap_.end());
  }
  ++live_;
  return EventId{seq, static_cast<std::uint32_t>(slot)};
}

inline Simulator::Candidate Simulator::peek_min() {
  Candidate best;
  // Purge cancelled far-future timers sitting at the heap top.
  while (!heap_.empty()) {
    const std::int32_t slot = heap_.front().slot;
    const Node& n = node(static_cast<std::uint32_t>(slot));
    assert(n.seq == heap_.front().seq && "heap entry must own its node");
    if (n.live) break;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    free_node(slot);
  }
  if (!heap_.empty()) {
    best.time = heap_.front().time;
    best.seq = heap_.front().seq;
    best.slot = heap_.front().slot;
    best.from_heap = true;
    best.found = true;
  }

  // Wheel scan: buckets cover disjoint ascending time ranges, so the
  // first bucket holding a live event decides the wheel's candidate.
  // All wheel entries lie in [now_bucket(), now_bucket() + kBuckets)
  // -- at() only inserts within the window and time never runs
  // backwards -- so one circular pass visits them all in time order.
  const std::uint64_t start = now_bucket();
  const std::uint64_t start_idx = start & kBucketMask;
  std::uint64_t off = 0;
  while (off < kBuckets) {
    const std::int64_t d = wheel_scan_from((start_idx + off) & kBucketMask);
    if (d < 0) break;
    off += static_cast<std::uint64_t>(d);
    assert(off < kBuckets && "wheel entry outside the window");
    const std::uint64_t abs_bucket = start + off;
    const std::uint64_t idx = (start_idx + off) & kBucketMask;
    // A far-future heap winner earlier than this bucket's whole range
    // cannot be beaten by it or any later bucket.
    if (best.found &&
        best.time.ps() < static_cast<std::int64_t>(abs_bucket << kWidthBits)) {
      return best;
    }
    // Min-scan the (unsorted) chain, reclaiming tombstones in passing.
    Candidate in_bucket;
    std::int32_t prev = kNil;
    std::int32_t slot = bucket_head_[idx];
    while (slot != kNil) {
      Node& n = node(static_cast<std::uint32_t>(slot));
      const std::int32_t next = n.next;
      if (!n.live) {
        (prev == kNil ? bucket_head_[idx]
                      : node(static_cast<std::uint32_t>(prev)).next) = next;
        free_node(slot);
        slot = next;
        continue;
      }
      if (in_bucket.slot == kNil || n.time < in_bucket.time ||
          (n.time == in_bucket.time && n.seq < in_bucket.seq)) {
        in_bucket.time = n.time;
        in_bucket.seq = n.seq;
        in_bucket.slot = slot;
        in_bucket.prev = prev;
        in_bucket.bucket = abs_bucket;
        in_bucket.found = true;
      }
      prev = slot;
      slot = next;
    }
    if (bucket_head_[idx] == kNil) clear_bucket_bit(idx);
    if (in_bucket.found) {
      if (!best.found || in_bucket.time < best.time ||
          (in_bucket.time == best.time && in_bucket.seq < best.seq)) {
        return in_bucket;
      }
      return best;
    }
    ++off;  // chain was all tombstones; keep scanning
  }
  return best;
}

inline void Simulator::detach(const Candidate& c) {
  Node& n = node(static_cast<std::uint32_t>(c.slot));
  assert(n.live && n.seq == c.seq && "candidate must still be scheduled");
  if (c.from_heap) {
    assert(!heap_.empty() && heap_.front().slot == c.slot);
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  } else {
    const std::uint64_t idx = c.bucket & kBucketMask;
    (c.prev == kNil ? bucket_head_[idx]
                    : node(static_cast<std::uint32_t>(c.prev)).next) = n.next;
    if (bucket_head_[idx] == kNil) clear_bucket_bit(idx);
  }
  n.live = false;  // cancel() on this id now correctly reports "already ran"
  --live_;
}

inline bool Simulator::run_one() {
  if (aborted()) return false;
  const Candidate c = peek_min();
  if (!c.found) {
    assert(live_ == 0 && "an idle queue cannot hold live events");
    return false;
  }
  if (!guard_event(c.time)) return false;  // abort: the event stays pending
  detach(c);
  now_ = c.time;
  ++executed_;
  // Chunk addresses are stable, so the closure runs in place -- no
  // 80-byte move-out per event. The slot is only reclaimed afterwards,
  // so anything the closure schedules cannot reuse it mid-invoke.
  node(static_cast<std::uint32_t>(c.slot)).fn();
  free_node(c.slot);
  return true;
}

/// Self-rescheduling periodic task; the first tick fires one period
/// from start. stop() leaves the task restartable via start(); a
/// default-constructed or moved-from task is explicitly dead (all
/// operations are no-ops). State lives behind a stable heap allocation,
/// so tasks are movable and can be stored in vectors.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulator& sim, TimePs period, Simulator::Action fn)
      // hicc-lint: allow(hot-heap-alloc) -- one allocation per task at
      // construction; ticks reschedule without allocating.
      : state_(std::make_unique<State>(&sim, period, std::move(fn))) {
    arm(*state_);
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  PeriodicTask(PeriodicTask&&) noexcept = default;
  PeriodicTask& operator=(PeriodicTask&& o) noexcept {
    if (this != &o) {
      stop();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~PeriodicTask() { stop(); }

  /// Cancels the pending tick. The task keeps its simulator, period and
  /// callback, so start() can rearm it later.
  void stop() {
    if (state_ == nullptr) return;
    state_->sim->cancel(state_->pending);
    state_->pending = {};
  }

  /// Rearms a stopped task (next tick one period from now). No-op when
  /// already running or dead.
  void start() {
    if (state_ == nullptr || state_->pending.valid()) return;
    arm(*state_);
  }

  /// True while a tick is scheduled. Dead tasks report false.
  [[nodiscard]] bool running() const { return state_ != nullptr && state_->pending.valid(); }

 private:
  /// The scheduled closure captures this stable address, never the
  /// PeriodicTask itself -- which is what makes moves safe.
  struct State {
    State(Simulator* s, TimePs p, Simulator::Action f)
        : sim(s), period(p), fn(std::move(f)) {}
    Simulator* sim;
    TimePs period;
    Simulator::Action fn;
    EventId pending{};
  };

  static void arm(State& s) {
    s.pending = s.sim->after(s.period, [sp = &s] {
      arm(*sp);  // rearm first so fn may stop() the task
      sp->fn();
    });
  }

  std::unique_ptr<State> state_;
};

}  // namespace hicc::sim
