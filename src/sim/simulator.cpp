// hicc-lint: hotpath -- steady state must stay allocation-free (DESIGN.md §8).
#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace hicc::sim {

Simulator::Simulator() { bucket_head_.fill(kNil); }

std::int32_t Simulator::alloc_node_slow() {
  // Chunked growth keeps every existing Node at a stable address, so a
  // closure can run in place while new events are being scheduled.
  if (node_count_ == chunks_.size() * kChunkSize) {
    // hicc-lint: allow(hot-heap-alloc, hot-vector-growth) -- slab growth:
    // one allocation per 256 nodes until the high-water mark, then the
    // free list recycles forever (SteadyStateIsAllocationFree).
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return static_cast<std::int32_t>(node_count_++);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  if (id.slot >= node_count_) return false;
  Node& n = node(id.slot);
  // Generation check: a handle for an event that already ran (or whose
  // slot was recycled) no longer matches the node's stamp.
  if (n.seq != id.seq || !n.live) return false;
  n.live = false;  // tombstone; the node is reclaimed at the next scan
  n.fn = nullptr;  // release captured resources immediately
  --live_;
  return true;
}

bool Simulator::guard_event_slow(TimePs t) {
  if (watchdog_.max_events != 0 && executed_ >= watchdog_.max_events) {
    abort_cause_ = AbortCause::kEventBudget;
    abort_reason_ = "event budget exhausted (" + std::to_string(watchdog_.max_events) +
                    " events executed) at t=" + std::to_string(t.us()) + "us";
    return false;
  }
  if (watchdog_.max_events_per_timestamp != 0) {
    if (executed_ > 0 && t == last_exec_time_) {
      if (++same_time_streak_ >= watchdog_.max_events_per_timestamp) {
        abort_cause_ = AbortCause::kTimestampStall;
        abort_reason_ = "no time progress: " + std::to_string(same_time_streak_) +
                        " consecutive events at t=" + std::to_string(t.us()) +
                        "us (self-rescheduling loop?)";
        return false;
      }
    } else {
      same_time_streak_ = 1;
    }
  }
  last_exec_time_ = t;
  return true;
}

void Simulator::run_until(TimePs end) {
  if (aborted()) return;
  for (;;) {
    const Candidate c = peek_min();
    if (!c.found) {
      assert(live_ == 0 && "an idle queue cannot hold live events");
      break;
    }
    if (end < c.time) break;
    if (!guard_event(c.time)) return;  // abort: now_ stays put
    detach(c);
    now_ = c.time;
    ++executed_;
    node(static_cast<std::uint32_t>(c.slot)).fn();
    free_node(c.slot);
  }
  now_ = end;
}

}  // namespace hicc::sim
