#include "sim/simulator.h"

#include <utility>

namespace hicc::sim {

EventId Simulator::at(TimePs t, Action fn) {
  if (t < now_) t = now_;
  const EventId id{next_seq_++};
  queue_.push(Event{t, id.seq, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.seq >= next_seq_) return false;
  // Tombstone; the heap entry is discarded when popped.
  return cancelled_.insert(id.seq).second;
}

bool Simulator::run_one() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    now_ = top.time;
    Action fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
  }
  cancelled_.clear();  // queue drained; drop any stale tombstones
  return false;
}

void Simulator::run_until(TimePs end) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (end < top.time) break;
    now_ = top.time;
    Action fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
  }
  now_ = end;
}

}  // namespace hicc::sim
