#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace hicc::sim {

EventId Simulator::at(TimePs t, Action fn) {
  if (t < now_) t = now_;
  const EventId id{next_seq_++};
  queue_.push(Event{t, id.seq, std::move(fn)});
  live_.insert(id.seq);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  // The heap entry stays behind as a tombstone and is discarded when
  // popped; live_ is the ground truth for what still counts as pending.
  return live_.erase(id.seq) > 0;
}

bool Simulator::guard_event(TimePs t) {
  if (watchdog_.max_events != 0 && executed_ >= watchdog_.max_events) {
    abort_cause_ = AbortCause::kEventBudget;
    abort_reason_ = "event budget exhausted (" + std::to_string(watchdog_.max_events) +
                    " events executed) at t=" + std::to_string(t.us()) + "us";
    return false;
  }
  if (watchdog_.max_events_per_timestamp != 0) {
    if (executed_ > 0 && t == last_exec_time_) {
      if (++same_time_streak_ >= watchdog_.max_events_per_timestamp) {
        abort_cause_ = AbortCause::kTimestampStall;
        abort_reason_ = "no time progress: " + std::to_string(same_time_streak_) +
                        " consecutive events at t=" + std::to_string(t.us()) +
                        "us (self-rescheduling loop?)";
        return false;
      }
    } else {
      same_time_streak_ = 1;
    }
  }
  last_exec_time_ = t;
  return true;
}

bool Simulator::run_one() {
  if (aborted()) return false;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = live_.find(top.seq); it == live_.end()) {
      queue_.pop();  // cancelled tombstone
      continue;
    } else {
      if (!guard_event(top.time)) return false;
      live_.erase(it);
    }
    now_ = top.time;
    Action fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
  }
  assert(live_.empty() && "live events must be a subset of the queue");
  return false;
}

void Simulator::run_until(TimePs end) {
  if (aborted()) return;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = live_.find(top.seq); it == live_.end()) {
      queue_.pop();  // cancelled tombstone
      continue;
    } else {
      if (end < top.time) break;
      if (!guard_event(top.time)) return;  // abort: now_ stays put
      live_.erase(it);
    }
    now_ = top.time;
    Action fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
  }
  assert(live_.size() <= queue_.size() && "live events must be a subset of the queue");
  now_ = end;
}

}  // namespace hicc::sim
