// Swift congestion control (Kumar et al., SIGCOMM 2020), as deployed
// with the SNAP stack in the paper's cluster.
//
// Swift is delay-based AIMD with the RTT decomposed into a fabric
// component and a host (endpoint) component, each with its own target
// and its own window; the effective window is the minimum. The paper's
// receiver uses a host target delay of 100us "to account for inflation
// in host delays due to CPU bottlenecks, queueing delay at the NIC
// buffer and NIC-to-memory DMA latency" (§3.1) -- and that very target,
// against a 1MB NIC buffer, is why Swift cannot see interconnect
// congestion before the buffer overflows once throughput exceeds
// ~81 Gbps.
#pragma once

#include <algorithm>

#include "common/units.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "transport/cc.h"

namespace hicc::transport {

/// Swift tuning parameters (defaults follow the published protocol
/// scaled to the testbed's RTTs).
struct SwiftParams {
  /// Fabric delay target (propagation + tolerable switch queueing).
  TimePs fabric_target = TimePs::from_us(40);
  /// Host (endpoint) delay target -- 100us in the paper's cluster.
  TimePs host_target = TimePs::from_us(100);
  /// Additive increase, packets per RTT.
  double additive_increase = 0.15;
  /// Multiplicative-decrease gain on (delay - target)/delay.
  double beta = 0.8;
  /// Per-decision cap on multiplicative decrease.
  double max_mdf = 0.5;
  double min_cwnd = 0.01;
  double max_cwnd = 64.0;
  /// Window reduction applied on a loss event.
  double loss_mdf = 0.5;
  /// Sub-RTT host-signal response (kHostSignal variant only): window
  /// cut per signal and cooldown between reactions. The signal is a
  /// broadcast -- every flow reacts at once -- so the per-signal cut
  /// is far gentler than a loss response.
  double host_signal_mdf = 0.15;
  TimePs host_signal_cooldown = TimePs::from_us(50);
};

/// Swift controller for one flow. When `react_to_host_signal` is set,
/// the controller additionally halves the endpoint window on explicit
/// sub-RTT NIC congestion signals (§4 ablation).
class SwiftCc final : public CongestionControl {
 public:
  /// `tracer`, when non-null, attaches the shared `transport.rtt_us`,
  /// `transport.host_delay_us` and `transport.fabric_rtt_us` delay
  /// histograms (shared across all flows of an experiment; `on_ack`
  /// feeds them behind a single null check).
  SwiftCc(sim::Simulator& sim, SwiftParams params, bool react_to_host_signal = false,
          trace::Tracer* tracer = nullptr);

  void on_ack(const AckInfo& info) override;
  void on_loss() override;
  void on_host_signal() override;

  [[nodiscard]] double cwnd() const override { return std::min(fabric_cwnd_, host_cwnd_); }
  [[nodiscard]] const char* name() const override {
    return react_to_host_signal_ ? "swift+host-signal" : "swift";
  }

  [[nodiscard]] double fabric_cwnd() const { return fabric_cwnd_; }
  [[nodiscard]] double host_cwnd() const { return host_cwnd_; }

 private:
  /// One AIMD window update against one delay/target pair.
  void update_window(double& cwnd, TimePs delay, TimePs target, TimePs& last_decrease);
  void clamp(double& cwnd) const;

  sim::Simulator& sim_;
  SwiftParams params_;
  bool react_to_host_signal_;
  trace::Tracer* tracer_ = nullptr;  // null unless tracing is enabled
  trace::ProbeId rtt_probe_;
  trace::ProbeId host_delay_probe_;
  trace::ProbeId fabric_rtt_probe_;
  double fabric_cwnd_ = 1.0;
  double host_cwnd_ = 1.0;
  TimePs srtt_{};
  TimePs last_fabric_decrease_{};
  TimePs last_host_decrease_{};
  TimePs last_loss_decrease_{};
  TimePs last_signal_reaction_{};
};

/// Loss-based AIMD baseline ("TCP-like protocols... the total in-flight
/// bytes can still exceed NIC buffer capacity", §4). Delay-blind:
/// grows until packets drop.
class TcpLikeCc final : public CongestionControl {
 public:
  TcpLikeCc(sim::Simulator& sim, double min_cwnd = 1.0, double max_cwnd = 64.0)
      : sim_(sim), min_cwnd_(min_cwnd), max_cwnd_(max_cwnd) {}

  void on_ack(const AckInfo& info) override;
  void on_loss() override;

  [[nodiscard]] double cwnd() const override { return cwnd_; }
  [[nodiscard]] const char* name() const override { return "tcp-like"; }

 private:
  sim::Simulator& sim_;
  double min_cwnd_;
  double max_cwnd_;
  double cwnd_ = 1.0;
  TimePs srtt_{};
  TimePs last_decrease_{};
};

}  // namespace hicc::transport
