#include "transport/flow.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hicc::transport {

namespace {
constexpr TimePs kRtoScanPeriod = TimePs::from_us(250);
constexpr TimePs kDefaultSrtt = TimePs::from_us(20);
}  // namespace

SenderFlow::SenderFlow(sim::Simulator& sim, std::int32_t flow_id, std::int32_t sender_id,
                       const net::WireFormat& wire, std::unique_ptr<CongestionControl> cc,
                       SendFn send, Rng rng)
    : sim_(sim),
      flow_id_(flow_id),
      sender_id_(sender_id),
      wire_(wire),
      cc_(std::move(cc)),
      send_(std::move(send)),
      rng_(rng),
      rto_task_(sim, kRtoScanPeriod, [this] { check_rto(); }) {}

void SenderFlow::enqueue_packets(std::int64_t n) {
  pending_new_ += n;
  try_send();
}

TimePs SenderFlow::pacing_interval() {
  const TimePs base = srtt_ == TimePs(0) ? kDefaultSrtt : srtt_;
  const double w = std::max(cc_->cwnd(), 0.001);
  // +-15% jitter desynchronizes the fleet: hundreds of flows sharing
  // one receiver see the same delay signal and would otherwise surge
  // in lockstep, overflowing the NIC buffer far beyond what real
  // (phase-diverse) deployments experience.
  const double jitter = rng_.uniform(0.85, 1.15);
  return TimePs(static_cast<std::int64_t>(static_cast<double>(base.ps()) / w * jitter));
}

TimePs SenderFlow::rto() const {
  const TimePs base = srtt_ == TimePs(0) ? kDefaultSrtt : srtt_;
  return std::max(base * 4, TimePs::from_ms(1));
}

void SenderFlow::try_send() {
  while (pending_new_ > 0) {
    const double w = cc_->cwnd();
    const std::size_t window =
        w >= 1.0 ? static_cast<std::size_t>(w) : std::size_t{1};
    if (outstanding_.size() >= window) return;
    if (w < 1.0 && sim_.now() < next_pace_at_) {
      // Paced sub-1 window: rearm the pacing timer for the next slot.
      if (!pace_timer_.valid()) {
        pace_timer_ = sim_.at(next_pace_at_, [this] {
          pace_timer_ = {};
          try_send();
        });
      }
      return;
    }
    --pending_new_;
    ++stats_.data_packets_sent;
    emit(next_seq_++, /*retransmission=*/false);
    if (cc_->cwnd() < 1.0) next_pace_at_ = sim_.now() + pacing_interval();
  }
}

void SenderFlow::emit(std::int64_t seq, bool retransmission) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.flow = flow_id_;
  p.sender = sender_id_;
  p.seq = seq;
  p.payload = wire_.mtu_payload;
  p.wire = wire_.data_wire();
  p.sent_at = sim_.now();
  outstanding_[seq] = sim_.now();
  if (retransmission) ++stats_.retransmits;
  // A false return means the sender uplink dropped it; the RTO will
  // recover (this does not occur in the paper's uncongested fabric).
  (void)send_(std::move(p));
}

void SenderFlow::on_ack(const net::Packet& ack) {
  ++stats_.acks_received;
  const auto it = outstanding_.find(ack.seq);
  if (it != outstanding_.end()) {
    const TimePs rtt = sim_.now() - ack.sent_at;
    srtt_ = srtt_ == TimePs(0) ? rtt : TimePs((srtt_.ps() * 7 + rtt.ps()) / 8);
    cc_->on_ack(AckInfo{rtt, ack.echoed_host_delay});
    outstanding_.erase(it);
  }
  highest_acked_ = std::max(highest_acked_, ack.seq);

  // Fast retransmit: outstanding sequences overtaken by kReorderThreshold
  // newer acknowledgments are presumed lost. outstanding_ is ordered by
  // sequence, so candidates sit at the front; retransmit at most a couple
  // per ack to avoid bursts.
  int budget = 2;
  for (auto cand = outstanding_.begin(); cand != outstanding_.end() && budget > 0; ++cand) {
    if (cand->first + kReorderThreshold > highest_acked_) break;
    const TimePs since_tx = sim_.now() - cand->second;
    if (since_tx < (srtt_ == TimePs(0) ? kDefaultSrtt : srtt_)) continue;  // just retransmitted
    cc_->on_loss();
    emit(cand->first, /*retransmission=*/true);
    --budget;
  }
  try_send();
}

void SenderFlow::on_host_signal() {
  cc_->on_host_signal();
}

void SenderFlow::check_rto() {
  const TimePs deadline = rto();
  int budget = 4;
  for (auto& [seq, sent_at] : outstanding_) {
    if (budget == 0) break;
    if (sim_.now() - sent_at > deadline) {
      ++stats_.rto_fires;
      cc_->on_loss();
      emit(seq, /*retransmission=*/true);
      --budget;
    }
  }
  try_send();
}

}  // namespace hicc::transport
