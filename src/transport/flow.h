// Sender-side flow: window/pacing enforcement, per-packet selective
// acknowledgments, fast retransmit, and retransmission timeouts.
//
// One flow corresponds to one (sender host, receiver thread) pair --
// the paper's workload creates one connection per sender per receiver
// thread. Data to send arrives as read-request chunks (16KB reads =
// 4 MTU packets) and is transmitted under the congestion controller's
// window; fractional windows (< 1 packet) are paced at one packet per
// srtt/cwnd, as in Swift.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/cc.h"

namespace hicc::transport {

/// Per-flow counters.
struct FlowStats {
  std::int64_t data_packets_sent = 0;  // first transmissions
  std::int64_t retransmits = 0;
  std::int64_t acks_received = 0;
  std::int64_t rto_fires = 0;
};

/// Sender-side state machine of one flow.
class SenderFlow {
 public:
  /// Transmits a packet toward the receiver; returns false if the
  /// fabric dropped it at enqueue (sender uplink full).
  using SendFn = std::function<bool(net::Packet)>;

  SenderFlow(sim::Simulator& sim, std::int32_t flow_id, std::int32_t sender_id,
             const net::WireFormat& wire, std::unique_ptr<CongestionControl> cc,
             SendFn send, Rng rng = Rng(0xf10f));

  SenderFlow(const SenderFlow&) = delete;
  SenderFlow& operator=(const SenderFlow&) = delete;

  /// Queues `n` new MTU packets for transmission (a 16KB read = 4).
  void enqueue_packets(std::int64_t n);

  /// Processes an acknowledgment for this flow.
  void on_ack(const net::Packet& ack);

  /// Delivers an out-of-band host congestion signal to the controller.
  void on_host_signal();

  [[nodiscard]] double cwnd() const { return cc_->cwnd(); }
  [[nodiscard]] std::int64_t pending() const { return pending_new_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }
  [[nodiscard]] const FlowStats& stats() const { return stats_; }
  [[nodiscard]] CongestionControl& cc() { return *cc_; }
  [[nodiscard]] TimePs srtt() const { return srtt_; }

 private:
  void try_send();
  /// Transmits (or retransmits) sequence `seq`.
  void emit(std::int64_t seq, bool retransmission);
  void check_rto();
  [[nodiscard]] TimePs pacing_interval();
  [[nodiscard]] TimePs rto() const;

  sim::Simulator& sim_;
  std::int32_t flow_id_;
  std::int32_t sender_id_;
  net::WireFormat wire_;
  std::unique_ptr<CongestionControl> cc_;
  SendFn send_;
  Rng rng_;

  std::int64_t next_seq_ = 0;
  std::int64_t pending_new_ = 0;
  /// seq -> time of the most recent transmission.
  std::map<std::int64_t, TimePs> outstanding_;
  std::int64_t highest_acked_ = -1;
  TimePs srtt_{};
  TimePs next_pace_at_{};
  sim::EventId pace_timer_{};
  sim::PeriodicTask rto_task_;
  FlowStats stats_;

  /// Packets acknowledged out of order beyond this gap trigger fast
  /// retransmit of older outstanding sequences.
  static constexpr std::int64_t kReorderThreshold = 3;
};

}  // namespace hicc::transport
