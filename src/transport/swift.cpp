#include "transport/swift.h"

#include <algorithm>

namespace hicc::transport {

namespace {
/// EWMA RTT smoothing (alpha = 1/8, TCP-style).
TimePs smooth(TimePs srtt, TimePs sample) {
  if (srtt == TimePs(0)) return sample;
  return TimePs((srtt.ps() * 7 + sample.ps()) / 8);
}
}  // namespace

SwiftCc::SwiftCc(sim::Simulator& sim, SwiftParams params, bool react_to_host_signal,
                 trace::Tracer* tracer)
    : sim_(sim), params_(params), react_to_host_signal_(react_to_host_signal), tracer_(tracer) {
  if (tracer_ != nullptr) {
    // Registration is get-or-create by name, so the hundreds of
    // per-flow controllers of one experiment share three histograms.
    rtt_probe_ = tracer_->histogram("transport.rtt_us", "us");
    host_delay_probe_ = tracer_->histogram("transport.host_delay_us", "us");
    fabric_rtt_probe_ = tracer_->histogram("transport.fabric_rtt_us", "us");
  }
}

void SwiftCc::clamp(double& cwnd) const {
  cwnd = std::clamp(cwnd, params_.min_cwnd, params_.max_cwnd);
}

void SwiftCc::update_window(double& cwnd, TimePs delay, TimePs target,
                            TimePs& last_decrease) {
  if (delay < target) {
    // Additive increase: ai per RTT. With cwnd >= 1 there are ~cwnd
    // acks per RTT, so ai/cwnd per ack. Below 1 the increase is scaled
    // by cwnd: with hundreds of paced flows sharing one host, a full
    // ai step per (rare) ack makes the aggregate ramp far outrun the
    // 1MB NIC buffer and locks the system into heavy loss; Swift
    // deployments temper small-cwnd flows similarly via flow-scaled
    // targets.
    cwnd += (cwnd >= 1.0) ? params_.additive_increase / cwnd
                          : params_.additive_increase * cwnd;
  } else if (sim_.now() - last_decrease > srtt_) {
    // Multiplicative decrease proportional to overshoot, at most once
    // per RTT.
    const double overshoot = (delay - target) / delay;
    const double factor = std::max(1.0 - params_.beta * overshoot, 1.0 - params_.max_mdf);
    cwnd *= factor;
    last_decrease = sim_.now();
  }
  clamp(cwnd);
}

void SwiftCc::on_ack(const AckInfo& info) {
  srtt_ = smooth(srtt_, info.rtt);
  const TimePs fabric_delay =
      info.rtt > info.host_delay ? info.rtt - info.host_delay : TimePs(0);
  if (tracer_ != nullptr) {
    // The paper's key observable: the same RTT decomposition Swift
    // itself acts on, recorded per ack.
    tracer_->observe(rtt_probe_, info.rtt.us());
    tracer_->observe(host_delay_probe_, info.host_delay.us());
    tracer_->observe(fabric_rtt_probe_, fabric_delay.us());
  }
  update_window(fabric_cwnd_, fabric_delay, params_.fabric_target, last_fabric_decrease_);
  update_window(host_cwnd_, info.host_delay, params_.host_target, last_host_decrease_);
}

void SwiftCc::on_loss() {
  if (sim_.now() - last_loss_decrease_ <= srtt_) return;
  last_loss_decrease_ = sim_.now();
  fabric_cwnd_ *= 1.0 - params_.loss_mdf;
  host_cwnd_ *= 1.0 - params_.loss_mdf;
  clamp(fabric_cwnd_);
  clamp(host_cwnd_);
}

void SwiftCc::on_host_signal() {
  if (!react_to_host_signal_) return;
  if (sim_.now() - last_signal_reaction_ <= params_.host_signal_cooldown) return;
  last_signal_reaction_ = sim_.now();
  // Sub-RTT response: the signal comes straight from the NIC without
  // waiting for delivery + ACK, so it reacts before the buffer fills.
  host_cwnd_ *= 1.0 - params_.host_signal_mdf;
  clamp(host_cwnd_);
}

void TcpLikeCc::on_ack(const AckInfo& info) {
  srtt_ = smooth(srtt_, info.rtt);
  cwnd_ += (cwnd_ >= 1.0) ? 1.0 / cwnd_ : 1.0;
  cwnd_ = std::min(cwnd_, max_cwnd_);
}

void TcpLikeCc::on_loss() {
  if (sim_.now() - last_decrease_ <= srtt_) return;
  last_decrease_ = sim_.now();
  cwnd_ = std::max(cwnd_ * 0.5, min_cwnd_);
}

}  // namespace hicc::transport
