// A sender machine: hosts the sender side of one flow per receiver
// thread and serves incoming RPC read requests from its flows' data.
//
// Per the paper (§2, footnote 1), sender hosts do not experience host
// congestion -- NIC-to-CPU backpressure exists on the transmit path --
// so senders are modeled at the transport level only: no sender-side
// NIC/PCIe/IOMMU datapath.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace hicc::transport {

/// One of the N sender machines.
class SenderHost {
 public:
  SenderHost(sim::Simulator& sim, std::int32_t id, net::WireFormat wire,
             SenderFlow::SendFn send, Rng rng = Rng(0x5e17d))
      : sim_(sim), id_(id), wire_(wire), send_(std::move(send)), rng_(rng) {}

  [[nodiscard]] std::int32_t id() const { return id_; }

  /// Creates the sender side of flow `flow_id` with controller `cc`.
  SenderFlow& add_flow(std::int32_t flow_id, std::unique_ptr<CongestionControl> cc) {
    auto flow = std::make_unique<SenderFlow>(sim_, flow_id, id_, wire_, std::move(cc),
                                             send_, rng_.fork());
    auto [it, inserted] = flows_.emplace(flow_id, std::move(flow));
    return *it->second;
  }

  /// Flow lifecycle hook for dynamic workloads: when set, a read
  /// request for an unknown flow id creates that flow on first use
  /// (controller supplied by the factory) instead of being ignored.
  /// Creation order is event order, so runs stay deterministic; once a
  /// slot's flow exists it is reused by every later occupancy, keeping
  /// the steady state allocation-free (docs/WORKLOADS.md).
  using FlowFactory = std::function<std::unique_ptr<CongestionControl>(std::int32_t)>;
  void set_flow_factory(FlowFactory factory) { factory_ = std::move(factory); }

  /// Retire hook: drops a flow's sender-side state entirely (pending
  /// queue, SACK scoreboard, controller). Returns false if the flow id
  /// is unknown.
  bool remove_flow(std::int32_t flow_id) { return flows_.erase(flow_id) > 0; }

  [[nodiscard]] bool has_flow(std::int32_t flow_id) const {
    return flows_.count(flow_id) > 0;
  }

  /// Handles a packet arriving from the fabric: a read request queues
  /// data on the flow; an ACK advances it; a host signal fans out to
  /// every flow. Unknown flows are ignored (or created via the flow
  /// factory when one is installed and a read request arrives).
  void on_packet(const net::Packet& p) {
    if (p.kind == net::PacketKind::kHostSignal) {
      on_host_signal();
      return;
    }
    auto it = flows_.find(p.flow);
    if (it == flows_.end()) {
      if (!factory_ || p.kind != net::PacketKind::kReadRequest) return;
      add_flow(p.flow, factory_(p.flow));
      it = flows_.find(p.flow);
    }
    switch (p.kind) {
      case net::PacketKind::kReadRequest:
        // The request's payload field carries the read size.
        it->second->enqueue_packets(
            std::max<std::int64_t>(1, p.payload.count() / wire_.mtu_payload.count()));
        break;
      case net::PacketKind::kAck:
        it->second->on_ack(p);
        break;
      case net::PacketKind::kData:
      case net::PacketKind::kHostSignal:  // handled above
        break;
    }
  }

  /// Fans an out-of-band host congestion signal to every flow.
  /// flows_ is an ordered map so this fan-out (which mutates cwnd and
  /// may schedule sends) visits flows in a stdlib-independent order.
  void on_host_signal() {
    for (auto& [id, flow] : flows_) flow->on_host_signal();
  }

  [[nodiscard]] const std::map<std::int32_t, std::unique_ptr<SenderFlow>>& flows() const {
    return flows_;
  }

 private:
  sim::Simulator& sim_;
  std::int32_t id_;
  net::WireFormat wire_;
  SenderFlow::SendFn send_;
  Rng rng_;
  FlowFactory factory_;
  std::map<std::int32_t, std::unique_ptr<SenderFlow>> flows_;
};

}  // namespace hicc::transport
