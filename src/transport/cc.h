// Congestion-control interface.
//
// The experiments run Swift (the paper's protocol), a TCP-like
// loss-based baseline (§4's "TCP-like protocols" discussion), and a
// sub-RTT host-signal variant exploring §4's "rethinking congestion
// response" direction. All three plug into the same sender flow.
#pragma once

#include <memory>

#include "common/units.h"

namespace hicc::transport {

/// Signals delivered to the congestion controller per acknowledgment.
struct AckInfo {
  /// Measured round-trip time of the acknowledged packet.
  TimePs rtt{};
  /// Receiver-host delay (NIC arrival -> stack processing) echoed in
  /// the ACK -- Swift's "host" delay component.
  TimePs host_delay{};
};

/// Abstract congestion controller for one flow. Window is in packets
/// and may be fractional (< 1 means paced slower than one packet per
/// RTT, as in Swift).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called for every acknowledgment received.
  virtual void on_ack(const AckInfo& info) = 0;

  /// Called when a loss is inferred (fast retransmit or RTO).
  virtual void on_loss() = 0;

  /// Called when an out-of-band host congestion signal arrives
  /// (sub-RTT response experiments); default ignores it.
  virtual void on_host_signal() {}

  /// Current congestion window in packets (possibly fractional).
  [[nodiscard]] virtual double cwnd() const = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Which protocol an experiment runs.
enum class CcAlgorithm {
  kSwift,       // delay-based, fabric + host targets (the paper's setup)
  kTcpLike,     // loss-based AIMD baseline
  kHostSignal,  // Swift + sub-RTT multiplicative response to NIC signals
};

}  // namespace hicc::transport
