// Unit tests for the discrete-event engine: ordering, cancellation,
// determinism, periodic tasks, watchdog guards, allocation behavior,
// InlineAction semantics, a reference-model goldens check, and a
// queueing sanity property.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Counting `operator new` hook (whole binary): lets the steady-state test
// below assert the engine's schedule/run/cancel cycle never touches the heap.
// Constant-initialized so it is valid before any static-init allocation.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t rounded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace hicc::sim {
namespace {

using namespace hicc::literals;

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePs(0));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.run_one());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3_us, [&] { order.push_back(3); });
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(2_us, [&] { order.push_back(2); });
  sim.run_until(10_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10_us);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(1_us, [&] { order.push_back(2); });
  sim.at(1_us, [&] { order.push_back(3); });
  sim.run_until(1_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowIsEventTimeDuringExecution) {
  Simulator sim;
  TimePs seen{};
  sim.at(5_us, [&] { seen = sim.now(); });
  sim.run_until(10_us);
  EXPECT_EQ(seen, 5_us);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.run_until(5_us);
  TimePs ran_at{};
  sim.at(1_us, [&] { ran_at = sim.now(); });
  sim.run_until(5_us);
  EXPECT_EQ(ran_at, 5_us);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(1_us, chain);
  };
  sim.after(1_us, chain);
  sim.run_until(100_us);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  sim.run_until(1_us);  // inclusive boundary
  EXPECT_EQ(ran, 1);
  sim.run_until(2_us);
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.at(1_us, [&] { ++ran; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run_until(2_us);
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

// Regression: cancelling an event that already executed used to count a
// phantom tombstone and underflow pending() to SIZE_MAX.
TEST(Simulator, CancelAfterExecutionIsNoOp) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.at(1_us, [&] { ++ran; });
  sim.run_until(2_us);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);  // must not underflow
  sim.at(3_us, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingCountsUncancelledOnly) {
  Simulator sim;
  const auto a = sim.at(1_us, [] {});
  sim.at(2_us, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(3_us);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunOneExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  EXPECT_TRUE(sim.run_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1_us);
}

TEST(PeriodicTask, FiresEveryPeriodUntilStopped) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(5_us + 500_ns);
    EXPECT_EQ(ticks, 5);
    task.stop();
    sim.run_until(10_us);
    EXPECT_EQ(ticks, 5);
  }
}

TEST(PeriodicTask, DestructorStops) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(2_us);
  }
  sim.run_until(10_us);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, StopThenStartRearms) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 1_us, [&] { ++ticks; });
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 2);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(5_us);
  EXPECT_EQ(ticks, 2);  // stopped: no ticks at 3/4/5us
  task.start();
  EXPECT_TRUE(task.running());
  task.start();  // no-op while running
  sim.run_until(7_us);  // restarted at 5us: ticks at 6 and 7us
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTask, DefaultConstructedIsDead) {
  PeriodicTask task;
  EXPECT_FALSE(task.running());
  task.stop();   // all operations are no-ops
  task.start();
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, MovedFromIsDead) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask a(sim, 1_us, [&] { ++ticks; });
  PeriodicTask b = std::move(a);
  EXPECT_FALSE(a.running());  // NOLINT(bugprone-use-after-move): dead, not UB
  a.stop();
  a.start();
  EXPECT_FALSE(a.running());
  EXPECT_TRUE(b.running());
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 2);  // the moved-to task kept the schedule
}

TEST(PeriodicTask, MoveAssignStopsTheOverwrittenTask) {
  Simulator sim;
  int slow = 0;
  int fast = 0;
  PeriodicTask task(sim, 3_us, [&] { ++slow; });
  task = PeriodicTask(sim, 1_us, [&] { ++fast; });
  sim.run_until(6_us);
  EXPECT_EQ(slow, 0);  // the overwritten task never fires
  EXPECT_EQ(fast, 6);
}

TEST(PeriodicTask, MovableIntoContainers) {
  Simulator sim;
  int ticks = 0;
  std::vector<PeriodicTask> tasks;
  tasks.emplace_back(sim, 1_us, [&] { ++ticks; });
  tasks.emplace_back(sim, 2_us, [&] { ++ticks; });
  tasks.reserve(32);  // forces a reallocation, i.e. moves of live tasks
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 3);  // 1us task at 1/2us, 2us task at 2us
  tasks.clear();
  sim.run_until(10_us);
  EXPECT_EQ(ticks, 3);  // destruction stopped them
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, DisabledByDefault) {
  Simulator sim;
  EXPECT_EQ(sim.watchdog().max_events, 0u);
  EXPECT_EQ(sim.watchdog().max_events_per_timestamp, 0u);
  EXPECT_FALSE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kNone);
  EXPECT_TRUE(sim.abort_reason().empty());
}

TEST(Watchdog, EventBudgetAbortsGracefully) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events = 3});
  int ran = 0;
  for (int i = 1; i <= 5; ++i) sim.at(TimePs::from_us(i), [&] { ++ran; });
  sim.run_until(10_us);
  EXPECT_EQ(ran, 3);
  EXPECT_TRUE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kEventBudget);
  EXPECT_FALSE(sim.abort_reason().empty());
  EXPECT_EQ(sim.now(), 3_us);    // abort instant, not the requested end
  EXPECT_EQ(sim.pending(), 2u);  // queue left intact and readable
}

TEST(Watchdog, TimestampStallAborts) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events_per_timestamp = 100});
  std::function<void()> spin = [&] { sim.after(TimePs(0), spin); };
  sim.at(1_us, spin);
  sim.run_until(2_us);  // would otherwise never return
  EXPECT_TRUE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kTimestampStall);
  EXPECT_NE(sim.abort_reason().find("no time progress"), std::string::npos);
  EXPECT_EQ(sim.now(), 1_us);
  EXPECT_LE(sim.executed(), 100u);
}

TEST(Watchdog, AdvancingTimeResetsTheStallStreak) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events_per_timestamp = 3});
  int ticks = 0;
  // Two events per timestamp, under the threshold of three, across many
  // timestamps: the streak must reset every time `now` advances.
  for (int i = 1; i <= 20; ++i) {
    sim.at(TimePs::from_us(i), [&] { ++ticks; });
    sim.at(TimePs::from_us(i), [&] { ++ticks; });
  }
  sim.run_until(30_us);
  EXPECT_FALSE(sim.aborted());
  EXPECT_EQ(ticks, 40);
}

TEST(Watchdog, AbortedSimulatorRefusesFurtherWork) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events = 1});
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  sim.run_until(10_us);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.aborted());
  sim.run_until(20_us);  // no-op
  EXPECT_FALSE(sim.run_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1_us);
  // State stays fully readable for post-mortem metrics.
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.pending(), 1u);
}

// Property: an M/D/1-style single server driven through the simulator
// conserves work — all arrivals are eventually served in FIFO order.
TEST(Simulator, FifoServerConservesWork) {
  Simulator sim;
  const TimePs service = 100_ns;
  int queued = 0;
  int served = 0;
  TimePs busy_until{};
  std::vector<TimePs> completions;
  auto arrive = [&] {
    ++queued;
    const TimePs start = std::max(busy_until, sim.now());
    busy_until = start + service;
    sim.at(busy_until, [&] {
      ++served;
      completions.push_back(sim.now());
    });
  };
  for (int i = 0; i < 100; ++i) sim.at(TimePs(i * 37'000), arrive);  // 37ns spacing < service
  sim.run_until(TimePs::from_ms(1));
  EXPECT_EQ(served, queued);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], service);
  }
}

// --------------------------------------------------------------------------
// Satellite (a): negative delays clamp to "now" instead of scheduling
// into the past (which would re-execute at a time before now()).
TEST(Simulator, AfterNegativeDelayClampsToNow) {
  Simulator sim;
  sim.run_until(5_us);
  TimePs ran_at{-1};
  sim.after(TimePs(-3'000'000), [&] { ran_at = sim.now(); });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(5_us);  // due immediately: runs without time advancing
  EXPECT_EQ(ran_at, 5_us);
  EXPECT_EQ(sim.now(), 5_us);
}

// Clamped events still run after events already due at the same time
// (scheduling order breaks the tie).
TEST(Simulator, AfterNegativeDelayPreservesTieOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.after(TimePs(0), [&] { order.push_back(1); });
  sim.after(TimePs(-500), [&] { order.push_back(2); });
  sim.run_until(TimePs(0));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --------------------------------------------------------------------------
// Satellite (c): steady-state scheduling is allocation-free. After a
// warm-up that sizes the node slab, the calendar wheel, and the
// far-future heap, a schedule -> run -> cancel workload with captures
// up to 64 bytes must never reach operator new.
TEST(Simulator, SteadyStateIsAllocationFree) {
  Simulator sim;
  struct Fat {  // 64-byte capture: the documented inline budget
    std::uint64_t lane[8];
  };
  Fat fat{};
  fat.lane[0] = 1;
  std::uint64_t sink = 0;
  std::int64_t t = 0;

  // Warm-up: grow the slab and free list past the steady-state working
  // set, touch the far-future heap once, and drain everything.
  std::vector<EventId> warm;
  warm.reserve(512);
  for (int i = 0; i < 512; ++i) {
    warm.push_back(sim.at(TimePs(t += 500), [fat, &sink] { sink += fat.lane[0]; }));
  }
  for (std::size_t i = 0; i < warm.size(); i += 2) sim.cancel(warm[i]);
  const EventId far = sim.at(TimePs(t) + TimePs::from_ms(1), [] {});
  sim.run_until(TimePs(t));
  sim.cancel(far);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 20'000; ++i) {
    const EventId doomed =
        sim.at(TimePs(t += 200), [fat, &sink] { sink += fat.lane[0]; });
    sim.at(TimePs(t += 200), [fat, &sink] { sink += fat.lane[0]; });
    sim.cancel(doomed);
    sim.run_until(TimePs(t));
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "engine hot path reached operator new";
  EXPECT_EQ(sink, 20'000u + 256u);
}

// --------------------------------------------------------------------------
// Satellite (c): InlineAction semantics.
TEST(InlineAction, MoveTransfersClosure) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  // Move assignment over a live target destroys the target's closure.
  auto guard = std::make_shared<int>(7);
  InlineAction c = [guard] { };
  EXPECT_EQ(guard.use_count(), 2);
  c = std::move(b);
  EXPECT_EQ(guard.use_count(), 1);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, DestructionReleasesCapture) {
  auto guard = std::make_shared<int>(42);
  {
    InlineAction a = [guard] { };
    EXPECT_TRUE(a.is_inline());
    EXPECT_EQ(guard.use_count(), 2);
    a = nullptr;  // reset releases the capture immediately
    EXPECT_EQ(guard.use_count(), 1);
    a = [guard] { };
    EXPECT_EQ(guard.use_count(), 2);
  }  // scope exit destroys the rebound closure
  EXPECT_EQ(guard.use_count(), 1);
}

TEST(InlineAction, OversizedCaptureFallsBackToHeap) {
  struct Huge {
    unsigned char blob[200];
    std::shared_ptr<int> guard;
  };
  auto guard = std::make_shared<int>(9);
  Huge huge{{}, guard};
  huge.blob[199] = 5;
  int seen = -1;
  {
    InlineAction a = [huge, &seen] { seen = huge.blob[199]; };
    EXPECT_FALSE(a.is_inline());
    EXPECT_EQ(guard.use_count(), 3);  // local + huge + boxed closure
    InlineAction b = std::move(a);    // boxed move: pointer handoff
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(guard.use_count(), 3);
    b();
    EXPECT_EQ(seen, 5);
  }
  EXPECT_EQ(guard.use_count(), 2);  // boxed closure destroyed
}

TEST(InlineAction, CallbackReturnsValuesThroughConstRef) {
  const InlineCallback<int(int)> f = [](int x) { return x + 1; };
  EXPECT_EQ(f(41), 42);
  // Shallow const: mutable closure state advances across calls.
  const InlineCallback<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
}

// --------------------------------------------------------------------------
// Goldens: a randomized mixed schedule/cancel workload must execute in
// exactly the order the seed engine defined -- ascending time, ties
// broken by scheduling order -- regardless of which internal structure
// (calendar wheel vs. far-future heap) each event lands in.
TEST(Simulator, GoldensMatchReferenceOrdering) {
  Simulator sim;
  struct Ref {
    std::int64_t time;
    std::uint64_t seq;  // global scheduling order
    int label;
    bool cancelled = false;
  };
  std::vector<Ref> ref;
  std::vector<EventId> ids;
  std::vector<int> executed;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  auto rnd = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  int label = 0;
  std::uint64_t seq = 0;
  std::int64_t prev_dt = 0;
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 64; ++i) {
      std::int64_t dt;
      switch (rnd() % 8) {
        case 0: dt = prev_dt; break;               // exact tie with previous
        case 1: dt = static_cast<std::int64_t>(rnd() % 4'000); break;  // near, dense buckets
        case 2:  // beyond the 33.5us calendar window: far-future heap
          dt = 40'000'000 + static_cast<std::int64_t>(rnd() % 1'000'000'000);
          break;
        default:  // within the calendar window
          dt = static_cast<std::int64_t>(rnd() % 30'000'000);
          break;
      }
      prev_dt = dt;
      const TimePs when = sim.now() + TimePs(dt);
      const int l = label++;
      ids.push_back(sim.at(when, [&executed, l] { executed.push_back(l); }));
      ref.push_back({when.ps(), ++seq, l});
    }
    // Cancel a random subset; mirror only the cancels the engine accepts
    // (an already-executed event reports false and stays in the record).
    for (int i = 0; i < 12; ++i) {
      const std::size_t k = rnd() % ids.size();
      if (sim.cancel(ids[k])) ref[k].cancelled = true;
    }
    sim.run_until(sim.now() + TimePs(static_cast<std::int64_t>(rnd() % 50'000'000)));
  }
  sim.run_until(TimePs::from_sec(10));  // drain, including far-future events
  EXPECT_EQ(sim.pending(), 0u);

  std::vector<Ref> expect;
  for (const Ref& r : ref) {
    if (!r.cancelled) expect.push_back(r);
  }
  std::stable_sort(expect.begin(), expect.end(), [](const Ref& a, const Ref& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  ASSERT_EQ(executed.size(), expect.size());
  EXPECT_EQ(sim.executed(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(executed[i], expect[i].label) << "divergence at position " << i;
  }
}

}  // namespace
}  // namespace hicc::sim
