// Unit tests for the discrete-event engine: ordering, cancellation,
// determinism, periodic tasks, and a queueing sanity property.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace hicc::sim {
namespace {

using namespace hicc::literals;

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePs(0));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.run_one());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3_us, [&] { order.push_back(3); });
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(2_us, [&] { order.push_back(2); });
  sim.run_until(10_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10_us);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(1_us, [&] { order.push_back(2); });
  sim.at(1_us, [&] { order.push_back(3); });
  sim.run_until(1_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowIsEventTimeDuringExecution) {
  Simulator sim;
  TimePs seen{};
  sim.at(5_us, [&] { seen = sim.now(); });
  sim.run_until(10_us);
  EXPECT_EQ(seen, 5_us);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.run_until(5_us);
  TimePs ran_at{};
  sim.at(1_us, [&] { ran_at = sim.now(); });
  sim.run_until(5_us);
  EXPECT_EQ(ran_at, 5_us);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(1_us, chain);
  };
  sim.after(1_us, chain);
  sim.run_until(100_us);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  sim.run_until(1_us);  // inclusive boundary
  EXPECT_EQ(ran, 1);
  sim.run_until(2_us);
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.at(1_us, [&] { ++ran; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run_until(2_us);
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

TEST(Simulator, PendingCountsUncancelledOnly) {
  Simulator sim;
  const auto a = sim.at(1_us, [] {});
  sim.at(2_us, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(3_us);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunOneExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  EXPECT_TRUE(sim.run_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1_us);
}

TEST(PeriodicTask, FiresEveryPeriodUntilStopped) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(5_us + 500_ns);
    EXPECT_EQ(ticks, 5);
    task.stop();
    sim.run_until(10_us);
    EXPECT_EQ(ticks, 5);
  }
}

TEST(PeriodicTask, DestructorStops) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(2_us);
  }
  sim.run_until(10_us);
  EXPECT_EQ(ticks, 2);
}

// Property: an M/D/1-style single server driven through the simulator
// conserves work — all arrivals are eventually served in FIFO order.
TEST(Simulator, FifoServerConservesWork) {
  Simulator sim;
  const TimePs service = 100_ns;
  int queued = 0;
  int served = 0;
  TimePs busy_until{};
  std::vector<TimePs> completions;
  auto arrive = [&] {
    ++queued;
    const TimePs start = std::max(busy_until, sim.now());
    busy_until = start + service;
    sim.at(busy_until, [&] {
      ++served;
      completions.push_back(sim.now());
    });
  };
  for (int i = 0; i < 100; ++i) sim.at(TimePs(i * 37'000), arrive);  // 37ns spacing < service
  sim.run_until(TimePs::from_ms(1));
  EXPECT_EQ(served, queued);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], service);
  }
}

}  // namespace
}  // namespace hicc::sim
