// Unit tests for the discrete-event engine: ordering, cancellation,
// determinism, periodic tasks, watchdog guards, and a queueing sanity
// property.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace hicc::sim {
namespace {

using namespace hicc::literals;

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePs(0));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.run_one());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3_us, [&] { order.push_back(3); });
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(2_us, [&] { order.push_back(2); });
  sim.run_until(10_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10_us);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1_us, [&] { order.push_back(1); });
  sim.at(1_us, [&] { order.push_back(2); });
  sim.at(1_us, [&] { order.push_back(3); });
  sim.run_until(1_us);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowIsEventTimeDuringExecution) {
  Simulator sim;
  TimePs seen{};
  sim.at(5_us, [&] { seen = sim.now(); });
  sim.run_until(10_us);
  EXPECT_EQ(seen, 5_us);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.run_until(5_us);
  TimePs ran_at{};
  sim.at(1_us, [&] { ran_at = sim.now(); });
  sim.run_until(5_us);
  EXPECT_EQ(ran_at, 5_us);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(1_us, chain);
  };
  sim.after(1_us, chain);
  sim.run_until(100_us);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  sim.run_until(1_us);  // inclusive boundary
  EXPECT_EQ(ran, 1);
  sim.run_until(2_us);
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.at(1_us, [&] { ++ran; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run_until(2_us);
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

// Regression: cancelling an event that already executed used to count a
// phantom tombstone and underflow pending() to SIZE_MAX.
TEST(Simulator, CancelAfterExecutionIsNoOp) {
  Simulator sim;
  int ran = 0;
  const EventId id = sim.at(1_us, [&] { ++ran; });
  sim.run_until(2_us);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);  // must not underflow
  sim.at(3_us, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingCountsUncancelledOnly) {
  Simulator sim;
  const auto a = sim.at(1_us, [] {});
  sim.at(2_us, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(3_us);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunOneExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  EXPECT_TRUE(sim.run_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1_us);
}

TEST(PeriodicTask, FiresEveryPeriodUntilStopped) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(5_us + 500_ns);
    EXPECT_EQ(ticks, 5);
    task.stop();
    sim.run_until(10_us);
    EXPECT_EQ(ticks, 5);
  }
}

TEST(PeriodicTask, DestructorStops) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_us, [&] { ++ticks; });
    sim.run_until(2_us);
  }
  sim.run_until(10_us);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, StopThenStartRearms) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 1_us, [&] { ++ticks; });
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 2);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(5_us);
  EXPECT_EQ(ticks, 2);  // stopped: no ticks at 3/4/5us
  task.start();
  EXPECT_TRUE(task.running());
  task.start();  // no-op while running
  sim.run_until(7_us);  // restarted at 5us: ticks at 6 and 7us
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTask, DefaultConstructedIsDead) {
  PeriodicTask task;
  EXPECT_FALSE(task.running());
  task.stop();   // all operations are no-ops
  task.start();
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, MovedFromIsDead) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask a(sim, 1_us, [&] { ++ticks; });
  PeriodicTask b = std::move(a);
  EXPECT_FALSE(a.running());  // NOLINT(bugprone-use-after-move): dead, not UB
  a.stop();
  a.start();
  EXPECT_FALSE(a.running());
  EXPECT_TRUE(b.running());
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 2);  // the moved-to task kept the schedule
}

TEST(PeriodicTask, MoveAssignStopsTheOverwrittenTask) {
  Simulator sim;
  int slow = 0;
  int fast = 0;
  PeriodicTask task(sim, 3_us, [&] { ++slow; });
  task = PeriodicTask(sim, 1_us, [&] { ++fast; });
  sim.run_until(6_us);
  EXPECT_EQ(slow, 0);  // the overwritten task never fires
  EXPECT_EQ(fast, 6);
}

TEST(PeriodicTask, MovableIntoContainers) {
  Simulator sim;
  int ticks = 0;
  std::vector<PeriodicTask> tasks;
  tasks.emplace_back(sim, 1_us, [&] { ++ticks; });
  tasks.emplace_back(sim, 2_us, [&] { ++ticks; });
  tasks.reserve(32);  // forces a reallocation, i.e. moves of live tasks
  sim.run_until(2_us);
  EXPECT_EQ(ticks, 3);  // 1us task at 1/2us, 2us task at 2us
  tasks.clear();
  sim.run_until(10_us);
  EXPECT_EQ(ticks, 3);  // destruction stopped them
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, DisabledByDefault) {
  Simulator sim;
  EXPECT_EQ(sim.watchdog().max_events, 0u);
  EXPECT_EQ(sim.watchdog().max_events_per_timestamp, 0u);
  EXPECT_FALSE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kNone);
  EXPECT_TRUE(sim.abort_reason().empty());
}

TEST(Watchdog, EventBudgetAbortsGracefully) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events = 3});
  int ran = 0;
  for (int i = 1; i <= 5; ++i) sim.at(TimePs::from_us(i), [&] { ++ran; });
  sim.run_until(10_us);
  EXPECT_EQ(ran, 3);
  EXPECT_TRUE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kEventBudget);
  EXPECT_FALSE(sim.abort_reason().empty());
  EXPECT_EQ(sim.now(), 3_us);    // abort instant, not the requested end
  EXPECT_EQ(sim.pending(), 2u);  // queue left intact and readable
}

TEST(Watchdog, TimestampStallAborts) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events_per_timestamp = 100});
  std::function<void()> spin = [&] { sim.after(TimePs(0), spin); };
  sim.at(1_us, spin);
  sim.run_until(2_us);  // would otherwise never return
  EXPECT_TRUE(sim.aborted());
  EXPECT_EQ(sim.abort_cause(), AbortCause::kTimestampStall);
  EXPECT_NE(sim.abort_reason().find("no time progress"), std::string::npos);
  EXPECT_EQ(sim.now(), 1_us);
  EXPECT_LE(sim.executed(), 100u);
}

TEST(Watchdog, AdvancingTimeResetsTheStallStreak) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events_per_timestamp = 3});
  int ticks = 0;
  // Two events per timestamp, under the threshold of three, across many
  // timestamps: the streak must reset every time `now` advances.
  for (int i = 1; i <= 20; ++i) {
    sim.at(TimePs::from_us(i), [&] { ++ticks; });
    sim.at(TimePs::from_us(i), [&] { ++ticks; });
  }
  sim.run_until(30_us);
  EXPECT_FALSE(sim.aborted());
  EXPECT_EQ(ticks, 40);
}

TEST(Watchdog, AbortedSimulatorRefusesFurtherWork) {
  Simulator sim;
  sim.set_watchdog(WatchdogParams{.max_events = 1});
  int ran = 0;
  sim.at(1_us, [&] { ++ran; });
  sim.at(2_us, [&] { ++ran; });
  sim.run_until(10_us);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.aborted());
  sim.run_until(20_us);  // no-op
  EXPECT_FALSE(sim.run_one());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 1_us);
  // State stays fully readable for post-mortem metrics.
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.pending(), 1u);
}

// Property: an M/D/1-style single server driven through the simulator
// conserves work — all arrivals are eventually served in FIFO order.
TEST(Simulator, FifoServerConservesWork) {
  Simulator sim;
  const TimePs service = 100_ns;
  int queued = 0;
  int served = 0;
  TimePs busy_until{};
  std::vector<TimePs> completions;
  auto arrive = [&] {
    ++queued;
    const TimePs start = std::max(busy_until, sim.now());
    busy_until = start + service;
    sim.at(busy_until, [&] {
      ++served;
      completions.push_back(sim.now());
    });
  };
  for (int i = 0; i < 100; ++i) sim.at(TimePs(i * 37'000), arrive);  // 37ns spacing < service
  sim.run_until(TimePs::from_ms(1));
  EXPECT_EQ(served, queued);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], service);
  }
}

}  // namespace
}  // namespace hicc::sim
