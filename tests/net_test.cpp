// Tests for the fabric: wire format math, link serialization and
// queueing, tail drops, and end-to-end fabric routing/timing.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace hicc::net {
namespace {

using namespace hicc::literals;

TEST(WireFormat, GoodputFractionMatchesPaper) {
  const WireFormat w;
  // 4096/(4096+356) = 0.92 -> 92 Gbps max app throughput on 100G.
  EXPECT_NEAR(w.goodput_fraction() * 100.0, 92.0, 0.1);
  EXPECT_EQ(w.data_wire().count(), 4452);
}

Packet make_data(int flow, std::int64_t seq, Bytes wire) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = flow;
  p.seq = seq;
  p.payload = Bytes(4096);
  p.wire = wire;
  return p;
}

TEST(QueuedLink, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  std::vector<TimePs> arrivals;
  QueuedLink link(sim, BitRate::gbps(100), 2_us, 1_MiB,
                  [&](Packet) { arrivals.push_back(sim.now()); });
  ASSERT_TRUE(link.send(make_data(0, 0, Bytes(4452))));
  sim.run_until(10_us);
  ASSERT_EQ(arrivals.size(), 1u);
  // 4452B at 100G = 356.16ns + 2us propagation.
  EXPECT_NEAR(arrivals[0].us(), 2.356, 0.01);
}

TEST(QueuedLink, BackToBackPacketsSpacedBySerialization) {
  sim::Simulator sim;
  std::vector<TimePs> arrivals;
  QueuedLink link(sim, BitRate::gbps(100), 2_us, 1_MiB,
                  [&](Packet) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(link.send(make_data(0, i, Bytes(4452))));
  sim.run_until(20_us);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR((arrivals[1] - arrivals[0]).ns(), 356.16, 1.0);
  EXPECT_NEAR((arrivals[2] - arrivals[1]).ns(), 356.16, 1.0);
}

TEST(QueuedLink, TailDropsWhenFull) {
  sim::Simulator sim;
  int delivered = 0;
  QueuedLink link(sim, BitRate::gbps(100), TimePs(0), Bytes(10000),
                  [&](Packet) { ++delivered; });
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += link.send(make_data(0, i, Bytes(4452))) ? 1 : 0;
  EXPECT_EQ(accepted, 2);  // 2 x 4452 = 8904 <= 10000; third exceeds
  EXPECT_EQ(link.drops(), 8);
  sim.run_until(1_ms);
  EXPECT_EQ(delivered, 2);
}

TEST(QueuedLink, OccupancyReturnsToZero) {
  sim::Simulator sim;
  QueuedLink link(sim, BitRate::gbps(100), 1_us, 1_MiB, [](Packet) {});
  link.send(make_data(0, 0, Bytes(4452)));
  EXPECT_EQ(link.queued().count(), 4452);
  sim.run_until(1_ms);
  EXPECT_EQ(link.queued().count(), 0);
}

struct FabricHarness {
  sim::Simulator sim;
  FabricParams params;
  std::vector<Packet> at_receiver;
  std::vector<std::pair<int, Packet>> at_senders;
  std::unique_ptr<Fabric> fabric;

  explicit FabricHarness(int senders = 4) {
    params.num_senders = senders;
    fabric = std::make_unique<Fabric>(
        sim, params, [this](Packet p) { at_receiver.push_back(std::move(p)); },
        [this](int i, Packet p) { at_senders.emplace_back(i, std::move(p)); });
  }
};

TEST(Fabric, DataPathSenderToReceiver) {
  FabricHarness h;
  ASSERT_TRUE(h.fabric->send_from_sender(2, make_data(7, 0, Bytes(4452))));
  h.sim.run_until(20_us);
  ASSERT_EQ(h.at_receiver.size(), 1u);
  EXPECT_EQ(h.at_receiver[0].flow, 7);
}

TEST(Fabric, EndToEndLatencyIsTwoHops) {
  FabricHarness h;
  TimePs arrival{};
  h.fabric = std::make_unique<Fabric>(
      h.sim, h.params, [&](Packet) { arrival = h.sim.now(); }, [](int, Packet) {});
  h.fabric->send_from_sender(0, make_data(0, 0, Bytes(4452)));
  h.sim.run_until(20_us);
  EXPECT_NEAR(arrival.us(), 2.356 + 2.356, 0.05);
}

TEST(Fabric, ReversePathRoutesBySenderField) {
  FabricHarness h;
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.sender = 3;
  ack.wire = Bytes(64);
  ASSERT_TRUE(h.fabric->send_from_receiver(ack));
  h.sim.run_until(20_us);
  ASSERT_EQ(h.at_senders.size(), 1u);
  EXPECT_EQ(h.at_senders[0].first, 3);
  EXPECT_EQ(h.at_senders[0].second.kind, PacketKind::kAck);
}

TEST(Fabric, ManySendersConvergeOnAccessLink) {
  FabricHarness h(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.fabric->send_from_sender(i, make_data(i, 0, Bytes(4452))));
  }
  h.sim.run_until(50_us);
  EXPECT_EQ(h.at_receiver.size(), 8u);
  EXPECT_EQ(h.fabric->fabric_drops(), 0);
}

TEST(Fabric, BaseRttAboutSixteenMicroseconds) {
  // Data forward (2 hops) + ACK reverse (2 hops) with 2us edges:
  // ~8us propagation + serializations each way -> ~9us round trip at
  // the packet level; with NIC/host processing the experiment RTT is
  // ~20us, matching the paper's example.
  FabricHarness h;
  TimePs data_arrival{}, ack_arrival{};
  h.fabric = std::make_unique<Fabric>(
      h.sim, h.params,
      [&](Packet p) {
        data_arrival = h.sim.now();
        Packet ack;
        ack.kind = PacketKind::kAck;
        ack.sender = p.sender;
        ack.wire = Bytes(64);
        h.fabric->send_from_receiver(std::move(ack));
      },
      [&](int, Packet) { ack_arrival = h.sim.now(); });
  Packet p = make_data(0, 0, Bytes(4452));
  p.sender = 0;
  h.fabric->send_from_sender(0, std::move(p));
  h.sim.run_until(50_us);
  EXPECT_GT(data_arrival, TimePs(0));
  EXPECT_NEAR(ack_arrival.us(), 8.7, 0.5);
}

}  // namespace
}  // namespace hicc::net
