// Tests for the fabric: wire format math, link serialization and
// queueing, tail drops, end-to-end fabric routing/timing, and the
// config-driven Clos topology (routing, ECMP determinism, drop
// accounting).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/fabric.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace hicc::net {
namespace {

using namespace hicc::literals;

TEST(WireFormat, GoodputFractionMatchesPaper) {
  const WireFormat w;
  // 4096/(4096+356) = 0.92 -> 92 Gbps max app throughput on 100G.
  EXPECT_NEAR(w.goodput_fraction() * 100.0, 92.0, 0.1);
  EXPECT_EQ(w.data_wire().count(), 4452);
}

Packet make_data(int flow, std::int64_t seq, Bytes wire) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = flow;
  p.seq = seq;
  p.payload = Bytes(4096);
  p.wire = wire;
  return p;
}

TEST(QueuedLink, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  std::vector<TimePs> arrivals;
  QueuedLink link(sim, BitRate::gbps(100), 2_us, 1_MiB,
                  [&](Packet) { arrivals.push_back(sim.now()); });
  ASSERT_TRUE(link.send(make_data(0, 0, Bytes(4452))));
  sim.run_until(10_us);
  ASSERT_EQ(arrivals.size(), 1u);
  // 4452B at 100G = 356.16ns + 2us propagation.
  EXPECT_NEAR(arrivals[0].us(), 2.356, 0.01);
}

TEST(QueuedLink, BackToBackPacketsSpacedBySerialization) {
  sim::Simulator sim;
  std::vector<TimePs> arrivals;
  QueuedLink link(sim, BitRate::gbps(100), 2_us, 1_MiB,
                  [&](Packet) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(link.send(make_data(0, i, Bytes(4452))));
  sim.run_until(20_us);
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR((arrivals[1] - arrivals[0]).ns(), 356.16, 1.0);
  EXPECT_NEAR((arrivals[2] - arrivals[1]).ns(), 356.16, 1.0);
}

TEST(QueuedLink, TailDropsWhenFull) {
  sim::Simulator sim;
  int delivered = 0;
  QueuedLink link(sim, BitRate::gbps(100), TimePs(0), Bytes(10000),
                  [&](Packet) { ++delivered; });
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += link.send(make_data(0, i, Bytes(4452))) ? 1 : 0;
  EXPECT_EQ(accepted, 2);  // 2 x 4452 = 8904 <= 10000; third exceeds
  EXPECT_EQ(link.drops(), 8);
  sim.run_until(1_ms);
  EXPECT_EQ(delivered, 2);
}

TEST(QueuedLink, OccupancyReturnsToZero) {
  sim::Simulator sim;
  QueuedLink link(sim, BitRate::gbps(100), 1_us, 1_MiB, [](Packet) {});
  link.send(make_data(0, 0, Bytes(4452)));
  EXPECT_EQ(link.queued().count(), 4452);
  sim.run_until(1_ms);
  EXPECT_EQ(link.queued().count(), 0);
}

struct FabricHarness {
  sim::Simulator sim;
  FabricParams params;
  std::vector<Packet> at_receiver;
  std::vector<std::pair<int, Packet>> at_senders;
  std::unique_ptr<Fabric> fabric;

  explicit FabricHarness(int senders = 4) {
    params.num_senders = senders;
    fabric = std::make_unique<Fabric>(
        sim, params, [this](Packet p) { at_receiver.push_back(std::move(p)); },
        [this](int i, Packet p) { at_senders.emplace_back(i, std::move(p)); });
  }
};

TEST(Fabric, DataPathSenderToReceiver) {
  FabricHarness h;
  ASSERT_TRUE(h.fabric->send_from_sender(2, make_data(7, 0, Bytes(4452))));
  h.sim.run_until(20_us);
  ASSERT_EQ(h.at_receiver.size(), 1u);
  EXPECT_EQ(h.at_receiver[0].flow, 7);
}

TEST(Fabric, EndToEndLatencyIsTwoHops) {
  FabricHarness h;
  TimePs arrival{};
  h.fabric = std::make_unique<Fabric>(
      h.sim, h.params, [&](Packet) { arrival = h.sim.now(); }, [](int, Packet) {});
  h.fabric->send_from_sender(0, make_data(0, 0, Bytes(4452)));
  h.sim.run_until(20_us);
  EXPECT_NEAR(arrival.us(), 2.356 + 2.356, 0.05);
}

TEST(Fabric, ReversePathRoutesBySenderField) {
  FabricHarness h;
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.sender = 3;
  ack.wire = Bytes(64);
  ASSERT_TRUE(h.fabric->send_from_receiver(ack));
  h.sim.run_until(20_us);
  ASSERT_EQ(h.at_senders.size(), 1u);
  EXPECT_EQ(h.at_senders[0].first, 3);
  EXPECT_EQ(h.at_senders[0].second.kind, PacketKind::kAck);
}

TEST(Fabric, ManySendersConvergeOnAccessLink) {
  FabricHarness h(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.fabric->send_from_sender(i, make_data(i, 0, Bytes(4452))));
  }
  h.sim.run_until(50_us);
  EXPECT_EQ(h.at_receiver.size(), 8u);
  EXPECT_EQ(h.fabric->fabric_drops(), 0);
}

TEST(Fabric, BaseRttAboutSixteenMicroseconds) {
  // Data forward (2 hops) + ACK reverse (2 hops) with 2us edges:
  // ~8us propagation + serializations each way -> ~9us round trip at
  // the packet level; with NIC/host processing the experiment RTT is
  // ~20us, matching the paper's example.
  FabricHarness h;
  TimePs data_arrival{}, ack_arrival{};
  h.fabric = std::make_unique<Fabric>(
      h.sim, h.params,
      [&](Packet p) {
        data_arrival = h.sim.now();
        Packet ack;
        ack.kind = PacketKind::kAck;
        ack.sender = p.sender;
        ack.wire = Bytes(64);
        h.fabric->send_from_receiver(std::move(ack));
      },
      [&](int, Packet) { ack_arrival = h.sim.now(); });
  Packet p = make_data(0, 0, Bytes(4452));
  p.sender = 0;
  h.fabric->send_from_sender(0, std::move(p));
  h.sim.run_until(50_us);
  EXPECT_GT(data_arrival, TimePs(0));
  EXPECT_NEAR(ack_arrival.us(), 8.7, 0.5);
}

struct ClosHarness {
  sim::Simulator sim;
  TopologyConfig cfg;
  std::vector<std::pair<int, Packet>> delivered;
  std::unique_ptr<ClosFabric> fabric;

  explicit ClosHarness(TopologyConfig c = TopologyConfig{}) : cfg(c) {
    fabric = std::make_unique<ClosFabric>(sim, cfg, [this](int h, Packet p) {
      delivered.emplace_back(h, std::move(p));
    });
  }

  Packet data(int src, int dst, int flow) {
    Packet p = make_data(flow, 0, Bytes(4452));
    p.sender = src;
    p.dst = dst;
    return p;
  }
};

TEST(Topology, ConfigDerivesHostCountAndLeafPlacement) {
  TopologyConfig cfg;
  cfg.leaves = 3;
  cfg.spines = 2;
  cfg.hosts_per_leaf = 4;
  EXPECT_EQ(cfg.num_hosts(), 12);
  EXPECT_EQ(cfg.leaf_of(0), 0);
  EXPECT_EQ(cfg.leaf_of(3), 0);
  EXPECT_EQ(cfg.leaf_of(4), 1);
  EXPECT_EQ(cfg.leaf_of(11), 2);
}

TEST(ClosFabric, IntraLeafIsTwoHopsInterLeafIsFour) {
  // Default topology: 2 leaves x 2 spines x 4 hosts/leaf, 2us hops.
  ClosHarness h;
  h.fabric->send_from_host(1, h.data(1, 0, 7));  // same leaf as host 0
  h.sim.run_until(20_us);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].first, 0);
  EXPECT_EQ(h.delivered[0].second.flow, 7);
  const TimePs intra = h.sim.now();  // measured below via fresh harness

  ClosHarness far;
  TimePs arrival{};
  far.fabric = std::make_unique<ClosFabric>(far.sim, far.cfg, [&](int hh, Packet) {
    EXPECT_EQ(hh, 0);
    arrival = far.sim.now();
  });
  far.fabric->send_from_host(5, far.data(5, 0, 7));  // leaf 1 -> leaf 0
  far.sim.run_until(30_us);
  // Two edge hops (2.356us each) vs those plus two fabric hops.
  EXPECT_NEAR(arrival.us(), 2 * 2.356 + 2 * 2.356, 0.1);
  (void)intra;
}

TEST(ClosFabric, IntraLeafLatencyMatchesLegacyTwoHops) {
  ClosHarness h;
  TimePs arrival{};
  h.fabric = std::make_unique<ClosFabric>(
      h.sim, h.cfg, [&](int, Packet) { arrival = h.sim.now(); });
  h.fabric->send_from_host(1, h.data(1, 0, 0));
  h.sim.run_until(20_us);
  EXPECT_NEAR(arrival.us(), 2.356 + 2.356, 0.05);
}

TEST(ClosFabric, EcmpIsDeterministicAcrossInstancesAndSpreadsFlows) {
  TopologyConfig cfg;
  cfg.spines = 4;
  ClosHarness a(cfg);
  ClosHarness b(cfg);
  std::set<int> spines_used;
  for (int flow = 0; flow < 64; ++flow) {
    const Packet p = a.data(/*src=*/4, /*dst=*/0, flow);
    const int sa = a.fabric->ecmp_spine(p);
    const int sb = b.fabric->ecmp_spine(p);
    EXPECT_EQ(sa, sb) << "flow " << flow;
    ASSERT_GE(sa, 0);
    ASSERT_LT(sa, cfg.spines);
    spines_used.insert(sa);
  }
  // 64 flows across 4 spines: the hash must not collapse to one path.
  EXPECT_GT(spines_used.size(), 1u);

  TopologyConfig reseeded = cfg;
  reseeded.ecmp_seed = 12345;
  ClosHarness c(reseeded);
  int moved = 0;
  for (int flow = 0; flow < 64; ++flow) {
    const Packet p = a.data(4, 0, flow);
    moved += a.fabric->ecmp_spine(p) != c.fabric->ecmp_spine(p) ? 1 : 0;
  }
  EXPECT_GT(moved, 0);  // a new seed reshuffles at least some paths
}

TEST(ClosFabric, EveryPacketOfAFlowTakesOnePath) {
  // Stateless hashing: repeated sends of the same flow key never
  // reorder across spines.
  ClosHarness h;
  const Packet p = h.data(4, 0, 9);
  const int spine = h.fabric->ecmp_spine(p);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(h.fabric->ecmp_spine(p), spine);
}

TEST(ClosFabric, DropAccountingIsPerPortAndTotalIsRunning) {
  TopologyConfig cfg;
  cfg.edge_buffer = Bytes(10000);  // downlink holds two 4452B packets
  ClosHarness h(cfg);
  // Incast: three same-leaf hosts send to host 0, paced so each
  // uplink stays under its own occupancy bound (held through the 2us
  // propagation) and the convergence point is host 0's downlink.
  for (int round = 0; round < 12; ++round) {
    h.sim.run_until(TimePs::from_ns(1200 * round));
    for (int src = 1; src < 4; ++src) {
      ASSERT_TRUE(h.fabric->send_from_host(src, h.data(src, 0, src)));
    }
  }
  h.sim.run_until(100_us);
  EXPECT_GT(h.fabric->fabric_drops(), 0);
  // The O(1) running total equals the sum over every port.
  std::int64_t per_port = 0;
  for (int host = 0; host < cfg.num_hosts(); ++host) {
    per_port += h.fabric->host_uplink(host).drops();
    per_port += h.fabric->host_downlink(host).drops();
  }
  for (int l = 0; l < cfg.leaves; ++l) {
    for (int s = 0; s < cfg.spines; ++s) {
      per_port += h.fabric->leaf_uplink(l, s).drops();
      per_port += h.fabric->spine_downlink(s, l).drops();
    }
  }
  EXPECT_EQ(h.fabric->fabric_drops(), per_port);
  // All loss is at the victim's ports; host_port_drops pins the blame.
  EXPECT_EQ(h.fabric->host_port_drops(0), h.fabric->fabric_drops());
  EXPECT_EQ(h.fabric->host_port_drops(1), 0);
}

TEST(ClosFabric, UplinkDropRejectsAtSource) {
  TopologyConfig cfg;
  cfg.edge_buffer = Bytes(4452);  // exactly one packet per edge port
  ClosHarness h(cfg);
  EXPECT_TRUE(h.fabric->send_from_host(1, h.data(1, 0, 0)));
  EXPECT_FALSE(h.fabric->send_from_host(1, h.data(1, 0, 1)));
  EXPECT_EQ(h.fabric->host_uplink(1).drops(), 1);
  EXPECT_EQ(h.fabric->fabric_drops(), 1);
}

}  // namespace
}  // namespace hicc::net
