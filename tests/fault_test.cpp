// Fault layer: script grammar parsing (with aggregated errors), config
// validation, the no-perturbation guarantee for idle scripts, injector
// determinism, per-injector trace probes, disturbance accounting, and
// the watchdog backstop for pathological scripts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/experiment.h"
#include "core/validate.h"
#include "fault/engine.h"
#include "fault/script.h"
#include "sweep/sweep.h"
#include "trace/trace.h"

namespace hicc {
namespace {

using fault::FaultKind;
using fault::parse_script;

// ----------------------------------------------------------- parsing

TEST(ScriptParser, ParsesTheFullGrammar) {
  const auto r = parse_script(
      "mem.antagonist@5ms+2ms/10ms,cores=8; net.rate@12ms+1ms,link=access,gbps=25");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? std::string() : r.errors[0]);
  ASSERT_EQ(r.script.events.size(), 2u);

  const fault::FaultEvent& a = r.script.events[0];
  EXPECT_EQ(a.kind, FaultKind::kMemAntagonist);
  EXPECT_EQ(a.at, TimePs::from_ms(5));
  EXPECT_EQ(a.duration, TimePs::from_ms(2));
  EXPECT_EQ(a.period, TimePs::from_ms(10));
  EXPECT_DOUBLE_EQ(a.params.at("cores"), 8.0);

  const fault::FaultEvent& b = r.script.events[1];
  EXPECT_EQ(b.kind, FaultKind::kNetRate);
  EXPECT_EQ(b.period, TimePs(0));  // one-shot
  EXPECT_DOUBLE_EQ(b.params.at("link"), -1.0);  // "access" sugar
  EXPECT_DOUBLE_EQ(b.params.at("gbps"), 25.0);
}

TEST(ScriptParser, BareNumbersAreMicrosecondsAndSuffixesWork) {
  const auto r = parse_script("nic.credit_stall@40+300ns;host.deschedule@0.5s");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.script.events.size(), 2u);
  EXPECT_EQ(r.script.events[0].at, TimePs::from_us(40));
  EXPECT_EQ(r.script.events[0].duration, TimePs::from_ns(300));
  EXPECT_EQ(r.script.events[1].at, TimePs::from_ms(500));
}

TEST(ScriptParser, EmptySpecsAndStraySeparatorsAreFine) {
  EXPECT_TRUE(parse_script("").ok());
  EXPECT_TRUE(parse_script("").script.empty());
  const auto r = parse_script(" ; mem.antagonist@1ms,cores=4 ; ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.script.events.size(), 1u);
}

TEST(ScriptParser, SpecRoundTrips) {
  const auto r = parse_script(
      "iommu.storm@450us+20us,per_us=2;"
      "mem.antagonist@5ms+2ms/10ms,cores=8;"
      "net.loss@100ns,link=1,prob=0.25");
  ASSERT_TRUE(r.ok());
  const auto again = parse_script(r.script.to_spec());
  ASSERT_TRUE(again.ok()) << (again.errors.empty() ? std::string() : again.errors[0]);
  EXPECT_EQ(again.script, r.script);
}

TEST(ScriptParser, AggregatesEveryErrorWithEntryPositions) {
  const auto r = parse_script(
      "bogus.kind@1ms;"                      // unknown kind
      "mem.antagonist,cores=8;"              // missing @time
      "net.loss@xyz;"                        // bad activation time
      "mem.antagonist@1ms,cores=8,cores=9;"  // duplicate parameter
      "net.rate@1ms,gbps;"                   // parameter without '='
      "iommu.storm@1ms,per_us=fast");        // non-numeric value
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 6u);
  EXPECT_NE(r.errors[0].find("entry 1"), std::string::npos);
  EXPECT_NE(r.errors[0].find("unknown fault kind"), std::string::npos);
  EXPECT_NE(r.errors[1].find("missing '@"), std::string::npos);
  EXPECT_NE(r.errors[2].find("bad activation time"), std::string::npos);
  EXPECT_NE(r.errors[3].find("duplicate parameter"), std::string::npos);
  EXPECT_NE(r.errors[4].find("key=value"), std::string::npos);
  EXPECT_NE(r.errors[5].find("non-numeric"), std::string::npos);
  EXPECT_NE(r.errors[5].find("entry 6"), std::string::npos);
}

// -------------------------------------------------------- validation

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.rx_threads = 2;
  cfg.num_senders = 4;
  cfg.warmup = TimePs::from_us(200);
  cfg.measure = TimePs::from_us(500);
  return cfg;
}

TEST(Validation, AcceptsTheDefaultConfig) {
  EXPECT_TRUE(validate(ExperimentConfig{}).empty());
  EXPECT_TRUE(validate(small_config()).empty());
}

TEST(Validation, AggregatesManyDistinctViolationClasses) {
  ExperimentConfig bad = small_config();
  bad.rx_threads = 0;                      // workload shape
  bad.num_senders = 0;                     // workload shape
  bad.read_size = Bytes(0);                // RPC sizing
  bad.read_pipeline = 0;                   // pipelining
  bad.iommu.iotlb_entries = 7;             // IOTLB geometry (7 % 4 != 0)
  bad.iommu.iotlb_sets = 4;
  bad.nic.input_buffer = Bytes(100);       // NIC buffer < one MTU
  bad.nic.descriptor_prefetch = 0;         // descriptor ring
  bad.ddio.ddio_ways = 99;                 // DDIO vs LLC geometry
  bad.measure = TimePs(0);                 // run control
  bad.faults = parse_script("net.rate@1ms").script;  // fault semantics (no gbps)

  const auto violations = validate(bad);
  std::set<std::string> fields;
  for (const auto& v : violations) {
    fields.insert(v.field);
    EXPECT_FALSE(v.message.empty());
  }
  // Every class above must be reported in one pass, not one per run.
  EXPECT_GE(fields.size(), 10u);
  EXPECT_TRUE(fields.count("rx_threads"));
  EXPECT_TRUE(fields.count("num_senders"));
  EXPECT_TRUE(fields.count("iommu.iotlb_entries"));
  EXPECT_TRUE(fields.count("nic.input_buffer"));
  EXPECT_TRUE(fields.count("ddio.ddio_ways"));
  EXPECT_TRUE(fields.count("measure"));
  EXPECT_TRUE(fields.count("faults[0].gbps"));

  const std::string text = describe(violations);
  EXPECT_NE(text.find("rx_threads"), std::string::npos);
  EXPECT_NE(text.find("faults[0].gbps"), std::string::npos);
}

TEST(Validation, ChecksFaultScriptSemanticsPerEntry) {
  ExperimentConfig cfg = small_config();
  const auto r = parse_script(
      "net.rate@1ms,link=99,gbps=25;"       // link out of range (4 senders)
      "net.loss@1ms,prob=1.5;"              // probability > 1
      "iommu.storm@1ms,per_us=1e7;"         // storm faster than the engine tick
      "host.deschedule@1ms,threads=5;"      // more threads than rx_threads=2
      "mem.antagonist@-1us,cores=8;"        // negative activation time
      "nic.buffer_squeeze@1ms,kb=0.1;"      // buffer below one wire MTU
      "mem.antagonist@1ms/2ms,cores=8;"     // period without a duration
      "mem.antagonist@1ms,core=8");         // unknown parameter key (typo)
  ASSERT_TRUE(r.ok());
  cfg.faults = r.script;

  const auto violations = validate(cfg);
  std::set<std::string> fields;
  for (const auto& v : violations) fields.insert(v.field);
  EXPECT_TRUE(fields.count("faults[0].link"));
  EXPECT_TRUE(fields.count("faults[1].prob"));
  EXPECT_TRUE(fields.count("faults[2].per_us"));
  EXPECT_TRUE(fields.count("faults[3].threads"));
  EXPECT_TRUE(fields.count("faults[4].at"));
  EXPECT_TRUE(fields.count("faults[5].kb"));
  EXPECT_TRUE(fields.count("faults[6].period"));
  EXPECT_TRUE(fields.count("faults[7].core"));
  EXPECT_GE(fields.size(), 8u);
}

TEST(Validation, SweepRejectsInvalidPointsUpFront) {
  std::vector<ExperimentConfig> points(3, small_config());
  points[1].rx_threads = 0;
  points[2].measure = TimePs(0);

  sweep::SweepOptions opts;
  opts.jobs = 1;
  try {
    (void)sweep::SweepRunner(opts).run(points);
    FAIL() << "invalid points must throw before any experiment runs";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 bad point(s)"), std::string::npos);
    EXPECT_NE(msg.find("point 1"), std::string::npos);
    EXPECT_NE(msg.find("rx_threads"), std::string::npos);
    EXPECT_NE(msg.find("point 2"), std::string::npos);
    EXPECT_NE(msg.find("measure"), std::string::npos);
  }
}

// ------------------------------------------------- no perturbation

void expect_bitwise_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.iotlb_misses_per_packet, b.iotlb_misses_per_packet);
  EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec);
  EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us);
  EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us);
  EXPECT_EQ(a.host_delay_max_us, b.host_delay_max_us);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.rto_fires, b.rto_fires);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.iotlb_misses, b.iotlb_misses);
  EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups);
  EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls);
  EXPECT_EQ(a.pcie_write_buffer_stalls, b.pcie_write_buffer_stalls);
  EXPECT_EQ(a.hol_descriptor_stalls, b.hol_descriptor_stalls);
  EXPECT_EQ(a.avg_cwnd, b.avg_cwnd);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(FaultExperiment, EmptyScriptBuildsNoEngine) {
  Experiment exp(small_config());
  EXPECT_EQ(exp.fault_engine(), nullptr);
}

TEST(FaultExperiment, IdleScriptIsBitwiseIdenticalToNoEngine) {
  Experiment base(small_config());
  const Metrics mb = base.run();

  // The script never fires inside the 700us run, so the engine must be
  // invisible: same metrics AND the same executed-event count.
  ExperimentConfig cfg = small_config();
  cfg.faults = parse_script("mem.antagonist@10s,cores=15").script;
  Experiment faulted(cfg);
  ASSERT_NE(faulted.fault_engine(), nullptr);
  const Metrics mf = faulted.run();

  expect_bitwise_identical(mb, mf);
  EXPECT_EQ(mf.fault_windows, 0);
  EXPECT_EQ(mf.fault_drops, 0);
  EXPECT_EQ(mf.fault_active_us, 0.0);
  EXPECT_EQ(mf.run_status, RunStatus::kOk);
}

TEST(FaultExperiment, SameSeedAndScriptIsDeterministic) {
  ExperimentConfig cfg = small_config();
  cfg.faults =
      parse_script("mem.antagonist@300us+200us,cores=12;net.loss@350us+100us,prob=0.02").script;
  ASSERT_TRUE(validate(cfg).empty());

  Experiment a(cfg);
  Experiment b(cfg);
  const Metrics ma = a.run();
  const Metrics mb = b.run();
  expect_bitwise_identical(ma, mb);
  EXPECT_EQ(ma.fault_windows, mb.fault_windows);
  EXPECT_EQ(ma.fault_drops, mb.fault_drops);
  EXPECT_EQ(ma.fault_active_us, mb.fault_active_us);
  EXPECT_EQ(ma.fault_blind_us, mb.fault_blind_us);
  EXPECT_GT(ma.fault_windows, 0);
}

// ----------------------------------------------------- trace probes

TEST(FaultExperiment, EveryInjectorRegistersAndExercisesItsProbe) {
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;
  const auto r = parse_script(
      "net.link_down@250us+20us;"
      "net.rate@280us+20us,link=access,gbps=25;"
      "net.loss@310us+20us,prob=0.05;"
      "nic.credit_stall@340us+10us;"
      "nic.buffer_squeeze@360us+20us,kb=64;"
      "iommu.storm@390us+20us,per_us=0.5;"
      "mem.antagonist@420us+40us,cores=8;"
      "mem.ddio_squeeze@470us+20us,ways=1;"
      "host.deschedule@500us+20us,threads=1;"
      "transport.churn@530us+20us,flows=1");
  ASSERT_TRUE(r.ok());
  cfg.faults = r.script;
  ASSERT_TRUE(validate(cfg).empty());

  Experiment exp(cfg);
  trace::RecordingSink sink;
  exp.tracer()->set_sink(&sink);
  const Metrics m = exp.run();
  exp.tracer()->finish();

  const char* const kFaultProbes[] = {
      "fault.net_link_down",  "fault.net_rate",       "fault.net_loss",
      "fault.nic_credit_stall", "fault.nic_buffer_squeeze", "fault.iommu_storm",
      "fault.mem_antagonist", "fault.mem_ddio_squeeze", "fault.host_deschedule",
      "fault.transport_churn",
  };
  for (const char* name : kFaultProbes) {
    ASSERT_TRUE(exp.tracer()->find(name).has_value()) << "missing probe: " << name;
    const auto series = sink.of(name);
    ASSERT_FALSE(series.empty()) << name;
    // Each window spans >= two 5us sampler ticks, so the activity gauge
    // must have been captured nonzero at least once.
    EXPECT_TRUE(std::any_of(series.begin(), series.end(),
                            [](const trace::RecordingSink::Sample& s) { return s.value > 0.0; }))
        << "probe never went active: " << name;
  }
  ASSERT_TRUE(exp.tracer()->find("fault.active").has_value());
  const auto activations = sink.of("fault.activations");
  ASSERT_FALSE(activations.empty());
  EXPECT_DOUBLE_EQ(activations.back().value, 10.0);
  EXPECT_EQ(m.fault_windows, 10);
  EXPECT_GT(m.fault_active_us, 0.0);
  EXPECT_EQ(m.run_status, RunStatus::kOk);
}

TEST(FaultExperiment, UntracedOrUnscriptedRunsRegisterNoFaultProbes) {
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;  // tracer, but no script
  Experiment exp(cfg);
  EXPECT_FALSE(exp.tracer()->find("fault.active").has_value());
}

// ------------------------------------------------------- disturbance

TEST(FaultExperiment, AntagonistBurstDisturbsTheHost) {
  Experiment base_exp(small_config());
  const Metrics base = base_exp.run();

  ExperimentConfig cfg = small_config();
  cfg.faults = parse_script("mem.antagonist@300us+200us,cores=15").script;
  ASSERT_TRUE(validate(cfg).empty());
  Experiment exp(cfg);
  const Metrics m = exp.run();

  EXPECT_EQ(m.fault_windows, 1);
  EXPECT_NEAR(m.fault_active_us, 200.0, 1.0);
  // The burst lands inside the measurement window: the antagonist class
  // shows up on the memory bus (it is zero in the baseline) and the
  // congested bus backs the host pipeline up into the PCIe write
  // buffer, costing delivery throughput.
  const int ant = static_cast<int>(mem::MemClass::kAntagonist);
  EXPECT_EQ(base.memory.by_class_gbytes_per_sec[ant], 0.0);
  EXPECT_GT(m.memory.by_class_gbytes_per_sec[ant], 1.0);
  EXPECT_GT(m.pcie_write_buffer_stalls, base.pcie_write_buffer_stalls);
  EXPECT_LT(m.app_throughput_gbps, base.app_throughput_gbps);
}

// ------------------------------------------------- cluster targeting

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.host = small_config();
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.topology.hosts_per_leaf = 4;
  return cfg;
}

TEST(FaultCluster, LinkDownTargetsASpecificLeafSpineLink) {
  ClusterConfig cfg = small_cluster();
  // Down leaf 1's uplink to spine 1 for the middle of the run: only
  // the inter-leaf flows ECMP-hashed onto that spine lose packets.
  cfg.faults = parse_script("net.link_down@250us+200us,leaf=1,spine=1").script;
  ASSERT_TRUE(validate(cfg).empty()) << describe(validate(cfg));

  ClusterExperiment exp(cfg);
  ASSERT_NE(exp.fault_engine(), nullptr);
  const ClusterMetrics m = exp.run();

  ASSERT_EQ(m.per_receiver.size(), 1u);
  EXPECT_EQ(m.per_receiver[0].fault_windows, 1);
  EXPECT_GT(exp.fabric().leaf_uplink(1, 1).drops(), 0);
  // The sibling spine path stays up and uncongested.
  EXPECT_EQ(exp.fabric().leaf_uplink(1, 0).drops(), 0);
  // Downed-link drops count as fabric drops, not host drops.
  EXPECT_GT(m.total_fabric_drops, 0);
  EXPECT_EQ(m.run_status, RunStatus::kOk);
}

TEST(FaultCluster, HostParamTargetsAnEdgeUplinkAndDefaultIsTheReceiverDownlink) {
  // host=5 downs sender machine 5's uplink: everything it transmits
  // during the window drops at its own port.
  ClusterConfig cfg = small_cluster();
  cfg.faults = parse_script("net.link_down@250us+100us,host=5").script;
  ASSERT_TRUE(validate(cfg).empty());
  ClusterExperiment up(cfg);
  const ClusterMetrics mu = up.run();
  EXPECT_GT(up.fabric().host_uplink(5).drops(), 0);
  EXPECT_EQ(up.fabric().host_downlink(0).drops(), 0);
  EXPECT_EQ(mu.run_status, RunStatus::kOk);

  // No target parameter: the receiver's downlink (the access-link
  // analog, matching the legacy fabric's default).
  cfg.faults = parse_script("net.link_down@250us+100us").script;
  ASSERT_TRUE(validate(cfg).empty());
  ClusterExperiment down(cfg);
  const ClusterMetrics md = down.run();
  EXPECT_GT(down.fabric().host_downlink(0).drops(), 0);
  EXPECT_EQ(md.run_status, RunStatus::kOk);
}

// --------------------------------------------------------- watchdog

TEST(FaultWatchdog, PathologicalStormAbortsGracefullyWithTrace) {
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;
  cfg.watchdog.max_events_per_timestamp = 5000;
  // per_us this high gives the storm ticker a zero period -- a
  // self-rescheduling-at-now loop. validate() rejects it for exactly
  // that reason; build the Experiment directly to prove the watchdog is
  // the backstop of last resort.
  cfg.faults = parse_script("iommu.storm@300us+100us,per_us=1e9").script;
  EXPECT_FALSE(validate(cfg).empty());

  Experiment exp(cfg);
  trace::RecordingSink sink;
  exp.tracer()->set_sink(&sink);
  const Metrics m = exp.run();
  exp.tracer()->finish();  // the aborted run still flushes its capture

  EXPECT_EQ(m.run_status, RunStatus::kStalled);
  EXPECT_NE(m.run_status_detail.find("no time progress"), std::string::npos);
  EXPECT_GT(m.events_executed, 0u);
  EXPECT_GT(m.simulated_seconds, 0.0);  // ran from warmup to the stall
  EXPECT_TRUE(sink.ended());
  EXPECT_FALSE(sink.of("sim.events_executed").empty());
}

TEST(FaultWatchdog, EventBudgetSurfacesInMetrics) {
  ExperimentConfig cfg = small_config();
  cfg.watchdog.max_events = 1000;
  Experiment exp(cfg);
  const Metrics m = exp.run();
  EXPECT_EQ(m.run_status, RunStatus::kEventBudget);
  EXPECT_NE(m.run_status_detail.find("event budget"), std::string::npos);
  EXPECT_EQ(m.events_executed, 1000u);
}

}  // namespace
}  // namespace hicc
