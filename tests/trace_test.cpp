// Trace layer: probe registration and sharing, sampling on scripted
// event sequences, exporter golden outputs, the documented probe
// catalog, and the no-perturbation guarantee (tracing enabled changes
// nothing but events_executed; disabled is bitwise identical).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "trace/exporters.h"
#include "trace/trace.h"

namespace hicc::trace {
namespace {

TEST(TraceKind, ToString) {
  EXPECT_STREQ(to_string(Kind::kCounter), "counter");
  EXPECT_STREQ(to_string(Kind::kGauge), "gauge");
  EXPECT_STREQ(to_string(Kind::kHistogram), "histogram");
}

TEST(Tracer, RegistersSimulatorProbesOnConstruction) {
  sim::Simulator sim;
  Tracer tracer(sim);
  ASSERT_TRUE(tracer.find("sim.events_executed").has_value());
  ASSERT_TRUE(tracer.find("sim.queue_depth").has_value());
  ASSERT_TRUE(tracer.find("sim.pending").has_value());
  ASSERT_TRUE(tracer.find("sim.events_per_poll").has_value());
  EXPECT_EQ(tracer.probes()[0].name, "sim.events_executed");
  EXPECT_EQ(tracer.probes()[0].kind, Kind::kCounter);
  EXPECT_EQ(tracer.probes()[1].name, "sim.queue_depth");
  EXPECT_EQ(tracer.probes()[1].kind, Kind::kGauge);
  EXPECT_EQ(tracer.probes()[2].name, "sim.pending");
  EXPECT_EQ(tracer.probes()[2].kind, Kind::kGauge);
  EXPECT_EQ(tracer.probes()[3].name, "sim.events_per_poll");
  EXPECT_EQ(tracer.probes()[3].kind, Kind::kGauge);
}

// sim.pending tracks live events exactly, sim.queue_depth includes
// cancellation tombstones until the queue scan reclaims them, and
// sim.events_per_poll reports the executed-count delta between
// consecutive sampling passes.
TEST(Tracer, EngineProbesTrackQueueAndEventRate) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const std::size_t pending_ix =
      static_cast<std::size_t>(tracer.find("sim.pending")->index);
  const std::size_t depth_ix =
      static_cast<std::size_t>(tracer.find("sim.queue_depth")->index);
  const std::size_t rate_ix =
      static_cast<std::size_t>(tracer.find("sim.events_per_poll")->index);

  std::vector<sim::EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(sim.at(TimePs(1000 + i), [] {}));
  sim.cancel(ids[0]);
  EXPECT_DOUBLE_EQ(tracer.value_at(pending_ix), 7.0);
  EXPECT_DOUBLE_EQ(tracer.value_at(depth_ix), 8.0);  // tombstone still queued

  EXPECT_DOUBLE_EQ(tracer.value_at(rate_ix), 0.0);  // nothing ran yet
  sim.run_until(TimePs(2000));
  EXPECT_DOUBLE_EQ(tracer.value_at(rate_ix), 7.0);  // 7 since last poll
  EXPECT_DOUBLE_EQ(tracer.value_at(rate_ix), 0.0);  // delta resets per poll
  EXPECT_DOUBLE_EQ(tracer.value_at(pending_ix), 0.0);
}

TEST(Tracer, RegistrationIsGetOrCreateByName) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const std::size_t base = tracer.probes().size();
  const ProbeId a = tracer.counter("nic.buffer_drops", "packets");
  const ProbeId b = tracer.counter("nic.buffer_drops", "packets");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.index, b.index);  // shared series, one catalog entry
  EXPECT_EQ(tracer.probes().size(), base + 1);
  tracer.add(a, 3);
  tracer.add(b, 2);
  EXPECT_DOUBLE_EQ(tracer.value_at(static_cast<std::size_t>(a.index)), 5.0);
}

TEST(Tracer, FindLooksUpByExactName) {
  sim::Simulator sim;
  Tracer tracer(sim);
  tracer.gauge("mem.utilization", "fraction");
  EXPECT_TRUE(tracer.find("mem.utilization").has_value());
  EXPECT_FALSE(tracer.find("mem.util").has_value());
  EXPECT_FALSE(tracer.find("").has_value());
}

TEST(Tracer, PolledProbeReadsComponentStateAtValueAt) {
  sim::Simulator sim;
  Tracer tracer(sim);
  double level = 7.0;
  const ProbeId id = tracer.gauge("test.level", "units", [&level] { return level; });
  EXPECT_DOUBLE_EQ(tracer.value_at(static_cast<std::size_t>(id.index)), 7.0);
  level = 11.0;
  EXPECT_DOUBLE_EQ(tracer.value_at(static_cast<std::size_t>(id.index)), 11.0);
}

TEST(Tracer, HistogramRegistersDerivedSeriesOnce) {
  sim::Simulator sim;
  Tracer tracer(sim);
  const std::size_t base = tracer.probes().size();
  const ProbeId a = tracer.histogram("transport.rtt_us", "us");
  const ProbeId b = tracer.histogram("transport.rtt_us", "us");
  EXPECT_EQ(a.index, b.index);
  // Parent + .p50 + .p99 + .count, registered exactly once.
  ASSERT_EQ(tracer.probes().size(), base + 4);
  EXPECT_EQ(tracer.probes()[base].kind, Kind::kHistogram);
  EXPECT_EQ(tracer.probes()[base + 1].name, "transport.rtt_us.p50");
  EXPECT_EQ(tracer.probes()[base + 1].kind, Kind::kGauge);
  EXPECT_EQ(tracer.probes()[base + 1].unit, "us");
  EXPECT_EQ(tracer.probes()[base + 2].name, "transport.rtt_us.p99");
  EXPECT_EQ(tracer.probes()[base + 3].name, "transport.rtt_us.count");
  EXPECT_EQ(tracer.probes()[base + 3].kind, Kind::kCounter);
  EXPECT_EQ(tracer.probes()[base + 3].unit, "observations");
}

// ------------------------------------------------------------ sampling

TEST(Sampler, EmitsEveryProbeOnEventBoundaries) {
  sim::Simulator sim;
  Tracer tracer(sim, TraceParams{.enabled = true, .sample_period = TimePs::from_us(1)});
  const ProbeId level = tracer.gauge("test.level", "units");
  const ProbeId count = tracer.counter("test.count", "events");

  RecordingSink sink;
  tracer.set_sink(&sink);
  EXPECT_EQ(sink.catalog().size(), tracer.probes().size());

  sim.at(TimePs::from_ns(400), [&] {
    tracer.set(level, 10);
    tracer.add(count, 2);
  });
  sim.at(TimePs::from_ns(1500), [&] {
    tracer.set(level, 25);
    tracer.add(count, 3);
  });

  tracer.start();  // baseline sample at t = 0
  sim.run_until(TimePs::from_us(3));
  tracer.finish();  // final pass at t = 3us (tick already sampled it)

  const auto levels = sink.of("test.level");
  // Baseline at 0, ticks at 1/2/3us, finish() pass at 3us.
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_EQ(levels[0].time, TimePs(0));
  EXPECT_DOUBLE_EQ(levels[0].value, 0.0);
  EXPECT_EQ(levels[1].time, TimePs::from_us(1));
  EXPECT_DOUBLE_EQ(levels[1].value, 10.0);
  EXPECT_EQ(levels[2].time, TimePs::from_us(2));
  EXPECT_DOUBLE_EQ(levels[2].value, 25.0);
  EXPECT_EQ(levels[3].time, TimePs::from_us(3));
  EXPECT_DOUBLE_EQ(levels[3].value, 25.0);

  const auto counts = sink.of("test.count");
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_DOUBLE_EQ(counts[0].value, 0.0);
  EXPECT_DOUBLE_EQ(counts[1].value, 2.0);
  EXPECT_DOUBLE_EQ(counts[2].value, 5.0);
  EXPECT_DOUBLE_EQ(counts[3].value, 5.0);

  // The simulator's own probes ride along and stay monotone.
  const auto events = sink.of("sim.events_executed");
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].value, events[i - 1].value);
  }
  EXPECT_TRUE(sink.ended());
}

TEST(Sampler, HistogramDerivedSeriesTrackObservations) {
  sim::Simulator sim;
  Tracer tracer(sim, TraceParams{.enabled = true, .sample_period = TimePs::from_us(1)});
  const ProbeId rtt = tracer.histogram("transport.rtt_us", "us");

  RecordingSink sink;
  tracer.set_sink(&sink);
  for (int i = 0; i < 50; ++i) tracer.observe(rtt, 100.0);
  for (int i = 0; i < 50; ++i) tracer.observe(rtt, 1000.0);
  tracer.sample_now();
  tracer.finish();

  // The parent never reaches the sink; only derived series do.
  EXPECT_TRUE(sink.of("transport.rtt_us").empty());
  const auto counts = sink.of("transport.rtt_us.count");
  ASSERT_FALSE(counts.empty());
  EXPECT_DOUBLE_EQ(counts.front().value, 100.0);
  const auto p50 = sink.of("transport.rtt_us.p50");
  ASSERT_FALSE(p50.empty());
  EXPECT_GT(p50.front().value, 50.0);   // log-bucketed: loose bounds
  EXPECT_LT(p50.front().value, 200.0);
  const auto p99 = sink.of("transport.rtt_us.p99");
  ASSERT_FALSE(p99.empty());
  EXPECT_GT(p99.front().value, 500.0);
  EXPECT_LT(p99.front().value, 2000.0);
}

TEST(Sampler, DroppedWithoutSinkButDerivedValuesStayFresh) {
  sim::Simulator sim;
  Tracer tracer(sim, TraceParams{.enabled = true, .sample_period = TimePs::from_us(1)});
  const ProbeId rtt = tracer.histogram("transport.rtt_us", "us");
  tracer.observe(rtt, 100.0);
  tracer.sample_now();  // no sink attached: nothing to emit, no crash
  const auto count_id = tracer.find("transport.rtt_us.count");
  ASSERT_TRUE(count_id.has_value());
  EXPECT_DOUBLE_EQ(tracer.value_at(static_cast<std::size_t>(count_id->index)), 1.0);
}

// ----------------------------------------------------------- exporters

TEST(CsvExporter, GoldenOutput) {
  const std::vector<ProbeInfo> catalog = {
      ProbeInfo{"nic.buffer_bytes", Kind::kGauge, "bytes"},
      ProbeInfo{"nic.buffer_drops", Kind::kCounter, "packets"},
  };
  std::ostringstream os;
  CsvTraceWriter w(os);
  w.begin(catalog);
  w.sample(catalog[0], TimePs::from_us(5), 1536.0);
  w.sample(catalog[1], TimePs::from_us(5), 2.0);
  w.sample(catalog[0], TimePs::from_us(10), 0.5);
  w.end();
  EXPECT_EQ(os.str(),
            "# hicc.trace.v1\n"
            "# probe,nic.buffer_bytes,gauge,bytes\n"
            "# probe,nic.buffer_drops,counter,packets\n"
            "time_us,probe,value\n"
            "5,nic.buffer_bytes,1536\n"
            "5,nic.buffer_drops,2\n"
            "10,nic.buffer_bytes,0.5\n");
}

TEST(ChromeExporter, GoldenOutput) {
  const std::vector<ProbeInfo> catalog = {
      ProbeInfo{"nic.buffer_bytes", Kind::kGauge, "bytes"},
      ProbeInfo{"nic.buffer_drops", Kind::kCounter, "packets"},
  };
  std::ostringstream os;
  ChromeTraceWriter w(os);
  w.begin(catalog);
  w.sample(catalog[0], TimePs::from_us(5), 1536.0);
  w.sample(catalog[1], TimePs::from_us(5), 2.0);
  w.end();
  EXPECT_EQ(os.str(),
            "{\"otherData\": {\"schema\": \"hicc.trace.v1\"},\n"
            "\"displayTimeUnit\": \"ms\",\n"
            "\"traceEvents\": [\n"
            " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
            "\"args\": {\"name\": \"hicc\"}},\n"
            " {\"name\": \"nic.buffer_bytes\", \"cat\": \"nic\", \"ph\": \"C\", \"ts\": 5, "
            "\"pid\": 1, \"tid\": 1, \"args\": {\"bytes\": 1536}},\n"
            " {\"name\": \"nic.buffer_drops\", \"cat\": \"nic\", \"ph\": \"C\", \"ts\": 5, "
            "\"pid\": 1, \"tid\": 1, \"args\": {\"packets\": 2}}\n"
            "]}\n");
}

TEST(FileTraceSink, PicksFormatByExtension) {
  sim::Simulator sim;
  Tracer tracer(sim, TraceParams{.enabled = true});

  const std::string csv_path = testing::TempDir() + "hicc_trace_test.csv";
  FileTraceSink csv;
  ASSERT_TRUE(csv.open(tracer, csv_path));
  tracer.sample_now();
  ASSERT_TRUE(csv.close(tracer));
  std::ifstream csv_in(csv_path);
  std::string first_line;
  ASSERT_TRUE(std::getline(csv_in, first_line));
  EXPECT_EQ(first_line, "# hicc.trace.v1");

  const std::string json_path = testing::TempDir() + "hicc_trace_test.json";
  FileTraceSink json;
  ASSERT_TRUE(json.open(tracer, json_path));
  tracer.sample_now();
  ASSERT_TRUE(json.close(tracer));
  std::ifstream json_in(json_path);
  ASSERT_TRUE(std::getline(json_in, first_line));
  EXPECT_EQ(first_line, "{\"otherData\": {\"schema\": \"hicc.trace.v1\"},");
}

// ------------------------------------------------- experiment coverage

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.rx_threads = 2;
  cfg.num_senders = 4;
  cfg.warmup = TimePs::from_us(200);
  cfg.measure = TimePs::from_us(500);
  return cfg;
}

// Every probe documented in docs/OBSERVABILITY.md, by name. Keep the
// three lists (this test, the docs catalog, the component
// registrations) in lockstep.
const char* const kDocumentedProbes[] = {
    "sim.events_executed",
    "sim.queue_depth",
    "sim.pending",
    "sim.events_per_poll",
    "nic.buffer_bytes",
    "nic.buffer_drops",
    "nic.delivered",
    "nic.hol_descriptor_stalls",
    "pcie.credits_in_use",
    "pcie.rc_queue_depth",
    "pcie.write_buffer_bytes",
    "pcie.translation_stalls",
    "pcie.write_buffer_stalls",
    "iommu.iotlb_hits",
    "iommu.iotlb_misses",
    "iommu.invalidations",
    "iommu.pending_walks",
    "mem.bandwidth_gbps",
    "mem.utilization",
    "mem.latency_ns",
    "host.rx_queue_pkts",
    "transport.cwnd_avg",
    "transport.rtt_us",
    "transport.rtt_us.p50",
    "transport.rtt_us.p99",
    "transport.rtt_us.count",
    "transport.host_delay_us",
    "transport.host_delay_us.p50",
    "transport.host_delay_us.p99",
    "transport.host_delay_us.count",
    "transport.fabric_rtt_us",
    "transport.fabric_rtt_us.p50",
    "transport.fabric_rtt_us.p99",
    "transport.fabric_rtt_us.count",
};

TEST(TracedExperiment, CatalogCoversEveryDocumentedProbe) {
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;
  Experiment exp(cfg);
  ASSERT_NE(exp.tracer(), nullptr);
  for (const char* name : kDocumentedProbes) {
    EXPECT_TRUE(exp.tracer()->find(name).has_value()) << "missing probe: " << name;
  }
  // And nothing undocumented snuck in.
  EXPECT_EQ(exp.tracer()->probes().size(), std::size(kDocumentedProbes));
}

TEST(TracedExperiment, DisabledTracingConstructsNoTracer) {
  Experiment exp(small_config());
  EXPECT_EQ(exp.tracer(), nullptr);
}

TEST(TracedExperiment, CaptureRecordsTheDatapathSignals) {
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;
  Experiment exp(cfg);
  RecordingSink sink;
  exp.tracer()->set_sink(&sink);
  const Metrics m = exp.run();
  exp.tracer()->finish();

  EXPECT_GT(m.app_throughput_gbps, 0.0);
  EXPECT_TRUE(sink.ended());
  // One series per emitted probe (histogram parents excluded), each
  // with >= warmup+measure ticks at the 5us default period.
  const auto delivered = sink.of("nic.delivered");
  ASSERT_GE(delivered.size(), 100u);
  EXPECT_GT(delivered.back().value, 0.0);
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_GE(delivered[i].value, delivered[i - 1].value);  // counters are monotone
  }
  EXPECT_GT(sink.of("transport.rtt_us.count").back().value, 0.0);
  EXPECT_GT(sink.of("transport.rtt_us.p50").back().value, 0.0);
  EXPECT_GT(sink.of("mem.bandwidth_gbps").back().value, 0.0);
  EXPECT_GT(sink.of("transport.cwnd_avg").back().value, 0.0);
  EXPECT_GT(sink.of("iommu.iotlb_hits").back().value, 0.0);
}

// --------------------------------------------------- no perturbation

void expect_same_except_events(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.iotlb_misses_per_packet, b.iotlb_misses_per_packet);
  EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec);
  EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us);
  EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us);
  EXPECT_EQ(a.host_delay_max_us, b.host_delay_max_us);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.rto_fires, b.rto_fires);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.iotlb_misses, b.iotlb_misses);
  EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups);
  EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls);
  EXPECT_EQ(a.pcie_write_buffer_stalls, b.pcie_write_buffer_stalls);
  EXPECT_EQ(a.hol_descriptor_stalls, b.hol_descriptor_stalls);
  EXPECT_EQ(a.avg_cwnd, b.avg_cwnd);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
}

TEST(TracedExperiment, TracingPerturbsNothingButEventCount) {
  Experiment untraced(small_config());
  const Metrics base = untraced.run();

  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = true;
  Experiment traced(cfg);
  const Metrics m = traced.run();

  expect_same_except_events(base, m);
  // The sampler's ticks are the only addition to the event stream.
  EXPECT_GT(m.events_executed, base.events_executed);
}

TEST(TracedExperiment, DisabledTracingIsBitwiseIdentical) {
  Experiment a(small_config());
  ExperimentConfig cfg = small_config();
  cfg.trace.enabled = false;  // explicit, same as default
  Experiment b(cfg);
  const Metrics ma = a.run();
  const Metrics mb = b.run();
  expect_same_except_events(ma, mb);
  EXPECT_EQ(ma.events_executed, mb.events_executed);
}

// -------------------------------------------------------- sweep probe

TEST(SweepHarvest, TraceExtrasLandInResults) {
  std::vector<ExperimentConfig> points(2, small_config());
  points[0].trace.enabled = true;
  points[1].trace.enabled = false;  // harvest must no-op here
  points[0].seed = 7;
  points[1].seed = 8;

  sweep::SweepOptions opts;
  opts.jobs = 1;
  opts.probe = sweep::harvest_trace;
  const auto results = sweep::SweepRunner(opts).run(points);

  ASSERT_EQ(results.size(), 2u);
  const auto& extra = results[0].extra;
  ASSERT_TRUE(extra.count("trace.nic.delivered"));
  EXPECT_GT(extra.at("trace.nic.delivered"), 0.0);
  ASSERT_TRUE(extra.count("trace.transport.rtt_us.p50"));
  EXPECT_GT(extra.at("trace.transport.rtt_us.p50"), 0.0);
  ASSERT_TRUE(extra.count("trace.sim.events_executed"));
  EXPECT_TRUE(results[1].extra.empty());

  // The extras survive the structured JSON record.
  std::ostringstream os;
  sweep::write_json(results, os);
  EXPECT_NE(os.str().find("\"trace.nic.delivered\""), std::string::npos);
}

}  // namespace
}  // namespace hicc::trace
