// Tests for the host module: rx-thread service model and the
// ReceiverHost assembly (ack/read-request generation, descriptor
// replenishment, host-delay measurement, copy-traffic accounting,
// host-signal emission).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "host/receiver_host.h"
#include "host/rx_thread.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"

namespace hicc::host {
namespace {

using namespace hicc::literals;

net::Packet data_packet(std::int32_t flow, std::int64_t seq) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.flow = flow;
  p.sender = flow % 4;
  p.seq = seq;
  p.payload = Bytes(4096);
  p.wire = Bytes(4452);
  p.sent_at = TimePs(0);
  return p;
}

// ----------------------------------------------------------- RxThread

TEST(RxThread, ProcessesAtConfiguredRate) {
  sim::Simulator sim;
  RxThreadParams params;
  params.per_packet_cost = 1_us;
  params.cost_jitter = 0.0;
  int processed = 0;
  RxThread thread(sim, 0, params, Rng(1), [&](const net::Packet&, TimePs) { ++processed; });
  for (int i = 0; i < 10; ++i) thread.enqueue(data_packet(0, i), sim.now());
  sim.run_until(5_us + 500_ns);
  EXPECT_EQ(processed, 5);  // 1us each, half done at t=5.5us
  sim.run_until(20_us);
  EXPECT_EQ(processed, 10);
  EXPECT_EQ(thread.queue_depth(), 0u);
}

TEST(RxThread, ServesInFifoOrder) {
  sim::Simulator sim;
  RxThreadParams params;
  params.cost_jitter = 0.0;
  std::vector<std::int64_t> order;
  RxThread thread(sim, 0, params, Rng(1),
                  [&](const net::Packet& p, TimePs) { order.push_back(p.seq); });
  for (int i = 0; i < 5; ++i) thread.enqueue(data_packet(0, i), sim.now());
  sim.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(RxThread, JitterVariesServiceTimes) {
  sim::Simulator sim;
  RxThreadParams params;
  params.per_packet_cost = 1_us;
  params.cost_jitter = 0.2;
  std::vector<TimePs> completions;
  RxThread thread(sim, 0, params, Rng(7),
                  [&](const net::Packet&, TimePs) { completions.push_back(sim.now()); });
  for (int i = 0; i < 50; ++i) thread.enqueue(data_packet(0, i), sim.now());
  sim.run_until(1_ms);
  ASSERT_EQ(completions.size(), 50u);
  bool varied = false;
  for (std::size_t i = 2; i < completions.size(); ++i) {
    if ((completions[i] - completions[i - 1]) != (completions[1] - completions[0])) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

// ------------------------------------------------------- ReceiverHost

struct Harness {
  sim::Simulator sim;
  mem::MemorySystem mem{sim, mem::DramParams{}, Rng(1)};
  net::WireFormat wire;
  ReceiverParams params;
  std::unique_ptr<ReceiverHost> host;
  std::vector<net::Packet> transmitted;

  explicit Harness(int threads = 2, int senders = 4, bool signals = false) {
    params.threads = threads;
    params.send_host_signals = signals;
    if (signals) params.nic.signal_threshold = 0.05;
    host = std::make_unique<ReceiverHost>(sim, mem, params, senders, wire, Rng(3));
    host->set_transmit([this](net::Packet p) {
      transmitted.push_back(std::move(p));
      return true;
    });
  }
};

TEST(ReceiverHost, StartIssuesOneReadPerFlow) {
  Harness h(/*threads=*/2, /*senders=*/4);
  h.host->start();
  h.sim.run_until(1_ms);
  int reads = 0;
  for (const auto& p : h.transmitted) reads += (p.kind == net::PacketKind::kReadRequest);
  EXPECT_EQ(reads, 8);  // 2 threads x 4 senders
  EXPECT_EQ(h.host->num_flows(), 8);
}

TEST(ReceiverHost, FlowThreadMappingIsConsistent) {
  Harness h(3, 5);
  for (std::int32_t f = 0; f < h.host->num_flows(); ++f) {
    EXPECT_EQ(h.host->thread_of_flow(f) * 5 + h.host->sender_of_flow(f), f);
    EXPECT_LT(h.host->thread_of_flow(f), 3);
    EXPECT_LT(h.host->sender_of_flow(f), 5);
  }
}

TEST(ReceiverHost, DataPacketGeneratesAckWithHostDelay) {
  Harness h;
  h.host->start();
  h.sim.run_until(1_ms);
  h.transmitted.clear();
  h.host->on_arrival(data_packet(/*flow=*/0, /*seq=*/0));
  h.sim.run_until(2_ms);
  ASSERT_FALSE(h.transmitted.empty());
  const auto& ack = h.transmitted.front();
  EXPECT_EQ(ack.kind, net::PacketKind::kAck);
  EXPECT_EQ(ack.seq, 0);
  EXPECT_GT(ack.echoed_host_delay, TimePs(0));
  EXPECT_LT(ack.echoed_host_delay, 100_us);
}

TEST(ReceiverHost, CompletedReadIssuesNextRequest) {
  Harness h(1, 1);  // a single flow: 16KB read = 4 packets
  h.host->start();
  h.sim.run_until(1_ms);
  h.transmitted.clear();
  for (int seq = 0; seq < 4; ++seq) h.host->on_arrival(data_packet(0, seq));
  h.sim.run_until(2_ms);
  int reads = 0;
  for (const auto& p : h.transmitted) reads += (p.kind == net::PacketKind::kReadRequest);
  EXPECT_EQ(reads, 1);  // exactly one follow-up read for 4 packets
}

TEST(ReceiverHost, WindowCountsProcessedPackets) {
  Harness h;
  h.host->start();
  h.sim.run_until(1_ms);
  h.host->begin_window();
  for (int seq = 0; seq < 6; ++seq) h.host->on_arrival(data_packet(1, seq));
  h.sim.run_until(2_ms);
  EXPECT_EQ(h.host->window().processed_packets, 6);
  EXPECT_EQ(h.host->window().processed_bytes, 6 * 4096);
  EXPECT_EQ(h.host->window().host_delay_us.count(), 6);
}

TEST(ReceiverHost, DescriptorsReplenishedAfterProcessing) {
  Harness h;
  h.host->start();
  const int posted_before = h.host->nic().posted_descriptors(0);
  h.host->on_arrival(data_packet(0, 0));
  h.sim.run_until(2_ms);
  // One descriptor consumed, one re-posted: net change bounded by the
  // prefetch window.
  const int posted_after = h.host->nic().posted_descriptors(0);
  EXPECT_GE(posted_after, posted_before - h.params.nic.descriptor_prefetch);
}

TEST(ReceiverHost, HostSignalsFanOutToAllSenders) {
  Harness h(/*threads=*/1, /*senders=*/3, /*signals=*/true);
  h.host->start();
  h.sim.run_until(1_ms);
  h.transmitted.clear();
  // Flood arrivals so buffer occupancy crosses the (tiny) threshold.
  for (int i = 0; i < 50; ++i) h.host->on_arrival(data_packet(0, i));
  h.sim.run_until(2_ms);
  int signals = 0;
  for (const auto& p : h.transmitted) signals += (p.kind == net::PacketKind::kHostSignal);
  EXPECT_GT(signals, 0);
  EXPECT_EQ(signals % 3, 0);  // one per sender per emission
}

TEST(ReceiverHost, NoHostSignalsWhenDisabled) {
  Harness h(1, 3, /*signals=*/false);
  h.host->start();
  h.sim.run_until(1_ms);
  h.transmitted.clear();
  for (int i = 0; i < 50; ++i) h.host->on_arrival(data_packet(0, i));
  h.sim.run_until(2_ms);
  for (const auto& p : h.transmitted) {
    EXPECT_NE(p.kind, net::PacketKind::kHostSignal);
  }
}

TEST(ReceiverHost, CopyDemandTracksProcessingRate) {
  Harness h;
  h.host->start();
  h.sim.run_until(1_ms);
  h.host->begin_window();
  h.mem.begin_window();
  // Steady arrivals for a while.
  sim::PeriodicTask source(h.sim, 1_us, [&, seq = std::int64_t{0}]() mutable {
    h.host->on_arrival(data_packet(0, seq++));
  });
  h.sim.run_until(5_ms);
  const auto report = h.mem.window_report();
  const double copy =
      report.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kCpuCopy)];
  // Flow 0 lands on thread 0, which saturates at one packet per 2.6us:
  // 4096B/2.6us = 1.58GB/s payload x 0.29 miss fraction = ~0.46.
  EXPECT_NEAR(copy, 0.46, 0.12);
}

}  // namespace
}  // namespace hicc::host
