// Tests for the IOMMU: LRU cache behaviour, page-table geometry,
// translation fast/slow paths, page-walk cost accounting, walker-pool
// limits, invalidation, and the working-set -> miss-rate property that
// drives Figures 3-5.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "iommu/iommu.h"
#include "iommu/lru_cache.h"
#include "iommu/page_table.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"

namespace hicc::iommu {
namespace {

using namespace hicc::literals;

// ------------------------------------------------------------ LruCache

TEST(LruCache, HitAfterInsert) {
  LruCache<int> c(1, 4);
  c.insert(7);
  EXPECT_TRUE(c.lookup(7));
  EXPECT_FALSE(c.lookup(8));
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> c(1, 2);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.lookup(1));  // 2 becomes LRU
  EXPECT_TRUE(c.insert(3));  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(LruCache, InsertExistingRefreshes) {
  LruCache<int> c(1, 2);
  c.insert(1);
  c.insert(2);
  EXPECT_FALSE(c.insert(1));  // refresh, no eviction
  c.insert(3);                // evicts 2 (LRU), not 1
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, InvalidateRemoves) {
  LruCache<int> c(1, 4);
  c.insert(5);
  EXPECT_TRUE(c.invalidate(5));
  EXPECT_FALSE(c.invalidate(5));
  EXPECT_FALSE(c.contains(5));
}

TEST(LruCache, ClearEmptiesAll) {
  LruCache<int> c(2, 2);
  for (int i = 0; i < 4; ++i) c.insert(i);
  EXPECT_GT(c.size(), 0);
  c.clear();
  EXPECT_EQ(c.size(), 0);
}

TEST(LruCache, CapacityRespected) {
  LruCache<std::uint64_t> c(1, 128);
  for (std::uint64_t i = 0; i < 1000; ++i) c.insert(i);
  EXPECT_EQ(c.size(), 128);
  EXPECT_EQ(c.capacity(), 128);
}

TEST(LruCache, FullyAssociativeLruExactness) {
  // With capacity K and a cyclic access pattern over K+1 keys, LRU
  // misses every access (the classic LRU pathological case).
  LruCache<int> c(1, 4);
  int misses = 0;
  for (int i = 0; i < 50; ++i) {
    const int key = i % 5;
    if (!c.lookup(key)) {
      ++misses;
      c.insert(key);
    }
  }
  EXPECT_EQ(misses, 50);
}

// --------------------------------------------------------- page table

TEST(PageTable, GeometryConstants) {
  EXPECT_EQ(page_bytes(PageSize::k4K).count(), 4096);
  EXPECT_EQ(page_bytes(PageSize::k2M).count(), 2 * 1024 * 1024);
  EXPECT_EQ(walk_levels(PageSize::k4K), 4);
  EXPECT_EQ(walk_levels(PageSize::k2M), 3);
  EXPECT_EQ(level_shift(1), 12);
  EXPECT_EQ(level_shift(2), 21);
  EXPECT_EQ(level_shift(4), 39);
}

TEST(PageTable, RegionPageCountRoundsUp) {
  IoPageTable t;
  const auto id = t.map_region(Bytes::mib(12), PageSize::k2M);
  EXPECT_EQ(t.region(id).num_pages(), 6);
  const auto id2 = t.map_region(Bytes(4097), PageSize::k4K);
  EXPECT_EQ(t.region(id2).num_pages(), 2);
}

TEST(PageTable, RegionsDoNotOverlapAndAreAligned) {
  IoPageTable t;
  const auto a = t.map_region(Bytes::mib(12), PageSize::k2M);
  const auto b = t.map_region(Bytes::mib(12), PageSize::k2M);
  const auto& ra = t.region(a);
  const auto& rb = t.region(b);
  EXPECT_GE(rb.base, ra.base + static_cast<Iova>(ra.size.count()));
  EXPECT_EQ(ra.base % (2ull << 20), 0u);
  EXPECT_EQ(rb.base % (2ull << 20), 0u);
}

TEST(PageTable, FindLocatesContainingRegion) {
  IoPageTable t;
  const auto a = t.map_region(Bytes::mib(4), PageSize::k2M);
  const auto& ra = t.region(a);
  EXPECT_TRUE(t.find(ra.base).has_value());
  EXPECT_TRUE(t.find(ra.base + 12345).has_value());
  EXPECT_FALSE(t.find(ra.base + static_cast<Iova>(ra.size.count())).has_value());
  EXPECT_FALSE(t.find(0).has_value());
}

TEST(PageTable, TotalMappedPagesTracksMapUnmap) {
  IoPageTable t;
  const auto a = t.map_region(Bytes::mib(12), PageSize::k2M);  // 6 pages
  t.map_region(Bytes::mib(12), PageSize::k4K);                 // 3072 pages
  EXPECT_EQ(t.total_mapped_pages(), 6 + 3072);
  t.unmap_region(a);
  EXPECT_EQ(t.total_mapped_pages(), 3072);
}

TEST(PageTable, PageIovaAndPageBase) {
  IoPageTable t;
  const auto id = t.map_region(Bytes::mib(4), PageSize::k2M);
  const auto& r = t.region(id);
  EXPECT_EQ(r.page_iova(1), r.base + (2ull << 20));
  EXPECT_EQ(IoPageTable::page_base(r, r.base + (2ull << 20) + 77), r.base + (2ull << 20));
}

// --------------------------------------------------------------- IOMMU

struct Harness {
  sim::Simulator sim;
  mem::MemorySystem mem{sim, mem::DramParams{}, Rng(1)};
  IommuParams params{};
  Iommu iommu{sim, mem, params};
  explicit Harness(IommuParams p = IommuParams{}) : params(p), iommu(sim, mem, p) {}
};

TEST(Iommu, DisabledTranslatesInstantly) {
  IommuParams p;
  p.enabled = false;
  Harness h(p);
  const auto lat = h.iommu.try_translate(0xdeadbeef);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, TimePs(0));
  EXPECT_EQ(h.iommu.stats().lookups, 0);
}

TEST(Iommu, FirstAccessMissesThenHits) {
  Harness h;
  const auto rid = h.iommu.map_region(Bytes::mib(4), PageSize::k2M);
  const Iova addr = h.iommu.region(rid).base;

  EXPECT_FALSE(h.iommu.try_translate(addr).has_value());  // cold miss
  bool done = false;
  h.iommu.translate_slow(addr, [&] { done = true; });
  h.sim.run_until(100_us);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.iommu.stats().walks_completed, 1);

  const auto lat = h.iommu.try_translate(addr);  // now cached
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(*lat, h.params.hit_latency);
  EXPECT_EQ(h.iommu.stats().hits, 1);
  EXPECT_EQ(h.iommu.stats().misses, 1);
}

TEST(Iommu, WalkTakesHundredsOfNanoseconds) {
  IommuParams p;
  p.pt_cache_hit_fraction = 0.0;  // force every PTE read to DRAM
  Harness h(p);
  const auto rid = h.iommu.map_region(Bytes::mib(4), PageSize::k2M);
  const Iova addr = h.iommu.region(rid).base;
  ASSERT_FALSE(h.iommu.try_translate(addr).has_value());
  TimePs completed{};
  h.iommu.translate_slow(addr, [&] { completed = h.sim.now(); });
  h.sim.run_until(100_us);
  // Cold walk for a 2M leaf: 3 dependent reads at ~90ns idle latency.
  EXPECT_GT(completed.ns(), 200.0);
  EXPECT_LT(completed.ns(), 1000.0);
  EXPECT_EQ(h.iommu.stats().walk_memory_reads, 3);
}

TEST(Iommu, PwcReducesWalkCostForNeighboringPages) {
  Harness h;
  const auto rid = h.iommu.map_region(Bytes::mib(12), PageSize::k2M);
  const auto& r = h.iommu.region(rid);
  // Walk page 0: reads L4+L3+L2 (3 reads). Walk page 1: L4/L3 now in
  // the PWC, so only the leaf L2 read remains.
  h.iommu.translate_slow(r.page_iova(0), nullptr);
  h.sim.run_until(10_us);
  const auto reads_before = h.iommu.stats().walk_memory_reads;
  EXPECT_EQ(reads_before, 3);
  ASSERT_FALSE(h.iommu.try_translate(r.page_iova(1)).has_value());
  h.iommu.translate_slow(r.page_iova(1), nullptr);
  h.sim.run_until(20_us);
  EXPECT_EQ(h.iommu.stats().walk_memory_reads - reads_before, 1);
}

TEST(Iommu, FourKWalkReadsMoreLevels) {
  Harness h;
  const auto rid = h.iommu.map_region(Bytes::mib(4), PageSize::k4K);
  const Iova addr = h.iommu.region(rid).base;
  ASSERT_FALSE(h.iommu.try_translate(addr).has_value());
  h.iommu.translate_slow(addr, nullptr);
  h.sim.run_until(10_us);
  EXPECT_EQ(h.iommu.stats().walk_memory_reads, 4);  // L4,L3,L2,L1
}

TEST(Iommu, WalkerPoolLimitsConcurrency) {
  IommuParams p;
  p.walkers = 1;
  p.pt_cache_hit_fraction = 0.0;
  Harness h(p);
  const auto rid = h.iommu.map_region(Bytes::mib(12), PageSize::k2M);
  const auto& r = h.iommu.region(rid);
  std::vector<TimePs> done_times;
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(h.iommu.try_translate(r.page_iova(i)).has_value());
    h.iommu.translate_slow(r.page_iova(i), [&] { done_times.push_back(h.sim.now()); });
  }
  h.sim.run_until(100_us);
  ASSERT_EQ(done_times.size(), 3u);
  // Serialized: each completion strictly after the previous one by at
  // least one memory access (~80ns).
  EXPECT_GT((done_times[1] - done_times[0]).ns(), 60.0);
  EXPECT_GT((done_times[2] - done_times[1]).ns(), 60.0);
}

TEST(Iommu, UnmapInvalidatesEntries) {
  Harness h;
  const auto rid = h.iommu.map_region(Bytes::mib(4), PageSize::k2M);
  const Iova addr = h.iommu.region(rid).base;
  h.iommu.translate_slow(addr, nullptr);
  h.sim.run_until(10_us);
  ASSERT_TRUE(h.iommu.try_translate(addr).has_value());
  h.iommu.unmap_region(rid);
  EXPECT_EQ(h.iommu.stats().invalidations, 1);
  // The address is no longer mapped: counted as a fault.
  (void)h.iommu.try_translate(addr);
  EXPECT_EQ(h.iommu.stats().faults, 1);
}

TEST(Iommu, FaultOnUnmappedAddress) {
  Harness h;
  const auto lat = h.iommu.try_translate(0x12345);
  ASSERT_TRUE(lat.has_value());
  EXPECT_EQ(h.iommu.stats().faults, 1);
}

TEST(Iommu, InvalidatePageRemovesCachedTranslation) {
  Harness h;
  const auto rid = h.iommu.map_region(Bytes::mib(4), PageSize::k2M);
  const Iova addr = h.iommu.region(rid).base;
  h.iommu.translate_slow(addr, nullptr);
  h.sim.run_until(10_us);
  ASSERT_TRUE(h.iommu.try_translate(addr).has_value());
  EXPECT_TRUE(h.iommu.invalidate_page(addr));
  EXPECT_FALSE(h.iommu.invalidate_page(addr));  // already gone
  EXPECT_FALSE(h.iommu.try_translate(addr).has_value());  // misses again
}

TEST(Iommu, AsyncInvalidationDelaysQueuedWalks) {
  IommuParams p;
  p.walkers = 1;
  p.pt_cache_hit_fraction = 0.0;
  Harness h(p);
  const auto rid = h.iommu.map_region(Bytes::mib(12), PageSize::k2M);
  const auto& r = h.iommu.region(rid);

  // Queue several invalidation commands, then a walk behind them.
  for (int i = 0; i < 4; ++i) h.iommu.invalidate_page_async(r.page_iova(0));
  TimePs walk_done{};
  ASSERT_FALSE(h.iommu.try_translate(r.page_iova(1)).has_value());
  h.iommu.translate_slow(r.page_iova(1), [&] { walk_done = h.sim.now(); });
  h.sim.run_until(100_us);
  // 4 x 250ns invalidation service before the walk even starts.
  EXPECT_GT(walk_done.ns(), 4 * 250.0);
}

// Property: with a working set of W pages accessed uniformly at random,
// the miss rate is ~0 for W <= IOTLB capacity and grows once W exceeds
// it -- the mechanism behind the knee at 8 threads in Figure 3.
TEST(Iommu, MissRateKneeAtIotlbCapacity) {
  auto miss_rate_for = [](int working_set_pages) {
    Harness h;
    const auto rid = h.iommu.map_region(
        Bytes(static_cast<std::int64_t>(working_set_pages) * 2 * 1024 * 1024), PageSize::k2M);
    const auto& r = h.iommu.region(rid);
    Rng rng(42);
    // Warm up.
    auto access = [&](int n) {
      std::int64_t misses0 = h.iommu.stats().misses;
      for (int i = 0; i < n; ++i) {
        const Iova a = r.page_iova(static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(working_set_pages))));
        if (!h.iommu.try_translate(a).has_value()) {
          bool ok = false;
          h.iommu.translate_slow(a, [&] { ok = true; });
          h.sim.run_until(h.sim.now() + 10_us);
          EXPECT_TRUE(ok);
        }
      }
      return static_cast<double>(h.iommu.stats().misses - misses0) / n;
    };
    (void)access(3000);        // warmup
    return access(3000);       // measure
  };

  EXPECT_LT(miss_rate_for(64), 0.01);    // fits in 128 entries
  EXPECT_LT(miss_rate_for(120), 0.01);   // still fits
  const double over = miss_rate_for(256);
  EXPECT_GT(over, 0.3);                  // 128/256 resident -> ~50% misses
  const double far_over = miss_rate_for(512);
  EXPECT_GT(far_over, over);             // grows with working set
}

}  // namespace
}  // namespace hicc::iommu
