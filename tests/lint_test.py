#!/usr/bin/env python3
"""Tests for scripts/hicc_lint.py (run by ctest as `lint_test`).

Covers: golden diagnostics over the fixture tree (positives AND the
suppressed variants, which must be absent), inline-suppression and
baseline semantics, --strict staleness checks, and the real tree
staying lint-clean in strict mode.
"""

import os
import subprocess
import sys
import unittest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(ROOT, "scripts", "hicc_lint.py")
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=ROOT)
    return proc.returncode, proc.stdout


class FixtureGoldens(unittest.TestCase):
    def test_fixture_tree_matches_golden_diagnostics(self):
        rc, out = run_lint("--root", FIXTURES, os.path.join(FIXTURES, "src"))
        self.assertEqual(rc, 1, out)
        with open(os.path.join(FIXTURES, "expected.txt")) as f:
            expected = f.read()
        self.assertEqual(out, expected)

    def test_every_rule_family_has_positive_and_suppressed_fixture(self):
        with open(os.path.join(FIXTURES, "expected.txt")) as f:
            golden = f.read()
        # One representative rule per family fires in the golden...
        for rule in ("det-wallclock", "det-rand", "det-seeded-rng",
                     "det-unordered-iter", "hot-std-function",
                     "hot-heap-alloc", "hot-vector-growth",
                     "hot-marker-missing", "layer-dag", "layer-trace-header",
                     "docs-probe-undocumented", "docs-probe-dynamic",
                     "par-static-mutable", "par-engine-post",
                     "docs-par-knob", "rob-exit", "docs-run-status"):
            self.assertIn(rule + ":", golden, f"{rule} has no positive fixture")
        # ...and the suppressed twins stay out of it.
        for absent in ("wallclock_allowed", "config_hook", "pool.push_back",
                       "marker_suppressed", "nic.waived_probe",
                       "trace/sinks_internal.h", "transport/swift.h",
                       "g_calibration_allowed", "waived_knob",
                       "quick_exit", "waived_status"):
            self.assertNotIn(absent, golden,
                             f"suppressed fixture '{absent}' leaked a finding")

    def test_diagnostics_carry_file_line_col_and_rule(self):
        rc, out = run_lint("--root", FIXTURES,
                           os.path.join(FIXTURES, "src", "net",
                                        "determinism_bad.h"))
        self.assertEqual(rc, 1)
        self.assertIn(
            "src/net/determinism_bad.h:14:12: det-wallclock:", out)
        self.assertIn(
            "src/net/determinism_bad.h:25:10: det-rand:", out)


class BaselineBehavior(unittest.TestCase):
    GRANDFATHERED = os.path.join(FIXTURES, "src", "mem", "grandfathered.h")
    BASELINE = os.path.join(FIXTURES, "baseline_grandfathered.txt")

    def test_baselined_finding_is_forgiven(self):
        rc, out = run_lint("--root", FIXTURES, "--baseline", self.BASELINE,
                           self.GRANDFATHERED)
        self.assertEqual(rc, 0, out)
        self.assertIn("1 baselined finding(s)", out)

    def test_without_baseline_the_finding_fires(self):
        rc, out = run_lint("--root", FIXTURES, self.GRANDFATHERED)
        self.assertEqual(rc, 1)
        self.assertIn("det-wallclock", out)

    def test_strict_flags_stale_baseline_entries(self):
        rc, out = run_lint("--strict", "--root", FIXTURES,
                           "--baseline", self.BASELINE, self.GRANDFATHERED)
        self.assertEqual(rc, 1)
        self.assertIn("stale baseline entry", out)
        self.assertIn("det-rand", out)  # the deliberately-stale line


class StrictSuppressionHygiene(unittest.TestCase):
    UNUSED = os.path.join(FIXTURES, "extra", "unused_allow.h")

    def test_default_mode_ignores_unused_suppressions(self):
        rc, out = run_lint("--root", FIXTURES, self.UNUSED)
        self.assertEqual(rc, 0, out)

    def test_strict_flags_unused_suppressions(self):
        rc, out = run_lint("--strict", "--root", FIXTURES, self.UNUSED)
        self.assertEqual(rc, 1)
        self.assertIn("lint-unused-suppression", out)
        self.assertIn("allow(det-rand)", out)


class RealTree(unittest.TestCase):
    def test_src_is_lint_clean_in_strict_mode(self):
        rc, out = run_lint("--strict", os.path.join(ROOT, "src"))
        self.assertEqual(rc, 0, "src/ must stay hicc_lint-clean:\n" + out)

    def test_list_rules_names_every_family(self):
        rc, out = run_lint("--list-rules", ".")
        self.assertEqual(rc, 0)
        rules = set(out.split())
        families = {r.split("-")[0] for r in rules}
        self.assertEqual(families, {"det", "hot", "layer", "docs", "par",
                                    "rob"})


if __name__ == "__main__":
    unittest.main(verbosity=2)
