// Tests for the core public API: configuration defaults against the
// paper's testbed, the analytic throughput model, and the Experiment
// lifecycle (construction, incremental stepping, window accounting,
// determinism).
#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/model.h"

namespace hicc {
namespace {

using namespace hicc::literals;

// ------------------------------------------------------------- config

TEST(Config, DefaultsMatchPaperTestbed) {
  const ExperimentConfig cfg;
  EXPECT_EQ(cfg.num_senders, 40);
  EXPECT_EQ(cfg.iommu.iotlb_entries, 128);
  EXPECT_NEAR(cfg.dram.theoretical_bw().gigabytes_per_sec(), 115.2, 1e-9);
  EXPECT_NEAR(cfg.pcie.raw_rate().gbps(), 128.0, 1e-9);
  EXPECT_EQ(cfg.nic.input_buffer, Bytes::mib(1));
  EXPECT_EQ(cfg.swift.host_target, TimePs::from_us(100));
  EXPECT_EQ(cfg.data_region, Bytes::mib(12));
  EXPECT_EQ(cfg.read_size.count(), 16 * 1024);
  EXPECT_NEAR(cfg.fabric.link_rate.gbps(), 100.0, 1e-9);
  EXPECT_NEAR(cfg.wire.goodput_fraction(), 0.92, 0.001);
}

// -------------------------------------------------------------- model

TEST(Model, MissFreeBoundAboveLineRate) {
  const ExperimentConfig cfg;
  const ThroughputModel m = fit_model(cfg);
  // With no misses the RC pipeline is far faster than the link.
  EXPECT_GT(m.wire_gbps(0.0), 200.0);
}

TEST(Model, BoundDecreasesWithMisses) {
  const ExperimentConfig cfg;
  const ThroughputModel m = fit_model(cfg);
  double prev = m.wire_gbps(0.0);
  for (double misses = 0.5; misses <= 6.0; misses += 0.5) {
    const double cur = m.wire_gbps(misses);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Model, AppBoundCappedAtGoodputCeiling) {
  const ExperimentConfig cfg;
  const ThroughputModel m = fit_model(cfg);
  EXPECT_NEAR(m.app_gbps(0.0, cfg), 92.0, 0.2);
}

TEST(Model, MatchesPaperFormula) {
  // bound = C*pkt/(T_base + M*T_miss), checked against hand arithmetic.
  ThroughputModel m;
  m.packets_in_flight = 2.0;
  m.packet_pcie_bytes = Bytes(1000);
  m.t_base = TimePs::from_ns(100);
  m.t_miss = TimePs::from_ns(50);
  // 2 * 8000 bits / 200ns = 80 Gbps.
  EXPECT_NEAR(m.wire_gbps(2.0), 80.0, 1e-9);
}

// --------------------------------------------------------- experiment

TEST(Experiment, ShortRunProducesSaneMetrics) {
  ExperimentConfig cfg;
  cfg.rx_threads = 4;
  cfg.warmup = 3_ms;
  cfg.measure = 5_ms;
  Experiment exp(cfg);
  const Metrics m = exp.run();
  EXPECT_NEAR(m.simulated_seconds, 5e-3, 1e-9);
  EXPECT_GT(m.app_throughput_gbps, 30.0);  // 4 cores ~ 50Gbps
  EXPECT_LT(m.app_throughput_gbps, 60.0);
  EXPECT_GT(m.delivered_packets, 6000);  // ~50Gbps x 5ms / 4KB
  EXPECT_GE(m.link_utilization, 0.0);
  EXPECT_LE(m.link_utilization, 1.01);
  EXPECT_EQ(m.fabric_drops, 0);
}

TEST(Experiment, DeterministicForSameSeed) {
  ExperimentConfig cfg;
  cfg.rx_threads = 6;
  cfg.warmup = 2_ms;
  cfg.measure = 3_ms;
  cfg.seed = 77;
  Experiment a(cfg);
  Experiment b(cfg);
  const Metrics ma = a.run();
  const Metrics mb = b.run();
  EXPECT_EQ(ma.delivered_packets, mb.delivered_packets);
  EXPECT_DOUBLE_EQ(ma.app_throughput_gbps, mb.app_throughput_gbps);
  EXPECT_EQ(ma.iotlb_misses, mb.iotlb_misses);
  EXPECT_EQ(ma.events_executed, mb.events_executed);
}

TEST(Experiment, DifferentSeedsDiffer) {
  ExperimentConfig cfg;
  cfg.rx_threads = 6;
  cfg.warmup = 2_ms;
  cfg.measure = 3_ms;
  cfg.seed = 1;
  Experiment a(cfg);
  cfg.seed = 2;
  Experiment b(cfg);
  EXPECT_NE(a.run().events_executed, b.run().events_executed);
}

TEST(Experiment, IncrementalAdvanceMatchesRun) {
  ExperimentConfig cfg;
  cfg.rx_threads = 4;
  cfg.warmup = 2_ms;
  cfg.measure = 4_ms;
  Experiment exp(cfg);
  exp.start();
  exp.advance(2_ms);
  exp.begin_window();
  exp.advance(4_ms);
  const Metrics stepped = exp.snapshot();

  Experiment whole(cfg);
  const Metrics m = whole.run();
  EXPECT_DOUBLE_EQ(stepped.app_throughput_gbps, m.app_throughput_gbps);
  EXPECT_EQ(stepped.delivered_packets, m.delivered_packets);
}

TEST(Experiment, SnapshotBeforeAdvanceIsEmpty) {
  ExperimentConfig cfg;
  cfg.rx_threads = 2;
  Experiment exp(cfg);
  const Metrics m = exp.snapshot();
  EXPECT_DOUBLE_EQ(m.app_throughput_gbps, 0.0);
  EXPECT_EQ(m.delivered_packets, 0);
}

TEST(Experiment, AntagonistControlMidRun) {
  ExperimentConfig cfg;
  cfg.rx_threads = 4;
  cfg.iommu_enabled = false;
  Experiment exp(cfg);
  exp.start();
  exp.advance(2_ms);
  EXPECT_NEAR(exp.antagonist().achieved().gigabytes_per_sec(), 0.0, 0.1);
  exp.antagonist().set_cores(8);
  exp.advance(2_ms);
  EXPECT_GT(exp.antagonist().achieved().gigabytes_per_sec(), 50.0);
}

TEST(Experiment, ThrottleConfigurationApplies) {
  ExperimentConfig cfg;
  cfg.rx_threads = 2;
  cfg.antagonist_cores = 15;
  cfg.antagonist_throttle_gbps = 20.0;
  Experiment exp(cfg);
  exp.start();
  exp.advance(2_ms);
  EXPECT_NEAR(exp.antagonist().achieved().gigabytes_per_sec(), 20.0, 1.0);
}

}  // namespace
}  // namespace hicc
