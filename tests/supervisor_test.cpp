// Crash-isolated sweep supervision (sweep/supervisor.h, sweep/worker.h,
// sweep/journal.h): spec round-trips, worker-vs-in-process record
// equality, the failure taxonomy (crash / timeout / OOM-kill / retries
// exhausted), deterministic retry + backoff, journal durability under
// kill -9, and the bitwise resume guarantee (docs/ROBUSTNESS.md).
//
// This binary is its own point worker: main() dispatches
// `--point-worker` to run_point_worker before gtest ever runs, and the
// supervisor tests exec /proc/self/exe. Failure-injection assertions
// check the taxonomy *status*, not signal names, because sanitizer
// builds turn raise(SIGSEGV)/abort() into plain nonzero exits -- the
// classification (retryable failure) is the contract, the signal is not.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/validate.h"
#include "sweep/journal.h"
#include "sweep/supervisor.h"
#include "sweep/sweep.h"
#include "sweep/worker.h"

namespace hicc::sweep {
namespace {

volatile std::sig_atomic_t g_stop = 0;

/// Same heterogeneous mini-sweep shape as sweep_test.cpp: every point
/// differs, so a worker running the wrong point shows up as a
/// metrics/bitwise mismatch.
std::vector<ExperimentConfig> test_points(int n) {
  std::vector<ExperimentConfig> points;
  for (int i = 0; i < n; ++i) {
    ExperimentConfig cfg;
    cfg.warmup = TimePs::from_us(200);
    cfg.measure = TimePs::from_us(500);
    cfg.rx_threads = 2 + i % 3;
    cfg.num_senders = 4 + i % 5;
    cfg.iommu_enabled = i % 2 == 0;
    cfg.antagonist_cores = (i % 3 == 0) ? 4 : 0;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    points.push_back(cfg);
  }
  return points;
}

SupervisorOptions base_opts() {
  SupervisorOptions opts;
  opts.worker_argv = {"/proc/self/exe", "--point-worker"};
  opts.params.jobs = 2;
  opts.params.max_attempts = 2;
  opts.params.backoff_base_s = 0.01;  // fast retries: tests, not production
  opts.params.backoff_cap_s = 0.05;
  return opts;
}

std::string merged(const SupervisorOutcome& outcome) {
  std::ostringstream os;
  write_merged_json(outcome, os);
  return os.str();
}

/// write_json over in-process results with wall_seconds zeroed -- the
/// byte-exact document an isolated sweep of the same points must
/// produce (worker records pin wall_seconds to 0).
std::string in_process_json(const std::vector<ExperimentConfig>& points) {
  SweepOptions opts;
  opts.jobs = 1;
  auto results = SweepRunner(opts).run(points);
  for (auto& r : results) r.wall_seconds = 0.0;
  std::ostringstream os;
  write_json(results, os);
  return os.str();
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "hicc_supervisor_" + name + "_" +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --------------------------------------------------------------- spec

TEST(PointSpec, RoundTripsThroughParse) {
  ExperimentConfig cfg;
  cfg.rx_threads = 5;
  cfg.num_senders = 7;
  cfg.read_size = Bytes(32 * 1024);
  cfg.read_pipeline = 3;
  cfg.victim_flows = 2;
  cfg.iommu_enabled = false;
  cfg.hugepages = false;
  cfg.ats_enabled = true;
  cfg.antagonist_cores = 6;
  cfg.antagonist_throttle_gbps = 2.5;
  cfg.cc = transport::CcAlgorithm::kHostSignal;
  cfg.warmup = TimePs::from_us(123);
  cfg.measure = TimePs::from_us(456);
  cfg.seed = 987654321;
  cfg.watchdog.max_events = 5000000;

  const SpecParse parsed = parse_point_spec(point_spec(cfg, 7));
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  const PointSpec& spec = parsed.spec;
  EXPECT_EQ(spec.index, 7u);
  EXPECT_EQ(spec.attempt, 1);
  EXPECT_FALSE(spec.is_cluster);
  EXPECT_EQ(spec.host.rx_threads, cfg.rx_threads);
  EXPECT_EQ(spec.host.num_senders, cfg.num_senders);
  EXPECT_EQ(spec.host.read_size.count(), cfg.read_size.count());
  EXPECT_EQ(spec.host.read_pipeline, cfg.read_pipeline);
  EXPECT_EQ(spec.host.victim_flows, cfg.victim_flows);
  EXPECT_EQ(spec.host.iommu_enabled, cfg.iommu_enabled);
  EXPECT_EQ(spec.host.hugepages, cfg.hugepages);
  EXPECT_EQ(spec.host.ats_enabled, cfg.ats_enabled);
  EXPECT_EQ(spec.host.antagonist_cores, cfg.antagonist_cores);
  EXPECT_EQ(spec.host.antagonist_throttle_gbps, cfg.antagonist_throttle_gbps);
  EXPECT_EQ(spec.host.cc, cfg.cc);
  EXPECT_EQ(spec.host.warmup.us(), cfg.warmup.us());
  EXPECT_EQ(spec.host.measure.us(), cfg.measure.us());
  EXPECT_EQ(spec.host.seed, cfg.seed);
  EXPECT_EQ(spec.host.watchdog.max_events, cfg.watchdog.max_events);

  // Serializing the parsed config reproduces the spec byte-for-byte:
  // the fingerprint a resumed sweep recomputes depends on this.
  EXPECT_EQ(point_spec(spec.host, 7), point_spec(cfg, 7));
}

TEST(PointSpec, ClusterFormRoundTrips) {
  ClusterConfig cfg;
  cfg.host.warmup = TimePs::from_us(200);
  cfg.host.measure = TimePs::from_us(400);
  cfg.host.rx_threads = 2;
  cfg.topology.leaves = 2;
  cfg.topology.spines = 3;
  cfg.topology.hosts_per_leaf = 4;
  cfg.topology.ecmp_seed = 77;
  cfg.receivers = 2;
  cfg.parallelism = 2;
  cfg.mailbox_capacity = 512;

  const SpecParse parsed = parse_point_spec(cluster_point_spec(cfg, 3));
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  const PointSpec& spec = parsed.spec;
  EXPECT_TRUE(spec.is_cluster);
  EXPECT_EQ(spec.index, 3u);
  const ClusterConfig round = spec.cluster();
  EXPECT_EQ(round.topology.leaves, cfg.topology.leaves);
  EXPECT_EQ(round.topology.spines, cfg.topology.spines);
  EXPECT_EQ(round.topology.hosts_per_leaf, cfg.topology.hosts_per_leaf);
  EXPECT_EQ(round.topology.ecmp_seed, cfg.topology.ecmp_seed);
  EXPECT_EQ(round.receivers, cfg.receivers);
  EXPECT_EQ(round.parallelism, cfg.parallelism);
  EXPECT_EQ(round.mailbox_capacity, cfg.mailbox_capacity);
  EXPECT_EQ(cluster_point_spec(round, 3), cluster_point_spec(cfg, 3));
}

TEST(PointSpec, ParseReportsEveryProblemWithLineNumbers) {
  const SpecParse parsed = parse_point_spec(
      "hicc.point.v1\n"
      "rx_threads=not-a-number\n"
      "nonsense_key=1\n"
      "inject=frobnicate\n");
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_NE(parsed.errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(parsed.errors[1].find("unknown key"), std::string::npos);
  EXPECT_NE(parsed.errors[2].find("inject"), std::string::npos);

  EXPECT_FALSE(parse_point_spec("not a spec\n").ok());
  EXPECT_FALSE(parse_point_spec("").ok());
}

// ------------------------------------------------------------- worker

TEST(PointWorker, RecordMatchesInProcessSweepBitwise) {
  const auto points = test_points(1);
  std::istringstream in(point_spec(points[0], 0));
  std::ostringstream out, err;
  EXPECT_EQ(run_point_worker(in, out, err), kExitOk);
  EXPECT_EQ(out.str(), in_process_json(points)) << err.str();
}

TEST(PointWorker, ClusterRecordCarriesOneElementPerReceiver) {
  ClusterConfig cfg;
  cfg.host.warmup = TimePs::from_us(200);
  cfg.host.measure = TimePs::from_us(400);
  cfg.host.rx_threads = 2;
  cfg.topology.leaves = 1;
  cfg.topology.spines = 1;
  cfg.topology.hosts_per_leaf = 3;
  cfg.receivers = 2;

  std::istringstream in(cluster_point_spec(cfg, 4));
  std::ostringstream out, err;
  EXPECT_EQ(run_point_worker(in, out, err), kExitOk);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"hicc.sweep.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"index\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"index\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"cluster.port_drops\""), std::string::npos);
}

TEST(PointWorker, RejectsInvalidConfigAndBadSpec) {
  ExperimentConfig bad = test_points(1)[0];
  bad.rx_threads = 0;
  {
    std::istringstream in(point_spec(bad, 0));
    std::ostringstream out, err;
    EXPECT_EQ(run_point_worker(in, out, err), kExitConfigInvalid);
    EXPECT_NE(err.str().find("invalid point configuration"), std::string::npos);
  }
  {
    std::istringstream in("garbage\n");
    std::ostringstream out, err;
    EXPECT_EQ(run_point_worker(in, out, err), kExitFaultParse);
  }
}

// --------------------------------------------------------- supervisor

TEST(Supervisor, MatchesInProcessSweepBitwise) {
  const auto points = test_points(4);
  const SupervisorOutcome outcome = Supervisor(base_opts()).run(points);
  ASSERT_EQ(outcome.points.size(), points.size());
  EXPECT_TRUE(outcome.all_ok());
  for (const auto& p : outcome.points) {
    EXPECT_TRUE(p.completed);
    EXPECT_EQ(p.status, RunStatus::kOk);
    EXPECT_EQ(p.attempts, 1);
  }
  EXPECT_EQ(merged(outcome), in_process_json(points));
}

TEST(Supervisor, CrashedPointIsRetriedThenRecordedDeterministically) {
  const auto points = test_points(3);
  SupervisorOptions opts = base_opts();
  opts.decorate = [](std::size_t i) {
    return i == 1 ? std::string("inject=segv\n") : std::string();
  };

  const SupervisorOutcome outcome = Supervisor(opts).run(points);
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_EQ(outcome.degraded, 0u);
  EXPECT_EQ(outcome.completed, 3u);
  const PointOutcome& failed = outcome.points[1];
  EXPECT_EQ(failed.status, RunStatus::kRetriesExhausted);
  EXPECT_EQ(failed.attempts, opts.params.max_attempts);
  EXPECT_NE(failed.detail.find("gave up after 2 attempts"), std::string::npos);
  EXPECT_NE(failed.payload.find("\"run_status\": \"retries_exhausted\""),
            std::string::npos);
  EXPECT_NE(failed.payload.find("\"supervisor.attempts\": 2"), std::string::npos);
  // The healthy neighbors completed untouched.
  EXPECT_EQ(outcome.points[0].status, RunStatus::kOk);
  EXPECT_EQ(outcome.points[2].status, RunStatus::kOk);

  // Failure records are synthesized deterministically: a second run of
  // the same doomed sweep merges to the same bytes.
  EXPECT_EQ(merged(Supervisor(opts).run(points)), merged(outcome));
}

TEST(Supervisor, FlakyWorkerRecoversOnRetry) {
  const auto points = test_points(2);
  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 3;
  opts.decorate = [](std::size_t i) {
    return i == 0 ? std::string("inject=flaky-segv:2\n") : std::string();
  };
  const SupervisorOutcome outcome = Supervisor(opts).run(points);
  EXPECT_TRUE(outcome.all_ok());
  EXPECT_EQ(outcome.points[0].status, RunStatus::kOk);
  EXPECT_EQ(outcome.points[0].attempts, 2);  // failed once, recovered
  EXPECT_EQ(outcome.points[1].attempts, 1);
  // The recovered record is the real one -- bitwise what an
  // uninjected sweep produces.
  EXPECT_EQ(merged(outcome), in_process_json(points));
}

TEST(Supervisor, HangingWorkerTimesOut) {
  const auto points = test_points(1);
  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 1;
  opts.params.point_timeout_s = 0.3;
  opts.decorate = [](std::size_t) { return std::string("inject=hang\n"); };
  const SupervisorOutcome outcome = Supervisor(opts).run(points);
  ASSERT_TRUE(outcome.points[0].completed);
  EXPECT_EQ(outcome.points[0].status, RunStatus::kTimedOut);
  EXPECT_EQ(outcome.points[0].attempts, 1);
  EXPECT_NE(outcome.points[0].detail.find("timeout"), std::string::npos);
  EXPECT_NE(outcome.points[0].payload.find("\"run_status\": \"timed_out\""),
            std::string::npos);
  EXPECT_EQ(outcome.failures, 1u);
}

TEST(Supervisor, SigkilledWorkerClassifiedAsOomKilled) {
  const auto points = test_points(1);
  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 1;
  opts.decorate = [](std::size_t) { return std::string("inject=kill\n"); };
  const SupervisorOutcome outcome = Supervisor(opts).run(points);
  ASSERT_TRUE(outcome.points[0].completed);
  // SIGKILL the supervisor did not send reads as an external/OOM kill.
  EXPECT_EQ(outcome.points[0].status, RunStatus::kOomKilled);
  EXPECT_NE(outcome.points[0].payload.find("\"run_status\": \"oom_killed\""),
            std::string::npos);
}

TEST(Supervisor, InvalidPointConfigFailsPermanentlyWithoutRetry) {
  ExperimentConfig bad = test_points(1)[0];
  bad.rx_threads = 0;
  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 3;
  const SupervisorOutcome outcome =
      Supervisor(opts).run_specs({point_spec(bad, 0)});
  ASSERT_TRUE(outcome.points[0].completed);
  EXPECT_EQ(outcome.points[0].status, RunStatus::kCrashed);
  EXPECT_EQ(outcome.points[0].attempts, 1);  // deterministic failure: no retry
  EXPECT_NE(outcome.points[0].detail.find("exit 2"), std::string::npos);
}

TEST(Supervisor, MailboxOverflowIsDegradedNotRetried) {
  // A cluster point whose parallel engine is guaranteed to trip its
  // cross-partition mailbox bound: the worker still exits 0 with the
  // record, so the supervisor must surface the in-band status as a
  // degraded result -- not retry a deterministic property of the point.
  ClusterConfig cfg;
  cfg.host.warmup = TimePs::from_us(200);
  cfg.host.measure = TimePs::from_us(500);
  cfg.host.rx_threads = 2;
  cfg.topology.leaves = 1;
  cfg.topology.spines = 1;
  cfg.topology.hosts_per_leaf = 2;
  cfg.receivers = 1;
  cfg.parallelism = 1;
  cfg.mailbox_capacity = 1;

  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 3;
  const SupervisorOutcome outcome =
      Supervisor(opts).run_specs({cluster_point_spec(cfg, 0)});
  ASSERT_TRUE(outcome.points[0].completed);
  EXPECT_EQ(outcome.points[0].status, RunStatus::kMailboxOverflow);
  EXPECT_EQ(outcome.points[0].attempts, 1);
  EXPECT_EQ(outcome.degraded, 1u);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_FALSE(outcome.all_ok());
  EXPECT_NE(outcome.points[0].payload.find("\"run_status\": \"mailbox_overflow\""),
            std::string::npos);
}

TEST(Supervisor, RejectsBadParamsAndMissingWorker) {
  SupervisorParams params;
  params.max_attempts = 0;
  params.backoff_base_s = -1.0;
  EXPECT_FALSE(validate(params).empty());
  params = SupervisorParams{};
  params.backoff_cap_s = params.backoff_base_s / 2;  // cap below base
  EXPECT_FALSE(validate(params).empty());
  EXPECT_TRUE(validate(SupervisorParams{}).empty());

  SupervisorOptions opts = base_opts();
  opts.params.max_attempts = 0;
  EXPECT_THROW((void)Supervisor(opts).run(test_points(1)), std::invalid_argument);
  opts = base_opts();
  opts.worker_argv.clear();
  EXPECT_THROW((void)Supervisor(opts).run(test_points(1)), std::invalid_argument);
}

// ------------------------------------------------------------ journal

TEST(Journal, RoundTripsEntriesAndToleratesTornTail) {
  const std::string path = tmp_path("journal_roundtrip");
  {
    JournalWriter w;
    ASSERT_TRUE(w.open(path, 0xabcdef0123456789ull, false));
    EXPECT_TRUE(w.note(0, 1, "crashed", "first attempt died"));
    EXPECT_TRUE(w.append(JournalEntry{0, "ok", 2, "", "{\n      \"index\": 0\n    }"}));
    EXPECT_TRUE(w.append(JournalEntry{3, "retries_exhausted", 2,
                                      "gave up: detail with = and spaces",
                                      "{ \"index\": 3 }"}));
  }
  JournalContents contents = read_journal(path);
  EXPECT_TRUE(contents.error.empty()) << contents.error;
  EXPECT_FALSE(contents.truncated);
  EXPECT_EQ(contents.fingerprint, 0xabcdef0123456789ull);
  ASSERT_EQ(contents.entries.size(), 2u);  // notes are not state
  EXPECT_EQ(contents.entries[0].index, 0u);
  EXPECT_EQ(contents.entries[0].status, "ok");
  EXPECT_EQ(contents.entries[0].attempts, 2);
  EXPECT_EQ(contents.entries[0].payload, "{\n      \"index\": 0\n    }");
  EXPECT_EQ(contents.entries[1].index, 3u);
  EXPECT_EQ(contents.entries[1].detail, "gave up: detail with = and spaces");

  // A frame torn mid-payload (kill -9 mid-append) is discarded; the
  // frames before it survive.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn << "point index=9 status=ok attempts=1 bytes=400 crc=0000000000000000 detail=\n"
         << "{ \"index\": 9 ...";
  }
  contents = read_journal(path);
  EXPECT_TRUE(contents.error.empty());
  EXPECT_TRUE(contents.truncated);
  ASSERT_EQ(contents.entries.size(), 2u);

  // Missing or foreign files are unusable, not truncated.
  EXPECT_FALSE(read_journal(path + ".does-not-exist").error.empty());
  const std::string foreign = tmp_path("journal_foreign");
  { std::ofstream(foreign) << "some other format v2\n"; }
  EXPECT_FALSE(read_journal(foreign).error.empty());
  std::remove(foreign.c_str());
  std::remove(path.c_str());
}

TEST(Supervisor, ResumeSkipsJournaledPointsAndStaysBitwise) {
  const auto points = test_points(4);
  const std::string golden = in_process_json(points);
  const std::string path = tmp_path("resume_skip");
  std::remove(path.c_str());

  SupervisorOptions opts = base_opts();
  opts.params.jobs = 1;
  opts.journal_path = path;
  const SupervisorOutcome full = Supervisor(opts).run(points);
  EXPECT_TRUE(full.all_ok());
  EXPECT_EQ(merged(full), golden);

  // Keep only the first two durable frames -- as if the sweep died
  // after point 2 -- then resume. Frame headers start lines, and
  // payload lines are indented JSON, so the cut point is unambiguous.
  std::string journal_bytes = read_file(path);
  std::size_t cut = std::string::npos;
  int frames = 0;
  for (std::size_t pos = 0;
       (pos = journal_bytes.find("\npoint index=", pos)) != std::string::npos; ++pos) {
    if (++frames == 3) {
      cut = pos + 1;
      break;
    }
  }
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << journal_bytes.substr(0, cut);
  }

  SupervisorOptions resume_opts = opts;
  resume_opts.resume = true;
  std::vector<std::size_t> progressed;
  resume_opts.progress = [&progressed](const SweepProgress& p) {
    progressed.push_back(p.index);
  };
  const SupervisorOutcome resumed = Supervisor(resume_opts).run(points);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.completed, 4u);
  EXPECT_EQ(progressed.size(), 4u);  // resumed points report progress too
  for (const auto& p : resumed.points) EXPECT_TRUE(p.completed);
  EXPECT_TRUE(resumed.points[0].from_journal);
  EXPECT_FALSE(resumed.points[3].from_journal);
  EXPECT_EQ(merged(resumed), golden);
  std::remove(path.c_str());
}

TEST(Supervisor, ResumeRefusesForeignJournal) {
  const auto points = test_points(2);
  const std::string path = tmp_path("resume_mismatch");
  std::remove(path.c_str());
  SupervisorOptions opts = base_opts();
  opts.journal_path = path;
  (void)Supervisor(opts).run(points);

  SupervisorOptions resume_opts = opts;
  resume_opts.resume = true;
  // A different sweep (other seeds) must not merge into this journal.
  auto other = test_points(2);
  other[0].seed = 4242;
  EXPECT_THROW((void)Supervisor(resume_opts).run(other), std::invalid_argument);
  // The original sweep still resumes fine.
  const SupervisorOutcome ok = Supervisor(resume_opts).run(points);
  EXPECT_EQ(ok.resumed, 2u);
  std::remove(path.c_str());
}

TEST(Supervisor, StopFlagInterruptsThenResumeCompletesBitwise) {
  const auto points = test_points(3);
  const std::string path = tmp_path("stop_flag");
  std::remove(path.c_str());

  SupervisorOptions opts = base_opts();
  opts.journal_path = path;
  opts.stop_flag = &g_stop;
  g_stop = 1;  // already stopped: the supervisor must not launch anything
  const SupervisorOutcome interrupted = Supervisor(opts).run(points);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.completed, 0u);
  // The partial merge is schema-valid with zero points.
  EXPECT_NE(merged(interrupted).find("\"points\": [\n  ]"), std::string::npos);

  g_stop = 0;
  SupervisorOptions resume_opts = opts;
  resume_opts.resume = true;
  const SupervisorOutcome resumed = Supervisor(resume_opts).run(points);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed, 3u);
  EXPECT_EQ(merged(resumed), in_process_json(points));
  std::remove(path.c_str());
}

TEST(Supervisor, KillNineMidSweepThenResumeIsBitwise) {
  const auto points = test_points(6);
  const std::string golden = in_process_json(points);
  const std::string path = tmp_path("kill9");
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: run the journaled sweep serially until killed. _Exit, not
    // exit -- no gtest teardown in the forked copy.
    SupervisorOptions opts = base_opts();
    opts.params.jobs = 1;
    opts.journal_path = path;
    (void)Supervisor(opts).run(points);
    std::_Exit(0);
  }

  // Parent: wait for at least one durable frame, then kill -9 the
  // supervisor itself (workers die with it or get reaped by init).
  for (int i = 0; i < 30000; ++i) {
    if (read_file(path).find("\npoint index=") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::kill(pid, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);

  const JournalContents contents = read_journal(path);
  EXPECT_TRUE(contents.error.empty()) << contents.error;
  ASSERT_FALSE(contents.entries.empty());

  SupervisorOptions resume_opts = base_opts();
  resume_opts.params.jobs = 1;
  resume_opts.journal_path = path;
  resume_opts.resume = true;
  const SupervisorOutcome resumed = Supervisor(resume_opts).run(points);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed, points.size());
  EXPECT_GE(resumed.resumed, 1u);
  EXPECT_EQ(merged(resumed), golden);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hicc::sweep

/// The binary doubles as its own crash-isolated point worker: the
/// supervisor tests exec /proc/self/exe --point-worker, which must
/// behave exactly like `hicc_cli --point-worker`.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--point-worker") {
      return hicc::sweep::run_point_worker(std::cin, std::cout, std::cerr);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
