// Property-based tests: each suite checks an invariant across a
// parameterized sweep (TEST_P) of geometries, rates, or random seeds,
// rather than a single hand-picked case.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "iommu/iommu.h"
#include "iommu/lru_cache.h"
#include "mem/memory_system.h"
#include "mem/stream_antagonist.h"
#include "net/link.h"
#include "pcie/params.h"
#include "sim/simulator.h"
#include "transport/swift.h"

namespace hicc {
namespace {

using namespace hicc::literals;

// ===================================================================
// LruCache equivalence against a reference model, across geometries.
// ===================================================================

class LruGeometry : public ::testing::TestWithParam<std::tuple<int, int>> {};

/// Reference: exact LRU per set implemented with std::list.
class ReferenceLru {
 public:
  ReferenceLru(int sets, int ways)
      : sets_(static_cast<std::size_t>(sets)), ways_(ways), lists_(sets_) {}

  bool lookup(std::uint64_t key) {
    auto& l = lists_[set_of(key)];
    const auto it = std::find(l.begin(), l.end(), key);
    if (it == l.end()) return false;
    l.erase(it);
    l.push_front(key);
    return true;
  }

  void insert(std::uint64_t key) {
    auto& l = lists_[set_of(key)];
    const auto it = std::find(l.begin(), l.end(), key);
    if (it != l.end()) l.erase(it);
    l.push_front(key);
    if (l.size() > static_cast<std::size_t>(ways_)) l.pop_back();
  }

  bool invalidate(std::uint64_t key) {
    auto& l = lists_[set_of(key)];
    const auto it = std::find(l.begin(), l.end(), key);
    if (it == l.end()) return false;
    l.erase(it);
    return true;
  }

 private:
  [[nodiscard]] std::size_t set_of(std::uint64_t key) const {
    return sets_ == 1 ? 0 : std::hash<std::uint64_t>{}(key) % sets_;
  }
  std::size_t sets_;
  int ways_;
  std::vector<std::list<std::uint64_t>> lists_;
};

TEST_P(LruGeometry, MatchesReferenceModelOnRandomTrace) {
  const auto [sets, ways] = GetParam();
  iommu::LruCache<std::uint64_t> cache(sets, ways);
  ReferenceLru ref(sets, ways);
  Rng rng(static_cast<std::uint64_t>(sets * 1000 + ways));
  const std::uint64_t key_space = static_cast<std::uint64_t>(sets * ways) * 3;

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.below(key_space);
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(cache.lookup(key), ref.lookup(key)) << "op " << op;
        break;
      case 1:
        cache.insert(key);
        ref.insert(key);
        break;
      default:
        ASSERT_EQ(cache.invalidate(key), ref.invalidate(key)) << "op " << op;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, LruGeometry,
                         ::testing::Values(std::tuple{1, 4}, std::tuple{1, 64},
                                           std::tuple{1, 128}, std::tuple{4, 4},
                                           std::tuple{8, 16}, std::tuple{16, 8}),
                         [](const auto& param_info) {
                           return "s" + std::to_string(std::get<0>(param_info.param)) + "w" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// ===================================================================
// Simulator: random schedules always execute in nondecreasing time.
// ===================================================================

class SimOrdering : public ::testing::TestWithParam<int> {};

TEST_P(SimOrdering, EventsExecuteInTimeOrder) {
  sim::Simulator sim;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<TimePs> executed;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const TimePs t = TimePs(static_cast<std::int64_t>(rng.below(1'000'000'000)));
    ids.push_back(sim.at(t, [&executed, &sim] { executed.push_back(sim.now()); }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (const auto id : ids) {
    if (rng.chance(0.33) && sim.cancel(id)) ++cancelled;
  }
  sim.run_until(TimePs::from_ms(10));
  EXPECT_EQ(executed.size(), ids.size() - static_cast<std::size_t>(cancelled));
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrdering, ::testing::Range(1, 6));

// ===================================================================
// Memory solver: more antagonist cores can only raise latency and
// never break the achievable-bandwidth bound.
// ===================================================================

class MemMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(MemMonotonic, LatencyMonotoneAndBandwidthBounded) {
  const double open_demand_gbs = GetParam();
  double prev_latency = 0.0;
  for (int cores = 0; cores <= 15; cores += 3) {
    sim::Simulator sim;
    mem::MemorySystem mem(sim, mem::DramParams{}, Rng(7));
    mem::StreamAntagonist ant(mem, mem::AntagonistParams{}, cores);
    const auto open = mem.add_open(mem::MemClass::kCpuCopy, 1.0);
    mem.set_demand(open, BitRate::gigabytes_per_sec(open_demand_gbs));
    sim.run_until(1_ms);
    const double lat = mem.current_latency().ns();
    EXPECT_GE(lat, prev_latency * 0.999) << cores << " cores";
    prev_latency = lat;

    mem.begin_window();
    sim.run_until(2_ms);
    EXPECT_LE(mem.window_report().total_gbytes_per_sec,
              mem.params().achievable_bw().gigabytes_per_sec() * 1.02);
  }
}

INSTANTIATE_TEST_SUITE_P(OpenDemand, MemMonotonic,
                         ::testing::Values(0.0, 5.0, 12.0, 30.0));

// ===================================================================
// IOMMU: miss rate is monotone in working-set size for both leaf
// sizes, and never negative/above the per-access bound.
// ===================================================================

class IommuWorkingSet : public ::testing::TestWithParam<iommu::PageSize> {};

TEST_P(IommuWorkingSet, MissRateMonotoneInWorkingSet) {
  const iommu::PageSize page = GetParam();
  double prev = -1.0;
  for (const int pages : {32, 96, 160, 320, 640}) {
    sim::Simulator sim;
    mem::MemorySystem mem(sim, mem::DramParams{}, Rng(3));
    iommu::Iommu mmu(sim, mem, iommu::IommuParams{});
    const auto psize = iommu::page_bytes(page).count();
    const auto rid = mmu.map_region(Bytes(pages * psize), page);
    const auto& region = mmu.region(rid);
    Rng rng(11);
    auto run_accesses = [&](int n) {
      for (int i = 0; i < n; ++i) {
        const auto p = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(pages)));
        if (!mmu.try_translate(region.page_iova(p)).has_value()) {
          mmu.translate_slow(region.page_iova(p), nullptr);
          sim.run_until(sim.now() + 5_us);
        }
      }
    };
    run_accesses(2000);  // warm
    const auto misses0 = mmu.stats().misses;
    run_accesses(2000);
    const double rate = static_cast<double>(mmu.stats().misses - misses0) / 2000.0;
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    EXPECT_GE(rate, prev - 0.02) << pages << " pages";
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, IommuWorkingSet,
                         ::testing::Values(iommu::PageSize::k4K, iommu::PageSize::k2M),
                         [](const auto& param_info) {
                           return param_info.param == iommu::PageSize::k4K ? "small4K" : "huge2M";
                         });

// ===================================================================
// QueuedLink: conservation + FIFO across rates and queue capacities.
// ===================================================================

class LinkProperty
    : public ::testing::TestWithParam<std::tuple<double /*gbps*/, int /*cap_kb*/>> {};

TEST_P(LinkProperty, ConservesAndOrdersPackets) {
  const auto [gbps, cap_kb] = GetParam();
  sim::Simulator sim;
  std::vector<std::int64_t> delivered;
  net::QueuedLink link(sim, BitRate::gbps(gbps), 1_us, Bytes(cap_kb * 1024),
                       [&](net::Packet p) { delivered.push_back(p.seq); });
  Rng rng(5);
  int sent = 0;
  std::int64_t dropped_before = 0;
  for (int i = 0; i < 500; ++i) {
    net::Packet p;
    p.seq = i;
    p.wire = Bytes(static_cast<std::int64_t>(rng.range(64, 4452)));
    sim.run_until(sim.now() + TimePs::from_ns(rng.uniform(0.0, 400.0)));
    sent += link.send(std::move(p)) ? 1 : 0;
  }
  dropped_before = link.drops();
  sim.run_until(sim.now() + TimePs::from_ms(10));
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(sent));
  EXPECT_EQ(sent + dropped_before, 500);
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  EXPECT_EQ(link.queued().count(), 0);
}

INSTANTIATE_TEST_SUITE_P(RatesAndCaps, LinkProperty,
                         ::testing::Combine(::testing::Values(10.0, 100.0),
                                            ::testing::Values(16, 256, 4096)));

// ===================================================================
// Swift: window stays in [min, max] for arbitrary signal streams.
// ===================================================================

class SwiftFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SwiftFuzz, WindowStaysInBoundsUnderRandomSignals) {
  sim::Simulator sim;
  const transport::SwiftParams params;
  transport::SwiftCc cc(sim, params, /*react_to_host_signal=*/true);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97);
  for (int i = 0; i < 5000; ++i) {
    sim.run_until(sim.now() + TimePs::from_us(rng.uniform(1.0, 50.0)));
    switch (rng.below(3)) {
      case 0: {
        const auto rtt = TimePs::from_us(rng.uniform(10.0, 500.0));
        const auto host = TimePs::from_us(rng.uniform(0.0, rtt.us()));
        cc.on_ack(transport::AckInfo{rtt, host});
        break;
      }
      case 1:
        cc.on_loss();
        break;
      default:
        cc.on_host_signal();
        break;
    }
    ASSERT_GE(cc.cwnd(), params.min_cwnd);
    ASSERT_LE(cc.cwnd(), params.max_cwnd);
    ASSERT_GE(cc.fabric_cwnd(), params.min_cwnd);
    ASSERT_GE(cc.host_cwnd(), params.min_cwnd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwiftFuzz, ::testing::Range(1, 7));

// ===================================================================
// PCIe parameter math across generations and widths.
// ===================================================================

class PcieGen : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(PcieGen, RateMathConsistent) {
  const auto [gts, lanes, expected_raw_gbps] = GetParam();
  pcie::PcieParams p;
  p.gigatransfers_per_lane = gts;
  p.lanes = lanes;
  EXPECT_NEAR(p.raw_rate().gbps(), expected_raw_gbps, 1e-9);
  // Effective goodput is always positive and below raw.
  EXPECT_GT(p.effective_goodput().gbps(), 0.0);
  EXPECT_LT(p.effective_goodput().gbps(), p.raw_rate().gbps());
  // Larger payloads -> better efficiency.
  pcie::PcieParams big = p;
  big.max_payload = Bytes(512);
  EXPECT_GT(big.effective_goodput().gbps(), p.effective_goodput().gbps());
}

INSTANTIATE_TEST_SUITE_P(Generations, PcieGen,
                         ::testing::Values(std::tuple{8.0, 16, 128.0},    // gen3 x16
                                           std::tuple{16.0, 16, 256.0},   // gen4 x16
                                           std::tuple{32.0, 16, 512.0},   // gen5 x16
                                           std::tuple{8.0, 8, 64.0}));    // gen3 x8

// ===================================================================
// Histogram: percentiles bracket the true quantiles for random data.
// ===================================================================

class HistogramFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HistogramFuzz, PercentilesWithinBucketError) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  LogHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(100.0) + rng.uniform(0.0, 50.0);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = values[static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(values.size() - 1))];
    EXPECT_NEAR(h.percentile(p), exact, exact * 0.06 + 1.0) << "p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace hicc
