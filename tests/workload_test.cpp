// Open-loop workload subsystem: quantile-sketch relative-error and
// merge contracts, flow-pool reuse/ABA safety, arrival/size
// distributions, columnar round-trip, and cluster-level determinism
// of the workload engine (serial == parallel, bitwise on sketches).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sketch.h"
#include "core/cluster.h"
#include "core/validate.h"
#include "mem/memory_system.h"
#include "sweep/columnar.h"
#include "workload/dist.h"
#include "workload/engine.h"
#include "workload/flow_pool.h"
#include "workload/workload.h"

namespace hicc {
namespace {

// ---------------------------------------------------------------------------
// QuantileSketch

/// Exact q-quantile of a sorted sample (nearest-rank).
double exact_quantile(const std::vector<double>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

TEST(QuantileSketch, RelativeErrorBoundHolds) {
  // Property: for a heavy-tailed stream spanning six decades, every
  // probed quantile is within alpha (relative) of the exact value.
  for (const double alpha : {0.01, 0.05}) {
    QuantileSketch sketch(alpha);
    Rng rng(7);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      // Log-uniform over six decades: exercises many buckets.
      const double v = std::pow(10.0, rng.uniform(0.0, 6.0));
      values.push_back(v);
      sketch.add(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      const double exact = exact_quantile(values, q);
      const double approx = sketch.quantile(q);
      // The sketch guarantees alpha against the true quantile; the
      // extra alpha absorbs the nearest-rank discretization of the
      // reference.
      const double err = std::abs(approx - exact) / exact;
      EXPECT_LE(err, 2.0 * alpha) << "alpha=" << alpha << " q=" << q;
    }
  }
}

TEST(QuantileSketch, CountSumMeanMinMax) {
  QuantileSketch s(0.01);
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(10.0);
  s.add(20.0);
  s.add(30.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.sum(), 60.0);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.max_seen(), 30.0);
  EXPECT_DOUBLE_EQ(s.min_seen(), 10.0);
}

TEST(QuantileSketch, UnderflowBucketAndReset) {
  QuantileSketch s(0.01);
  s.add(0.0);
  s.add(-5.0);
  s.add(QuantileSketch::min_value() / 2);
  EXPECT_EQ(s.underflow_count(), 3);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.quantile(0.5), 0.0);  // all mass below resolution
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.underflow_count(), 0);
  EXPECT_EQ(s.encode(), QuantileSketch(0.01).encode());
}

TEST(QuantileSketch, MergeEqualsSingleStream) {
  // Exactness: inserting a stream split across N sketches and merging
  // reproduces the single-sketch state bit for bit.
  QuantileSketch whole(0.02);
  QuantileSketch parts[3] = {QuantileSketch(0.02), QuantileSketch(0.02),
                             QuantileSketch(0.02)};
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-2.0, 4.0));
    whole.add(v);
    parts[i % 3].add(v);
  }
  QuantileSketch merged(0.02);
  for (const auto& p : parts) EXPECT_TRUE(merged.merge(p));
  EXPECT_EQ(merged.encode(), whole.encode());
  EXPECT_EQ(merged.fingerprint(), whole.fingerprint());
  EXPECT_EQ(merged.count(), whole.count());
}

TEST(QuantileSketch, MergeIsAssociativeAndCommutative) {
  QuantileSketch a(0.01), b(0.01), c(0.01);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) a.add(rng.uniform(1.0, 100.0));
  for (int i = 0; i < 1000; ++i) b.add(rng.uniform(10.0, 1e6));
  for (int i = 0; i < 1000; ++i) c.add(rng.uniform(0.1, 10.0));

  QuantileSketch ab_c = a;  // (a + b) + c
  ASSERT_TRUE(ab_c.merge(b));
  ASSERT_TRUE(ab_c.merge(c));
  QuantileSketch bc = b;  // a + (b + c)
  ASSERT_TRUE(bc.merge(c));
  QuantileSketch a_bc = a;
  ASSERT_TRUE(a_bc.merge(bc));
  EXPECT_EQ(ab_c.encode(), a_bc.encode());

  QuantileSketch ba = b;  // commutativity
  ASSERT_TRUE(ba.merge(a));
  QuantileSketch ab = a;
  ASSERT_TRUE(ab.merge(b));
  EXPECT_EQ(ab.encode(), ba.encode());
}

TEST(QuantileSketch, IncompatibleMergeRejected) {
  QuantileSketch fine(0.01), coarse(0.05);
  fine.add(1.0);
  coarse.add(1.0);
  EXPECT_FALSE(fine.mergeable(coarse));
  EXPECT_FALSE(fine.merge(coarse));
  EXPECT_EQ(fine.count(), 1);  // rejected merge left the sketch untouched
}

// ---------------------------------------------------------------------------
// FlowPool

TEST(FlowPool, AcquireReleaseCycle) {
  workload::FlowPool pool(8, 4);
  EXPECT_EQ(pool.capacity(), 8);
  EXPECT_EQ(pool.classes(), 4);
  EXPECT_EQ(pool.active(), 0);

  const workload::FlowHandle h = pool.acquire(2);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.slot % 4, 2);  // slot layout binds slot to its class
  EXPECT_TRUE(pool.live(h));
  EXPECT_EQ(pool.active(), 1);
  EXPECT_TRUE(pool.release(h));
  EXPECT_FALSE(pool.live(h));
  EXPECT_EQ(pool.active(), 0);
}

TEST(FlowPool, ClassExhaustionIsIsolated) {
  workload::FlowPool pool(8, 4);  // two slots per class
  const workload::FlowHandle a = pool.acquire(1);
  const workload::FlowHandle b = pool.acquire(1);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_FALSE(pool.acquire(1).valid());  // class 1 exhausted...
  EXPECT_TRUE(pool.acquire(3).valid());   // ...other classes unaffected
}

TEST(FlowPool, StaleHandleCannotTouchNewOccupancy) {
  // The ABA guard: a handle kept across release + re-acquire of its
  // slot must be dead and must not release the new occupant.
  workload::FlowPool pool(4, 4);
  const workload::FlowHandle old_h = pool.acquire(0);
  ASSERT_TRUE(pool.release(old_h));
  EXPECT_FALSE(pool.release(old_h));  // double release rejected

  const workload::FlowHandle new_h = pool.acquire(0);
  ASSERT_EQ(new_h.slot, old_h.slot);  // same slot, new generation
  EXPECT_NE(new_h.generation, old_h.generation);
  EXPECT_FALSE(pool.live(old_h));
  EXPECT_FALSE(pool.release(old_h));  // stale release rejected
  EXPECT_TRUE(pool.live(new_h));      // current occupant unharmed
  EXPECT_EQ(pool.active(), 1);
}

TEST(FlowPool, DrainAndRefillKeepsAccounting) {
  workload::FlowPool pool(64, 8);
  std::vector<workload::FlowHandle> held;
  for (int round = 0; round < 3; ++round) {
    for (int c = 0; c < 8; ++c) {
      for (workload::FlowHandle h = pool.acquire(c); h.valid(); h = pool.acquire(c)) {
        held.push_back(h);
      }
    }
    EXPECT_EQ(pool.active(), 64);
    for (const auto& h : held) EXPECT_TRUE(pool.release(h));
    held.clear();
    EXPECT_EQ(pool.active(), 0);
  }
}

// ---------------------------------------------------------------------------
// Distributions

TEST(FlowSizeDist, FixedReturnsExactSize) {
  const workload::FlowSizeDist dist(workload::SizeDist::kFixed, Bytes(12345));
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng).count(), 12345);
  EXPECT_DOUBLE_EQ(dist.mean_bytes(), 12345.0);
}

TEST(FlowSizeDist, EmpiricalMeansMatchAnalytic) {
  for (const auto kind : {workload::SizeDist::kWebSearch, workload::SizeDist::kHadoop}) {
    const workload::FlowSizeDist dist(kind, Bytes(1));
    Rng rng(17);
    double sum = 0.0;
    const int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
      const double b = static_cast<double>(dist.sample(rng).count());
      ASSERT_GE(b, 1.0);
      sum += b;
    }
    const double empirical = sum / kSamples;
    // Heavy-tailed: the sample mean converges slowly; 10% is ample to
    // catch a broken inverse-transform while staying flake-free.
    EXPECT_NEAR(empirical / dist.mean_bytes(), 1.0, 0.10)
        << workload::to_string(kind);
  }
}

workload::WorkloadParams arrival_params(workload::Arrival kind) {
  workload::WorkloadParams p;
  p.pattern = workload::Pattern::kUniform;
  p.arrival = kind;
  p.rate_per_s = 1e6;
  p.burst_factor = 4.0;
  p.burst_on_fraction = 0.2;
  p.burst_period = TimePs::from_us(50);
  return p;
}

TEST(ArrivalProcess, PoissonMeanRate) {
  workload::ArrivalProcess ap(arrival_params(workload::Arrival::kPoisson), Rng(23));
  double total_ps = 0.0;
  const int kGaps = 100000;
  for (int i = 0; i < kGaps; ++i) {
    const TimePs gap = ap.next_gap();
    ASSERT_GT(gap.ps(), 0);
    total_ps += static_cast<double>(gap.ps());
  }
  const double mean_gap_us = total_ps / kGaps / 1e6;
  EXPECT_NEAR(mean_gap_us, 1.0, 0.05);  // 1e6/s -> 1us mean gap
}

TEST(ArrivalProcess, BurstyPreservesMeanRate) {
  // f * factor <= 1: the off-state rate stays positive and the
  // long-run mean must equal the nominal rate.
  workload::ArrivalProcess ap(arrival_params(workload::Arrival::kBursty), Rng(29));
  double total_ps = 0.0;
  const int kGaps = 200000;
  for (int i = 0; i < kGaps; ++i) total_ps += static_cast<double>(ap.next_gap().ps());
  const double mean_gap_us = total_ps / kGaps / 1e6;
  EXPECT_NEAR(mean_gap_us, 1.0, 0.10);
}

// ---------------------------------------------------------------------------
// Columnar format

TEST(Columnar, RoundTripIsBitwise) {
  sweep::ColumnarTable table;
  table.add_row({{"metrics.drop_rate", 0.25}, {"config.seed", 7.0}});
  table.add_row({{"metrics.drop_rate", 0.0},
                 {"config.seed", 8.0},
                 {"extra.workload.fct_p99_us", 133.7203125}});
  std::ostringstream first;
  table.write(first);

  std::istringstream in(first.str());
  sweep::ColumnarTable parsed;
  ASSERT_TRUE(sweep::ColumnarTable::parse(in, &parsed));
  EXPECT_EQ(parsed.rows(), 2u);
  std::ostringstream second;
  parsed.write(second);
  EXPECT_EQ(first.str(), second.str());  // write(parse(write(x))) == write(x)
}

TEST(Columnar, BackfillsRaggedRows) {
  sweep::ColumnarTable table;
  table.add_row({{"a", 1.0}});
  table.add_row({{"b", 2.0}});
  EXPECT_EQ(table.rows(), 2u);
  ASSERT_EQ(table.column("a").size(), 2u);
  ASSERT_EQ(table.column("b").size(), 2u);
  EXPECT_EQ(table.column("a")[1], 0.0);
  EXPECT_EQ(table.column("b")[0], 0.0);
  const auto fields = table.fields();
  EXPECT_TRUE(std::is_sorted(fields.begin(), fields.end()));
}

TEST(Columnar, ParseRejectsWrongSchema) {
  std::istringstream bad(
      "{\n  \"schema\": \"hicc.sweep.v1\",\n  \"points\": 0,\n  \"fields\": "
      "[],\n  \"columns\": {}\n}\n");
  sweep::ColumnarTable out;
  EXPECT_FALSE(sweep::ColumnarTable::parse(bad, &out));
}

TEST(Columnar, ParseRejectsLengthMismatch) {
  std::istringstream bad(
      "{\n  \"schema\": \"hicc.sweepc.v1\",\n  \"points\": 2,\n  \"fields\": "
      "[\"a\"],\n  \"columns\": {\n    \"a\": [1]\n  }\n}\n");
  sweep::ColumnarTable out;
  EXPECT_FALSE(sweep::ColumnarTable::parse(bad, &out));
}

// ---------------------------------------------------------------------------
// Cluster-level workload engine

ClusterConfig workload_cluster(int parallelism) {
  ClusterConfig cfg;
  cfg.host.rx_threads = 2;
  cfg.host.warmup = TimePs::from_us(200);
  cfg.host.measure = TimePs::from_us(800);
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.topology.hosts_per_leaf = 4;
  cfg.receivers = 2;
  cfg.parallelism = parallelism;
  cfg.workload.pattern = workload::Pattern::kIncast;
  cfg.workload.rate_per_s = 40e3;
  cfg.workload.fanout = 3;
  cfg.workload.max_active = 96;
  cfg.workload.size_dist = workload::SizeDist::kFixed;
  cfg.workload.fixed_size = Bytes(16 * 1024);
  return cfg;
}

TEST(WorkloadCluster, ConfigValidates) {
  const auto violations = validate(workload_cluster(0));
  EXPECT_TRUE(violations.empty()) << describe(violations);
}

TEST(WorkloadCluster, InvalidKnobsRejected) {
  auto expect_invalid = [](ClusterConfig cfg, const std::string& what) {
    EXPECT_FALSE(validate(cfg).empty()) << what;
  };
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.rate_per_s = 0.0;
    expect_invalid(cfg, "zero rate");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.fanout = 1000;  // > sender machines
    expect_invalid(cfg, "fanout beyond senders");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.max_active = 1;  // < one slot per sender
    expect_invalid(cfg, "pool smaller than sender count");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.sketch_relative_error = 0.75;
    expect_invalid(cfg, "alpha out of range");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.arrival = workload::Arrival::kBursty;
    cfg.workload.burst_factor = 0.5;
    expect_invalid(cfg, "burst factor below 1");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.host.victim_flows = 2;
    expect_invalid(cfg, "victims with open loop");
  }
  {
    ClusterConfig cfg = workload_cluster(0);
    cfg.antagonist_profile = {4, -1};
    expect_invalid(cfg, "negative antagonist cores");
  }
}

TEST(WorkloadCluster, EngineRunsAndAccounts) {
  ClusterExperiment exp(workload_cluster(0));
  const ClusterMetrics cm = exp.run();
  ASSERT_TRUE(cm.workload.enabled);
  EXPECT_GT(cm.workload.flows_started, 0);
  EXPECT_GT(cm.workload.flows_completed, 0);
  EXPECT_GE(cm.workload.active_flows, 0);
  EXPECT_LE(cm.workload.active_flows, 2 * 96);  // bounded by the pools
  EXPECT_GT(cm.workload.fct_p50_us, 0.0);
  EXPECT_GE(cm.workload.fct_p999_us, cm.workload.fct_p99_us);
  EXPECT_GE(cm.workload.fct_p99_us, cm.workload.fct_p50_us);
  // Slowdown >= 1 up to the sketch's bucket representative error.
  EXPECT_GE(cm.workload.slowdown_p50, 0.9);
  // The merged sketch saw exactly the window's completed flows.
  EXPECT_EQ(cm.workload.fct_us.count(), cm.workload.flows_completed);
}

TEST(WorkloadCluster, TargetFlowsStopsInjection) {
  ClusterConfig cfg = workload_cluster(0);
  cfg.workload.target_flows = 30;  // split across 2 receivers
  ClusterExperiment exp(cfg);
  exp.run();
  std::int64_t injected = 0;
  for (int r = 0; r < exp.num_receivers(); ++r) {
    injected += exp.workload_engine(r)->injected_total();
  }
  // Injection stops at the first arrival at-or-past the per-receiver
  // share, so the overshoot is bounded by fanout-1 per receiver.
  EXPECT_GE(injected, 30);
  EXPECT_LE(injected, 30 + 2 * (cfg.workload.fanout - 1));
}

TEST(WorkloadCluster, SameSeedIsBitwiseReproducible) {
  ClusterExperiment a(workload_cluster(0));
  ClusterExperiment b(workload_cluster(0));
  const ClusterMetrics ma = a.run();
  const ClusterMetrics mb = b.run();
  EXPECT_EQ(ma.workload.flows_started, mb.workload.flows_started);
  EXPECT_EQ(ma.workload.flows_completed, mb.workload.flows_completed);
  EXPECT_EQ(ma.workload.fct_us.encode(), mb.workload.fct_us.encode());
  EXPECT_EQ(ma.workload.slowdown.encode(), mb.workload.slowdown.encode());
  EXPECT_EQ(ma.workload.host_delay_us.encode(), mb.workload.host_delay_us.encode());
}

TEST(WorkloadCluster, SerialAndParallelSketchesBitwiseEqual) {
  // The headline determinism acceptance: merged cluster sketches are
  // bitwise identical for any engine thread count.
  const ClusterMetrics serial = ClusterExperiment(workload_cluster(0)).run();
  for (const int threads : {1, 2, 4}) {
    const ClusterMetrics parallel = ClusterExperiment(workload_cluster(threads)).run();
    EXPECT_EQ(serial.workload.fct_us.encode(), parallel.workload.fct_us.encode())
        << "threads=" << threads;
    EXPECT_EQ(serial.workload.slowdown.encode(), parallel.workload.slowdown.encode())
        << "threads=" << threads;
    EXPECT_EQ(serial.workload.host_delay_us.encode(),
              parallel.workload.host_delay_us.encode())
        << "threads=" << threads;
    EXPECT_EQ(serial.workload.flows_started, parallel.workload.flows_started)
        << "threads=" << threads;
    EXPECT_EQ(serial.workload.flows_completed, parallel.workload.flows_completed)
        << "threads=" << threads;
  }
}

TEST(WorkloadCluster, FctSketchMatchesItsContract) {
  // The sketch IS the FCT measurement; pin its internal consistency:
  // ordered quantiles, the configured relative error, and min/max
  // bracketing within that error.
  ClusterConfig cfg = workload_cluster(0);
  cfg.workload.rate_per_s = 80e3;
  cfg.workload.sketch_relative_error = 0.05;
  const ClusterMetrics cm = ClusterExperiment(cfg).run();
  ASSERT_GT(cm.workload.flows_completed, 100);
  const QuantileSketch& s = cm.workload.fct_us;
  EXPECT_EQ(s.count(), cm.workload.flows_completed);
  EXPECT_DOUBLE_EQ(s.relative_error(), 0.05);
  EXPECT_GE(cm.workload.fct_p50_us * (1 + 0.05), s.min_seen());
  EXPECT_LE(cm.workload.fct_p999_us, s.max_seen() * (1 + 0.05));
}

TEST(WorkloadCluster, AntagonistProfileOverridesPerReceiver) {
  ClusterConfig base = workload_cluster(0);
  ClusterConfig prof = workload_cluster(0);
  prof.antagonist_profile = {8, 0};  // receiver 0 loaded, receiver 1 clean
  const ClusterMetrics mb = ClusterExperiment(base).run();
  const ClusterMetrics mp = ClusterExperiment(prof).run();
  const auto antagonist_gbs = [](const Metrics& m) {
    return m.memory
        .by_class_gbytes_per_sec[static_cast<std::size_t>(mem::MemClass::kAntagonist)];
  };
  // The template runs no antagonists; the profiled receiver 0 must see
  // antagonist memory traffic while receiver 1 stays clean.
  EXPECT_EQ(antagonist_gbs(mb.per_receiver[0]), 0.0);
  EXPECT_GT(antagonist_gbs(mp.per_receiver[0]), 1.0);
  EXPECT_EQ(antagonist_gbs(mp.per_receiver[1]), 0.0);
  EXPECT_TRUE(mp.workload.enabled);
  EXPECT_GT(mp.workload.flows_completed, 0);
}

TEST(WorkloadCluster, CollectivePatternsComplete) {
  for (const auto pattern :
       {workload::Pattern::kUniform, workload::Pattern::kAllreduceRing,
        workload::Pattern::kAllreduceTree}) {
    ClusterConfig cfg = workload_cluster(0);
    cfg.workload.pattern = pattern;
    cfg.workload.rate_per_s = 10e3;
    const ClusterMetrics cm = ClusterExperiment(cfg).run();
    EXPECT_GT(cm.workload.flows_completed, 0) << workload::to_string(pattern);
    if (pattern != workload::Pattern::kUniform) {
      EXPECT_GT(cm.workload.collectives_completed, 0)
          << workload::to_string(pattern);
    }
  }
}

}  // namespace
}  // namespace hicc
