#!/usr/bin/env python3
"""DAG lockstep test: one layering DAG, three copies, zero drift.

The module dependency DAG lives in three places that cannot be merged:
scripts/hicc_lint.py (LAYER_DAG, direct-include rule), the analyzer's
src/analyze/graph.cpp (transitive-closure and cycle rules), and the
machine-parseable ```layer-dag block in DESIGN.md §9 (the human
contract). This test pins all three to the same canonical dump --
"module: dep dep ..." lines, modules and deps sorted -- so editing one
without the others fails ctest instead of silently forking the rules.

Usage: dag_lockstep_test.py <path-to-hicc_analyze-binary>
"""

import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def fail(msg):
    print(f"dag_lockstep_test: FAIL: {msg}")
    sys.exit(1)


def dump(label, argv):
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{label} exited {proc.returncode}: {proc.stderr.strip()}")
    return [line.rstrip() for line in proc.stdout.splitlines() if line.strip()]


def design_dag():
    path = os.path.join(ROOT, "DESIGN.md")
    with open(path) as f:
        text = f.read()
    m = re.search(r"```layer-dag\n(.*?)```", text, re.DOTALL)
    if not m:
        fail("DESIGN.md has no ```layer-dag block")
    return [line.rstrip() for line in m.group(1).splitlines() if line.strip()]


def main():
    if len(sys.argv) != 2:
        fail("usage: dag_lockstep_test.py <hicc_analyze binary>")
    analyzer = sys.argv[1]

    lint = dump("hicc_lint.py --dump-dag",
                [sys.executable, os.path.join(ROOT, "scripts", "hicc_lint.py"),
                 "--dump-dag"])
    ana = dump("hicc_analyze --dump-dag", [analyzer, "--dump-dag"])
    design = design_dag()

    for label, got in (("hicc_analyze", ana), ("DESIGN.md", design)):
        if got != lint:
            print(f"dag_lockstep_test: {label} DAG differs from hicc_lint.py:")
            for line in sorted(set(lint) ^ set(got)):
                side = "lint only" if line in set(lint) else f"{label} only"
                print(f"  [{side}] {line}")
            fail(f"{label} is out of lockstep")

    # Sanity: the dump is well-formed and canonically ordered, so a
    # future format change cannot hide a content drift.
    mods = [line.split(":", 1)[0] for line in lint]
    if mods != sorted(mods):
        fail("dump modules are not sorted")
    known = set(mods)
    for line in lint:
        mod, _, deps = line.partition(":")
        dep_list = deps.split()
        if dep_list != sorted(dep_list):
            fail(f"deps of {mod} are not sorted")
        for d in dep_list:
            if d not in known:
                fail(f"{mod} depends on unknown module {d}")

    print(f"dag_lockstep_test: OK ({len(mods)} modules in lockstep "
          "across hicc_lint.py, hicc_analyze, DESIGN.md)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
