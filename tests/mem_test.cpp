// Unit + property tests for the memory subsystem: DRAM parameters,
// load-latency curve, the fluid fixed-point solver, closed-loop
// antagonist scaling, saturation sharing, QoS throttles, and the
// discrete request path.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "mem/ddio.h"
#include "mem/dram.h"
#include "mem/memory_system.h"
#include "mem/stream_antagonist.h"
#include "sim/simulator.h"

namespace hicc::mem {
namespace {

using namespace hicc::literals;

DramParams paper_params() { return DramParams{}; }

// ----------------------------------------------------------- DramParams

TEST(Dram, TheoreticalBandwidthMatchesPaper) {
  // 6 channels x 2400 MT/s x 8B = 115.2 GB/s per NUMA node (§3).
  EXPECT_NEAR(paper_params().theoretical_bw().gigabytes_per_sec(), 115.2, 1e-9);
}

TEST(Dram, AchievableBandwidthNearStreamMax) {
  // Paper: STREAM achieves ~90 GB/s per NUMA node.
  EXPECT_NEAR(paper_params().achievable_bw().gigabytes_per_sec(), 89.86, 0.1);
}

TEST(Dram, LatencyCurveIdleValue) {
  EXPECT_NEAR(paper_params().latency_at(0.0).ns(), 90.0, 1e-9);
}

TEST(Dram, LatencyCurveIsMonotone) {
  const auto p = paper_params();
  TimePs prev = p.latency_at(0.0);
  for (double rho = 0.05; rho <= 1.0; rho += 0.05) {
    const TimePs cur = p.latency_at(rho);
    EXPECT_GE(cur, prev) << "rho=" << rho;
    prev = cur;
  }
}

TEST(Dram, LatencyCurveCapsAtMax) {
  const auto p = paper_params();
  EXPECT_LE(p.latency_at(5.0), p.max_latency);
  EXPECT_LE(p.latency_at(0.9999), p.max_latency);
}

TEST(Dram, LatencyRisesSharplyNearSaturation) {
  const auto p = paper_params();
  EXPECT_LT(p.latency_at(0.5).ns(), 135.0);
  EXPECT_GT(p.latency_at(0.95).ns(), 350.0);
}

// ----------------------------------------------------- fluid fixed point

struct Harness {
  sim::Simulator sim;
  MemorySystem mem{sim, DramParams{}, Rng(1)};
};

TEST(MemorySystem, IdleOperatingPoint) {
  Harness h;
  h.sim.run_until(1_ms);
  EXPECT_NEAR(h.mem.utilization(), 0.0, 1e-6);
  EXPECT_NEAR(h.mem.current_latency().ns(), 90.0, 1.0);
}

TEST(MemorySystem, SingleAntagonistCoreIsCoreLimited) {
  Harness h;
  StreamAntagonist ant(h.mem, AntagonistParams{}, 1);
  h.sim.run_until(1_ms);
  // One core: 8.5 GB/s demanded, bus nearly idle -> achieves its peak.
  EXPECT_NEAR(ant.achieved().gigabytes_per_sec(), 8.5, 0.2);
}

TEST(MemorySystem, AntagonistScalingIsSublinearNearSaturation) {
  // Per-core bandwidth at 15 cores must be well below the 1-core value
  // (paper: bus saturates around 10 cores at ~90 GB/s).
  std::array<double, 3> total{};
  const std::array<int, 3> cores = {1, 8, 15};
  for (std::size_t i = 0; i < cores.size(); ++i) {
    Harness h;
    StreamAntagonist ant(h.mem, AntagonistParams{}, cores[i]);
    h.sim.run_until(1_ms);
    total[i] = ant.achieved().gigabytes_per_sec();
  }
  EXPECT_NEAR(total[0], 8.5, 0.2);
  EXPECT_GT(total[1], 55.0);   // 8 cores mostly linear (~64-68)
  EXPECT_LT(total[1], 70.0);
  EXPECT_GT(total[2], 80.0);   // 15 cores pinned near achievable
  EXPECT_LT(total[2], 91.0);
  // Sublinear: 15 cores < 15x one core.
  EXPECT_LT(total[2], 15.0 * total[0] * 0.75);
}

TEST(MemorySystem, SaturationNeverExceedsAchievable) {
  Harness h;
  StreamAntagonist ant(h.mem, AntagonistParams{}, 15);
  const ClientId open = h.mem.add_open(MemClass::kCpuCopy, 1.0);
  h.mem.set_demand(open, BitRate::gigabytes_per_sec(20.0));
  h.sim.run_until(100_us);
  h.mem.begin_window();
  h.sim.run_until(1_ms);
  const auto rep = h.mem.window_report();
  EXPECT_LE(rep.total_gbytes_per_sec,
            h.mem.params().achievable_bw().gigabytes_per_sec() * 1.02);
}

TEST(MemorySystem, LatencyRisesWithAntagonistCores) {
  double prev_ns = 0.0;
  for (int cores : {0, 4, 8, 12, 15}) {
    Harness h;
    StreamAntagonist ant(h.mem, AntagonistParams{}, cores);
    h.sim.run_until(1_ms);
    const double ns = h.mem.current_latency().ns();
    EXPECT_GE(ns, prev_ns * 0.99) << cores << " cores";
    prev_ns = ns;
  }
  EXPECT_GT(prev_ns, 300.0);  // loaded latency at 15 cores
}

TEST(MemorySystem, OpenClientDemandIsServedWhenUnsaturated) {
  Harness h;
  const ClientId open = h.mem.add_open(MemClass::kCpuCopy, 0.5);
  h.mem.set_demand(open, BitRate::gigabytes_per_sec(10.0));
  h.sim.run_until(100_us);
  h.mem.begin_window();
  h.sim.run_until(1_ms);
  const auto rep = h.mem.window_report();
  EXPECT_NEAR(rep.by_class_gbytes_per_sec[static_cast<int>(MemClass::kCpuCopy)], 10.0, 0.3);
  // Half reads, half writes.
  EXPECT_NEAR(rep.read_gbytes_per_sec, rep.write_gbytes_per_sec, 0.5);
}

TEST(MemorySystem, ClassThrottleCapsAntagonist) {
  Harness h;
  StreamAntagonist ant(h.mem, AntagonistParams{}, 15);
  h.mem.set_class_throttle(MemClass::kAntagonist, BitRate::gigabytes_per_sec(30.0));
  h.sim.run_until(1_ms);
  EXPECT_NEAR(ant.achieved().gigabytes_per_sec(), 30.0, 1.0);
  // Removing the throttle restores full bandwidth.
  h.mem.set_class_throttle(MemClass::kAntagonist, BitRate(0));
  h.sim.run_until(2_ms);
  EXPECT_GT(ant.achieved().gigabytes_per_sec(), 80.0);
}

TEST(MemorySystem, SetCoresTakesEffect) {
  Harness h;
  StreamAntagonist ant(h.mem, AntagonistParams{}, 0);
  h.sim.run_until(100_us);
  EXPECT_NEAR(ant.achieved().gigabytes_per_sec(), 0.0, 1e-9);
  ant.set_cores(4);
  h.sim.run_until(200_us);
  EXPECT_NEAR(ant.achieved().gigabytes_per_sec(), 4 * 8.5, 1.0);
}

// ------------------------------------------------------- discrete side

TEST(MemorySystem, DiscreteRequestLatencyNearIdleLatency) {
  Harness h;
  h.sim.run_until(100_us);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += h.mem.request(MemClass::kNicDma, 256_B, false).ns();
  // Idle: ~90ns +-10% jitter + ~2.8ns serialization for 256B.
  EXPECT_NEAR(sum / n, 93.0, 5.0);
}

TEST(MemorySystem, DiscreteRequestSlowerUnderContention) {
  Harness h;
  StreamAntagonist ant(h.mem, AntagonistParams{}, 15);
  h.sim.run_until(1_ms);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += h.mem.request(MemClass::kIommuWalk, 64_B, true).ns();
  EXPECT_GT(sum / n, 300.0);
}

TEST(MemorySystem, DiscreteBytesShowUpInUtilization) {
  Harness h;
  h.sim.run_until(10_us);
  // Offer ~11.8 GB/s of discrete writes for a while.
  const Bytes burst = 256_B;
  const auto interval = TimePs::from_ns(256.0 / 11.8);  // 11.8 GB/s
  sim::PeriodicTask pump(h.sim, interval, [&] {
    (void)h.mem.request(MemClass::kNicDma, burst, false);
  });
  h.sim.run_until(200_us);
  EXPECT_NEAR(h.mem.utilization(), 11.8 / 89.86, 0.02);
  pump.stop();
}

TEST(MemorySystem, WindowReportAttributesClasses) {
  Harness h;
  h.mem.begin_window();
  (void)h.mem.request(MemClass::kNicDma, Bytes(1'000'000), false);
  (void)h.mem.request(MemClass::kIommuWalk, Bytes(500'000), true);
  h.sim.run_until(1_ms);
  const auto rep = h.mem.window_report();
  const double nic = rep.by_class_gbytes_per_sec[static_cast<int>(MemClass::kNicDma)];
  const double walk = rep.by_class_gbytes_per_sec[static_cast<int>(MemClass::kIommuWalk)];
  EXPECT_NEAR(nic / walk, 2.0, 0.01);
  EXPECT_NEAR(rep.write_gbytes_per_sec / rep.read_gbytes_per_sec, 2.0, 0.01);
}

// Property: the solver's fixed point is stable -- utilization within
// [0, 1.05] and latency within [idle, max] across random mixes.
TEST(MemorySystem, SolverStaysInBoundsAcrossRandomMixes) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    Harness h;
    StreamAntagonist ant(h.mem, AntagonistParams{},
                         static_cast<int>(rng.below(16)));
    const ClientId open = h.mem.add_open(MemClass::kCpuCopy, rng.uniform());
    h.mem.set_demand(open, BitRate::gigabytes_per_sec(rng.uniform(0.0, 40.0)));
    h.sim.run_until(500_us);
    EXPECT_GE(h.mem.utilization(), 0.0);
    EXPECT_LE(h.mem.utilization(), 1.05);
    EXPECT_GE(h.mem.current_latency(), h.mem.params().idle_latency);
    EXPECT_LE(h.mem.current_latency(), h.mem.params().max_latency);
  }
}

TEST(MemClass, Labels) {
  EXPECT_STREQ(to_string(MemClass::kNicDma), "nic_dma");
  EXPECT_STREQ(to_string(MemClass::kAntagonist), "antagonist");
}

// --------------------------------------------------------------- DDIO

TEST(Ddio, CapacityIsIoWaysShareOfLlc) {
  DdioModel ddio(DdioParams{}, Rng(1));
  // 38.5MB x 2/11 ways x 0.8 efficiency = 5.6MB.
  EXPECT_NEAR(ddio.capacity().mib(), 5.6, 0.05);
}

TEST(Ddio, SmallWorkingSetAlwaysHits) {
  DdioModel ddio(DdioParams{}, Rng(1));
  ddio.set_io_working_set(Bytes::mib(2));
  EXPECT_DOUBLE_EQ(ddio.hit_fraction(), 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ddio.write_hits());
}

TEST(Ddio, LargeWorkingSetMostlyLeaks) {
  DdioModel ddio(DdioParams{}, Rng(1));
  ddio.set_io_working_set(Bytes::mib(144));  // the paper's 12 x 12MB
  EXPECT_LT(ddio.hit_fraction(), 0.05);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += ddio.write_hits();
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, ddio.hit_fraction(), 0.01);
}

TEST(Ddio, DisabledNeverHits) {
  DdioParams p;
  p.enabled = false;
  DdioModel ddio(p, Rng(1));
  ddio.set_io_working_set(Bytes::mib(1));
  EXPECT_FALSE(ddio.enabled());
  EXPECT_DOUBLE_EQ(ddio.hit_fraction(), 0.0);
}

TEST(Ddio, HitFractionMonotoneInWorkingSet) {
  DdioModel ddio(DdioParams{}, Rng(1));
  double prev = 1.1;
  for (double mb : {1.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
    ddio.set_io_working_set(Bytes::mib(mb));
    EXPECT_LE(ddio.hit_fraction(), prev);
    prev = ddio.hit_fraction();
  }
}

}  // namespace
}  // namespace hicc::mem
