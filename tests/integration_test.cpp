// Full-system integration tests: assert the paper's qualitative claims
// end to end on short (8ms warmup + 12ms measure) runs. Runs are
// memoized across tests, so each distinct operating point simulates
// once per test-binary invocation.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/experiment.h"

namespace hicc {
namespace {

using namespace hicc::literals;

struct Point {
  int threads = 12;
  bool iommu = true;
  bool hugepages = true;
  int antagonists = 0;
  int region_mb = 12;
  transport::CcAlgorithm cc = transport::CcAlgorithm::kSwift;
  double throttle = 0.0;
  int pipeline = 1;
  bool ats = false;
  bool strict = false;
  bool remote_numa = false;
  int victims = 0;

  [[nodiscard]] std::string key() const {
    std::ostringstream os;
    os << threads << '|' << iommu << '|' << hugepages << '|' << antagonists << '|'
       << region_mb << '|' << static_cast<int>(cc) << '|' << throttle << '|' << pipeline
       << '|' << ats << '|' << strict << '|' << remote_numa << '|' << victims;
    return os.str();
  }
};

const Metrics& metrics_at(const Point& p) {
  static std::map<std::string, Metrics> cache;
  const auto [it, inserted] = cache.try_emplace(p.key());
  if (inserted) {
    ExperimentConfig cfg;
    cfg.rx_threads = p.threads;
    cfg.iommu_enabled = p.iommu;
    cfg.hugepages = p.hugepages;
    cfg.antagonist_cores = p.antagonists;
    cfg.data_region = Bytes::mib(p.region_mb);
    cfg.cc = p.cc;
    cfg.antagonist_throttle_gbps = p.throttle;
    cfg.read_pipeline = p.pipeline;
    cfg.ats_enabled = p.ats;
    cfg.strict_iommu = p.strict;
    cfg.antagonist_remote_numa = p.remote_numa;
    cfg.victim_flows = p.victims;
    cfg.warmup = 8_ms;
    cfg.measure = 12_ms;
    Experiment exp(cfg);
    it->second = exp.run();
  }
  return it->second;
}

// ------------------------------------------------ baseline (§3 setup)

TEST(Integration, BaselineIommuOffReachesGoodputCeiling) {
  const Metrics& m = metrics_at({.iommu = false});
  EXPECT_GT(m.app_throughput_gbps, 88.0);
  EXPECT_LE(m.app_throughput_gbps, 92.5);
  EXPECT_DOUBLE_EQ(m.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.iotlb_misses_per_packet, 0.0);
}

TEST(Integration, BaselineHostDelayWellUnderTarget) {
  // "when host is not a bottleneck, we measure the delay to be almost
  // always <= 10us" (§3.1).
  const Metrics& m = metrics_at({.iommu = false});
  EXPECT_LT(m.host_delay_p50_us, 10.0);
  EXPECT_LT(m.host_delay_p99_us, 30.0);
}

TEST(Integration, BaselineMemoryFootprintMatchesPaper) {
  // §3.2: ~11.8 GB/s of NIC writes plus ~3.3 GB/s of copy reads.
  const Metrics& m = metrics_at({.iommu = false});
  const double nic =
      m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kNicDma)];
  const double copy =
      m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kCpuCopy)];
  EXPECT_NEAR(nic, 11.8, 1.0);
  EXPECT_NEAR(copy, 3.3, 0.7);
}

TEST(Integration, CpuBottleneckRegionScalesLinearly) {
  const Metrics& m2 = metrics_at({.threads = 2, .iommu = true});
  const Metrics& m4 = metrics_at({.threads = 4, .iommu = true});
  EXPECT_NEAR(m4.app_throughput_gbps / m2.app_throughput_gbps, 2.0, 0.15);
  EXPECT_DOUBLE_EQ(m2.drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(m4.drop_rate, 0.0);
}

// --------------------------------------------- §3.1 IOMMU congestion

TEST(Integration, IotlbMissesJumpBeyondEightThreads) {
  EXPECT_LT(metrics_at({.threads = 8}).iotlb_misses_per_packet, 0.05);
  EXPECT_GT(metrics_at({.threads = 12}).iotlb_misses_per_packet, 1.0);
  EXPECT_GT(metrics_at({.threads = 16}).iotlb_misses_per_packet,
            metrics_at({.threads = 12}).iotlb_misses_per_packet);
}

TEST(Integration, IommuOnDegradesThroughputAtHighThreadCounts) {
  const Metrics& on = metrics_at({.threads = 16, .iommu = true});
  const Metrics& off = metrics_at({.threads = 16, .iommu = false});
  EXPECT_LT(on.app_throughput_gbps, off.app_throughput_gbps * 0.88);
  EXPECT_GT(on.app_throughput_gbps, off.app_throughput_gbps * 0.5);
}

TEST(Integration, IommuCongestionCausesHostDrops) {
  const Metrics& m = metrics_at({.threads = 14});
  EXPECT_GT(m.drop_rate, 0.005);
  EXPECT_LT(m.drop_rate, 0.10);
  EXPECT_EQ(m.fabric_drops, 0);  // all drops are host drops (Fig 1)
}

TEST(Integration, HostDelayPinsNearSwiftTargetUnderCongestion) {
  // The CC protocol holds the operating point around its 100us host
  // target once the interconnect is the bottleneck.
  const Metrics& m = metrics_at({.threads = 14});
  EXPECT_GT(m.host_delay_p50_us, 60.0);
  EXPECT_LT(m.host_delay_p99_us, 200.0);
}

TEST(Integration, TranslationStallsOnlyWithIommu) {
  EXPECT_GT(metrics_at({.threads = 14, .iommu = true}).pcie_translation_stalls, 0);
  EXPECT_EQ(metrics_at({.threads = 14, .iommu = false}).pcie_translation_stalls, 0);
}

// ------------------------------------------------- §3.1 hugepages off

TEST(Integration, FourKPagesRaiseMissesAndCutThroughput) {
  const Metrics& huge = metrics_at({.threads = 12, .hugepages = true});
  const Metrics& small = metrics_at({.threads = 12, .hugepages = false});
  EXPECT_GT(small.iotlb_misses_per_packet, huge.iotlb_misses_per_packet + 0.5);
  EXPECT_LT(small.app_throughput_gbps, huge.app_throughput_gbps * 0.9);
}

TEST(Integration, FourKPagesBottleneckArrivesEarlier) {
  // With 4K pages even 8 threads (which fit the IOTLB with hugepages)
  // miss heavily.
  const Metrics& m = metrics_at({.threads = 8, .hugepages = false});
  EXPECT_GT(m.iotlb_misses_per_packet, 1.0);
}

// -------------------------------------------- §3.1 region size (BDP)

TEST(Integration, LargerRegionsRaiseMissesAndCutThroughput) {
  const Metrics& small = metrics_at({.threads = 12, .region_mb = 4});
  const Metrics& large = metrics_at({.threads = 12, .region_mb = 16});
  EXPECT_LT(small.iotlb_misses_per_packet, large.iotlb_misses_per_packet);
  EXPECT_GT(small.app_throughput_gbps, large.app_throughput_gbps);
}

// ------------------------------------------------ §3.2 memory bus

TEST(Integration, MemoryAntagonismDegradesThroughputWithoutIommu) {
  const Metrics& calm = metrics_at({.iommu = false, .antagonists = 0});
  const Metrics& noisy = metrics_at({.iommu = false, .antagonists = 15});
  EXPECT_LT(noisy.app_throughput_gbps, calm.app_throughput_gbps * 0.9);
  EXPECT_GT(noisy.pcie_write_buffer_stalls, 0);
}

TEST(Integration, DropsAtLowUtilization) {
  // Fig 1 / §3.2's surprise: drops even when the access link is far
  // from full.
  const Metrics& m = metrics_at({.iommu = true, .antagonists = 15});
  EXPECT_LT(m.link_utilization, 0.75);
}

TEST(Integration, MemoryBandwidthSaturatesNearAchievable) {
  const Metrics& m = metrics_at({.iommu = false, .antagonists = 15});
  EXPECT_GT(m.memory.total_gbytes_per_sec, 80.0);
  EXPECT_LT(m.memory.total_gbytes_per_sec, 91.0);
}

TEST(Integration, IommuPlusAntagonismCompounds) {
  const Metrics& off = metrics_at({.iommu = false, .antagonists = 15});
  const Metrics& on = metrics_at({.iommu = true, .antagonists = 15});
  EXPECT_LT(on.app_throughput_gbps, off.app_throughput_gbps);
}

// ---------------------------------------------------- §4 directions

TEST(Integration, MbaThrottleRestoresThroughput) {
  const Metrics& unthrottled = metrics_at({.iommu = false, .antagonists = 15});
  const Metrics& throttled =
      metrics_at({.iommu = false, .antagonists = 15, .throttle = 30.0});
  EXPECT_GT(throttled.app_throughput_gbps, unthrottled.app_throughput_gbps + 5.0);
}

TEST(Integration, TcpLikeDropsGrowWithApplicationBacklog) {
  // §4: "the total in-flight bytes can still exceed NIC buffer
  // capacity" -- a loss-based protocol's exposure scales with how much
  // data the application keeps pending, because nothing but loss
  // bounds it.
  const Metrics& shallow =
      metrics_at({.threads = 14, .cc = transport::CcAlgorithm::kTcpLike});
  const Metrics& deep = metrics_at(
      {.threads = 14, .cc = transport::CcAlgorithm::kTcpLike, .pipeline = 16});
  EXPECT_GT(deep.drop_rate, shallow.drop_rate * 5.0);
  EXPECT_GT(deep.drop_rate, 0.01);
}

TEST(Integration, SwiftBoundsHostDelayRegardlessOfBacklog) {
  // Swift's host target keeps median host delay pinned near 100us even
  // when the application offers 16x more outstanding data.
  const Metrics& deep = metrics_at({.threads = 14, .pipeline = 16});
  EXPECT_LT(deep.host_delay_p50_us, 130.0);
}

TEST(Integration, SubRttHostSignalCutsDrops) {
  const Metrics& swift = metrics_at({.threads = 14});
  const Metrics& signal =
      metrics_at({.threads = 14, .cc = transport::CcAlgorithm::kHostSignal});
  EXPECT_LT(signal.drop_rate, swift.drop_rate * 0.5);
  // ...without sacrificing throughput.
  EXPECT_GT(signal.app_throughput_gbps, swift.app_throughput_gbps * 0.9);
}

TEST(Integration, AtsRecoversThroughputWithProtectionOn) {
  const Metrics& base = metrics_at({.threads = 16});
  const Metrics& ats = metrics_at({.threads = 16, .ats = true});
  const Metrics& off = metrics_at({.threads = 16, .iommu = false});
  EXPECT_GT(ats.app_throughput_gbps, base.app_throughput_gbps * 1.15);
  EXPECT_GT(ats.app_throughput_gbps, off.app_throughput_gbps * 0.95);
  EXPECT_LT(ats.drop_rate, 0.005);
  // Memory protection is still exercised: the IOMMU still misses.
  EXPECT_GT(ats.iotlb_misses_per_packet, 0.5);
}

TEST(Integration, StrictModeForcesMissesEvenWithSmallWorkingSets) {
  // 4 threads fit the IOTLB trivially in loose mode; strict mode still
  // misses on ~every payload access.
  const Metrics& loose = metrics_at({.threads = 4});
  const Metrics& strict = metrics_at({.threads = 4, .strict = true});
  EXPECT_LT(loose.iotlb_misses_per_packet, 0.05);
  EXPECT_GT(strict.iotlb_misses_per_packet, 0.8);
}

TEST(Integration, RemoteNumaPlacementRemovesContention) {
  const Metrics& local = metrics_at({.iommu = false, .antagonists = 15});
  const Metrics& remote =
      metrics_at({.iommu = false, .antagonists = 15, .remote_numa = true});
  EXPECT_GT(remote.app_throughput_gbps, 90.0);
  EXPECT_EQ(remote.nic_buffer_drops, 0);
  EXPECT_GT(remote.app_throughput_gbps, local.app_throughput_gbps);
  // The antagonist still gets its bandwidth -- on the other node.
  EXPECT_GT(remote.remote_memory.total_gbytes_per_sec, 70.0);
  EXPECT_LT(remote.memory.total_gbytes_per_sec, 25.0);
}

TEST(Integration, VictimLatencyInflatesUnderHostCongestion) {
  const Metrics& healthy = metrics_at({.threads = 14, .iommu = false, .victims = 8});
  const Metrics& congested = metrics_at({.threads = 14, .iommu = true, .victims = 8});
  ASSERT_GT(healthy.victim_reads, 50);
  ASSERT_GT(congested.victim_reads, 20);
  EXPECT_GT(congested.victim_read_p99_us, healthy.victim_read_p99_us * 1.5);
}

// ------------------------------------------------------ conservation

TEST(Integration, PacketConservationHolds) {
  // Everything transmitted is delivered, dropped, retransmitted, or in
  // flight; delivered can never exceed transmitted.
  for (const Point& p : {Point{.threads = 12}, Point{.threads = 16},
                         Point{.iommu = false, .antagonists = 15}}) {
    const Metrics& m = metrics_at(p);
    EXPECT_LE(m.delivered_packets, m.data_packets_sent);
    EXPECT_LE(m.nic_buffer_drops, m.data_packets_sent);
    // In-flight at window boundaries is bounded by buffer + pipe.
    EXPECT_NEAR(static_cast<double>(m.data_packets_sent),
                static_cast<double>(m.delivered_packets + m.nic_buffer_drops),
                2000.0)
        << p.key();
  }
}

}  // namespace
}  // namespace hicc
