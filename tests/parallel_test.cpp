// ParallelEngine: conservative windowed execution, canonical
// cross-partition merge order, mailbox bounds, mid-window aborts, and
// the cluster-level determinism contract -- any parallelism >= 1
// produces bitwise-identical metrics/trace output regardless of the
// worker-thread count (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/validate.h"
#include "fault/script.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sweep/sweep.h"
#include "trace/trace.h"

namespace hicc {
namespace {

using sim::ParallelEngine;
using sim::ParallelParams;
using sim::Simulator;

ParallelParams params(int partitions, int threads) {
  ParallelParams pp;
  pp.partitions = partitions;
  pp.threads = threads;
  pp.lookahead = TimePs::from_us(2);
  return pp;
}

// --------------------------------------------- serial degeneration

// A deterministic self-rescheduling chain: each event advances an LCG
// and reschedules itself with a hash-derived delay, so the final state
// is a strict function of the executed event sequence.
void schedule_chain(Simulator& s, std::uint64_t* state, int remaining) {
  const auto delay = TimePs::from_ns(static_cast<double>(*state % 997 + 1));
  s.after(delay, [&s, state, remaining] {
    *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
    if (remaining > 0) schedule_chain(s, state, remaining - 1);
  });
}

// partitions=1 is the degenerate engine: one window per run_until, no
// event splitting -- it must reproduce a raw Simulator bit for bit,
// including across intermediate run_until boundaries.
TEST(ParallelEngine, OnePartitionReproducesRawSimulatorBitwise) {
  std::uint64_t raw_state = 42;
  Simulator raw;
  schedule_chain(raw, &raw_state, 300);
  raw.run_until(TimePs::from_us(5));
  raw.run_until(TimePs::from_us(50));

  std::uint64_t par_state = 42;
  ParallelEngine eng(params(1, 1));
  schedule_chain(eng.sim(0), &par_state, 300);
  eng.run_until(TimePs::from_us(5));
  eng.run_until(TimePs::from_us(50));

  EXPECT_EQ(par_state, raw_state);
  EXPECT_EQ(eng.sim(0).executed(), raw.executed());
  EXPECT_EQ(eng.executed_total(), raw.executed());
  EXPECT_EQ(eng.sim(0).now(), raw.now());
  EXPECT_EQ(eng.now(), raw.now());
  EXPECT_FALSE(eng.aborted());
}

// ------------------------------------------------- window mechanics

TEST(ParallelEngine, WindowCountFollowsLookaheadMath) {
  ParallelEngine eng(params(2, 1));
  eng.run_until(TimePs::from_us(10));  // lookahead 2us -> 5 windows
  EXPECT_EQ(eng.windows(), 5u);
  EXPECT_EQ(eng.now(), TimePs::from_us(10));
  EXPECT_EQ(eng.sim(0).now(), TimePs::from_us(10));
  EXPECT_EQ(eng.sim(1).now(), TimePs::from_us(10));

  // A non-multiple end clips the last window instead of overshooting.
  eng.run_until(TimePs::from_us(13));
  EXPECT_EQ(eng.windows(), 7u);
  EXPECT_EQ(eng.now(), TimePs::from_us(13));
}

TEST(ParallelEngine, BarrierHookFiresOncePerWindow) {
  ParallelEngine eng(params(2, 2));
  int barriers = 0;
  eng.set_barrier_hook(sim::InlineAction([&barriers] { ++barriers; }));
  eng.run_until(TimePs::from_us(6));
  EXPECT_EQ(barriers, 3);
}

// --------------------------------------------- cross-partition merge

// Runs the tie-merge scenario at a given thread count and returns the
// order in which partition 0 observed the mailed events.
std::vector<std::string> run_tie_merge(int threads) {
  ParallelEngine eng(params(3, threads));
  std::vector<std::string> order;
  const TimePs fire = TimePs::from_us(4);
  // Partition 2 posts two events and partition 1 one, all at the SAME
  // destination timestamp -- the zero-delta cross-partition tie. The
  // canonical merge (time, src partition, per-row seq) must order them
  // src1 first, then src2 in posting order, on every thread count.
  eng.sim(2).at(TimePs::from_us(1), [&eng, &order, fire] {
    eng.post(2, 0, fire, [&order] { order.push_back("src2.first"); });
    eng.post(2, 0, fire, [&order] { order.push_back("src2.second"); });
  });
  eng.sim(1).at(TimePs::from_us(1), [&eng, &order, fire] {
    eng.post(1, 0, fire, [&order] { order.push_back("src1"); });
  });
  eng.run_until(TimePs::from_us(10));
  EXPECT_EQ(eng.messages_delivered(), 3u);
  return order;
}

TEST(ParallelEngine, SameTimestampCrossPartitionTiesMergeCanonically) {
  const std::vector<std::string> expected{"src1", "src2.first", "src2.second"};
  EXPECT_EQ(run_tie_merge(1), expected);
  EXPECT_EQ(run_tie_merge(2), expected);
  EXPECT_EQ(run_tie_merge(3), expected);
}

// A message may land exactly on the window boundary (the zero-delay
// limit of the conservative contract: delivery == window end). Local
// events already scheduled at that instant keep their earlier queue
// sequence, so "local before mailed" is part of the deterministic
// order.
TEST(ParallelEngine, BoundaryTimestampDeliveryOrdersAfterLocalEvents) {
  for (int threads : {1, 2}) {
    ParallelEngine eng(params(2, threads));
    std::vector<std::string> order;
    const TimePs boundary = TimePs::from_us(2);  // == first window end
    eng.sim(0).at(boundary, [&order] { order.push_back("local"); });
    eng.sim(1).at(TimePs::from_us(1), [&eng, &order, boundary] {
      eng.post(1, 0, boundary, [&order] { order.push_back("mailed"); });
    });
    eng.run_until(TimePs::from_us(4));
    EXPECT_EQ(order, (std::vector<std::string>{"local", "mailed"})) << threads;
  }
}

// ------------------------------------------------------ cancellation

// Mailbox messages are fire-and-forget: the source cannot revoke one.
// Cancellation is destination-local -- a mailed closure may cancel an
// event that lives in the destination simulator, and revocable effects
// gate on destination state. Both patterns must be thread-count
// invariant.
TEST(ParallelEngine, MailedClosureCancelsDestinationLocalEvent) {
  for (int threads : {1, 2}) {
    ParallelEngine eng(params(2, threads));
    bool bomb_fired = false;
    // Destination-local event, cancellable by its EventId.
    const sim::EventId bomb =
        eng.sim(0).at(TimePs::from_us(9), [&bomb_fired] { bomb_fired = true; });
    // Partition 1 mails a disarm; it executes inside partition 0, where
    // touching partition-0 state (including cancel) is legal.
    eng.sim(1).at(TimePs::from_us(1), [&eng, bomb] {
      eng.post(1, 0, TimePs::from_us(4), [&eng, bomb] { eng.sim(0).cancel(bomb); });
    });
    eng.run_until(TimePs::from_us(20));
    EXPECT_FALSE(bomb_fired) << threads;
  }
}

TEST(ParallelEngine, RevocableEffectGatesOnDestinationState) {
  for (int threads : {1, 2}) {
    ParallelEngine eng(params(2, threads));
    bool cancelled = false;
    bool fired = false;
    eng.sim(1).at(TimePs::from_us(1), [&eng, &cancelled, &fired] {
      // Two messages from the same source row: the "cancel" merges
      // ahead of the "fire" (earlier time wins), so the effect is
      // suppressed even though the fire was already in the mailbox
      // when the cancel was posted.
      eng.post(1, 0, TimePs::from_us(6), [&cancelled, &fired] {
        if (!cancelled) fired = true;
      });
      eng.post(1, 0, TimePs::from_us(4), [&cancelled] { cancelled = true; });
    });
    eng.run_until(TimePs::from_us(10));
    EXPECT_TRUE(cancelled) << threads;
    EXPECT_FALSE(fired) << threads;
  }
}

// ------------------------------------------------------------ aborts

// A dense self-rescheduling chain (fixed 10ns period) that would run
// forever; the watchdog must cut it off inside the first window.
void schedule_dense_chain(Simulator& s, int* count) {
  s.after(TimePs::from_ns(10), [&s, count] {
    ++*count;
    schedule_dense_chain(s, count);
  });
}

TEST(ParallelEngine, WatchdogAbortMidWindowStopsAtTheBarrier) {
  for (int threads : {1, 2}) {
    ParallelEngine eng(params(2, threads));
    sim::WatchdogParams wd;
    wd.max_events = 5;
    eng.sim(1).set_watchdog(wd);
    int c0 = 0;
    int c1 = 0;
    schedule_dense_chain(eng.sim(0), &c0);
    schedule_dense_chain(eng.sim(1), &c1);
    eng.run_until(TimePs::from_us(10));

    EXPECT_TRUE(eng.aborted()) << threads;
    EXPECT_EQ(eng.first_aborted_partition(), 1) << threads;
    EXPECT_EQ(eng.sim(1).abort_cause(), sim::AbortCause::kEventBudget) << threads;
    EXPECT_EQ(eng.sim(1).executed(), 5u) << threads;
    // The run stops at the first barrier after the trip: the healthy
    // partition finishes that window and goes no further.
    EXPECT_EQ(eng.now(), TimePs::from_us(2)) << threads;
    EXPECT_EQ(eng.sim(0).now(), TimePs::from_us(2)) << threads;
    EXPECT_EQ(eng.windows(), 1u) << threads;
  }
}

TEST(ParallelEngine, MailboxOverflowAbortsTheSourcePartition) {
  for (int threads : {1, 2}) {
    ParallelParams pp = params(2, threads);
    pp.mailbox_capacity = 4;
    ParallelEngine eng(pp);
    int delivered = 0;
    eng.sim(1).at(TimePs::from_us(1), [&eng, &delivered] {
      for (int i = 0; i < 10; ++i) {
        eng.post(1, 0, TimePs::from_us(4), [&delivered] { ++delivered; });
      }
    });
    eng.run_until(TimePs::from_us(10));

    EXPECT_TRUE(eng.aborted()) << threads;
    EXPECT_EQ(eng.first_aborted_partition(), 1) << threads;
    EXPECT_EQ(eng.sim(1).abort_cause(), sim::AbortCause::kMailboxOverflow) << threads;
    EXPECT_FALSE(eng.sim(1).abort_reason().empty()) << threads;
    // The messages accepted before the bound hit are drained into the
    // destination's queue (the accepted set is deterministic), but the
    // run stops at the abort barrier before their 4us delivery time.
    eng.run_until(TimePs::from_us(20));  // refuses to advance once aborted
    EXPECT_EQ(eng.messages_delivered(), 4u) << threads;
    EXPECT_EQ(eng.sim(0).pending(), 4u) << threads;
    EXPECT_EQ(delivered, 0) << threads;
    EXPECT_EQ(eng.max_mailbox_depth(), 4u) << threads;
  }
}

TEST(ParallelEngine, CoordinatorPostsBeforeRunAreDelivered) {
  ParallelEngine eng(params(2, 2));
  int ran = 0;
  eng.post(0, 1, TimePs::from_us(1), [&ran] { ++ran; });
  eng.run_until(TimePs::from_us(4));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(eng.messages_delivered(), 1u);
}

// -------------------------------------------------- cluster parity

ClusterConfig parallel_cluster(int parallelism) {
  ClusterConfig cfg;
  cfg.host.rx_threads = 2;
  cfg.host.num_senders = 4;
  cfg.host.warmup = TimePs::from_us(200);
  cfg.host.measure = TimePs::from_us(500);
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.topology.hosts_per_leaf = 4;
  cfg.receivers = 2;
  cfg.parallelism = parallelism;
  return cfg;
}

void expect_bitwise_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.iotlb_misses_per_packet, b.iotlb_misses_per_packet);
  EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec);
  EXPECT_EQ(a.remote_memory.total_gbytes_per_sec, b.remote_memory.total_gbytes_per_sec);
  EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us);
  EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us);
  EXPECT_EQ(a.host_delay_max_us, b.host_delay_max_us);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.rto_fires, b.rto_fires);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.iotlb_misses, b.iotlb_misses);
  EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups);
  EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls);
  EXPECT_EQ(a.pcie_write_buffer_stalls, b.pcie_write_buffer_stalls);
  EXPECT_EQ(a.hol_descriptor_stalls, b.hol_descriptor_stalls);
  EXPECT_EQ(a.victim_reads, b.victim_reads);
  EXPECT_EQ(a.victim_read_p99_us, b.victim_read_p99_us);
  EXPECT_EQ(a.avg_cwnd, b.avg_cwnd);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.run_status, b.run_status);
}

// Runs one traced parallel cluster and returns everything downstream
// output is built from: the metrics, the full sample stream (what the
// CSV/Chrome exporters serialize), and the harvested probe map (what
// sweep JSON's extra.trace.* carries).
struct TracedRun {
  ClusterMetrics metrics;
  std::vector<trace::RecordingSink::Sample> samples;
  std::map<std::string, double> extra;
};

TracedRun run_traced_cluster(int parallelism) {
  ClusterConfig cfg = parallel_cluster(parallelism);
  cfg.host.trace.enabled = true;
  TracedRun out;
  trace::RecordingSink sink;
  ClusterExperiment exp(cfg);
  exp.tracer()->set_sink(&sink);
  out.metrics = exp.run();
  sweep::SweepResult r;
  sweep::harvest_trace_probes(exp.tracer(), r);
  exp.tracer()->finish();
  out.samples = sink.samples();
  out.extra = std::move(r.extra);
  return out;
}

// THE determinism contract: the worker-thread count is a pure
// wall-clock knob. parallelism=1 and parallelism=4 must agree bit for
// bit on metrics, every trace sample, and the sweep-harvested probe
// map -- events_executed included.
TEST(ClusterParallelParity, ThreadCountIsBitwiseInvariant) {
  const TracedRun one = run_traced_cluster(1);
  const TracedRun four = run_traced_cluster(4);

  ASSERT_EQ(one.metrics.per_receiver.size(), 2u);
  ASSERT_EQ(four.metrics.per_receiver.size(), 2u);
  for (std::size_t r = 0; r < one.metrics.per_receiver.size(); ++r) {
    expect_bitwise_identical(one.metrics.per_receiver[r], four.metrics.per_receiver[r]);
  }
  EXPECT_EQ(one.metrics.events_executed, four.metrics.events_executed);
  EXPECT_EQ(one.metrics.total_fabric_drops, four.metrics.total_fabric_drops);
  EXPECT_EQ(one.metrics.partitions, four.metrics.partitions);
  EXPECT_EQ(one.metrics.parallel_windows, four.metrics.parallel_windows);
  EXPECT_EQ(one.metrics.parallel_messages, four.metrics.parallel_messages);

  // Trace output, sample for sample (name, timestamp, value).
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (std::size_t i = 0; i < one.samples.size(); ++i) {
    EXPECT_EQ(one.samples[i].probe, four.samples[i].probe);
    EXPECT_EQ(one.samples[i].time, four.samples[i].time);
    EXPECT_EQ(one.samples[i].value, four.samples[i].value) << one.samples[i].probe;
  }

  // Sweep-JSON probe harvest, key for key.
  EXPECT_EQ(one.extra, four.extra);
}

TEST(ClusterParallelParity, SameSeedReproducesParallelRunsBitwise) {
  ClusterConfig cfg = parallel_cluster(2);
  ASSERT_TRUE(validate(cfg).empty()) << describe(validate(cfg));
  ClusterExperiment a(cfg);
  ClusterExperiment b(cfg);
  const ClusterMetrics ma = a.run();
  const ClusterMetrics mb = b.run();
  ASSERT_EQ(ma.per_receiver.size(), mb.per_receiver.size());
  for (std::size_t r = 0; r < ma.per_receiver.size(); ++r) {
    expect_bitwise_identical(ma.per_receiver[r], mb.per_receiver[r]);
  }
  EXPECT_EQ(ma.events_executed, mb.events_executed);
  EXPECT_GT(ma.partitions, 1);
  EXPECT_GT(ma.parallel_windows, 0u);
  EXPECT_GT(ma.parallel_messages, 0u);
}

// The parallel engine executes the same physical model: packet and
// byte accounting must agree exactly with the legacy single-simulator
// path (event counts differ -- cross-partition deliveries are split
// events -- so events_executed is excluded here; the thread-count
// parity above pins it within the parallel mode).
TEST(ClusterParallelParity, ParallelAgreesWithLegacyOnPhysicalMetrics) {
  ClusterConfig serial_cfg = parallel_cluster(0);
  ClusterConfig par_cfg = parallel_cluster(2);
  ClusterExperiment serial(serial_cfg);
  ClusterExperiment parallel(par_cfg);
  const ClusterMetrics ms = serial.run();
  const ClusterMetrics mp = parallel.run();

  ASSERT_EQ(ms.per_receiver.size(), mp.per_receiver.size());
  for (std::size_t r = 0; r < ms.per_receiver.size(); ++r) {
    const Metrics& a = ms.per_receiver[r];
    const Metrics& b = mp.per_receiver[r];
    EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps) << r;
    EXPECT_EQ(a.link_utilization, b.link_utilization) << r;
    EXPECT_EQ(a.drop_rate, b.drop_rate) << r;
    EXPECT_EQ(a.data_packets_sent, b.data_packets_sent) << r;
    EXPECT_EQ(a.delivered_packets, b.delivered_packets) << r;
    EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops) << r;
    EXPECT_EQ(a.fabric_drops, b.fabric_drops) << r;
    EXPECT_EQ(a.retransmits, b.retransmits) << r;
    EXPECT_EQ(a.rto_fires, b.rto_fires) << r;
    EXPECT_EQ(a.avg_cwnd, b.avg_cwnd) << r;
    EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us) << r;
    EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us) << r;
    EXPECT_EQ(a.host_delay_max_us, b.host_delay_max_us) << r;
    EXPECT_EQ(a.iotlb_misses, b.iotlb_misses) << r;
    EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups) << r;
    EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls) << r;
    EXPECT_EQ(a.pcie_write_buffer_stalls, b.pcie_write_buffer_stalls) << r;
    EXPECT_EQ(a.hol_descriptor_stalls, b.hol_descriptor_stalls) << r;
    EXPECT_EQ(a.victim_reads, b.victim_reads) << r;
    EXPECT_EQ(a.victim_read_p99_us, b.victim_read_p99_us) << r;
    EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec) << r;
    EXPECT_EQ(a.simulated_seconds, b.simulated_seconds) << r;
  }
  EXPECT_EQ(ms.total_fabric_drops, mp.total_fabric_drops);
  EXPECT_EQ(ms.run_status, RunStatus::kOk);
  EXPECT_EQ(mp.run_status, RunStatus::kOk);
}

// ---------------------------------------------- probes & validation

TEST(ClusterParallelTrace, TransportHistogramsArePerSenderMachine) {
  ClusterConfig cfg = parallel_cluster(1);
  cfg.receivers = 1;
  cfg.host.trace.enabled = true;
  ClusterExperiment exp(cfg);
  ASSERT_NE(exp.tracer(), nullptr);
  // Sender machines are hosts 1..7; their controllers observe from
  // their own partitions, so the shared transport histograms become
  // host<g>.-prefixed series (single-writer per partition)...
  EXPECT_TRUE(exp.tracer()->find(trace::host_probe(1, "transport.rtt_us")).has_value());
  EXPECT_TRUE(exp.tracer()->find(trace::host_probe(7, "transport.rtt_us")).has_value());
  EXPECT_FALSE(exp.tracer()->find("transport.rtt_us").has_value());
  // ...while the legacy path keeps the shared catalog names.
  ClusterConfig legacy = cfg;
  legacy.parallelism = 0;
  ClusterExperiment lexp(legacy);
  EXPECT_TRUE(lexp.tracer()->find("transport.rtt_us").has_value());
  EXPECT_FALSE(lexp.tracer()->find(trace::host_probe(1, "transport.rtt_us")).has_value());
}

TEST(ClusterParallelValidation, RejectsUnsupportedParallelConfigs) {
  ClusterConfig cfg = parallel_cluster(2);
  cfg.parallelism = -1;
  std::set<std::string> fields;
  for (const auto& v : validate(cfg)) fields.insert(v.field);
  EXPECT_TRUE(fields.count("parallelism"));

  cfg = parallel_cluster(2);
  cfg.topology.edge_propagation = TimePs(0);
  fields.clear();
  for (const auto& v : validate(cfg)) fields.insert(v.field);
  EXPECT_TRUE(fields.count("topology.edge_propagation"));

  cfg = parallel_cluster(2);
  cfg.faults = fault::parse_script("net.loss@1ms,prob=0.05").script;
  fields.clear();
  for (const auto& v : validate(cfg)) fields.insert(v.field);
  EXPECT_TRUE(fields.count("faults"));
  // The same faults are fine without the engine.
  cfg.parallelism = 0;
  EXPECT_TRUE(validate(cfg).empty()) << describe(validate(cfg));
}

}  // namespace
}  // namespace hicc
