// rob-exit fixture: process-exit primitives outside the sanctioned
// supervisor/worker seam, plus the suppressed twin that must stay
// silent.
#include <cstdlib>

namespace hicc {

int give_up_badly(bool failed) {
  if (failed) exit(2);
  if (failed) std::abort();
  return 0;
}

void justified_harness_death() {
  // hicc-lint: allow(rob-exit) -- fixture: documented harness-only exit
  quick_exit(0);
}

}  // namespace hicc
