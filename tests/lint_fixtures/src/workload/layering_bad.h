// Fixture: the workload layer sits below core (core wires engines into
// ClusterExperiment, never the reverse), and every file under
// src/workload must opt into the hot-path rule family -- a million-flow
// run lives or dies on its per-flow costs.
#pragma once

#include "core/cluster.h"

namespace hicc::workload {

struct UpwardDependency {
  int leaks_core_types = 0;
};

}  // namespace hicc::workload
