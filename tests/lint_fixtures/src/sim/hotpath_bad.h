// Fixture: hot-path rule family (file is opted in via the marker).
// hicc-lint: hotpath
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Engine {
  std::function<void()> callback;  // line 12: hot-std-function

  // hicc-lint: allow(hot-std-function) -- cold config hook, set once
  std::function<void()> config_hook;

  std::vector<int> queue;
  std::vector<int> pool;

  void grow() {
    queue.push_back(1);  // line 21: hot-vector-growth (no queue.reserve anywhere)
  }

  void grow_allowed() {
    // hicc-lint: allow(hot-vector-growth) -- grows to high-water mark once
    pool.push_back(2);
  }

  int* leak() {
    return new int(7);  // line 30: hot-heap-alloc
  }

  std::unique_ptr<int> boxed() {
    return std::make_unique<int>(9);  // line 34: hot-heap-alloc
  }

  std::unique_ptr<int> boxed_allowed() {
    // hicc-lint: allow(hot-heap-alloc) -- construction-time only
    return std::make_unique<int>(9);
  }
};

}  // namespace fixture
