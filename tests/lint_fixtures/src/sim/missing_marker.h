// Fixture: a file under src/sim without the hotpath marker.
#pragma once

namespace fixture {
inline int plain() { return 1; }
}  // namespace fixture
