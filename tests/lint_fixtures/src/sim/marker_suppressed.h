// Fixture: marker requirement waived file-wide (e.g. a pure-constants
// header that never executes on the datapath).
// hicc-lint: allow-file(hot-marker-missing)
#pragma once

namespace fixture {
inline constexpr int kAnswer = 42;
}  // namespace fixture
