// Fixture: docs-par-knob (ParallelParams knobs vs docs/PARALLELISM.md
// lockstep). The fixture doc documents `partitions` and `lookahead`
// only, so `undocumented_knob` fires and `waived_knob` is suppressed.
// hicc-lint: hotpath
#pragma once

namespace fixture {

struct ParallelParams {
  int partitions = 1;
  long lookahead{};
  int undocumented_knob = 0;  // line 12: docs-par-knob
  // hicc-lint: allow(docs-par-knob) -- fixture demo of a waived knob
  int waived_knob = 0;
};

}  // namespace fixture
