// Fixture: docs-lockstep rule family, checked against the fixture
// catalog in tests/lint_fixtures/docs/OBSERVABILITY.md.
#include <string>

struct Tracer {
  void counter(const char*, const char*);
  void gauge(const char*, const char*);
  void histogram(const char*, const char*);
};

inline std::string dynamic_name() { return "nic.computed"; }

inline void register_probes(Tracer* tracer) {
  tracer->gauge("nic.documented_probe", "bytes");        // documented: clean
  tracer->counter("nic.not_documented", "packets");      // line 15: docs-probe-undocumented
  tracer->histogram("nic.partial_hist_us", "us");        // line 16: derived .p50/.p99/.count undocumented
  tracer->histogram("nic.full_hist_us", "us");           // fully documented: clean
  tracer->gauge(dynamic_name().c_str(), "bytes");        // line 18: docs-probe-dynamic
  // hicc-lint: allow(docs-probe-undocumented) -- fixture demo
  tracer->counter("nic.waived_probe", "packets");
  // hicc-lint: allow(docs-probe-dynamic) -- names cataloged elsewhere
  tracer->gauge(dynamic_name().c_str(), "bytes");
}
