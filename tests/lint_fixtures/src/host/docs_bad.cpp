// Fixture: docs-lockstep rule family, checked against the fixture
// catalog in tests/lint_fixtures/docs/OBSERVABILITY.md.
#include <string>

struct Tracer {
  void counter(const char*, const char*);
  void gauge(const char*, const char*);
  void histogram(const char*, const char*);
};

inline std::string dynamic_name() { return "nic.computed"; }
inline std::string host_probe(int, const char* name) { return name; }

inline void register_probes(Tracer* tracer) {
  tracer->gauge("nic.documented_probe", "bytes");        // documented: clean
  tracer->counter("nic.not_documented", "packets");      // line 16: docs-probe-undocumented
  tracer->histogram("nic.partial_hist_us", "us");        // line 17: derived .p50/.p99/.count undocumented
  tracer->histogram("nic.full_hist_us", "us");           // fully documented: clean
  tracer->gauge(dynamic_name().c_str(), "bytes");        // line 19: docs-probe-dynamic
  // hicc-lint: allow(docs-probe-undocumented) -- fixture demo
  tracer->counter("nic.waived_probe", "packets");
  // hicc-lint: allow(docs-probe-dynamic) -- names cataloged elsewhere
  tracer->gauge(dynamic_name().c_str(), "bytes");
  // host_probe(h, "name") registers the documented family host<h>.name.
  tracer->counter(host_probe(3, "nic.documented_per_host").c_str(),
                  "packets");                            // documented family: clean
  tracer->gauge(host_probe(3, "nic.not_per_host").c_str(),
                "bytes");                                // line 28: docs-probe-undocumented (host<h>. form)
  tracer->gauge(host_probe(3, dynamic_name().c_str()).c_str(),
                "bytes");                                // line 30: docs-probe-dynamic (computed inner name)
}
