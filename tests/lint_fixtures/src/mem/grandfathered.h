// Fixture: a finding forgiven by baseline_grandfathered.txt -- used to
// test baseline matching and stale-entry detection.
#pragma once

#include <chrono>

namespace fixture {
inline double old_wallclock() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace fixture
