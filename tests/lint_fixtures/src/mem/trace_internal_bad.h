// Fixture: src/mem may attach probes (trace is an allowed dependency)
// but only through the public trace/trace.h seam.
#pragma once

#include "trace/exporters.h"
// hicc-lint: allow(layer-trace-header) -- fixture demo of a waived include
#include "trace/sinks_internal.h"
#include "trace/trace.h"
