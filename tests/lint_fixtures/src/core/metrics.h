// docs-run-status fixture: a to_string with one label missing from the
// fixture docs/ROBUSTNESS.md, one documented, and one suppressed.
#pragma once

namespace hicc {

enum class RunStatus { kOk, kNotInDocs, kWaived };

inline const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kNotInDocs: return "not_in_docs";
    // hicc-lint: allow(docs-run-status) -- fixture: label waived on purpose
    case RunStatus::kWaived: return "waived_status";
  }
  return "ok";
}

}  // namespace hicc
