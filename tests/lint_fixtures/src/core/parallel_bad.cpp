// Fixture: parallel-engine rule family (par-*). Positives and
// suppressed variants; expected diagnostics live in expected.txt.
#include "sim/parallel.h"

namespace fixture {

static int g_window_count = 0;  // line 7: par-static-mutable

// hicc-lint: allow(par-static-mutable) -- harness-only diagnostic counter
static int g_calibration_allowed = 0;

struct Runner {
  static long hits_;  // line 13: par-static-mutable (class member)
  static constexpr int kBudget = 8;          // const: no finding
  static long tally(long n) { return n; }    // function decl: no finding

  void leak(hicc::sim::ParallelEngine& engine) {
    engine.sim(1).at(hicc::TimePs::from_us(1), [] {});  // line 18: par-engine-post

    // The one legal channel; must not fire.
    engine.post(0, 1, hicc::TimePs::from_us(2), [] {});
  }

  void leak_allowed(hicc::sim::ParallelEngine& engine) {
    // hicc-lint: allow(par-engine-post) -- single-threaded setup before run
    engine.sim(1).at(hicc::TimePs::from_us(1), [] {});
  }
};

}  // namespace fixture
