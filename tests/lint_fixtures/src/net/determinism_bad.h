// Fixture: determinism rule family. Positives and suppressed variants;
// expected diagnostics live in tests/lint_fixtures/expected.txt.
#pragma once

#include <chrono>
#include <cstdlib>
#include <unordered_map>

#include "common/rng.h"

namespace fixture {

inline double wallclock_leak() {
  auto t = std::chrono::steady_clock::now();  // line 14: det-wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline double wallclock_allowed() {
  // hicc-lint: allow(det-wallclock) -- harness timing only, never sim state
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline int libc_rand() {
  return rand();  // line 25: det-rand
}

inline int libc_rand_allowed() {
  return rand();  // hicc-lint: allow(det-rand) -- fixture demo
}

inline hicc::Rng literal_seed() {
  return hicc::Rng(12345);  // line 33: det-seeded-rng
}

inline hicc::Rng literal_seed_allowed() {
  return hicc::Rng(0xbeef);  // hicc-lint: allow(det-seeded-rng) -- fixture demo
}

struct DropTable {
  std::unordered_map<int, long> drops_by_flow;

  long metrics_leak() const {
    long total = 0;
    for (const auto& [flow, n] : drops_by_flow) total += n;  // line 45: det-unordered-iter
    return total;
  }

  long metrics_allowed() const {
    long total = 0;
    // hicc-lint: allow(det-unordered-iter) -- integer sum is order-insensitive
    for (const auto& [flow, n] : drops_by_flow) total += n;
    return total;
  }
};

}  // namespace fixture
