// Fixture: layering rule family. src/net is below src/transport in the
// DESIGN.md DAG, so the first include inverts a dependency edge.
#pragma once

#include "transport/flow.h"
// hicc-lint: allow(layer-dag) -- fixture demo of a waived inversion
#include "transport/swift.h"
#include "net/packet.h"
#include "sim/simulator.h"
