// Fixture: an inline suppression that matches nothing. --strict must
// flag it; the default mode must stay quiet.
#pragma once

namespace fixture {
inline int clean() { return 3; }  // hicc-lint: allow(det-rand) -- pointless
}  // namespace fixture
