// Whole-program analyzer self-test: seeded fixture trees under
// tests/analyze_fixtures/, one per rule family, each pinned to an
// exact golden diagnostic, plus the baseline/suppression workflow and
// the strict-mode clean check on the real src/ tree (the analyzer's
// equivalent of lint_test's strict run).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "analyze/report.h"

namespace hicc::analyze {
namespace {

Options fixture_opts(const std::string& name) {
  Options opts;
  opts.root = std::string(HICC_ANALYZE_FIXTURES) + "/" + name;
  opts.paths = {"src"};
  opts.baseline_path = "/dev/null";  // fixtures never carry a baseline
  return opts;
}

TEST(AnalyzeIncludeGraph, CycleIsOneExactDiagnostic) {
  Result res = run(fixture_opts("cycle"));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/sim/b.h:3:11: ana-include-cycle: include cycle: "
            "src/sim/a.h -> src/sim/b.h -> src/sim/a.h; "
            "headers must form a DAG (DESIGN.md §9)");
  EXPECT_TRUE(res.failed);
}

TEST(AnalyzeIncludeGraph, LayeringUsesTransitiveClosure) {
  // sim -> mem is flagged; workload -> nic is NOT (nic is reachable
  // through host in the DAG's closure even though it is not a direct
  // dependency of workload).
  Result res = run(fixture_opts("layering"));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/sim/bridge.h:3:11: ana-layer-transitive: src/sim must not "
            "depend on src/mem even transitively (closure: common, sim; "
            "DESIGN.md §9 DAG)");
}

TEST(AnalyzeIncludeGraph, UnusedDirectIncludeIsWarningOnly) {
  Result res = run(fixture_opts("unused"));
  EXPECT_TRUE(res.findings.empty());
  ASSERT_EQ(res.warnings.size(), 1u);
  EXPECT_EQ(res.warnings[0].text(),
            "src/net/user.cpp:1:11: ana-include-unused: unused direct "
            "include \"net/unused.h\": nothing it provides is referenced in "
            "this file (advisory -- remove it, or keep it with an allow and "
            "a why)");
  EXPECT_FALSE(res.failed);  // advisory never fails the run
}

TEST(AnalyzeReachability, HotAllocThroughHelperInOtherFile) {
  // The planted allocation lives in src/net/frames.h -- a file with no
  // hotpath marker, invisible to hicc_lint's hot rules -- and is
  // reached only through the call RxQueue::poll -> stage_frame across
  // the nic/net module boundary.
  Result res = run(fixture_opts("hot"));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/net/frames.h:7:39: ana-hot-alloc-reach: allocation "
            "(staged_.push_back) reachable from hot-path function "
            "'RxQueue::poll' via RxQueue::poll -> FrameStager::stage_frame; "
            "steady state must be allocation-free (DESIGN.md §8)");
  EXPECT_EQ(res.findings[0].chain,
            (std::vector<std::string>{"src/nic/rx_queue.h:RxQueue::poll",
                                      "src/net/frames.h:FrameStager::stage_frame"}));
}

TEST(AnalyzeReachability, DeterminismTaintCrossesTwoHops) {
  Result res = run(fixture_opts("det"));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/common/backoff.h:6:37: ana-det-reach: nondeterminism source "
            "(steady_clock::now) reachable from sim entry 'Engine::step' via "
            "Engine::step -> retry_pause -> backoff_ns; runs must be a pure "
            "function of the seed (DESIGN.md §7)");
}

TEST(AnalyzeReachability, MutableGlobalFromPartitionSeam) {
  Result res = run(fixture_opts("par"));
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/host/seam.h:5:30: ana-par-global-reach: mutable global "
            "'g_spin_budget' (src/common/tuning.h:3) referenced by "
            "'drain_budget', reachable from partition seam 'drain_budget' "
            "via drain_budget; partition callbacks must not share unguarded "
            "state (docs/PARALLELISM.md)");
}

TEST(AnalyzeSuppressions, HonoredAllowSilencesFinding) {
  // Same planted allocation as the hot fixture, but the sink line
  // carries an allow(ana-hot-alloc-reach) with a justification.
  Result res = run(fixture_opts("suppress"));
  EXPECT_TRUE(res.findings.empty());
  EXPECT_EQ(res.stats.suppressions_used, 1);
  EXPECT_FALSE(res.failed);
}

TEST(AnalyzeSuppressions, StaleAllowFailsStrict) {
  Options opts = fixture_opts("suppress");
  opts.strict = true;
  Result res = run(opts);
  ASSERT_EQ(res.findings.size(), 1u);
  EXPECT_EQ(res.findings[0].text(),
            "src/nic/rx_queue.h:9:1: ana-unused-suppression: "
            "allow(ana-include-cycle) no longer matches a finding; "
            "remove it");
  EXPECT_TRUE(res.failed);
}

TEST(AnalyzeBaseline, GrandfatherThenStrictCleanRoundTrip) {
  // write_baseline from a failing run; the rerun is baselined-clean,
  // including under --strict (no stale entries).
  Result first = run(fixture_opts("hot"));
  ASSERT_EQ(first.all_error_keys.size(), 1u);
  std::string path = testing::TempDir() + "analyze_baseline_roundtrip.txt";
  ASSERT_TRUE(write_baseline(path, first.all_error_keys));

  Options opts = fixture_opts("hot");
  opts.baseline_path = path;
  opts.strict = true;
  Result second = run(opts);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.stats.baselined, 1);
  EXPECT_TRUE(second.stale_baseline.empty());
  EXPECT_FALSE(second.failed);
}

TEST(AnalyzeReport, JsonShapeIsDeterministic) {
  Result res = run(fixture_opts("hot"));
  std::string a = to_json(res.findings, res.stats);
  std::string b = to_json(res.findings, res.stats);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"hicc.analysis.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"files\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"call_edges\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"rule\": \"ana-hot-alloc-reach\""), std::string::npos);
  EXPECT_NE(a.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(a.find("\"chain\": [\"src/nic/rx_queue.h:RxQueue::poll\", "
                   "\"src/net/frames.h:FrameStager::stage_frame\"]"),
            std::string::npos);
}

TEST(AnalyzeReport, RuleCatalogIsSorted) {
  std::vector<std::string> ids = rule_ids();
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// The analyzer's own gate on the real tree: src/ must be strict-clean
// against the checked-in baseline (mirrors lint_test's strict run).
TEST(AnalyzeRepo, SrcIsStrictClean) {
  Options opts;
  opts.root = HICC_REPO_ROOT;
  opts.paths = {"src"};
  opts.strict = true;
  Result res = run(opts);
  EXPECT_TRUE(res.findings.empty()) << format_text(res, /*strict=*/true);
  EXPECT_FALSE(res.failed) << format_text(res, /*strict=*/true);
  EXPECT_GT(res.stats.functions, 500);   // the index is real, not empty
  EXPECT_GT(res.stats.call_edges, 1000);
}

}  // namespace
}  // namespace hicc::analyze
