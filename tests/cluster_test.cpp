// ClusterExperiment: the degenerate one-leaf mapping reproducing the
// legacy Experiment bitwise, cluster determinism under equal seeds,
// many-to-many traffic, cluster config validation, and the per-host
// probe prefixing of traced cluster runs.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cluster.h"
#include "core/experiment.h"
#include "core/validate.h"
#include "fault/script.h"
#include "trace/trace.h"

namespace hicc {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.rx_threads = 2;
  cfg.num_senders = 4;
  cfg.warmup = TimePs::from_us(200);
  cfg.measure = TimePs::from_us(500);
  return cfg;
}

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.host = small_config();
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.topology.hosts_per_leaf = 4;
  return cfg;
}

void expect_bitwise_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.iotlb_misses_per_packet, b.iotlb_misses_per_packet);
  EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec);
  EXPECT_EQ(a.remote_memory.total_gbytes_per_sec, b.remote_memory.total_gbytes_per_sec);
  EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us);
  EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us);
  EXPECT_EQ(a.host_delay_max_us, b.host_delay_max_us);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.rto_fires, b.rto_fires);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.iotlb_misses, b.iotlb_misses);
  EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups);
  EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls);
  EXPECT_EQ(a.pcie_write_buffer_stalls, b.pcie_write_buffer_stalls);
  EXPECT_EQ(a.hol_descriptor_stalls, b.hol_descriptor_stalls);
  EXPECT_EQ(a.victim_reads, b.victim_reads);
  EXPECT_EQ(a.victim_read_p99_us, b.victim_read_p99_us);
  EXPECT_EQ(a.avg_cwnd, b.avg_cwnd);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// ------------------------------------------------------------ parity

// The PR contract: a one-leaf Clos with transport-only senders IS the
// legacy single-receiver experiment -- same RNG fork order, same link
// sequence, same harvest math -- so every Metrics field, including the
// global executed-event count, reproduces bit for bit.
TEST(ClusterParity, DegenerateClosReproducesLegacyMetricsBitwise) {
  Experiment legacy(small_config());
  const Metrics lm = legacy.run();

  const ClusterConfig cc = degenerate_cluster(small_config());
  ASSERT_TRUE(validate(cc).empty()) << describe(validate(cc));
  ClusterExperiment cluster(cc);
  const ClusterMetrics cm = cluster.run();

  ASSERT_EQ(cm.per_receiver.size(), 1u);
  expect_bitwise_identical(lm, cm.per_receiver[0]);
  EXPECT_EQ(cm.run_status, RunStatus::kOk);
  EXPECT_EQ(cm.total_nic_buffer_drops, lm.nic_buffer_drops);
  EXPECT_EQ(cm.total_data_packets_sent, lm.data_packets_sent);
  EXPECT_EQ(cm.total_fabric_drops, lm.fabric_drops);
}

TEST(ClusterParity, DegenerateMappingPreservesShape) {
  const ClusterConfig cc = degenerate_cluster(small_config());
  EXPECT_EQ(cc.topology.leaves, 1);
  EXPECT_EQ(cc.topology.spines, 1);
  EXPECT_EQ(cc.topology.num_hosts(), small_config().num_senders + 1);
  EXPECT_EQ(cc.receivers, 1);
  EXPECT_FALSE(cc.full_sender_hosts);
}

// ----------------------------------------------------- determinism

TEST(ClusterDeterminism, SameSeedReproducesEveryReceiverBitwise) {
  ClusterConfig cfg = small_cluster();
  cfg.receivers = 2;
  ASSERT_TRUE(validate(cfg).empty()) << describe(validate(cfg));

  ClusterExperiment a(cfg);
  ClusterExperiment b(cfg);
  const ClusterMetrics ma = a.run();
  const ClusterMetrics mb = b.run();

  ASSERT_EQ(ma.per_receiver.size(), 2u);
  ASSERT_EQ(mb.per_receiver.size(), 2u);
  for (std::size_t r = 0; r < ma.per_receiver.size(); ++r) {
    expect_bitwise_identical(ma.per_receiver[r], mb.per_receiver[r]);
  }
  EXPECT_EQ(ma.total_fabric_drops, mb.total_fabric_drops);
  EXPECT_EQ(ma.events_executed, mb.events_executed);
}

TEST(ClusterDeterminism, SeedChangesTheRun) {
  ClusterConfig cfg = small_cluster();
  ClusterExperiment a(cfg);
  cfg.host.seed += 1;
  ClusterExperiment b(cfg);
  const ClusterMetrics ma = a.run();
  const ClusterMetrics mb = b.run();
  EXPECT_NE(ma.events_executed, mb.events_executed);
}

// ---------------------------------------------------- many-to-many

TEST(ClusterRun, ManyToManyDeliversToEveryReceiver) {
  ClusterConfig cfg = small_cluster();
  cfg.receivers = 2;  // 2 receivers x 6 sender machines across 2 leaves
  ASSERT_TRUE(validate(cfg).empty()) << describe(validate(cfg));

  ClusterExperiment exp(cfg);
  EXPECT_EQ(exp.num_receivers(), 2);
  EXPECT_EQ(exp.num_sender_hosts(), 6);
  const ClusterMetrics m = exp.run();

  ASSERT_EQ(m.per_receiver.size(), 2u);
  EXPECT_EQ(m.run_status, RunStatus::kOk);
  double total = 0.0;
  for (const Metrics& r : m.per_receiver) {
    EXPECT_GT(r.delivered_packets, 0);
    EXPECT_GT(r.app_throughput_gbps, 0.0);
    total += r.app_throughput_gbps;
  }
  EXPECT_EQ(m.total_app_throughput_gbps, total);
  // The paper's claim, per receiver: the fabric is uncongested; any
  // loss happens at the hosts.
  EXPECT_EQ(m.total_fabric_drops, 0);
}

TEST(ClusterRun, IncastKeepsAllDropsAtTheHost) {
  ClusterConfig cfg = small_cluster();
  ASSERT_TRUE(validate(cfg).empty());
  ClusterExperiment exp(cfg);
  const ClusterMetrics m = exp.run();
  ASSERT_EQ(m.per_receiver.size(), 1u);
  EXPECT_GT(m.per_receiver[0].delivered_packets, 0);
  EXPECT_EQ(m.per_receiver[0].fabric_drops, 0);
  EXPECT_EQ(m.total_fabric_drops, 0);
  EXPECT_EQ(m.run_status, RunStatus::kOk);
}

// ------------------------------------------------------- validation

TEST(ClusterValidation, AcceptsDefaultAndDegenerateConfigs) {
  EXPECT_TRUE(validate(ClusterConfig{}).empty());
  EXPECT_TRUE(validate(small_cluster()).empty());
  EXPECT_TRUE(validate(degenerate_cluster(ExperimentConfig{})).empty());
}

TEST(ClusterValidation, AggregatesTopologyHostAndFaultViolations) {
  ClusterConfig bad = small_cluster();
  bad.topology.spines = 0;                       // topology shape
  bad.topology.host_link_rate = BitRate::gbps(0);  // dead edge links
  bad.receivers = 99;                            // more receivers than hosts
  bad.host.rx_threads = 0;                       // per-host template
  bad.faults = fault::parse_script("net.link_down@1ms,link=2").script;  // legacy key

  const auto violations = validate(bad);
  std::set<std::string> fields;
  for (const auto& v : violations) fields.insert(v.field);
  EXPECT_TRUE(fields.count("topology.spines"));
  EXPECT_TRUE(fields.count("topology.host_link_rate"));
  EXPECT_TRUE(fields.count("receivers"));
  EXPECT_TRUE(fields.count("host.rx_threads"));
  // Cluster scripts address links by topology coordinates; the legacy
  // `link=` index is rejected as unknown.
  EXPECT_TRUE(fields.count("faults[0].link"));
}

TEST(ClusterValidation, ChecksTopologyFaultTargets) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = fault::parse_script(
                   "net.link_down@1ms,leaf=5,spine=0;"  // leaf out of range
                   "net.rate@1ms,spine=1,gbps=25;"      // spine without leaf
                   "net.loss@1ms,host=64,prob=0.1;"     // host out of range
                   "net.link_down@1ms,host=2,leaf=0,spine=1")  // exclusive
                   .script;
  const auto violations = validate(cfg);
  std::set<std::string> fields;
  for (const auto& v : violations) fields.insert(v.field);
  EXPECT_TRUE(fields.count("faults[0].leaf"));
  EXPECT_TRUE(fields.count("faults[1].leaf"));
  EXPECT_TRUE(fields.count("faults[2].host"));
  EXPECT_TRUE(fields.count("faults[3].host"));

  cfg.faults = fault::parse_script(
                   "net.link_down@1ms,leaf=1,spine=0;"
                   "net.rate@1ms,host=3,gbps=25;"
                   "net.loss@1ms,prob=0.05")
                   .script;
  EXPECT_TRUE(validate(cfg).empty()) << describe(validate(cfg));
}

// ----------------------------------------------------- trace probes

TEST(ClusterTrace, ComponentProbesCarryTheHostPrefix) {
  ClusterConfig cfg = small_cluster();
  cfg.receivers = 2;
  cfg.host.trace.enabled = true;
  ClusterExperiment exp(cfg);
  ASSERT_NE(exp.tracer(), nullptr);

  // Every receiver's component probes appear under its own prefix...
  for (int r = 0; r < 2; ++r) {
    for (const char* name : {"nic.buffer_drops", "iommu.iotlb_misses", "mem.bandwidth_gbps",
                             "host.rx_queue_pkts"}) {
      EXPECT_TRUE(exp.tracer()->find(trace::host_probe(r, name)).has_value())
          << trace::host_probe(r, name);
    }
    // ...plus the cluster-level port accounting for that host.
    EXPECT_TRUE(exp.tracer()->find(trace::host_probe(r, "cluster.port_drops")).has_value());
    EXPECT_TRUE(
        exp.tracer()->find(trace::host_probe(r, "cluster.port_queue_bytes")).has_value());
  }
  // Quiescent sender machines carry full stacks too (host 2 is the
  // first sender machine).
  EXPECT_TRUE(exp.tracer()->find(trace::host_probe(2, "nic.buffer_drops")).has_value());
  // The run-global transport gauge stays unprefixed, and no unprefixed
  // component probe leaks into a cluster run.
  EXPECT_TRUE(exp.tracer()->find("transport.cwnd_avg").has_value());
  EXPECT_FALSE(exp.tracer()->find("nic.buffer_drops").has_value());
}

TEST(ClusterTrace, HostProbeSpellsThePrefix) {
  EXPECT_EQ(trace::host_prefix(3), "host3.");
  EXPECT_EQ(trace::host_probe(0, "nic.buffer_drops"), "host0.nic.buffer_drops");
}

}  // namespace
}  // namespace hicc
