// Tests for the transport layer: Swift window dynamics (increase,
// decrease, dual fabric/host targets, fractional windows), the
// TCP-like baseline, sender-flow pacing, selective acks, fast
// retransmit, RTO recovery, and the sender host's request handling.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/flow.h"
#include "transport/sender_host.h"
#include "transport/swift.h"

namespace hicc::transport {
namespace {

using namespace hicc::literals;

AckInfo ack(TimePs rtt, TimePs host_delay) { return AckInfo{rtt, host_delay}; }

// ----------------------------------------------------------- SwiftCc

TEST(SwiftCc, IncreasesWhenBelowTargets) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  const double w0 = cc.cwnd();
  for (int i = 0; i < 10; ++i) cc.on_ack(ack(20_us, 5_us));
  EXPECT_GT(cc.cwnd(), w0);
}

TEST(SwiftCc, AdditiveIncreaseSlowsAsWindowGrows) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  double prev = cc.cwnd();
  double first_step = 0.0, last_step = 0.0;
  for (int i = 0; i < 100; ++i) {
    cc.on_ack(ack(20_us, 5_us));
    const double step = cc.cwnd() - prev;
    if (i == 0) first_step = step;
    last_step = step;
    prev = cc.cwnd();
  }
  EXPECT_GT(first_step, last_step);
}

TEST(SwiftCc, DecreasesWhenHostDelayExceedsTarget) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  for (int i = 0; i < 40; ++i) cc.on_ack(ack(20_us, 5_us));
  const double w = cc.cwnd();
  sim.run_until(1_ms);
  cc.on_ack(ack(250_us, 200_us));  // host delay 2x target
  EXPECT_LT(cc.cwnd(), w);
}

TEST(SwiftCc, DecreaseAtMostOncePerRtt) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  for (int i = 0; i < 40; ++i) cc.on_ack(ack(20_us, 5_us));
  sim.run_until(1_ms);
  cc.on_ack(ack(250_us, 200_us));
  const double after_first = cc.cwnd();
  cc.on_ack(ack(250_us, 200_us));  // same instant: gated
  EXPECT_DOUBLE_EQ(cc.cwnd(), after_first);
}

TEST(SwiftCc, FabricAndHostWindowsAreIndependent) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  for (int i = 0; i < 40; ++i) cc.on_ack(ack(20_us, 5_us));
  sim.run_until(1_ms);
  // Large fabric delay, small host delay: only fabric window drops.
  const double host_before = cc.host_cwnd();
  cc.on_ack(ack(200_us, 5_us));
  EXPECT_LT(cc.fabric_cwnd(), host_before);
  EXPECT_GE(cc.host_cwnd(), host_before);
  EXPECT_DOUBLE_EQ(cc.cwnd(), std::min(cc.fabric_cwnd(), cc.host_cwnd()));
}

TEST(SwiftCc, HostDelayBelowTargetNeverTriggersDecrease) {
  // The paper's central dynamics: 100us host target means delays up
  // to 100us look fine to Swift even while the NIC buffer overflows.
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  for (int i = 0; i < 20; ++i) cc.on_ack(ack(20_us, 5_us));
  const double w = cc.cwnd();
  sim.run_until(1_ms);
  cc.on_ack(ack(110_us, 90_us));  // 90us host delay < 100us target
  EXPECT_GE(cc.cwnd(), w);
}

TEST(SwiftCc, WindowClampedToBounds) {
  sim::Simulator sim;
  SwiftParams p;
  SwiftCc cc(sim, p);
  for (int i = 0; i < 100000; ++i) cc.on_ack(ack(20_us, 5_us));
  EXPECT_LE(cc.cwnd(), p.max_cwnd);
  for (int i = 0; i < 1000; ++i) {
    sim.run_until(sim.now() + 1_ms);
    cc.on_ack(ack(2000_us, 1900_us));
  }
  EXPECT_GE(cc.cwnd(), p.min_cwnd);
}

TEST(SwiftCc, LossHalvesWindow) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{});
  for (int i = 0; i < 40; ++i) cc.on_ack(ack(20_us, 5_us));
  const double w = cc.cwnd();
  sim.run_until(1_ms);
  cc.on_loss();
  EXPECT_NEAR(cc.cwnd(), w * 0.5, 0.02 * w);
}

TEST(SwiftCc, HostSignalIgnoredUnlessEnabled) {
  sim::Simulator sim;
  SwiftCc plain(sim, SwiftParams{});
  SwiftCc reactive(sim, SwiftParams{}, /*react_to_host_signal=*/true);
  for (int i = 0; i < 40; ++i) {
    plain.on_ack(ack(20_us, 5_us));
    reactive.on_ack(ack(20_us, 5_us));
  }
  const double wp = plain.cwnd();
  const double wr = reactive.cwnd();
  sim.run_until(1_ms);
  plain.on_host_signal();
  reactive.on_host_signal();
  EXPECT_DOUBLE_EQ(plain.cwnd(), wp);
  EXPECT_NEAR(reactive.cwnd(), wr * (1.0 - SwiftParams{}.host_signal_mdf), 1e-9);
}

TEST(SwiftCc, HostSignalCooldown) {
  sim::Simulator sim;
  SwiftCc cc(sim, SwiftParams{}, true);
  for (int i = 0; i < 40; ++i) cc.on_ack(ack(20_us, 5_us));
  sim.run_until(1_ms);
  cc.on_host_signal();
  const double w = cc.cwnd();
  cc.on_host_signal();  // within cooldown: ignored
  EXPECT_DOUBLE_EQ(cc.cwnd(), w);
  sim.run_until(sim.now() + 60_us);  // past the 50us cooldown
  cc.on_host_signal();
  EXPECT_LT(cc.cwnd(), w);
}

TEST(TcpLikeCc, GrowsWithoutDelaySignal) {
  sim::Simulator sim;
  TcpLikeCc cc(sim);
  const double w0 = cc.cwnd();
  // Huge delays do not slow a loss-based protocol down.
  for (int i = 0; i < 50; ++i) cc.on_ack(ack(500_us, 450_us));
  EXPECT_GT(cc.cwnd(), w0 + 5.0);
}

TEST(TcpLikeCc, LossHalvesButNotBelowMin) {
  sim::Simulator sim;
  TcpLikeCc cc(sim, /*min_cwnd=*/1.0);
  for (int i = 0; i < 50; ++i) cc.on_ack(ack(20_us, 5_us));
  const double w = cc.cwnd();
  sim.run_until(1_ms);
  cc.on_loss();
  EXPECT_NEAR(cc.cwnd(), w * 0.5, 1e-9);
  for (int i = 0; i < 20; ++i) {
    sim.run_until(sim.now() + 10_ms);
    cc.on_loss();
  }
  EXPECT_GE(cc.cwnd(), 1.0);
}

// -------------------------------------------------------- SenderFlow

struct FlowHarness {
  sim::Simulator sim;
  net::WireFormat wire;
  std::vector<net::Packet> sent;
  std::unique_ptr<SenderFlow> flow;

  explicit FlowHarness(double fixed_cwnd = 0.0) {
    std::unique_ptr<CongestionControl> cc;
    if (fixed_cwnd > 0.0) {
      cc = std::make_unique<FixedCc>(fixed_cwnd);
    } else {
      cc = std::make_unique<SwiftCc>(sim, SwiftParams{});
    }
    flow = std::make_unique<SenderFlow>(sim, 0, 0, wire, std::move(cc),
                                        [this](net::Packet p) {
                                          sent.push_back(std::move(p));
                                          return true;
                                        });
  }

  struct FixedCc final : CongestionControl {
    explicit FixedCc(double w) : w_(w) {}
    void on_ack(const AckInfo&) override {}
    void on_loss() override { ++losses; }
    [[nodiscard]] double cwnd() const override { return w_; }
    [[nodiscard]] const char* name() const override { return "fixed"; }
    double w_;
    int losses = 0;
  };

  /// Builds the ACK the receiver would send for `data`.
  net::Packet make_ack(const net::Packet& data, TimePs host_delay = 5_us) {
    net::Packet a;
    a.kind = net::PacketKind::kAck;
    a.flow = data.flow;
    a.sender = data.sender;
    a.seq = data.seq;
    a.wire = wire.ack_wire;
    a.sent_at = data.sent_at;
    a.echoed_host_delay = host_delay;
    return a;
  }
};

TEST(SenderFlow, SendsUpToWindow) {
  FlowHarness h(4.0);
  h.flow->enqueue_packets(10);
  EXPECT_EQ(h.sent.size(), 4u);
  EXPECT_EQ(h.flow->outstanding(), 4u);
  EXPECT_EQ(h.flow->pending(), 6);
}

TEST(SenderFlow, AckReleasesWindow) {
  FlowHarness h(2.0);
  h.flow->enqueue_packets(4);
  ASSERT_EQ(h.sent.size(), 2u);
  h.sim.run_until(20_us);
  h.flow->on_ack(h.make_ack(h.sent[0]));
  EXPECT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(h.flow->stats().acks_received, 1);
}

TEST(SenderFlow, SequenceNumbersMonotone) {
  FlowHarness h(8.0);
  h.flow->enqueue_packets(8);
  for (std::size_t i = 0; i < h.sent.size(); ++i) {
    EXPECT_EQ(h.sent[i].seq, static_cast<std::int64_t>(i));
  }
}

TEST(SenderFlow, FractionalWindowPacesPackets) {
  FlowHarness h(0.5);
  h.flow->enqueue_packets(3);
  EXPECT_EQ(h.sent.size(), 1u);  // one allowed immediately
  // Acknowledge it so the window frees, but pacing should still space
  // the next send by ~srtt/cwnd = 2x srtt.
  h.sim.run_until(20_us);
  h.flow->on_ack(h.make_ack(h.sent[0]));
  const std::size_t after_ack = h.sent.size();
  EXPECT_EQ(after_ack, 1u);  // pacing gate holds
  h.sim.run_until(100_us);
  EXPECT_EQ(h.sent.size(), 2u);
}

TEST(SenderFlow, FastRetransmitOnReordering) {
  FlowHarness h(8.0);
  h.flow->enqueue_packets(8);
  ASSERT_EQ(h.sent.size(), 8u);
  h.sim.run_until(100_us);
  // Ack 1,2,...,5 but never 0: sequence 0 is presumed lost.
  for (int i = 1; i <= 5; ++i) h.flow->on_ack(h.make_ack(h.sent[static_cast<std::size_t>(i)]));
  EXPECT_GE(h.flow->stats().retransmits, 1);
  // The retransmitted packet has seq 0.
  bool retx_seq0 = false;
  for (std::size_t i = 8; i < h.sent.size(); ++i) retx_seq0 |= (h.sent[i].seq == 0);
  EXPECT_TRUE(retx_seq0);
}

TEST(SenderFlow, RtoRecoversFromSilentLoss) {
  FlowHarness h(2.0);
  h.flow->enqueue_packets(2);
  ASSERT_EQ(h.sent.size(), 2u);
  // No acks at all: the RTO must refire the packets.
  h.sim.run_until(5_ms);
  EXPECT_GE(h.flow->stats().rto_fires, 1);
  EXPECT_GT(h.sent.size(), 2u);
}

TEST(SenderFlow, NoRetransmitWithoutGap) {
  FlowHarness h(4.0);
  h.flow->enqueue_packets(4);
  h.sim.run_until(20_us);
  for (int i = 0; i < 4; ++i) h.flow->on_ack(h.make_ack(h.sent[static_cast<std::size_t>(i)]));
  EXPECT_EQ(h.flow->stats().retransmits, 0);
  EXPECT_EQ(h.flow->outstanding(), 0u);
}

// -------------------------------------------------------- SenderHost

TEST(SenderHost, ReadRequestEnqueuesPackets) {
  sim::Simulator sim;
  net::WireFormat wire;
  std::vector<net::Packet> sent;
  SenderHost host(sim, 3, wire, [&](net::Packet p) {
    sent.push_back(std::move(p));
    return true;
  });
  host.add_flow(7, std::make_unique<SwiftCc>(sim, SwiftParams{}));

  net::Packet req;
  req.kind = net::PacketKind::kReadRequest;
  req.flow = 7;
  req.payload = Bytes(16 * 1024);  // 16KB read = 4 MTU packets
  host.on_packet(req);
  // cwnd starts at 1: one packet in flight, 3 queued.
  EXPECT_EQ(sent.size(), 1u);
  EXPECT_EQ(host.flows().at(7)->pending(), 3);
  EXPECT_EQ(sent[0].sender, 3);
}

TEST(SenderHost, IgnoresUnknownFlow) {
  sim::Simulator sim;
  net::WireFormat wire;
  SenderHost host(sim, 0, wire, [](net::Packet) { return true; });
  net::Packet req;
  req.kind = net::PacketKind::kReadRequest;
  req.flow = 99;
  req.payload = Bytes(16 * 1024);
  host.on_packet(req);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace hicc::transport
