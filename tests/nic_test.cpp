// Tests for the NIC: buffer accounting and tail drops, DMA pipeline
// and delivery, descriptor flow, per-packet IOMMU access pattern
// (payload/descriptor/CQ/ACK), 4K-vs-2M payload translations, the Tx
// path, and the host-signal hook.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "iommu/iommu.h"
#include "mem/memory_system.h"
#include "nic/nic.h"
#include "net/packet.h"
#include "pcie/pcie_bus.h"
#include "sim/simulator.h"

namespace hicc::nic {
namespace {

using namespace hicc::literals;

struct Delivered {
  int thread;
  net::Packet pkt;
  TimePs arrival;
  TimePs at;
};

struct Harness {
  sim::Simulator sim;
  mem::MemorySystem mem{sim, mem::DramParams{}, Rng(1)};
  std::optional<iommu::Iommu> iommu;
  std::optional<pcie::PcieBus> pcie;
  std::optional<Nic> nic;
  std::vector<Delivered> delivered;
  std::vector<net::Packet> transmitted;
  int pressure_signals = 0;
  net::WireFormat wire;

  explicit Harness(bool iommu_on = true, int threads = 2,
                   iommu::PageSize page = iommu::PageSize::k2M,
                   Bytes region = Bytes::mib(12), NicParams np = NicParams{}) {
    iommu::IommuParams ip;
    ip.enabled = iommu_on;
    iommu.emplace(sim, mem, ip);
    pcie.emplace(sim, mem, *iommu, pcie::PcieParams{});
    nic.emplace(sim, *pcie, *iommu, np, threads, region, page,
                [threads](std::int32_t flow) { return flow % threads; }, Rng(2));
    nic->set_callbacks(Nic::Callbacks{
        .deliver =
            [this](int t, net::Packet p, TimePs arr) {
              delivered.push_back(Delivered{t, std::move(p), arr, sim.now()});
            },
        .transmit =
            [this](net::Packet p) {
              transmitted.push_back(std::move(p));
              return true;
            },
        .buffer_pressure = [this] { ++pressure_signals; },
    });
  }

  net::Packet data(std::int32_t flow, std::int64_t seq) {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.flow = flow;
    p.sender = flow;
    p.seq = seq;
    p.payload = wire.mtu_payload;
    p.wire = wire.data_wire();
    return p;
  }
};

TEST(Nic, DeliversPacketToOwningThread) {
  Harness h;
  h.nic->on_arrival(h.data(/*flow=*/1, 0));
  h.sim.run_until(100_us);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].thread, 1);  // flow 1 % 2 threads
  EXPECT_EQ(h.delivered[0].pkt.seq, 0);
  EXPECT_EQ(h.nic->stats().delivered, 1);
  EXPECT_EQ(h.nic->stats().bytes_delivered, 4096);
}

TEST(Nic, DeliveryLatencyIsMicrosecondScale) {
  Harness h;
  h.nic->on_arrival(h.data(0, 0));
  h.sim.run_until(100_us);
  ASSERT_EQ(h.delivered.size(), 1u);
  const TimePs dma = h.delivered[0].at - h.delivered[0].arrival;
  // 16 TLPs + walks + CQ write: ~1-10us when idle.
  EXPECT_GT(dma.us(), 0.5);
  EXPECT_LT(dma.us(), 20.0);
}

TEST(Nic, BufferFillsAndTailDrops) {
  Harness h;
  // Stop the drain completely: no descriptors.
  NicParams np;
  np.descriptors_per_queue = 0;
  Harness stalled(true, 2, iommu::PageSize::k2M, Bytes::mib(12), np);
  const int to_send = 300;  // 300 * 4452B > 1MB buffer
  for (int i = 0; i < to_send; ++i) stalled.nic->on_arrival(stalled.data(0, i));
  EXPECT_GT(stalled.nic->stats().buffer_drops, 0);
  EXPECT_LE(stalled.nic->buffer_used(), NicParams{}.input_buffer);
  // Conservation: arrivals = drops + buffered.
  const auto& s = stalled.nic->stats();
  EXPECT_EQ(s.arrivals, to_send);
  EXPECT_EQ(s.arrivals - s.buffer_drops,
            stalled.nic->buffer_used().count() / stalled.wire.data_wire().count());
}

TEST(Nic, PostingDescriptorsUnblocksHolStall) {
  NicParams np;
  np.descriptors_per_queue = 0;
  Harness h(true, 2, iommu::PageSize::k2M, Bytes::mib(12), np);
  h.nic->on_arrival(h.data(0, 0));
  h.sim.run_until(100_us);
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_GT(h.nic->stats().hol_descriptor_stalls, 0);
  h.nic->post_descriptors(0, 8);
  h.sim.run_until(200_us);
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(Nic, BufferDrainsToZeroAfterBurst) {
  Harness h;
  for (int i = 0; i < 50; ++i) h.nic->on_arrival(h.data(i % 2, i));
  h.sim.run_until(5_ms);
  EXPECT_EQ(h.delivered.size(), 50u);
  EXPECT_EQ(h.nic->buffer_used().count(), 0);
}

TEST(Nic, HugepagePayloadUsesOneTranslationPerPacket) {
  Harness h(true, 1);
  for (int i = 0; i < 20; ++i) h.nic->on_arrival(h.data(0, i));
  h.sim.run_until(5_ms);
  ASSERT_EQ(h.delivered.size(), 20u);
  // Steady state: all pages cached (working set = 6 data pages + 8
  // control pages << 128). Lookups per packet: 16 payload TLPs + 1
  // descriptor read + 1 CQ write = 18.
  const auto& is = h.iommu->stats();
  EXPECT_NEAR(static_cast<double>(is.lookups) / 20.0, 18.0, 2.0);
  // Cold misses only: at most data+control pages.
  EXPECT_LE(is.misses, 6 + 8 + 2);
}

TEST(Nic, FourKPagesDoubleThePayloadTranslations) {
  Harness h(true, 1, iommu::PageSize::k4K, Bytes::mib(1));
  for (int i = 0; i < 200; ++i) h.nic->on_arrival(h.data(0, i));
  h.sim.run_until(20_ms);
  ASSERT_EQ(h.delivered.size(), 200u);
  // 256 data pages + control pages exceed the 128-entry IOTLB: payload
  // translations now miss frequently (close to 2 distinct pages per
  // packet).
  const double misses_per_pkt = static_cast<double>(h.iommu->stats().misses) / 200.0;
  EXPECT_GT(misses_per_pkt, 1.0);
}

TEST(Nic, TxPathFetchesAndTransmits) {
  Harness h;
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.flow = 0;
  ack.sender = 0;
  ack.seq = 5;
  ack.wire = h.wire.ack_wire;
  h.nic->send_packet(std::move(ack), 0);
  h.sim.run_until(100_us);
  ASSERT_EQ(h.transmitted.size(), 1u);
  EXPECT_EQ(h.transmitted[0].seq, 5);
  EXPECT_EQ(h.nic->stats().tx_packets, 1);
  EXPECT_GE(h.pcie->stats().read_tlps, 1);
}

TEST(Nic, BufferPressureSignalFires) {
  NicParams np;
  np.descriptors_per_queue = 0;  // nothing drains
  np.signal_threshold = 0.10;
  Harness h(true, 1, iommu::PageSize::k2M, Bytes::mib(12), np);
  for (int i = 0; i < 100; ++i) h.nic->on_arrival(h.data(0, i));
  EXPECT_GT(h.pressure_signals, 0);
}

TEST(Nic, DescriptorFetchesAccounted) {
  Harness h;
  for (int i = 0; i < 10; ++i) h.nic->on_arrival(h.data(0, i));
  h.sim.run_until(5_ms);
  // One prefetch read per consumed descriptor (plus the initial
  // prefetch window).
  EXPECT_GE(h.nic->stats().descriptor_fetches, 10);
}

TEST(Nic, CreditPoolSmallerThanOnePacketStillDelivers) {
  // Regression: with a posted-credit pool smaller than one packet's
  // TLP stream (16 x 286B wire), early TLPs retire while later ones
  // still wait for credits; the retirement bookkeeping must already
  // know the job.
  sim::Simulator sim;
  mem::MemorySystem memsys(sim, mem::DramParams{}, Rng(1));
  iommu::IommuParams ip;
  ip.enabled = true;
  iommu::Iommu mmu(sim, memsys, ip);
  pcie::PcieParams pp;
  pp.credit_bytes = Bytes(2048);  // < 4576B per packet
  pcie::PcieBus bus(sim, memsys, mmu, pp);
  Nic nic(sim, bus, mmu, NicParams{}, 1, Bytes::mib(12), iommu::PageSize::k2M,
          [](std::int32_t) { return 0; }, Rng(2));
  int delivered = 0;
  nic.set_callbacks(Nic::Callbacks{
      .deliver = [&](int, net::Packet, TimePs) { ++delivered; },
      .transmit = [](net::Packet) { return true; },
      .buffer_pressure = {},
  });
  net::WireFormat wire;
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.flow = 0;
    p.seq = i;
    p.payload = wire.mtu_payload;
    p.wire = wire.data_wire();
    nic.on_arrival(std::move(p));
  }
  sim.run_until(10_ms);
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(nic.buffer_used().count(), 0);
}

TEST(Nic, AtsPrefetchesTranslationsOnArrival) {
  NicParams np;
  np.ats_enabled = true;
  Harness h(true, 1, iommu::PageSize::k2M, Bytes::mib(12), np);
  h.nic->on_arrival(h.data(0, 0));
  EXPECT_GE(h.nic->stats().ats_prefetches, 1);
  h.sim.run_until(1_ms);
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(Nic, AtsAvoidsRootComplexTranslationStalls) {
  NicParams np;
  np.ats_enabled = true;
  Harness ats(true, 1, iommu::PageSize::k2M, Bytes::mib(12), np);
  Harness base(true, 1, iommu::PageSize::k2M, Bytes::mib(12));
  for (int i = 0; i < 50; ++i) {
    ats.nic->on_arrival(ats.data(0, i));
    base.nic->on_arrival(base.data(0, i));
  }
  ats.sim.run_until(5_ms);
  base.sim.run_until(5_ms);
  ASSERT_EQ(ats.delivered.size(), 50u);
  // The baseline stalls its RC pipeline on cold payload walks; with
  // ATS only the (few, hot) control pages ever translate at the root
  // complex, so stalls are bounded by the cold control-page count.
  EXPECT_GT(base.pcie->stats().translation_stalls,
            ats.pcie->stats().translation_stalls);
  EXPECT_LE(ats.pcie->stats().translation_stalls, 10);
}

TEST(Nic, AtsDisabledWhenIommuOff) {
  NicParams np;
  np.ats_enabled = true;
  Harness h(/*iommu_on=*/false, 1, iommu::PageSize::k2M, Bytes::mib(12), np);
  h.nic->on_arrival(h.data(0, 0));
  h.sim.run_until(1_ms);
  EXPECT_EQ(h.nic->stats().ats_prefetches, 0);
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(Nic, StrictInvalidationForcesRepeatWalks) {
  NicParams np;
  np.strict_invalidation = true;
  // A single 2M page: in loose mode only the first packet would miss.
  Harness h(true, 1, iommu::PageSize::k2M, Bytes::mib(2), np);
  for (int i = 0; i < 20; ++i) h.nic->on_arrival(h.data(0, i));
  h.sim.run_until(5_ms);
  ASSERT_EQ(h.delivered.size(), 20u);
  // Concurrent in-flight packets can target the page between an
  // invalidation and the next delivery, so not every delivery finds a
  // live entry -- but the bulk of them do, and misses recur throughout
  // the run instead of only on the cold first access.
  EXPECT_GE(h.iommu->stats().invalidations, 10);
  EXPECT_GE(h.iommu->stats().misses, 10);
}

TEST(Nic, LooseModeDoesNotInvalidate) {
  Harness h(true, 1, iommu::PageSize::k2M, Bytes::mib(2));
  for (int i = 0; i < 20; ++i) h.nic->on_arrival(h.data(0, i));
  h.sim.run_until(5_ms);
  EXPECT_EQ(h.iommu->stats().invalidations, 0);
}

TEST(Nic, ThroughputNearLineRateWhenUncontended) {
  Harness h(true, 4, iommu::PageSize::k2M, Bytes::mib(12));
  // Offer 100Gbps-paced arrivals for 2ms and measure delivery rate.
  const TimePs spacing = BitRate::gbps(100).time_to_send(h.wire.data_wire());
  int seq = 0;
  sim::PeriodicTask source(h.sim, spacing, [&] {
    h.nic->on_arrival(h.data(seq % 4, seq));
    ++seq;
    // Threads keep descriptors topped up.
    for (int t = 0; t < 4; ++t) {
      if (h.nic->posted_descriptors(t) < 256) h.nic->post_descriptors(t, 4);
    }
  });
  h.sim.run_until(2_ms);
  const double gbps =
      static_cast<double>(h.nic->stats().bytes_delivered) * 8.0 / 2e-3 * 1e-9;
  // 100G wire = 92G payload; expect most of it to get through.
  EXPECT_GT(gbps, 80.0);
  EXPECT_EQ(h.nic->stats().buffer_drops, 0);
}

}  // namespace
}  // namespace hicc::nic
