#pragma once

struct Frame {
  int len = 0;
};
