#include "net/unused.h"
#include "net/used.h"

int frame_len(const Frame& f) { return f.len; }
