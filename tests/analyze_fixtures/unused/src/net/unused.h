#pragma once

struct Spare {
  int x = 0;
};
