#pragma once

#include <vector>

class FrameStager {
 public:
  void stage_frame(int len) { staged_.push_back(len); }

 private:
  std::vector<int> staged_;
};
