// hicc-lint: hotpath
#pragma once

#include "net/frames.h"

class RxQueue {
 public:
  void poll() { stager_.stage_frame(7); }

 private:
  FrameStager stager_;
};
