#pragma once

#include "mem/pool.h"

struct Bridge {
  Pool scratch;
};
