#pragma once

struct Pool {
  int pages = 0;
};
