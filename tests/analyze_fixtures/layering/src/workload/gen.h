#pragma once

#include "nic/ring.h"

struct Gen {
  Ring ring;
};
