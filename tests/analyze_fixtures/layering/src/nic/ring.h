#pragma once

struct Ring {
  int slots = 0;
};
