#pragma once

#include "sim/bridge.h"

struct Probe {
  Bridge* bridge = nullptr;
};
