#pragma once

#include "sim/b.h"

struct A {
  B* peer = nullptr;
};
