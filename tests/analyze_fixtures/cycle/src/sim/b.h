#pragma once

#include "sim/a.h"

struct B {
  A* peer = nullptr;
};
