#pragma once

#include "common/tuning.h"

inline void drain_budget() { g_spin_budget -= 1; }
