#pragma once

inline int g_spin_budget = 64;
