#pragma once

#include "common/backoff.h"

inline long retry_pause(int tries) { return backoff_ns(tries); }
