#pragma once

#include <chrono>

inline long backoff_ns(int tries) {
  return std::chrono::steady_clock::now().time_since_epoch().count() * tries;
}
