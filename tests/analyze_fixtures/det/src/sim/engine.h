#pragma once

#include "common/retry.h"

struct Engine {
  long step() { return retry_pause(3); }
};
