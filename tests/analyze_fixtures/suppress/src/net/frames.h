#pragma once

#include <vector>

class FrameStager {
 public:
  void stage_frame(int len) {
    // hicc-lint: allow(ana-hot-alloc-reach) -- fixture: growth is amortized
    staged_.push_back(len);
  }

 private:
  std::vector<int> staged_;
};
