// hicc-lint: hotpath
#pragma once

#include "net/frames.h"

class RxQueue {
 public:
  // hicc-lint: allow(ana-include-cycle) -- stale on purpose
  void poll() { stager_.stage_frame(7); }

 private:
  FrameStager stager_;
};
