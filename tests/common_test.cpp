// Unit tests for the common foundation: units, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace hicc {
namespace {

using namespace hicc::literals;

// ---------------------------------------------------------------- units

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(TimePs::from_ns(1.0).ps(), 1000);
  EXPECT_EQ(TimePs::from_us(1.0).ps(), 1000000);
  EXPECT_EQ(TimePs::from_ms(1.0).ps(), 1000000000);
  EXPECT_DOUBLE_EQ(TimePs::from_sec(2.5).sec(), 2.5);
  EXPECT_DOUBLE_EQ((1_us).ns(), 1000.0);
}

TEST(Units, TimeArithmetic) {
  EXPECT_EQ(1_us + 500_ns, TimePs::from_us(1.5));
  EXPECT_EQ(2_us - 500_ns, TimePs::from_us(1.5));
  EXPECT_EQ((1_us) * 3, 3_us);
  EXPECT_EQ((3_us) / 3, 1_us);
  EXPECT_DOUBLE_EQ((1_us) / (2_us), 0.5);
  EXPECT_LT(1_ns, 1_us);
}

TEST(Units, BytesConversions) {
  EXPECT_EQ((1_KiB).count(), 1024);
  EXPECT_EQ((1_MiB).count(), 1048576);
  EXPECT_DOUBLE_EQ((1_KiB).bits(), 8192.0);
  EXPECT_DOUBLE_EQ(Bytes::mib(2.0).mib(), 2.0);
}

TEST(Units, OneByteAt100GbpsIs80Picoseconds) {
  // The reason the simulator uses picoseconds at all.
  EXPECT_EQ(BitRate::gbps(100).time_to_send(1_B).ps(), 80);
}

TEST(Units, RateTimeToSendAndBack) {
  const auto rate = BitRate::gbps(100);
  const auto t = rate.time_to_send(4096_B);
  EXPECT_EQ(t.ps(), 4096 * 80);
  EXPECT_EQ(rate.bytes_in(t).count(), 4096);
}

TEST(Units, RateOfGuardsZeroTime) {
  EXPECT_DOUBLE_EQ(rate_of(100_B, TimePs(0)).bps(), 0.0);
  EXPECT_NEAR(rate_of(12500_B, 1_us).gbps(), 100.0, 1e-9);
}

TEST(Units, GigabytesPerSecond) {
  EXPECT_DOUBLE_EQ(BitRate::gigabytes_per_sec(11.52).gigabytes_per_sec(), 11.52);
  EXPECT_DOUBLE_EQ(BitRate::gigabytes_per_sec(1.0).gbps(), 8.0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(3);
  std::array<int, 8> seen{};
  for (int i = 0; i < 8000; ++i) ++seen[rng.below(8)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(LogHistogram, PercentilesOfUniformStream) {
  LogHistogram h;
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000);
  EXPECT_NEAR(h.percentile(50), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(h.percentile(99), 9900.0, 9900.0 * 0.05);
  EXPECT_NEAR(h.mean(), 5000.5, 0.5);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(1234.5);
  EXPECT_NEAR(h.percentile(0), 1234.5, 1234.5 * 0.05);
  EXPECT_NEAR(h.percentile(100), 1234.5, 1234.5 * 0.05);
  EXPECT_DOUBLE_EQ(h.max_value(), 1234.5);
}

TEST(LogHistogram, NegativeClampsToZeroBucket) {
  LogHistogram h;
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_LT(h.percentile(50), 2.0);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  const LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(RateMeter, MeasuresOverWindow) {
  RateMeter m;
  m.reset(1_ms);
  m.add(12500_B);  // 12500B over 1us = 100Gbps
  EXPECT_NEAR(m.rate_at(1_ms + 1_us).gbps(), 100.0, 1e-6);
}

TEST(RateMeter, ResetClearsBytes) {
  RateMeter m;
  m.reset(TimePs(0));
  m.add(1000_B);
  m.reset(1_us);
  EXPECT_EQ(m.bytes().count(), 0);
}

TEST(WindowedCounter, RatioAndReset) {
  WindowedCounter c;
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  EXPECT_DOUBLE_EQ(c.ratio_to(8), 0.5);
  EXPECT_DOUBLE_EQ(c.ratio_to(0), 0.0);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

// ---------------------------------------------------------------- table

TEST(Table, PrintsAlignedColumns) {
  Table t({"cores", "thpt_gbps"});
  t.add_row({std::int64_t{2}, 23.0});
  t.add_row({std::int64_t{16}, 75.5});
  std::ostringstream os;
  t.print(os, 1);
  const std::string s = os.str();
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("75.5"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), 1.5});
  std::ostringstream os;
  t.write_csv(os, 2);
  EXPECT_EQ(os.str(), "a,b\nx,1.50\n");
}

}  // namespace
}  // namespace hicc
