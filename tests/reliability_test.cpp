// Transport reliability under adversarial loss: the sender flow must
// eventually deliver every enqueued packet through random drop
// patterns, reordering, and delayed ACKs -- the property that keeps the
// closed-loop workload alive when the NIC buffer drops bursts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/flow.h"
#include "transport/swift.h"

namespace hicc::transport {
namespace {

using namespace hicc::literals;

/// A lossy, delaying channel between a SenderFlow and a synthetic
/// receiver that acks everything it sees.
class LossyChannel {
 public:
  LossyChannel(sim::Simulator& sim, double loss_probability, std::uint64_t seed)
      : sim_(sim), loss_(loss_probability), rng_(seed) {}

  /// Wire this as the flow's SendFn.
  bool send(SenderFlow& flow, net::Packet p) {
    if (rng_.chance(loss_)) return true;  // silently dropped in flight
    // Random one-way delay 5-40us each way; ACK echoes the packet.
    const TimePs rtt = TimePs::from_us(rng_.uniform(10.0, 80.0));
    const TimePs host_delay = TimePs::from_us(rng_.uniform(1.0, 30.0));
    received_.insert(p.seq);
    net::Packet ack;
    ack.kind = net::PacketKind::kAck;
    ack.flow = p.flow;
    ack.sender = p.sender;
    ack.seq = p.seq;
    ack.sent_at = p.sent_at;
    ack.echoed_host_delay = host_delay;
    sim_.after(rtt, [&flow, ack] { flow.on_ack(ack); });
    return true;
  }

  [[nodiscard]] const std::set<std::int64_t>& received() const { return received_; }

 private:
  sim::Simulator& sim_;
  double loss_;
  Rng rng_;
  std::set<std::int64_t> received_;
};

class LossFuzz : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LossFuzz, EveryPacketEventuallyDelivered) {
  const auto [loss, seed] = GetParam();
  sim::Simulator sim;
  LossyChannel channel(sim, loss, static_cast<std::uint64_t>(seed));
  SenderFlow* flow_ptr = nullptr;
  SenderFlow flow(sim, 0, 0, net::WireFormat{},
                  std::make_unique<SwiftCc>(sim, SwiftParams{}),
                  [&](net::Packet p) { return channel.send(*flow_ptr, std::move(p)); },
                  Rng(static_cast<std::uint64_t>(seed) + 1));
  flow_ptr = &flow;

  constexpr std::int64_t kPackets = 200;
  flow.enqueue_packets(kPackets);
  // Generous horizon: RTOs at >=1ms each may fire repeatedly at 30% loss.
  sim.run_until(TimePs::from_sec(3));

  EXPECT_EQ(flow.pending(), 0);
  EXPECT_EQ(flow.outstanding(), 0u);
  ASSERT_EQ(channel.received().size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(*channel.received().begin(), 0);
  EXPECT_EQ(*channel.received().rbegin(), kPackets - 1);
  if (loss > 0.0) {
    EXPECT_GT(flow.stats().retransmits, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossRates, LossFuzz,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.15, 0.30),
                       ::testing::Values(1, 2)),
    [](const auto& param_info) {
      return "loss" + std::to_string(static_cast<int>(std::get<0>(param_info.param) * 100)) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

/// ACK reordering must not confuse the selective-ack bookkeeping.
TEST(Reliability, ToleratesAckReordering) {
  sim::Simulator sim;
  std::vector<net::Packet> sent;
  SenderFlow flow(sim, 0, 0, net::WireFormat{},
                  std::make_unique<SwiftCc>(sim, SwiftParams{}),
                  [&](net::Packet p) {
                    sent.push_back(std::move(p));
                    return true;
                  });
  flow.enqueue_packets(8);
  sim.run_until(1_ms);
  // Repeatedly ack whatever was sent, with adjacent pairs swapped
  // (persistent mild reordering). Acking releases window and triggers
  // sends/retransmissions, which append to `sent`; drain in rounds.
  for (int round = 0; round < 200 && (flow.pending() > 0 || flow.outstanding() > 0);
       ++round) {
    std::vector<net::Packet> snapshot;
    snapshot.swap(sent);
    for (std::size_t i = 0; i + 1 < snapshot.size(); i += 2) {
      std::swap(snapshot[i], snapshot[i + 1]);
    }
    for (const auto& p : snapshot) {
      net::Packet ack;
      ack.kind = net::PacketKind::kAck;
      ack.seq = p.seq;
      ack.sent_at = p.sent_at;
      ack.echoed_host_delay = 5_us;
      flow.on_ack(ack);
      sim.run_until(sim.now() + 5_us);
    }
    sim.run_until(sim.now() + 100_us);
  }
  EXPECT_EQ(flow.pending(), 0);
  EXPECT_EQ(flow.outstanding(), 0u);
}

/// Duplicate ACKs (e.g. for an original and its retransmission) must
/// be idempotent.
TEST(Reliability, DuplicateAcksAreIdempotent) {
  sim::Simulator sim;
  std::vector<net::Packet> sent;
  SenderFlow flow(sim, 0, 0, net::WireFormat{},
                  std::make_unique<SwiftCc>(sim, SwiftParams{}),
                  [&](net::Packet p) {
                    sent.push_back(std::move(p));
                    return true;
                  });
  flow.enqueue_packets(2);
  sim.run_until(1_ms);
  ASSERT_GE(sent.size(), 1u);
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.seq = sent[0].seq;
  ack.sent_at = sent[0].sent_at;
  ack.echoed_host_delay = 5_us;
  for (int i = 0; i < 5; ++i) flow.on_ack(ack);
  EXPECT_EQ(flow.stats().acks_received, 5);
  // No spurious retransmissions from the duplicates alone (no gap).
  EXPECT_EQ(flow.stats().retransmits, 0);
}

}  // namespace
}  // namespace hicc::transport
