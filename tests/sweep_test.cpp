// SweepRunner: parallel-vs-serial determinism, index-ordered
// collection, per-point seed independence, exception propagation, and
// the structured JSON record.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "sweep/sweep.h"

namespace hicc::sweep {
namespace {

/// Small-but-heterogeneous sweep: every point differs in workload and
/// seed, so any cross-point state leakage or misordered collection
/// shows up as a metrics mismatch.
std::vector<ExperimentConfig> test_points(int n) {
  std::vector<ExperimentConfig> points;
  for (int i = 0; i < n; ++i) {
    ExperimentConfig cfg;
    cfg.warmup = TimePs::from_us(200);
    cfg.measure = TimePs::from_us(500);
    cfg.rx_threads = 2 + i % 3;
    cfg.num_senders = 4 + i % 5;
    cfg.iommu_enabled = i % 2 == 0;
    cfg.hugepages = i % 4 != 0;
    cfg.antagonist_cores = (i % 3 == 0) ? 4 : 0;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    points.push_back(cfg);
  }
  return points;
}

void expect_metrics_eq(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.app_throughput_gbps, b.app_throughput_gbps);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.iotlb_misses_per_packet, b.iotlb_misses_per_packet);
  EXPECT_EQ(a.memory.total_gbytes_per_sec, b.memory.total_gbytes_per_sec);
  EXPECT_EQ(a.host_delay_p50_us, b.host_delay_p50_us);
  EXPECT_EQ(a.host_delay_p99_us, b.host_delay_p99_us);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.nic_buffer_drops, b.nic_buffer_drops);
  EXPECT_EQ(a.iotlb_misses, b.iotlb_misses);
  EXPECT_EQ(a.iotlb_lookups, b.iotlb_lookups);
  EXPECT_EQ(a.pcie_translation_stalls, b.pcie_translation_stalls);
  EXPECT_EQ(a.avg_cwnd, b.avg_cwnd);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(SweepRunner, ParallelMatchesSerialOn16Points) {
  const auto points = test_points(16);

  SweepOptions serial_opts;
  serial_opts.jobs = 1;
  const auto serial = SweepRunner(serial_opts).run(points);

  for (int jobs : {4, 7}) {
    SweepOptions opts;
    opts.jobs = jobs;
    const SweepRunner runner(opts);
    EXPECT_EQ(runner.jobs(), jobs);
    const auto parallel = runner.run(points);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("point " + std::to_string(i) + " @ jobs=" + std::to_string(jobs));
      expect_metrics_eq(parallel[i].metrics, serial[i].metrics);
    }
  }
}

TEST(SweepRunner, ResultsAreIndexOrdered) {
  const auto points = test_points(9);
  SweepOptions opts;
  opts.jobs = 4;
  const auto results = SweepRunner(opts).run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].config.seed, points[i].seed);
    EXPECT_EQ(results[i].config.rx_threads, points[i].rx_threads);
    EXPECT_GT(results[i].wall_seconds, 0.0);
  }
}

TEST(SweepRunner, PointMetricsIndependentOfListOrder) {
  const auto points = test_points(8);
  std::vector<ExperimentConfig> permuted(points.rbegin(), points.rend());

  SweepOptions opts;
  opts.jobs = 4;
  const auto forward = SweepRunner(opts).run(points);
  const auto backward = SweepRunner(opts).run(permuted);
  ASSERT_EQ(forward.size(), backward.size());
  const std::size_t n = forward.size();
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_metrics_eq(forward[i].metrics, backward[n - 1 - i].metrics);
  }
}

TEST(SweepRunner, ReseedDerivesPerPointSeeds) {
  const auto points = test_points(6);
  SweepOptions opts;
  opts.jobs = 3;
  opts.reseed = true;
  opts.sweep_seed = 42;
  const auto results = SweepRunner(opts).run(points);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].config.seed, derive_seed(42, i));
    seeds.insert(results[i].config.seed);
  }
  EXPECT_EQ(seeds.size(), results.size());  // all distinct
}

TEST(SweepRunner, ExceptionFromFailingPointPropagates) {
  const auto points = test_points(8);
  SweepOptions opts;
  opts.jobs = 1;
  opts.probe = [](Experiment&, SweepResult& r) {
    if (r.index == 3) throw std::runtime_error("point 3 failed");
  };
  try {
    (void)SweepRunner(opts).run(points);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 3 failed");
  }

  // Parallel workers abandon the queue on failure and rethrow too.
  opts.jobs = 4;
  EXPECT_THROW((void)SweepRunner(opts).run(points), std::runtime_error);
}

TEST(SweepRunner, ProgressReportsEveryPointExactlyOnce) {
  const auto points = test_points(10);
  SweepOptions opts;
  opts.jobs = 4;
  std::vector<std::size_t> completed;
  std::set<std::size_t> indices;
  opts.progress = [&](const SweepProgress& p) {
    EXPECT_EQ(p.total, points.size());
    completed.push_back(p.completed);
    indices.insert(p.index);
  };
  (void)SweepRunner(opts).run(points);
  ASSERT_EQ(completed.size(), points.size());
  // The callback is serialized, so `completed` counts straight up.
  for (std::size_t i = 0; i < completed.size(); ++i) EXPECT_EQ(completed[i], i + 1);
  EXPECT_EQ(indices.size(), points.size());
}

// Regression guard for the hook synchronization contract (TSan-verified;
// see the concurrency note in sweep.cpp): the progress callback is
// serialized under the runner's mutex, and the probe callback touches
// only its own point's SweepResult. Both hooks here mutate *non-atomic*
// shared state in ways that are only safe if those guarantees hold, and
// 16 workers racing over 48 points give TSan (HICC_SANITIZE=thread) a
// real interleaving to chew on. Without TSan it still catches lost
// updates and ordering violations.
TEST(SweepRunner, HooksAreRaceFreeUnder16Threads) {
  auto points = test_points(48);
  for (auto& p : points) {
    p.warmup = TimePs::from_us(50);
    p.measure = TimePs::from_us(150);
  }
  SweepOptions opts;
  opts.jobs = 16;
  std::size_t progress_calls = 0;  // unsynchronized on purpose
  std::size_t last_completed = 0;
  opts.progress = [&](const SweepProgress& p) {
    ++progress_calls;
    EXPECT_EQ(p.completed, last_completed + 1);  // serialized => no gaps
    last_completed = p.completed;
  };
  opts.probe = [](Experiment&, SweepResult& r) {
    r.extra["probe_index"] = static_cast<double>(r.index);
  };
  const auto results = SweepRunner(opts).run(points);
  EXPECT_EQ(progress_calls, points.size());
  EXPECT_EQ(last_completed, points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].extra.at("probe_index"), static_cast<double>(i));
  }
}

TEST(SweepRunner, ProbeHarvestsExtraScalars) {
  const auto points = test_points(4);
  SweepOptions opts;
  opts.jobs = 2;
  opts.probe = [](Experiment& exp, SweepResult& r) {
    r.extra["rx_threads_probe"] = static_cast<double>(exp.config().rx_threads);
  };
  const auto results = SweepRunner(opts).run(points);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].extra.at("rx_threads_probe"), points[i].rx_threads);
  }
}

TEST(SweepRunner, ResolveJobsPrecedence) {
  EXPECT_EQ(SweepRunner::resolve_jobs(5), 5);
  ASSERT_EQ(setenv("HICC_JOBS", "3", 1), 0);
  EXPECT_EQ(SweepRunner::resolve_jobs(0), 3);
  EXPECT_EQ(SweepRunner::resolve_jobs(7), 7);  // explicit beats env
  ASSERT_EQ(setenv("HICC_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1);  // falls back to hardware
  ASSERT_EQ(unsetenv("HICC_JOBS"), 0);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1);
}

TEST(SweepRunner, EmptySweepReturnsEmpty) {
  const auto results = SweepRunner().run({});
  EXPECT_TRUE(results.empty());
}

TEST(DeriveSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s : {0ULL, 1ULL, 42ULL}) {
    for (std::uint64_t i = 0; i < 64; ++i) seeds.insert(derive_seed(s, i));
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);  // no collisions across sweeps or indices
}

TEST(SweepJson, RecordsSchemaConfigMetricsAndExtra) {
  auto points = test_points(2);
  SweepOptions opts;
  opts.jobs = 2;
  opts.probe = [](Experiment&, SweepResult& r) { r.extra["answer"] = 42.0; };
  const auto results = SweepRunner(opts).run(points);

  std::ostringstream os;
  write_json(results, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"hicc.sweep.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"app_throughput_gbps\""), std::string::npos);
  EXPECT_NE(json.find("\"rx_threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  // Two points -> two index fields, one per entry.
  EXPECT_NE(json.find("\"index\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"index\": 1"), std::string::npos);
  // Balanced braces => structurally sound (cheap JSON sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace hicc::sweep
