// Tests for the PCIe link + root complex: rate math, credit flow
// control and conservation, ordered-pipeline translation stalls, write
// buffer backpressure under memory contention, and the read path.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "iommu/iommu.h"
#include "mem/memory_system.h"
#include "mem/stream_antagonist.h"
#include "pcie/pcie_bus.h"
#include "sim/simulator.h"

namespace hicc::pcie {
namespace {

using namespace hicc::literals;

TEST(PcieParams, RawAndEffectiveRates) {
  const PcieParams p;
  EXPECT_NEAR(p.raw_rate().gbps(), 128.0, 1e-9);
  // Paper: ~110 Gbps achievable goodput for PCIe 3.0 x16 with 256B TLPs.
  EXPECT_NEAR(p.effective_goodput().gbps(), 110.0, 2.0);
}

TEST(PcieParams, WireBytes) {
  const PcieParams p;
  EXPECT_EQ(p.tlp_wire_bytes(256_B).count(), 286);
}

struct Harness {
  explicit Harness(bool iommu_on = false, int antagonist_cores = 0) {
    iommu::IommuParams ip;
    ip.enabled = iommu_on;
    iommu.emplace(sim, mem, ip);
    bus.emplace(sim, mem, *iommu, PcieParams{});
    if (antagonist_cores > 0) {
      ant.emplace(mem, mem::AntagonistParams{}, antagonist_cores);
    }
  }
  sim::Simulator sim;
  mem::MemorySystem mem{sim, mem::DramParams{}, Rng(7)};
  std::optional<iommu::Iommu> iommu;
  std::optional<PcieBus> bus;
  std::optional<mem::StreamAntagonist> ant;
};

TEST(PcieBus, SingleWriteRetiresWithPlausibleLatency) {
  Harness h;
  TimePs retired{};
  h.bus->send_write_tlp(0, 256_B, [&] { retired = h.sim.now(); });
  h.sim.run_until(10_us);
  // Serialization (~21ns) + link latency (50ns) + proc (3ns) + memory
  // write (~93ns): roughly 150-250ns.
  EXPECT_GT(retired.ns(), 100.0);
  EXPECT_LT(retired.ns(), 400.0);
  EXPECT_EQ(h.bus->stats().write_tlps, 1);
  EXPECT_EQ(h.bus->stats().bytes_written, 256);
}

TEST(PcieBus, CreditsConservedAfterDrain) {
  Harness h;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.bus->can_send_write(256_B));
    h.bus->send_write_tlp(0, 256_B, nullptr);
  }
  EXPECT_LT(h.bus->credits_free(), PcieParams{}.credit_bytes);
  h.sim.run_until(100_us);
  EXPECT_EQ(h.bus->credits_free(), PcieParams{}.credit_bytes);
  EXPECT_EQ(h.bus->write_buffer_used().count(), 0);
  EXPECT_EQ(h.bus->rc_queue_depth(), 0u);
}

TEST(PcieBus, CanSendGoesFalseWhenCreditsExhausted) {
  Harness h;
  int sent = 0;
  while (h.bus->can_send_write(256_B) && sent < 1000) {
    h.bus->send_write_tlp(0, 256_B, nullptr);
    ++sent;
  }
  // 16KB credits / 286B wire per TLP = 57 TLPs.
  EXPECT_EQ(sent, 57);
  EXPECT_FALSE(h.bus->can_send_write(256_B));
  h.sim.run_until(1_ms);
  EXPECT_TRUE(h.bus->can_send_write(256_B));
}

/// Drives the bus as fast as credits allow for `duration`; returns
/// achieved payload goodput in Gbps. Uses `page_stride` distinct 2M
/// pages round-robin when the harness IOMMU is enabled.
double run_saturated(Harness& h, TimePs duration, int pages = 1) {
  iommu::RegionId rid{};
  if (h.iommu->enabled()) {
    rid = h.iommu->map_region(Bytes::mib(2.0 * pages), iommu::PageSize::k2M);
  } else {
    rid = h.iommu->map_region(Bytes::mib(2.0 * pages), iommu::PageSize::k2M);
  }
  const auto& region = h.iommu->region(rid);
  std::int64_t page = 0;
  std::int64_t retired_bytes = 0;
  auto pump = [&] {
    while (h.bus->can_send_write(256_B)) {
      const iommu::Iova iova = region.page_iova(page % pages);
      ++page;
      h.bus->send_write_tlp(iova, 256_B, [&] { retired_bytes += 256; });
    }
  };
  h.bus->on_credits_available(pump);
  pump();
  h.sim.run_until(h.sim.now() + duration);
  // Exclude warmup: measure second half.
  const std::int64_t first_half = retired_bytes;
  retired_bytes = 0;
  h.sim.run_until(h.sim.now() + duration);
  (void)first_half;
  return static_cast<double>(retired_bytes) * 8.0 / duration.sec() * 1e-9;
}

TEST(PcieBus, SaturatedGoodputNearEffectiveRate) {
  Harness h(/*iommu_on=*/false);
  const double gbps = run_saturated(h, 200_us);
  EXPECT_GT(gbps, 100.0);
  EXPECT_LE(gbps, 112.0);
}

TEST(PcieBus, IommuOnWithSmallWorkingSetStillFast) {
  Harness h(/*iommu_on=*/true);
  const double gbps = run_saturated(h, 200_us, /*pages=*/4);
  EXPECT_GT(gbps, 98.0);  // IOTLB hits: only a few ns per TLP
}

TEST(PcieBus, IotlbThrashingReducesGoodput) {
  Harness hit(/*iommu_on=*/true);
  Harness miss(/*iommu_on=*/true);
  const double fast = run_saturated(hit, 200_us, /*pages=*/4);
  // 512 pages round-robin through a 128-entry IOTLB: every page access
  // misses, each miss stalls the ordered pipeline for a walk.
  const double slow = run_saturated(miss, 200_us, /*pages=*/512);
  EXPECT_LT(slow, fast * 0.85);
  EXPECT_GT(miss.bus->stats().translation_stalls, 0);
}

TEST(PcieBus, MemoryAntagonismReducesGoodput) {
  Harness calm(/*iommu_on=*/false, /*antagonist_cores=*/0);
  Harness noisy(/*iommu_on=*/false, /*antagonist_cores=*/15);
  noisy.sim.run_until(100_us);  // let the antagonist ramp
  const double calm_gbps = run_saturated(calm, 200_us);
  const double noisy_gbps = run_saturated(noisy, 200_us);
  EXPECT_LT(noisy_gbps, calm_gbps * 0.92);
  EXPECT_GT(noisy.bus->stats().write_buffer_stalls, 0);
}

TEST(PcieBus, ReadCompletes) {
  Harness h;
  TimePs done{};
  h.bus->send_read(0, 64_B, [&] { done = h.sim.now(); });
  h.sim.run_until(10_us);
  // Request serialization + 2x link latency + memory read.
  EXPECT_GT(done.ns(), 150.0);
  EXPECT_LT(done.ns(), 500.0);
  EXPECT_EQ(h.bus->stats().read_tlps, 1);
  EXPECT_EQ(h.bus->stats().bytes_read, 64);
}

TEST(PcieBus, ReadsDoNotConsumePostedCredits) {
  Harness h;
  for (int i = 0; i < 100; ++i) h.bus->send_read(0, 64_B, nullptr);
  EXPECT_EQ(h.bus->credits_free(), PcieParams{}.credit_bytes);
}

TEST(PcieBus, ReadBehindWriteIsOrdered) {
  // A read queued behind a posted write must not complete before the
  // write has at least been translated & committed (PCIe ordering).
  Harness h;
  std::vector<int> order;
  h.bus->send_write_tlp(0, 256_B, [&] { order.push_back(0); });
  h.bus->send_read(0, 64_B, [&] { order.push_back(1); });
  h.sim.run_until(10_us);
  ASSERT_EQ(order.size(), 2u);
  // Both completed; the write was processed first by the RC pipeline.
  // (Retirement order can vary with memory jitter, but the read's
  // completion includes the upstream hop, so the write retires first
  // in practice with equal payload sizes.)
  EXPECT_EQ(h.bus->stats().write_tlps, 1);
}

TEST(PcieBus, DdioHitsSkipMemoryBus) {
  // With a tiny IO working set every DMA write is absorbed by the LLC:
  // retirement is fast and the memory bus sees no NIC traffic.
  sim::Simulator sim;
  mem::MemorySystem memsys(sim, mem::DramParams{}, Rng(7));
  iommu::IommuParams ip;
  ip.enabled = false;
  iommu::Iommu mmu(sim, memsys, ip);
  mem::DdioModel ddio(mem::DdioParams{}, Rng(9));
  ddio.set_io_working_set(Bytes::mib(1));  // fits the IO ways
  PcieBus bus(sim, memsys, mmu, PcieParams{}, &ddio);

  memsys.begin_window();
  for (int i = 0; i < 50; ++i) bus.send_write_tlp(0, 256_B, nullptr);
  sim.run_until(1_ms);
  EXPECT_EQ(bus.stats().ddio_write_hits, 50);
  const auto rep = memsys.window_report();
  EXPECT_NEAR(rep.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kNicDma)],
              0.0, 1e-9);
}

TEST(PcieBus, DdioLeaksWithLargeWorkingSet) {
  sim::Simulator sim;
  mem::MemorySystem memsys(sim, mem::DramParams{}, Rng(7));
  iommu::IommuParams ip;
  ip.enabled = false;
  iommu::Iommu mmu(sim, memsys, ip);
  mem::DdioModel ddio(mem::DdioParams{}, Rng(9));
  ddio.set_io_working_set(Bytes::mib(144));  // the paper's scale
  PcieBus bus(sim, memsys, mmu, PcieParams{}, &ddio);

  for (int i = 0; i < 200; ++i) {
    while (!bus.can_send_write(256_B)) sim.run_one();
    bus.send_write_tlp(0, 256_B, nullptr);
  }
  sim.run_until(1_ms);
  // Nearly everything goes to DRAM (hit fraction ~4%).
  EXPECT_LT(bus.stats().ddio_write_hits, 30);
}

TEST(PcieBus, PreTranslatedTlpSkipsIommu) {
  Harness h(/*iommu_on=*/true);
  const auto rid = h.iommu->map_region(Bytes::mib(4), iommu::PageSize::k2M);
  const iommu::Iova addr = h.iommu->region(rid).base;
  TimePs done{};
  h.bus->send_write_tlp(addr, 256_B, [&] { done = h.sim.now(); },
                        /*pre_translated=*/true);
  h.sim.run_until(100_us);
  // No IOMMU lookup happened at all, and no walk stalled the pipe.
  EXPECT_EQ(h.iommu->stats().lookups, 0);
  EXPECT_EQ(h.bus->stats().translation_stalls, 0);
  EXPECT_GT(done.ns(), 0.0);
  EXPECT_LT(done.ns(), 400.0);
}

TEST(PcieBus, WalkStallBlocksSubsequentTlps) {
  Harness h(/*iommu_on=*/true);
  const auto rid = h.iommu->map_region(Bytes::mib(4), iommu::PageSize::k2M);
  const auto& r = h.iommu->region(rid);
  TimePs first{}, second{};
  h.bus->send_write_tlp(r.page_iova(0), 256_B, [&] { first = h.sim.now(); });
  h.bus->send_write_tlp(r.page_iova(0), 256_B, [&] { second = h.sim.now(); });
  h.sim.run_until(100_us);
  // First TLP walks (3 memory reads ~300ns); the second hits the IOTLB
  // entry installed by the walk.
  EXPECT_GT(first.ns(), 350.0);
  EXPECT_GE(second, first - TimePs::from_ns(50));
  EXPECT_EQ(h.iommu->stats().misses, 1);
  EXPECT_GE(h.iommu->stats().hits, 1);
}

}  // namespace
}  // namespace hicc::pcie
