#!/usr/bin/env python3
"""Gate engine-bench regressions against the committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--benchmark BM_SimulatorScheduleRun] [--threshold 0.25]

Both files are bench records written by a micro-bench binary's
`--json=PATH`: `hicc.bench.v1` from bench/micro_engine (baseline
bench/BENCH_ENGINE.json), `hicc.bench.topology.v1` from
bench/micro_topology (baseline bench/BENCH_TOPOLOGY.json), or
`hicc.bench.parallel.v1` from bench/micro_parallel (baseline
bench/BENCH_PARALLEL.json), or `hicc.bench.workload.v1` from
bench/micro_workload (baseline bench/BENCH_WORKLOAD.json); see
docs/PERFORMANCE.md. The two files must carry the same schema --
comparing an engine run against a topology baseline is a tooling
mistake, not a regression.

Raw ns/op is not comparable across machines -- CI runners and the
machine that produced the committed baseline differ in clock speed,
turbo behavior, and co-tenancy. Every micro_engine run therefore
includes BM_ReferenceSpin, a pure-ALU spin that measures the machine,
not the engine. This script compares *normalized* cost,

    rel = ns_per_op(target) / ns_per_op(BM_ReferenceSpin)

and fails when the current run's `rel` exceeds the baseline's by more
than `--threshold` (default 25%).

The target benchmark's allocs_per_op is also gated: the zero-allocation
steady state is a correctness property of the engine (see
tests/sim_test.cpp SteadyStateIsAllocationFree), so any drift above
the baseline + 0.01 fails regardless of speed.

Exit codes: 0 pass, 1 perf/alloc regression, 2 malformed or
unknown-schema record (an environment/tooling problem, not a
regression -- CI can distinguish "the engine got slower" from "the
record is unreadable").
"""

import argparse
import json
import sys

REFERENCE = "BM_ReferenceSpin"
# Schema tag -> the binary that writes it. Both record shapes are
# identical; the tag only says which bench family produced the rows.
SCHEMAS = {
    "hicc.bench.v1": "micro_engine",
    "hicc.bench.topology.v1": "micro_topology",
    "hicc.bench.parallel.v1": "micro_parallel",
    "hicc.bench.workload.v1": "micro_workload",
}
EXIT_REGRESSION = 1
EXIT_BAD_RECORD = 2


def bad_record(path, why, binary="micro_engine"):
    print(f"{path}: {why}\n"
          f"  This is a record problem, not a perf regression. Regenerate with\n"
          f"    ./build/bench/{binary} --json={path}\n"
          f"  If the schema was revved intentionally, update SCHEMAS in\n"
          f"  scripts/check_bench_regression.py and re-record the committed\n"
          f"  baseline (see docs/PERFORMANCE.md).", file=sys.stderr)
    sys.exit(EXIT_BAD_RECORD)


def load(path):
    """Returns (schema, rows-by-name) for one bench record."""
    try:
        with open(path) as f:
            record = json.load(f)
    except json.JSONDecodeError as e:
        bad_record(path, f"not valid JSON ({e})")
    if not isinstance(record, dict) or "schema" not in record:
        bad_record(path, f"no 'schema' field; expected one of "
                         f"{sorted(SCHEMAS)}")
    schema = record["schema"]
    if schema not in SCHEMAS:
        bad_record(path, f"unknown schema {schema!r} "
                         f"(this script understands {sorted(SCHEMAS)})")
    binary = SCHEMAS[schema]
    if not isinstance(record.get("benchmarks"), list):
        bad_record(path, f"schema is {schema!r} but 'benchmarks' is missing "
                         f"or not a list", binary)
    rows = {row["name"]: row for row in record["benchmarks"]}
    if not rows:
        bad_record(path, "no benchmark rows", binary)
    return schema, rows


def pick(rows, name, path):
    if name not in rows:
        sys.exit(f"{path}: benchmark {name!r} missing (have: {sorted(rows)})")
    row = rows[name]
    if row["ns_per_op"] <= 0:
        sys.exit(f"{path}: {name} has non-positive ns_per_op")
    return row


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--benchmark", default="BM_SimulatorScheduleRun")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression in normalized ns/op")
    args = ap.parse_args()

    base_schema, base = load(args.baseline)
    cur_schema, cur = load(args.current)
    if base_schema != cur_schema:
        bad_record(args.current,
                   f"schema {cur_schema!r} does not match the baseline's "
                   f"{base_schema!r} ({args.baseline})", SCHEMAS[cur_schema])

    base_ref = pick(base, REFERENCE, args.baseline)
    cur_ref = pick(cur, REFERENCE, args.current)
    base_row = pick(base, args.benchmark, args.baseline)
    cur_row = pick(cur, args.benchmark, args.current)

    base_rel = base_row["ns_per_op"] / base_ref["ns_per_op"]
    cur_rel = cur_row["ns_per_op"] / cur_ref["ns_per_op"]
    ratio = cur_rel / base_rel

    print(f"{args.benchmark}:")
    print(f"  baseline: {base_row['ns_per_op']:8.2f} ns/op "
          f"(ref {base_ref['ns_per_op']:.2f} ns -> rel {base_rel:.4f})")
    print(f"  current:  {cur_row['ns_per_op']:8.2f} ns/op "
          f"(ref {cur_ref['ns_per_op']:.2f} ns -> rel {cur_rel:.4f})")
    print(f"  normalized ratio: {ratio:.3f} "
          f"(fail above {1 + args.threshold:.3f})")

    failed = False
    if ratio > 1 + args.threshold:
        print(f"FAIL: {args.benchmark} regressed "
              f"{(ratio - 1) * 100:.1f}% (normalized) vs baseline")
        failed = True

    base_allocs = base_row.get("allocs_per_op", 0.0)
    cur_allocs = cur_row.get("allocs_per_op", 0.0)
    print(f"  allocs_per_op: baseline {base_allocs:.4f}, current {cur_allocs:.4f}")
    if cur_allocs > base_allocs + 0.01:
        print(f"FAIL: {args.benchmark} allocates on the hot path "
              f"({cur_allocs:.4f}/op vs baseline {base_allocs:.4f}/op)")
        failed = True

    if failed:
        sys.exit(EXIT_REGRESSION)
    print("OK")


if __name__ == "__main__":
    main()
