#!/usr/bin/env python3
"""hicc_lint -- project-specific static analysis for the hicc tree.

Machine-checks the two invariants everything else rests on (see
docs/STATIC_ANALYSIS.md for the full catalog and rationale):

  * bitwise determinism given a seed (determinism rules `det-*`),
  * an allocation-free event-engine hot path (hot-path rules `hot-*`),

plus the module dependency DAG from DESIGN.md (`layer-*`), the
parallel-engine concurrency contract from docs/PARALLELISM.md (`par-*`:
no shared mutable statics under partition callbacks, cross-partition
sends only via ParallelEngine::post()), the robustness contract from
docs/ROBUSTNESS.md (`rob-*`: process-exit primitives only at the
sanctioned supervisor/worker seam), and the docs lockstep (`docs-*`:
probe catalog, ParallelParams knob catalog, run_status taxonomy).

Pure regex/token analysis over a comment-and-string-stripped view of
each line -- no libclang, no compile step, runs in milliseconds on the
whole tree.

Usage:
    hicc_lint.py [--strict] [--baseline FILE] [--write-baseline] \
                 [--root DIR] PATH [PATH...]

  PATH            files or directories (recursed for .h/.cpp)
  --strict        CI mode: additionally fail on stale baseline entries
                  and unused inline suppressions (keeps both honest)
  --baseline      grandfathered findings (default:
                  scripts/hicc_lint_baseline.txt under --root)
  --write-baseline  rewrite the baseline file with current findings
  --root          repo root for docs lookup + relative paths (default:
                  parent of this script's directory)

Diagnostics: `file:line:col: rule-id: message`, sorted; exit 1 when any
non-baselined finding remains (2 on usage errors).

Suppressions:
    code();  // hicc-lint: allow(rule-id) -- justification
    // hicc-lint: allow(rule-a,rule-b) -- applies to the NEXT line
    // hicc-lint: allow-file(rule-id)  -- whole file
File annotation `// hicc-lint: hotpath` opts a file into the hot-path
rule family (required for every file under HOTPATH_REQUIRED_DIRS).

Baseline entries are `file|rule|normalized-code` (line numbers omitted
so entries survive unrelated edits); each entry forgives any number of
matching findings.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Project configuration
# --------------------------------------------------------------------

# DESIGN.md dependency DAG: module -> modules it may #include.
# (Every module may include itself and src/common.)
LAYER_DAG = {
    "common": set(),
    "sim": set(),
    "trace": {"sim"},
    "net": {"sim"},
    "mem": {"sim", "trace"},
    "iommu": {"sim", "trace", "mem"},
    "pcie": {"sim", "trace", "mem", "iommu"},
    "nic": {"sim", "trace", "net", "iommu", "pcie"},
    "transport": {"sim", "trace", "net"},
    "host": {"sim", "trace", "net", "nic", "pcie", "iommu", "mem"},
    "workload": {"sim", "trace", "net", "transport", "host"},
    "core": {"sim", "trace", "net", "nic", "pcie", "iommu", "mem", "host",
             "transport", "fault", "workload"},
    "fault": {"sim", "trace", "net", "nic", "pcie", "iommu", "mem", "host",
              "transport"},
    "sweep": {"sim", "trace", "core", "fault"},
    # Offline analyzer (tools/hicc_analyze); a leaf like common.
    "analyze": set(),
}

# Every C++ file under these src/ subdirs must carry the hotpath marker.
HOTPATH_REQUIRED_DIRS = ("src/sim", "src/nic", "src/pcie", "src/iommu",
                         "src/workload")

# Probe names registered with a string literal must appear in these docs.
PROBE_DOCS = ("docs/OBSERVABILITY.md", "docs/FAULTS.md")

# ParallelEngine knobs (src/sim/parallel.h ParallelParams fields) must
# each appear in the concurrency-model doc.
PAR_DOC = "docs/PARALLELISM.md"
PAR_KNOB_FILE = "src/sim/parallel.h"

# run_status labels (src/core/metrics.h to_string cases) must each
# appear in the failure-taxonomy doc.
ROB_DOC = "docs/ROBUSTNESS.md"
RUN_STATUS_FILE = "src/core/metrics.h"

# The only src/ files that may terminate the process: the point worker
# (injected deaths, its exit-code contract) and the supervisor's
# post-fork exec-failure path.
ROB_EXIT_ALLOWED = ("src/sweep/worker.cpp", "src/sweep/supervisor.cpp")

SUPPRESS_RE = re.compile(r"//\s*hicc-lint:\s*allow\(([^)]*)\)")
SUPPRESS_FILE_RE = re.compile(r"//\s*hicc-lint:\s*allow-file\(([^)]*)\)")
HOTPATH_MARK_RE = re.compile(r"//\s*hicc-lint:\s*hotpath\b")

CXX_EXTS = (".h", ".cpp", ".cc", ".hpp")


class Finding:
    def __init__(self, path, line, col, rule, message):
        self.path = path          # repo-relative, forward slashes
        self.line = line          # 1-based
        self.col = col            # 1-based
        self.rule = rule
        self.message = message
        self.norm = ""            # normalized source text for baselining

    def key(self):
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self):
        return f"{self.path}|{self.rule}|{self.norm}"

    def __str__(self):
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def strip_comments_and_strings(text):
    """Returns lines with comments/string contents blanked, columns kept."""
    out = []
    i, n = 0, len(text)
    buf = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(buf))
            buf = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            m = re.match(r'R"([^()\s]{0,16})\(', text[i:]) if c == "R" else None
            if m:
                state = "raw"
                raw_delim = ")" + m.group(1) + '"'
                buf.append(" " * len(m.group(0)))
                i += len(m.group(0))
                continue
            if c == '"':
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
            i += 1
            continue
        if state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
                continue
            buf.append(" ")
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                buf.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            buf.append(" ")
            i += 1
            continue
        # string / char literals: blank contents, keep the delimiters.
        if c == "\\":
            buf.append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char" and c == "'"):
            state = "code"
            buf.append(c)
            i += 1
            continue
        buf.append(" ")
        i += 1
    if buf:
        out.append("".join(buf))
    return out


class FileContext:
    """One scanned file: raw lines, code view, suppression state."""

    def __init__(self, relpath, text, sibling_text=""):
        self.path = relpath
        self.raw = text.splitlines()
        self.code = strip_comments_and_strings(text)
        while len(self.code) < len(self.raw):
            self.code.append("")
        # For foo.cpp, declarations usually live in foo.h: name-collection
        # passes (vector/unordered members) also see the sibling header.
        self.decl_code = self.code + strip_comments_and_strings(sibling_text)
        self.hotpath = any(HOTPATH_MARK_RE.search(l) for l in self.raw)
        self.file_allows = set()
        # line (1-based) -> set of rule ids allowed there
        self.line_allows = {}
        for idx, line in enumerate(self.raw, start=1):
            m = SUPPRESS_FILE_RE.search(line)
            if m:
                self.file_allows.update(
                    r.strip() for r in m.group(1).split(",") if r.strip())
            m = SUPPRESS_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                before = line[:m.start()]
                if before.strip():
                    # Trailing suppression covers its own line.
                    target = idx
                else:
                    # A bare suppression comment covers the next *code*
                    # line -- the justification may continue over further
                    # comment-only lines.
                    target = idx + 1
                    while (target <= len(self.raw) and
                           (not self.raw[target - 1].strip() or
                            self.raw[target - 1].lstrip().startswith("//"))):
                        target += 1
                self.line_allows.setdefault(target, set()).update(rules)
        self.used_allows = set()  # (line, rule) pairs that fired

    def allowed(self, line, rule):
        if rule in self.file_allows:
            return True
        if rule in self.line_allows.get(line, set()):
            self.used_allows.add((line, rule))
            return True
        return False

    def module(self):
        parts = self.path.split("/")
        if len(parts) >= 2 and parts[0] == "src":
            return parts[1]
        return None

    def finding(self, line, col, rule, message):
        f = Finding(self.path, line, col, rule, message)
        f.norm = " ".join(self.raw[line - 1].split()) if line <= len(self.raw) else ""
        return f


# --------------------------------------------------------------------
# Rules. Each returns an iterable of Findings (pre-suppression).
# --------------------------------------------------------------------

WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:steady|system|high_resolution)_clock::now"
    r"|(?<![\w.])(?:time|clock_gettime|gettimeofday|clock)\s*\(")
RAND_RE = re.compile(
    r"(?<![\w.])(?:rand|srand|rand_r|drand48|random)\s*\("
    r"|std::random_device|std::mt19937")
SEEDED_RNG_RE = re.compile(r"\bRng\s*\(\s*(?:0[xX][0-9a-fA-F]+|\d)")
UNORDERED_DECL_RE = re.compile(r"unordered_(?:map|set)\s*<")
DECL_NAME_RE = re.compile(r">\s*&?\s*(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*([^)]*)\)")
NEW_RE = re.compile(r"(?<![\w:.])new\s+(?!\()")
MAKE_RE = re.compile(r"std::make_(?:unique|shared)\s*<")
STD_FUNCTION_RE = re.compile(r"std::function\s*<")
VECTOR_DECL_RE = re.compile(r"std::vector\s*<")
GROW_RE = re.compile(r"\b(\w+)\s*\.\s*(?:push_back|emplace_back)\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
PROBE_LITERAL_RE = re.compile(
    r"\b(counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"")
# trace::host_probe(h, "name") expands to "host<h>.name"; the catalog
# documents the family once, under the literal prefix "host<h>.".
PROBE_HOST_RE = re.compile(
    r"\b(counter|gauge|histogram)\s*\(\s*(?:trace\s*::\s*)?host_probe\s*\(")
PROBE_HOST_NAME_RE = re.compile(
    r"host_probe\s*\(\s*[^,()]*,\s*\"([^\"]+)\"")
PROBE_DYNAMIC_RE = re.compile(
    r"(?:->|\.)\s*(counter|gauge|histogram)\s*\(\s*"
    r"(?![\")])(?!(?:trace\s*::\s*)?host_probe\s*\()")


def rule_det_wallclock(ctx):
    for i, line in enumerate(ctx.code, start=1):
        for m in WALLCLOCK_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "det-wallclock",
                "wall-clock time source in simulator code; runs must be a "
                "pure function of the seed -- use sim::Simulator::now()")


def rule_det_rand(ctx):
    for i, line in enumerate(ctx.code, start=1):
        for m in RAND_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "det-rand",
                "non-seedable/global RNG; use hicc::Rng forked from the "
                "experiment seed (common/rng.h)")


def rule_det_seeded_rng(ctx):
    for i, line in enumerate(ctx.code, start=1):
        for m in SEEDED_RNG_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "det-seeded-rng",
                "Rng constructed from a literal seed; derive it from the "
                "experiment seed (Rng::fork() / derive_seed) so streams "
                "stay independent per DESIGN.md §7")


def rule_det_unordered_iter(ctx):
    names = set()
    for line in ctx.decl_code:
        if UNORDERED_DECL_RE.search(line):
            m = DECL_NAME_RE.search(line)
            if m:
                names.add(m.group(1))
    if not names:
        return
    for i, line in enumerate(ctx.code, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        expr = m.group(1)
        for name in names:
            if re.search(rf"\b{re.escape(name)}\b", expr):
                yield ctx.finding(
                    i, m.start() + 1, "det-unordered-iter",
                    f"range-for over unordered container '{name}': iteration "
                    "order is implementation-defined and must not feed "
                    "metrics/trace/JSON -- sort first or use an ordered "
                    "container")


def rule_hot_marker(ctx):
    if ctx.path.startswith(tuple(d + "/" for d in HOTPATH_REQUIRED_DIRS)):
        if not ctx.hotpath and ctx.path.endswith(CXX_EXTS):
            yield ctx.finding(
                1, 1, "hot-marker-missing",
                "files under " + "/".join(HOTPATH_REQUIRED_DIRS[:1]) +
                ",... must carry '// hicc-lint: hotpath' so hot-path "
                "hygiene rules apply")


def rule_hot_std_function(ctx):
    if not ctx.hotpath:
        return
    for i, line in enumerate(ctx.code, start=1):
        for m in STD_FUNCTION_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "hot-std-function",
                "std::function heap-allocates large captures; use "
                "sim::InlineFunction/InlineCallback (sim/inline_action.h)")


def rule_hot_heap_alloc(ctx):
    if not ctx.hotpath:
        return
    for i, line in enumerate(ctx.code, start=1):
        for m in NEW_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "hot-heap-alloc",
                "heap allocation in a hot-path file; steady state must be "
                "allocation-free (slab/free-list patterns, DESIGN.md §8)")
        for m in MAKE_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "hot-heap-alloc",
                "make_unique/make_shared in a hot-path file; steady state "
                "must be allocation-free (slab/free-list, DESIGN.md §8)")


def rule_hot_vector_growth(ctx):
    if not ctx.hotpath:
        return
    vec_names = set()
    for line in ctx.decl_code:
        if VECTOR_DECL_RE.search(line):
            m = DECL_NAME_RE.search(line)
            if m:
                vec_names.add(m.group(1))
    if not vec_names:
        return
    reserved = {m.group(1) for line in ctx.decl_code
                for m in re.finditer(r"\b(\w+)\s*\.\s*reserve\s*\(", line)}
    for i, line in enumerate(ctx.code, start=1):
        for m in GROW_RE.finditer(line):
            name = m.group(1)
            if name in vec_names and name not in reserved:
                yield ctx.finding(
                    i, m.start() + 1, "hot-vector-growth",
                    f"'{name}.push_back' on a std::vector with no reserve() "
                    "in this file: growth reallocates on the hot path -- "
                    "reserve, or suppress if growth is amortized/startup-only")


def rule_layer_dag(ctx):
    mod = ctx.module()
    if mod is None or mod not in LAYER_DAG:
        return
    allowed = LAYER_DAG[mod] | {mod, "common"}
    for i, line in enumerate(ctx.raw, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target in LAYER_DAG and target not in allowed:
            yield ctx.finding(
                i, m.start(1) + 1, "layer-dag",
                f"src/{mod} must not include src/{target} "
                f"(allowed: {', '.join(sorted(allowed))}; DESIGN.md §9 DAG)")


def rule_layer_trace_header(ctx):
    mod = ctx.module()
    if mod is None or mod == "trace":
        return
    for i, line in enumerate(ctx.raw, start=1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1).startswith("trace/") and m.group(1) != "trace/trace.h":
            yield ctx.finding(
                i, m.start(1) + 1, "layer-trace-header",
                f"'{m.group(1)}' is a trace-internal header; modules attach "
                "probes through trace/trace.h only (sinks/exporters are for "
                "harness code)")


def rule_docs_probe(ctx, docs_text):
    if ctx.module() is None:
        return
    for i, line in enumerate(ctx.raw, start=1):
        code_line = ctx.code[i - 1]
        for m in PROBE_LITERAL_RE.finditer(line):
            kind, name = m.group(1), m.group(2)
            # Only count literals that are real registrations (the code
            # view keeps the call shape: `kind("` with blanked contents).
            if not re.search(rf"\b{kind}\s*\(\s*\"", code_line):
                continue
            missing = [name] if name not in docs_text else []
            if kind == "histogram":
                missing += [f"{name}{suffix}"
                            for suffix in (".p50", ".p99", ".count")
                            if f"{name}{suffix}" not in docs_text]
            for probe in missing:
                yield ctx.finding(
                    i, m.start(2) + 1, "docs-probe-undocumented",
                    f"probe '{probe}' is not documented in "
                    f"{' or '.join(PROBE_DOCS)}; the catalog and the code "
                    "change together")
        for m in PROBE_HOST_RE.finditer(code_line):
            kind = m.group(1)
            name_m = PROBE_HOST_NAME_RE.search(line[m.start():])
            if not name_m:
                # host_probe with a computed inner name: as opaque to the
                # docs lockstep as any other dynamic registration.
                yield ctx.finding(
                    i, m.start(1) + 1, "docs-probe-dynamic",
                    f"probe registered via non-literal name ({kind}); "
                    "docs lockstep cannot check it -- suppress with a "
                    "pointer to where the names are cataloged")
                continue
            name = name_m.group(1)
            documented = f"host<h>.{name}"
            missing = [documented] if documented not in docs_text else []
            if kind == "histogram":
                missing += [f"{documented}{suffix}"
                            for suffix in (".p50", ".p99", ".count")
                            if f"{documented}{suffix}" not in docs_text]
            for probe in missing:
                yield ctx.finding(
                    i, m.start() + name_m.start(1) + 1,
                    "docs-probe-undocumented",
                    f"host-indexed probe '{probe}' is not documented in "
                    f"{' or '.join(PROBE_DOCS)}; document the family once "
                    "under the 'host<h>.' prefix")
        for m in PROBE_DYNAMIC_RE.finditer(code_line):
            yield ctx.finding(
                i, m.start(1) + 1, "docs-probe-dynamic",
                f"probe registered via non-literal name ({m.group(1)}); "
                "docs lockstep cannot check it -- suppress with a pointer "
                "to where the names are cataloged")


PAR_STATIC_RE = re.compile(r"(?<![\w:.])static\s+")
PAR_STATIC_CONST_RE = re.compile(r"(?:inline\s+)?(?:const\b|constexpr\b)")
PAR_CROSS_SCHED_RE = re.compile(
    r"\bsim\s*\(\s*[^()]*\)\s*\.\s*(at|in|run_until)\s*\(")
PAR_FIELD_RE = re.compile(
    r"[A-Za-z_][\w:<>,*&\s]*?[\s&*](\w+)\s*(?:\{[^{}]*\}\s*)?(?:=[^;]*)?;")


def rule_par_static_mutable(ctx):
    """Mutable statics are shared across partition callbacks.

    Under the parallel engine (sim/parallel.h) partition callbacks run
    concurrently on the worker pool, so any non-const static -- file
    scope, function local, or class member -- is unguarded shared state:
    a data race at worst, cross-partition nondeterminism at best (this
    includes thread_local, because partitions migrate across threads).
    State must live in the objects a partition owns, or be const.
    """
    if ctx.module() is None:
        return
    for i, line in enumerate(ctx.code, start=1):
        for m in PAR_STATIC_RE.finditer(line):
            rest = line[m.end():]
            if PAR_STATIC_CONST_RE.match(rest):
                continue
            stmt = rest.split(";")[0]
            if "(" in stmt or ";" not in rest:
                continue  # function declaration, or decl continues past EOL
            idents = re.findall(r"\w+", stmt.split("=")[0])
            name = idents[-1] if idents else "?"
            yield ctx.finding(
                i, m.start() + 1, "par-static-mutable",
                f"mutable static '{name}' is unguarded shared state across "
                "partition callbacks under the parallel engine; keep state "
                "in the owning partition's objects or make it const "
                "(docs/PARALLELISM.md)")


def rule_par_engine_post(ctx):
    """Cross-partition sends go through ParallelEngine::post() only.

    Scheduling straight into a Simulator fetched with engine.sim(p)
    bypasses the mailbox merge, so the event escapes the canonical
    (time, src, seq) order and its timestamp is never checked against
    the lookahead -- determinism and window safety both break.
    """
    if ctx.module() is None or ctx.path.startswith("src/sim/parallel."):
        return
    for i, line in enumerate(ctx.code, start=1):
        for m in PAR_CROSS_SCHED_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "par-engine-post",
                f"'{m.group(1)}' on a partition Simulator fetched from the "
                "engine bypasses the mailbox merge; cross-partition events "
                "must go through ParallelEngine::post() "
                "(docs/PARALLELISM.md)")


ROB_EXIT_RE = re.compile(
    r"(?<![\w:.>])(?:(?:std\s*::|::)\s*)?(_exit|quick_exit|exit|abort)\s*\(")
RUN_STATUS_RE = re.compile(r'case\s+RunStatus::\w+\s*:\s*return\s*"([^"]+)"')


def rule_rob_exit(ctx):
    """Process-exit primitives only at the supervisor/worker seam.

    A bare exit()/abort() anywhere else skips destructors, the sweep
    journal's flush, and the failure taxonomy: the run dies instead of
    being recorded. Library code reports failures through RunStatus or
    exceptions; only the crash-isolation seam (ROB_EXIT_ALLOWED) may
    legitimately kill the process.
    """
    if ctx.module() is None or ctx.path in ROB_EXIT_ALLOWED:
        return
    for i, line in enumerate(ctx.code, start=1):
        for m in ROB_EXIT_RE.finditer(line):
            yield ctx.finding(
                i, m.start() + 1, "rob-exit",
                f"'{m.group(1)}' terminates the process, bypassing "
                "destructors and the sweep journal; report failures via "
                "RunStatus/exceptions -- only the supervisor/worker seam "
                "may exit (docs/ROBUSTNESS.md)")


def rule_docs_run_status(ctx, rob_doc_text):
    """Every run_status label must appear in docs/ROBUSTNESS.md."""
    if ctx.path != RUN_STATUS_FILE:
        return
    for i, line in enumerate(ctx.raw, start=1):
        m = RUN_STATUS_RE.search(line)
        if not m:
            continue
        label = m.group(1)
        if label not in rob_doc_text:
            yield ctx.finding(
                i, m.start(1) + 1, "docs-run-status",
                f"run_status label '{label}' is not documented in "
                f"{ROB_DOC}; the failure-taxonomy table and the enum "
                "change together")


def rule_docs_par_knob(ctx, par_doc_text):
    """Every ParallelParams knob must appear in docs/PARALLELISM.md."""
    if ctx.path != PAR_KNOB_FILE:
        return
    in_struct = False
    depth = 0
    for i, line in enumerate(ctx.code, start=1):
        if not in_struct:
            if re.search(r"\bstruct\s+ParallelParams\b", line):
                in_struct = True
                depth = line.count("{") - line.count("}")
            continue
        stmt = line.strip()
        m = PAR_FIELD_RE.match(stmt)
        if m and "(" not in stmt.split("=")[0].split("{")[0]:
            name = m.group(1)
            if name not in par_doc_text:
                yield ctx.finding(
                    i, line.index(name) + 1, "docs-par-knob",
                    f"ParallelParams knob '{name}' is not documented in "
                    f"{PAR_DOC}; the concurrency-model doc and the engine "
                    "knobs change together")
        depth += line.count("{") - line.count("}")
        if depth <= 0:
            return


RULES_STANDALONE = [
    rule_det_wallclock,
    rule_det_rand,
    rule_det_seeded_rng,
    rule_det_unordered_iter,
    rule_hot_marker,
    rule_hot_std_function,
    rule_hot_heap_alloc,
    rule_hot_vector_growth,
    rule_layer_dag,
    rule_layer_trace_header,
    rule_par_static_mutable,
    rule_par_engine_post,
    rule_rob_exit,
]

ALL_RULES = sorted(
    ["det-wallclock", "det-rand", "det-seeded-rng", "det-unordered-iter",
     "hot-marker-missing", "hot-std-function", "hot-heap-alloc",
     "hot-vector-growth", "layer-dag", "layer-trace-header",
     "docs-probe-undocumented", "docs-probe-dynamic",
     "par-static-mutable", "par-engine-post", "docs-par-knob",
     "rob-exit", "docs-run-status"])


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            sys.exit(f"hicc_lint: no such path: {p}")
    return sorted(set(files))


def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], allow_abbrev=False)
    ap.add_argument("paths", nargs="*")
    ap.add_argument("--strict", action="store_true",
                    help="also fail on stale baseline/suppressions (CI mode)")
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--write-baseline", action="store_true")
    ap.add_argument("--root", default=None)
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--dump-dag", action="store_true",
                    help="print the layering DAG (same format as "
                         "hicc_analyze --dump-dag) and exit")
    args = ap.parse_args()

    if args.list_rules:
        print("\n".join(ALL_RULES))
        return 0

    if args.dump_dag:
        for mod in sorted(LAYER_DAG):
            print(f"{mod}:" + "".join(f" {d}" for d in sorted(LAYER_DAG[mod])))
        return 0

    if not args.paths:
        ap.error("paths required unless --list-rules/--dump-dag")

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    baseline_path = args.baseline or os.path.join(root, "scripts",
                                                  "hicc_lint_baseline.txt")

    docs_text = ""
    for doc in PROBE_DOCS:
        doc_path = os.path.join(root, doc)
        if os.path.exists(doc_path):
            with open(doc_path) as f:
                docs_text += f.read()

    par_doc_text = ""
    par_doc_path = os.path.join(root, PAR_DOC)
    if os.path.exists(par_doc_path):
        with open(par_doc_path) as f:
            par_doc_text = f.read()

    rob_doc_text = ""
    rob_doc_path = os.path.join(root, ROB_DOC)
    if os.path.exists(rob_doc_path):
        with open(rob_doc_path) as f:
            rob_doc_text = f.read()

    findings = []
    contexts = []
    for path in collect_files(args.paths):
        rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
        sibling_text = ""
        if path.endswith(".cpp"):
            sibling = os.path.splitext(path)[0] + ".h"
            if os.path.exists(sibling):
                with open(sibling, encoding="utf-8", errors="replace") as f:
                    sibling_text = f.read()
        with open(path, encoding="utf-8", errors="replace") as f:
            ctx = FileContext(rel, f.read(), sibling_text)
        contexts.append(ctx)
        raw = []
        for rule_fn in RULES_STANDALONE:
            raw.extend(rule_fn(ctx))
        raw.extend(rule_docs_probe(ctx, docs_text))
        raw.extend(rule_docs_par_knob(ctx, par_doc_text))
        raw.extend(rule_docs_run_status(ctx, rob_doc_text))
        findings.extend(f for f in raw if not ctx.allowed(f.line, f.rule))

    findings.sort(key=Finding.key)

    if args.write_baseline:
        with open(baseline_path, "w") as f:
            f.write("# hicc_lint grandfathered findings -- one per line:\n"
                    "#   file|rule|normalized source text\n"
                    "# Entries forgive matching findings; --strict fails on\n"
                    "# stale entries. Shrink this file, never grow it.\n")
            for key in sorted({fi.baseline_key() for fi in findings}):
                f.write(key + "\n")
        print(f"hicc_lint: wrote {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    used_baseline = set()
    fresh = []
    for fi in findings:
        if fi.baseline_key() in baseline:
            used_baseline.add(fi.baseline_key())
        else:
            fresh.append(fi)

    for fi in fresh:
        print(fi)

    failed = bool(fresh)
    if failed:
        print(f"hicc_lint: {len(fresh)} finding(s)"
              + (f" ({len(used_baseline)} baselined)" if used_baseline else ""))

    if args.strict:
        for stale in sorted(baseline - used_baseline):
            print(f"hicc_lint: stale baseline entry (fixed? delete it): {stale}")
            failed = True
        for ctx in contexts:
            for line, rules in sorted(ctx.line_allows.items()):
                for rule in sorted(rules):
                    # ana-* belongs to hicc_analyze; it polices its own
                    # suppressions (and ignores ours in turn).
                    if rule.startswith("ana-"):
                        continue
                    if (line, rule) not in ctx.used_allows:
                        print(f"{ctx.path}:{line}:1: lint-unused-suppression: "
                              f"allow({rule}) no longer matches a finding; "
                              "remove it")
                        failed = True

    if not failed and not fresh:
        print(f"hicc_lint: OK ({len(contexts)} files, "
              f"{len(used_baseline)} baselined finding(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
