#!/usr/bin/env bash
# Run clang-tidy over the hicc sources against a checked-in baseline.
#
# Usage:
#   scripts/run_clang_tidy.sh [BUILD_DIR] [--update-baseline]
#
#   BUILD_DIR           build tree with compile_commands.json (default:
#                       build/; CMAKE_EXPORT_COMPILE_COMMANDS is always
#                       on in the top-level CMakeLists)
#   --update-baseline   rewrite scripts/clang_tidy_baseline.txt with the
#                       current normalized findings
#
# Findings are normalized to `relative/path:check-name: message` (line
# numbers dropped so the baseline survives unrelated edits) and diffed
# against scripts/clang_tidy_baseline.txt: new findings fail the run,
# stale baseline entries are reported so the file only ever shrinks.
#
# Exit codes: 0 clean, 1 new findings (or stale entries), 3 clang-tidy
# unavailable (CI treats 3 as "environment problem", not a lint failure:
# the gate is only as good as the toolchain present).
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE=1 ;;
    *) BUILD_DIR=$arg ;;
  esac
done

TIDY=$(command -v clang-tidy || command -v clang-tidy-18 || command -v clang-tidy-17 || true)
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; install clang-tidy (>=17)" >&2
  exit 3
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing -- configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S .   (compile-commands export is always on)" >&2
  exit 3
fi

BASELINE=scripts/clang_tidy_baseline.txt
RAW=$(mktemp)
NORM=$(mktemp)
trap 'rm -f "$RAW" "$NORM"' EXIT

# All first-party translation units; headers are covered via
# HeaderFilterRegex in .clang-tidy.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

echo "run_clang_tidy: $TIDY over ${#SOURCES[@]} TUs (build dir: $BUILD_DIR)"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" > "$RAW" 2>/dev/null
# clang-tidy exits nonzero on findings; the baseline diff below decides.

# "path:line:col: warning: message [check]" -> "path|check|message"
sed -n 's/^\([^: ][^:]*\):[0-9][0-9]*:[0-9][0-9]*: warning: \(.*\) \[\([a-z0-9.,-]*\)\]$/\1|\3|\2/p' \
    "$RAW" | sed "s|^$PWD/||" | sort -u > "$NORM"

if [ "$UPDATE" -eq 1 ]; then
  {
    echo "# clang-tidy grandfathered findings (scripts/run_clang_tidy.sh)."
    echo "# One normalized 'file|check|message' per line; line numbers are"
    echo "# dropped so entries survive unrelated edits. Shrink, never grow."
    cat "$NORM"
  } > "$BASELINE"
  echo "run_clang_tidy: wrote $(grep -vc '^#' "$BASELINE") finding(s) to $BASELINE"
  exit 0
fi

touch "$BASELINE"
NEW=$(grep -vxF -f <(grep -v '^#' "$BASELINE") "$NORM" || true)
STALE=$(grep -v '^#' "$BASELINE" | grep -vxF -f "$NORM" || true)

STATUS=0
if [ -n "$NEW" ]; then
  echo "run_clang_tidy: NEW findings (fix them or discuss; do not grow the baseline):"
  echo "$NEW" | sed 's/^/  /'
  # Full diagnostics with line numbers for the new findings:
  echo "--- full clang-tidy output ---"
  cat "$RAW"
  STATUS=1
fi
if [ -n "$STALE" ]; then
  echo "run_clang_tidy: stale baseline entries (fixed? delete them):"
  echo "$STALE" | sed 's/^/  /'
  STATUS=1
fi
if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: OK ($(wc -l < "$NORM") finding(s), all baselined)"
fi
exit $STATUS
