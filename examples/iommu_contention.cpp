// IOMMU contention walk-through (§3.1's story, end to end).
//
// Runs the same workload at increasing receiver-thread counts with the
// IOMMU on, printing how the registered working set overflows the
// 128-entry IOTLB and what that does to per-DMA latency, throughput,
// and drops. Demonstrates the library's counter surface: mapped pages,
// IOTLB hit/miss counters, page-walk memory reads, and the PCIe
// pipeline's translation stalls.
#include <cstdio>

#include "core/experiment.h"

int main() {
  std::printf("How IOMMU contention becomes host congestion\n");
  std::printf("--------------------------------------------\n");
  std::printf("%7s %12s %10s %9s %8s %10s %12s\n", "threads", "mapped_pages",
              "app_gbps", "miss/pkt", "drop%", "walks/s", "p99_delay_us");

  for (int threads : {4, 8, 12, 16}) {
    hicc::ExperimentConfig cfg;
    cfg.rx_threads = threads;
    cfg.iommu_enabled = true;
    cfg.warmup = hicc::TimePs::from_ms(8);
    cfg.measure = hicc::TimePs::from_ms(15);

    hicc::Experiment exp(cfg);
    const hicc::Metrics m = exp.run();
    const auto& iommu = exp.receiver().iommu();
    const double walks_per_sec =
        static_cast<double>(iommu.stats().walks_completed) /
        (cfg.warmup + cfg.measure).sec();

    std::printf("%7d %12lld %10.1f %9.2f %8.3f %10.0f %12.1f\n", threads,
                static_cast<long long>(iommu.mapped_pages()), m.app_throughput_gbps,
                m.iotlb_misses_per_packet, m.drop_rate * 100.0, walks_per_sec,
                m.host_delay_p99_us);
  }

  std::printf(
      "\nReading the table: each thread registers a 12MB data region (six 2M\n"
      "hugepages) plus ten 4K control pages, ~16 IOTLB entries per thread.\n"
      "Eight threads fit the 128-entry IOTLB exactly; beyond that, every\n"
      "extra thread adds misses, each miss stalls the ordered PCIe pipeline\n"
      "for a page walk, per-DMA latency rises, and NIC->CPU throughput falls\n"
      "-- while the NIC buffer absorbs the difference until it drops.\n");
  return 0;
}
