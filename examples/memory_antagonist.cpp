// Live memory-bus contention (§3.2), using the incremental API.
//
// Instead of one-shot Experiment::run(), this example drives the
// simulation in 5ms steps and turns STREAM antagonist cores on and
// off mid-flight, printing a time series of throughput, memory
// bandwidth, loaded memory latency, and host delay -- the "packet
// drops at 65% utilization" phenomenon as it unfolds.
#include <cstdio>

#include "core/experiment.h"

int main() {
  hicc::ExperimentConfig cfg;
  cfg.rx_threads = 12;
  cfg.iommu_enabled = false;  // isolate the memory-bus mechanism
  cfg.antagonist_cores = 0;

  hicc::Experiment exp(cfg);
  exp.start();
  exp.advance(hicc::TimePs::from_ms(8));  // warm up

  std::printf("%8s %6s %10s %10s %12s %10s %8s\n", "t_ms", "antag", "app_gbps",
              "mem_gbs", "mem_lat_ns", "p99_us", "drop%");

  // Phase schedule: quiet -> ramp the antagonist -> quiet again.
  const struct { int cores; int steps; } phases[] = {{0, 2}, {8, 2}, {15, 3}, {0, 2}};
  double t_ms = 8.0;
  for (const auto& phase : phases) {
    exp.antagonist().set_cores(phase.cores);
    for (int s = 0; s < phase.steps; ++s) {
      exp.begin_window();
      exp.advance(hicc::TimePs::from_ms(5));
      t_ms += 5.0;
      const hicc::Metrics m = exp.snapshot();
      std::printf("%8.0f %6d %10.1f %10.1f %12.0f %10.1f %8.3f\n", t_ms,
                  phase.cores, m.app_throughput_gbps, m.memory.total_gbytes_per_sec,
                  exp.memory().current_latency().ns(), m.host_delay_p99_us,
                  m.drop_rate * 100.0);
    }
  }

  std::printf(
      "\nWith 15 STREAM cores the bus saturates (~86 GB/s): CPU cores hold far\n"
      "more requests in flight than the root complex's bounded write buffer,\n"
      "so DMA writes retire slowly, PCIe credits stall, and throughput drops\n"
      "~20%% -- even though the access link itself is far from full.\n");
  return 0;
}
