// Quickstart: run the paper's baseline workload and print the headline
// metrics.
//
//   $ ./quickstart
//
// Builds the full receiver-host simulation (40 senders, Swift, 12
// receiver threads, IOMMU ON, 2M hugepages), runs 10ms of warmup and
// 20ms of measurement, and reports what the paper's §3 instruments:
// application throughput, host drop rate, IOTLB misses per packet,
// host delay percentiles, and memory bandwidth by traffic class.
#include <cstdio>

#include "core/experiment.h"

int main() {
  hicc::ExperimentConfig cfg;      // defaults = the paper's testbed
  cfg.rx_threads = 12;
  cfg.iommu_enabled = true;

  hicc::Experiment exp(cfg);
  const hicc::Metrics m = exp.run();

  std::printf("workload: %d senders x %d receiver threads, 16KB reads, "
              "IOMMU %s, %s pages\n",
              cfg.num_senders, cfg.rx_threads, cfg.iommu_enabled ? "ON" : "OFF",
              cfg.hugepages ? "2M" : "4K");
  std::printf("application throughput : %6.1f Gbps (ceiling 92.0)\n",
              m.app_throughput_gbps);
  std::printf("access link utilization: %6.1f %%\n", m.link_utilization * 100.0);
  std::printf("host drop rate         : %6.3f %%\n", m.drop_rate * 100.0);
  std::printf("IOTLB misses per packet: %6.2f\n", m.iotlb_misses_per_packet);
  std::printf("host delay p50/p99/max : %.1f / %.1f / %.1f us\n",
              m.host_delay_p50_us, m.host_delay_p99_us, m.host_delay_max_us);
  std::printf("memory bandwidth       : %.1f GB/s total (NIC DMA %.1f, copies %.1f, "
              "page walks %.2f)\n",
              m.memory.total_gbytes_per_sec,
              m.memory.by_class_gbytes_per_sec[static_cast<int>(
                  hicc::mem::MemClass::kNicDma)],
              m.memory.by_class_gbytes_per_sec[static_cast<int>(
                  hicc::mem::MemClass::kCpuCopy)],
              m.memory.by_class_gbytes_per_sec[static_cast<int>(
                  hicc::mem::MemClass::kIommuWalk)]);
  std::printf("simulated %.0f ms in %llu events\n", m.simulated_seconds * 1e3,
              static_cast<unsigned long long>(m.events_executed));
  return 0;
}
