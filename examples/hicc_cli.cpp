// hicc_cli -- command-line experiment explorer.
//
// Runs one experiment with every knob exposed as a --key=value flag
// and prints the metrics (or a time series with --timeline-us=N).
// With --runs=N it becomes a Monte-Carlo sweep: N replicas with seeds
// derived from --seed run on the sweep thread pool (--jobs=N or
// $HICC_JOBS workers), printing per-replica rows plus mean/stddev and
// optionally writing the structured record with --json=path.
//
//   $ ./hicc_cli --threads=16 --iommu=1
//   $ ./hicc_cli --threads=12 --antagonists=15 --iommu=0 --timeline-us=2000
//   $ ./hicc_cli --threads=14 --cc=host-signal --victims=8
//   $ ./hicc_cli --threads=14 --runs=16 --jobs=4 --json=sweep_results.json
//   $ ./hicc_cli --topology=2x2x8 --receivers=2 --json=cluster.json
//   $ ./hicc_cli --help
//
// With --topology=LxSxH the run is a ClusterExperiment on a Clos
// leaf/spine fabric (docs/TOPOLOGY.md) instead of the single-host
// Experiment: the other flags describe each receiver host, and the
// JSON record carries one hicc.sweep.v1 point per receiver.
//
// With --runs and --isolate the sweep runs under the crash-isolating
// supervisor (docs/ROBUSTNESS.md): every point in its own
// `hicc_cli --point-worker` subprocess with per-point timeout, bounded
// retry, a resumable journal (--journal/--resume), and graceful
// SIGINT/SIGTERM handling. Exit codes are documented in usage() and
// shared with the worker (sweep/worker.h).
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"
#include "core/validate.h"
#include "fault/script.h"
#include "sweep/columnar.h"
#include "sweep/supervisor.h"
#include "sweep/sweep.h"
#include "sweep/worker.h"
#include "trace/exporters.h"

namespace {

using hicc::TimePs;
using hicc::sweep::kExitAborted;
using hicc::sweep::kExitConfigInvalid;
using hicc::sweep::kExitFaultParse;
using hicc::sweep::kExitGiveUp;
using hicc::sweep::kExitInterrupted;
using hicc::sweep::kExitOk;
using hicc::sweep::kExitUsage;

/// Set by the SIGINT/SIGTERM handler; the supervisor polls it, kills
/// in-flight workers, and returns with what the journal already holds.
volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

struct Flags {
  std::map<std::string, std::string> kv;

  [[nodiscard]] double number(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key, bool def) const {
    return number(key, def ? 1 : 0) != 0;
  }
  [[nodiscard]] std::string str(const std::string& key, const std::string& def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
};

void usage() {
  std::puts(
      "hicc_cli -- host interconnect congestion simulator\n"
      "\n"
      "workload:\n"
      "  --threads=N        receiver cores (default 12)\n"
      "  --senders=N        sender machines (default 40)\n"
      "  --read-kb=N        RPC read size in KB (default 16)\n"
      "  --pipeline=N       outstanding reads per flow (default 1)\n"
      "  --victims=N        latency-sensitive victim flows (default 0)\n"
      "receiver host:\n"
      "  --iommu=0|1        memory protection (default 1)\n"
      "  --hugepages=0|1    2M vs 4K data mappings (default 1)\n"
      "  --region-mb=N      Rx region per thread (default 12)\n"
      "  --iotlb=N          IOTLB entries (default 128)\n"
      "  --nic-buffer-kb=N  NIC input SRAM (default 1024)\n"
      "  --ats=0|1          device-side translation (default 0)\n"
      "  --strict=0|1       strict IOMMU invalidation (default 0)\n"
      "  --ddio=0|1         direct cache access (default 1)\n"
      "memory bus:\n"
      "  --antagonists=N    STREAM cores, 0-15 (default 0)\n"
      "  --remote-numa=0|1  antagonist on the other node (default 0)\n"
      "  --mba-gbs=X        antagonist bandwidth cap, GB/s (default off)\n"
      "protocol:\n"
      "  --cc=swift|tcp|host-signal   (default swift)\n"
      "  --host-target-us=N           Swift host target (default 100)\n"
      "topology (docs/TOPOLOGY.md):\n"
      "  --topology=LxSxH   run a Clos cluster instead of the single-host\n"
      "                     experiment: L leaves x S spines x H total hosts\n"
      "                     (H divides evenly across the leaves), e.g. 2x2x8.\n"
      "                     --senders is ignored; sender machines are the\n"
      "                     hosts that are not receivers. With --json, the\n"
      "                     record carries one hicc.sweep.v1 point per\n"
      "                     receiver host\n"
      "  --receivers=N      hosts 0..N-1 run full receiver stacks; the rest\n"
      "                     serve reads to every receiver (default 1)\n"
      "  --ecmp-seed=N      stateless ECMP hash seed (default 1)\n"
      "  --host-gbps=X      host-to-leaf link rate (default 100)\n"
      "  --fabric-gbps=X    leaf-to-spine link rate (default 100)\n"
      "  --full-hosts=0|1   build quiescent full host stacks on sender\n"
      "                     machines (default 1)\n"
      "  --antagonist-profile=A,B,...  per-receiver antagonist cores,\n"
      "                     cycled across receivers (heterogeneous fleet);\n"
      "                     overrides --antagonists on receiver hosts\n"
      "  --parallel=N       run the cluster on the partitioned engine with\n"
      "                     N threads (docs/PARALLELISM.md); 'auto' sizes\n"
      "                     the pool like --jobs, 0 keeps the serial path\n"
      "                     (default 0). Results are bitwise-identical for\n"
      "                     every N >= 1\n"
      "open-loop workload (docs/WORKLOADS.md; needs --topology):\n"
      "  --workload=PATTERN run receivers open loop: flows arrive by a\n"
      "                     random process and retire through a recyclable\n"
      "                     flow pool instead of the closed-loop read\n"
      "                     pipeline. PATTERN: off|incast|uniform|\n"
      "                     allreduce_ring|allreduce_tree (default off)\n"
      "  --wl-rate=R        mean arrivals per receiver per second (1e5)\n"
      "  --wl-arrival=A     poisson|bursty inter-arrival process (poisson)\n"
      "  --wl-burst-factor=X    bursty: on-state rate multiplier (8)\n"
      "  --wl-burst-on=F        bursty: fraction of time on (0.2)\n"
      "  --wl-burst-period-us=N bursty: mean on+off cycle length (500)\n"
      "  --wl-size=D        fixed|websearch|hadoop flow sizes (fixed)\n"
      "  --wl-size-kb=N     flow size for --wl-size=fixed, KB (16)\n"
      "  --wl-fanout=N      incast fan-out width (8)\n"
      "  --wl-max-active=N  flow-pool slots per receiver -- the hard bound\n"
      "                     on active flows and workload memory (4096)\n"
      "  --wl-target-flows=N  stop injecting after N flows cluster-wide\n"
      "                     (0 = unbounded, the default)\n"
      "  --wl-sketch-error=A  FCT/slowdown/host-delay quantile-sketch\n"
      "                     relative error bound, in (0, 0.5) (0.01)\n"
      "  --columnar-out=PATH  also write the per-receiver record in the\n"
      "                     compact columnar hicc.sweepc.v1 form\n"
      "faults (docs/FAULTS.md):\n"
      "  --faults=SPEC      schedule mid-run disturbances. SPEC is a ';'-\n"
      "                     separated list of kind@time[+dur][/period][,k=v...]\n"
      "                     entries, e.g.\n"
      "                       --faults='mem.antagonist@5ms+2ms,cores=15'\n"
      "                       --faults='net.loss@1ms+500us/2ms,prob=0.05'\n"
      "                     in --topology runs, net.* events accept\n"
      "                     leaf=+spine= (a leaf-spine link) or host= (an\n"
      "                     edge uplink) targeting\n"
      "run control:\n"
      "  --warmup-ms=N --measure-ms=N --seed=N\n"
      "  --max-events=N     watchdog: abort the run after N simulator\n"
      "                     events (0 = unlimited, the default)\n"
      "  --timeline-us=N    print a metrics row every N us instead of a\n"
      "                     single summary\n"
      "telemetry (docs/OBSERVABILITY.md):\n"
      "  --trace=PATH       capture a probe time series: .csv -> long-format\n"
      "                     CSV, anything else -> Chrome trace_event JSON\n"
      "                     (open in chrome://tracing or ui.perfetto.dev).\n"
      "                     $HICC_TRACE is the env equivalent. With --runs,\n"
      "                     end-of-run probe values land in the sweep JSON\n"
      "                     as extra.trace.* instead of per-replica files\n"
      "  --trace-period-us=N  sampler tick in us (default 5)\n"
      "sweep (Monte-Carlo replicas):\n"
      "  --runs=N           run N replicas with per-replica seeds derived\n"
      "                     from --seed; prints each replica + mean/stddev\n"
      "  --jobs=N           sweep worker threads (default: $HICC_JOBS, else\n"
      "                     hardware concurrency)\n"
      "  --json=PATH        write the sweep's structured record as JSON\n"
      "crash isolation (docs/ROBUSTNESS.md; needs --runs):\n"
      "  --isolate          run each point in its own worker subprocess so\n"
      "                     a crashing/hanging/OOM-killed point is retried\n"
      "                     and, on give-up, recorded with its failure\n"
      "                     taxonomy instead of sinking the sweep. Records\n"
      "                     pin wall_seconds to 0, so isolated sweep JSON\n"
      "                     is bitwise deterministic\n"
      "  --point-timeout=S  SIGKILL a worker running longer than S seconds\n"
      "                     (wall clock; 0 = no timeout, the default)\n"
      "  --retries=N        extra attempts per failed point (default 2),\n"
      "                     with exponential backoff between attempts\n"
      "  --backoff-ms=N     backoff base, milliseconds (default 200)\n"
      "  --journal=PATH     append each finalized point durably to a\n"
      "                     hicc.sweep.journal.v1 file as it completes\n"
      "  --resume=PATH      skip the points already in PATH's journal and\n"
      "                     append the rest (implies --isolate; the merged\n"
      "                     JSON is bitwise identical to an uninterrupted\n"
      "                     run). Give the same flags as the original run\n"
      "  --inject-fail=I:M  testing aid: inject failure mode M into point\n"
      "                     I's worker (segv|abort|kill|hang|exit:N|\n"
      "                     flaky-segv:K|flaky-kill:K)\n"
      "  --point-worker     internal: run one point read from stdin and\n"
      "                     write its hicc.sweep.v1 record to stdout\n"
      "exit codes:\n"
      "  0 ok; 1 usage/IO error; 2 invalid configuration; 3 fault-script\n"
      "  or spec parse error; 4 run finished degraded (run_status != ok);\n"
      "  5 supervisor gave up on >= 1 point; 6 interrupted (SIGINT/\n"
      "  SIGTERM; partial results + journal flushed); 127 worker exec\n"
      "  failure");
}

void print_metrics(const hicc::Metrics& m) {
  std::printf("app throughput     %8.2f Gbps\n", m.app_throughput_gbps);
  std::printf("link utilization   %8.2f %%\n", m.link_utilization * 100);
  std::printf("host drop rate     %8.4f %%\n", m.drop_rate * 100);
  std::printf("IOTLB misses/pkt   %8.3f\n", m.iotlb_misses_per_packet);
  std::printf("host delay p50/p99 %8.1f / %.1f us\n", m.host_delay_p50_us,
              m.host_delay_p99_us);
  std::printf("memory bandwidth   %8.2f GB/s (nic %.2f, walks %.3f, copy %.2f, "
              "antagonist %.2f)\n",
              m.memory.total_gbytes_per_sec,
              m.memory.by_class_gbytes_per_sec[0], m.memory.by_class_gbytes_per_sec[1],
              m.memory.by_class_gbytes_per_sec[2], m.memory.by_class_gbytes_per_sec[3]);
  if (m.remote_memory.total_gbytes_per_sec > 0.01) {
    std::printf("remote-node memory %8.2f GB/s\n", m.remote_memory.total_gbytes_per_sec);
  }
  if (m.victim_reads > 0) {
    std::printf("victim reads       %8lld (p50 %.1f us, p99 %.1f us)\n",
                static_cast<long long>(m.victim_reads), m.victim_read_p50_us,
                m.victim_read_p99_us);
  }
  std::printf("packets            %lld delivered, %lld dropped, %lld retransmitted\n",
              static_cast<long long>(m.delivered_packets),
              static_cast<long long>(m.nic_buffer_drops),
              static_cast<long long>(m.retransmits));
  std::printf("pipeline stalls    %lld translation, %lld write-buffer\n",
              static_cast<long long>(m.pcie_translation_stalls),
              static_cast<long long>(m.pcie_write_buffer_stalls));
  if (m.fault_windows > 0) {
    std::printf("fault windows      %8lld (active %.1f us, blind %.1f us, %lld drops)\n",
                static_cast<long long>(m.fault_windows), m.fault_active_us, m.fault_blind_us,
                static_cast<long long>(m.fault_drops));
  }
  std::printf("simulated          %.1f ms (%llu events)\n", m.simulated_seconds * 1e3,
              static_cast<unsigned long long>(m.events_executed));
  if (m.run_status != hicc::RunStatus::kOk) {
    std::printf("run status         %s (%s)\n", hicc::to_string(m.run_status),
                m.run_status_detail.c_str());
  }
}

/// True when `key` is a per-host probe harvest ("trace.host<h>.name"),
/// in which case *host receives h. Global probes ("trace.nic.x") and
/// non-trace extras return false.
bool host_scoped_probe(const std::string& key, int* host) {
  constexpr char kPrefix[] = "trace.host";
  if (key.rfind(kPrefix, 0) != 0) return false;
  std::size_t i = sizeof(kPrefix) - 1;
  const std::size_t digits_start = i;
  int h = 0;
  while (i < key.size() && key[i] >= '0' && key[i] <= '9') {
    h = h * 10 + (key[i] - '0');
    ++i;
  }
  if (i == digits_start || i >= key.size() || key[i] != '.') return false;
  *host = h;
  return true;
}

int run_topology(const Flags& flags, hicc::ExperimentConfig host_cfg,
                 const std::string& trace_path) {
  const std::string spec = flags.str("topology", "");
  int leaves = 0, spines = 0, hosts = 0;
  char excess = '\0';
  if (std::sscanf(spec.c_str(), "%dx%dx%d%c", &leaves, &spines, &hosts, &excess) != 3) {
    std::fprintf(stderr, "bad --topology=%s (want LEAVESxSPINESxHOSTS, e.g. 2x2x8)\n",
                 spec.c_str());
    return kExitConfigInvalid;
  }
  if (leaves <= 0 || hosts <= 0 || hosts % leaves != 0) {
    std::fprintf(stderr,
                 "bad --topology=%s: total hosts (%d) must divide evenly across "
                 "%d leaves\n",
                 spec.c_str(), hosts, leaves);
    return kExitConfigInvalid;
  }
  if (flags.number("runs", 0) > 0 || flags.number("timeline-us", 0) > 0) {
    std::fprintf(stderr, "--topology is a single cluster run; drop --runs/--timeline-us\n");
    return kExitUsage;
  }

  hicc::ClusterConfig cfg;
  cfg.host = std::move(host_cfg);
  cfg.faults = std::move(cfg.host.faults);
  cfg.host.faults = hicc::fault::FaultScript{};
  cfg.topology.leaves = leaves;
  cfg.topology.spines = spines;
  cfg.topology.hosts_per_leaf = hosts / leaves;
  cfg.topology.ecmp_seed = static_cast<std::uint64_t>(flags.number("ecmp-seed", 1));
  cfg.topology.host_link_rate = hicc::BitRate::gbps(flags.number("host-gbps", 100));
  cfg.topology.fabric_link_rate = hicc::BitRate::gbps(flags.number("fabric-gbps", 100));
  cfg.receivers = static_cast<int>(flags.number("receivers", 1));
  cfg.full_sender_hosts = flags.flag("full-hosts", true);
  const std::string wl_pattern = flags.str("workload", "off");
  if (!hicc::workload::pattern_from_string(wl_pattern.c_str(), &cfg.workload.pattern)) {
    std::fprintf(stderr,
                 "unknown --workload=%s (off|incast|uniform|allreduce_ring|"
                 "allreduce_tree)\n",
                 wl_pattern.c_str());
    return kExitConfigInvalid;
  }
  const std::string wl_arrival = flags.str("wl-arrival", "poisson");
  if (!hicc::workload::arrival_from_string(wl_arrival.c_str(), &cfg.workload.arrival)) {
    std::fprintf(stderr, "unknown --wl-arrival=%s (poisson|bursty)\n", wl_arrival.c_str());
    return kExitConfigInvalid;
  }
  const std::string wl_size = flags.str("wl-size", "fixed");
  if (!hicc::workload::size_dist_from_string(wl_size.c_str(), &cfg.workload.size_dist)) {
    std::fprintf(stderr, "unknown --wl-size=%s (fixed|websearch|hadoop)\n", wl_size.c_str());
    return kExitConfigInvalid;
  }
  cfg.workload.rate_per_s = flags.number("wl-rate", cfg.workload.rate_per_s);
  cfg.workload.burst_factor = flags.number("wl-burst-factor", cfg.workload.burst_factor);
  cfg.workload.burst_on_fraction = flags.number("wl-burst-on", cfg.workload.burst_on_fraction);
  cfg.workload.burst_period =
      TimePs::from_us(flags.number("wl-burst-period-us", cfg.workload.burst_period.us()));
  cfg.workload.fixed_size = hicc::Bytes(static_cast<std::int64_t>(
      flags.number("wl-size-kb", static_cast<double>(cfg.workload.fixed_size.count()) / 1024.0) *
      1024.0));
  cfg.workload.fanout = static_cast<int>(flags.number("wl-fanout", cfg.workload.fanout));
  cfg.workload.max_active =
      static_cast<int>(flags.number("wl-max-active", cfg.workload.max_active));
  cfg.workload.target_flows =
      static_cast<std::int64_t>(flags.number("wl-target-flows", 0));
  cfg.workload.sketch_relative_error =
      flags.number("wl-sketch-error", cfg.workload.sketch_relative_error);
  if (cfg.workload.enabled()) cfg.host.victim_flows = 0;
  const std::string antag_profile = flags.str("antagonist-profile", "");
  if (!antag_profile.empty()) {
    // Comma-separated per-receiver antagonist core counts, repeated
    // cyclically across receivers (heterogeneous-fleet modeling).
    std::size_t pos = 0;
    while (pos < antag_profile.size()) {
      std::size_t used = 0;
      int cores = 0;
      try {
        cores = std::stoi(antag_profile.substr(pos), &used);
      } catch (...) {
        used = 0;
      }
      if (used == 0) {
        std::fprintf(stderr, "bad --antagonist-profile=%s (comma-separated core counts)\n",
                     antag_profile.c_str());
        return kExitConfigInvalid;
      }
      cfg.antagonist_profile.push_back(cores);
      pos += used;
      if (pos < antag_profile.size() && antag_profile[pos] == ',') ++pos;
    }
  }

  const std::string parallel = flags.str("parallel", "0");
  if (parallel == "auto") {
    // Same pool-sizing rule as sweep --jobs ($HICC_JOBS, then hardware
    // concurrency); the engine clamps to the partition count.
    cfg.parallelism = hicc::sweep::SweepRunner::resolve_jobs(0);
  } else {
    cfg.parallelism = static_cast<int>(flags.number("parallel", 0));
  }

  if (const auto violations = hicc::validate(cfg); !violations.empty()) {
    std::fprintf(stderr, "invalid cluster configuration (%zu problem(s)):\n",
                 violations.size());
    for (const auto& v : violations) {
      std::fprintf(stderr, "  %s: %s\n", v.field.c_str(), v.message.c_str());
    }
    return kExitConfigInvalid;
  }

  hicc::ClusterExperiment exp(std::move(cfg));
  hicc::trace::FileTraceSink trace_file;
  if (!trace_path.empty() && !trace_file.open(*exp.tracer(), trace_path)) {
    std::fprintf(stderr, "failed to open trace file %s\n", trace_path.c_str());
    return 1;
  }

  const hicc::ClusterMetrics cm = exp.run();

  // End-of-run probe values, harvested while the tracer is live; each
  // receiver's JSON point gets the global probes plus its own host<r>.*
  // slice.
  hicc::sweep::SweepResult probes;
  hicc::sweep::harvest_trace_probes(exp.tracer(), probes);

  hicc::Table t({"host", "app_gbps", "drop_pct", "miss_per_pkt", "p99_us", "mem_gbs",
                 "port_drops"});
  for (int r = 0; r < exp.num_receivers(); ++r) {
    const hicc::Metrics& m = cm.per_receiver[static_cast<std::size_t>(r)];
    t.add_row({static_cast<std::int64_t>(r), m.app_throughput_gbps, m.drop_rate * 100.0,
               m.iotlb_misses_per_packet, m.host_delay_p99_us,
               m.memory.total_gbytes_per_sec, exp.fabric().host_port_drops(r)});
  }
  t.print(std::cout, 3);
  std::printf("cluster             %dL x %dS x %dH, %d receiver(s), %d sender machine(s)\n",
              exp.config().topology.leaves, exp.config().topology.spines,
              exp.config().topology.num_hosts(), exp.num_receivers(),
              exp.num_sender_hosts());
  std::printf("total throughput   %8.2f Gbps (max p99 %.1f us)\n",
              cm.total_app_throughput_gbps, cm.max_host_delay_p99_us);
  std::printf("packets            %lld sent, %lld host drops, %lld fabric drops\n",
              static_cast<long long>(cm.total_data_packets_sent),
              static_cast<long long>(cm.total_nic_buffer_drops),
              static_cast<long long>(cm.total_fabric_drops));
  std::printf("simulated          %.1f ms (%llu events)\n", cm.simulated_seconds * 1e3,
              static_cast<unsigned long long>(cm.events_executed));
  if (cm.partitions > 0) {
    std::printf("parallel engine    %d partitions, %llu windows, %llu cross-partition "
                "messages\n",
                cm.partitions, static_cast<unsigned long long>(cm.parallel_windows),
                static_cast<unsigned long long>(cm.parallel_messages));
  }
  if (cm.workload.enabled) {
    std::printf("workload           %s/%s/%s: %lld started, %lld completed, %lld "
                "pool-limited, %lld active\n",
                hicc::workload::to_string(exp.config().workload.pattern),
                hicc::workload::to_string(exp.config().workload.arrival),
                hicc::workload::to_string(exp.config().workload.size_dist),
                static_cast<long long>(cm.workload.flows_started),
                static_cast<long long>(cm.workload.flows_completed),
                static_cast<long long>(cm.workload.pool_exhausted),
                static_cast<long long>(cm.workload.active_flows));
    std::printf("flow completion    p50 %.1f / p99 %.1f / p99.9 %.1f us "
                "(slowdown p99 %.2fx)\n",
                cm.workload.fct_p50_us, cm.workload.fct_p99_us, cm.workload.fct_p999_us,
                cm.workload.slowdown_p99);
  }
  if (cm.run_status != hicc::RunStatus::kOk) {
    std::printf("run status         %s\n", hicc::to_string(cm.run_status));
  }

  int rc = 0;
  if (!trace_path.empty()) {
    if (trace_file.close(*exp.tracer())) {
      std::printf("(trace written to %s)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace file %s\n", trace_path.c_str());
      rc = 1;
    }
  }

  const std::string json_path = flags.str("json", "");
  const std::string columnar_path = flags.str("columnar-out", "");
  if (!json_path.empty() || !columnar_path.empty()) {
    // One hicc.sweep.v1 point per receiver host: the effective per-host
    // config, that receiver's Metrics, and extras carrying the host
    // index, its fabric-port state, and its slice of the trace probes.
    // Workload runs add the cluster-merged sketch quantiles as
    // workload.* extras (identical on every row by construction).
    std::vector<hicc::sweep::SweepResult> points(
        static_cast<std::size_t>(exp.num_receivers()));
    for (int r = 0; r < exp.num_receivers(); ++r) {
      hicc::sweep::SweepResult& p = points[static_cast<std::size_t>(r)];
      p.index = static_cast<std::size_t>(r);
      p.config = exp.config().host;
      p.metrics = cm.per_receiver[static_cast<std::size_t>(r)];
      p.extra["host"] = r;
      p.extra["cluster.port_drops"] =
          static_cast<double>(exp.fabric().host_port_drops(r));
      p.extra["cluster.port_queue_bytes"] =
          static_cast<double>(exp.fabric().host_queue(r).count());
      if (cm.workload.enabled) {
        p.extra["workload.flows_started"] = static_cast<double>(cm.workload.flows_started);
        p.extra["workload.flows_completed"] =
            static_cast<double>(cm.workload.flows_completed);
        p.extra["workload.pool_exhausted"] = static_cast<double>(cm.workload.pool_exhausted);
        p.extra["workload.active_flows"] = static_cast<double>(cm.workload.active_flows);
        p.extra["workload.fct_p50_us"] = cm.workload.fct_p50_us;
        p.extra["workload.fct_p99_us"] = cm.workload.fct_p99_us;
        p.extra["workload.fct_p999_us"] = cm.workload.fct_p999_us;
        p.extra["workload.slowdown_p50"] = cm.workload.slowdown_p50;
        p.extra["workload.slowdown_p99"] = cm.workload.slowdown_p99;
        p.extra["workload.slowdown_p999"] = cm.workload.slowdown_p999;
        p.extra["workload.host_delay_p99_us"] = cm.workload.host_delay_p99_us;
        p.extra["workload.host_delay_p999_us"] = cm.workload.host_delay_p999_us;
      }
      for (const auto& [key, value] : probes.extra) {
        int h = -1;
        if (!host_scoped_probe(key, &h) || h == r) p.extra[key] = value;
      }
    }
    if (!json_path.empty()) {
      if (hicc::sweep::save_json(points, json_path)) {
        std::printf("(cluster record written to %s)\n", json_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        rc = 1;
      }
    }
    if (!columnar_path.empty()) {
      if (hicc::sweep::save_columnar(points, columnar_path)) {
        std::printf("(columnar record written to %s)\n", columnar_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", columnar_path.c_str());
        rc = 1;
      }
    }
  }
  // A degraded end (watchdog abort, mailbox overflow) outranks ok but
  // not an output-file failure.
  if (rc == 0 && cm.run_status != hicc::RunStatus::kOk) rc = kExitAborted;
  return rc;
}

/// The --runs --isolate path: the sweep under the crash-isolating
/// supervisor, each point a `hicc_cli --point-worker` subprocess.
int run_isolated_sweep(const Flags& flags, const hicc::ExperimentConfig& cfg, int runs) {
  std::vector<hicc::ExperimentConfig> points(static_cast<std::size_t>(runs), cfg);
  // Same per-replica seed derivation as the in-process SweepRunner's
  // reseed path, so isolated and in-process sweeps simulate the same
  // points.
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].seed = hicc::derive_seed(cfg.seed, i);
  }

  hicc::sweep::SupervisorOptions opts;
  opts.params.point_timeout_s = flags.number("point-timeout", 0.0);
  opts.params.max_attempts = 1 + static_cast<int>(flags.number("retries", 2));
  opts.params.backoff_base_s = flags.number("backoff-ms", 200.0) / 1e3;
  opts.params.backoff_cap_s = std::max(opts.params.backoff_base_s, 5.0);
  opts.params.jobs = static_cast<int>(flags.number("jobs", 0));
  // The worker is this very binary; /proc/self/exe survives argv[0]
  // being a bare name found via $PATH.
  opts.worker_argv = {"/proc/self/exe", "--point-worker"};
  opts.stop_flag = &g_stop;
  opts.log = &std::cerr;

  const std::string resume = flags.str("resume", "");
  opts.journal_path = flags.str("journal", "");
  if (!resume.empty()) {
    if (!opts.journal_path.empty() && opts.journal_path != resume) {
      std::fprintf(stderr, "--journal and --resume must name the same file\n");
      return kExitUsage;
    }
    opts.journal_path = resume;
    opts.resume = true;
  }

  const std::string inject = flags.str("inject-fail", "");
  if (!inject.empty()) {
    const auto colon = inject.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --inject-fail=%s (want INDEX:MODE)\n", inject.c_str());
      return kExitUsage;
    }
    const std::size_t target = static_cast<std::size_t>(std::atoll(inject.c_str()));
    const std::string mode = inject.substr(colon + 1);
    opts.decorate = [target, mode](std::size_t i) {
      return i == target ? "inject=" + mode + "\n" : std::string();
    };
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  hicc::sweep::SupervisorOutcome outcome;
  const hicc::sweep::Supervisor supervisor(opts);
  try {
    outcome = supervisor.run(points);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitUsage;
  }

  hicc::Table t({"point", "status", "attempts", "detail"});
  for (const auto& p : outcome.points) {
    t.add_row({static_cast<std::int64_t>(p.index),
               std::string(p.completed ? hicc::to_string(p.status) : "incomplete"),
               static_cast<std::int64_t>(p.attempts), p.detail});
  }
  t.print(std::cout, 3);
  std::printf("%zu/%d points completed (%zu resumed, %zu failed, %zu degraded) on %d "
              "worker(s)\n",
              outcome.completed, runs, outcome.resumed, outcome.failures, outcome.degraded,
              supervisor.jobs());

  int rc = kExitOk;
  if (outcome.interrupted) {
    rc = kExitInterrupted;
    if (!opts.journal_path.empty()) {
      std::printf("interrupted; finalized points are journaled -- rerun with "
                  "--resume=%s to finish\n",
                  opts.journal_path.c_str());
    } else {
      std::printf("interrupted (no --journal, completed points are lost)\n");
    }
  } else if (outcome.failures > 0) {
    rc = kExitGiveUp;
  } else if (outcome.degraded > 0) {
    rc = kExitAborted;
  }

  const std::string json_path = flags.str("json", "");
  if (!json_path.empty()) {
    if (hicc::sweep::save_merged_json(outcome, json_path)) {
      std::printf("(%ssweep record written to %s)\n",
                  outcome.interrupted ? "partial " : "", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      if (rc == kExitOk) rc = kExitUsage;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode first: the supervisor fork/execs this same binary with
  // --point-worker; everything it needs arrives on stdin.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--point-worker") == 0) {
      return hicc::sweep::run_point_worker(std::cin, std::cout, std::cerr);
    }
  }

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      return 1;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(2, eq == std::string::npos ? arg.npos : eq - 2);
    const std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    flags.kv[key] = value;
  }

  hicc::ExperimentConfig cfg;
  cfg.rx_threads = static_cast<int>(flags.number("threads", 12));
  cfg.num_senders = static_cast<int>(flags.number("senders", 40));
  cfg.read_size = hicc::Bytes(static_cast<std::int64_t>(flags.number("read-kb", 16) * 1024));
  cfg.read_pipeline = static_cast<int>(flags.number("pipeline", 1));
  cfg.victim_flows = static_cast<int>(flags.number("victims", 0));
  cfg.iommu_enabled = flags.flag("iommu", true);
  cfg.hugepages = flags.flag("hugepages", true);
  cfg.data_region = hicc::Bytes::mib(flags.number("region-mb", 12));
  cfg.iommu.iotlb_entries = static_cast<int>(flags.number("iotlb", 128));
  cfg.nic.input_buffer =
      hicc::Bytes(static_cast<std::int64_t>(flags.number("nic-buffer-kb", 1024) * 1024));
  cfg.ats_enabled = flags.flag("ats", false);
  cfg.strict_iommu = flags.flag("strict", false);
  cfg.ddio.enabled = flags.flag("ddio", true);
  cfg.antagonist_cores = static_cast<int>(flags.number("antagonists", 0));
  cfg.antagonist_remote_numa = flags.flag("remote-numa", false);
  cfg.antagonist_throttle_gbps = flags.number("mba-gbs", 0.0);
  cfg.swift.host_target = TimePs::from_us(flags.number("host-target-us", 100));
  cfg.warmup = TimePs::from_ms(flags.number("warmup-ms", 10));
  cfg.measure = TimePs::from_ms(flags.number("measure-ms", 20));
  cfg.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  cfg.watchdog.max_events = static_cast<std::uint64_t>(flags.number("max-events", 0));

  const std::string faults_spec = flags.str("faults", "");
  if (!faults_spec.empty()) {
    hicc::fault::ParseResult parsed = hicc::fault::parse_script(faults_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "invalid --faults spec:\n");
      for (const auto& err : parsed.errors) std::fprintf(stderr, "  %s\n", err.c_str());
      return kExitFaultParse;
    }
    cfg.faults = std::move(parsed.script);
  }

  const char* trace_env = std::getenv("HICC_TRACE");
  const std::string trace_path =
      flags.str("trace", trace_env != nullptr ? trace_env : "");
  if (!trace_path.empty()) {
    cfg.trace.enabled = true;
    cfg.trace.sample_period = TimePs::from_us(flags.number("trace-period-us", 5));
  }

  const std::string cc = flags.str("cc", "swift");
  if (cc == "tcp") {
    cfg.cc = hicc::transport::CcAlgorithm::kTcpLike;
  } else if (cc == "host-signal") {
    cfg.cc = hicc::transport::CcAlgorithm::kHostSignal;
  } else if (cc == "swift") {
    cfg.cc = hicc::transport::CcAlgorithm::kSwift;
  } else {
    std::fprintf(stderr, "unknown --cc=%s (swift|tcp|host-signal)\n", cc.c_str());
    return kExitConfigInvalid;
  }

  // A --topology run validates and executes as a ClusterConfig; the
  // flag-built cfg becomes its per-host template (with faults promoted
  // to cluster scope, where topology targeting applies).
  if (!flags.str("topology", "").empty()) {
    return run_topology(flags, std::move(cfg), trace_path);
  }

  // Reject a nonsensical configuration with every problem at once,
  // before any experiment is built.
  if (const auto violations = hicc::validate(cfg); !violations.empty()) {
    std::fprintf(stderr, "invalid configuration (%zu problem(s)):\n", violations.size());
    for (const auto& v : violations) {
      std::fprintf(stderr, "  %s: %s\n", v.field.c_str(), v.message.c_str());
    }
    return kExitConfigInvalid;
  }

  const int runs = static_cast<int>(flags.number("runs", 0));
  if (runs > 0) {
    // --resume implies isolation: only the supervisor journals points.
    if (flags.flag("isolate", false) || !flags.str("resume", "").empty()) {
      return run_isolated_sweep(flags, cfg, runs);
    }
    std::vector<hicc::ExperimentConfig> points(static_cast<std::size_t>(runs), cfg);
    hicc::sweep::SweepOptions opts;
    opts.jobs = static_cast<int>(flags.number("jobs", 0));
    opts.reseed = true;
    opts.sweep_seed = cfg.seed;
    // Replicas do not write per-run trace files; instead each point's
    // final probe values are harvested into SweepResult::extra.
    if (cfg.trace.enabled) opts.probe = hicc::sweep::harvest_trace;
    const hicc::sweep::SweepRunner runner(opts);
    const auto results = runner.run(std::move(points));

    hicc::Table t({"run", "seed", "app_gbps", "drop_pct", "miss_per_pkt",
                   "p99_us", "mem_gbs", "wall_s"});
    double sum = 0.0, sumsq = 0.0;
    for (const auto& r : results) {
      const hicc::Metrics& m = r.metrics;
      sum += m.app_throughput_gbps;
      sumsq += m.app_throughput_gbps * m.app_throughput_gbps;
      t.add_row({static_cast<std::int64_t>(r.index),
                 std::to_string(r.config.seed), m.app_throughput_gbps,
                 m.drop_rate * 100.0, m.iotlb_misses_per_packet, m.host_delay_p99_us,
                 m.memory.total_gbytes_per_sec, r.wall_seconds});
    }
    t.print(std::cout, 3);
    const double n = static_cast<double>(runs);
    const double mean = sum / n;
    const double var = runs > 1 ? std::max(0.0, (sumsq - n * mean * mean) / (n - 1)) : 0.0;
    std::printf("app throughput: mean %.2f Gbps, stddev %.3f over %d runs "
                "(%d workers)\n",
                mean, std::sqrt(var), runs, runner.jobs());

    const std::string json_path = flags.str("json", "");
    if (!json_path.empty()) {
      if (hicc::sweep::save_json(results, json_path)) {
        std::printf("(sweep record written to %s)\n", json_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
      }
    }
    return 0;
  }

  hicc::Experiment exp(cfg);
  hicc::trace::FileTraceSink trace_file;
  if (!trace_path.empty() && !trace_file.open(*exp.tracer(), trace_path)) {
    std::fprintf(stderr, "failed to open trace file %s\n", trace_path.c_str());
    return 1;
  }
  // Closes the capture (final sample + footer) while `exp` is alive.
  const auto close_trace = [&]() -> bool {
    if (trace_path.empty()) return true;
    if (!trace_file.close(*exp.tracer())) {
      std::fprintf(stderr, "failed to write trace file %s\n", trace_path.c_str());
      return false;
    }
    std::printf("(trace written to %s)\n", trace_path.c_str());
    return true;
  };

  const double timeline_us = flags.number("timeline-us", 0.0);
  if (timeline_us > 0.0) {
    exp.start();
    exp.advance(cfg.warmup);
    std::printf("%10s %10s %9s %9s %10s %10s\n", "t_ms", "app_gbps", "drop%", "miss/pkt",
                "p99_us", "mem_gbs");
    TimePs t = cfg.warmup;
    while (t < cfg.warmup + cfg.measure) {
      exp.begin_window();
      exp.advance(TimePs::from_us(timeline_us));
      t += TimePs::from_us(timeline_us);
      const hicc::Metrics m = exp.snapshot();
      std::printf("%10.2f %10.2f %9.3f %9.2f %10.1f %10.1f\n", t.us() / 1000.0,
                  m.app_throughput_gbps, m.drop_rate * 100, m.iotlb_misses_per_packet,
                  m.host_delay_p99_us, m.memory.total_gbytes_per_sec);
    }
    return close_trace() ? 0 : 1;
  }

  const hicc::Metrics metrics = exp.run();
  print_metrics(metrics);
  if (!close_trace()) return 1;
  return metrics.run_status == hicc::RunStatus::kOk ? kExitOk : kExitAborted;
}
