// Congestion-response comparison (§4 "rethinking congestion response").
//
// Runs the interconnect-congested operating point (16 receiver
// threads, IOMMU ON) under three protocols and prints what each pays
// in drops and tail latency:
//   swift             RTT-timescale delay response, 100us host target
//   tcp-like          loss-based AIMD (no delay signal at all)
//   swift+host-signal Swift plus a sub-RTT multiplicative cut when the
//                     NIC buffer crosses 75% occupancy
#include <cstdio>

#include "core/experiment.h"

namespace {
hicc::Metrics run_with(hicc::transport::CcAlgorithm cc, const char* label) {
  hicc::ExperimentConfig cfg;
  cfg.rx_threads = 16;
  cfg.iommu_enabled = true;
  cfg.cc = cc;
  hicc::Experiment exp(cfg);
  const hicc::Metrics m = exp.run();
  std::printf("%-18s %10.1f %9.3f %11lld %10.1f %10.1f\n", label,
              m.app_throughput_gbps, m.drop_rate * 100.0,
              static_cast<long long>(m.retransmits), m.host_delay_p50_us,
              m.host_delay_p99_us);
  return m;
}
}  // namespace

int main() {
  std::printf("Congestion response under host interconnect congestion\n");
  std::printf("(16 receiver threads, IOMMU ON: the regime where Swift's 100us\n");
  std::printf(" host target cannot see the 1MB NIC buffer filling in time)\n\n");
  std::printf("%-18s %10s %9s %11s %10s %10s\n", "protocol", "app_gbps", "drop%",
              "retransmits", "p50_us", "p99_us");

  run_with(hicc::transport::CcAlgorithm::kSwift, "swift");
  run_with(hicc::transport::CcAlgorithm::kTcpLike, "tcp-like");
  run_with(hicc::transport::CcAlgorithm::kHostSignal, "swift+host-signal");

  std::printf(
      "\nThe loss-based baseline only learns about host congestion from drops,\n"
      "so it pays the highest loss rate. Swift reacts within an RTT of the\n"
      "host delay crossing 100us -- too late when in-flight bytes exceed the\n"
      "NIC buffer. The sub-RTT hardware signal cuts windows before overflow,\n"
      "trading a little throughput for far fewer drops (§4's direction).\n");
  return 0;
}
