# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/iommu_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/nic_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
