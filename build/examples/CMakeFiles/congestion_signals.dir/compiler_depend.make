# Empty compiler generated dependencies file for congestion_signals.
# This may be replaced when dependencies are built.
