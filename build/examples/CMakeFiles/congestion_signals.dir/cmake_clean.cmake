file(REMOVE_RECURSE
  "CMakeFiles/congestion_signals.dir/congestion_signals.cpp.o"
  "CMakeFiles/congestion_signals.dir/congestion_signals.cpp.o.d"
  "congestion_signals"
  "congestion_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
