file(REMOVE_RECURSE
  "CMakeFiles/iommu_contention.dir/iommu_contention.cpp.o"
  "CMakeFiles/iommu_contention.dir/iommu_contention.cpp.o.d"
  "iommu_contention"
  "iommu_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iommu_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
