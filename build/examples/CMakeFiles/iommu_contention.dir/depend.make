# Empty dependencies file for iommu_contention.
# This may be replaced when dependencies are built.
