# Empty compiler generated dependencies file for memory_antagonist.
# This may be replaced when dependencies are built.
