file(REMOVE_RECURSE
  "CMakeFiles/memory_antagonist.dir/memory_antagonist.cpp.o"
  "CMakeFiles/memory_antagonist.dir/memory_antagonist.cpp.o.d"
  "memory_antagonist"
  "memory_antagonist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_antagonist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
