file(REMOVE_RECURSE
  "CMakeFiles/hicc_cli.dir/hicc_cli.cpp.o"
  "CMakeFiles/hicc_cli.dir/hicc_cli.cpp.o.d"
  "hicc_cli"
  "hicc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
