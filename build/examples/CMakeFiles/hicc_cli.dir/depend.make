# Empty dependencies file for hicc_cli.
# This may be replaced when dependencies are built.
