file(REMOVE_RECURSE
  "libhicc_iommu.a"
)
