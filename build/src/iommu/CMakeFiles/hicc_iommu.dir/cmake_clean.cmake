file(REMOVE_RECURSE
  "CMakeFiles/hicc_iommu.dir/iommu.cpp.o"
  "CMakeFiles/hicc_iommu.dir/iommu.cpp.o.d"
  "libhicc_iommu.a"
  "libhicc_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
