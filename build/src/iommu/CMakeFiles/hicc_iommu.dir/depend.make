# Empty dependencies file for hicc_iommu.
# This may be replaced when dependencies are built.
