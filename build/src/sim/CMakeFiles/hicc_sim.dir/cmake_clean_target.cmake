file(REMOVE_RECURSE
  "libhicc_sim.a"
)
