# Empty compiler generated dependencies file for hicc_sim.
# This may be replaced when dependencies are built.
