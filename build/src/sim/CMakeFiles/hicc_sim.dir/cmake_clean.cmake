file(REMOVE_RECURSE
  "CMakeFiles/hicc_sim.dir/simulator.cpp.o"
  "CMakeFiles/hicc_sim.dir/simulator.cpp.o.d"
  "libhicc_sim.a"
  "libhicc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
