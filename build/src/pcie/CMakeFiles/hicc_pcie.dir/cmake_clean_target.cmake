file(REMOVE_RECURSE
  "libhicc_pcie.a"
)
