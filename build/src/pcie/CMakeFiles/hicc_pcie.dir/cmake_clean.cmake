file(REMOVE_RECURSE
  "CMakeFiles/hicc_pcie.dir/pcie_bus.cpp.o"
  "CMakeFiles/hicc_pcie.dir/pcie_bus.cpp.o.d"
  "libhicc_pcie.a"
  "libhicc_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
