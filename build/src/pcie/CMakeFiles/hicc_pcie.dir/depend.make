# Empty dependencies file for hicc_pcie.
# This may be replaced when dependencies are built.
