file(REMOVE_RECURSE
  "libhicc_core.a"
)
