# Empty compiler generated dependencies file for hicc_core.
# This may be replaced when dependencies are built.
