file(REMOVE_RECURSE
  "CMakeFiles/hicc_core.dir/experiment.cpp.o"
  "CMakeFiles/hicc_core.dir/experiment.cpp.o.d"
  "libhicc_core.a"
  "libhicc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
