# Empty dependencies file for hicc_host.
# This may be replaced when dependencies are built.
