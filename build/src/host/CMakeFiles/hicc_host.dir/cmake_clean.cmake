file(REMOVE_RECURSE
  "CMakeFiles/hicc_host.dir/receiver_host.cpp.o"
  "CMakeFiles/hicc_host.dir/receiver_host.cpp.o.d"
  "libhicc_host.a"
  "libhicc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
