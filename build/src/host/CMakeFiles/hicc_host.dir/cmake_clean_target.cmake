file(REMOVE_RECURSE
  "libhicc_host.a"
)
