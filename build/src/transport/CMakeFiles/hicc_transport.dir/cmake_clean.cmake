file(REMOVE_RECURSE
  "CMakeFiles/hicc_transport.dir/flow.cpp.o"
  "CMakeFiles/hicc_transport.dir/flow.cpp.o.d"
  "CMakeFiles/hicc_transport.dir/swift.cpp.o"
  "CMakeFiles/hicc_transport.dir/swift.cpp.o.d"
  "libhicc_transport.a"
  "libhicc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
