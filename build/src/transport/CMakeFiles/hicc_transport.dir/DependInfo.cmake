
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/flow.cpp" "src/transport/CMakeFiles/hicc_transport.dir/flow.cpp.o" "gcc" "src/transport/CMakeFiles/hicc_transport.dir/flow.cpp.o.d"
  "/root/repo/src/transport/swift.cpp" "src/transport/CMakeFiles/hicc_transport.dir/swift.cpp.o" "gcc" "src/transport/CMakeFiles/hicc_transport.dir/swift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hicc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hicc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
