# Empty compiler generated dependencies file for hicc_transport.
# This may be replaced when dependencies are built.
