file(REMOVE_RECURSE
  "libhicc_transport.a"
)
