file(REMOVE_RECURSE
  "CMakeFiles/hicc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/hicc_mem.dir/memory_system.cpp.o.d"
  "libhicc_mem.a"
  "libhicc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
