# Empty dependencies file for hicc_mem.
# This may be replaced when dependencies are built.
