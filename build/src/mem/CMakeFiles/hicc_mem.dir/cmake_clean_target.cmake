file(REMOVE_RECURSE
  "libhicc_mem.a"
)
