# Empty compiler generated dependencies file for hicc_nic.
# This may be replaced when dependencies are built.
