file(REMOVE_RECURSE
  "libhicc_nic.a"
)
