file(REMOVE_RECURSE
  "CMakeFiles/hicc_nic.dir/nic.cpp.o"
  "CMakeFiles/hicc_nic.dir/nic.cpp.o.d"
  "libhicc_nic.a"
  "libhicc_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
