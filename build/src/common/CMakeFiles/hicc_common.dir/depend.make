# Empty dependencies file for hicc_common.
# This may be replaced when dependencies are built.
