file(REMOVE_RECURSE
  "CMakeFiles/hicc_common.dir/rng.cpp.o"
  "CMakeFiles/hicc_common.dir/rng.cpp.o.d"
  "CMakeFiles/hicc_common.dir/stats.cpp.o"
  "CMakeFiles/hicc_common.dir/stats.cpp.o.d"
  "CMakeFiles/hicc_common.dir/table.cpp.o"
  "CMakeFiles/hicc_common.dir/table.cpp.o.d"
  "libhicc_common.a"
  "libhicc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hicc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
