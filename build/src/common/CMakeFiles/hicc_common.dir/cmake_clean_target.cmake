file(REMOVE_RECURSE
  "libhicc_common.a"
)
