file(REMOVE_RECURSE
  "CMakeFiles/ablation_pcie_credits.dir/ablation_pcie_credits.cpp.o"
  "CMakeFiles/ablation_pcie_credits.dir/ablation_pcie_credits.cpp.o.d"
  "ablation_pcie_credits"
  "ablation_pcie_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pcie_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
