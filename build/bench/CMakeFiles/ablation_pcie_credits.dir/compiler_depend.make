# Empty compiler generated dependencies file for ablation_pcie_credits.
# This may be replaced when dependencies are built.
