# Empty dependencies file for ablation_strict_mode.
# This may be replaced when dependencies are built.
