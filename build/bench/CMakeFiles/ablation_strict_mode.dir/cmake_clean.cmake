file(REMOVE_RECURSE
  "CMakeFiles/ablation_strict_mode.dir/ablation_strict_mode.cpp.o"
  "CMakeFiles/ablation_strict_mode.dir/ablation_strict_mode.cpp.o.d"
  "ablation_strict_mode"
  "ablation_strict_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strict_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
