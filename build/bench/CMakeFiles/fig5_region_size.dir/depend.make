# Empty dependencies file for fig5_region_size.
# This may be replaced when dependencies are built.
