
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_region_size.cpp" "bench/CMakeFiles/fig5_region_size.dir/fig5_region_size.cpp.o" "gcc" "bench/CMakeFiles/fig5_region_size.dir/fig5_region_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hicc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/hicc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/hicc_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/hicc_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/hicc_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hicc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hicc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hicc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hicc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
