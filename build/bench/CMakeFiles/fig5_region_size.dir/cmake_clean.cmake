file(REMOVE_RECURSE
  "CMakeFiles/fig5_region_size.dir/fig5_region_size.cpp.o"
  "CMakeFiles/fig5_region_size.dir/fig5_region_size.cpp.o.d"
  "fig5_region_size"
  "fig5_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
