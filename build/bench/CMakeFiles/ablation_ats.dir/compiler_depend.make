# Empty compiler generated dependencies file for ablation_ats.
# This may be replaced when dependencies are built.
