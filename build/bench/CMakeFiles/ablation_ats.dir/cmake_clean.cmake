file(REMOVE_RECURSE
  "CMakeFiles/ablation_ats.dir/ablation_ats.cpp.o"
  "CMakeFiles/ablation_ats.dir/ablation_ats.cpp.o.d"
  "ablation_ats"
  "ablation_ats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
