file(REMOVE_RECURSE
  "CMakeFiles/ablation_target_delay.dir/ablation_target_delay.cpp.o"
  "CMakeFiles/ablation_target_delay.dir/ablation_target_delay.cpp.o.d"
  "ablation_target_delay"
  "ablation_target_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_target_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
