# Empty dependencies file for ablation_target_delay.
# This may be replaced when dependencies are built.
