# Empty dependencies file for ablation_mba_qos.
# This may be replaced when dependencies are built.
