file(REMOVE_RECURSE
  "CMakeFiles/ablation_mba_qos.dir/ablation_mba_qos.cpp.o"
  "CMakeFiles/ablation_mba_qos.dir/ablation_mba_qos.cpp.o.d"
  "ablation_mba_qos"
  "ablation_mba_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mba_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
