file(REMOVE_RECURSE
  "CMakeFiles/fig6_mem_antagonist.dir/fig6_mem_antagonist.cpp.o"
  "CMakeFiles/fig6_mem_antagonist.dir/fig6_mem_antagonist.cpp.o.d"
  "fig6_mem_antagonist"
  "fig6_mem_antagonist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mem_antagonist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
