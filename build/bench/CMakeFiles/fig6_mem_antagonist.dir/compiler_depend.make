# Empty compiler generated dependencies file for fig6_mem_antagonist.
# This may be replaced when dependencies are built.
