file(REMOVE_RECURSE
  "CMakeFiles/fig1_cluster_scatter.dir/fig1_cluster_scatter.cpp.o"
  "CMakeFiles/fig1_cluster_scatter.dir/fig1_cluster_scatter.cpp.o.d"
  "fig1_cluster_scatter"
  "fig1_cluster_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cluster_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
