file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_gen.dir/ablation_link_gen.cpp.o"
  "CMakeFiles/ablation_link_gen.dir/ablation_link_gen.cpp.o.d"
  "ablation_link_gen"
  "ablation_link_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
