# Empty compiler generated dependencies file for ablation_link_gen.
# This may be replaced when dependencies are built.
