file(REMOVE_RECURSE
  "CMakeFiles/fig4_hugepages.dir/fig4_hugepages.cpp.o"
  "CMakeFiles/fig4_hugepages.dir/fig4_hugepages.cpp.o.d"
  "fig4_hugepages"
  "fig4_hugepages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
