# Empty compiler generated dependencies file for fig4_hugepages.
# This may be replaced when dependencies are built.
