file(REMOVE_RECURSE
  "CMakeFiles/ablation_nic_buffer.dir/ablation_nic_buffer.cpp.o"
  "CMakeFiles/ablation_nic_buffer.dir/ablation_nic_buffer.cpp.o.d"
  "ablation_nic_buffer"
  "ablation_nic_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
