# Empty dependencies file for ablation_nic_buffer.
# This may be replaced when dependencies are built.
