file(REMOVE_RECURSE
  "CMakeFiles/fig3_iommu_cores.dir/fig3_iommu_cores.cpp.o"
  "CMakeFiles/fig3_iommu_cores.dir/fig3_iommu_cores.cpp.o.d"
  "fig3_iommu_cores"
  "fig3_iommu_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_iommu_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
