file(REMOVE_RECURSE
  "CMakeFiles/ablation_subrtt_cc.dir/ablation_subrtt_cc.cpp.o"
  "CMakeFiles/ablation_subrtt_cc.dir/ablation_subrtt_cc.cpp.o.d"
  "ablation_subrtt_cc"
  "ablation_subrtt_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subrtt_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
