# Empty compiler generated dependencies file for ablation_subrtt_cc.
# This may be replaced when dependencies are built.
