file(REMOVE_RECURSE
  "CMakeFiles/ablation_numa_reschedule.dir/ablation_numa_reschedule.cpp.o"
  "CMakeFiles/ablation_numa_reschedule.dir/ablation_numa_reschedule.cpp.o.d"
  "ablation_numa_reschedule"
  "ablation_numa_reschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numa_reschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
