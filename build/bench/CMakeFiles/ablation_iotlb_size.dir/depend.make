# Empty dependencies file for ablation_iotlb_size.
# This may be replaced when dependencies are built.
