file(REMOVE_RECURSE
  "CMakeFiles/ablation_iotlb_size.dir/ablation_iotlb_size.cpp.o"
  "CMakeFiles/ablation_iotlb_size.dir/ablation_iotlb_size.cpp.o.d"
  "ablation_iotlb_size"
  "ablation_iotlb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iotlb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
