// Figure 4: disabling hugepages (4K instead of 2M mappings).
//
// With 4K pages a 12MB region is 3072 IOTLB entries per thread instead
// of 6, and each 4K-MTU packet spans two pages, so the interconnect
// bottleneck arrives with far fewer receiver threads and the
// degradation is deeper (>30% in the paper), while drop rates stay
// bounded because the CC protocol kicks in earlier (throughput is
// already below the blind window).
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 4", "throughput / drop rate / IOTLB misses vs receiver cores, "
                  "hugepages enabled vs disabled (IOMMU ON)",
      "4K pages push IOTLB misses per packet to ~4-6 and cost >30% throughput; "
      "drops can still reach ~2% even at <70% network utilization");

  Table t({"cores", "app_gbps_hugepages", "app_gbps_4k", "drop_pct_hugepages",
           "drop_pct_4k", "misses_per_pkt_hugepages", "misses_per_pkt_4k"});

  const std::vector<int> cores = {2, 4, 6, 8, 10, 12, 14, 16};
  std::vector<ExperimentConfig> cfgs;
  for (int c : cores) {
    ExperimentConfig huge = bench::base_config();
    huge.rx_threads = c;
    huge.hugepages = true;
    ExperimentConfig small = huge;
    small.hugepages = false;
    cfgs.push_back(huge);
    cfgs.push_back(small);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const Metrics& mh = results[2 * i].metrics;
    const Metrics& ms = results[2 * i + 1].metrics;
    t.add_row({std::int64_t{cores[i]}, mh.app_throughput_gbps, ms.app_throughput_gbps,
               mh.drop_rate * 100.0, ms.drop_rate * 100.0, mh.iotlb_misses_per_packet,
               ms.iotlb_misses_per_packet});
  }
  bench::finish(t, "fig4_hugepages.csv");
  bench::save_json(results, "fig4_hugepages.json");
  return 0;
}
