// Ablation A11 (§3): isolation violation.
//
// "Drop rate serves as a proxy for violation of isolation properties --
// all applications use a shared NIC buffer where drops end up
// occurring." We make that concrete: a handful of latency-sensitive
// victim flows (single-MTU closed-loop reads) share the NIC with the
// bulk workload, and we measure their read-completion latency with the
// host interconnect healthy vs congested. The victims never caused the
// congestion; they pay for it anyway.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A11", "victim-flow RPC latency under host congestion "
                      "(8 victim flows of 4KB closed-loop reads)",
      "victim p99 latency inflates by hundreds of microseconds (queueing in "
      "the shared NIC buffer + drops/retransmits) exactly when the bulk "
      "workload congests the interconnect, at identical victim load");

  Table t({"scenario", "app_gbps_bulk", "bulk_drop_pct", "victim_reads",
           "victim_p50_us", "victim_p99_us"});

  struct Scenario {
    const char* name;
    bool iommu;
    int threads;
    int antagonists;
  };
  const Scenario scenarios[] = {
      {"healthy (IOMMU off)", false, 14, 0},
      {"iommu congestion", true, 14, 0},
      {"membus congestion", false, 14, 15},
  };
  std::vector<ExperimentConfig> cfgs;
  for (const auto& sc : scenarios) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = sc.threads;
    cfg.iommu_enabled = sc.iommu;
    cfg.antagonist_cores = sc.antagonists;
    cfg.victim_flows = 8;
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < std::size(scenarios); ++i) {
    const Metrics& m = results[i].metrics;
    t.add_row({std::string(scenarios[i].name), m.app_throughput_gbps,
               m.drop_rate * 100.0, m.victim_reads, m.victim_read_p50_us,
               m.victim_read_p99_us});
  }
  bench::finish(t, "ablation_isolation.csv");
  bench::save_json(results, "ablation_isolation.json");
  return 0;
}
